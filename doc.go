// Package repro is a from-scratch Go reproduction of "HPC with
// Enhanced User Separation" (Prout et al., MIT Lincoln Laboratory
// Supercomputing Center, SC 2024; arXiv:2409.10770).
//
// The library simulates a multi-node Linux HPC system — process
// tables and /proc, a POSIX filesystem with the paper's smask kernel
// patch, a Slurm-like scheduler, a TCP/UDP fabric with an
// nfqueue-style firewall hook, GPUs with persistent device memory,
// encapsulation containers, and a web portal — and implements the
// paper's enhanced-user-separation configuration on top of it.
//
// Start with internal/core: the Cluster type, the separation-measure
// registry (core.Measures), and the named profiles from which the
// Baseline/Enhanced presets are derived — NewWithProfile composes
// ablated and extended variants with functional options. Then the
// examples/ directory and cmd/benchharness, which regenerates every
// experiment table including the E16 measure-ablation matrix and the
// E17 red-team campaign matrix (internal/attack: composed multi-step
// adversaries running inside replicated fleet trials). See DESIGN.md
// for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro
