package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runJSON runs the campaign and returns its canonical bytes.
func runJSON(t *testing.T, c Campaign, opt Options) []byte {
	t.Helper()
	res, err := Run(c, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// interruptedCheckpoint runs the campaign with a deterministic chaos
// kill after `after` dispatched trials, requires an InterruptedError,
// and returns the loaded final checkpoint.
func interruptedCheckpoint(t *testing.T, c Campaign, opt Options, after int) *Checkpoint {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opt.CheckpointPath = path
	opt.CheckpointEvery = 1
	if opt.Faults == nil {
		opt.Faults = &FaultPlan{}
	}
	opt.Faults.KillAfterTrials = after
	_, err := Run(c, opt)
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}
	if ie.Checkpoint != path {
		t.Fatalf("InterruptedError names checkpoint %q, want %q", ie.Checkpoint, path)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Completed != ie.Completed {
		t.Fatalf("checkpoint records %d completed trials, InterruptedError says %d", ck.Completed, ie.Completed)
	}
	return ck
}

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	if len(b) != 3 {
		t.Fatalf("130 bits need 3 words, got %d", len(b))
	}
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Errorf("fresh bitmap has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if b.Get(1) || b.Get(65) {
		t.Error("Set leaked into neighboring bits")
	}
	c := b.Clone()
	c.Set(1)
	if b.Get(1) {
		t.Error("Clone shares storage with the original")
	}
}

// The checkpoint's identity binding: the hash is stable for a fixed
// campaign and moves under any definitional edit.
func TestCampaignHashBindsDefinition(t *testing.T) {
	base := smokeCampaign()
	h1, err := CampaignHash(base)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := CampaignHash(smokeCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not a pure function of the campaign: %#x vs %#x", h1, h2)
	}
	for name, mutate := range map[string]func(*Campaign){
		"renamed scenario": func(c *Campaign) { c.Scenarios[0].Name = "smoke/renamed" },
		"changed horizon":  func(c *Campaign) { c.Scenarios[0].Horizon++ },
		"extra replication": func(c *Campaign) {
			c.Scenarios[1].Replications++
		},
		"reordered scenarios": func(c *Campaign) {
			c.Scenarios[0], c.Scenarios[1] = c.Scenarios[1], c.Scenarios[0]
		},
	} {
		c := smokeCampaign()
		mutate(&c)
		h, err := CampaignHash(c)
		if err != nil {
			t.Fatal(err)
		}
		if h == h1 {
			t.Errorf("%s: hash unchanged", name)
		}
	}
}

// The tentpole acceptance criterion: a campaign killed mid-run and
// resumed from its checkpoint produces byte-identical final JSON to a
// run that was never interrupted — for the smoke preset and the full
// e16 ablation preset, across worker counts. The kill is the
// deterministic chaos stand-in (KillAfterTrials), so the interruption
// point is identical on every test run.
func TestKillAndResumeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name      string
		camp      Campaign
		killAfter int
		workers   int
	}{
		{"smoke", smokeCampaign(), 2, 2},
		{"e16", e16AblationDrainCampaign(), 7, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clean := runJSON(t, tc.camp, Options{Workers: tc.workers, Seed: 7})
			ck := interruptedCheckpoint(t, tc.camp, Options{Workers: tc.workers, Seed: 7}, tc.killAfter)
			if ck.Completed != tc.killAfter {
				t.Fatalf("kill after %d dispatches completed %d trials", tc.killAfter, ck.Completed)
			}
			if ck.Completed >= tc.camp.Trials() {
				t.Fatalf("nothing left to resume: %d of %d trials completed", ck.Completed, tc.camp.Trials())
			}
			resumed := runJSON(t, tc.camp, Options{Workers: tc.workers, Seed: 7, ResumeFrom: ck})
			if !bytes.Equal(resumed, clean) {
				t.Fatalf("resumed bytes differ from the uninterrupted run:\n%s\nvs\n%s", resumed, clean)
			}
			// Resuming with a different worker count must not matter
			// either — the restored partials re-enter the reduction at
			// their own trial index.
			resumed1w := runJSON(t, tc.camp, Options{Workers: 1, Seed: 7, ResumeFrom: ck})
			if !bytes.Equal(resumed1w, clean) {
				t.Fatalf("single-worker resume bytes differ from the uninterrupted run")
			}
		})
	}
}

// Interruption chains: kill, resume, kill again, resume again — the
// final bytes must still equal the clean run's (each checkpoint
// subsumes the previous one's completed set).
func TestResumeChainByteIdentical(t *testing.T) {
	camp := smokeCampaign()
	clean := runJSON(t, camp, Options{Workers: 2, Seed: 7})
	ck1 := interruptedCheckpoint(t, camp, Options{Workers: 2, Seed: 7}, 1)
	ck2 := interruptedCheckpoint(t, camp, Options{Workers: 2, Seed: 7, ResumeFrom: ck1}, 2)
	if ck2.Completed != ck1.Completed+2 {
		t.Fatalf("second leg completed %d trials, want %d", ck2.Completed, ck1.Completed+2)
	}
	final := runJSON(t, camp, Options{Workers: 2, Seed: 7, ResumeFrom: ck2})
	if !bytes.Equal(final, clean) {
		t.Fatalf("twice-resumed bytes differ from the uninterrupted run")
	}
}

// A run that completes normally with checkpointing enabled leaves a
// complete sidecar; resuming from it re-runs nothing and still
// renders identical bytes (the restored-aggregate merge path alone).
func TestResumeFromCompleteCheckpoint(t *testing.T) {
	camp := smokeCampaign()
	path := filepath.Join(t.TempDir(), "ckpt.json")
	clean := runJSON(t, camp, Options{Workers: 2, Seed: 7, CheckpointPath: path})
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Completed != camp.Trials() {
		t.Fatalf("final checkpoint records %d trials, want all %d", ck.Completed, camp.Trials())
	}
	resumed := runJSON(t, camp, Options{Workers: 2, Seed: 7, ResumeFrom: ck})
	if !bytes.Equal(resumed, clean) {
		t.Fatalf("resume-from-complete bytes differ from the original run")
	}
}

// Every way a checkpoint can fail to match the campaign must be
// rejected with a contextual error — resuming under a mismatched
// seed or definition would silently corrupt the statistics.
func TestResumeValidationRejects(t *testing.T) {
	camp := smokeCampaign()
	ck := interruptedCheckpoint(t, camp, Options{Workers: 2, Seed: 7}, 2)

	reload := func(mutate func(*Checkpoint)) *Checkpoint {
		// Round-trip through JSON for an independent deep copy.
		buf, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		fresh := new(Checkpoint)
		if err := json.Unmarshal(buf, fresh); err != nil {
			t.Fatal(err)
		}
		mutate(fresh)
		return fresh
	}

	for name, tc := range map[string]struct {
		opt  Options
		ck   *Checkpoint
		want string
	}{
		"seed mismatch":    {Options{Seed: 8}, reload(func(*Checkpoint) {}), "seed"},
		"format mismatch":  {Options{Seed: 7}, reload(func(c *Checkpoint) { c.Format = 99 }), "format"},
		"campaign renamed": {Options{Seed: 7}, reload(func(c *Checkpoint) { c.Campaign = "other" }), "campaign"},
		"hash mismatch":    {Options{Seed: 7}, reload(func(c *Checkpoint) { c.CampaignHash++ }), "hash"},
		"count mismatch":   {Options{Seed: 7}, reload(func(c *Checkpoint) { c.Completed++ }), "completed"},
		"bitmap/partials disagree": {Options{Seed: 7}, reload(func(c *Checkpoint) {
			for i := range c.Scenarios {
				if len(c.Scenarios[i].Partials) > 0 {
					c.Scenarios[i].Partials = c.Scenarios[i].Partials[:len(c.Scenarios[i].Partials)-1]
					c.Completed--
					return
				}
			}
		}), "bitmap"},
		"out-of-range bit": {Options{Seed: 7}, reload(func(c *Checkpoint) {
			c.Scenarios[0].Done.Set(len(c.Scenarios[0].Done)*64 - 1) // beyond Replications=3
		}), "outside"},
		"wrong result name": {Options{Seed: 7}, reload(func(c *Checkpoint) {
			for i := range c.Scenarios {
				if len(c.Scenarios[i].Partials) > 0 {
					c.Scenarios[i].Partials[0].Result.Name = "bogus"
					return
				}
			}
		}), "carries result"},
		"histogram layout": {Options{Seed: 7}, reload(func(c *Checkpoint) {
			for i := range c.Scenarios {
				if len(c.Scenarios[i].Partials) > 0 {
					c.Scenarios[i].Partials[0].Result.MakespanHist.Hi++
					return
				}
			}
		}), "histogram"},
	} {
		opt := tc.opt
		opt.ResumeFrom = tc.ck
		opt.Workers = 2
		if _, err := Run(camp, opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", name, tc.want, err)
		}
	}

	// A definitional edit to the campaign itself must likewise reject
	// an old checkpoint via the hash.
	edited := smokeCampaign()
	edited.Scenarios[0].Horizon++
	if _, err := Run(edited, Options{Workers: 2, Seed: 7, ResumeFrom: ck}); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Errorf("edited campaign accepted a stale checkpoint: %v", err)
	}
}

// Checkpoint writes are atomic: saving over an existing sidecar
// leaves no temp droppings and the destination always parses.
func TestCheckpointSaveAtomicOverwrite(t *testing.T) {
	camp := smokeCampaign()
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	ck := interruptedCheckpoint(t, camp, Options{Workers: 2, Seed: 7}, 2)
	for i := 0; i < 3; i++ {
		if err := ck.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ckpt.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want exactly [ckpt.json] (temp files must not leak)", names)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
}

// WriteFileAtomic's failure contract: when the write cannot complete
// — here, the rename fails because the target is a directory — the
// temp file is removed, the error surfaces, and whatever previously
// lived at adjacent paths is untouched. A partial artifact must never
// be visible NOR left littering the directory for the next ReadDir
// (CI's cmp gates glob these directories).
func TestWriteFileAtomicFailurePaths(t *testing.T) {
	t.Run("rename blocked by directory", func(t *testing.T) {
		dir := t.TempDir()
		target := filepath.Join(dir, "artifact.json")
		if err := os.Mkdir(target, 0o755); err != nil {
			t.Fatal(err)
		}
		err := WriteFileAtomic(target, []byte("data"))
		if err == nil {
			t.Fatal("rename over a directory succeeded")
		}
		entries, rerr := os.ReadDir(dir)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if len(entries) != 1 || entries[0].Name() != "artifact.json" || !entries[0].IsDir() {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Fatalf("failed write left droppings: %v", names)
		}
	})
	t.Run("missing parent directory", func(t *testing.T) {
		err := WriteFileAtomic(filepath.Join(t.TempDir(), "nope", "artifact.json"), []byte("data"))
		if err == nil {
			t.Fatal("write into a missing directory succeeded")
		}
	})
	t.Run("overwrite preserves old contents on failure", func(t *testing.T) {
		// Sanity for the success path first, then verify a failed
		// sibling write cannot corrupt an existing artifact.
		dir := t.TempDir()
		path := filepath.Join(dir, "artifact.json")
		if err := WriteFileAtomic(path, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		blocked := filepath.Join(dir, "blocked.json")
		if err := os.Mkdir(blocked, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteFileAtomic(blocked, []byte("v2")); err == nil {
			t.Fatal("expected failure")
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != "v1" {
			t.Fatalf("existing artifact perturbed: %q, %v", got, err)
		}
	})
}

// The -failures artifact: stable fields only, never null, stacks
// excluded, round-trips through the strict decoder.
func TestFailuresArtifactRoundTrip(t *testing.T) {
	fails := []TrialFailure{
		{Scenario: "s", Replication: 2, Attempt: 1, Panic: "boom", Stack: "goroutine 7 [running]"},
		{Scenario: "s", Replication: 2, Attempt: 2, Terminal: true, Panic: "boom"},
	}
	data, err := EncodeFailures("camp", 7, fails)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "goroutine") {
		t.Fatal("stack trace leaked into the failures artifact")
	}
	art, err := DecodeFailures(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if art.Campaign != "camp" || art.Seed != 7 || len(art.Failures) != 2 {
		t.Fatalf("round trip mangled the artifact: %+v", art)
	}
	if got := art.Failures[1]; got.Attempt != 2 || !got.Terminal || got.Stack != "" {
		t.Fatalf("failure fields mangled: %+v", got)
	}

	// A clean run encodes an empty array, not null.
	data, err = EncodeFailures("camp", 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"failures": []`) {
		t.Fatalf("clean ledger should encode []: %s", data)
	}
	if _, err := DecodeFailures(strings.NewReader(`{"campaign":"c","sed":1}`)); err == nil || !strings.Contains(err.Error(), "sed") {
		t.Errorf("typo field accepted: %v", err)
	}
}

// LoadCheckpoint must reject unknown fields like campaign files do.
func TestLoadCheckpointRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte(`{"format":1,"campain":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil || !strings.Contains(err.Error(), "campain") {
		t.Errorf("typo field accepted: %v", err)
	}
}

// An interrupted run with no checkpoint path still drains and
// reports, with the error explicit that completed work was dropped.
func TestInterruptWithoutCheckpointPath(t *testing.T) {
	camp := smokeCampaign()
	_, err := Run(camp, Options{Workers: 2, Seed: 7, Faults: &FaultPlan{KillAfterTrials: 2}})
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}
	if ie.Checkpoint != "" || !strings.Contains(ie.Error(), "discarded") {
		t.Errorf("error should state that completed trials were discarded: %v", ie)
	}
}

// Options.Interrupt already fired: the run must stop before
// dispatching anything, checkpoint an empty state, and that empty
// checkpoint must resume to a byte-identical full run.
func TestInterruptBeforeDispatch(t *testing.T) {
	camp := smokeCampaign()
	clean := runJSON(t, camp, Options{Workers: 2, Seed: 7})
	path := filepath.Join(t.TempDir(), "ckpt.json")
	pre := make(chan struct{})
	close(pre)
	_, err := Run(camp, Options{Workers: 2, Seed: 7, Interrupt: pre, CheckpointPath: path})
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("want InterruptedError, got %v", err)
	}
	if ie.Completed != 0 {
		t.Fatalf("pre-fired interrupt completed %d trials, want 0", ie.Completed)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed := runJSON(t, camp, Options{Workers: 2, Seed: 7, ResumeFrom: ck})
	if !bytes.Equal(resumed, clean) {
		t.Fatalf("resume-from-empty bytes differ from the clean run")
	}
}
