package fleet

// Checkpoint/resume: the crash-recovery sidecar of a campaign run.
//
// The executor's determinism contract (trial RNG streams keyed by
// (scenario name, replication index), fixed-size per-trial
// aggregates, trial-index-order reduction) makes recovery *provable*
// rather than best-effort: a checkpoint records exactly which trials
// completed and each trial's own aggregate, so a resumed run skips
// the completed trials, re-runs only the missing ones under their
// unchanged stream seeds, and merges everything in the same
// trial-index order — the final JSON is byte-identical to a run that
// was never interrupted. (Float fidelity holds because encoding/json
// emits the shortest decimal that round-trips a float64 exactly.)
//
// Checkpoints are written atomically — bytes land in a temp file in
// the destination directory and are renamed over the target — so a
// writer SIGKILLed mid-write leaves either the previous checkpoint or
// the new one, never a torn sidecar.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/bits"
	"os"
	"path/filepath"
)

// CheckpointFormat versions the sidecar layout; ValidateAgainst
// rejects checkpoints written by a different format.
const CheckpointFormat = 1

// Checkpoint is the resumable state of a partially-executed campaign:
// identity (campaign name + canonical-encoding hash + master seed)
// plus, per scenario, a completed-replication bitmap and the
// completed trials' serialized aggregates.
type Checkpoint struct {
	Format       int                  `json:"format"`
	Campaign     string               `json:"campaign"`
	CampaignHash uint64               `json:"campaign_hash"`
	Seed         uint64               `json:"seed"`
	Completed    int                  `json:"completed_trials"`
	Scenarios    []ScenarioCheckpoint `json:"scenarios"`
}

// ScenarioCheckpoint is one scenario's recovery state. Done and
// Partials are redundant by construction (one partial per set bit);
// ValidateAgainst cross-checks them so a hand-edited or corrupted
// sidecar fails loudly instead of silently skewing the resume.
type ScenarioCheckpoint struct {
	Name     string         `json:"name"`
	Done     Bitmap         `json:"done"`
	Partials []TrialPartial `json:"partials"`
}

// TrialPartial is one completed trial's aggregate. Result holds
// exactly one trial: Replications 1 for a success, Failures 1 for a
// trial that exhausted its panic-retry budget and degraded.
type TrialPartial struct {
	Replication int            `json:"replication"`
	Result      ScenarioResult `json:"result"`
}

// Bitmap is a fixed-capacity bitset serialized as its uint64 words
// (Go's encoding/json round-trips uint64 exactly). Bit i of word
// i/64 marks replication i complete.
type Bitmap []uint64

// NewBitmap returns a bitmap with capacity for n bits, all clear.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy.
func (b Bitmap) Clone() Bitmap { return append(Bitmap(nil), b...) }

// CampaignHash fingerprints a campaign via the FNV-1a 64 hash of its
// canonical JSON encoding, so a checkpoint binds to the exact
// campaign definition: any edit — a renamed scenario, a different
// horizon, a reordered grid — changes the hash and resume is
// rejected rather than silently merging incompatible trials.
func CampaignHash(c Campaign) (uint64, error) {
	data, err := EncodeCampaign(c)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}

// buildCheckpoint assembles the sidecar from the executor's state:
// the global completed bitmap laid out scenario-major, sliced into
// per-scenario bitmaps, with each completed trial's partial embedded
// in replication order.
func buildCheckpoint(c Campaign, hash, seed uint64, partials []*ScenarioResult, completed Bitmap) *Checkpoint {
	ck := &Checkpoint{Format: CheckpointFormat, Campaign: c.Name, CampaignHash: hash, Seed: seed}
	base := 0
	for _, s := range c.Scenarios {
		sc := ScenarioCheckpoint{Name: s.Name, Done: NewBitmap(s.Replications)}
		for rep := 0; rep < s.Replications; rep++ {
			if !completed.Get(base + rep) {
				continue
			}
			sc.Done.Set(rep)
			sc.Partials = append(sc.Partials, TrialPartial{Replication: rep, Result: *partials[base+rep]})
			ck.Completed++
		}
		ck.Scenarios = append(ck.Scenarios, sc)
		base += s.Replications
	}
	return ck
}

// ValidateAgainst rejects a checkpoint that cannot resume the given
// (campaign, seed): identity mismatches (name, campaign hash, seed,
// format) and internal inconsistencies (bitmap/partial disagreement,
// out-of-range or out-of-order replications, aggregates whose shape
// could not have come from this campaign's trials).
func (ck *Checkpoint) ValidateAgainst(c Campaign, seed uint64) error {
	if ck.Format != CheckpointFormat {
		return fmt.Errorf("fleet: checkpoint format %d; this build reads format %d", ck.Format, CheckpointFormat)
	}
	if ck.Campaign != c.Name {
		return fmt.Errorf("fleet: checkpoint is for campaign %q, not %q", ck.Campaign, c.Name)
	}
	if ck.Seed != seed {
		return fmt.Errorf("fleet: checkpoint seed %d does not match master seed %d (trial streams would differ)", ck.Seed, seed)
	}
	hash, err := CampaignHash(c)
	if err != nil {
		return err
	}
	if ck.CampaignHash != hash {
		return fmt.Errorf("fleet: checkpoint campaign hash %#x does not match the loaded campaign's %#x (the definition changed since the checkpoint was taken)", ck.CampaignHash, hash)
	}
	if len(ck.Scenarios) != len(c.Scenarios) {
		return fmt.Errorf("fleet: checkpoint has %d scenarios, campaign has %d", len(ck.Scenarios), len(c.Scenarios))
	}
	total := 0
	for i := range ck.Scenarios {
		sc := &ck.Scenarios[i]
		spec := &c.Scenarios[i]
		if sc.Name != spec.Name {
			return fmt.Errorf("fleet: checkpoint scenario %d is %q, campaign has %q", i, sc.Name, spec.Name)
		}
		if len(sc.Done) != len(NewBitmap(spec.Replications)) {
			return fmt.Errorf("fleet: checkpoint scenario %q: bitmap has %d words, %d replications need %d",
				sc.Name, len(sc.Done), spec.Replications, len(NewBitmap(spec.Replications)))
		}
		for rep := spec.Replications; rep < len(sc.Done)*64; rep++ {
			if sc.Done.Get(rep) {
				return fmt.Errorf("fleet: checkpoint scenario %q: completed replication %d outside [0, %d)", sc.Name, rep, spec.Replications)
			}
		}
		if n := sc.Done.Count(); n != len(sc.Partials) {
			return fmt.Errorf("fleet: checkpoint scenario %q: bitmap marks %d trials done but %d partials are present", sc.Name, n, len(sc.Partials))
		}
		prev := -1
		for _, p := range sc.Partials {
			if p.Replication < 0 || p.Replication >= spec.Replications {
				return fmt.Errorf("fleet: checkpoint scenario %q: partial for replication %d outside [0, %d)", sc.Name, p.Replication, spec.Replications)
			}
			if p.Replication <= prev {
				return fmt.Errorf("fleet: checkpoint scenario %q: partials out of replication order (%d after %d)", sc.Name, p.Replication, prev)
			}
			prev = p.Replication
			if !sc.Done.Get(p.Replication) {
				return fmt.Errorf("fleet: checkpoint scenario %q: partial for replication %d not marked done", sc.Name, p.Replication)
			}
			r := &p.Result
			if r.Name != spec.Name {
				return fmt.Errorf("fleet: checkpoint scenario %q: partial carries result for %q", sc.Name, r.Name)
			}
			if r.Replications+r.Failures != 1 {
				return fmt.Errorf("fleet: checkpoint scenario %q replication %d: a partial must hold exactly one trial (replications %d + failures %d)",
					sc.Name, p.Replication, r.Replications, r.Failures)
			}
			if h := r.MakespanHist; h == nil || h.Lo != 0 || h.Hi != float64(spec.Horizon) || len(h.Counts) != makespanBuckets {
				return fmt.Errorf("fleet: checkpoint scenario %q replication %d: histogram layout does not match the scenario's horizon %d",
					sc.Name, p.Replication, spec.Horizon)
			}
			// Attack presence must track the spec: a partial with an
			// aggregate for an unattacked scenario (or vice versa) could
			// not have come from this campaign's trials, and would also
			// poison every later Merge in the reduction.
			if (spec.Attack != nil) != (r.Attack != nil) {
				return fmt.Errorf("fleet: checkpoint scenario %q replication %d: attack aggregate presence does not match the scenario spec",
					sc.Name, p.Replication)
			}
			if r.Attack != nil && r.Attack.Trials != r.Replications {
				return fmt.Errorf("fleet: checkpoint scenario %q replication %d: attack aggregate holds %d trials, partial holds %d",
					sc.Name, p.Replication, r.Attack.Trials, r.Replications)
			}
		}
		total += len(sc.Partials)
	}
	if ck.Completed != total {
		return fmt.Errorf("fleet: checkpoint claims %d completed trials but carries %d partials", ck.Completed, total)
	}
	return nil
}

// Save writes the checkpoint sidecar atomically (temp + rename).
func (ck *Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// LoadCheckpoint reads a checkpoint sidecar. Unknown fields are an
// error, like campaign files: a sidecar from a future format fails
// loudly instead of resuming with silently-dropped state.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var ck Checkpoint
	if err := dec.Decode(&ck); err != nil {
		return nil, fmt.Errorf("fleet: decoding checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// WriteFileAtomic is the temp+rename discipline every persisted
// artifact goes through (checkpoints here, result and failure JSON in
// cmd/fleetrun, shard sidecars under fleetd): the bytes are written
// to a temp file in the target's directory, synced, renamed over the
// destination, and the directory itself is then fsynced — so an
// interrupted writer leaves either the old contents or the new,
// never a truncated file a resume or a cmp gate could misread, and a
// machine crash right after the rename cannot resurrect the old
// directory entry (the rename is durable only once its directory
// metadata is). On any failure the temp file is removed: a partial
// artifact is never visible under the target path or left littering
// its directory.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp, 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
// Errors are reported, not swallowed: the caller's artifact exists
// but its durability is unknown.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
