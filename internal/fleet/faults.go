package fleet

// Chaos injection: a deterministic fault plan threaded through the
// executor behind a no-op default (a nil *FaultPlan compiles to a nil
// injector whose every hook is a no-op). Faults are data — authored
// as JSON for `fleetrun -chaos plan.json` or built literally in tests
// — and keyed by the same (scenario name, replication index,
// attempt) coordinates as the trial RNG streams, so an injected
// failure fires at exactly the same trial on every run, worker count
// and completion order notwithstanding. The harness exists to gate
// the failure model's promises: an injected panic must be retried
// without perturbing any other trial's bytes, an injected checkpoint
// write failure must not kill the campaign the checkpoint protects,
// and a delayed worker must change wall-clock only.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Fault points inside a trial.
const (
	// PointBegin fires at the top of the trial, before the pooled
	// cluster is acquired or reset.
	PointBegin = "begin"
	// PointSubmit fires after the trial's jobs are submitted and
	// before the drain: the cluster is dirty, so recovery must
	// quarantine and rebuild it. The default, because it exercises
	// the strongest obligation.
	PointSubmit = "submit"
)

// PanicFault panics a specific trial at a specific point.
type PanicFault struct {
	Scenario    string `json:"scenario"`
	Replication int    `json:"replication"`
	// Attempts is how many consecutive attempts panic (default 1): a
	// value within the retry budget exercises recovery, a larger one
	// forces terminal degradation.
	Attempts int `json:"attempts,omitempty"`
	// Point is where in the trial the panic fires (PointBegin or
	// PointSubmit; empty means PointSubmit).
	Point string `json:"point,omitempty"`
}

// WorkerDelay sleeps a worker before every trial it runs — wall-clock
// only, never results. Used to force out-of-order completion in the
// determinism gates and to stretch a run so an external SIGKILL lands
// mid-campaign.
type WorkerDelay struct {
	Worker     int `json:"worker"`
	PerTrialMS int `json:"per_trial_ms"`
}

// Shard fault modes (ShardFault.Mode).
const (
	// ShardKill dies abruptly — no final checkpoint, no drain — after
	// AfterTrials new completions: the deterministic stand-in for a
	// SIGKILLed shard worker. Under RunShard with a Die hook (the
	// re-exec'd fleetrun sets one) the death is a literal self-SIGKILL;
	// without one the run stops recording, drains in flight and
	// returns ErrShardKilled.
	ShardKill = "kill"
	// ShardBlackhole wedges the shard after AfterTrials new
	// completions: heartbeats and checkpoint writes stop cold but the
	// process stays alive and silent until killed — the supervisor
	// must detect it by heartbeat deadline, not by exit.
	ShardBlackhole = "blackhole"
	// ShardSlow sleeps every worker DelayMS per trial — wall-clock
	// only, never results. A slow-but-heartbeating shard must NOT be
	// declared dead; this mode exists to prove that.
	ShardSlow = "slow"
)

// ShardFault is a shard-scoped fault, active only under RunShard (the
// plain Run executor has no shard identity and ignores them). Faults
// are keyed by (shard index, supervisor attempt): by default only the
// first attempt is sabotaged, so a retried shard recovers and the
// merged bytes stay clean; Attempts larger than the supervisor's
// retry budget forces terminal degradation instead.
type ShardFault struct {
	Shard int    `json:"shard"`
	Mode  string `json:"mode"`
	// AfterTrials arms kill/blackhole after this many trials complete
	// in the attempt (new completions, not restored ones) — and after
	// their checkpoint write, so resume sees exactly this many.
	AfterTrials int `json:"after_trials,omitempty"`
	// Attempts is how many consecutive supervisor attempts the fault
	// fires on (default 1).
	Attempts int `json:"attempts,omitempty"`
	// DelayMS is the per-trial sleep of ShardSlow.
	DelayMS int `json:"delay_ms,omitempty"`
}

// FaultPlan is the declarative chaos schedule a run executes against.
type FaultPlan struct {
	Panics []PanicFault `json:"panics,omitempty"`
	// CheckpointWrites lists 1-based checkpoint-write indices that
	// fail with ErrInjectedCheckpointFailure. Periodic and final
	// writes share the counter.
	CheckpointWrites []int         `json:"checkpoint_writes,omitempty"`
	Delays           []WorkerDelay `json:"delays,omitempty"`
	// Shards lists shard-scoped faults (kill, blackhole, slow). Only
	// RunShard consults them; the supervisor validates shard indices
	// against its shard count.
	Shards []ShardFault `json:"shards,omitempty"`
	// KillAfterTrials interrupts the run — exactly like
	// Options.Interrupt firing — once this many trials have been
	// dispatched in this run. The count is enforced synchronously in
	// the dispatch loop and in-flight trials drain, so exactly this
	// many new trials complete: the deterministic stand-in for a
	// mid-campaign kill in the resume gates. 0 means never; a value
	// >= the remaining trial count never fires.
	KillAfterTrials int `json:"kill_after_trials,omitempty"`
}

// ErrInjectedCheckpointFailure is the error injected checkpoint
// writes fail with, so tests can tell chaos from real I/O errors.
var ErrInjectedCheckpointFailure = errors.New("fleet: injected checkpoint write failure")

// Validate rejects plans that name trials the campaign does not have
// — a typoed scenario must fail loudly, not silently inject nothing.
func (p *FaultPlan) Validate(c Campaign) error {
	reps := make(map[string]int, len(c.Scenarios))
	for _, s := range c.Scenarios {
		reps[s.Name] = s.Replications
	}
	for _, f := range p.Panics {
		n, ok := reps[f.Scenario]
		if !ok {
			return fmt.Errorf("fleet: fault plan panics unknown scenario %q", f.Scenario)
		}
		if f.Replication < 0 || f.Replication >= n {
			return fmt.Errorf("fleet: fault plan panics %s replication %d outside [0, %d)", f.Scenario, f.Replication, n)
		}
		if f.Attempts < 0 {
			return fmt.Errorf("fleet: fault plan: negative panic attempts %d", f.Attempts)
		}
		switch f.Point {
		case "", PointBegin, PointSubmit:
		default:
			return fmt.Errorf("fleet: fault plan: unknown panic point %q (have %q, %q)", f.Point, PointBegin, PointSubmit)
		}
	}
	for _, w := range p.CheckpointWrites {
		if w < 1 {
			return fmt.Errorf("fleet: fault plan: checkpoint write indices are 1-based (got %d)", w)
		}
	}
	for _, d := range p.Delays {
		if d.Worker < 0 || d.PerTrialMS < 0 {
			return fmt.Errorf("fleet: fault plan: negative worker %d or delay %dms", d.Worker, d.PerTrialMS)
		}
	}
	if p.KillAfterTrials < 0 {
		return fmt.Errorf("fleet: fault plan: negative kill_after_trials %d", p.KillAfterTrials)
	}
	for _, sf := range p.Shards {
		if sf.Shard < 0 {
			return fmt.Errorf("fleet: fault plan: negative shard index %d", sf.Shard)
		}
		if sf.Attempts < 0 {
			return fmt.Errorf("fleet: fault plan: negative shard fault attempts %d", sf.Attempts)
		}
		switch sf.Mode {
		case ShardKill, ShardBlackhole:
			if sf.AfterTrials < 1 {
				return fmt.Errorf("fleet: fault plan: shard %d %s fault needs after_trials >= 1 (got %d)", sf.Shard, sf.Mode, sf.AfterTrials)
			}
		case ShardSlow:
			if sf.DelayMS < 0 {
				return fmt.Errorf("fleet: fault plan: shard %d slow fault has negative delay %dms", sf.Shard, sf.DelayMS)
			}
		default:
			return fmt.Errorf("fleet: fault plan: unknown shard fault mode %q (have %q, %q, %q)", sf.Mode, ShardKill, ShardBlackhole, ShardSlow)
		}
	}
	return nil
}

// DecodeFaultPlan reads a plan from JSON (the `fleetrun -chaos`
// file). Unknown fields are an error, like campaign files.
func DecodeFaultPlan(r io.Reader) (*FaultPlan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p FaultPlan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fleet: decoding fault plan: %w", err)
	}
	return &p, nil
}

type panicKey struct {
	scenario string
	rep      int
	point    string
}

// faultInjector is the compiled, read-only plan. Every method is
// nil-receiver-safe (the no-op default) and the maps are never
// mutated after compile, so workers consult it without locks.
type faultInjector struct {
	panics    map[panicKey]int // -> number of attempts that panic
	ckptFails map[int]bool
	delays    map[int]time.Duration
	killAfter int
	// Shard-scoped faults, armed only when compileFaults sees a
	// ShardRun whose (index, attempt) a plan entry matches.
	shardKillAt  int // kill abruptly after this many new completions (0 = never)
	shardWedgeAt int // blackhole after this many new completions (0 = never)
	shardSlow    time.Duration
}

// compileFaults validates the plan against the campaign and indexes
// it for the executor. A nil plan compiles to a nil injector. sh is
// the shard identity of a RunShard invocation (nil under plain Run):
// shard faults arm only when their (shard, attempt) matches it.
func compileFaults(p *FaultPlan, c Campaign, sh *ShardRun) (*faultInjector, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(c); err != nil {
		return nil, err
	}
	inj := &faultInjector{
		panics:    make(map[panicKey]int, len(p.Panics)),
		ckptFails: make(map[int]bool, len(p.CheckpointWrites)),
		delays:    make(map[int]time.Duration, len(p.Delays)),
		killAfter: p.KillAfterTrials,
	}
	for _, f := range p.Panics {
		attempts := f.Attempts
		if attempts == 0 {
			attempts = 1
		}
		point := f.Point
		if point == "" {
			point = PointSubmit
		}
		inj.panics[panicKey{f.Scenario, f.Replication, point}] = attempts
	}
	for _, w := range p.CheckpointWrites {
		inj.ckptFails[w] = true
	}
	for _, d := range p.Delays {
		inj.delays[d.Worker] = time.Duration(d.PerTrialMS) * time.Millisecond
	}
	if sh != nil {
		for _, sf := range p.Shards {
			attempts := sf.Attempts
			if attempts == 0 {
				attempts = 1
			}
			if sf.Shard != sh.Index || sh.Attempt > attempts {
				continue
			}
			switch sf.Mode {
			case ShardKill:
				inj.shardKillAt = sf.AfterTrials
			case ShardBlackhole:
				inj.shardWedgeAt = sf.AfterTrials
			case ShardSlow:
				inj.shardSlow = time.Duration(sf.DelayMS) * time.Millisecond
			}
		}
	}
	return inj, nil
}

// hitPoint panics iff the plan schedules this (scenario, replication,
// point) to panic on this attempt. Called from inside runTrial so the
// injected failure traverses the real recover/quarantine/retry path.
func (f *faultInjector) hitPoint(scenario string, rep, attempt int, point string) {
	if f == nil {
		return
	}
	if n := f.panics[panicKey{scenario, rep, point}]; n > 0 && attempt <= n {
		panic(fmt.Sprintf("fleet chaos: injected panic at %s (scenario %q replication %d attempt %d)", point, scenario, rep, attempt))
	}
}

// checkpointWriteErr fails the write-th checkpoint write if planned.
func (f *faultInjector) checkpointWriteErr(write int) error {
	if f == nil || !f.ckptFails[write] {
		return nil
	}
	return fmt.Errorf("%w (write %d)", ErrInjectedCheckpointFailure, write)
}

// delayWorker sleeps if the plan delays this worker.
func (f *faultInjector) delayWorker(worker int) {
	if f == nil {
		return
	}
	if d := f.delays[worker]; d > 0 {
		time.Sleep(d)
	}
}

// killAfterTrials returns the plan's kill threshold (0 = never).
func (f *faultInjector) killAfterTrials() int {
	if f == nil {
		return 0
	}
	return f.killAfter
}

// delayShardTrial sleeps every worker per trial when a slow-shard
// fault is armed (wall-clock only, never results).
func (f *faultInjector) delayShardTrial() {
	if f == nil {
		return
	}
	if f.shardSlow > 0 {
		time.Sleep(f.shardSlow)
	}
}

// shardFaultAt reports the armed shard fault firing at the n-th new
// completion of this attempt ("" = none). Kill wins a tie: an abrupt
// death subsumes a wedge.
func (f *faultInjector) shardFaultAt(n int) string {
	if f == nil {
		return ""
	}
	if f.shardKillAt > 0 && n == f.shardKillAt {
		return ShardKill
	}
	if f.shardWedgeAt > 0 && n == f.shardWedgeAt {
		return ShardBlackhole
	}
	return ""
}
