package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestCampaignJSONRoundTrip(t *testing.T) {
	for _, c := range Presets() {
		data, err := EncodeCampaign(c)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name, err)
		}
		back, err := DecodeCampaign(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: decode: %v", c.Name, err)
		}
		if !reflect.DeepEqual(c, back) {
			t.Errorf("%s: round trip changed the campaign:\n%+v\nvs\n%+v", c.Name, c, back)
		}
	}
}

func TestDecodeCampaignRejectsUnknownFields(t *testing.T) {
	_, err := DecodeCampaign(strings.NewReader(`{"name":"x","scenarios":[{"name":"s","profile":"enhanced","horizn":5}]}`))
	if err == nil || !strings.Contains(err.Error(), "horizn") {
		t.Errorf("typo field accepted: %v", err)
	}
}

func TestCampaignValidate(t *testing.T) {
	base := smokeCampaign()
	if err := base.Validate(); err != nil {
		t.Fatalf("smoke preset invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Campaign){
		"no name":           func(c *Campaign) { c.Name = "" },
		"no scenarios":      func(c *Campaign) { c.Scenarios = nil },
		"duplicate names":   func(c *Campaign) { c.Scenarios[1].Name = c.Scenarios[0].Name },
		"unnamed scenario":  func(c *Campaign) { c.Scenarios[0].Name = "" },
		"unknown profile":   func(c *Campaign) { c.Scenarios[0].Profile = "turbo" },
		"unknown measure":   func(c *Campaign) { c.Scenarios[0].Ablate = []string{"warp-drive"} },
		"baseline ablation": func(c *Campaign) { c.Scenarios[1].Ablate = []string{"ubf"} }, // baseline has no measures to drop
		"unknown policy":    func(c *Campaign) { c.Scenarios[0].Policy = "round-robin" },
		"bad topology": func(c *Campaign) {
			c.Scenarios[0].Topology = core.Topology{ComputeNodes: -1, LoginNodes: 1, CoresPerNode: 1, MemPerNode: 1}
		},
		"bad workload":    func(c *Campaign) { c.Scenarios[0].Workload.Users = 0 },
		"no horizon":      func(c *Campaign) { c.Scenarios[0].Horizon = 0 },
		"no replications": func(c *Campaign) { c.Scenarios[0].Replications = 0 },
	} {
		c := smokeCampaign()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPresets(t *testing.T) {
	for _, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Errorf("preset %s: %v", c.Name, err)
		}
		if c.Trials() < 2 {
			t.Errorf("preset %s: only %d trials", c.Name, c.Trials())
		}
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset resolved")
	}
	if got := MustPreset(PresetE4PolicyGrid); len(got.Scenarios) != 3 {
		t.Errorf("e4 grid has %d scenarios, want 3", len(got.Scenarios))
	}
	// One control + one scenario per registry measure.
	if got := MustPreset(PresetE16AblationDrain); len(got.Scenarios) != 1+len(core.Measures()) {
		t.Errorf("e16 drain has %d scenarios, want %d", len(got.Scenarios), 1+len(core.Measures()))
	}
}

func TestTrialSeedKeying(t *testing.T) {
	a := Scenario{Name: "a"}
	b := Scenario{Name: "b"}
	if a.TrialSeed(1, 0) == a.TrialSeed(1, 1) {
		t.Error("replications share a seed")
	}
	if a.TrialSeed(1, 0) == b.TrialSeed(1, 0) {
		t.Error("scenarios share a seed")
	}
	if a.TrialSeed(1, 0) == a.TrialSeed(2, 0) {
		t.Error("master seed ignored")
	}
	if a.TrialSeed(1, 3) != a.TrialSeed(1, 3) {
		t.Error("seed not a pure function")
	}
}

// The acceptance criterion of the subsystem: identical bytes out for
// any worker count — pinned on the smoke preset AND the full
// E16-ablation preset at workers 1/4/8. Run under -race this also
// exercises the pool for data races.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, camp := range []Campaign{smokeCampaign(), e16AblationDrainCampaign()} {
		var want []byte
		for _, workers := range []int{1, 4, 8} {
			res, err := Run(camp, Options{Workers: workers, Seed: 7})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", camp.Name, workers, err)
			}
			got, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s workers=%d produced different bytes:\n%s\nvs workers=1:\n%s", camp.Name, workers, got, want)
			}
		}
	}
}

func TestRunAggregates(t *testing.T) {
	camp := smokeCampaign()
	res, err := Run(camp, Options{Workers: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaign != camp.Name || res.Seed != 11 {
		t.Errorf("result header = %q seed %d", res.Campaign, res.Seed)
	}
	if len(res.Scenarios) != len(camp.Scenarios) {
		t.Fatalf("scenario count %d, want %d", len(res.Scenarios), len(camp.Scenarios))
	}
	for i, s := range res.Scenarios {
		spec := camp.Scenarios[i]
		if s.Name != spec.Name {
			t.Errorf("scenario %d order: got %q want %q", i, s.Name, spec.Name)
		}
		if s.Replications != spec.Replications || s.Util.Count != int64(spec.Replications) ||
			s.Makespan.Count != int64(spec.Replications) || s.MakespanHist.N() != int64(spec.Replications) {
			t.Errorf("%s: aggregate counts %d/%d/%d/%d, want %d", s.Name,
				s.Replications, s.Util.Count, s.Makespan.Count, s.MakespanHist.N(), spec.Replications)
		}
		if s.Util.Mean <= 0 || s.Util.Mean > 1 {
			t.Errorf("%s: util mean %v outside (0, 1]", s.Name, s.Util.Mean)
		}
		if s.Unfinished != 0 {
			t.Errorf("%s: %d jobs unfinished at the horizon", s.Name, s.Unfinished)
		}
	}
	// The smoke mix injects OOM faults: the shared-policy baseline
	// must see cross-user cofailures the enhanced (wholenode) config
	// cannot have.
	byName := map[string]*ScenarioResult{}
	for _, s := range res.Scenarios {
		byName[s.Name] = s
	}
	if enh := byName["smoke/enhanced"]; enh.Cofailures != 0 {
		t.Errorf("enhanced (user-wholenode) saw %d cross-user cofailures", enh.Cofailures)
	}
}

func TestScenarioResultMergeGuards(t *testing.T) {
	a := &ScenarioResult{Name: "a"}
	if err := a.Merge(&ScenarioResult{Name: "b"}); err == nil {
		t.Error("cross-scenario merge accepted")
	}
}

func TestInfeasibleWorkloadRejectedAtLoadTime(t *testing.T) {
	// Infeasible campaigns must die in Validate (and therefore at the
	// top of Run), with the scenario named — never mid-run on a
	// worker.
	overCores := smokeCampaign()
	overCores.Scenarios = overCores.Scenarios[:1]
	overCores.Scenarios[0].Workload.MinCores = 4*8 + 1
	overCores.Scenarios[0].Workload.MaxCores = 4*8 + 1
	if err := overCores.Validate(); err == nil ||
		!strings.Contains(err.Error(), overCores.Scenarios[0].Name) {
		t.Errorf("over-cores campaign: want contextual validation error, got %v", err)
	}
	if _, err := Run(overCores, Options{Workers: 4, Seed: 1}); err == nil {
		t.Errorf("Run accepted an infeasible campaign")
	}

	overMem := smokeCampaign()
	overMem.Scenarios[1].Workload.MemB = 2 << 30 // > the 1<<30 MemPerNode: never places
	if err := overMem.Validate(); err == nil ||
		!strings.Contains(err.Error(), overMem.Scenarios[1].Name) {
		t.Errorf("over-memory campaign: want contextual validation error, got %v", err)
	}
}

// Non-positive replication counts and horizons must be rejected
// explicitly — naming the field, the scenario and the offending value
// — and before any profile resolution (an invalid profile must not
// mask the count error).
func TestScenarioValidateRejectsDegenerateCounts(t *testing.T) {
	base := smokeCampaign().Scenarios[0]
	for _, tc := range []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"zero replications", func(s *Scenario) { s.Replications = 0 }, "replications"},
		{"negative replications", func(s *Scenario) { s.Replications = -3 }, "replications"},
		{"zero horizon", func(s *Scenario) { s.Horizon = 0 }, "horizon"},
		{"negative horizon", func(s *Scenario) { s.Horizon = -50 }, "horizon"},
		{"degenerate count beats bad profile", func(s *Scenario) { s.Replications = -1; s.Profile = "turbo" }, "replications"},
	} {
		s := base
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), s.Name) {
			t.Errorf("%s: error %q does not name the field %q and scenario %q", tc.name, err, tc.want, s.Name)
		}
	}
}
