package fleet

import (
	"repro/internal/obs"
)

// The executor's observability wiring. All instrumentation funnels
// through runMetrics, a bundle of pre-registered obs handles: the
// handles are resolved ONCE per execute() — never on the trial hot
// path — and the zero value (every handle nil) is the disabled mode,
// where each update is a nil-check no-op. That split is what lets the
// hot path carry its instrumentation unconditionally while
// BenchmarkTrialLifecycle's allocs/trial stay flat whether or not a
// registry is wired (the obs package pins the handles' zero-alloc
// guarantee; TestObsNeutralByteIdentity pins that enabling them
// changes no output byte).

// TrialTickBuckets is the fixed bucket layout of the
// fleet_trial_ticks histogram: makespan in simulation ticks. Fixed at
// registration so per-shard registries merge (same rule as the
// makespan histogram in ScenarioResult).
var TrialTickBuckets = []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// runMetrics is the campaign executor's instrument bundle. Counter
// semantics are documented in DESIGN.md §11's metric catalogue.
type runMetrics struct {
	trialsCompleted    *obs.Counter // new trials completed this run
	trialsRestored     *obs.Counter // trials restored from a resume checkpoint
	trialPanics        *obs.Counter // trial attempts that panicked
	trialRetries       *obs.Counter // panicking attempts re-run under the identical seed
	trialsDegraded     *obs.Counter // trials that exhausted the retry budget
	poolHits           *obs.Counter // trials served by a pooled cluster via Reset
	poolBuilds         *obs.Counter // trials that built a cluster from scratch
	ckWrites           *obs.Counter // checkpoint write attempts (periodic + final)
	ckWriteFailures    *obs.Counter // checkpoint writes that failed (tolerated)
	schedSteps         *obs.Counter // real scheduler ticks executed across trials
	schedFastForwarded *obs.Counter // event-free ticks the analytic fast-forward skipped
	attackSteps        *obs.Counter // adversary campaign steps executed
	trialTicks         *obs.Histogram
}

// newRunMetrics resolves the bundle against a registry; a nil
// registry yields the all-nil (disabled) bundle.
func newRunMetrics(r *obs.Registry) runMetrics {
	if r == nil {
		return runMetrics{}
	}
	return runMetrics{
		trialsCompleted:    r.Counter("fleet_trials_completed_total", "campaign trials completed by this process (restored trials excluded; see fleet_trials_restored_total)"),
		trialsRestored:     r.Counter("fleet_trials_restored_total", "trials restored from a resume checkpoint instead of re-executed"),
		trialPanics:        r.Counter("fleet_trial_panics_total", "trial attempts that panicked and were isolated"),
		trialRetries:       r.Counter("fleet_trial_retries_total", "panicking trial attempts retried under the identical stream seed"),
		trialsDegraded:     r.Counter("fleet_trials_degraded_total", "trials that exhausted the retry budget and degraded to counted failures"),
		poolHits:           r.Counter("fleet_pool_hits_total", "trials served by a pooled per-worker cluster via Reset"),
		poolBuilds:         r.Counter("fleet_pool_builds_total", "trials that built a cluster from scratch"),
		ckWrites:           r.Counter("fleet_checkpoint_writes_total", "checkpoint sidecar write attempts (periodic and final)"),
		ckWriteFailures:    r.Counter("fleet_checkpoint_write_failures_total", "checkpoint writes that failed and were retried at the next interval"),
		schedSteps:         r.Counter("fleet_sched_steps_total", "real scheduler ticks executed inside trials"),
		schedFastForwarded: r.Counter("fleet_sched_fastforwarded_ticks_total", "event-free ticks the scheduler's analytic fast-forward skipped inside trials"),
		attackSteps:        r.Counter("fleet_attack_steps_total", "adversary campaign steps executed inside attacked trials"),
		trialTicks:         r.HistogramMetric("fleet_trial_ticks", "per-trial makespan in simulation ticks", TrialTickBuckets),
	}
}
