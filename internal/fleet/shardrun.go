package fleet

// Shard execution: the replication-range-restricted run underneath
// the fleetd supervision layer (internal/fleet/shard).
//
// A shard is a slice of a campaign — per scenario, a half-open
// replication sub-range — executed by the SAME engine as Run, under
// the same determinism contract. Its result artifact is deliberately
// not a CampaignResult but the PR-6 Checkpoint sidecar: per-trial
// aggregates at global replication indices, so the supervisor's merge
// re-enters the identical trial-index-order reduction Run uses and a
// sharded campaign's merged JSON is byte-identical to a 1-process run
// by construction. The same sidecar doubles as the shard's recovery
// state: a killed or wedged shard worker resumes from it instead of
// recomputing, exactly like an interrupted fleetrun.

import (
	"errors"
	"fmt"

	"repro/internal/attack"
)

// ErrShardKilled reports a shard run that died abruptly to an armed
// ShardKill fault without a Die hook: recording stopped at the fault
// point, no final checkpoint was written, and the sidecar on disk
// holds exactly the trials checkpointed before the kill.
var ErrShardKilled = errors.New("fleet: shard killed by fault plan (checkpoint frozen at the kill point)")

// ErrShardWedged reports a shard run that was blackholed: it silently
// completed or abandoned its remaining work with heartbeats and
// checkpoint writes frozen, lingered until Options.Interrupt fired,
// and wrote no final checkpoint.
var ErrShardWedged = errors.New("fleet: shard wedged by blackhole fault (heartbeats and checkpoints frozen)")

// RepRange is a half-open replication sub-range [Lo, Hi) of one
// scenario. An empty range (Lo == Hi) is valid: a shard may have no
// trials for a scenario (replications < shards).
type RepRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of replications in the range.
func (r RepRange) Len() int { return r.Hi - r.Lo }

// ShardRun identifies one supervised shard attempt.
type ShardRun struct {
	// Index / Count place this run in the shard plan; Index keys
	// FaultPlan shard faults.
	Index int
	Count int
	// Attempt is the supervisor's 1-based retry attempt; shard faults
	// fire only while Attempt <= their Attempts budget (default 1),
	// so a retried shard recovers deterministically. 0 means 1.
	Attempt int
	// Ranges is the per-scenario replication sub-range, aligned with
	// the campaign's scenario order (the shard planner's output).
	Ranges []RepRange
	// Die, when non-nil, is called when a ShardKill fault fires — the
	// re-exec'd fleetrun worker SIGKILLs itself here, making the
	// death a real abrupt process exit. When nil (in-process workers)
	// or when Die returns, the run dies softly with ErrShardKilled.
	Die func()
}

// validate rejects a shard spec the campaign cannot satisfy and
// defaults Attempt.
func (sh *ShardRun) validate(c Campaign) error {
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("fleet: shard index %d outside [0, %d)", sh.Index, sh.Count)
	}
	if sh.Attempt == 0 {
		sh.Attempt = 1
	}
	if sh.Attempt < 1 {
		return fmt.Errorf("fleet: shard attempt %d is not 1-based", sh.Attempt)
	}
	if len(sh.Ranges) != len(c.Scenarios) {
		return fmt.Errorf("fleet: shard has %d ranges, campaign has %d scenarios", len(sh.Ranges), len(c.Scenarios))
	}
	for i, r := range sh.Ranges {
		if r.Lo < 0 || r.Hi < r.Lo || r.Hi > c.Scenarios[i].Replications {
			return fmt.Errorf("fleet: shard range [%d, %d) invalid for scenario %q with %d replications",
				r.Lo, r.Hi, c.Scenarios[i].Name, c.Scenarios[i].Replications)
		}
	}
	return nil
}

// Trials returns the shard's trial count.
func (sh *ShardRun) Trials() int {
	n := 0
	for _, r := range sh.Ranges {
		n += r.Len()
	}
	return n
}

// RunShard executes the shard's slice of the campaign and returns the
// final checkpoint — per-trial aggregates at global replication
// indices, the artifact the supervisor merges — plus the structured
// failure ledger. Options.CheckpointPath is required: the sidecar IS
// the shard's durable result, written periodically for recovery and
// once more on success. Resume, panic isolation, interrupt drain and
// campaign-level chaos all behave exactly as under Run; shard-level
// FaultPlan faults (kill, blackhole, slow) additionally arm against
// sh's (Index, Attempt).
func RunShard(c Campaign, opt Options, sh ShardRun) (*Checkpoint, []TrialFailure, error) {
	if opt.CheckpointPath == "" {
		return nil, nil, fmt.Errorf("fleet: RunShard requires Options.CheckpointPath (the sidecar is the shard's result artifact)")
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	if err := sh.validate(c); err != nil {
		return nil, nil, err
	}
	return runShard(c, opt, &sh)
}

// DegradedTrialResult is the aggregate a trial degrades to when it
// cannot be completed — every panic retry exhausted, or its shard's
// supervisor retry budget spent: zero samples under the scenario's
// histogram layout (so trial-index-order merging is untouched) and
// one counted failure. An attacked scenario's degraded trial carries
// an empty attack aggregate for the same reason: Merge requires every
// partial of a scenario to agree on attack presence.
func DegradedTrialResult(s *Scenario) *ScenarioResult {
	tr := &trialResult{}
	tr.hist = histogramFor(s, tr.counts[:])
	tr.res = ScenarioResult{Name: s.Name, MakespanHist: &tr.hist, Failures: 1}
	if s.Attack != nil {
		tr.res.Attack = attack.NewAgg()
	}
	return &tr.res
}
