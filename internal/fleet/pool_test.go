package fleet

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// The tentpole acceptance criterion: campaign JSON is byte-identical
// with pooling enabled vs disabled, for any worker count. The sweep
// covers every Reset() path the registry exposes — the e16 preset is
// the control plus one scenario per measure (all 9 ablations, each
// reopening a different subsystem), the smoke preset covers both
// profiles, and the e4 grid covers all three sharing policies with
// OOM crash/restore cycles. Run under -race (CI does) this also
// proves the per-worker pool shares nothing.
func TestPoolingEquivalenceSweep(t *testing.T) {
	if len(core.Measures()) != 9 {
		t.Fatalf("measure registry has %d entries; the sweep claim assumes 9 — update this test", len(core.Measures()))
	}
	for _, camp := range []Campaign{smokeCampaign(), e16AblationDrainCampaign(), e4PolicyGridCampaign()} {
		t.Run(camp.Name, func(t *testing.T) {
			var want []byte
			for _, pooled := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					res, err := Run(camp, Options{Workers: workers, Seed: 7, DisablePooling: !pooled})
					if err != nil {
						t.Fatalf("pooled=%v workers=%d: %v", pooled, workers, err)
					}
					got, err := res.JSON()
					if err != nil {
						t.Fatal(err)
					}
					if want == nil {
						want = got
						continue
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("pooled=%v workers=%d produced different bytes:\n%s\nvs\n%s",
							pooled, workers, got, want)
					}
				}
			}
		})
	}
}

// A trial abandoned mid-flight — users provisioned, half the mix
// submitted, the simulation a few ticks in, nothing drained — must
// leave no trace after Reset: the next pooled trial on that cluster
// is byte-identical to the same trial on a never-used worker. This is
// the Reset contract the panic-isolation path leans on for ordinary
// interruption (the quarantine path additionally assumes a panicked
// trial may have broken Reset itself, which is why it rebuilds).
func TestResetAfterAbandonedTrial(t *testing.T) {
	camp := smokeCampaign()
	comp, err := compileCampaign(camp, 7)
	if err != nil {
		t.Fatal(err)
	}

	w := newTrialWorker(comp, true)
	if _, err := w.runTrial(0, 0); err != nil {
		t.Fatal(err)
	}
	c := w.slots[0].cluster
	if c == nil {
		t.Fatal("pooling worker retained no cluster")
	}

	// Dirty the pooled cluster the way an interrupted trial would:
	// submit a partial mix against the provisioned users, advance the
	// clock, walk away.
	mix, err := camp.Scenarios[0].Workload.Build(metrics.NewRNG(99), w.slots[0].users)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mix[:len(mix)/2] {
		if _, err := c.Sched.Submit(mix[i].Cred, mix[i].Spec); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		c.Step()
	}

	// runTrial Resets the pooled cluster before reuse; the abandoned
	// state must not leak into replication 1's aggregate.
	got, err := w.runTrial(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := newTrialWorker(comp, false).runTrial(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("abandoned-trial state leaked through Reset:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

// Pooled replications must cost a small fraction of fresh-construction
// replications in allocations — the allocs half of the lifecycle
// acceptance criterion, pinned here deterministically (allocation
// counts don't suffer benchmark-container noise; the ns half lives in
// BenchmarkTrialLifecycle / BENCH_PR5.json).
func TestPooledTrialAllocsReduction(t *testing.T) {
	camp := LifecycleCampaign(8)
	comp, err := compileCampaign(camp, 42)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(pooling bool) float64 {
		w := newTrialWorker(comp, pooling)
		if _, err := w.runTrial(0, 0); err != nil { // warm the pool + scratch
			t.Fatal(err)
		}
		rep := 0
		return testing.AllocsPerRun(10, func() {
			rep++
			if _, err := w.runTrial(0, rep%camp.Scenarios[0].Replications); err != nil {
				t.Fatal(err)
			}
		})
	}
	fresh := measure(false)
	pooled := measure(true)
	t.Logf("allocs/trial: fresh %.0f, pooled %.0f (-%.1f%%)", fresh, pooled, 100*(1-pooled/fresh))
	if pooled > fresh*0.40 {
		t.Errorf("pooled trial allocates %.0f vs fresh %.0f: reduction %.1f%% < required 60%%",
			pooled, fresh, 100*(1-pooled/fresh))
	}
}
