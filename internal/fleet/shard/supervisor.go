package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// Supervision defaults. The heartbeat timeout is deliberately lax:
// a slow shard that still beats is making progress and must NOT be
// killed (the slow-shard fault pins this); only a silent one is dead.
const (
	DefaultShards           = 2
	DefaultHeartbeatTimeout = 10 * time.Second
	DefaultShardRetries     = 2
	DefaultBackoffBase      = 100 * time.Millisecond
	DefaultBackoffMax       = 5 * time.Second
)

// Options configures Supervise.
type Options struct {
	// Shards is the worker count the campaign is planned across;
	// <= 0 means DefaultShards. Results never depend on it.
	Shards int
	Seed   uint64
	// Workers is each shard attempt's fleet worker-goroutine count
	// (0 = GOMAXPROCS) — wall-clock only, like everywhere else.
	Workers int
	// Dir holds the campaign's working set: campaign.json and
	// chaos.json for exec workers, and per-shard sidecars and
	// heartbeat files. Required; the sidecars ARE the crash-recovery
	// state, so the caller chooses where they live.
	Dir string
	// Launcher runs shard attempts; nil means InProc{}.
	Launcher Launcher
	// Faults is the chaos plan, forwarded to every shard attempt.
	// Campaign-level faults fire in whichever shard owns the target
	// trial; shard-level faults arm against each worker's own index.
	Faults *fleet.FaultPlan
	// CheckpointEvery is the shard workers' periodic-write cadence;
	// <= 0 means 1 (every trial) — a supervised shard's sidecar is its
	// recovery state, so the default trades write traffic for losing
	// at most nothing on a kill.
	CheckpointEvery int
	// HeartbeatTimeout: a shard whose heartbeat does not advance for
	// this long is declared wedged, killed, and retried. 0 means
	// DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// AttemptDeadline bounds one attempt's wall clock; 0 = unbounded.
	AttemptDeadline time.Duration
	// MaxShardRetries is how many times a dead/wedged shard is
	// relaunched (resuming from its sidecar) before it degrades to
	// counted failures. 0 means DefaultShardRetries; negative disables
	// retries.
	MaxShardRetries int
	// BackoffBase/BackoffMax shape the exponential retry backoff:
	// attempt k sleeps min(BackoffBase·2^(k-1), BackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Drain, when closed, gracefully stops the campaign: running
	// attempts are drained (they checkpoint), no retries launch, and
	// Supervise returns *DrainedError.
	Drain <-chan struct{}
	// OnScenario streams each scenario's merged result as soon as its
	// replications are all covered, in ascending scenario order —
	// trial-index order, preserved. Called from Supervise's goroutine.
	OnScenario func(index int, res *fleet.ScenarioResult)
	// Status, when non-nil, is kept current with per-shard progress
	// for external observers (the fleetd status endpoint).
	Status *Status
	// Metrics, when non-nil, receives the shard_* supervision counters
	// and — for in-process launchers — each attempt's fleet_* trial
	// counters. Observability only; results never depend on it.
	Metrics *obs.Registry
	// Logf receives supervision events (launches, kills, retries);
	// nil discards them.
	Logf func(format string, args ...any)
}

// Status is a concurrently-readable snapshot of per-shard progress.
type Status struct {
	mu     sync.Mutex
	shards []ShardStatus
}

// ShardStatus is one shard's externally visible state.
type ShardStatus struct {
	Shard     int    `json:"shard"`
	State     string `json:"state"` // pending | running | backoff | done | degraded | drained
	Attempt   int    `json:"attempt"`
	Completed int    `json:"completed"`
}

func (st *Status) init(n int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.shards = make([]ShardStatus, n)
	for i := range st.shards {
		st.shards[i] = ShardStatus{Shard: i, State: "pending"}
	}
}

func (st *Status) set(i int, f func(*ShardStatus)) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if i < len(st.shards) {
		f(&st.shards[i])
	}
}

// Snapshot returns a copy of the per-shard states.
func (st *Status) Snapshot() []ShardStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]ShardStatus(nil), st.shards...)
}

// DrainedError reports a campaign stopped by Options.Drain: every
// running shard checkpointed and stopped, and the sidecars in Dir can
// seed a future resubmission.
type DrainedError struct {
	Dir string
}

func (e *DrainedError) Error() string {
	return fmt.Sprintf("shard: campaign drained before completion (shard sidecars preserved in %s)", e.Dir)
}

// errDrained flows from the monitor to the shard loop; it never
// escapes Supervise (it becomes *DrainedError).
var errDrained = errors.New("drained")

// shardOutcome is one shard's terminal state.
type shardOutcome struct {
	ck       *fleet.Checkpoint // final sidecar; best-effort (possibly nil) when degraded/drained
	degraded bool
	drained  bool
	fails    []fleet.TrialFailure
}

// supervisor carries Supervise's per-campaign state.
type supervisor struct {
	c     fleet.Campaign
	opt   Options
	plan  []Assignment
	drain <-chan struct{}
	m     shardMetrics

	campPath   string
	faultsPath string
}

// Supervise runs the campaign as opt.Shards supervised shard workers
// and returns the merged result.
//
// Failure model: a shard whose attempt dies (process death, soft
// kill), wedges (heartbeat stops advancing), or overruns its deadline
// is relaunched with exponential backoff, resuming from its own
// checkpoint sidecar — completed trials are never recomputed, and
// because restored aggregates re-enter the reduction at their own
// trial indices the merged bytes are unchanged by any number of
// retries. A shard that exhausts its retry budget degrades: its
// still-missing trials merge as counted per-scenario failures and
// every sibling scenario's statistics are untouched. Only Drain stops
// the campaign early.
func Supervise(c fleet.Campaign, opt Options) (*fleet.CampaignResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Dir == "" {
		return nil, fmt.Errorf("shard: Options.Dir is required (shard sidecars and heartbeats live there)")
	}
	if opt.Shards <= 0 {
		opt.Shards = DefaultShards
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 1
	}
	if opt.HeartbeatTimeout <= 0 {
		opt.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = DefaultBackoffBase
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = DefaultBackoffMax
	}
	if opt.Launcher == nil {
		opt.Launcher = InProc{}
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	if opt.Faults != nil {
		if err := opt.Faults.Validate(c); err != nil {
			return nil, err
		}
		for _, sf := range opt.Faults.Shards {
			if sf.Shard >= opt.Shards {
				return nil, fmt.Errorf("shard: fault targets shard %d but the campaign runs %d shards", sf.Shard, opt.Shards)
			}
		}
	}
	plan, err := Plan(c, opt.Shards)
	if err != nil {
		return nil, err
	}
	s := &supervisor{c: c, opt: opt, plan: plan, drain: opt.Drain, m: newShardMetrics(opt.Metrics)}
	if s.drain == nil {
		s.drain = make(chan struct{}) // never closes
	}
	if opt.Status != nil {
		opt.Status.init(opt.Shards)
	}
	if err := s.writeInputs(); err != nil {
		return nil, err
	}
	return s.run()
}

// writeInputs persists the campaign (and fault plan) to Dir so exec
// workers load byte-identical definitions — the campaign hash in
// every sidecar then matches by construction.
func (s *supervisor) writeInputs() error {
	data, err := fleet.EncodeCampaign(s.c)
	if err != nil {
		return err
	}
	s.campPath = filepath.Join(s.opt.Dir, "campaign.json")
	if err := fleet.WriteFileAtomic(s.campPath, data); err != nil {
		return err
	}
	if s.opt.Faults != nil {
		data, err := json.MarshalIndent(s.opt.Faults, "", "  ")
		if err != nil {
			return err
		}
		s.faultsPath = filepath.Join(s.opt.Dir, "chaos.json")
		if err := fleet.WriteFileAtomic(s.faultsPath, append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}

func (s *supervisor) sidecarPath(i int) string {
	return filepath.Join(s.opt.Dir, fmt.Sprintf("shard-%d.ck.json", i))
}

// run launches the shard loops and streams merged scenarios as
// coverage completes.
func (s *supervisor) run() (*fleet.CampaignResult, error) {
	type shardDone struct {
		i   int
		out shardOutcome
	}
	results := make(chan shardDone, len(s.plan))
	for i := range s.plan {
		go func(i int) { results <- shardDone{i, s.superviseShard(i)} }(i)
	}

	outcomes := make([]*shardOutcome, len(s.plan))
	merged := make([]*fleet.ScenarioResult, len(s.c.Scenarios))
	next := 0
	pending := len(s.plan)
	// The scanner wakes on every shard completion and on a slow tick:
	// periodic sidecar writes let a scenario's coverage complete long
	// before any shard exits, and the tick picks that up.
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for pending > 0 {
		select {
		case r := <-results:
			outcomes[r.i] = &r.out
			pending--
		case <-tick.C:
		}
		next = s.advance(outcomes, merged, next, false)
	}

	for _, out := range outcomes {
		if out.drained {
			return nil, &DrainedError{Dir: s.opt.Dir}
		}
	}
	if next = s.advance(outcomes, merged, next, true); next < len(s.c.Scenarios) {
		return nil, fmt.Errorf("shard: scenario %q could not be merged from the shard sidecars", s.c.Scenarios[next].Name)
	}

	res := &fleet.CampaignResult{Campaign: s.c.Name, Seed: s.opt.Seed, Scenarios: merged}
	res.TrialFailures = gatherFailures(s.c, outcomes)
	return res, nil
}

// advance merges scenarios [next, …) whose replications are fully
// covered — by terminal shards' final sidecars and live shards'
// periodic ones — emitting each exactly once, in ascending order.
// Degraded gap-filling is only allowed once every shard is terminal
// (final=true, or all outcomes present): until then a missing
// replication means "not yet", not "never".
func (s *supervisor) advance(outcomes []*shardOutcome, merged []*fleet.ScenarioResult, next int, final bool) int {
	allDone := true
	anyDegraded := false
	cks := make([]*fleet.Checkpoint, 0, len(s.plan))
	for i, out := range outcomes {
		if out == nil {
			allDone = false
			if ck := s.loadSidecar(i); ck != nil {
				cks = append(cks, ck)
			}
			continue
		}
		anyDegraded = anyDegraded || out.degraded
		if out.ck != nil {
			cks = append(cks, out.ck)
		}
	}
	degrade := (final || allDone) && anyDegraded
	for ; next < len(s.c.Scenarios); next++ {
		partials, err := collectPartials(s.c, cks, next)
		if err != nil {
			s.opt.Logf("scenario %d: %v", next, err)
			return next
		}
		agg, err := mergeScenario(&s.c.Scenarios[next], partials, degrade)
		if err != nil {
			return next // incomplete coverage: try again on the next wake
		}
		merged[next] = agg
		if s.opt.OnScenario != nil {
			s.opt.OnScenario(next, agg)
		}
	}
	return next
}

// superviseShard is one shard's attempt loop: launch, monitor, and on
// failure resume from the sidecar with exponential backoff until the
// retry budget is spent.
func (s *supervisor) superviseShard(i int) shardOutcome {
	maxAttempts := s.opt.MaxShardRetries + 1
	switch {
	case s.opt.MaxShardRetries == 0:
		maxAttempts = DefaultShardRetries + 1
	case s.opt.MaxShardRetries < 0:
		maxAttempts = 1
	}
	var fails []fleet.TrialFailure
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		select {
		case <-s.drain:
			s.opt.Status.set(i, func(st *ShardStatus) { st.State = "drained" })
			return shardOutcome{ck: s.loadSidecar(i), drained: true, fails: fails}
		default:
		}
		s.opt.Status.set(i, func(st *ShardStatus) { st.State, st.Attempt = "running", attempt })
		resume := s.loadSidecar(i)
		if resume != nil {
			s.opt.Logf("shard %d attempt %d: resuming from sidecar (%d trials done)", i, attempt, resume.Completed)
		}
		s.m.attempts.Inc()
		att, err := s.opt.Launcher.Launch(AttemptSpec{
			Campaign:        s.c,
			CampaignPath:    s.campPath,
			Seed:            s.opt.Seed,
			Workers:         s.opt.Workers,
			Shard:           s.plan[i],
			Shards:          len(s.plan),
			Attempt:         attempt,
			CheckpointPath:  s.sidecarPath(i),
			HeartbeatPath:   filepath.Join(s.opt.Dir, fmt.Sprintf("shard-%d.hb.json", i)),
			CheckpointEvery: s.opt.CheckpointEvery,
			Resume:          resume,
			Faults:          s.opt.Faults,
			FaultsPath:      s.faultsPath,
			FailuresPath:    filepath.Join(s.opt.Dir, fmt.Sprintf("shard-%d.failures.json", i)),
			Metrics:         s.opt.Metrics,
		})
		var attErr error
		if err != nil {
			attErr = fmt.Errorf("launch: %w", err)
		} else {
			attErr = s.monitor(i, att)
			fails = append(fails, att.Failures()...)
			if errors.Is(attErr, errDrained) {
				s.opt.Status.set(i, func(st *ShardStatus) { st.State = "drained" })
				return shardOutcome{ck: s.loadSidecar(i), drained: true, fails: fails}
			}
		}
		if attErr == nil {
			ck := s.loadSidecar(i)
			if ck != nil && s.covers(ck, i) {
				s.opt.Status.set(i, func(st *ShardStatus) { st.State, st.Completed = "done", ck.Completed })
				return shardOutcome{ck: ck, fails: fails}
			}
			// A clean exit without full coverage is a worker bug, but
			// the supervisor treats it like any other failure: retry.
			attErr = fmt.Errorf("exited cleanly but the sidecar does not cover the shard's ranges")
		}
		s.opt.Logf("shard %d attempt %d failed: %v", i, attempt, attErr)
		if attempt < maxAttempts {
			s.opt.Status.set(i, func(st *ShardStatus) { st.State = "backoff" })
			s.m.backoffs.Inc()
			if !s.backoff(attempt) {
				s.opt.Status.set(i, func(st *ShardStatus) { st.State = "drained" })
				return shardOutcome{ck: s.loadSidecar(i), drained: true, fails: fails}
			}
		}
	}
	// Retry budget spent: degrade to counted failures. The sibling
	// scenarios and every trial this shard DID checkpoint are kept —
	// only the still-missing trials become failures.
	s.opt.Logf("shard %d: retry budget exhausted; degrading missing trials to counted failures", i)
	s.m.degraded.Inc()
	s.opt.Status.set(i, func(st *ShardStatus) { st.State = "degraded" })
	return shardOutcome{ck: s.loadSidecar(i), degraded: true, fails: fails}
}

// monitor watches one attempt: completion, heartbeat staleness,
// deadline, drain. On staleness or deadline the attempt is killed and
// the error reported for retry.
func (s *supervisor) monitor(i int, att Attempt) error {
	start := time.Now()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-att.Done():
			return att.Err()
		case <-s.drain:
			s.opt.Logf("shard %d: draining", i)
			att.Drain()
			<-att.Done()
			return errDrained
		case <-tick.C:
			completed, last := att.Heartbeat()
			s.opt.Status.set(i, func(st *ShardStatus) { st.Completed = completed })
			if stale := time.Since(last); stale > s.opt.HeartbeatTimeout {
				s.opt.Logf("shard %d: no heartbeat for %v; killing", i, stale.Round(time.Millisecond))
				s.m.heartbeatStalls.Inc()
				att.Kill()
				<-att.Done()
				return fmt.Errorf("heartbeat stalled for %v (wedged)", stale.Round(time.Millisecond))
			}
			if s.opt.AttemptDeadline > 0 && time.Since(start) > s.opt.AttemptDeadline {
				s.opt.Logf("shard %d: attempt deadline %v exceeded; killing", i, s.opt.AttemptDeadline)
				s.m.deadlineKills.Inc()
				att.Kill()
				<-att.Done()
				return fmt.Errorf("attempt deadline %v exceeded", s.opt.AttemptDeadline)
			}
		}
	}
}

// backoff sleeps min(base·2^(attempt-1), max); false means the drain
// fired instead.
func (s *supervisor) backoff(attempt int) bool {
	d := s.opt.BackoffBase << uint(attempt-1)
	if d > s.opt.BackoffMax || d <= 0 {
		d = s.opt.BackoffMax
	}
	select {
	case <-time.After(d):
		return true
	case <-s.drain:
		return false
	}
}

// loadSidecar reads shard i's checkpoint, returning nil for a missing
// or invalid file — "nothing to resume", never fatal: the worst case
// is recomputing trials, which is deterministic anyway.
func (s *supervisor) loadSidecar(i int) *fleet.Checkpoint {
	ck, err := fleet.LoadCheckpoint(s.sidecarPath(i))
	if err != nil {
		if !os.IsNotExist(err) {
			s.opt.Logf("shard %d: ignoring unreadable sidecar: %v", i, err)
		}
		return nil
	}
	if err := ck.ValidateAgainst(s.c, s.opt.Seed); err != nil {
		s.opt.Logf("shard %d: ignoring stale sidecar: %v", i, err)
		return nil
	}
	return ck
}

// covers reports whether the sidecar completed every trial in shard
// i's assignment.
func (s *supervisor) covers(ck *fleet.Checkpoint, i int) bool {
	for si, r := range s.plan[i].Ranges {
		for rep := r.Lo; rep < r.Hi; rep++ {
			if !ck.Scenarios[si].Done.Get(rep) {
				return false
			}
		}
	}
	return true
}

// gatherFailures flattens the shards' failure ledgers back into the
// campaign's canonical trial-index order (then attempt order), so the
// merged ledger is identical to a 1-process run's ordering.
func gatherFailures(c fleet.Campaign, outcomes []*shardOutcome) []fleet.TrialFailure {
	idx := make(map[string]int, len(c.Scenarios))
	for i, sc := range c.Scenarios {
		idx[sc.Name] = i
	}
	var all []fleet.TrialFailure
	for _, out := range outcomes {
		if out != nil {
			all = append(all, out.fails...)
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if idx[all[a].Scenario] != idx[all[b].Scenario] {
			return idx[all[a].Scenario] < idx[all[b].Scenario]
		}
		if all[a].Replication != all[b].Replication {
			return all[a].Replication < all[b].Replication
		}
		return all[a].Attempt < all[b].Attempt
	})
	return all
}
