package shard

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/fleet"
)

// Heartbeat is the liveness record an exec-mode shard worker writes
// (atomically, like every artifact) after each completed trial. The
// supervisor does not trust the file's mtime — filesystems round it,
// and a blackholed worker must look dead — it trusts Seq: a strictly
// increasing counter, so any change proves the worker made progress
// since the last poll. Completed rides along for status reporting.
type Heartbeat struct {
	Shard     int `json:"shard"`
	Attempt   int `json:"attempt"`
	Completed int `json:"completed"`
	Seq       int `json:"seq"`
}

// WriteHeartbeat persists a heartbeat via the temp+rename discipline,
// so a poller never reads a torn record.
func WriteHeartbeat(path string, hb Heartbeat) error {
	data, err := json.Marshal(hb)
	if err != nil {
		return err
	}
	return fleet.WriteFileAtomic(path, append(data, '\n'))
}

// ReadHeartbeat loads a heartbeat file. A missing file is an error
// the poller treats as "no beat yet", not as a dead worker — workers
// write their first beat only after their first completed trial.
func ReadHeartbeat(path string) (Heartbeat, error) {
	var hb Heartbeat
	data, err := os.ReadFile(path)
	if err != nil {
		return hb, err
	}
	if err := json.Unmarshal(data, &hb); err != nil {
		return hb, fmt.Errorf("shard: decoding heartbeat %s: %w", path, err)
	}
	return hb, nil
}
