// Package shard is the supervision layer that turns the fleet
// executor into a service: it plans a campaign into per-scenario
// replication-range shards, runs each shard as a supervised worker
// (in-process, or a re-exec'd fleetrun — same interface) with
// heartbeats, deadlines and bounded retry-with-exponential-backoff,
// and merges the shards' checkpoint sidecars back into a campaign
// result whose JSON is byte-identical to a 1-process fleet.Run.
//
// The byte-identity argument is inherited, not re-proven: a shard's
// artifact is the PR-6 checkpoint — per-trial aggregates at global
// replication indices — so the merge re-enters the identical
// trial-index-order reduction Run uses, trial RNG streams are keyed
// by (scenario, replication) and never by shard, and float64 values
// survive the sidecar's JSON round-trip exactly. A dead or wedged
// shard resumes from its own sidecar instead of recomputing; a shard
// that exhausts its retry budget degrades to counted per-scenario
// failures rather than failing the campaign.
package shard

import (
	"fmt"

	"repro/internal/fleet"
)

// Assignment is one shard's slice of a campaign: per scenario, a
// contiguous half-open replication range. Ranges may be empty — a
// scenario with fewer replications than shards simply skips some
// shards.
type Assignment struct {
	Shard  int              `json:"shard"`
	Ranges []fleet.RepRange `json:"ranges"`
}

// Trials returns the assignment's trial count.
func (a Assignment) Trials() int {
	n := 0
	for _, r := range a.Ranges {
		n += r.Len()
	}
	return n
}

// Plan splits every scenario's replication range [0, Replications)
// into `shards` contiguous sub-ranges, shard i taking
// [reps*i/shards, reps*(i+1)/shards). The split is balanced (range
// sizes differ by at most one), deterministic, and a partition by
// construction: the union over shards covers every (scenario,
// replication) exactly once — gated by TestPlanCoversExactlyOnce.
// Both sides of a re-exec compute the same plan from (campaign,
// shards) alone, so a worker needs only its index, not a range list.
func Plan(c fleet.Campaign, shards int) ([]Assignment, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1 (got %d)", shards)
	}
	plan := make([]Assignment, shards)
	for i := range plan {
		plan[i] = Assignment{Shard: i, Ranges: make([]fleet.RepRange, len(c.Scenarios))}
	}
	for si, s := range c.Scenarios {
		for i := 0; i < shards; i++ {
			plan[i].Ranges[si] = fleet.RepRange{
				Lo: s.Replications * i / shards,
				Hi: s.Replications * (i + 1) / shards,
			}
		}
	}
	return plan, nil
}
