package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fleet"
)

// cleanJSON is the 1-process fleet.Run baseline every supervised run
// is compared against, byte for byte.
func cleanJSON(t *testing.T, c fleet.Campaign, seed uint64) []byte {
	t.Helper()
	res, err := fleet.Run(c, fleet.Options{Workers: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func superviseJSON(t *testing.T, c fleet.Campaign, opt Options) []byte {
	t.Helper()
	res, err := Supervise(c, opt)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The tentpole acceptance criterion, in-process: a supervised N-shard
// campaign under an active shard-level fault plan — abrupt kill,
// heartbeat blackhole, slow shard — produces merged JSON
// byte-identical to a clean 1-process run. Kill and blackhole force a
// retry that resumes from the shard's own sidecar; slow proves a
// shard that still heartbeats is left alone.
func TestSupervisedByteIdenticalUnderChaos(t *testing.T) {
	camp := fleet.MustPreset("smoke")
	clean := cleanJSON(t, camp, 7)
	for name, plan := range map[string]*fleet.FaultPlan{
		"kill shard":      {Shards: []fleet.ShardFault{{Shard: 0, Mode: fleet.ShardKill, AfterTrials: 1}}},
		"blackhole shard": {Shards: []fleet.ShardFault{{Shard: 1, Mode: fleet.ShardBlackhole, AfterTrials: 1}}},
		"slow shard":      {Shards: []fleet.ShardFault{{Shard: 0, Mode: fleet.ShardSlow, DelayMS: 20}}},
		"kill both": {Shards: []fleet.ShardFault{
			{Shard: 0, Mode: fleet.ShardKill, AfterTrials: 1},
			{Shard: 1, Mode: fleet.ShardKill, AfterTrials: 2},
		}},
	} {
		t.Run(name, func(t *testing.T) {
			var status Status
			got := superviseJSON(t, camp, Options{
				Shards: 2, Seed: 7, Dir: t.TempDir(),
				Faults:           plan,
				HeartbeatTimeout: 1500 * time.Millisecond,
				BackoffBase:      time.Millisecond,
				Status:           &status,
				Logf:             t.Logf,
			})
			if !bytes.Equal(got, clean) {
				t.Fatalf("supervised bytes differ from the clean 1-process run:\n%s\nvs\n%s", got, clean)
			}
			for _, st := range status.Snapshot() {
				if st.State != "done" {
					t.Errorf("shard %d ended %q, want done", st.Shard, st.State)
				}
			}
		})
	}
}

// A slow-but-heartbeating shard must never be killed: its first and
// only attempt completes. This is the line between "slow" and
// "wedged" the heartbeat protocol draws.
func TestSlowShardNotRetried(t *testing.T) {
	camp := fleet.MustPreset("smoke")
	var status Status
	superviseJSON(t, camp, Options{
		Shards: 2, Seed: 7, Dir: t.TempDir(),
		Faults:           &fleet.FaultPlan{Shards: []fleet.ShardFault{{Shard: 0, Mode: fleet.ShardSlow, DelayMS: 60}}},
		HeartbeatTimeout: time.Second,
		Status:           &status,
	})
	if st := status.Snapshot()[0]; st.Attempt != 1 {
		t.Fatalf("slow shard was relaunched (attempt %d): slowness was mistaken for wedging", st.Attempt)
	}
}

// Retry-budget exhaustion degrades instead of aborting: a shard whose
// kill fault fires on every attempt, with retries disabled, leaves
// its unfinished trials as counted per-scenario failures while every
// trial it DID checkpoint — and every sibling scenario — is kept with
// statistics identical to the clean run's.
func TestShardRetryExhaustionDegrades(t *testing.T) {
	camp := fleet.MustPreset("smoke")
	var cleanRes fleet.CampaignResult
	if err := json.Unmarshal(cleanJSON(t, camp, 7), &cleanRes); err != nil {
		t.Fatal(err)
	}
	// 2 shards over 2 scenarios × 3 reps: shard 0 owns replication 0
	// of each scenario. Kill after its first completion on every
	// attempt, no retries → scenario 0's rep 0 is checkpointed,
	// scenario 1's rep 0 never runs.
	var status Status
	res, err := Supervise(camp, Options{
		Shards: 2, Seed: 7, Dir: t.TempDir(),
		Faults:          &fleet.FaultPlan{Shards: []fleet.ShardFault{{Shard: 0, Mode: fleet.ShardKill, AfterTrials: 1, Attempts: 99}}},
		MaxShardRetries: -1,
		Logf:            t.Logf,
		Status:          &status,
	})
	if err != nil {
		t.Fatalf("a degraded shard must not fail the campaign: %v", err)
	}
	if st := status.Snapshot()[0]; st.State != "degraded" {
		t.Fatalf("shard 0 ended %q, want degraded", st.State)
	}
	for i, s := range res.Scenarios {
		spec := camp.Scenarios[i]
		if s.Replications+s.Failures != spec.Replications {
			t.Errorf("scenario %q: replications %d + failures %d != configured %d",
				s.Name, s.Replications, s.Failures, spec.Replications)
		}
	}
	// Scenario 0: all three reps really ran (rep 0 from the killed
	// shard's sidecar) — bit-for-bit the clean aggregate.
	got0, _ := json.Marshal(res.Scenarios[0])
	want0, _ := json.Marshal(cleanRes.Scenarios[0])
	if !bytes.Equal(got0, want0) {
		t.Errorf("scenario 0 differs from clean despite full coverage:\n%s\nvs\n%s", got0, want0)
	}
	// Scenario 1: rep 0 degraded to a counted failure.
	if s := res.Scenarios[1]; s.Failures != 1 || s.Replications != camp.Scenarios[1].Replications-1 {
		t.Errorf("scenario 1: replications %d failures %d, want %d and 1",
			s.Replications, s.Failures, camp.Scenarios[1].Replications-1)
	}
}

// Streamed scenario results arrive in ascending scenario order —
// trial-index order — each exactly once, and byte-equal to the final
// result's scenarios.
func TestStreamingScenarioOrder(t *testing.T) {
	camp := fleet.MustPreset("e4-policy-grid")
	type ev struct {
		i    int
		data []byte
	}
	var events []ev
	res, err := Supervise(camp, Options{
		Shards: 3, Seed: 11, Dir: t.TempDir(),
		OnScenario: func(i int, sr *fleet.ScenarioResult) {
			data, _ := json.Marshal(sr)
			events = append(events, ev{i, data})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(camp.Scenarios) {
		t.Fatalf("streamed %d scenarios, want %d", len(events), len(camp.Scenarios))
	}
	for i, e := range events {
		if e.i != i {
			t.Fatalf("event %d carries scenario %d: not in ascending order", i, e.i)
		}
		want, _ := json.Marshal(res.Scenarios[i])
		if !bytes.Equal(e.data, want) {
			t.Errorf("streamed scenario %d differs from the final result", i)
		}
	}
}

// MergeCheckpoints unit contract: shard sidecars merge to the clean
// bytes; a duplicated replication (mixed plans) and a missing one
// (without degrade) are loud errors.
func TestMergeCheckpoints(t *testing.T) {
	camp := fleet.MustPreset("smoke")
	clean := cleanJSON(t, camp, 7)
	plan, err := Plan(camp, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cks := make([]*fleet.Checkpoint, 2)
	for i := range plan {
		ck, _, err := fleet.RunShard(camp, fleet.Options{
			Seed:           7,
			CheckpointPath: filepath.Join(dir, "s.ck.json"),
		}, fleet.ShardRun{Index: i, Count: 2, Ranges: plan[i].Ranges})
		if err != nil {
			t.Fatal(err)
		}
		cks[i] = ck
	}
	res, err := MergeCheckpoints(camp, 7, cks, false)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, clean) {
		t.Fatalf("merged shard checkpoints differ from the clean run:\n%s\nvs\n%s", data, clean)
	}
	// Merging twice from the same loaded sidecars must not corrupt
	// them (the merge deep-copies its aggregate target).
	res2, err := MergeCheckpoints(camp, 7, cks, false)
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := res2.JSON()
	if !bytes.Equal(data2, clean) {
		t.Fatal("second merge from the same checkpoints differs: merge mutated its inputs")
	}

	if _, err := MergeCheckpoints(camp, 7, []*fleet.Checkpoint{cks[0], cks[0]}, false); err == nil {
		t.Error("duplicated replication across checkpoints accepted")
	}
	if _, err := MergeCheckpoints(camp, 7, cks[:1], false); err == nil {
		t.Error("missing replications accepted without degrade")
	}
	degraded, err := MergeCheckpoints(camp, 7, cks[:1], true)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range degraded.Scenarios {
		missing := camp.Scenarios[i].Replications - plan[0].Ranges[i].Len()
		if s.Failures != missing {
			t.Errorf("scenario %d: %d failures, want %d (the absent shard's trials)", i, s.Failures, missing)
		}
	}
	// Seed mismatch is rejected up front, like resume.
	if _, err := MergeCheckpoints(camp, 8, cks, false); err == nil {
		t.Error("checkpoints from another seed accepted")
	}
}

// Drain stops a running campaign gracefully: shards checkpoint, the
// supervisor reports *DrainedError, and the sidecars in Dir carry the
// completed trials.
func TestSuperviseDrain(t *testing.T) {
	camp := fleet.MustPreset("smoke")
	dir := t.TempDir()
	drain := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(drain)
	}()
	_, err := Supervise(camp, Options{
		Shards: 2, Seed: 7, Dir: dir,
		// Slow trials on both shards so the drain lands mid-campaign.
		Faults: &fleet.FaultPlan{Shards: []fleet.ShardFault{
			{Shard: 0, Mode: fleet.ShardSlow, DelayMS: 40},
			{Shard: 1, Mode: fleet.ShardSlow, DelayMS: 40},
		}},
		Drain: drain,
		Logf:  t.Logf,
	})
	var de *DrainedError
	if err == nil {
		// The campaign may legitimately win the race and finish before
		// the drain lands; only a non-drain error is a failure.
		return
	}
	if !errors.As(err, &de) {
		t.Fatalf("want DrainedError, got %v", err)
	}
	if de.Dir != dir {
		t.Errorf("DrainedError names %q, want %q", de.Dir, dir)
	}
}
