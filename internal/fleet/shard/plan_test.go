package shard

import (
	"testing"

	"repro/internal/fleet"
)

// campaign builds a minimal valid campaign with the given replication
// counts, one scenario per entry. The smoke preset's scenario shape
// is reused so validation passes without inventing profiles.
func campaign(t *testing.T, reps ...int) fleet.Campaign {
	t.Helper()
	tmpl := fleet.MustPreset("smoke")
	c := fleet.Campaign{Name: "plan-test"}
	for i, r := range reps {
		s := tmpl.Scenarios[i%len(tmpl.Scenarios)]
		s.Name = s.Name + string(rune('a'+i))
		s.Replications = r
		c.Scenarios = append(c.Scenarios, s)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("test campaign invalid: %v", err)
	}
	return c
}

// The gating property the planner's doc references: for every shard
// count, the union of the planned ranges covers every (scenario,
// replication) exactly once — no trial lost, none double-run. The
// edge cases are the point: fewer replications than shards,
// single-replication scenarios, and uneven splits.
func TestPlanCoversExactlyOnce(t *testing.T) {
	for name, reps := range map[string][]int{
		"replications < shards": {2, 1},
		"single replication":    {1},
		"uneven 7":              {7, 3},
		"mixed":                 {5, 1, 8, 2},
	} {
		t.Run(name, func(t *testing.T) {
			c := campaign(t, reps...)
			for shards := 1; shards <= 6; shards++ {
				plan, err := Plan(c, shards)
				if err != nil {
					t.Fatalf("%d shards: %v", shards, err)
				}
				if len(plan) != shards {
					t.Fatalf("%d shards: plan has %d assignments", shards, len(plan))
				}
				total := 0
				for si, s := range c.Scenarios {
					seen := make([]int, s.Replications)
					for _, a := range plan {
						r := a.Ranges[si]
						if r.Lo < 0 || r.Hi < r.Lo || r.Hi > s.Replications {
							t.Fatalf("%d shards: scenario %d range [%d,%d) invalid", shards, si, r.Lo, r.Hi)
						}
						for rep := r.Lo; rep < r.Hi; rep++ {
							seen[rep]++
						}
					}
					for rep, n := range seen {
						if n != 1 {
							t.Fatalf("%d shards: scenario %d replication %d covered %d times", shards, si, rep, n)
						}
					}
					total += s.Replications
				}
				// Balance: range sizes differ by at most one per scenario.
				for si, s := range c.Scenarios {
					lo, hi := s.Replications, 0
					for _, a := range plan {
						n := a.Ranges[si].Len()
						if n < lo {
							lo = n
						}
						if n > hi {
							hi = n
						}
					}
					if hi-lo > 1 {
						t.Errorf("%d shards: scenario %d unbalanced (sizes %d..%d)", shards, si, lo, hi)
					}
				}
				planned := 0
				for _, a := range plan {
					planned += a.Trials()
				}
				if planned != total {
					t.Fatalf("%d shards: plan holds %d trials, campaign has %d", shards, planned, total)
				}
			}
		})
	}
}

func TestPlanRejects(t *testing.T) {
	c := campaign(t, 3)
	if _, err := Plan(c, 0); err == nil {
		t.Error("shard count 0 accepted")
	}
	if _, err := Plan(fleet.Campaign{}, 2); err == nil {
		t.Error("invalid campaign accepted")
	}
}

// Both sides of a re-exec must compute the identical plan from
// (campaign, shards) alone — pin that it is a pure function.
func TestPlanDeterministic(t *testing.T) {
	c := fleet.MustPreset("e16-ablation-drain")
	a, err := Plan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for si := range a[i].Ranges {
			if a[i].Ranges[si] != b[i].Ranges[si] {
				t.Fatalf("plan not deterministic at shard %d scenario %d", i, si)
			}
		}
	}
}
