package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// Service defaults.
const (
	DefaultQueueDepth = 4
	DefaultRetryAfter = 2 * time.Second
)

// ServiceConfig configures the fleetd campaign service.
type ServiceConfig struct {
	// QueueDepth bounds the campaign queue; a submission past the
	// bound is rejected with 429 + Retry-After — backpressure, not
	// unbounded memory. <= 0 means DefaultQueueDepth.
	QueueDepth int
	// Concurrency is how many campaigns run at once; <= 0 means 1.
	// Shards within a campaign always run concurrently regardless.
	Concurrency int
	// DefaultShards applies when a submission does not set "shards".
	DefaultShards int
	// Workers is each shard attempt's fleet worker count.
	Workers int
	// Dir is the working root: each campaign gets Dir/<id>/ for its
	// sidecars and heartbeats. "" means a fresh temp directory.
	Dir string
	// Launcher runs shard attempts (nil = InProc{}); fleetd -exec
	// installs the re-exec launcher here.
	Launcher Launcher
	// Supervision knobs, forwarded to Supervise per campaign.
	CheckpointEvery  int
	HeartbeatTimeout time.Duration
	AttemptDeadline  time.Duration
	MaxShardRetries  int
	BackoffBase      time.Duration
	BackoffMax       time.Duration
	// RetryAfter is the hint sent with 429 responses; <= 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Opt-in:
	// profiles expose internals, so a production fleetd keeps them off
	// unless explicitly asked (fleetd -pprof).
	EnablePprof bool
	Logf        func(format string, args ...any)
}

// Submission is the POST /campaigns request envelope. Campaign is the
// standard campaign JSON (unknown fields rejected); Faults is an
// optional chaos plan — service-mode chaos runs exist to exercise the
// supervision layer and are excluded from perf records (see
// EXPERIMENTS.md).
type Submission struct {
	Campaign json.RawMessage  `json:"campaign"`
	Seed     uint64           `json:"seed"`
	Shards   int              `json:"shards,omitempty"`
	Faults   *fleet.FaultPlan `json:"faults,omitempty"`
}

// job is one submitted campaign's lifecycle record.
type job struct {
	id     string
	c      fleet.Campaign
	seed   uint64
	shards int
	faults *fleet.FaultPlan
	dir    string

	mu        sync.Mutex
	state     string // queued | running | done | failed | drained
	status    *Status
	scenarios []scenarioEvent
	result    []byte // canonical campaign JSON once done
	errMsg    string
	started   time.Time     // when the job left the queue; zero while queued
	finished  time.Time     // when the job reached a terminal state
	notify    chan struct{} // closed and replaced on every update (broadcast)
}

// scenarioEvent is one streamed merged-scenario result, in ascending
// (trial-index) scenario order.
type scenarioEvent struct {
	Index  int             `json:"scenario"`
	Result json.RawMessage `json:"result"`
}

func (j *job) update(f func()) {
	j.mu.Lock()
	f()
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// Service is the fleetd core: a bounded campaign queue in front of
// the shard supervisor, exposed over HTTP. It exists apart from
// cmd/fleetd so tests drive it with httptest and the in-process
// launcher under the race detector.
type Service struct {
	cfg ServiceConfig
	reg *obs.Registry
	sm  serviceMetrics

	mu          sync.Mutex
	jobs        map[string]*job
	order       []string
	queue       chan *job
	nextID      int
	draining    bool
	interrupted bool

	drainC chan struct{}
	wg     sync.WaitGroup
}

// NewService builds the service and starts its campaign workers.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.DefaultShards <= 0 {
		cfg.DefaultShards = DefaultShards
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "fleetd-*")
		if err != nil {
			return nil, err
		}
		cfg.Dir = dir
	}
	reg := obs.NewRegistry()
	s := &Service{
		cfg:    cfg,
		reg:    reg,
		sm:     newServiceMetrics(reg),
		jobs:   make(map[string]*job),
		queue:  make(chan *job, cfg.QueueDepth),
		drainC: make(chan struct{}),
	}
	for i := 0; i < cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// worker drains the campaign queue. After a drain begins, queued-but-
// unstarted campaigns are marked drained rather than run: "stop
// admitting, checkpoint in-flight, exit" applies to work not yet
// started too.
func (s *Service) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.sm.queueDepth.Add(-1)
		s.mu.Lock()
		draining := s.draining
		if draining {
			s.interrupted = true
		}
		s.mu.Unlock()
		if draining {
			s.sm.drained.Inc()
			jb.update(func() { jb.state, jb.finished = "drained", time.Now() })
			continue
		}
		s.runJob(jb)
	}
}

func (s *Service) runJob(jb *job) {
	s.sm.running.Add(1)
	defer s.sm.running.Add(-1)
	jb.update(func() { jb.state, jb.started = "running", time.Now() })
	if err := os.MkdirAll(jb.dir, 0o755); err != nil {
		s.sm.failed.Inc()
		jb.update(func() { jb.state, jb.errMsg, jb.finished = "failed", err.Error(), time.Now() })
		return
	}
	res, err := Supervise(jb.c, Options{
		Shards:           jb.shards,
		Seed:             jb.seed,
		Workers:          s.cfg.Workers,
		Dir:              jb.dir,
		Launcher:         s.cfg.Launcher,
		Faults:           jb.faults,
		CheckpointEvery:  s.cfg.CheckpointEvery,
		HeartbeatTimeout: s.cfg.HeartbeatTimeout,
		AttemptDeadline:  s.cfg.AttemptDeadline,
		MaxShardRetries:  s.cfg.MaxShardRetries,
		BackoffBase:      s.cfg.BackoffBase,
		BackoffMax:       s.cfg.BackoffMax,
		Drain:            s.drainC,
		Status:           jb.status,
		Metrics:          s.reg,
		Logf: func(format string, args ...any) {
			s.cfg.Logf("campaign %s: "+format, append([]any{jb.id}, args...)...)
		},
		OnScenario: func(i int, sr *fleet.ScenarioResult) {
			data, merr := json.Marshal(sr)
			if merr != nil {
				return
			}
			jb.update(func() { jb.scenarios = append(jb.scenarios, scenarioEvent{Index: i, Result: data}) })
		},
	})
	switch {
	case err == nil:
		data, jerr := res.JSON()
		if jerr != nil {
			s.sm.failed.Inc()
			jb.update(func() { jb.state, jb.errMsg, jb.finished = "failed", jerr.Error(), time.Now() })
			return
		}
		s.sm.done.Inc()
		jb.update(func() { jb.state, jb.result, jb.finished = "done", data, time.Now() })
	default:
		var de *DrainedError
		if errors.As(err, &de) {
			s.mu.Lock()
			s.interrupted = true
			s.mu.Unlock()
			s.sm.drained.Inc()
			jb.update(func() { jb.state, jb.finished = "drained", time.Now() })
			return
		}
		s.sm.failed.Inc()
		jb.update(func() { jb.state, jb.errMsg, jb.finished = "failed", err.Error(), time.Now() })
	}
}

// Drain gracefully stops the service: no new admissions (503), queued
// campaigns are marked drained, running shards checkpoint and stop,
// and Drain returns when the workers are idle or ctx expires.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainC)
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Interrupted reports whether the drain cut short any admitted
// campaign — fleetd maps this to the PR-6 "interrupted" exit code 3.
func (s *Service) Interrupted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interrupted
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /campaigns/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var sub Submission
	if err := dec.Decode(&sub); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(sub.Campaign) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "submission has no campaign"})
		return
	}
	c, err := fleet.DecodeCampaign(bytes.NewReader(sub.Campaign))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	shards := sub.Shards
	if shards <= 0 {
		shards = s.cfg.DefaultShards
	}
	if sub.Faults != nil {
		if err := sub.Faults.Validate(c); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		for _, sf := range sub.Faults.Shards {
			if sf.Shard >= shards {
				writeJSON(w, http.StatusBadRequest, map[string]string{
					"error": fmt.Sprintf("fault targets shard %d but the campaign runs %d shards", sf.Shard, shards)})
				return
			}
		}
	}

	// Admission happens under the service lock so draining and a full
	// queue are decided atomically against Drain and other submitters.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining: not admitting campaigns"})
		return
	}
	s.nextID++
	jb := &job{
		id:     fmt.Sprintf("c%06d", s.nextID),
		c:      c,
		seed:   sub.Seed,
		shards: shards,
		faults: sub.Faults,
		state:  "queued",
		status: &Status{},
		notify: make(chan struct{}),
	}
	jb.dir = filepath.Join(s.cfg.Dir, jb.id)
	select {
	case s.queue <- jb:
		s.sm.submitted.Inc()
		s.sm.queueDepth.Add(1)
	default:
		// Queue full: backpressure, with a hint. The id was burned;
		// ids are cheap.
		s.mu.Unlock()
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "campaign queue is full; retry later"})
		return
	}
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      jb.id,
		"status":  "/campaigns/" + jb.id,
		"results": "/campaigns/" + jb.id + "/results",
		"stream":  "/campaigns/" + jb.id + "/stream",
	})
}

func (s *Service) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobStatus is the GET /campaigns/{id} body. The progress block —
// trials done/total, retry count, completion rate and ETA — is derived
// from the supervisor's live per-shard status, so a watcher needs no
// other endpoint to see how far along a campaign is.
type jobStatus struct {
	ID            string        `json:"id"`
	State         string        `json:"state"`
	Campaign      string        `json:"campaign"`
	Seed          uint64        `json:"seed"`
	Shards        int           `json:"shards"`
	ScenariosDone int           `json:"scenarios_done"`
	ScenarioCount int           `json:"scenario_count"`
	TrialsDone    int           `json:"trials_done"`
	TrialsTotal   int           `json:"trials_total"`
	// Retries counts shard attempts past each shard's first (restored
	// trials are never recomputed, so retries cost backoff + the lost
	// tail, not full recomputation).
	Retries int `json:"retries"`
	// RatePerSec is completed trials per second of run time; 0 until
	// the first trial lands. ETASeconds extrapolates the remainder at
	// that rate and is present only while running.
	RatePerSec  float64       `json:"rate_per_sec,omitempty"`
	ETASeconds  float64       `json:"eta_seconds,omitempty"`
	ShardStatus []ShardStatus `json:"shard_status,omitempty"`
	Error       string        `json:"error,omitempty"`
}

func (jb *job) snapshot() jobStatus {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	st := jobStatus{
		ID:            jb.id,
		State:         jb.state,
		Campaign:      jb.c.Name,
		Seed:          jb.seed,
		Shards:        jb.shards,
		ScenariosDone: len(jb.scenarios),
		ScenarioCount: len(jb.c.Scenarios),
		TrialsTotal:   jb.c.Trials(),
		ShardStatus:   jb.status.Snapshot(),
		Error:         jb.errMsg,
	}
	for _, sh := range st.ShardStatus {
		st.TrialsDone += sh.Completed
		if sh.Attempt > 1 {
			st.Retries += sh.Attempt - 1
		}
	}
	if !jb.started.IsZero() {
		elapsed := time.Since(jb.started)
		if !jb.finished.IsZero() {
			elapsed = jb.finished.Sub(jb.started)
		}
		if secs := elapsed.Seconds(); secs > 0 && st.TrialsDone > 0 {
			st.RatePerSec = float64(st.TrialsDone) / secs
			if jb.state == "running" {
				st.ETASeconds = float64(st.TrialsTotal-st.TrialsDone) / st.RatePerSec
			}
		}
	}
	return st
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobStatus, 0, len(s.order))
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, jb := range jobs {
		out = append(out, jb.snapshot())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such campaign"})
		return
	}
	writeJSON(w, http.StatusOK, jb.snapshot())
}

// handleResults serves the campaign's canonical result bytes — the
// exact bytes a 1-process fleetrun -json would print, which is what
// the CI identity gates cmp against fleetd's output.
func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such campaign"})
		return
	}
	jb.mu.Lock()
	state, result, errMsg := jb.state, jb.result, jb.errMsg
	jb.mu.Unlock()
	switch state {
	case "done":
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case "failed":
		writeJSON(w, http.StatusInternalServerError, map[string]string{"state": state, "error": errMsg})
	case "drained":
		writeJSON(w, http.StatusConflict, map[string]string{"state": state})
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"state": state})
	}
}

// handleStream serves newline-delimited JSON: one line per merged
// scenario as coverage completes (ascending scenario order — the
// trial-index order the determinism contract reduces in), then a
// terminal line carrying the job's final state.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such campaign"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		jb.mu.Lock()
		events := jb.scenarios[sent:]
		state := jb.state
		notify := jb.notify
		jb.mu.Unlock()
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
			sent++
		}
		if state == "done" || state == "failed" || state == "drained" {
			enc.Encode(map[string]any{"done": true, "state": state})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// health is the GET /healthz body: structured operational state, not
// just liveness. state is "accepting" (the POST path admits work) or
// "draining" (503 on submit, in-flight campaigns checkpointing); the
// counts say what the process is actually doing right now.
type health struct {
	State         string `json:"state"` // accepting | draining
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Running       int    `json:"running"`
	ActiveShards  int    `json:"active_shards"`
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := health{
		State:         "accepting",
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
	}
	if s.draining {
		h.State = "draining"
	}
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, jb := range jobs {
		jb.mu.Lock()
		running := jb.state == "running"
		status := jb.status
		jb.mu.Unlock()
		if !running {
			continue
		}
		h.Running++
		for _, sh := range status.Snapshot() {
			if sh.State == "running" {
				h.ActiveShards++
			}
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// handleMetrics serves the registry in Prometheus text format: the
// fleetd_* service counters, the shard_* supervision counters, and —
// for in-process launchers — the fleet_* trial counters, accumulated
// across every campaign this process has run.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = s.reg.WritePrometheus(w)
}
