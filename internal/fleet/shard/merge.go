package shard

import (
	"fmt"

	"repro/internal/fleet"
)

// MergeCheckpoints folds shard checkpoint sidecars into the
// campaign's result. Every checkpoint is validated against the
// (campaign, seed) identity first — a sidecar from a different
// campaign, seed or format is rejected, exactly like a resume. The
// reduction is Run's own: per scenario, single-trial partials merged
// in replication (= trial-index) order, so for a complete trial set
// the returned result's JSON() bytes equal a 1-process fleet.Run's.
//
// A replication present in more than one checkpoint is an error (the
// planner's ranges are disjoint; overlap means the caller mixed
// sidecars from different plans). A missing replication is an error
// unless degrade is true, in which case it merges as a degraded
// zero-sample aggregate carrying one counted failure — the terminal
// state of a shard that exhausted its supervisor retry budget.
func MergeCheckpoints(c fleet.Campaign, seed uint64, cks []*fleet.Checkpoint, degrade bool) (*fleet.CampaignResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for _, ck := range cks {
		if err := ck.ValidateAgainst(c, seed); err != nil {
			return nil, err
		}
	}
	res := &fleet.CampaignResult{Campaign: c.Name, Seed: seed}
	for si := range c.Scenarios {
		partials, err := collectPartials(c, cks, si)
		if err != nil {
			return nil, err
		}
		agg, err := mergeScenario(&c.Scenarios[si], partials, degrade)
		if err != nil {
			return nil, err
		}
		res.Scenarios = append(res.Scenarios, agg)
	}
	return res, nil
}

// collectPartials gathers scenario si's single-trial partials from
// every checkpoint, indexed by replication (nil = missing). Nil
// checkpoints are skipped so callers can pass live snapshots where
// some shards have not written a sidecar yet.
func collectPartials(c fleet.Campaign, cks []*fleet.Checkpoint, si int) ([]*fleet.ScenarioResult, error) {
	out := make([]*fleet.ScenarioResult, c.Scenarios[si].Replications)
	for _, ck := range cks {
		if ck == nil {
			continue
		}
		sc := &ck.Scenarios[si]
		for pi := range sc.Partials {
			p := &sc.Partials[pi]
			if out[p.Replication] != nil {
				return nil, fmt.Errorf("shard: scenario %q replication %d appears in more than one shard checkpoint (mixed plans?)",
					c.Scenarios[si].Name, p.Replication)
			}
			out[p.Replication] = &p.Result
		}
	}
	return out, nil
}

// mergeScenario is the per-scenario reduction: partials folded in
// replication order into a deep copy of the first, so merging never
// mutates the caller's checkpoints — one loaded sidecar set can be
// merged more than once (the streaming scanner and the final
// assembly both read them).
func mergeScenario(spec *fleet.Scenario, partials []*fleet.ScenarioResult, degrade bool) (*fleet.ScenarioResult, error) {
	var agg *fleet.ScenarioResult
	for rep := 0; rep < spec.Replications; rep++ {
		p := partials[rep]
		if p == nil {
			if !degrade {
				return nil, fmt.Errorf("shard: scenario %q replication %d missing from every shard checkpoint", spec.Name, rep)
			}
			p = fleet.DegradedTrialResult(spec)
		}
		if agg == nil {
			agg = clonePartial(p)
			continue
		}
		if err := agg.Merge(p); err != nil {
			return nil, err
		}
	}
	return agg, nil
}

// clonePartial deep-copies a partial (the histogram's bucket slice
// and the attack aggregate's maps are the reference fields) so the
// merge target never aliases checkpoint-owned storage.
func clonePartial(p *fleet.ScenarioResult) *fleet.ScenarioResult {
	r := *p
	h := *p.MakespanHist
	h.Counts = append([]int64(nil), h.Counts...)
	r.MakespanHist = &h
	if r.Attack != nil {
		r.Attack = r.Attack.Clone()
	}
	return &r
}
