package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// submitBody builds the POST /campaigns envelope for a preset.
func submitBody(t *testing.T, preset string, seed uint64, shards int, faults *fleet.FaultPlan) []byte {
	t.Helper()
	camp, err := fleet.EncodeCampaign(fleet.MustPreset(preset))
	if err != nil {
		t.Fatal(err)
	}
	sub := Submission{Campaign: camp, Seed: seed, Shards: shards, Faults: faults}
	data, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postCampaign(t *testing.T, url string, body []byte) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

// pollDone polls the status endpoint until the job reaches a terminal
// state.
func pollDone(t *testing.T, url, id string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "drained":
			return st.State
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("campaign did not reach a terminal state")
	return ""
}

// The endpoint smoke test plus the tentpole's service-level identity
// criterion: submit → poll → fetch, with an active shard-kill fault
// plan, and the fetched bytes equal a clean 1-process run's.
func TestServiceSubmitPollFetch(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		Dir:         t.TempDir(),
		BackoffBase: time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	faults := &fleet.FaultPlan{Shards: []fleet.ShardFault{{Shard: 0, Mode: fleet.ShardKill, AfterTrials: 1}}}
	code, out, _ := postCampaign(t, ts.URL, submitBody(t, "smoke", 7, 2, faults))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("no id in %v", out)
	}
	if state := pollDone(t, ts.URL, id); state != "done" {
		t.Fatalf("campaign ended %q, want done", state)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %d %v", resp.StatusCode, err)
	}
	clean := cleanJSON(t, fleet.MustPreset("smoke"), 7)
	if !bytes.Equal(got, clean) {
		t.Fatalf("service results differ from the clean 1-process run:\n%s\nvs\n%s", got, clean)
	}

	// The stream endpoint replays the per-scenario results (ascending)
	// and a terminal line, even after completion.
	resp, err = http.Get(ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var lines []map[string]any
	for sc.Scan() {
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("stream line not JSON: %q", sc.Text())
		}
		lines = append(lines, v)
	}
	want := len(fleet.MustPreset("smoke").Scenarios)
	if len(lines) != want+1 {
		t.Fatalf("stream sent %d lines, want %d scenarios + 1 terminal", len(lines), want)
	}
	for i := 0; i < want; i++ {
		if int(lines[i]["scenario"].(float64)) != i {
			t.Fatalf("stream out of order at line %d: %v", i, lines[i])
		}
	}
	if lines[want]["done"] != true || lines[want]["state"] != "done" {
		t.Fatalf("terminal line wrong: %v", lines[want])
	}

	// Unknown id and malformed submissions are client errors.
	if resp, _ := http.Get(ts.URL + "/campaigns/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %d", resp.StatusCode)
	}
	if code, out, _ := postCampaign(t, ts.URL, []byte(`{"campain":{}}`)); code != http.StatusBadRequest {
		t.Errorf("typo envelope accepted: %d %v", code, out)
	}
	if code, out, _ := postCampaign(t, ts.URL, submitBody(t, "smoke", 7, 2,
		&fleet.FaultPlan{Shards: []fleet.ShardFault{{Shard: 5, Mode: fleet.ShardKill, AfterTrials: 1}}})); code != http.StatusBadRequest {
		t.Errorf("fault aimed past the shard count accepted: %d %v", code, out)
	}
}

// Backpressure: with a single busy worker and a one-deep queue, a
// third submission gets 429 + Retry-After; a drain then marks the
// in-flight campaign interrupted, answers 503 to new submissions, and
// flips /healthz to draining.
func TestServiceBackpressureAndDrain(t *testing.T) {
	svc, err := NewService(ServiceConfig{
		QueueDepth:  1,
		Concurrency: 1,
		Dir:         t.TempDir(),
		RetryAfter:  3 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A slow campaign occupies the worker long enough to fill the
	// queue behind it deterministically.
	slow := &fleet.FaultPlan{Shards: []fleet.ShardFault{
		{Shard: 0, Mode: fleet.ShardSlow, DelayMS: 300},
		{Shard: 1, Mode: fleet.ShardSlow, DelayMS: 300},
	}}
	code, first, _ := postCampaign(t, ts.URL, submitBody(t, "smoke", 7, 2, slow))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	code, _, _ = postCampaign(t, ts.URL, submitBody(t, "smoke", 8, 2, nil))
	if code != http.StatusAccepted {
		t.Fatalf("second submit (queued): %d", code)
	}
	code, out, hdr := postCampaign(t, ts.URL, submitBody(t, "smoke", 9, 2, nil))
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d %v, want 429", code, out)
	}
	if ra := hdr.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !svc.Interrupted() {
		t.Error("drain cut short admitted campaigns but Interrupted() is false")
	}
	if code, _, _ := postCampaign(t, ts.URL, submitBody(t, "smoke", 10, 2, nil)); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "draining") {
		t.Errorf("healthz after drain: %s", body)
	}
	// The first (running) campaign ends drained or done depending on
	// who wins the race; the queued one must be drained.
	id, _ := first["id"].(string)
	if st := pollDone(t, ts.URL, id); st != "drained" && st != "done" {
		t.Errorf("in-flight campaign ended %q", st)
	}
	// List shows both admitted campaigns.
	resp, err = http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 {
		t.Fatalf("list has %d campaigns, want 2", len(list))
	}
	states := fmt.Sprint(list[0].State, list[1].State)
	if !strings.Contains(states, "drained") {
		t.Errorf("no campaign reports drained after drain: %v", states)
	}
}
