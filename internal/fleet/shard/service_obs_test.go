package shard

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q is not Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts an unlabeled sample's value from a scrape; -1
// means absent.
func metricValue(t *testing.T, scrape, name string) float64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindStringSubmatch(scrape)
	if m == nil {
		return -1
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// GET /metrics serves the service, supervision and trial counters in
// Prometheus text form, and campaign counters increase monotonically
// across campaigns — the contract the CI scrape gate curls for.
func TestServiceMetricsEndpoint(t *testing.T) {
	svc, err := NewService(ServiceConfig{Dir: t.TempDir(), BackoffBase: time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// The kill fault forces a retry, so the supervision counters move.
	faults := &fleet.FaultPlan{Shards: []fleet.ShardFault{{Shard: 0, Mode: fleet.ShardKill, AfterTrials: 1}}}
	code, out, _ := postCampaign(t, ts.URL, submitBody(t, "smoke", 7, 2, faults))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, out)
	}
	id, _ := out["id"].(string)
	if state := pollDone(t, ts.URL, id); state != "done" {
		t.Fatalf("campaign ended %q", state)
	}

	body := scrape(t, ts.URL)
	if !strings.Contains(body, "# TYPE fleetd_campaigns_done_total counter") {
		t.Fatalf("scrape lacks the done-counter TYPE header:\n%s", body)
	}
	if got := metricValue(t, body, "fleetd_campaigns_done_total"); got != 1 {
		t.Errorf("fleetd_campaigns_done_total = %v, want 1", got)
	}
	if got := metricValue(t, body, "fleetd_queue_depth"); got != 0 {
		t.Errorf("fleetd_queue_depth = %v, want 0 at idle", got)
	}
	trials := float64(fleet.MustPreset("smoke").Trials())
	// The killed shard's completed trial is restored from its sidecar,
	// not re-executed, so completed-by-this-process still equals the
	// campaign's trial count.
	if got := metricValue(t, body, "fleet_trials_completed_total"); got != trials {
		t.Errorf("fleet_trials_completed_total = %v, want %v", got, trials)
	}
	// 2 shards, one killed once and relaunched: at least 3 attempts,
	// at least 1 backoff.
	if got := metricValue(t, body, "shard_attempts_total"); got < 3 {
		t.Errorf("shard_attempts_total = %v, want >= 3", got)
	}
	if got := metricValue(t, body, "shard_backoffs_total"); got < 1 {
		t.Errorf("shard_backoffs_total = %v, want >= 1", got)
	}

	// Counters are monotone across campaigns.
	code, out, _ = postCampaign(t, ts.URL, submitBody(t, "smoke", 8, 2, nil))
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %v", code, out)
	}
	id2, _ := out["id"].(string)
	if state := pollDone(t, ts.URL, id2); state != "done" {
		t.Fatalf("second campaign ended %q", state)
	}
	body2 := scrape(t, ts.URL)
	if got := metricValue(t, body2, "fleetd_campaigns_done_total"); got != 2 {
		t.Errorf("fleetd_campaigns_done_total after second campaign = %v, want 2", got)
	}
	if a, b := metricValue(t, body, "fleet_trials_completed_total"), metricValue(t, body2, "fleet_trials_completed_total"); b <= a {
		t.Errorf("fleet_trials_completed_total not monotone: %v then %v", a, b)
	}
}

// /healthz reports structured state: accepting vs draining plus live
// queue and worker counts, replacing the old bare liveness body.
func TestServiceHealthStructured(t *testing.T) {
	svc, err := NewService(ServiceConfig{QueueDepth: 3, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	getHealth := func() health {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := getHealth()
	if h.State != "accepting" || h.QueueDepth != 0 || h.QueueCapacity != 3 || h.Running != 0 || h.ActiveShards != 0 {
		t.Errorf("idle health wrong: %+v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if h := getHealth(); h.State != "draining" {
		t.Errorf("post-drain health state %q, want draining", h.State)
	}
}

// The status endpoint carries campaign progress: after completion,
// trials done equals the campaign's total and a positive rate was
// measured.
func TestServiceStatusProgress(t *testing.T) {
	svc, err := NewService(ServiceConfig{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	code, out, _ := postCampaign(t, ts.URL, submitBody(t, "smoke", 7, 2, nil))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, out)
	}
	id, _ := out["id"].(string)
	if state := pollDone(t, ts.URL, id); state != "done" {
		t.Fatalf("campaign ended %q", state)
	}
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	trials := fleet.MustPreset("smoke").Trials()
	if st.TrialsTotal != trials || st.TrialsDone != trials {
		t.Errorf("progress %d/%d, want %d/%d", st.TrialsDone, st.TrialsTotal, trials, trials)
	}
	if st.RatePerSec <= 0 {
		t.Errorf("rate_per_sec = %v, want > 0 after completion", st.RatePerSec)
	}
	if st.ETASeconds != 0 {
		t.Errorf("eta_seconds = %v, want 0 once terminal", st.ETASeconds)
	}
	if st.Retries != 0 {
		t.Errorf("retries = %d, want 0 in a fault-free run", st.Retries)
	}
}

// /debug/pprof is opt-in: absent by default, mounted with EnablePprof.
func TestServicePprofGate(t *testing.T) {
	off, err := NewService(ServiceConfig{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Drain(context.Background())
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	if resp, err := http.Get(tsOff.URL + "/debug/pprof/"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable without opt-in: %v %v", resp.StatusCode, err)
	}

	on, err := NewService(ServiceConfig{Dir: t.TempDir(), EnablePprof: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Drain(context.Background())
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	resp, err := http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with opt-in: %v %v", resp.StatusCode, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not look like pprof: %.200s", body)
	}
}
