package shard

import (
	"repro/internal/obs"
)

// Supervision metrics follow the fleet executor's pattern (fleet's
// obs.go): handles resolve once per Supervise against an optional
// registry, and the zero-value bundle no-ops when none is wired.
// Counters are campaign-global rather than per-shard-labeled — the
// supervision loop is cold path, and fleetd aggregates across many
// campaigns with varying shard counts, where per-shard labels would
// just fragment the series.
type shardMetrics struct {
	attempts        *obs.Counter // shard attempts launched (first runs + retries)
	backoffs        *obs.Counter // retry backoffs entered after a failed attempt
	heartbeatStalls *obs.Counter // attempts killed for a stalled heartbeat
	deadlineKills   *obs.Counter // attempts killed for overrunning the deadline
	degraded        *obs.Counter // shards that exhausted the retry budget
}

func newShardMetrics(r *obs.Registry) shardMetrics {
	if r == nil {
		return shardMetrics{}
	}
	return shardMetrics{
		attempts:        r.Counter("shard_attempts_total", "shard attempts launched, retries included"),
		backoffs:        r.Counter("shard_backoffs_total", "exponential backoffs entered after failed shard attempts"),
		heartbeatStalls: r.Counter("shard_heartbeat_stalls_total", "shard attempts killed because their heartbeat stopped advancing"),
		deadlineKills:   r.Counter("shard_deadline_kills_total", "shard attempts killed for exceeding the attempt deadline"),
		degraded:        r.Counter("shard_degraded_total", "shards that exhausted their retry budget and degraded to counted failures"),
	}
}

// serviceMetrics is fleetd's own instrument bundle, always live (the
// service creates its registry unconditionally so GET /metrics has
// something to serve). Campaign lifecycle counters partition every
// admitted campaign — submitted = done + failed + drained + still
// queued/running — and the gauges track the live queue and workers.
type serviceMetrics struct {
	submitted  *obs.Counter
	done       *obs.Counter
	failed     *obs.Counter
	drained    *obs.Counter
	queueDepth *obs.Gauge
	running    *obs.Gauge
}

func newServiceMetrics(r *obs.Registry) serviceMetrics {
	return serviceMetrics{
		submitted:  r.Counter("fleetd_campaigns_submitted_total", "campaigns admitted to the queue"),
		done:       r.Counter("fleetd_campaigns_done_total", "campaigns that completed with a result"),
		failed:     r.Counter("fleetd_campaigns_failed_total", "campaigns that ended in an error"),
		drained:    r.Counter("fleetd_campaigns_drained_total", "campaigns stopped by a service drain, queued-but-unstarted ones included"),
		queueDepth: r.Gauge("fleetd_queue_depth", "campaigns waiting in the admission queue"),
		running:    r.Gauge("fleetd_campaigns_running", "campaigns currently executing"),
	}
}
