package shard

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// AttemptSpec is everything a launcher needs to run one shard
// attempt. The campaign travels both ways — as a value for in-process
// workers and as a file path for re-exec'd ones — so one supervisor
// drives either launcher without caring which.
type AttemptSpec struct {
	Campaign     fleet.Campaign
	CampaignPath string // campaign JSON on disk (exec mode)
	Seed         uint64
	Workers      int // per-attempt fleet worker goroutines; 0 = GOMAXPROCS

	Shard   Assignment
	Shards  int
	Attempt int // 1-based supervisor attempt; keys shard faults

	// CheckpointPath is the shard's sidecar: its periodic recovery
	// state AND its final result artifact.
	CheckpointPath string
	// HeartbeatPath is where an exec worker writes Heartbeat records;
	// in-process workers beat through memory and ignore it.
	HeartbeatPath   string
	CheckpointEvery int
	// Resume, when non-nil, restores the previous attempt's completed
	// trials (exec workers are passed the sidecar path instead and
	// load it themselves).
	Resume *fleet.Checkpoint

	Faults     *fleet.FaultPlan
	FaultsPath string // fault plan JSON on disk (exec mode)

	// FailuresPath, when non-empty, is where an exec worker leaves its
	// structured TrialFailure artifact for the supervisor to collect.
	FailuresPath string

	// Metrics, when non-nil, receives the attempt's fleet_* trial
	// counters. Only the in-process launcher can honor it — a registry
	// cannot cross the exec boundary, so exec attempts report only the
	// supervisor-side shard_* counters.
	Metrics *obs.Registry
}

// Attempt is one running shard attempt under supervision. Err and
// Failures are valid only after Done is closed.
type Attempt interface {
	Done() <-chan struct{}
	Err() error
	// Heartbeat reports the attempt's last observed progress: the
	// completed-trial count and when it was observed. A wedged worker
	// is exactly one whose time stops advancing.
	Heartbeat() (completed int, last time.Time)
	Failures() []fleet.TrialFailure
	// Kill stops the attempt abruptly (SIGKILL for exec workers): no
	// final checkpoint beyond what periodic writes already persisted.
	Kill()
	// Drain stops the attempt gracefully (SIGTERM for exec workers):
	// in-flight trials finish and a final checkpoint is written.
	Drain()
}

// Launcher starts shard attempts. InProc runs them as goroutines in
// this process; Exec re-execs the fleetrun binary in shard mode. Both
// satisfy the same supervision contract: heartbeats while alive, a
// checkpoint sidecar as the result, Kill/Drain semantics as above.
type Launcher interface {
	Launch(spec AttemptSpec) (Attempt, error)
}

// InProc runs shard attempts as goroutines. This is the default
// launcher — no binary to build, runs under the race detector — and
// the degenerate "worker process" whose kill is a soft abort
// (ErrShardKilled) rather than a real SIGKILL.
type InProc struct{}

type inprocAttempt struct {
	done  chan struct{}
	err   error
	fails []fleet.TrialFailure

	mu        sync.Mutex
	completed int
	last      time.Time

	stop     chan struct{}
	stopOnce sync.Once
}

// Launch starts the attempt goroutine. The launch instant counts as
// the first heartbeat: a shard is allowed a full heartbeat window to
// produce its first completed trial before it looks wedged.
func (InProc) Launch(spec AttemptSpec) (Attempt, error) {
	a := &inprocAttempt{
		done: make(chan struct{}),
		stop: make(chan struct{}),
		last: time.Now(),
	}
	go func() {
		defer close(a.done)
		_, fails, err := fleet.RunShard(spec.Campaign, fleet.Options{
			Workers:         spec.Workers,
			Seed:            spec.Seed,
			CheckpointPath:  spec.CheckpointPath,
			CheckpointEvery: spec.CheckpointEvery,
			ResumeFrom:      spec.Resume,
			Interrupt:       a.stop,
			Faults:          spec.Faults,
			Progress:        a.beat,
			Metrics:         spec.Metrics,
		}, fleet.ShardRun{
			Index:   spec.Shard.Shard,
			Count:   spec.Shards,
			Attempt: spec.Attempt,
			Ranges:  spec.Shard.Ranges,
		})
		a.err, a.fails = err, fails
	}()
	return a, nil
}

func (a *inprocAttempt) beat(completed int) {
	a.mu.Lock()
	a.completed, a.last = completed, time.Now()
	a.mu.Unlock()
}

func (a *inprocAttempt) Done() <-chan struct{} { return a.done }
func (a *inprocAttempt) Err() error            { return a.err }
func (a *inprocAttempt) Heartbeat() (int, time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.completed, a.last
}
func (a *inprocAttempt) Failures() []fleet.TrialFailure { return a.fails }

// Kill and Drain are the same mechanism in process: trip Interrupt.
// For a live shard that is a graceful drain (final checkpoint); for a
// wedged one it releases the linger and surfaces ErrShardWedged; a
// soft-killed shard has already stopped recording either way.
func (a *inprocAttempt) Kill()  { a.stopOnce.Do(func() { close(a.stop) }) }
func (a *inprocAttempt) Drain() { a.Kill() }

// Exec re-execs the fleetrun binary in shard mode (-shard i/n), the
// production shape: a real process whose SIGKILL is abrupt death and
// whose heartbeats cross a file, not a mutex.
type Exec struct {
	// Bin is the fleetrun binary path.
	Bin string
	// Stderr receives the worker's stderr; nil means this process's.
	Stderr io.Writer
}

type execAttempt struct {
	cmd  *exec.Cmd
	done chan struct{}
	err  error

	mu        sync.Mutex
	completed int
	last      time.Time
	lastSeq   int

	hbPath    string
	failsPath string
	fails     []fleet.TrialFailure
}

// Launch starts the worker process and a heartbeat poller. The poller
// trusts only Heartbeat.Seq changes, never file mtimes, and stops
// when the process exits.
func (e Exec) Launch(spec AttemptSpec) (Attempt, error) {
	if spec.CampaignPath == "" {
		return nil, fmt.Errorf("shard: exec launcher needs AttemptSpec.CampaignPath")
	}
	args := []string{
		"-campaign", spec.CampaignPath,
		"-seed", strconv.FormatUint(spec.Seed, 10),
		"-shard", fmt.Sprintf("%d/%d", spec.Shard.Shard, spec.Shards),
		"-shard-attempt", strconv.Itoa(spec.Attempt),
		"-checkpoint", spec.CheckpointPath,
		"-heartbeat", spec.HeartbeatPath,
	}
	if spec.CheckpointEvery > 0 {
		args = append(args, "-every", strconv.Itoa(spec.CheckpointEvery))
	}
	if spec.Workers > 0 {
		args = append(args, "-workers", strconv.Itoa(spec.Workers))
	}
	if spec.Resume != nil {
		// The worker reloads its own sidecar; Resume's presence just
		// says "it exists and validated".
		args = append(args, "-resume", spec.CheckpointPath)
	}
	if spec.FaultsPath != "" {
		args = append(args, "-chaos", spec.FaultsPath)
	}
	if spec.FailuresPath != "" {
		args = append(args, "-failures", spec.FailuresPath)
	}
	cmd := exec.Command(e.Bin, args...)
	cmd.Stderr = e.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	a := &execAttempt{
		cmd:       cmd,
		done:      make(chan struct{}),
		last:      time.Now(),
		lastSeq:   -1,
		hbPath:    spec.HeartbeatPath,
		failsPath: spec.FailuresPath,
	}
	go a.poll()
	go func() {
		defer close(a.done)
		err := cmd.Wait()
		a.err = execExitError(err)
		if a.err == nil && a.failsPath != "" {
			a.fails = loadFailures(a.failsPath)
		}
	}()
	return a, nil
}

// execExitError maps the worker's exit to the supervision contract:
// 0 is success, the PR-6 interrupted/timeout codes mean "checkpointed
// and stopped" (retryable from the sidecar), anything else — including
// a SIGKILL death — is a plain failure.
func execExitError(err error) error {
	if err == nil {
		return nil
	}
	if ee, ok := err.(*exec.ExitError); ok {
		switch ee.ExitCode() {
		case 3, 4:
			return fmt.Errorf("shard worker interrupted (exit %d): checkpointed and stopped", ee.ExitCode())
		}
	}
	return fmt.Errorf("shard worker died: %w", err)
}

func (a *execAttempt) poll() {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-t.C:
			hb, err := ReadHeartbeat(a.hbPath)
			if err != nil {
				continue // no beat yet, or a race with the writer's rename
			}
			a.mu.Lock()
			if hb.Seq != a.lastSeq {
				a.lastSeq = hb.Seq
				a.completed = hb.Completed
				a.last = time.Now()
			}
			a.mu.Unlock()
		}
	}
}

// loadFailures reads the worker's failure artifact; a missing or
// unreadable artifact just means no structured ledger (the failures
// were still reported on the worker's stderr).
func loadFailures(path string) []fleet.TrialFailure {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	art, err := fleet.DecodeFailures(f)
	if err != nil {
		return nil
	}
	return art.Failures
}

func (a *execAttempt) Done() <-chan struct{} { return a.done }
func (a *execAttempt) Err() error            { return a.err }
func (a *execAttempt) Heartbeat() (int, time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.completed, a.last
}
func (a *execAttempt) Failures() []fleet.TrialFailure { return a.fails }
func (a *execAttempt) Kill()                          { _ = a.cmd.Process.Kill() }
func (a *execAttempt) Drain()                         { _ = a.cmd.Process.Signal(syscall.SIGTERM) }
