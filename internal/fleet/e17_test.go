package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
)

// miniAttackCampaign is a two-scenario attacked campaign small enough
// for checkpoint-surgery tests: the insider-recon model against both
// profiles on the smoke geometry.
func miniAttackCampaign(t *testing.T) Campaign {
	t.Helper()
	model, err := attack.ModelByName("insider-recon")
	if err != nil {
		t.Fatal(err)
	}
	smoke := smokeCampaign()
	c := Campaign{Name: "mini-attack"}
	for i := range smoke.Scenarios {
		s := smoke.Scenarios[i]
		spec := model
		s.Attack = &spec
		c.Scenarios = append(c.Scenarios, s)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDecodeCampaignAttackSpec: the load-time contract of the attack
// field — unknown step names, malformed specs and typo'd fields are
// rejected when the campaign file is read, with the scenario named;
// a well-formed spec round-trips.
func TestDecodeCampaignAttackSpec(t *testing.T) {
	file := func(attackJSON string) string {
		return `{"name":"c","scenarios":[{"name":"s","profile":"enhanced",
			"workload":{"users":1,"jobs_per_user":1,"min_cores":1,"max_cores":1,"min_dur":1,"max_dur":1,"mem_b":1},
			"attack":` + attackJSON + `,"horizon":100,"replications":1}]}`
	}
	cases := []struct {
		name    string
		attack  string
		wantErr string // "" = must decode
	}{
		{name: "valid model", attack: `{"model":"custom","steps":["recon-proc","gpu-residue"]}`},
		{name: "valid with gap", attack: `{"model":"custom","steps":["ubf-probe"],"gap_ticks":5}`},
		{name: "unknown step", attack: `{"model":"custom","steps":["warp-core-breach"]}`,
			wantErr: `unknown step "warp-core-breach"`},
		{name: "no steps", attack: `{"model":"custom","steps":[]}`, wantErr: "has no steps"},
		{name: "no model", attack: `{"steps":["recon-proc"]}`, wantErr: "no model name"},
		{name: "duplicate step", attack: `{"model":"custom","steps":["recon-proc","recon-proc"]}`,
			wantErr: "duplicate step"},
		{name: "negative gap", attack: `{"model":"custom","steps":["recon-proc"],"gap_ticks":-2}`,
			wantErr: "gap_ticks"},
		{name: "typo field", attack: `{"model":"custom","stepz":["recon-proc"]}`, wantErr: "stepz"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := DecodeCampaign(strings.NewReader(file(tc.attack)))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if c.Scenarios[0].Attack == nil || c.Scenarios[0].Attack.Model != "custom" {
					t.Fatalf("attack spec lost in decode: %+v", c.Scenarios[0].Attack)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
			// Scenario-level errors carry the scenario name for
			// grep-ability in big campaign files (decode-level typo
			// errors come from encoding/json and do not).
			if tc.name != "typo field" && !strings.Contains(err.Error(), `"s"`) {
				t.Errorf("error %q does not name the scenario", err)
			}
		})
	}
}

// TestE17DeterministicAcrossWorkersAndPooling is the acceptance
// criterion extended to attacked campaigns: the full e17-redteam
// preset produces byte-identical JSON at workers 1/4/8 and with
// pooling on or off.
func TestE17DeterministicAcrossWorkersAndPooling(t *testing.T) {
	camp := e17RedTeamCampaign()
	var want []byte
	for _, opt := range []Options{
		{Workers: 1, Seed: 7},
		{Workers: 4, Seed: 7},
		{Workers: 8, Seed: 7},
		{Workers: 4, Seed: 7, DisablePooling: true},
	} {
		got := runJSON(t, camp, opt)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d pooling=%v produced different bytes", opt.Workers, !opt.DisablePooling)
		}
	}
}

// TestE17KillAndResumeByteIdentical: an attacked campaign killed
// mid-run resumes through its checkpoint to the uninterrupted bytes —
// the attack aggregates survive the round-trip.
func TestE17KillAndResumeByteIdentical(t *testing.T) {
	camp := e17RedTeamCampaign()
	clean := runJSON(t, camp, Options{Workers: 4, Seed: 7})
	ck := interruptedCheckpoint(t, camp, Options{Workers: 4, Seed: 7}, 5)
	if ck.Completed >= camp.Trials() {
		t.Fatalf("nothing left to resume: %d of %d trials completed", ck.Completed, camp.Trials())
	}
	resumed := runJSON(t, camp, Options{Workers: 4, Seed: 7, ResumeFrom: ck})
	if !bytes.Equal(resumed, clean) {
		t.Fatalf("resumed bytes differ from the uninterrupted run:\n%s\nvs\n%s", resumed, clean)
	}
	resumed1w := runJSON(t, camp, Options{Workers: 1, Seed: 7, ResumeFrom: ck})
	if !bytes.Equal(resumed1w, clean) {
		t.Fatal("single-worker resume bytes differ from the uninterrupted run")
	}
}

// TestCheckpointAttackShapeValidation: a checkpoint whose partials
// disagree with the campaign about attack aggregates is rejected at
// resume time, like a histogram-layout mismatch.
func TestCheckpointAttackShapeValidation(t *testing.T) {
	camp := miniAttackCampaign(t)
	ck := interruptedCheckpoint(t, camp, Options{Workers: 2, Seed: 7}, 2)

	reload := func(mutate func(*Checkpoint)) *Checkpoint {
		buf, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		fresh := new(Checkpoint)
		if err := json.Unmarshal(buf, fresh); err != nil {
			t.Fatal(err)
		}
		mutate(fresh)
		return fresh
	}
	mutateFirstPartial := func(f func(*ScenarioResult)) func(*Checkpoint) {
		return func(c *Checkpoint) {
			for i := range c.Scenarios {
				if len(c.Scenarios[i].Partials) > 0 {
					f(&c.Scenarios[i].Partials[0].Result)
					return
				}
			}
			t.Fatal("checkpoint has no partials to mutate")
		}
	}

	for name, tc := range map[string]struct {
		ck   *Checkpoint
		want string
	}{
		"aggregate dropped": {reload(mutateFirstPartial(func(r *ScenarioResult) { r.Attack = nil })),
			"attack aggregate presence"},
		"trial count skew": {reload(mutateFirstPartial(func(r *ScenarioResult) { r.Attack.Trials = 5 })),
			"attack aggregate holds"},
	} {
		if _, err := Run(camp, Options{Workers: 2, Seed: 7, ResumeFrom: tc.ck}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", name, tc.want, err)
		}
	}

	// And the inverse presence mismatch: a clean checkpoint of an
	// UNATTACKED campaign must reject a partial that grew an attack
	// aggregate (hash surgery is not needed — the result shape alone
	// trips it).
	plain := smokeCampaign()
	ckPlain := interruptedCheckpoint(t, plain, Options{Workers: 2, Seed: 7}, 2)
	bad := func() *Checkpoint {
		buf, _ := json.Marshal(ckPlain)
		fresh := new(Checkpoint)
		if err := json.Unmarshal(buf, fresh); err != nil {
			t.Fatal(err)
		}
		for i := range fresh.Scenarios {
			if len(fresh.Scenarios[i].Partials) > 0 {
				fresh.Scenarios[i].Partials[0].Result.Attack = attack.NewAgg()
				break
			}
		}
		return fresh
	}()
	if _, err := Run(plain, Options{Workers: 2, Seed: 7, ResumeFrom: bad}); err == nil || !strings.Contains(err.Error(), "attack aggregate presence") {
		t.Errorf("unattacked campaign accepted a partial with an attack aggregate: %v", err)
	}
}

// TestMergeAttackPresenceGuard: the reduction-level belt to the
// checkpoint validation's suspenders.
func TestMergeAttackPresenceGuard(t *testing.T) {
	with := &ScenarioResult{Name: "s", Attack: attack.NewAgg()}
	without := &ScenarioResult{Name: "s"}
	if err := with.Merge(without); err == nil || !strings.Contains(err.Error(), "attack aggregate") {
		t.Errorf("mixed-presence merge accepted: %v", err)
	}
}

// TestDegradedTrialCarriesAttackAgg: the degraded aggregate of an
// attacked scenario must keep the scenario's attack shape or every
// later merge (and the checkpoint validation) would reject it.
func TestDegradedTrialCarriesAttackAgg(t *testing.T) {
	camp := miniAttackCampaign(t)
	deg := DegradedTrialResult(&camp.Scenarios[0])
	if deg.Attack == nil || deg.Attack.Trials != 0 {
		t.Fatalf("degraded attacked trial: attack agg %+v, want empty non-nil", deg.Attack)
	}
	ok := DegradedTrialResult(&camp.Scenarios[0])
	if err := ok.Merge(deg); err != nil {
		t.Fatalf("degraded trial does not merge: %v", err)
	}
	if ok.Failures != 2 || ok.Attack.Trials != 0 {
		t.Errorf("merged degraded pair: failures=%d attack trials=%d, want 2/0", ok.Failures, ok.Attack.Trials)
	}
	plain := smokeCampaign()
	if deg := DegradedTrialResult(&plain.Scenarios[0]); deg.Attack != nil {
		t.Error("degraded unattacked trial grew an attack aggregate")
	}
}

// TestE17PresetShape pins the preset grid: 5 models × 2 profiles + 9
// kill-chain ablations, every scenario attacked.
func TestE17PresetShape(t *testing.T) {
	camp := MustPreset(PresetE17RedTeam)
	want := 2*len(attack.Models()) + len(core.Measures())
	if len(camp.Scenarios) != want {
		t.Fatalf("e17 preset has %d scenarios, want %d", len(camp.Scenarios), want)
	}
	for _, s := range camp.Scenarios {
		if s.Attack == nil {
			t.Errorf("scenario %q has no attack spec", s.Name)
		}
	}
}

// TestAttackedTableHasAttackColumn: the campaign table grows an
// attack column exactly when some scenario ran an adversary.
func TestAttackedTableHasAttackColumn(t *testing.T) {
	camp := miniAttackCampaign(t)
	res, err := Run(camp, Options{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Table().Render(); !strings.Contains(out, "attack") {
		t.Errorf("attacked campaign table has no attack column:\n%s", out)
	}
	plainRes, err := Run(smokeCampaign(), Options{Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out := plainRes.Table().Render(); strings.Contains(out, "attack") {
		t.Errorf("unattacked campaign table grew an attack column:\n%s", out)
	}
}
