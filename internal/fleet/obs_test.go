package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// counterValue reads one counter out of a snapshot; missing counters
// read as 0 so tests can assert absence and presence uniformly.
func counterValue(s *obs.Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// zeroWall strips the one legitimately nondeterministic span field so
// traces can be compared for identity.
func zeroWall(spans []obs.Span) []obs.Span {
	out := append([]obs.Span(nil), spans...)
	for i := range out {
		out[i].WallNS = 0
	}
	return out
}

// The observability hard requirement: campaign bytes are identical
// with metrics and tracing on vs off, across worker counts, pooling
// modes, and a kill-and-resume — observability reads the run, never
// perturbs it.
func TestObsNeutralByteIdentity(t *testing.T) {
	camp := smokeCampaign()
	want := runJSON(t, camp, Options{Workers: 2, Seed: 7})
	for _, workers := range []int{1, 4} {
		for _, pooling := range []bool{true, false} {
			name := fmt.Sprintf("w%d-pool%v", workers, pooling)
			t.Run(name, func(t *testing.T) {
				var traced bytes.Buffer
				got := runJSON(t, camp, Options{
					Workers:        workers,
					Seed:           7,
					DisablePooling: !pooling,
					Metrics:        obs.NewRegistry(),
					Tracer:         obs.NewTracer(&traced),
				})
				if !bytes.Equal(got, want) {
					t.Fatalf("bytes differ with observability on:\n%s\nvs\n%s", got, want)
				}
				if traced.Len() == 0 {
					t.Fatal("tracer received no spans")
				}
			})
		}
	}
	t.Run("kill-and-resume", func(t *testing.T) {
		ck := interruptedCheckpoint(t, camp, Options{Workers: 2, Seed: 7, Metrics: obs.NewRegistry()}, 2)
		var traced bytes.Buffer
		resumed := runJSON(t, camp, Options{
			Workers:    2,
			Seed:       7,
			ResumeFrom: ck,
			Metrics:    obs.NewRegistry(),
			Tracer:     obs.NewTracer(&traced),
		})
		if !bytes.Equal(resumed, want) {
			t.Fatalf("instrumented resume bytes differ from the plain uninterrupted run")
		}
	})
}

// Trace identity — everything but wall_ns — is deterministic across
// worker counts and pooling, and every executed trial is covered by
// the full canonical phase sequence.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	camp := smokeCampaign()
	var want []obs.Span
	for _, opt := range []Options{
		{Workers: 1, Seed: 7},
		{Workers: 4, Seed: 7},
		{Workers: 4, Seed: 7, DisablePooling: true},
	} {
		var buf bytes.Buffer
		opt.Tracer = obs.NewTracer(&buf)
		res, err := Run(camp, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := zeroWall(res.Spans)
		if want == nil {
			want = got
			// Phase coverage: 4 phases per trial (no attack, no
			// checkpointing in this config).
			if len(got) != 4*camp.Trials() {
				t.Fatalf("want %d spans (4 per trial), got %d", 4*camp.Trials(), len(got))
			}
			phases := []string{obs.PhaseReset, obs.PhaseMix, obs.PhaseDrain, obs.PhaseAggregate}
			for i, sp := range got {
				if sp.Phase != phases[i%4] || sp.Seq != i%4 {
					t.Fatalf("span %d out of canonical phase order: %+v", i, sp)
				}
				if sp.Phase == obs.PhaseDrain && sp.EndTick == sp.StartTick {
					t.Errorf("span %d: drain advanced no ticks: %+v", i, sp)
				}
			}
			continue
		}
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", want) {
			t.Fatalf("trace differs across configurations:\n%v\nvs\n%v", got, want)
		}
	}
}

// A retried trial's trace shows both attempts — the panicked attempt's
// half-open phase dropped, the retry restarting its sequence — and the
// attack phase appears exactly for attacked scenarios.
func TestTraceRetriesAndAttackPhase(t *testing.T) {
	camp := smokeCampaign()
	res, err := Run(camp, Options{Workers: 1, Seed: 7, Tracer: obs.NewTracer(&bytes.Buffer{}), Faults: &FaultPlan{
		Panics: []PanicFault{{Scenario: "smoke/enhanced", Replication: 1, Point: PointSubmit}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var att1, att2 int
	for _, sp := range res.Spans {
		if sp.Scenario == "smoke/enhanced" && sp.Rep == 1 {
			switch sp.Attempt {
			case 1:
				att1++
			case 2:
				att2++
			}
		}
	}
	// Attempt 1 panics at PointSubmit: reset completed, mix half-open
	// and dropped. Attempt 2 completes all 4 phases.
	if att1 != 1 || att2 != 4 {
		t.Fatalf("retried trial spans: attempt1=%d attempt2=%d, want 1 and 4", att1, att2)
	}

	attacked := e17RedTeamCampaign()
	res, err = Run(attacked, Options{Workers: 2, Seed: 7, Tracer: obs.NewTracer(&bytes.Buffer{})})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, sp := range res.Spans {
		if sp.Phase == obs.PhaseAttack {
			n++
		}
	}
	if n == 0 {
		t.Fatal("attacked campaign traced no attack phases")
	}
}

// Checkpoint-write spans carry the write ordinal, and their count is
// deterministic: one per periodic interval plus the final write.
func TestTraceCheckpointSpans(t *testing.T) {
	camp := smokeCampaign()
	res, err := Run(camp, Options{
		Workers: 2, Seed: 7,
		CheckpointPath:  t.TempDir() + "/ck.json",
		CheckpointEvery: 1,
		Tracer:          obs.NewTracer(&bytes.Buffer{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var cks []obs.Span
	for _, sp := range res.Spans {
		if sp.Phase == obs.PhaseCheckpoint {
			cks = append(cks, sp)
		}
	}
	if len(cks) != camp.Trials()+1 {
		t.Fatalf("want %d checkpoint spans (every completion + final), got %d", camp.Trials()+1, len(cks))
	}
	for i, sp := range cks {
		if sp.Seq != i+1 || sp.Scenario != "" {
			t.Fatalf("checkpoint span %d wrong identity: %+v", i, sp)
		}
	}
}

// The registry counts what the run did: trials, pool traffic,
// scheduler ticks, checkpoint writes, makespan observations.
func TestRunMetricsAccounting(t *testing.T) {
	camp := smokeCampaign()
	trials := int64(camp.Trials())
	reg := obs.NewRegistry()
	if _, err := Run(camp, Options{
		Workers: 1, Seed: 7,
		Metrics:         reg,
		CheckpointPath:  t.TempDir() + "/ck.json",
		CheckpointEvery: 1,
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := counterValue(snap, "fleet_trials_completed_total"); got != trials {
		t.Errorf("trials_completed = %d, want %d", got, trials)
	}
	// One worker, pooling on: one fresh build per scenario, the rest
	// of the trials served by Reset.
	scenarios := int64(len(camp.Scenarios))
	if got := counterValue(snap, "fleet_pool_builds_total"); got != scenarios {
		t.Errorf("pool_builds = %d, want %d", got, scenarios)
	}
	if got := counterValue(snap, "fleet_pool_hits_total"); got != trials-scenarios {
		t.Errorf("pool_hits = %d, want %d", got, trials-scenarios)
	}
	if got := counterValue(snap, "fleet_checkpoint_writes_total"); got != trials+1 {
		t.Errorf("checkpoint_writes = %d, want %d", got, trials+1)
	}
	steps := counterValue(snap, "fleet_sched_steps_total")
	ff := counterValue(snap, "fleet_sched_fastforwarded_ticks_total")
	if steps <= 0 {
		t.Errorf("sched_steps = %d, want > 0", steps)
	}
	if ff < 0 {
		t.Errorf("sched_fastforwarded = %d", ff)
	}
	var hist *obs.HistogramSnap
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "fleet_trial_ticks" {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil || hist.Count != trials {
		t.Fatalf("fleet_trial_ticks histogram missing or wrong count: %+v", hist)
	}

	// A degraded run counts its panics, retries and degradations; a
	// resumed run counts restored trials separately from completed.
	reg2 := obs.NewRegistry()
	if _, err := Run(camp, Options{Workers: 1, Seed: 7, Metrics: reg2, MaxTrialRetries: 1, Faults: &FaultPlan{
		Panics: []PanicFault{
			{Scenario: "smoke/enhanced", Replication: 1, Point: PointBegin, Attempts: 2},
		},
	}}); err != nil {
		t.Fatal(err)
	}
	snap2 := reg2.Snapshot()
	if got := counterValue(snap2, "fleet_trial_panics_total"); got != 2 {
		t.Errorf("trial_panics = %d, want 2", got)
	}
	if got := counterValue(snap2, "fleet_trial_retries_total"); got != 1 {
		t.Errorf("trial_retries = %d, want 1", got)
	}
	if got := counterValue(snap2, "fleet_trials_degraded_total"); got != 1 {
		t.Errorf("trials_degraded = %d, want 1", got)
	}

	ck := interruptedCheckpoint(t, camp, Options{Workers: 2, Seed: 7}, 2)
	reg3 := obs.NewRegistry()
	if _, err := Run(camp, Options{Workers: 2, Seed: 7, ResumeFrom: ck, Metrics: reg3}); err != nil {
		t.Fatal(err)
	}
	snap3 := reg3.Snapshot()
	if got := counterValue(snap3, "fleet_trials_restored_total"); got != 2 {
		t.Errorf("trials_restored = %d, want 2", got)
	}
	if got := counterValue(snap3, "fleet_trials_completed_total"); got != trials-2 {
		t.Errorf("resumed trials_completed = %d, want %d", got, trials-2)
	}

	// An attacked campaign counts adversary steps.
	reg4 := obs.NewRegistry()
	if _, err := Run(e17RedTeamCampaign(), Options{Workers: 2, Seed: 7, Metrics: reg4}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(reg4.Snapshot(), "fleet_attack_steps_total"); got <= 0 {
		t.Errorf("attack_steps = %d, want > 0", got)
	}
}
