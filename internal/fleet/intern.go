package fleet

import (
	"fmt"
	"sync"
)

// userNamePool interns the "u<N>" account names every campaign-shaped
// workload provisions. A 1M-user scenario used to materialize a fresh
// million-string slice per compiled scenario (and again per ad-hoc
// ProvisionMix call); the pool formats each name once, process-wide,
// and every trial replication reuses the same string — names are
// derived purely from the index, so sharing them cannot perturb any
// output byte.
var userNamePool struct {
	mu    sync.RWMutex
	names []string
}

// UserName returns the interned "u<i>" account name, formatting and
// caching it on first use. Grow-only: the pool survives across trials
// and campaigns by design.
func UserName(i int) string {
	userNamePool.mu.RLock()
	if i < len(userNamePool.names) {
		s := userNamePool.names[i]
		userNamePool.mu.RUnlock()
		return s
	}
	userNamePool.mu.RUnlock()
	userNamePool.mu.Lock()
	defer userNamePool.mu.Unlock()
	for len(userNamePool.names) <= i {
		userNamePool.names = append(userNamePool.names, fmt.Sprintf("u%d", len(userNamePool.names)))
	}
	return userNamePool.names[i]
}
