// Package fleet executes simulation campaigns: grids of independent
// trials (scenarios × replications) sharded across worker
// goroutines. A Scenario is a declarative, JSON-serializable spec —
// profile + ablations from the core measure registry, topology,
// workload mix, horizon, replication count — so campaigns are data,
// not code. The executor (run.go) derives every trial's RNG stream
// from (scenario name, replication index) via metrics.StreamSeed and
// reduces shard results in trial-index order, which makes campaign
// output bit-identical regardless of worker count or completion
// order: `fleetrun -workers 1` and `-workers 8` produce the same
// bytes. The same contract makes campaigns fault-tolerant rather
// than merely restartable: runs checkpoint per-trial aggregates to
// an atomically-written sidecar and resume byte-identically
// (checkpoint.go), panicking trials are isolated, retried under
// their unchanged stream seed and degraded to counted failures
// instead of killing the campaign (run.go), and a deterministic
// chaos injector exercises all of it (faults.go). Built-in presets
// (presets.go) re-express the paper's E4 policy grid and E16
// ablation matrix as campaigns.
package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Scenario is one cell of a campaign grid: a cluster configuration
// plus a workload, replicated Replications times under independent
// RNG streams.
type Scenario struct {
	// Name identifies the scenario AND keys its RNG streams: trials
	// are seeded by (Name, replication index), so renaming a scenario
	// intentionally changes its draws while reordering scenarios in
	// the campaign does not. Names must be unique within a campaign.
	Name string `json:"name"`
	// Profile is a core profile name ("baseline", "enhanced").
	Profile string `json:"profile"`
	// Ablate lists registry measures dropped from the profile
	// (core.Without), the E16 lever.
	Ablate []string `json:"ablate,omitempty"`
	// Policy optionally overrides the node-sharing policy ("shared",
	// "exclusive", "user-wholenode"), the E4 lever.
	Policy string `json:"policy,omitempty"`
	// Topology is the cluster geometry; the zero value means
	// core.DefaultTopology.
	Topology core.Topology `json:"topology,omitzero"`
	// Workload is the job mix every trial submits.
	Workload workload.MixSpec `json:"workload"`
	// Attack optionally runs an adversary campaign concurrently with
	// the mix: after submission the attacker executes its steps
	// against the live cluster, paced by its own RNG stream (derived
	// from the trial seed via attack.StreamIndex, so the mix's draws
	// are untouched). Trials then carry an attack.Agg aggregate next
	// to the drain statistics. Nil means no adversary — and a JSON
	// encoding byte-identical to pre-attack campaigns.
	Attack *attack.Spec `json:"attack,omitempty"`
	// Horizon caps each trial at this many scheduler ticks.
	Horizon int `json:"horizon"`
	// Replications is how many independently-seeded trials to run.
	Replications int `json:"replications"`
}

// Campaign is a named set of scenarios — the unit fleetrun loads,
// runs and reports on.
type Campaign struct {
	Name      string     `json:"name"`
	Scenarios []Scenario `json:"scenarios"`
}

// topology returns the scenario's geometry, defaulting the zero
// value.
func (s Scenario) topology() core.Topology {
	if s.Topology == (core.Topology{}) {
		return core.DefaultTopology()
	}
	return s.Topology
}

// Validate rejects scenarios that could not run: unknown profiles,
// measures or policies, degenerate geometry or workload, and
// non-positive horizons or replication counts. It dry-runs the full
// profile resolution so a campaign file fails at load time, not
// mid-run on worker 7.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("fleet: scenario has no name (names key the RNG streams)")
	}
	// Degenerate trial counts and horizons are rejected up front —
	// before any profile resolution — with explicit errors: a zero or
	// negative Replications would silently produce an empty scenario
	// result (and a zero-trial campaign), and a non-positive Horizon
	// would make every trial return without simulating a tick.
	if s.Replications <= 0 {
		return fmt.Errorf("fleet: scenario %q: replications must be >= 1 (got %d)", s.Name, s.Replications)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("fleet: scenario %q: horizon must be >= 1 tick (got %d)", s.Name, s.Horizon)
	}
	// The policy must parse before options() may assemble it (options
	// panics on a bad policy precisely because Validate owns this
	// error path).
	if s.Policy != "" {
		if _, err := sched.ParsePolicy(s.Policy); err != nil {
			return fmt.Errorf("fleet: scenario %q: %w", s.Name, err)
		}
	}
	prof, err := core.ProfileByName(s.Profile)
	if err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", s.Name, err)
	}
	resolved, topo, err := core.ResolveProfile(prof, s.options()...)
	if err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", s.Name, err)
	}
	if _, err := resolved.Config(); err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", s.Name, err)
	}
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", s.Name, err)
	}
	if err := s.Workload.Validate(); err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", s.Name, err)
	}
	// The attack spec resolves against the step registry here, so a
	// campaign file naming an unknown step fails at load time like an
	// unknown measure or an infeasible workload would.
	if s.Attack != nil {
		if err := s.Attack.Validate(); err != nil {
			return fmt.Errorf("fleet: scenario %q: %w", s.Name, err)
		}
	}
	// Feasibility against the geometry, so an impossible campaign is
	// rejected here instead of erroring (or pending forever) mid-run
	// on a worker: a job may span nodes but not exceed the cluster's
	// total cores (sched.ErrUnsatisfiable at submit), and its per-node
	// memory request must fit a node or it never places.
	if clusterCores := topo.ComputeNodes * topo.CoresPerNode; s.Workload.MaxCores > clusterCores {
		return fmt.Errorf("fleet: scenario %q: workload max_cores %d exceeds the cluster's %d cores",
			s.Name, s.Workload.MaxCores, clusterCores)
	}
	if s.Workload.MemB > topo.MemPerNode {
		return fmt.Errorf("fleet: scenario %q: workload mem_b %d exceeds mem_per_node %d (jobs could never place)",
			s.Name, s.Workload.MemB, topo.MemPerNode)
	}
	return nil
}

// options assembles the core cluster-build options the scenario
// describes.
func (s Scenario) options() []core.Option {
	opts := []core.Option{core.WithTopology(s.topology())}
	for _, name := range s.Ablate {
		opts = append(opts, core.Without(name))
	}
	if s.Policy != "" {
		pol, err := sched.ParsePolicy(s.Policy)
		if err != nil {
			// Validate reports this case with context; reaching here
			// without Validate must fail loudly, not silently run the
			// profile's default policy.
			panic(err)
		}
		opts = append(opts, core.WithMeasures(core.Measure{
			Name:    "fleet-policy-" + s.Policy,
			Summary: "pin the node-sharing policy for this scenario",
			Apply:   func(cfg *core.Config) { cfg.Policy = pol },
		}))
	}
	return opts
}

// TrialSeed derives the RNG seed of replication rep under the given
// campaign master seed. The derivation is two StreamSeed hops —
// master → scenario stream (indexed by the name's FNV-1a hash) →
// trial stream (indexed by rep) — so it depends only on (master,
// Name, rep): not on worker count, not on scenario order, not on
// which shard runs the trial.
func (s Scenario) TrialSeed(master uint64, rep int) uint64 {
	return metrics.StreamSeed(metrics.StreamSeed(master, nameHash(s.Name)), uint64(rep))
}

// nameHash is the FNV-1a index of a scenario name into the master
// stream. The executor hoists it out of the per-trial path (the
// scenario stream is compiled once per Run); TrialSeed keeps the
// two-hop derivation as the documented public contract.
func nameHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Validate checks the whole campaign: at least one scenario, unique
// scenario names (they key the RNG streams), every scenario valid.
func (c Campaign) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("fleet: campaign has no name")
	}
	if len(c.Scenarios) == 0 {
		return fmt.Errorf("fleet: campaign %q has no scenarios", c.Name)
	}
	seen := make(map[string]bool, len(c.Scenarios))
	for _, s := range c.Scenarios {
		if seen[s.Name] {
			return fmt.Errorf("fleet: campaign %q: duplicate scenario name %q", c.Name, s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Trials returns the campaign's total trial count.
func (c Campaign) Trials() int {
	n := 0
	for _, s := range c.Scenarios {
		n += s.Replications
	}
	return n
}

// DecodeCampaign reads and validates a campaign from JSON. Unknown
// fields are an error so a typo in a scenario file fails loudly
// instead of silently running defaults.
func DecodeCampaign(r io.Reader) (Campaign, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Campaign
	if err := dec.Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("fleet: decoding campaign: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// EncodeCampaign renders a campaign as indented JSON (the scenario
// file format), so presets double as authoring templates.
func EncodeCampaign(c Campaign) ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
