package fleet

import (
	"encoding/json"
	"fmt"
	"io"
)

// FailuresArtifact is the stable JSON schema of `fleetrun -failures`:
// the structured trial-failure ledger a service can collect without
// scraping stderr. It carries only deterministic fields — scenario,
// replication, attempt, terminal flag, panic message — never stack
// traces, which stay stderr-only by contract (goroutine numbers and
// addresses would make the artifact unreproducible).
type FailuresArtifact struct {
	Campaign string         `json:"campaign"`
	Seed     uint64         `json:"seed"`
	Failures []TrialFailure `json:"failures"`
}

// EncodeFailures renders the artifact: indented, trailing newline,
// `"failures": []` (never null) when the run was clean, so consumers
// can rely on the field's shape.
func EncodeFailures(campaign string, seed uint64, fails []TrialFailure) ([]byte, error) {
	a := FailuresArtifact{Campaign: campaign, Seed: seed, Failures: fails}
	if a.Failures == nil {
		a.Failures = []TrialFailure{}
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeFailures reads an artifact back, rejecting unknown fields
// like every other decoded artifact in the repo: a file from a future
// schema fails loudly rather than dropping fields silently.
func DecodeFailures(r io.Reader) (*FailuresArtifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a FailuresArtifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("fleet: decoding failures artifact: %w", err)
	}
	return &a, nil
}

// WriteFailures writes the artifact atomically (temp + rename + dir
// fsync, like every persisted artifact).
func WriteFailures(path, campaign string, seed uint64, fails []TrialFailure) error {
	data, err := EncodeFailures(campaign, seed, fails)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}
