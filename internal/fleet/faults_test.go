package fleet

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestDecodeFaultPlanRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeFaultPlan(strings.NewReader(`{"paniks":[]}`)); err == nil || !strings.Contains(err.Error(), "paniks") {
		t.Errorf("typo field accepted: %v", err)
	}
	p, err := DecodeFaultPlan(strings.NewReader(`{"panics":[{"scenario":"smoke/enhanced","replication":1,"point":"begin"}],"kill_after_trials":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Panics) != 1 || p.Panics[0].Point != PointBegin || p.KillAfterTrials != 3 {
		t.Errorf("decoded plan mangled: %+v", p)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	camp := smokeCampaign()
	for name, tc := range map[string]struct {
		plan FaultPlan
		want string
	}{
		"unknown scenario":      {FaultPlan{Panics: []PanicFault{{Scenario: "nope", Replication: 0}}}, "unknown scenario"},
		"replication range":     {FaultPlan{Panics: []PanicFault{{Scenario: "smoke/enhanced", Replication: 3}}}, "outside"},
		"negative attempts":     {FaultPlan{Panics: []PanicFault{{Scenario: "smoke/enhanced", Attempts: -1}}}, "attempts"},
		"unknown point":         {FaultPlan{Panics: []PanicFault{{Scenario: "smoke/enhanced", Point: "middle"}}}, "point"},
		"zero-based ckpt write": {FaultPlan{CheckpointWrites: []int{0}}, "1-based"},
		"negative delay":        {FaultPlan{Delays: []WorkerDelay{{Worker: 0, PerTrialMS: -5}}}, "negative"},
		"negative kill":         {FaultPlan{KillAfterTrials: -1}, "kill_after_trials"},
	} {
		if err := tc.plan.Validate(camp); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", name, tc.want, err)
		}
	}
	ok := FaultPlan{
		Panics:           []PanicFault{{Scenario: "smoke/enhanced", Replication: 2, Attempts: 2, Point: PointBegin}},
		CheckpointWrites: []int{1},
		Delays:           []WorkerDelay{{Worker: 1, PerTrialMS: 1}},
	}
	if err := ok.Validate(camp); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	// Run must reject an invalid plan up front, not inject nothing.
	if _, err := Run(camp, Options{Faults: &FaultPlan{KillAfterTrials: -1}}); err == nil {
		t.Error("Run accepted an invalid fault plan")
	}
}

// The core panic-isolation promise: a trial that panics within the
// retry budget is retried under the identical stream seed, and the
// campaign's final bytes are identical to a run with no fault at all
// — the recovery is invisible in the results, visible only in the
// TrialFailures ledger. Exercised at both fault points; PointSubmit
// panics with a dirty cluster, so a byte-identical retry proves the
// quarantine actually discarded the poisoned pool slot.
func TestInjectedPanicRecoveredByteIdentical(t *testing.T) {
	camp := smokeCampaign()
	clean := runJSON(t, camp, Options{Workers: 2, Seed: 7})
	for _, point := range []string{PointBegin, PointSubmit} {
		t.Run(point, func(t *testing.T) {
			res, err := Run(camp, Options{Workers: 2, Seed: 7, Faults: &FaultPlan{
				Panics: []PanicFault{{Scenario: "smoke/enhanced", Replication: 1, Point: point}},
			}})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			data, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, clean) {
				t.Fatalf("recovered-run bytes differ from the fault-free run:\n%s\nvs\n%s", data, clean)
			}
			if len(res.TrialFailures) != 1 {
				t.Fatalf("want exactly 1 recorded failure, got %d: %+v", len(res.TrialFailures), res.TrialFailures)
			}
			tf := res.TrialFailures[0]
			if tf.Scenario != "smoke/enhanced" || tf.Replication != 1 || tf.Attempt != 1 || tf.Terminal {
				t.Errorf("failure record wrong: %+v", tf)
			}
			if !strings.Contains(tf.Panic, "injected panic") || !strings.Contains(tf.Panic, point) {
				t.Errorf("panic message should identify the chaos injection: %q", tf.Panic)
			}
			if !strings.Contains(tf.Stack, "runTrial") {
				t.Errorf("failure should carry the panicking stack, got %q", tf.Stack)
			}
		})
	}
}

// A trial whose every attempt panics degrades to a counted failure:
// the campaign completes, the scenario reports Replications = N-1 and
// Failures = 1, and every other scenario's statistics are exactly
// those of a fault-free run.
func TestInjectedPanicTerminalDegradation(t *testing.T) {
	camp := smokeCampaign()
	clean := runJSON(t, camp, Options{Workers: 2, Seed: 7})
	var cleanRes CampaignResult
	if err := json.Unmarshal(clean, &cleanRes); err != nil {
		t.Fatal(err)
	}

	res, err := Run(camp, Options{Workers: 2, Seed: 7, Faults: &FaultPlan{
		Panics: []PanicFault{{Scenario: "smoke/baseline", Replication: 0, Attempts: 99}},
	}})
	if err != nil {
		t.Fatalf("a terminal trial failure must degrade, not abort: %v", err)
	}

	wantAttempts := DefaultTrialRetries + 1
	if len(res.TrialFailures) != wantAttempts {
		t.Fatalf("want %d recorded attempts, got %d", wantAttempts, len(res.TrialFailures))
	}
	for i, tf := range res.TrialFailures {
		if tf.Attempt != i+1 {
			t.Errorf("attempt %d recorded as %d", i+1, tf.Attempt)
		}
		if terminal := i == len(res.TrialFailures)-1; tf.Terminal != terminal {
			t.Errorf("attempt %d: Terminal = %v, want %v", tf.Attempt, tf.Terminal, terminal)
		}
	}

	for i, s := range res.Scenarios {
		spec := camp.Scenarios[i]
		if s.Name == "smoke/baseline" {
			if s.Failures != 1 || s.Replications != spec.Replications-1 {
				t.Errorf("degraded scenario: replications %d failures %d, want %d and 1",
					s.Replications, s.Failures, spec.Replications-1)
			}
			continue
		}
		// The untouched scenario must be bit-for-bit the fault-free
		// run's (compare through the same JSON round-trip the clean
		// bytes went through).
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got ScenarioResult
		if err := json.Unmarshal(buf, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&got, cleanRes.Scenarios[i]) {
			t.Errorf("scenario %q perturbed by another scenario's terminal failure:\n%+v\nvs\n%+v",
				s.Name, got, cleanRes.Scenarios[i])
		}
	}

	// MaxTrialRetries < 0 disables retries: one attempt, immediately
	// terminal.
	res, err = Run(camp, Options{Workers: 1, Seed: 7, MaxTrialRetries: -1, Faults: &FaultPlan{
		Panics: []PanicFault{{Scenario: "smoke/baseline", Replication: 0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrialFailures) != 1 || !res.TrialFailures[0].Terminal {
		t.Errorf("retries disabled: want 1 terminal failure, got %+v", res.TrialFailures)
	}
}

// White-box: a panic mid-trial quarantines the worker's pooled
// cluster — the retry builds a fresh one rather than trusting Reset
// on a cluster in an unknown state — and the retried trial's
// aggregate equals a never-pooled fresh worker's byte for byte.
func TestPanicQuarantinesPooledCluster(t *testing.T) {
	camp := smokeCampaign()
	comp, err := compileCampaign(camp, 7)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := compileFaults(&FaultPlan{
		Panics: []PanicFault{{Scenario: camp.Scenarios[0].Name, Replication: 0, Point: PointSubmit}},
	}, camp, nil)
	if err != nil {
		t.Fatal(err)
	}

	w := newTrialWorker(comp, true)
	w.faults = inj
	// Populate the pool with a clean trial first.
	if _, fails, err := w.runTrialIsolated(0, 1, 3); err != nil || len(fails) != 0 {
		t.Fatalf("clean trial: fails %v err %v", fails, err)
	}
	before := w.slots[0].cluster
	if before == nil {
		t.Fatal("pooling worker retained no cluster")
	}

	res, fails, err := w.runTrialIsolated(0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || fails[0].Terminal {
		t.Fatalf("want one recovered failure, got %+v", fails)
	}
	after := w.slots[0].cluster
	if after == nil {
		t.Fatal("retry did not repopulate the pool")
	}
	if after == before {
		t.Fatal("poisoned cluster survived the panic in the pool")
	}

	fresh := newTrialWorker(comp, false)
	want, fails, err := fresh.runTrialIsolated(0, 0, 1)
	if err != nil || len(fails) != 0 {
		t.Fatalf("fresh trial: fails %v err %v", fails, err)
	}
	gotJSON, _ := json.Marshal(res)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("retried trial differs from a fresh worker's:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

// Losing checkpoint writes must not kill the campaign the checkpoint
// protects: failed periodic writes are counted, the results are
// untouched, and the final sidecar (a later write) is complete.
func TestCheckpointWriteFailureTolerated(t *testing.T) {
	camp := smokeCampaign()
	clean := runJSON(t, camp, Options{Workers: 2, Seed: 7})
	path := filepath.Join(t.TempDir(), "ckpt.json")
	res, err := Run(camp, Options{Workers: 2, Seed: 7, CheckpointPath: path, CheckpointEvery: 1,
		Faults: &FaultPlan{CheckpointWrites: []int{2, 3}}})
	if err != nil {
		t.Fatalf("failed checkpoint writes aborted the run: %v", err)
	}
	if res.CheckpointWriteFailures != 2 {
		t.Errorf("CheckpointWriteFailures = %d, want 2", res.CheckpointWriteFailures)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, clean) {
		t.Fatal("checkpoint write failures changed the result bytes")
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if ck.Completed != camp.Trials() {
		t.Errorf("final checkpoint records %d trials, want all %d", ck.Completed, camp.Trials())
	}
	if err := ck.ValidateAgainst(camp, 7); err != nil {
		t.Errorf("final checkpoint invalid: %v", err)
	}
}

// Worker delays change wall-clock only — the scheduling perturbation
// they exist to cause must never reach the results.
func TestWorkerDelayWallClockOnly(t *testing.T) {
	camp := smokeCampaign()
	clean := runJSON(t, camp, Options{Workers: 2, Seed: 7})
	delayed := runJSON(t, camp, Options{Workers: 2, Seed: 7, Faults: &FaultPlan{
		Delays: []WorkerDelay{{Worker: 0, PerTrialMS: 2}},
	}})
	if !bytes.Equal(delayed, clean) {
		t.Fatal("a worker delay changed the result bytes")
	}
}
