package fleet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/workload"
)

// DefaultCheckpointEvery is the completed-trial cadence of periodic
// checkpoint writes when Options.CheckpointEvery is unset.
const DefaultCheckpointEvery = 8

// DefaultTrialRetries is how many times a panicking trial is re-run
// before it degrades to a counted failure, when Options.MaxTrialRetries
// is unset.
const DefaultTrialRetries = 2

// Options configures a campaign run.
type Options struct {
	// Workers is the shard count; <= 0 means GOMAXPROCS. The worker
	// count affects wall-clock time only, never results: see the
	// determinism contract on Run.
	Workers int
	// Seed is the campaign master seed every trial stream derives
	// from.
	Seed uint64
	// DisablePooling makes every trial construct its own cluster from
	// scratch instead of reusing a per-worker, per-scenario pooled
	// cluster via core.Cluster.Reset. Pooling affects wall-clock time
	// only, never results — output is byte-identical either way (the
	// Reset contract, pinned by test and CI) — so the switch exists
	// for exactly two audiences: the lifecycle benchmark and the
	// determinism gates that prove the equivalence.
	DisablePooling bool
	// CheckpointPath, when non-empty, makes Run persist a resumable
	// Checkpoint sidecar (atomically: temp + rename) every
	// CheckpointEvery completed trials and once more when the run
	// drains — normally, on Interrupt, or before aborting on a trial
	// error — so a SIGKILLed campaign loses at most the trials since
	// the last periodic write.
	CheckpointPath string
	// CheckpointEvery is the completed-trial cadence of periodic
	// checkpoint writes; <= 0 means DefaultCheckpointEvery.
	CheckpointEvery int
	// ResumeFrom restores completed trials from a prior run's
	// checkpoint. Run validates it against the compiled campaign —
	// name, canonical-encoding hash, seed and per-scenario shape must
	// all match or the resume is rejected — then skips every
	// completed trial and merges the restored per-trial aggregates in
	// trial-index order, so the final result is byte-identical to an
	// uninterrupted run (see checkpoint.go for why).
	ResumeFrom *Checkpoint
	// Interrupt, when readable (closed or sent on), stops dispatching
	// new trials: in-flight trials drain, a final checkpoint is
	// written if CheckpointPath is set, and Run returns
	// *InterruptedError instead of a result.
	Interrupt <-chan struct{}
	// MaxTrialRetries bounds how many times a panicking trial is
	// re-run — same (scenario, replication) stream seed, freshly
	// built cluster — before it degrades to an explicit failure.
	// 0 means DefaultTrialRetries; negative disables retries.
	MaxTrialRetries int
	// Faults is the chaos-injection plan (faults.go); nil injects
	// nothing.
	Faults *FaultPlan
	// Progress, when non-nil, is called after every completed trial
	// (and its checkpoint write, if due) with the cumulative
	// completed-trial count, restored trials included. Shard workers
	// hang their heartbeats here; a blackhole fault freezes these
	// calls along with the checkpoint writes. Called from the
	// checkpointer goroutine — keep it fast and do not call back into
	// the run.
	Progress func(completed int)
	// Metrics, when non-nil, receives the run's fleet_* instrument
	// catalogue (obs.go). Observability is strictly one-way: metrics
	// read the run, never steer it, so the campaign's canonical JSON
	// is byte-identical with Metrics set or nil (pinned by test and
	// CI). A registry may be shared across runs — counters keep
	// accumulating — or across concurrent shards and merged later.
	Metrics *obs.Registry
	// Tracer, when non-nil, makes Run emit one NDJSON span per trial
	// phase plus one per checkpoint write, flushed after the reduction
	// in trial-index order (never completion order). Span identity and
	// tick fields are deterministic for a fixed (campaign, seed);
	// only the wall_ns field varies run to run. Same neutrality
	// contract as Metrics. RunShard ignores the tracer: shard-mode
	// spans would interleave nondeterministically across processes.
	Tracer *obs.Tracer
}

// TrialFailure is the structured record of one panicking trial
// attempt: which trial, which attempt, what the panic said and where.
// Failures ride on CampaignResult outside the canonical JSON bytes —
// stack traces embed goroutine numbers and addresses, which would
// break the byte-determinism contract — and checkpoints likewise
// persist only the per-scenario failure counts. The json tags are the
// stable artifact schema of `fleetrun -failures`: every field but
// Stack, which is deliberately excluded (nondeterministic, and
// stderr-only by contract).
type TrialFailure struct {
	Scenario    string `json:"scenario"`
	Replication int    `json:"replication"`
	Attempt     int    `json:"attempt"` // 1-based
	Terminal    bool   `json:"terminal"` // the retry budget is exhausted; the trial degraded to a counted failure
	Panic       string `json:"panic"`
	Stack       string `json:"-"`
}

// InterruptedError reports a run stopped by Options.Interrupt or a
// FaultPlan KillAfterTrials fault, after in-flight trials drained and
// the final checkpoint (if requested) was written.
type InterruptedError struct {
	Completed  int    // trials completed, restored ones included
	Total      int    // trials in the campaign
	Checkpoint string // path of the final checkpoint; "" if none was requested
}

func (e *InterruptedError) Error() string {
	if e.Checkpoint == "" {
		return fmt.Sprintf("fleet: campaign interrupted after %d/%d trials (no checkpoint path: completed trials were discarded)", e.Completed, e.Total)
	}
	return fmt.Sprintf("fleet: campaign interrupted after %d/%d trials (checkpoint: %s)", e.Completed, e.Total, e.Checkpoint)
}

// ScenarioResult aggregates one scenario's trials with mergeable
// streaming statistics — no per-trial sample slices are retained, so
// campaigns scale to arbitrary replication counts.
type ScenarioResult struct {
	Name         string             `json:"name"`
	Replications int                `json:"replications"`
	Util         metrics.Acc        `json:"util"`
	Makespan     metrics.Acc        `json:"makespan_ticks"`
	MakespanHist *metrics.Histogram `json:"makespan_hist"`
	Crashes      int                `json:"crashes"`
	Cofailures   int                `json:"cofailures"`
	// Unfinished counts jobs still pending or running at the horizon,
	// summed over trials; nonzero means the horizon is too short for
	// the workload.
	Unfinished int `json:"unfinished"`
	// Failures counts trials that exhausted their panic-retry budget
	// and degraded to an empty aggregate instead of aborting the
	// campaign. Replications counts successful trials only, so
	// Replications+Failures equals the scenario's configured count —
	// a nonzero value marks the scenario's statistics as partial.
	Failures int `json:"failures"`
	// Attack aggregates the scenario's adversary campaigns — present
	// exactly when the scenario spec carries an attack, so campaigns
	// without one keep their pre-attack JSON bytes (omitempty).
	Attack *attack.Agg `json:"attack,omitempty"`
}

// Merge folds another shard of the same scenario in. Merge order is
// the caller's contract: Run always merges in replication order, so
// floating-point accumulation is reproducible.
func (r *ScenarioResult) Merge(o *ScenarioResult) error {
	if r.Name != o.Name {
		return fmt.Errorf("fleet: merging results of different scenarios (%q vs %q)", r.Name, o.Name)
	}
	r.Replications += o.Replications
	r.Util.Merge(o.Util)
	r.Makespan.Merge(o.Makespan)
	if err := r.MakespanHist.Merge(o.MakespanHist); err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", r.Name, err)
	}
	r.Crashes += o.Crashes
	r.Cofailures += o.Cofailures
	r.Unfinished += o.Unfinished
	r.Failures += o.Failures
	if (r.Attack == nil) != (o.Attack == nil) {
		return fmt.Errorf("fleet: scenario %q: one partial carries an attack aggregate and the other does not", r.Name)
	}
	if r.Attack != nil {
		r.Attack.Merge(o.Attack)
	}
	return nil
}

// CampaignResult is a completed campaign: one merged ScenarioResult
// per scenario, in campaign order. Worker count is deliberately NOT
// part of the result, so records from differently-sharded runs are
// comparable byte for byte.
type CampaignResult struct {
	Campaign  string            `json:"campaign"`
	Seed      uint64            `json:"seed"`
	Scenarios []*ScenarioResult `json:"scenarios"`
	// TrialFailures records every panicking attempt observed during
	// the run in trial-index order, retried-then-recovered attempts
	// included. Excluded from the canonical JSON (stacks are not
	// deterministic); per-scenario terminal counts are in the
	// Failures fields above.
	TrialFailures []TrialFailure `json:"-"`
	// CheckpointWriteFailures counts checkpoint writes (periodic or
	// final) that failed without stopping the run; the next interval
	// retried.
	CheckpointWriteFailures int `json:"-"`
	// Spans is the phase trace collected when Options.Tracer was set:
	// executed trials in trial-index order, each trial's attempts in
	// attempt order, then checkpoint-write spans in write order.
	// Excluded from the canonical JSON — wall_ns is nondeterministic
	// by design, and restored trials contribute no spans, so a resumed
	// run's trace legitimately differs from an uninterrupted one while
	// its result bytes do not.
	Spans []obs.Span `json:"-"`
}

// JSON renders the canonical record: indented, trailing newline,
// deterministic for a fixed (campaign, seed) regardless of workers.
func (r *CampaignResult) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Table renders the campaign summary in the repo's experiment-table
// form.
func (r *CampaignResult) Table() *metrics.Table {
	// The attack column appears only when some scenario ran an
	// adversary, so pre-attack campaigns render exactly as before.
	attacked := false
	for _, s := range r.Scenarios {
		if s.Attack != nil {
			attacked = true
			break
		}
	}
	cols := []string{"scenario", "reps", "util mean", "util sd", "makespan mean", "makespan max", "crashes", "cofail", "unfinished", "failures"}
	if attacked {
		cols = append(cols, "attack")
	}
	t := metrics.NewTable(fmt.Sprintf("fleet campaign: %s", r.Campaign), cols...)
	for _, s := range r.Scenarios {
		// The makespan tail comes from the Acc (exact across
		// replications); the histogram's horizon-scaled buckets are too
		// coarse to render as a quantile.
		row := []any{s.Name, s.Replications,
			s.Util.Mean, s.Util.Std(),
			s.Makespan.Mean, s.Makespan.Max,
			s.Crashes, s.Cofailures, s.Unfinished, s.Failures}
		if attacked {
			cell := "—"
			if s.Attack != nil {
				cell = s.Attack.Summary()
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.AddNote("seed %d; trial streams keyed by (scenario, replication) — results are worker-count-invariant", r.Seed)
	return t
}

// Run executes every trial of the campaign across a pool of worker
// goroutines and merges per-trial results in replication order.
//
// Determinism contract: for a fixed (campaign, seed) the result —
// including its JSON() bytes — is identical for any worker count and
// any trial completion order. Three mechanisms combine to guarantee
// it: trials share no state (each builds its own cluster), each
// trial's RNG stream is derived from (scenario name, replication
// index) rather than from draw order, and the reduction merges
// fixed-size per-trial aggregates in trial-index order rather than
// completion order.
//
// Failure model (see DESIGN.md §8): a panicking trial is retried
// under the identical stream seed on a quarantined-then-rebuilt
// cluster up to the retry budget, then degrades to a counted failure;
// a genuine error (infeasible submit, broken config) still aborts the
// campaign; Interrupt stops dispatch, drains in-flight trials,
// checkpoints and returns *InterruptedError. Because restored
// aggregates re-enter the reduction at their own trial index, a
// resumed run's bytes equal an uninterrupted run's.
func Run(c Campaign, opt Options) (*CampaignResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	st, err := execute(c, opt, nil)
	if err != nil {
		return nil, err
	}
	res := &CampaignResult{Campaign: c.Name, Seed: opt.Seed, CheckpointWriteFailures: st.writeFailures}
	i := 0
	for _, s := range c.Scenarios {
		agg := st.partials[i]
		i++
		for rep := 1; rep < s.Replications; rep++ {
			if err := agg.Merge(st.partials[i]); err != nil {
				return nil, err
			}
			i++
		}
		res.Scenarios = append(res.Scenarios, agg)
	}
	res.TrialFailures = st.failures
	if opt.Tracer != nil {
		for _, g := range st.spans {
			res.Spans = append(res.Spans, g...)
		}
		res.Spans = append(res.Spans, st.ckSpans...)
		if terr := opt.Tracer.Write(res.Spans); terr != nil {
			return nil, fmt.Errorf("fleet: writing trace: %w", terr)
		}
	}
	return res, nil
}

// runShard is RunShard past validation: the same executor restricted
// to the shard's ranges, returning the final checkpoint — the
// supervisor's merge input — instead of a reduced result.
func runShard(c Campaign, opt Options, sh *ShardRun) (*Checkpoint, []TrialFailure, error) {
	st, err := execute(c, opt, sh)
	if err != nil {
		var fails []TrialFailure
		if st != nil {
			fails = st.failures
		}
		return nil, fails, err
	}
	if st.finalCkErr != nil {
		return nil, st.failures, fmt.Errorf("fleet: shard %d completed but its final checkpoint write failed: %w", sh.Index, st.finalCkErr)
	}
	return buildCheckpoint(c, st.hash, opt.Seed, st.partials, st.completed), st.failures, nil
}

// trialRef addresses one trial in the campaign's scenario-major
// trial-index order.
type trialRef struct {
	scenario int
	rep      int
}

// runState is what execute hands back to Run / runShard for their
// respective reductions.
type runState struct {
	partials      []*ScenarioResult
	completed     Bitmap
	failures      []TrialFailure // flattened, trial-index order
	hash          uint64
	writeFailures int
	finalCkErr    error
	spans         [][]obs.Span // per trial index; nil unless tracing
	ckSpans       []obs.Span   // checkpoint-write spans, write order
}

// Shard death states, owned by the checkpointer goroutine; the main
// goroutine reads them only after <-checkpointerDone.
const (
	stateAlive = iota
	stateKilled
	stateWedged
)

// execute runs the campaign's trials — all of them (sh == nil), or a
// shard's ranges — and leaves the reduction to the caller.
func execute(c Campaign, opt Options, sh *ShardRun) (*runState, error) {
	comp, err := compileCampaign(c, opt.Seed)
	if err != nil {
		return nil, err
	}
	inj, err := compileFaults(opt.Faults, c, sh)
	if err != nil {
		return nil, err
	}
	hash, err := CampaignHash(c)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	trials := make([]trialRef, 0, c.Trials())
	for si, s := range c.Scenarios {
		for rep := 0; rep < s.Replications; rep++ {
			trials = append(trials, trialRef{scenario: si, rep: rep})
		}
	}
	// target marks the trials this run owns: everything, or the
	// shard's ranges. Out-of-target trials are never dispatched and
	// never counted toward completion.
	target := NewBitmap(len(trials))
	if sh == nil {
		for ti := range trials {
			target.Set(ti)
		}
	} else {
		base := 0
		for si, s := range c.Scenarios {
			for rep := sh.Ranges[si].Lo; rep < sh.Ranges[si].Hi; rep++ {
				target.Set(base + rep)
			}
			base += s.Replications
		}
	}
	targetN := target.Count()
	if workers > targetN {
		workers = targetN
	}
	// Observability handles resolve once per run, never per trial; the
	// all-nil bundle (Metrics unset) makes every update below a
	// nil-check no-op.
	m := newRunMetrics(opt.Metrics)
	tracing := opt.Tracer != nil
	var spanGroups [][]obs.Span
	if tracing {
		spanGroups = make([][]obs.Span, len(trials))
	}

	// Each worker writes only its own trial's slots, so the slices
	// need no lock; the per-trial send on done (and finally wg.Wait)
	// is the happens-before edge to the checkpointer and the reducer.
	// Cluster pooling is strictly per worker (each goroutine owns its
	// pool; pooled clusters are never handed across goroutines), so
	// trials stay share-nothing and the determinism argument is
	// untouched by which worker runs which trial.
	partials := make([]*ScenarioResult, len(trials))
	errs := make([]error, len(trials))
	failures := make([][]TrialFailure, len(trials))

	restored := NewBitmap(len(trials))
	if opt.ResumeFrom != nil {
		if err := opt.ResumeFrom.ValidateAgainst(c, opt.Seed); err != nil {
			return nil, err
		}
		base := 0
		for si := range c.Scenarios {
			for _, p := range opt.ResumeFrom.Scenarios[si].Partials {
				// Deep-copy the aggregate: the reduction merges into
				// the scenario's first partial in place, and sharing
				// the histogram's bucket slice with the caller's
				// Checkpoint would corrupt it for a second resume.
				r := p.Result
				h := *r.MakespanHist
				h.Counts = append([]int64(nil), h.Counts...)
				r.MakespanHist = &h
				if r.Attack != nil {
					r.Attack = r.Attack.Clone()
				}
				partials[base+p.Replication] = &r
				restored.Set(base + p.Replication)
			}
			base += c.Scenarios[si].Replications
		}
		m.trialsRestored.Add(int64(restored.Count()))
	}

	attempts := opt.MaxTrialRetries + 1
	switch {
	case opt.MaxTrialRetries == 0:
		attempts = DefaultTrialRetries + 1
	case opt.MaxTrialRetries < 0:
		attempts = 1
	}

	// interrupt trips at most once — from Options.Interrupt or from a
	// chaos kill-after fault — and stops the dispatch loop; in-flight
	// trials always drain normally.
	interrupt := make(chan struct{})
	var tripOnce sync.Once
	trip := func() { tripOnce.Do(func() { close(interrupt) }) }
	runDone := make(chan struct{})
	defer close(runDone)
	if opt.Interrupt != nil {
		// An interrupt that fired before the run started must stop it
		// before any dispatch — checked synchronously here because the
		// forwarder goroutine below races a fast campaign.
		select {
		case <-opt.Interrupt:
			trip()
		default:
		}
		go func() {
			select {
			case <-opt.Interrupt:
				trip()
			case <-runDone:
			}
		}()
	}

	// The checkpointer consumes completion announcements. Workers
	// send a trial's index only after recording its result, so the
	// channel receive lets this goroutine read that slot while the
	// run is still going.
	done := make(chan int, len(trials))
	completed := restored.Clone()
	every := opt.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	writes := 0
	writeFailures := 0
	// Checkpoint spans live outside the per-trial groups: their Seq is
	// the 1-based write ordinal and their scenario is empty. The WRITE
	// COUNT is deterministic (every `every`-th completion plus the
	// final write) even though which trials each sidecar contains is
	// not — so the span stream stays comparable across runs. Appends
	// happen in the checkpointer goroutine and, for the final write,
	// in the main goroutine strictly after <-checkpointerDone.
	var ckSpans []obs.Span
	writeCheckpoint := func() error {
		writes++
		var wallFrom time.Time
		if tracing {
			wallFrom = time.Now()
		}
		err := func() error {
			if err := inj.checkpointWriteErr(writes); err != nil {
				return err
			}
			ck := buildCheckpoint(c, hash, opt.Seed, partials, completed)
			return ck.Save(opt.CheckpointPath)
		}()
		m.ckWrites.Inc()
		if err != nil {
			writeFailures++
			m.ckWriteFailures.Inc()
		}
		if tracing {
			ckSpans = append(ckSpans, obs.Span{
				Phase:  obs.PhaseCheckpoint,
				Seq:    writes,
				WallNS: time.Since(wallFrom).Nanoseconds(),
			})
		}
		return err
	}
	checkpointerDone := make(chan struct{})
	dead := stateAlive
	go func() {
		defer close(checkpointerDone)
		n := 0
		for ti := range done {
			// A killed or wedged shard records nothing further: the
			// channel still drains (workers must not block) but the
			// bitmap, the sidecar and the heartbeats are frozen at
			// the fault point, which is what makes retry-from-
			// checkpoint deterministic.
			if dead != stateAlive {
				continue
			}
			completed.Set(ti)
			m.trialsCompleted.Inc()
			n++
			// A failed periodic write is tolerated — counted, retried
			// at the next interval: losing one checkpoint must not
			// kill the campaign the checkpoint exists to protect.
			if opt.CheckpointPath != "" && n%every == 0 {
				_ = writeCheckpoint()
			}
			if opt.Progress != nil {
				opt.Progress(completed.Count())
			}
			// Shard faults fire on the n-th NEW completion, after its
			// checkpoint write, so the sidecar holds exactly n trials
			// when the shard dies.
			switch inj.shardFaultAt(n) {
			case ShardKill:
				if sh != nil && sh.Die != nil {
					sh.Die() // exec workers self-SIGKILL here and never return
				}
				dead = stateKilled
				trip() // stop dispatch; in-flight trials drain unrecorded
			case ShardBlackhole:
				dead = stateWedged // keep running, silently
			}
		}
	}()

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			tw := newTrialWorker(comp, !opt.DisablePooling)
			tw.faults = inj
			tw.m = m
			if tracing {
				tw.rec = &obs.Recorder{}
			}
			for ti := range work {
				inj.delayWorker(worker)
				inj.delayShardTrial()
				ref := trials[ti]
				partials[ti], failures[ti], errs[ti] = tw.runTrialIsolated(ref.scenario, ref.rep, attempts)
				if tracing {
					// Like partials: each worker writes only its own
					// trial's slot, so the groups need no lock and the
					// flush can order them by trial index.
					spanGroups[ti] = tw.rec.Take()
				}
				if errs[ti] == nil {
					done <- ti
				}
			}
		}(w)
	}
	dispatched := 0
dispatch:
	for ti := range trials {
		if !target.Get(ti) || restored.Get(ti) {
			continue
		}
		// The chaos kill counts dispatches synchronously right here,
		// so exactly KillAfterTrials new trials run — deterministic
		// where counting asynchronous completions would race fast
		// campaigns to the finish before the kill ever fired.
		if k := inj.killAfterTrials(); k > 0 && dispatched >= k {
			trip()
			break dispatch
		}
		// Prefer the interrupt when both are ready, so "stop now"
		// stops dispatch at the first opportunity.
		select {
		case <-interrupt:
			break dispatch
		default:
		}
		select {
		case work <- ti:
			dispatched++
		case <-interrupt:
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	close(done)
	<-checkpointerDone

	st := &runState{partials: partials, completed: completed, hash: hash, writeFailures: writeFailures, spans: spanGroups}
	for ti := range trials {
		st.failures = append(st.failures, failures[ti]...)
	}

	// An abruptly-dead or wedged shard writes NO final checkpoint:
	// the sidecar stays frozen at the fault point, exactly what a
	// SIGKILLed process would leave behind.
	switch dead {
	case stateKilled:
		return st, ErrShardKilled
	case stateWedged:
		// Linger silently — alive, no heartbeats, no exit — until the
		// supervisor gives up on the heartbeat deadline and kills us
		// (exec mode) or trips Interrupt (in-process mode).
		if opt.Interrupt != nil {
			<-opt.Interrupt
		}
		return st, ErrShardWedged
	}

	// The final checkpoint covers every drained trial no matter how
	// the run ends — complete, interrupted, or about to abort on a
	// trial error — so completed work is never thrown away.
	if opt.CheckpointPath != "" {
		st.finalCkErr = writeCheckpoint()
	}
	st.ckSpans = ckSpans

	for ti, err := range errs {
		if err != nil {
			ref := trials[ti]
			return st, fmt.Errorf("fleet: scenario %q replication %d: %w", c.Scenarios[ref.scenario].Name, ref.rep, err)
		}
	}
	interrupted := false
	select {
	case <-interrupt:
		interrupted = true
	default:
	}
	// An interrupt that raced the last completion interrupted
	// nothing: with every owned trial done the full result stands.
	// Completion is counted over the run's target — a shard cares
	// only about its own ranges, however many restored out-of-range
	// partials a sidecar carried in.
	doneN := 0
	for ti := range trials {
		if target.Get(ti) && completed.Get(ti) {
			doneN++
		}
	}
	if interrupted && doneN < targetN {
		if st.finalCkErr != nil {
			return st, fmt.Errorf("fleet: interrupted after %d/%d trials and the final checkpoint write failed: %w",
				doneN, targetN, st.finalCkErr)
		}
		return st, &InterruptedError{Completed: doneN, Total: targetN, Checkpoint: opt.CheckpointPath}
	}
	return st, nil
}

// makespanBuckets is the fixed histogram resolution. The layout must
// be known before any trial runs so all partials of a scenario merge,
// and [0, horizon] is the only pre-known bound — so the buckets are
// horizon-scaled (coarse): the histogram records the distribution's
// shape at horizon resolution (e.g. replications that nearly ran out
// of horizon), while exact min/mean/max come from the Makespan Acc.
const makespanBuckets = 16

// ProvisionMix provisions spec.Users accounts ("u0", "u1", …) on the
// cluster and builds the submission mix from rng — the shared idiom
// of every campaign-shaped experiment (fleet trials, the E4 table,
// the E16 drain).
func ProvisionMix(c *core.Cluster, spec workload.MixSpec, rng *metrics.RNG) ([]workload.Submission, error) {
	creds := make([]ids.Credential, spec.Users)
	for u := range creds {
		acct, err := c.AddUser(UserName(u), "pw")
		if err != nil {
			return nil, err
		}
		creds[u] = acct.Cred
	}
	return spec.Build(rng, creds)
}

// compiledScenario is a Scenario with everything trial-invariant
// resolved up front: the derived Config (profile + ablations + policy
// override — no per-trial policy re-parsing or profile resolution),
// the topology, the scenario's RNG stream seed (the FNV hop of
// TrialSeed, hoisted so the per-trial derivation is two integer ops),
// and the provisioning user count (names come from the process-wide
// intern pool — see UserName — so no per-scenario slice exists).
type compiledScenario struct {
	spec   *Scenario
	cfg    core.Config
	topo   core.Topology
	stream uint64 // scenario RNG stream: StreamSeed(master, fnv(Name))
	users  int    // accounts to provision per replication: "u0".."uN-1"
	// attack is the scenario's adversary campaign resolved against
	// the step registry once (nil when the spec has none), shared
	// read-only across workers like the rest of the compile.
	attack *attack.Compiled
}

// compileCampaign resolves every scenario once. Campaign.Validate has
// already dry-run the same resolution, so errors here are unexpected.
func compileCampaign(c Campaign, master uint64) ([]compiledScenario, error) {
	comp := make([]compiledScenario, len(c.Scenarios))
	for i := range c.Scenarios {
		s := &c.Scenarios[i]
		prof, err := core.ProfileByName(s.Profile)
		if err != nil {
			return nil, err
		}
		resolved, topo, err := core.ResolveProfile(prof, s.options()...)
		if err != nil {
			return nil, err
		}
		cfg, err := resolved.Config()
		if err != nil {
			return nil, err
		}
		comp[i] = compiledScenario{
			spec: s, cfg: cfg, topo: topo,
			stream: metrics.StreamSeed(master, nameHash(s.Name)),
			users:  s.Workload.Users,
		}
		if s.Attack != nil {
			ca, err := s.Attack.Compile()
			if err != nil {
				return nil, err
			}
			comp[i].attack = ca
		}
	}
	return comp, nil
}

// trialWorker is one worker goroutine's execution state: the pooled
// cluster and reusable buffers per scenario. Nothing here is shared —
// each worker builds its own, which is what keeps pooled campaigns
// race-free by construction (and why the pool is per worker rather
// than a shared free-list: a cluster crossing goroutines would need
// locking and would order-couple trials).
type trialWorker struct {
	comp      []compiledScenario
	pooling   bool
	slots     map[int]*scenarioSlot
	rng       metrics.RNG
	attackRNG metrics.RNG    // the adversary's stream, separate from the mix's
	faults    *faultInjector // nil = no chaos
	attempt   int            // current attempt number; keys chaos panic points
	m         runMetrics     // all-nil bundle when Options.Metrics is unset
	rec       *obs.Recorder  // phase span recorder; nil unless tracing
}

// scenarioSlot is the per-(worker, scenario) reuse state.
type scenarioSlot struct {
	cluster *core.Cluster // retained across trials only when pooling
	users   []ids.Credential
	scratch workload.BuildScratch
}

func newTrialWorker(comp []compiledScenario, pooling bool) *trialWorker {
	return &trialWorker{comp: comp, pooling: pooling, slots: make(map[int]*scenarioSlot)}
}

// trialResult bundles a trial's aggregate with its histogram storage
// so the whole per-trial record is one allocation.
type trialResult struct {
	res    ScenarioResult
	hist   metrics.Histogram
	counts [makespanBuckets]int64
}

// runTrialIsolated runs one trial under panic isolation: a panicking
// attempt is recorded as a TrialFailure, the worker's slot for the
// scenario is quarantined (a panic voids the pristine-Reset
// guarantee, so the pooled cluster AND the scratch buffers are
// dropped and rebuilt fresh), and the trial is retried under the
// identical (scenario, replication) stream seed — a successful retry
// is indistinguishable from a first-try success, byte for byte. When
// the attempt budget is exhausted the trial degrades to an empty
// aggregate carrying an explicit failure count instead of killing
// the campaign. Genuine errors (not panics) still abort.
func (w *trialWorker) runTrialIsolated(scenario, rep, attempts int) (*ScenarioResult, []TrialFailure, error) {
	var fails []TrialFailure
	for attempt := 1; attempt <= attempts; attempt++ {
		res, failure, err := w.runTrialAttempt(scenario, rep, attempt)
		if err != nil {
			return nil, fails, err
		}
		if failure == nil {
			return res, fails, nil
		}
		w.m.trialPanics.Inc()
		if attempt < attempts {
			w.m.trialRetries.Inc()
		}
		fails = append(fails, *failure)
	}
	fails[len(fails)-1].Terminal = true
	w.m.trialsDegraded.Inc()
	return w.failedTrialResult(scenario), fails, nil
}

// runTrialAttempt is one recover()-guarded execution of runTrial.
func (w *trialWorker) runTrialAttempt(scenario, rep, attempt int) (res *ScenarioResult, failure *TrialFailure, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Quarantine the whole slot: nothing a panicked trial may
			// have touched — cluster, credential cache, build scratch
			// — is reusable. The half-open phase span is dropped too:
			// a panicked phase has no deterministic end tick.
			delete(w.slots, scenario)
			w.rec.Abandon()
			res, err = nil, nil
			failure = &TrialFailure{
				Scenario:    w.comp[scenario].spec.Name,
				Replication: rep,
				Attempt:     attempt,
				Panic:       fmt.Sprint(r),
				Stack:       string(debug.Stack()),
			}
		}
	}()
	w.attempt = attempt
	w.rec.StartAttempt(w.comp[scenario].spec.Name, rep, attempt)
	res, err = w.runTrial(scenario, rep)
	return res, nil, err
}

// histogramFor is the scenario's fixed histogram layout over the
// given backing storage — the one shape every partial of a scenario
// must share for the trial-index-order merge to be defined.
func histogramFor(s *Scenario, counts []int64) metrics.Histogram {
	return metrics.Histogram{Lo: 0, Hi: float64(s.Horizon), Counts: counts}
}

// failedTrialResult is the degraded aggregate of a trial whose every
// attempt panicked (see DegradedTrialResult).
func (w *trialWorker) failedTrialResult(scenario int) *ScenarioResult {
	return DegradedTrialResult(w.comp[scenario].spec)
}

// runTrial executes one (scenario, replication) trial: a cluster per
// the scenario — pooled and Reset, or built fresh — provisioned with
// the scenario's users, submitted the mix drawn from the trial's own
// RNG stream, drained up to the horizon, and summarized into a
// one-trial aggregate.
func (w *trialWorker) runTrial(scenario, rep int) (*ScenarioResult, error) {
	cs := &w.comp[scenario]
	s := cs.spec
	w.faults.hitPoint(s.Name, rep, w.attempt, PointBegin)
	// Phase spans bracket the trial's stages at simulation-clock
	// boundaries; reset and mix run before any tick elapses, so their
	// tick bounds are [0,0] by construction.
	w.rec.Begin(0)
	slot := w.slots[scenario]
	if slot == nil {
		slot = &scenarioSlot{}
		w.slots[scenario] = slot
	}
	c := slot.cluster
	if c != nil {
		if err := c.Reset(); err != nil {
			return nil, err
		}
		w.m.poolHits.Inc()
	} else {
		var err error
		if c, err = core.New(cs.cfg, cs.topo); err != nil {
			return nil, err
		}
		if w.pooling {
			slot.cluster = c
		}
		w.m.poolBuilds.Inc()
	}
	w.rec.End(obs.PhaseReset, 0)

	// The trial stream depends only on (master, scenario name, rep):
	// never on the worker, the pool state, or the completion order.
	w.rec.Begin(0)
	w.rng.Reseed(metrics.StreamSeed(cs.stream, uint64(rep)))
	creds := slot.users[:0]
	for u := 0; u < cs.users; u++ {
		acct, err := c.AddUser(UserName(u), "pw")
		if err != nil {
			return nil, err
		}
		creds = append(creds, acct.Cred)
	}
	slot.users = creds
	mix, err := s.Workload.BuildInto(&w.rng, creds, &slot.scratch)
	if err != nil {
		return nil, err
	}
	for i := range mix {
		if _, err := c.Sched.Submit(mix[i].Cred, mix[i].Spec); err != nil {
			return nil, err
		}
	}
	w.faults.hitPoint(s.Name, rep, w.attempt, PointSubmit)
	w.rec.End(obs.PhaseMix, c.Now())
	// The adversary campaign (if any) runs against the live cluster
	// right after submission — concurrent with the mix, which keeps
	// draining through the campaign's pacing gaps and waits. Its RNG
	// is a separate stream under the same trial seed (StreamIndex
	// hop), so mix draws and attack draws never perturb each other.
	var att *attack.Outcome
	if cs.attack != nil {
		w.rec.Begin(c.Now())
		w.attackRNG.Reseed(metrics.StreamSeed(metrics.StreamSeed(cs.stream, uint64(rep)), attack.StreamIndex))
		var aerr error
		att, _, aerr = cs.attack.Execute(c, &w.attackRNG, s.Horizon)
		if aerr != nil {
			return nil, aerr
		}
		w.rec.End(obs.PhaseAttack, c.Now())
		w.m.attackSteps.Add(int64(att.Steps))
	}
	// Drain whatever horizon the campaign left. Plain scenarios reach
	// here with the clock still at 0, so this is the pre-attack
	// RunAll(Horizon) byte for byte; attacked trials count the
	// campaign's ticks toward the same horizon and makespan.
	w.rec.Begin(c.Now())
	if remaining := s.Horizon - int(c.Now()); remaining > 0 {
		c.RunAll(remaining)
	}
	w.rec.End(obs.PhaseDrain, c.Now())
	ticks := int(c.Now())
	crashes, cofail := c.Sched.Crashes()
	// Sched.Stats is per trial: Reset (pooled) and fresh builds both
	// start the tallies at zero, so this reads exactly this trial's
	// real vs fast-forwarded ticks, attack-phase ticks included.
	steps, ff := c.Sched.Stats()
	w.m.schedSteps.Add(steps)
	w.m.schedFastForwarded.Add(ff)

	w.rec.Begin(c.Now())
	tr := &trialResult{}
	tr.hist = histogramFor(s, tr.counts[:])
	tr.res = ScenarioResult{
		Name:         s.Name,
		Replications: 1,
		MakespanHist: &tr.hist,
		Crashes:      crashes,
		Cofailures:   cofail,
		Unfinished:   len(c.Sched.Squeue(ids.RootCred())), // pending + still-running at the horizon
	}
	tr.res.Util.Add(c.Sched.Utilization())
	tr.res.Makespan.Add(float64(ticks))
	tr.res.MakespanHist.Add(float64(ticks))
	if att != nil {
		agg := attack.NewAgg()
		agg.AddOutcome(att)
		tr.res.Attack = agg
	}
	w.m.trialTicks.Observe(float64(ticks))
	w.rec.End(obs.PhaseAggregate, c.Now())
	return &tr.res, nil
}
