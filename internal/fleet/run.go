package fleet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Options configures a campaign run.
type Options struct {
	// Workers is the shard count; <= 0 means GOMAXPROCS. The worker
	// count affects wall-clock time only, never results: see the
	// determinism contract on Run.
	Workers int
	// Seed is the campaign master seed every trial stream derives
	// from.
	Seed uint64
	// DisablePooling makes every trial construct its own cluster from
	// scratch instead of reusing a per-worker, per-scenario pooled
	// cluster via core.Cluster.Reset. Pooling affects wall-clock time
	// only, never results — output is byte-identical either way (the
	// Reset contract, pinned by test and CI) — so the switch exists
	// for exactly two audiences: the lifecycle benchmark and the
	// determinism gates that prove the equivalence.
	DisablePooling bool
}

// ScenarioResult aggregates one scenario's trials with mergeable
// streaming statistics — no per-trial sample slices are retained, so
// campaigns scale to arbitrary replication counts.
type ScenarioResult struct {
	Name         string             `json:"name"`
	Replications int                `json:"replications"`
	Util         metrics.Acc        `json:"util"`
	Makespan     metrics.Acc        `json:"makespan_ticks"`
	MakespanHist *metrics.Histogram `json:"makespan_hist"`
	Crashes      int                `json:"crashes"`
	Cofailures   int                `json:"cofailures"`
	// Unfinished counts jobs still pending or running at the horizon,
	// summed over trials; nonzero means the horizon is too short for
	// the workload.
	Unfinished int `json:"unfinished"`
}

// Merge folds another shard of the same scenario in. Merge order is
// the caller's contract: Run always merges in replication order, so
// floating-point accumulation is reproducible.
func (r *ScenarioResult) Merge(o *ScenarioResult) error {
	if r.Name != o.Name {
		return fmt.Errorf("fleet: merging results of different scenarios (%q vs %q)", r.Name, o.Name)
	}
	r.Replications += o.Replications
	r.Util.Merge(o.Util)
	r.Makespan.Merge(o.Makespan)
	if err := r.MakespanHist.Merge(o.MakespanHist); err != nil {
		return fmt.Errorf("fleet: scenario %q: %w", r.Name, err)
	}
	r.Crashes += o.Crashes
	r.Cofailures += o.Cofailures
	r.Unfinished += o.Unfinished
	return nil
}

// CampaignResult is a completed campaign: one merged ScenarioResult
// per scenario, in campaign order. Worker count is deliberately NOT
// part of the result, so records from differently-sharded runs are
// comparable byte for byte.
type CampaignResult struct {
	Campaign  string            `json:"campaign"`
	Seed      uint64            `json:"seed"`
	Scenarios []*ScenarioResult `json:"scenarios"`
}

// JSON renders the canonical record: indented, trailing newline,
// deterministic for a fixed (campaign, seed) regardless of workers.
func (r *CampaignResult) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Table renders the campaign summary in the repo's experiment-table
// form.
func (r *CampaignResult) Table() *metrics.Table {
	t := metrics.NewTable(fmt.Sprintf("fleet campaign: %s", r.Campaign),
		"scenario", "reps", "util mean", "util sd", "makespan mean", "makespan max", "crashes", "cofail", "unfinished")
	for _, s := range r.Scenarios {
		// The makespan tail comes from the Acc (exact across
		// replications); the histogram's horizon-scaled buckets are too
		// coarse to render as a quantile.
		t.AddRow(s.Name, s.Replications,
			s.Util.Mean, s.Util.Std(),
			s.Makespan.Mean, s.Makespan.Max,
			s.Crashes, s.Cofailures, s.Unfinished)
	}
	t.AddNote("seed %d; trial streams keyed by (scenario, replication) — results are worker-count-invariant", r.Seed)
	return t
}

// Run executes every trial of the campaign across a pool of worker
// goroutines and merges per-trial results in replication order.
//
// Determinism contract: for a fixed (campaign, seed) the result —
// including its JSON() bytes — is identical for any worker count and
// any trial completion order. Three mechanisms combine to guarantee
// it: trials share no state (each builds its own cluster), each
// trial's RNG stream is derived from (scenario name, replication
// index) rather than from draw order, and the reduction merges
// fixed-size per-trial aggregates in trial-index order rather than
// completion order.
func Run(c Campaign, opt Options) (*CampaignResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	comp, err := compileCampaign(c, opt.Seed)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type trialRef struct {
		scenario int
		rep      int
	}
	trials := make([]trialRef, 0, c.Trials())
	for si, s := range c.Scenarios {
		for rep := 0; rep < s.Replications; rep++ {
			trials = append(trials, trialRef{scenario: si, rep: rep})
		}
	}
	if workers > len(trials) {
		workers = len(trials)
	}

	// Each worker writes only its own trial's slot, so the slices need
	// no lock; wg.Wait is the happens-before edge back to the reducer.
	// Cluster pooling is strictly per worker (each goroutine owns its
	// pool; pooled clusters are never handed across goroutines), so
	// trials stay share-nothing and the determinism argument is
	// untouched by which worker runs which trial.
	partials := make([]*ScenarioResult, len(trials))
	errs := make([]error, len(trials))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tw := newTrialWorker(comp, !opt.DisablePooling)
			for ti := range work {
				ref := trials[ti]
				partials[ti], errs[ti] = tw.runTrial(ref.scenario, ref.rep)
			}
		}()
	}
	for ti := range trials {
		work <- ti
	}
	close(work)
	wg.Wait()

	for ti, err := range errs {
		if err != nil {
			ref := trials[ti]
			return nil, fmt.Errorf("fleet: scenario %q replication %d: %w", c.Scenarios[ref.scenario].Name, ref.rep, err)
		}
	}

	res := &CampaignResult{Campaign: c.Name, Seed: opt.Seed}
	i := 0
	for _, s := range c.Scenarios {
		agg := partials[i]
		i++
		for rep := 1; rep < s.Replications; rep++ {
			if err := agg.Merge(partials[i]); err != nil {
				return nil, err
			}
			i++
		}
		res.Scenarios = append(res.Scenarios, agg)
	}
	return res, nil
}

// makespanBuckets is the fixed histogram resolution. The layout must
// be known before any trial runs so all partials of a scenario merge,
// and [0, horizon] is the only pre-known bound — so the buckets are
// horizon-scaled (coarse): the histogram records the distribution's
// shape at horizon resolution (e.g. replications that nearly ran out
// of horizon), while exact min/mean/max come from the Makespan Acc.
const makespanBuckets = 16

// ProvisionMix provisions spec.Users accounts ("u0", "u1", …) on the
// cluster and builds the submission mix from rng — the shared idiom
// of every campaign-shaped experiment (fleet trials, the E4 table,
// the E16 drain).
func ProvisionMix(c *core.Cluster, spec workload.MixSpec, rng *metrics.RNG) ([]workload.Submission, error) {
	creds := make([]ids.Credential, spec.Users)
	for u := range creds {
		acct, err := c.AddUser(fmt.Sprintf("u%d", u), "pw")
		if err != nil {
			return nil, err
		}
		creds[u] = acct.Cred
	}
	return spec.Build(rng, creds)
}

// compiledScenario is a Scenario with everything trial-invariant
// resolved up front: the derived Config (profile + ablations + policy
// override — no per-trial policy re-parsing or profile resolution),
// the topology, the scenario's RNG stream seed (the FNV hop of
// TrialSeed, hoisted so the per-trial derivation is two integer ops),
// and the provisioning user names.
type compiledScenario struct {
	spec      *Scenario
	cfg       core.Config
	topo      core.Topology
	stream    uint64   // scenario RNG stream: StreamSeed(master, fnv(Name))
	userNames []string // "u0".."uN-1", shared read-only across workers
}

// compileCampaign resolves every scenario once. Campaign.Validate has
// already dry-run the same resolution, so errors here are unexpected.
func compileCampaign(c Campaign, master uint64) ([]compiledScenario, error) {
	comp := make([]compiledScenario, len(c.Scenarios))
	for i := range c.Scenarios {
		s := &c.Scenarios[i]
		prof, err := core.ProfileByName(s.Profile)
		if err != nil {
			return nil, err
		}
		resolved, topo, err := core.ResolveProfile(prof, s.options()...)
		if err != nil {
			return nil, err
		}
		cfg, err := resolved.Config()
		if err != nil {
			return nil, err
		}
		names := make([]string, s.Workload.Users)
		for u := range names {
			names[u] = fmt.Sprintf("u%d", u)
		}
		comp[i] = compiledScenario{
			spec: s, cfg: cfg, topo: topo,
			stream:    metrics.StreamSeed(master, nameHash(s.Name)),
			userNames: names,
		}
	}
	return comp, nil
}

// trialWorker is one worker goroutine's execution state: the pooled
// cluster and reusable buffers per scenario. Nothing here is shared —
// each worker builds its own, which is what keeps pooled campaigns
// race-free by construction (and why the pool is per worker rather
// than a shared free-list: a cluster crossing goroutines would need
// locking and would order-couple trials).
type trialWorker struct {
	comp    []compiledScenario
	pooling bool
	slots   map[int]*scenarioSlot
	rng     metrics.RNG
}

// scenarioSlot is the per-(worker, scenario) reuse state.
type scenarioSlot struct {
	cluster *core.Cluster // retained across trials only when pooling
	users   []ids.Credential
	scratch workload.BuildScratch
}

func newTrialWorker(comp []compiledScenario, pooling bool) *trialWorker {
	return &trialWorker{comp: comp, pooling: pooling, slots: make(map[int]*scenarioSlot)}
}

// trialResult bundles a trial's aggregate with its histogram storage
// so the whole per-trial record is one allocation.
type trialResult struct {
	res    ScenarioResult
	hist   metrics.Histogram
	counts [makespanBuckets]int64
}

// runTrial executes one (scenario, replication) trial: a cluster per
// the scenario — pooled and Reset, or built fresh — provisioned with
// the scenario's users, submitted the mix drawn from the trial's own
// RNG stream, drained up to the horizon, and summarized into a
// one-trial aggregate.
func (w *trialWorker) runTrial(scenario, rep int) (*ScenarioResult, error) {
	cs := &w.comp[scenario]
	s := cs.spec
	slot := w.slots[scenario]
	if slot == nil {
		slot = &scenarioSlot{}
		w.slots[scenario] = slot
	}
	c := slot.cluster
	if c != nil {
		if err := c.Reset(); err != nil {
			return nil, err
		}
	} else {
		var err error
		if c, err = core.New(cs.cfg, cs.topo); err != nil {
			return nil, err
		}
		if w.pooling {
			slot.cluster = c
		}
	}

	// The trial stream depends only on (master, scenario name, rep):
	// never on the worker, the pool state, or the completion order.
	w.rng.Reseed(metrics.StreamSeed(cs.stream, uint64(rep)))
	creds := slot.users[:0]
	for _, name := range cs.userNames {
		acct, err := c.AddUser(name, "pw")
		if err != nil {
			return nil, err
		}
		creds = append(creds, acct.Cred)
	}
	slot.users = creds
	mix, err := s.Workload.BuildInto(&w.rng, creds, &slot.scratch)
	if err != nil {
		return nil, err
	}
	for i := range mix {
		if _, err := c.Sched.Submit(mix[i].Cred, mix[i].Spec); err != nil {
			return nil, err
		}
	}
	ticks := c.RunAll(s.Horizon)
	crashes, cofail := c.Sched.Crashes()

	tr := &trialResult{}
	tr.hist = metrics.Histogram{Lo: 0, Hi: float64(s.Horizon), Counts: tr.counts[:]}
	tr.res = ScenarioResult{
		Name:         s.Name,
		Replications: 1,
		MakespanHist: &tr.hist,
		Crashes:      crashes,
		Cofailures:   cofail,
		Unfinished:   len(c.Sched.Squeue(ids.RootCred())), // pending + still-running at the horizon
	}
	tr.res.Util.Add(c.Sched.Utilization())
	tr.res.Makespan.Add(float64(ticks))
	tr.res.MakespanHist.Add(float64(ticks))
	return &tr.res, nil
}
