package fleet

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Built-in preset names.
const (
	// PresetSmoke is a tiny two-scenario campaign used by CI's
	// determinism gate and the tests — seconds, not minutes.
	PresetSmoke = "smoke"
	// PresetE4PolicyGrid re-expresses experiment E4 as a campaign:
	// the identical OOM-faulted short-job mix drained under each
	// node-sharing policy, replicated under independent seeds — the
	// E4 table's single draw becomes a distribution.
	PresetE4PolicyGrid = "e4-policy-grid"
	// PresetE16AblationDrain re-expresses the E16 drain column as a
	// campaign: the utilization/cofailure drain under "enhanced minus
	// one measure" for every registry entry plus the control. (The
	// probe half of E16 is boolean, not statistical — it stays in
	// internal/experiments.)
	PresetE16AblationDrain = "e16-ablation-drain"
	// PresetE17RedTeam is the attacker-model matrix: every attack
	// model run against baseline and enhanced, plus the full kill
	// chain against every single-measure ablation — each cell an
	// adversary campaign concurrent with a legitimate mix.
	PresetE17RedTeam = "e17-redteam"
)

// ExperimentTopology is the standard 8×16-core geometry the E1..E16
// tables run on. It is exported as the single definition shared by
// internal/experiments and the campaign presets, so the "fleet
// re-expresses E4/E16" claim is structural: the two cannot drift.
func ExperimentTopology() core.Topology {
	return core.Topology{ComputeNodes: 8, LoginNodes: 2, CoresPerNode: 16, MemPerNode: 1 << 30, GPUsPerNode: 2}
}

// E4Mix is the E4 workload — 6 users × 50 short jobs, every 60th
// exceeding its memory request — shared by the E4 table
// (internal/experiments) and the e4-policy-grid preset.
func E4Mix() workload.MixSpec {
	return workload.MixSpec{
		Users: 6, JobsPerUser: 50,
		MinCores: 1, MaxCores: 8, MinDur: 1, MaxDur: 4, MemB: 1 << 20,
		OOMEvery: 60, OOMMemB: 2 << 30,
	}
}

// E16DrainMix is the E16 drain workload — 4 users × 40 short jobs,
// every 40th exceeding its memory request — shared by the E16
// ablation sweep (internal/experiments) and the e16-ablation-drain
// preset.
func E16DrainMix() workload.MixSpec {
	return workload.MixSpec{
		Users: 4, JobsPerUser: 40,
		MinCores: 1, MaxCores: 8, MinDur: 1, MaxDur: 4, MemB: 1 << 20,
		OOMEvery: 40, OOMMemB: 2 << 30,
	}
}

func smokeCampaign() Campaign {
	topo := core.Topology{ComputeNodes: 4, LoginNodes: 1, CoresPerNode: 8, MemPerNode: 1 << 30, GPUsPerNode: 1}
	mix := workload.MixSpec{
		Users: 3, JobsPerUser: 15,
		MinCores: 1, MaxCores: 4, MinDur: 1, MaxDur: 3, MemB: 1 << 20,
		OOMEvery: 20, OOMMemB: 2 << 30,
	}
	return Campaign{
		Name: PresetSmoke,
		Scenarios: []Scenario{
			{
				Name: "smoke/enhanced", Profile: "enhanced",
				Topology: topo, Workload: mix, Horizon: 2000, Replications: 3,
			},
			{
				Name: "smoke/baseline", Profile: "baseline",
				Topology: topo, Workload: mix, Horizon: 2000, Replications: 3,
			},
		},
	}
}

func e4PolicyGridCampaign() Campaign {
	c := Campaign{Name: PresetE4PolicyGrid}
	for _, pol := range []sched.SharingPolicy{sched.PolicyShared, sched.PolicyExclusive, sched.PolicyUserWholeNode} {
		c.Scenarios = append(c.Scenarios, Scenario{
			Name:     "e4/" + pol.String(),
			Profile:  "enhanced",
			Policy:   pol.String(),
			Topology: ExperimentTopology(),
			Workload: E4Mix(),
			Horizon:  5000, Replications: 8,
		})
	}
	return c
}

func e16AblationDrainCampaign() Campaign {
	c := Campaign{Name: PresetE16AblationDrain}
	control := Scenario{
		Name: "e16/(none)", Profile: "enhanced",
		Topology: ExperimentTopology(), Workload: E16DrainMix(),
		Horizon: 5000, Replications: 5,
	}
	c.Scenarios = append(c.Scenarios, control)
	for _, m := range core.Measures() {
		s := control
		s.Name = "e16/-" + m.Name
		s.Ablate = []string{m.Name}
		c.Scenarios = append(c.Scenarios, s)
	}
	return c
}

// E17Mix is the legitimate workload the adversary hides behind in
// e17-redteam: small enough that the victim's 1-core jobs backfill
// promptly, busy enough that the cluster is never idle while the
// campaign runs. No OOM faults — E17 measures leaks, not crashes.
func E17Mix() workload.MixSpec {
	return workload.MixSpec{
		Users: 3, JobsPerUser: 12,
		MinCores: 1, MaxCores: 4, MinDur: 1, MaxDur: 4, MemB: 1 << 20,
	}
}

func e17RedTeamCampaign() Campaign {
	c := Campaign{Name: PresetE17RedTeam}
	add := func(name, profile string, ablate []string, spec attack.Spec) {
		c.Scenarios = append(c.Scenarios, Scenario{
			Name: name, Profile: profile, Ablate: ablate,
			Topology: ExperimentTopology(), Workload: E17Mix(),
			Attack:  &spec,
			Horizon: 4000, Replications: 3,
		})
	}
	// Every attacker model against the paper's two endpoint configs.
	for _, m := range attack.Models() {
		add("e17/"+m.Model+"/baseline", "baseline", nil, m)
		add("e17/"+m.Model+"/enhanced", "enhanced", nil, m)
	}
	// The full kill chain against each single-measure ablation — the
	// E16 diagonal re-asked as "which steps come back?".
	chain, err := attack.ModelByName("kill-chain")
	if err != nil {
		panic(err) // the built-in model table names itself
	}
	for _, m := range core.Measures() {
		add("e17/kill-chain/-"+m.Name, "enhanced", []string{m.Name}, chain)
	}
	return c
}

// LifecycleCampaign is the construction-heavy, drain-light campaign
// behind BenchmarkTrialLifecycle and the pooled-allocation gate: a
// full-size cluster geometry with a short two-user workload, so its
// per-trial numbers isolate lifecycle cost (construction vs pooled
// Reset — the thing PR 5 optimizes) from simulation cost (identical
// either way). Not a listed preset: it measures the executor, not a
// paper experiment.
func LifecycleCampaign(replications int) Campaign {
	return Campaign{
		Name: "trial-lifecycle",
		Scenarios: []Scenario{{
			Name:     "lifecycle/enhanced",
			Profile:  "enhanced",
			Topology: core.Topology{ComputeNodes: 16, LoginNodes: 2, CoresPerNode: 16, MemPerNode: 1 << 30, GPUsPerNode: 2},
			Workload: workload.MixSpec{
				Users: 2, JobsPerUser: 8,
				MinCores: 1, MaxCores: 8, MinDur: 1, MaxDur: 3, MemB: 1 << 20,
			},
			Horizon: 2000, Replications: replications,
		}},
	}
}

// Presets returns the built-in campaigns, in listing order.
func Presets() []Campaign {
	return []Campaign{smokeCampaign(), e4PolicyGridCampaign(), e16AblationDrainCampaign(), e17RedTeamCampaign()}
}

// PresetByName resolves a built-in campaign.
func PresetByName(name string) (Campaign, error) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, nil
		}
	}
	var names []string
	for _, c := range Presets() {
		names = append(names, c.Name)
	}
	return Campaign{}, fmt.Errorf("fleet: unknown preset %q (have %v)", name, names)
}

// MustPreset is PresetByName, panicking on error (for benchmarks and
// the experiments package, where the name is a package constant).
func MustPreset(name string) Campaign {
	c, err := PresetByName(name)
	if err != nil {
		panic(err)
	}
	return c
}
