package container

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/simos"
	"repro/internal/ubf"
	"repro/internal/vfs"
)

// world wires a node with an enhanced-policy filesystem and a
// UBF-protected network, plus a registry with alice and bob.
func world(t *testing.T) (*Runtime, *simos.Node, *vfs.Namespace, *netsim.Host, *netsim.Host, map[string]ids.Credential) {
	t.Helper()
	reg := ids.NewRegistry()
	alice, _ := reg.AddUser("alice")
	bob, _ := reg.AddUser("bob")
	node := simos.NewNode("c00", simos.Compute, 8, 1<<30, nil)
	shared := vfs.New("lustre", vfs.Policy{SmaskEnabled: true, Smask: vfs.DefaultSmask, ACLRestrict: true}, reg)
	for _, u := range []*ids.User{alice, bob} {
		if err := shared.CreateHome(u); err != nil {
			t.Fatal(err)
		}
	}
	ns := vfs.NewNamespace()
	if err := ns.Mount("/", shared); err != nil {
		t.Fatal(err)
	}
	n := netsim.NewNetwork()
	h1, h2 := n.AddHost("c00"), n.AddHost("c01")
	d := ubf.New(ubf.Config{AllowGroupPeers: true})
	d.InstallOn(h1)
	d.InstallOn(h2)
	rt := NewRuntime(false)
	rt.ImportImage("pytorch", map[string]string{"/opt/conda/bin/python": "#!python3.11"})
	creds := map[string]ids.Credential{}
	for _, u := range []*ids.User{alice, bob} {
		c, _ := reg.LoginCredential(u.UID)
		creds[u.Name] = c
	}
	return rt, node, ns, h1, h2, creds
}

func TestBuildForbiddenForUsers(t *testing.T) {
	rt, _, _, _, _, creds := world(t)
	if _, err := rt.Build(creds["alice"], "custom", nil); !errors.Is(err, ErrBuildForbidden) {
		t.Errorf("user build err = %v, want ErrBuildForbidden", err)
	}
	if _, err := rt.Build(ids.RootCred(), "site-image", nil); err != nil {
		t.Errorf("root build: %v", err)
	}
}

func TestRunAsInvokingUserNoEscalation(t *testing.T) {
	rt, node, ns, h1, _, creds := world(t)
	c, err := rt.Run(creds["alice"], node, ns, h1, RunSpec{Image: "pytorch"})
	if err != nil {
		t.Fatal(err)
	}
	// uid inside == uid outside.
	if c.Proc.Cred.UID != creds["alice"].UID {
		t.Errorf("container uid = %d, want %d", c.Proc.Cred.UID, creds["alice"].UID)
	}
	// Privileged execution refused.
	if _, err := rt.Run(creds["alice"], node, ns, h1, RunSpec{Image: "pytorch", RequestPrivileged: true}); !errors.Is(err, ErrPrivileged) {
		t.Errorf("privileged run err = %v, want ErrPrivileged", err)
	}
	// Missing image.
	if _, err := rt.Run(creds["alice"], node, ns, h1, RunSpec{Image: "ghost"}); !errors.Is(err, ErrNoImage) {
		t.Errorf("ghost image err = %v, want ErrNoImage", err)
	}
	c.Exit()
	if got := node.Procs.ByUser(creds["alice"].UID); len(got) != 0 {
		t.Errorf("container process survived Exit: %v", got)
	}
}

func TestRestrictedRuntimeRequiresGrant(t *testing.T) {
	rt, node, ns, h1, _, creds := world(t)
	restricted := NewRuntime(true)
	restricted.ImportImage("pytorch", nil)
	if _, err := restricted.Run(creds["alice"], node, ns, h1, RunSpec{Image: "pytorch"}); !errors.Is(err, ErrPrivileged) {
		t.Errorf("ungranted run err = %v, want ErrPrivileged", err)
	}
	restricted.Allow(creds["alice"].UID)
	if _, err := restricted.Run(creds["alice"], node, ns, h1, RunSpec{Image: "pytorch"}); err != nil {
		t.Errorf("granted run: %v", err)
	}
	_ = rt
}

func TestImageFilesReadable(t *testing.T) {
	rt, node, ns, h1, _, creds := world(t)
	c, err := rt.Run(creds["alice"], node, ns, h1, RunSpec{Image: "pytorch"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadImageFile("/opt/conda/bin/python")
	if err != nil || got == "" {
		t.Errorf("image read: %q %v", got, err)
	}
	if _, err := c.ReadImageFile("/missing"); err == nil {
		t.Errorf("missing image file readable")
	}
	if paths := c.ImagePaths(); len(paths) != 1 {
		t.Errorf("paths = %v", paths)
	}
}

func TestFilesystemControlsPassThrough(t *testing.T) {
	// The paper's claim: smask and home isolation apply inside the
	// container because the host FS is passed through.
	rt, node, ns, h1, _, creds := world(t)
	ca, err := rt.Run(creds["alice"], node, ns, h1, RunSpec{Image: "pytorch"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.WriteFile("/home/alice/model.pt", []byte("weights"), 0o666); err != nil {
		t.Fatal(err)
	}
	// World bits were masked by smask even from inside the container.
	if err := ca.Chmod("/home/alice/model.pt", 0o666); err != nil {
		t.Fatal(err)
	}
	fi, err := ns.Stat(vfs.Ctx(ids.RootCred()), "/home/alice/model.pt")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode&0o007 != 0 {
		t.Errorf("smask bypassed inside container: mode %o", fi.Mode)
	}
	// Bob's container cannot read alice's home.
	cb, err := rt.Run(creds["bob"], node, ns, h1, RunSpec{Image: "pytorch"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.ReadFile("/home/alice/model.pt"); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("cross-home read inside container err = %v, want ErrPermission", err)
	}
}

func TestNetworkControlsPassThrough(t *testing.T) {
	// The UBF sees the container's real user: cross-user connections
	// from inside a container are still dropped.
	rt, node, ns, h1, h2, creds := world(t)
	ca, err := rt.Run(creds["alice"], node, ns, h1, RunSpec{Image: "pytorch"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Listen(netsim.TCP, 8888); err != nil {
		t.Fatal(err)
	}
	// Bob's container on another host dials alice's service: dropped.
	cb, err := rt.Run(creds["bob"], node, ns, h2, RunSpec{Image: "pytorch"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Dial(netsim.TCP, "c00", 8888); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("cross-user dial from container err = %v, want drop", err)
	}
	// Alice dialing her own containerized service works.
	ca2, err := rt.Run(creds["alice"], node, ns, h2, RunSpec{Image: "pytorch"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca2.Dial(netsim.TCP, "c00", 8888); err != nil {
		t.Errorf("same-user dial from container: %v", err)
	}
}

// Reset must drop imported images and privilege grants but keep the
// restrict policy.
func TestRuntimeReset(t *testing.T) {
	r := NewRuntime(true)
	alice := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	r.ImportImage("img", map[string]string{"/t": "v"})
	r.Allow(alice.UID)
	r.Reset()
	if _, err := r.Image("img"); err == nil {
		t.Error("image survived Reset")
	}
	r.ImportImage("img", nil)
	node := simos.NewNode("c0", simos.Compute, 4, 1<<30, nil)
	if _, err := r.Run(alice, node, vfs.NewNamespace(), nil, RunSpec{Image: "img"}); err == nil {
		t.Error("privilege grant survived Reset under restrict")
	}
}
