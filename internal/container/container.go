// Package container implements the HPC software-encapsulation
// container runtime of the paper (§IV-G), modelled on
// Singularity/Apptainer rather than enterprise service containers:
//
//   - the container runs AS THE INVOKING USER — no root, no setuid
//     escalation; general users are forbidden administrative
//     privileges;
//   - the host network stack is passed through (no port
//     virtualization), so the UBF still governs every connection;
//   - host local and central filesystems are passed through as bind
//     mounts, so smask / UPG / ACL restrictions still bind;
//   - users cannot BUILD containers on the HPC system (that requires
//     privileges they do not have); images are built elsewhere and
//     brought in as files.
//
// The net effect the tests verify: "all of the security features
// described in this paper pass through to the container as well."
package container

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// Image is a read-only software environment: a name plus the files
// (tools, libraries, Python trees) baked in at build time.
type Image struct {
	Name  string
	Files map[string]string // path inside image -> content
}

// Container errors.
var (
	ErrBuildForbidden = errors.New("container: building images requires administrative privileges not granted on HPC systems")
	ErrNoImage        = errors.New("container: no such image")
	ErrPrivileged     = errors.New("container: privileged execution refused")
)

// Runtime is the per-cluster container engine (the apptainer binary +
// site configuration). Users with Singularity privileges are tracked
// the way LLSC grants them case-by-case (§IV-G).
type Runtime struct {
	mu       sync.Mutex
	images   map[string]*Image
	allowed  map[ids.UID]bool // users granted container privileges; empty = everyone
	restrict bool
}

// NewRuntime creates an engine. If restrict is true, only users
// granted via Allow may run containers.
func NewRuntime(restrict bool) *Runtime {
	return &Runtime{
		images:   make(map[string]*Image),
		allowed:  make(map[ids.UID]bool),
		restrict: restrict,
	}
}

// Reset rewinds the runtime to its freshly-constructed state: imported
// images and privilege grants are dropped (both are post-construction
// state — a fresh cluster has neither). The restrict policy, set at
// construction from the cluster config, survives.
func (r *Runtime) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.images)
	clear(r.allowed)
}

// Allow grants container privileges to a user.
func (r *Runtime) Allow(uid ids.UID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.allowed[uid] = true
}

// Build refuses for everyone except root: "users cannot create and
// populate their Singularity containers on the HPC system; they must
// use their own computer" (§IV-G). ImportImage is how pre-built
// images arrive.
func (r *Runtime) Build(cred ids.Credential, name string, files map[string]string) (*Image, error) {
	if !cred.IsRoot() {
		return nil, fmt.Errorf("%w: uid %d", ErrBuildForbidden, cred.UID)
	}
	return r.ImportImage(name, files), nil
}

// ImportImage registers an image built off-system (on the user's own
// machine where they have admin rights).
func (r *Runtime) ImportImage(name string, files map[string]string) *Image {
	img := &Image{Name: name, Files: make(map[string]string, len(files))}
	for k, v := range files {
		img.Files[k] = v
	}
	r.mu.Lock()
	r.images[name] = img
	r.mu.Unlock()
	return img
}

// Image looks up a registered image.
func (r *Runtime) Image(name string) (*Image, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	img, ok := r.images[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoImage, name)
	}
	return img, nil
}

// Container is one running instance: the user's credential, the host
// node, the passthrough namespace and network host.
type Container struct {
	Image *Image
	Cred  ids.Credential
	Node  *simos.Node
	NS    *vfs.Namespace
	Net   *netsim.Host
	Proc  *simos.Process
}

// RunSpec configures a container launch.
type RunSpec struct {
	Image string
	// RequestPrivileged models asking for --fakeroot/setuid paths;
	// always refused for non-root (the security property under test).
	RequestPrivileged bool
	Command           string
}

// Run launches a container for cred on the given node, wiring the
// passthrough namespace and network.
func (r *Runtime) Run(cred ids.Credential, node *simos.Node, ns *vfs.Namespace, net *netsim.Host, spec RunSpec) (*Container, error) {
	if spec.RequestPrivileged && !cred.IsRoot() {
		return nil, fmt.Errorf("%w: uid %d", ErrPrivileged, cred.UID)
	}
	r.mu.Lock()
	if r.restrict && !r.allowed[cred.UID] && !cred.IsRoot() {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: uid %d not granted singularity privileges", ErrPrivileged, cred.UID)
	}
	img, ok := r.images[spec.Image]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoImage, spec.Image)
	}
	cmd := spec.Command
	if cmd == "" {
		cmd = "/bin/sh"
	}
	// The container process runs with the INVOKING user's credential —
	// uid inside == uid outside (no user namespace remapping for HPC
	// encapsulation containers).
	p := node.Procs.Spawn(cred, 1, "apptainer", "exec", img.Name, cmd)
	return &Container{Image: img, Cred: cred.Clone(), Node: node, NS: ns, Net: net, Proc: p}, nil
}

// ReadImageFile reads a file baked into the image (read-only layer).
func (c *Container) ReadImageFile(path string) (string, error) {
	v, ok := c.Image.Files[path]
	if !ok {
		return "", fmt.Errorf("%w: %s in image %s", vfs.ErrNotExist, path, c.Image.Name)
	}
	return v, nil
}

// ImagePaths lists the image's baked-in files.
func (c *Container) ImagePaths() []string {
	out := make([]string, 0, len(c.Image.Files))
	for p := range c.Image.Files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// The passthrough operations: every host mount is visible with the
// caller's own credential, so host-side enforcement (smask, UPG
// homes, ACL restriction) applies unchanged inside the container.

// ReadFile reads a host path through the bind mount.
func (c *Container) ReadFile(path string) ([]byte, error) {
	return c.NS.ReadFile(vfs.Ctx(c.Cred), path)
}

// WriteFile writes a host path through the bind mount.
func (c *Container) WriteFile(path string, data []byte, mode uint32) error {
	return c.NS.WriteFile(vfs.Ctx(c.Cred), path, data, mode)
}

// Chmod chmods a host path through the bind mount (smask still
// applies — the FS enforces it by policy, not by caller location).
func (c *Container) Chmod(path string, mode uint32) error {
	return c.NS.Chmod(vfs.Ctx(c.Cred), path, mode)
}

// Dial opens a network connection through the host stack: the UBF
// hook on the destination sees the container user's credential.
func (c *Container) Dial(proto netsim.Proto, dstHost string, dstPort int) (*netsim.Conn, error) {
	return c.Net.Dial(c.Cred, proto, dstHost, dstPort)
}

// Listen binds a service through the host stack.
func (c *Container) Listen(proto netsim.Proto, port int) (*netsim.Listener, error) {
	return c.Net.Listen(c.Cred, proto, port)
}

// Exit terminates the container process.
func (c *Container) Exit() {
	_ = c.Node.Procs.Exit(c.Proc.PID)
}
