package ubf

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// world builds a registry (alice+bob in proj, carol outside), a
// two-host network with the UBF installed on both hosts, and login
// credentials.
func world(t *testing.T, cfg Config) (*netsim.Network, *netsim.Host, *netsim.Host, map[string]ids.Credential, ids.GID, *Daemon) {
	t.Helper()
	reg := ids.NewRegistry()
	alice, _ := reg.AddUser("alice")
	bob, _ := reg.AddUser("bob")
	carol, _ := reg.AddUser("carol")
	proj, err := reg.AddProjectGroup("proj", alice.UID)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.AddToGroup(alice.UID, proj.GID, bob.UID); err != nil {
		t.Fatal(err)
	}
	n := netsim.NewNetwork()
	h1, h2 := n.AddHost("node1"), n.AddHost("node2")
	d := New(cfg)
	d.InstallOn(h1)
	d.InstallOn(h2)
	creds := map[string]ids.Credential{}
	for _, u := range []*ids.User{alice, bob, carol} {
		c, err := reg.LoginCredential(u.UID)
		if err != nil {
			t.Fatal(err)
		}
		creds[u.Name] = c
	}
	// Register registry-backed group switch for listeners.
	creds["alice-proj"], err = reg.SwitchGroup(creds["alice"], proj.GID)
	if err != nil {
		t.Fatal(err)
	}
	return n, h1, h2, creds, proj.GID, d
}

func TestSameUserAllowed(t *testing.T) {
	_, h1, h2, creds, _, d := world(t, Config{AllowGroupPeers: true})
	if _, err := h2.Listen(creds["alice"], netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	c, err := h1.Dial(creds["alice"], netsim.TCP, "node2", 5000)
	if err != nil {
		t.Fatalf("same-user dial: %v", err)
	}
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if d.Allowed.Load() != 1 || d.Denied.Load() != 0 {
		t.Errorf("allowed=%d denied=%d", d.Allowed.Load(), d.Denied.Load())
	}
}

func TestDifferentUserDropped(t *testing.T) {
	_, h1, h2, creds, _, d := world(t, Config{AllowGroupPeers: true})
	if _, err := h2.Listen(creds["alice"], netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	// Carol shares no group with alice's listener (egid = alice's UPG).
	if _, err := h1.Dial(creds["carol"], netsim.TCP, "node2", 5000); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("stranger dial err = %v, want ErrConnDropped", err)
	}
	if d.Denied.Load() != 1 {
		t.Errorf("denied = %d", d.Denied.Load())
	}
}

func TestGroupOptInViaNewgrp(t *testing.T) {
	_, h1, h2, creds, _, _ := world(t, Config{AllowGroupPeers: true})
	// Default listener egid = alice's private group: bob is denied
	// even though they share proj — sharing must be *opt-in*.
	if _, err := h2.Listen(creds["alice"], netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(creds["bob"], netsim.TCP, "node2", 5000); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("pre-newgrp dial err = %v, want drop", err)
	}
	// Alice restarts the service under `sg proj` (egid = proj): now
	// bob, a proj member, is allowed.
	if _, err := h2.Listen(creds["alice-proj"], netsim.TCP, 5001); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(creds["bob"], netsim.TCP, "node2", 5001); err != nil {
		t.Errorf("post-newgrp member dial: %v", err)
	}
	// Carol is still denied.
	if _, err := h1.Dial(creds["carol"], netsim.TCP, "node2", 5001); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("non-member dial err = %v, want drop", err)
	}
}

func TestGroupRuleDisabled(t *testing.T) {
	_, h1, h2, creds, _, _ := world(t, Config{AllowGroupPeers: false})
	if _, err := h2.Listen(creds["alice-proj"], netsim.TCP, 5001); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(creds["bob"], netsim.TCP, "node2", 5001); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("strict mode group dial err = %v, want drop", err)
	}
}

func TestUDPCovered(t *testing.T) {
	_, h1, h2, creds, _, _ := world(t, Config{AllowGroupPeers: true})
	if _, err := h2.Listen(creds["alice"], netsim.UDP, 6000); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(creds["carol"], netsim.UDP, "node2", 6000); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("udp stranger err = %v, want drop", err)
	}
	if _, err := h1.Dial(creds["alice"], netsim.UDP, "node2", 6000); err != nil {
		t.Errorf("udp same-user: %v", err)
	}
}

func TestPortCollisionNoCrosstalk(t *testing.T) {
	// Paper §V: "Even if two users accidentally choose the same port
	// number for a network service, they cannot crosstalk and corrupt
	// each others data."
	n, h1, h2, creds, _, _ := world(t, Config{AllowGroupPeers: true})
	port := 7000
	// Alice's service on node1, carol's service on node2 — same port.
	if _, err := h1.Listen(creds["alice"], netsim.TCP, port); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Listen(creds["carol"], netsim.TCP, port); err != nil {
		t.Fatal(err)
	}
	// Alice's client meant node1 but was misconfigured to node2 —
	// it lands on carol's service; UBF refuses the cross-user flow.
	if _, err := h1.Dial(creds["alice"], netsim.TCP, "node2", port); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("collision dial err = %v, want drop", err)
	}
	// Correctly-addressed same-user traffic still flows.
	if _, err := h2.Dial(creds["alice"], netsim.TCP, "node1", port); err != nil {
		t.Errorf("own-service dial: %v", err)
	}
	_ = n
}

func TestVerdictCache(t *testing.T) {
	_, h1, h2, creds, _, d := world(t, Config{AllowGroupPeers: true, CacheVerdicts: true})
	if _, err := h2.Listen(creds["alice"], netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := h1.Dial(creds["alice"], netsim.TCP, "node2", 5000); err != nil {
			t.Fatal(err)
		}
	}
	if d.CacheHits.Load() != 9 {
		t.Errorf("cache hits = %d, want 9", d.CacheHits.Load())
	}
	d.FlushCache()
	if _, err := h1.Dial(creds["alice"], netsim.TCP, "node2", 5000); err != nil {
		t.Fatal(err)
	}
	if d.CacheHits.Load() != 9 {
		t.Errorf("cache hit after flush")
	}
}

func TestCacheDisabledAlwaysQueries(t *testing.T) {
	n, h1, h2, creds, _, d := world(t, Config{AllowGroupPeers: true, CacheVerdicts: false})
	if _, err := h2.Listen(creds["alice"], netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	n.ResetStats()
	for i := 0; i < 5; i++ {
		if _, err := h1.Dial(creds["alice"], netsim.TCP, "node2", 5000); err != nil {
			t.Fatal(err)
		}
	}
	if d.CacheHits.Load() != 0 {
		t.Errorf("cache hits with cache off")
	}
	// Two ident queries (src+dst) per new connection.
	if q := n.IdentQueries.Load(); q != 10 {
		t.Errorf("ident queries = %d, want 10", q)
	}
}

func TestFailClosedOnIdentFailure(t *testing.T) {
	// A raw hook invocation with a bogus flow (no such sockets) must
	// fail closed by default.
	n := netsim.NewNetwork()
	n.AddHost("node1")
	n.AddHost("node2")
	d := New(Config{AllowGroupPeers: true})
	flow := netsim.FlowTuple{Proto: netsim.TCP, SrcHost: "node1", SrcPort: 44444, DstHost: "node2", DstPort: 5000}
	if v := d.Hook()(n, flow); v != netsim.Drop {
		t.Errorf("ident-failure verdict = %v, want Drop", v)
	}
	dOpen := New(Config{FailOpen: true})
	if v := dOpen.Hook()(n, flow); v != netsim.Accept {
		t.Errorf("fail-open verdict = %v, want Accept", v)
	}
}

func TestAuditTrail(t *testing.T) {
	_, h1, h2, creds, _, d := world(t, Config{AllowGroupPeers: true})
	d.EnableAudit()
	if _, err := h2.Listen(creds["alice"], netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	_, _ = h1.Dial(creds["alice"], netsim.TCP, "node2", 5000)
	_, _ = h1.Dial(creds["carol"], netsim.TCP, "node2", 5000)
	trail := d.Audit()
	if len(trail) != 2 {
		t.Fatalf("trail len = %d", len(trail))
	}
	if trail[0].Verdict != netsim.Accept || trail[0].Reason != "same user" {
		t.Errorf("trail[0] = %+v", trail[0])
	}
	if trail[1].Verdict != netsim.Drop || trail[1].SrcUID != creds["carol"].UID {
		t.Errorf("trail[1] = %+v", trail[1])
	}
}

func TestEstablishedFlowsSurviveRuleChanges(t *testing.T) {
	// conntrack semantics: once accepted, a flow keeps working even
	// if the daemon would now deny it (e.g. after group removal).
	_, h1, h2, creds, _, _ := world(t, Config{AllowGroupPeers: true})
	if _, err := h2.Listen(creds["alice-proj"], netsim.TCP, 5001); err != nil {
		t.Fatal(err)
	}
	c, err := h1.Dial(creds["bob"], netsim.TCP, "node2", 5001)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a drop-everything daemon; the established conn still flows.
	deny := New(Config{})
	deny.InstallOn(h2)
	if err := c.Send([]byte("still-works")); err != nil {
		t.Errorf("established send after rule change: %v", err)
	}
	// But new connections are now denied.
	if _, err := h1.Dial(creds["bob"], netsim.TCP, "node2", 5001); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("new conn err = %v, want drop", err)
	}
}

// Property: the UBF decision matches the paper's predicate exactly —
// allow iff same uid, or (group rule on and connector in listener's
// primary group).
func TestQuickDecisionMatchesPredicate(t *testing.T) {
	d := New(Config{AllowGroupPeers: true})
	f := func(srcUID, dstUID uint8, egid uint8, inGroup bool) bool {
		src := ids.Credential{UID: ids.UID(srcUID), EGID: ids.GID(srcUID), Groups: []ids.GID{ids.GID(srcUID)}}
		dst := ids.Credential{UID: ids.UID(dstUID), EGID: ids.GID(egid), Groups: []ids.GID{ids.GID(egid)}}
		if inGroup {
			src.Groups = append(src.Groups, ids.GID(egid))
		}
		v, _ := d.decide(src, dst)
		want := netsim.Drop
		if src.UID == dst.UID || src.InGroup(dst.EGID) {
			want = netsim.Accept
		}
		return v == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Reset must empty the cache, counters and trail while keeping the
// daemon's installed hooks working.
func TestDaemonReset(t *testing.T) {
	n := netsim.NewNetwork()
	h1, h2 := n.AddHost("a"), n.AddHost("b")
	d := New(Config{AllowGroupPeers: true, CacheVerdicts: true})
	d.EnableAudit()
	d.InstallOn(h2)
	alice := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	if _, err := h2.Listen(alice, netsim.TCP, 9000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := h1.Dial(alice, netsim.TCP, "b", 9000); err != nil {
			t.Fatal(err)
		}
	}
	if d.CacheHits.Load() == 0 || len(d.Audit()) == 0 {
		t.Fatal("expected cache hits and a trail before Reset")
	}
	d.Reset()
	if d.Decisions.Load() != 0 || d.CacheHits.Load() != 0 || d.Allowed.Load() != 0 || d.Denied.Load() != 0 {
		t.Error("counters survived Reset")
	}
	if len(d.Audit()) != 0 {
		t.Error("audit trail survived Reset")
	}
	// The installed hook still decides — with a cold cache.
	if _, err := h1.Dial(alice, netsim.TCP, "b", 9000); err != nil {
		t.Fatal(err)
	}
	if d.Decisions.Load() != 1 || d.CacheHits.Load() != 0 {
		t.Errorf("post-reset decision path wrong: %d decisions, %d hits", d.Decisions.Load(), d.CacheHits.Load())
	}
	if len(d.Audit()) != 0 {
		t.Error("audit re-enabled itself after Reset (EnableAudit is post-construction state)")
	}
}
