package ubf

// RFC 1413-style ident wire protocol. The paper describes the UBF's
// peer exchange as "an ident [32]-like query" (§IV-D, citing RFC
// 1413). This file implements the actual text protocol so the
// daemon's cross-host exchange is wire-faithful:
//
//	query:    "6193, 23\r\n"            (port-on-server, port-on-client)
//	response: "6193, 23 : USERID : UNIX : uid=1000 egid=1000\r\n"
//	error:    "6193, 23 : ERROR : NO-USER\r\n"
//
// The stock protocol returns an opaque user string; like the paper's
// daemons we carry uid and egid, since the group rule needs the
// effective gid of the listener.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// Ident protocol errors (the RFC's error-token set).
var (
	ErrIdentMalformed  = errors.New("ubf: malformed ident message")
	ErrIdentNoUser     = errors.New("ubf: NO-USER")
	ErrIdentHiddenUser = errors.New("ubf: HIDDEN-USER")
)

// IdentQuery is a parsed request.
type IdentQuery struct {
	ServerPort int // port on the answering host
	ClientPort int // port on the asking host
}

// FormatIdentQuery renders the request line.
func FormatIdentQuery(q IdentQuery) string {
	return fmt.Sprintf("%d, %d\r\n", q.ServerPort, q.ClientPort)
}

// ParseIdentQuery parses a request line.
func ParseIdentQuery(line string) (IdentQuery, error) {
	line = strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r")
	parts := strings.Split(line, ",")
	if len(parts) != 2 {
		return IdentQuery{}, fmt.Errorf("%w: %q", ErrIdentMalformed, line)
	}
	sp, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	cp, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || sp <= 0 || cp <= 0 || sp > 65535 || cp > 65535 {
		return IdentQuery{}, fmt.Errorf("%w: %q", ErrIdentMalformed, line)
	}
	return IdentQuery{ServerPort: sp, ClientPort: cp}, nil
}

// FormatIdentResponse renders a USERID response carrying uid+egid.
func FormatIdentResponse(q IdentQuery, cred ids.Credential) string {
	return fmt.Sprintf("%d, %d : USERID : UNIX : uid=%d egid=%d\r\n",
		q.ServerPort, q.ClientPort, cred.UID, cred.EGID)
}

// FormatIdentError renders an ERROR response with the given RFC token
// (NO-USER, HIDDEN-USER, INVALID-PORT, UNKNOWN-ERROR).
func FormatIdentError(q IdentQuery, token string) string {
	return fmt.Sprintf("%d, %d : ERROR : %s\r\n", q.ServerPort, q.ClientPort, token)
}

// ParseIdentResponse parses a response line into the answering
// credential (uid+egid only — supplemental groups never cross the
// wire; the daemon resolves those locally if it needs them).
func ParseIdentResponse(line string) (IdentQuery, ids.Credential, error) {
	line = strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r")
	fields := strings.SplitN(line, ":", 4)
	if len(fields) < 3 {
		return IdentQuery{}, ids.Credential{}, fmt.Errorf("%w: %q", ErrIdentMalformed, line)
	}
	q, err := ParseIdentQuery(fields[0])
	if err != nil {
		return IdentQuery{}, ids.Credential{}, err
	}
	switch strings.TrimSpace(fields[1]) {
	case "ERROR":
		token := strings.TrimSpace(fields[2])
		switch token {
		case "NO-USER":
			return q, ids.Credential{}, ErrIdentNoUser
		case "HIDDEN-USER":
			return q, ids.Credential{}, ErrIdentHiddenUser
		default:
			return q, ids.Credential{}, fmt.Errorf("%w: error token %q", ErrIdentMalformed, token)
		}
	case "USERID":
		if len(fields) != 4 {
			return IdentQuery{}, ids.Credential{}, fmt.Errorf("%w: %q", ErrIdentMalformed, line)
		}
		cred := ids.Credential{UID: ids.NoUID, EGID: ids.NoGID}
		for _, kv := range strings.Fields(strings.TrimSpace(fields[3])) {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return IdentQuery{}, ids.Credential{}, fmt.Errorf("%w: token %q", ErrIdentMalformed, kv)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return IdentQuery{}, ids.Credential{}, fmt.Errorf("%w: %q", ErrIdentMalformed, kv)
			}
			switch k {
			case "uid":
				cred.UID = ids.UID(n)
			case "egid":
				cred.EGID = ids.GID(n)
			}
		}
		if cred.UID == ids.NoUID || cred.EGID == ids.NoGID {
			return IdentQuery{}, ids.Credential{}, fmt.Errorf("%w: missing uid/egid in %q", ErrIdentMalformed, line)
		}
		cred.Groups = []ids.GID{cred.EGID}
		return q, cred, nil
	default:
		return IdentQuery{}, ids.Credential{}, fmt.Errorf("%w: reply type %q", ErrIdentMalformed, fields[1])
	}
}

// IdentResponder answers ident queries for one host: the per-node
// agent the receiving daemon contacts over the wire.
type IdentResponder struct {
	host *netsim.Host
	net  *netsim.Network
}

// NewIdentResponder builds the responder for a host.
func NewIdentResponder(net *netsim.Network, host *netsim.Host) *IdentResponder {
	return &IdentResponder{host: host, net: net}
}

// Answer handles one serialized query line and returns the response
// line. proto selects which socket table is consulted.
func (r *IdentResponder) Answer(proto netsim.Proto, line string) string {
	q, err := ParseIdentQuery(line)
	if err != nil {
		return FormatIdentError(IdentQuery{}, "UNKNOWN-ERROR")
	}
	cred, err := r.net.Ident(r.host.Name(), proto, q.ServerPort)
	if err != nil {
		return FormatIdentError(q, "NO-USER")
	}
	return FormatIdentResponse(q, cred)
}

// WireIdent performs a full round trip through the text protocol:
// format the query, have the remote responder answer, parse the
// reply. Daemon.Hook uses the in-process fast path for speed; this
// function exists to prove (and test) that the wire form carries
// everything the decision needs.
func WireIdent(net *netsim.Network, remoteHost string, proto netsim.Proto, serverPort, clientPort int) (ids.Credential, error) {
	h, err := net.Host(remoteHost)
	if err != nil {
		return ids.Credential{}, err
	}
	r := NewIdentResponder(net, h)
	reply := r.Answer(proto, FormatIdentQuery(IdentQuery{ServerPort: serverPort, ClientPort: clientPort}))
	_, cred, err := ParseIdentResponse(reply)
	return cred, err
}
