// Package ubf implements the paper's User-Based Firewall (§IV-D and
// reproducibility appendix; refs [30], [31]): a userspace daemon that
// receives NEW TCP/UDP connection attempts from the kernel's nfqueue
// hook and decides them by *user identity* rather than by
// port/protocol/service.
//
// The decision procedure, verbatim from the paper:
//
//	"During the establishment of a new connection an ident-like query
//	is sent from the receiving system to the initiating system to get
//	user information, and the same query run locally. The connection
//	is allowed if both the receiving and the initiating processes are
//	owned by the same user or if the connector is a member of the
//	primary group of the listener process."
//
// The listener's primary group is its *effective* GID, switchable
// with newgrp/sg — that is the opt-in lever for project-group
// services.
package ubf

import (
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// Decision records one verdict for audit/inspection.
type Decision struct {
	Flow    netsim.FlowTuple
	SrcUID  ids.UID
	DstUID  ids.UID
	DstEGID ids.GID
	Verdict netsim.Verdict
	Reason  string
	Cached  bool
}

// Config tunes the daemon.
type Config struct {
	// AllowGroupPeers enables the egid rule ("or the connector is a
	// member of the primary group of the listener process"). The
	// paper's deployment has it on; turning it off is the strictest
	// same-user-only mode.
	AllowGroupPeers bool
	// CacheVerdicts memoizes (srcUID, dstUID, dstEGID) decisions, the
	// way the production daemon avoids re-running ident for repeat
	// peers. Ablated in experiment E8.
	CacheVerdicts bool
	// FailOpen decides what to do when an ident query fails. The
	// paper's security posture is fail-closed (default false).
	FailOpen bool
}

// Daemon is the UBF userspace decision engine. One daemon can serve
// every host's hook (it is stateless apart from the cache), matching
// the paper's per-node daemons that share identical configuration.
type Daemon struct {
	cfg Config

	mu    sync.RWMutex
	cache map[cacheKey]cacheVal

	// Counters for the overhead experiment (E8).
	Decisions   atomic.Int64
	CacheHits   atomic.Int64
	Allowed     atomic.Int64
	Denied      atomic.Int64
	trail       []Decision
	trailEnable bool
}

type cacheKey struct {
	src        ids.UID
	dst        ids.UID
	egid       ids.GID
	srcInGroup bool
}

type cacheVal struct {
	verdict netsim.Verdict
	reason  string
}

// New creates a daemon.
func New(cfg Config) *Daemon {
	return &Daemon{cfg: cfg, cache: make(map[cacheKey]cacheVal)}
}

// EnableAudit records every decision for later inspection (tests and
// the leak scanner use this).
func (d *Daemon) EnableAudit() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trailEnable = true
}

// Audit returns a copy of the decision trail.
func (d *Daemon) Audit() []Decision {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Decision(nil), d.trail...)
}

// Hook returns the netsim.HookFunc to install on each host's
// firewall. It performs the two ident queries and applies the rule.
func (d *Daemon) Hook() netsim.HookFunc {
	return func(net *netsim.Network, flow netsim.FlowTuple) netsim.Verdict {
		d.Decisions.Add(1)

		// "the same query run locally": listener side.
		dstCred, errDst := net.Ident(flow.DstHost, flow.Proto, flow.DstPort)
		// "an ident-like query is sent ... to the initiating system":
		// connector side.
		srcCred, errSrc := net.Ident(flow.SrcHost, flow.Proto, flow.SrcPort)
		if errDst != nil || errSrc != nil {
			v := netsim.Drop
			if d.cfg.FailOpen {
				v = netsim.Accept
			}
			d.record(flow, ids.NoUID, ids.NoUID, ids.NoGID, v, "ident unavailable", false)
			return v
		}

		key := cacheKey{src: srcCred.UID, dst: dstCred.UID, egid: dstCred.EGID, srcInGroup: srcCred.InGroup(dstCred.EGID)}
		if d.cfg.CacheVerdicts {
			d.mu.RLock()
			cv, hit := d.cache[key]
			d.mu.RUnlock()
			if hit {
				d.CacheHits.Add(1)
				d.count(cv.verdict)
				d.record(flow, srcCred.UID, dstCred.UID, dstCred.EGID, cv.verdict, cv.reason, true)
				return cv.verdict
			}
		}

		verdict, reason := d.decide(srcCred, dstCred)
		if d.cfg.CacheVerdicts {
			d.mu.Lock()
			d.cache[key] = cacheVal{verdict, reason}
			d.mu.Unlock()
		}
		d.count(verdict)
		d.record(flow, srcCred.UID, dstCred.UID, dstCred.EGID, verdict, reason, false)
		return verdict
	}
}

// decide applies the paper's rule.
func (d *Daemon) decide(src, dst ids.Credential) (netsim.Verdict, string) {
	if src.UID == dst.UID {
		return netsim.Accept, "same user"
	}
	if d.cfg.AllowGroupPeers && src.InGroup(dst.EGID) {
		return netsim.Accept, "connector in listener primary group"
	}
	return netsim.Drop, "different user"
}

func (d *Daemon) count(v netsim.Verdict) {
	if v == netsim.Accept {
		d.Allowed.Add(1)
	} else {
		d.Denied.Add(1)
	}
}

func (d *Daemon) record(f netsim.FlowTuple, src, dst ids.UID, egid ids.GID, v netsim.Verdict, reason string, cached bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.trailEnable {
		d.trail = append(d.trail, Decision{Flow: f, SrcUID: src, DstUID: dst, DstEGID: egid, Verdict: v, Reason: reason, Cached: cached})
	}
}

// Reset rewinds the daemon to its freshly-constructed state: the
// verdict cache, all counters and the audit trail (including the
// enable flag — EnableAudit is post-construction state) are cleared.
// The configuration and any hooks already installed on hosts survive:
// the hook closure reads the daemon's live state, so a reset daemon
// keeps filtering with empty caches, exactly like a fresh one.
func (d *Daemon) Reset() {
	d.mu.Lock()
	clear(d.cache)
	d.trail = nil
	d.trailEnable = false
	d.mu.Unlock()
	d.Decisions.Store(0)
	d.CacheHits.Store(0)
	d.Allowed.Store(0)
	d.Denied.Store(0)
}

// FlushCache clears the verdict cache (e.g. after group-membership
// changes; the production daemon uses a TTL).
func (d *Daemon) FlushCache() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache = make(map[cacheKey]cacheVal)
}

// InstallOn wires the daemon onto a host with the paper's standard
// port policy: inspect unprivileged ports (>= 1024) only.
func (d *Daemon) InstallOn(h *netsim.Host) {
	h.SetFirewall(d.Hook(), func(port int) bool { return port >= 1024 })
}

// InstallOnAllPorts wires the daemon with every port inspected.
func (d *Daemon) InstallOnAllPorts(h *netsim.Host) {
	h.SetFirewall(d.Hook(), nil)
}
