package ubf

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/netsim"
)

func TestIdentQueryRoundtrip(t *testing.T) {
	q := IdentQuery{ServerPort: 6193, ClientPort: 23}
	line := FormatIdentQuery(q)
	if line != "6193, 23\r\n" {
		t.Errorf("query line = %q", line)
	}
	got, err := ParseIdentQuery(line)
	if err != nil || got != q {
		t.Errorf("parse = %+v, %v", got, err)
	}
}

func TestParseIdentQueryMalformed(t *testing.T) {
	for _, bad := range []string{
		"", "x", "1", "1, 2, 3", "a, b", "-1, 5", "70000, 5", "0, 0",
	} {
		if _, err := ParseIdentQuery(bad); !errors.Is(err, ErrIdentMalformed) {
			t.Errorf("ParseIdentQuery(%q) err = %v, want ErrIdentMalformed", bad, err)
		}
	}
}

func TestIdentResponseRoundtrip(t *testing.T) {
	q := IdentQuery{ServerPort: 5000, ClientPort: 40001}
	cred := ids.Credential{UID: 1000, EGID: 1005}
	line := FormatIdentResponse(q, cred)
	if line != "5000, 40001 : USERID : UNIX : uid=1000 egid=1005\r\n" {
		t.Errorf("response line = %q", line)
	}
	gq, gc, err := ParseIdentResponse(line)
	if err != nil {
		t.Fatal(err)
	}
	if gq != q || gc.UID != 1000 || gc.EGID != 1005 {
		t.Errorf("parsed %+v %+v", gq, gc)
	}
}

func TestParseIdentResponseErrors(t *testing.T) {
	q := IdentQuery{ServerPort: 1, ClientPort: 2}
	if _, _, err := ParseIdentResponse(FormatIdentError(q, "NO-USER")); !errors.Is(err, ErrIdentNoUser) {
		t.Errorf("NO-USER err = %v", err)
	}
	if _, _, err := ParseIdentResponse(FormatIdentError(q, "HIDDEN-USER")); !errors.Is(err, ErrIdentHiddenUser) {
		t.Errorf("HIDDEN-USER err = %v", err)
	}
	for _, bad := range []string{
		"",
		"garbage",
		"1, 2 : BOGUS : x",
		"1, 2 : USERID : UNIX",            // missing field
		"1, 2 : USERID : UNIX : uid=x",    // non-numeric
		"1, 2 : USERID : UNIX : uid=5",    // missing egid
		"1, 2 : USERID : UNIX : nonsense", // no k=v
		"1, 2 : ERROR : WEIRD-TOKEN",      // unknown token
	} {
		if _, _, err := ParseIdentResponse(bad); err == nil {
			t.Errorf("ParseIdentResponse(%q) succeeded", bad)
		}
	}
}

// Property: format→parse is the identity on valid port pairs and
// credentials.
func TestQuickIdentWireRoundtrip(t *testing.T) {
	f := func(sp, cp uint16, uid, egid uint16) bool {
		if sp == 0 || cp == 0 {
			return true
		}
		q := IdentQuery{ServerPort: int(sp), ClientPort: int(cp)}
		cred := ids.Credential{UID: ids.UID(uid), EGID: ids.GID(egid)}
		if uid == 0xFFFF || egid == 0xFFFF {
			return true // avoid the NoUID/NoGID sentinels
		}
		gq, gc, err := ParseIdentResponse(FormatIdentResponse(q, cred))
		return err == nil && gq == q && gc.UID == cred.UID && gc.EGID == cred.EGID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentResponderAnswers(t *testing.T) {
	n := netsim.NewNetwork()
	h := n.AddHost("node1")
	alice := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	if _, err := h.Listen(alice, netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	r := NewIdentResponder(n, h)
	reply := r.Answer(netsim.TCP, "5000, 40000\r\n")
	if !strings.Contains(reply, "USERID") || !strings.Contains(reply, "uid=1000") {
		t.Errorf("reply = %q", reply)
	}
	// Unbound port: NO-USER.
	if reply := r.Answer(netsim.TCP, "9999, 1\r\n"); !strings.Contains(reply, "NO-USER") {
		t.Errorf("unbound reply = %q", reply)
	}
	// Garbage: UNKNOWN-ERROR.
	if reply := r.Answer(netsim.TCP, "zzz\r\n"); !strings.Contains(reply, "UNKNOWN-ERROR") {
		t.Errorf("garbage reply = %q", reply)
	}
}

func TestWireIdentEndToEnd(t *testing.T) {
	n := netsim.NewNetwork()
	h := n.AddHost("node1")
	n.AddHost("node2")
	alice := ids.Credential{UID: 1000, EGID: 1042, Groups: []ids.GID{1000, 1042}}
	if _, err := h.Listen(alice, netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	cred, err := WireIdent(n, "node1", netsim.TCP, 5000, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if cred.UID != 1000 || cred.EGID != 1042 {
		t.Errorf("wire cred = %+v", cred)
	}
	// The wire decision equals the in-process decision.
	d := New(Config{AllowGroupPeers: true})
	connector := ids.Credential{UID: 2000, EGID: 2000, Groups: []ids.GID{2000, 1042}}
	v, _ := d.decide(connector, cred)
	if v != netsim.Accept {
		t.Errorf("wire-derived group decision = %v, want Accept", v)
	}
	if _, err := WireIdent(n, "ghost", netsim.TCP, 1, 1); err == nil {
		t.Errorf("ghost host wire ident succeeded")
	}
	if _, err := WireIdent(n, "node2", netsim.TCP, 5000, 1); !errors.Is(err, ErrIdentNoUser) {
		t.Errorf("unbound wire ident err = %v", err)
	}
}
