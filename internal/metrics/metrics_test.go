package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("E1 process visibility", "observer", "hidepid", "visible")
	tb.AddRow("alice", 2, 20)
	tb.AddRow("support", 2, 60)
	tb.AddNote("exempt gid = %d", 500)
	out := tb.Render()
	for _, want := range []string{"E1 process visibility", "observer", "alice", "support", "note: exempt gid = 500"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if len(tb.Rows()) != 2 {
		t.Errorf("rows = %d", len(tb.Rows()))
	}
	// Rows returns copies.
	tb.Rows()[0][0] = "tampered"
	if tb.Rows()[0][0] != "alice" {
		t.Errorf("Rows leaked internal state")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("t", "v")
	tb.AddRow(0.123456)
	if got := tb.Rows()[0][0]; got != "0.123" {
		t.Errorf("float cell = %q", got)
	}
}

func TestDistStats(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Quantile(0.5) != 0 || d.Max() != 0 || d.N() != 0 {
		t.Errorf("empty dist not zero")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		d.Add(v)
	}
	if d.Mean() != 3 {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Quantile(0) != 1 || d.Quantile(1) != 5 {
		t.Errorf("quantile ends = %v %v", d.Quantile(0), d.Quantile(1))
	}
	if d.Quantile(0.5) != 3 {
		t.Errorf("median = %v", d.Quantile(0.5))
	}
	if d.Max() != 5 {
		t.Errorf("max = %v", d.Max())
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Errorf("different seeds collided on first draw")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Errorf("Intn(<=0) != 0")
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	parent := NewRNG(99)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Errorf("split children correlated")
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(vals []float64, qa, qb uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var d Dist
		for _, v := range vals {
			d.Add(v)
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		return d.Quantile(a) <= d.Quantile(b) &&
			d.Quantile(0) <= d.Quantile(1) &&
			d.Quantile(1) <= d.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
