// Mergeable streaming statistics for sharded campaign execution:
// Acc is an online (Welford) mean/variance accumulator and Histogram
// a fixed-bucket counter, both combinable with Merge so shards
// aggregate trial results without ever retaining per-trial sample
// slices. Merging is deterministic for a fixed merge ORDER — the
// fleet executor always reduces shards in trial-index order, which
// is what makes campaign output bit-identical across worker counts.

package metrics

import (
	"fmt"
	"math"
)

// Acc accumulates count / mean / variance / min / max online. The
// exported fields are the mergeable state (Chan et al. parallel
// variance form); they marshal to JSON so a shard's partial can
// cross a process boundary and still merge exactly.
type Acc struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"` // sum of squared deviations from the mean
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Add folds one sample in.
func (a *Acc) Add(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	d := v - a.Mean
	a.Mean += d / float64(a.Count)
	a.M2 += d * (v - a.Mean)
}

// Merge folds another accumulator in. Count/Min/Max merge exactly;
// Mean/M2 use the parallel Welford combination, which is exact in
// real arithmetic and reproducible in floating point whenever the
// merge order is fixed.
func (a *Acc) Merge(b Acc) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	n := float64(a.Count + b.Count)
	d := b.Mean - a.Mean
	a.Mean += d * float64(b.Count) / n
	a.M2 += b.M2 + d*d*float64(a.Count)*float64(b.Count)/n
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.Count += b.Count
}

// Variance returns the sample variance (0 for fewer than 2 samples).
func (a Acc) Variance() float64 {
	if a.Count < 2 {
		return 0
	}
	return a.M2 / float64(a.Count-1)
}

// Std returns the sample standard deviation.
func (a Acc) Std() float64 { return math.Sqrt(a.Variance()) }

// Histogram counts samples into equal-width buckets over [Lo, Hi].
// The bucket layout is part of the mergeable state: two histograms
// combine iff their layouts match, and merged counts equal the
// counts a single histogram would have accumulated.
type Histogram struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Counts []int64 `json:"counts"`
	Under  int64   `json:"under"` // samples < Lo
	Over   int64   `json:"over"`  // samples > Hi
}

// NewHistogram builds a histogram of the given bucket count over
// [lo, hi]; hi itself lands in the last bucket.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 || !(hi > lo) {
		panic(fmt.Sprintf("metrics: bad histogram layout [%v, %v] x %d", lo, hi, buckets))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, buckets)}
}

// Add counts one sample.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.Lo:
		h.Under++
	case v > h.Hi:
		h.Over++
	default:
		idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx >= len(h.Counts) { // v == Hi
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Merge folds another histogram with the identical layout in.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.Lo != other.Lo || h.Hi != other.Hi || len(h.Counts) != len(other.Counts) {
		return fmt.Errorf("metrics: histogram layout mismatch: [%v, %v] x %d vs [%v, %v] x %d",
			h.Lo, h.Hi, len(h.Counts), other.Lo, other.Hi, len(other.Counts))
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Under += other.Under
	h.Over += other.Over
	return nil
}

// N returns the total number of samples counted, including under-
// and overflow.
func (h *Histogram) N() int64 {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns the upper edge of the bucket holding the q-th
// quantile (0 <= q <= 1) of the in-range samples — a conservative
// bucket-resolution estimate. Underflow reports Lo, an empty
// histogram 0.
func (h *Histogram) Quantile(q float64) float64 {
	inRange := h.N() - h.Under - h.Over
	if inRange <= 0 {
		if h.Under > 0 {
			return h.Lo
		}
		return 0
	}
	rank := int64(math.Ceil(q * float64(inRange)))
	if rank < 1 {
		rank = 1
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			return h.Lo + float64(i+1)*width
		}
	}
	return h.Hi
}
