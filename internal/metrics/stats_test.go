package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// Dist.Merge must make shard-local Dists indistinguishable from one
// collector: every statistic of the merged Dist equals the statistic
// over the concatenated samples.
func TestDistMergeMatchesCombined(t *testing.T) {
	rng := NewRNG(31)
	var combined Dist
	shards := make([]*Dist, 4)
	for i := range shards {
		shards[i] = &Dist{}
	}
	for i := 0; i < 997; i++ {
		v := rng.Float64()*100 - 50
		combined.Add(v)
		shards[i%len(shards)].Add(v)
	}
	var merged Dist
	for _, s := range shards {
		merged.Merge(s)
	}
	merged.Merge(nil) // no-op

	if merged.N() != combined.N() {
		t.Fatalf("merged N = %d, combined N = %d", merged.N(), combined.N())
	}
	// Samples arrive in a different order, so the mean's FP summation
	// may differ in the last ulps; order-insensitive stats are exact.
	if math.Abs(merged.Mean()-combined.Mean()) > 1e-12 {
		t.Errorf("merged mean %v != combined %v", merged.Mean(), combined.Mean())
	}
	if merged.Max() != combined.Max() {
		t.Errorf("merged max %v != combined %v", merged.Max(), combined.Max())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if got, want := merged.Quantile(q), combined.Quantile(q); got != want {
			t.Errorf("quantile(%v): merged %v != combined %v", q, got, want)
		}
	}
}

func TestAccMergeMatchesSequential(t *testing.T) {
	rng := NewRNG(7)
	var all Acc
	parts := make([]Acc, 5)
	for i := 0; i < 1213; i++ {
		v := rng.Float64()*10 - 3
		all.Add(v)
		parts[i%len(parts)].Add(v)
	}
	var merged Acc
	merged.Merge(Acc{}) // empty is a no-op
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count != all.Count || merged.Min != all.Min || merged.Max != all.Max {
		t.Fatalf("count/min/max: merged %+v vs sequential %+v", merged, all)
	}
	if math.Abs(merged.Mean-all.Mean) > 1e-12 {
		t.Errorf("mean: merged %v vs sequential %v", merged.Mean, all.Mean)
	}
	if math.Abs(merged.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("variance: merged %v vs sequential %v", merged.Variance(), all.Variance())
	}
}

func TestAccSmall(t *testing.T) {
	var a Acc
	if a.Variance() != 0 || a.Std() != 0 {
		t.Errorf("empty acc variance nonzero")
	}
	a.Add(5)
	if a.Variance() != 0 {
		t.Errorf("single-sample variance = %v", a.Variance())
	}
	a.Add(7)
	if a.Mean != 6 || a.Variance() != 2 || a.Min != 5 || a.Max != 7 {
		t.Errorf("acc over {5,7} = %+v (var %v)", a, a.Variance())
	}
	// Merging into an empty Acc adopts the other side verbatim.
	var b Acc
	b.Merge(a)
	if b != a {
		t.Errorf("empty.Merge(a) = %+v, want %+v", b, a)
	}
}

func TestHistogramMergeMatchesCombined(t *testing.T) {
	rng := NewRNG(13)
	one := NewHistogram(0, 100, 10)
	parts := []*Histogram{NewHistogram(0, 100, 10), NewHistogram(0, 100, 10), NewHistogram(0, 100, 10)}
	for i := 0; i < 2000; i++ {
		v := rng.Float64()*120 - 10 // deliberately spills both ends
		one.Add(v)
		parts[i%len(parts)].Add(v)
	}
	merged := NewHistogram(0, 100, 10)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := merged.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if merged.N() != one.N() || merged.Under != one.Under || merged.Over != one.Over {
		t.Fatalf("totals: merged N=%d u=%d o=%d vs one N=%d u=%d o=%d",
			merged.N(), merged.Under, merged.Over, one.N(), one.Under, one.Over)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != one.Counts[i] {
			t.Errorf("bucket %d: merged %d vs one %d", i, merged.Counts[i], one.Counts[i])
		}
	}
	for q := 0.0; q <= 1.0; q += 0.25 {
		if got, want := merged.Quantile(q), one.Quantile(q); got != want {
			t.Errorf("quantile(%v): merged %v vs one %v", q, got, want)
		}
	}
}

func TestHistogramLayoutGuards(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if err := h.Merge(NewHistogram(0, 20, 5)); err == nil {
		t.Errorf("layout mismatch merge accepted")
	}
	if err := h.Merge(NewHistogram(0, 10, 4)); err == nil {
		t.Errorf("bucket-count mismatch merge accepted")
	}
	h.Add(10) // hi edge lands in the last bucket, not overflow
	if h.Over != 0 || h.Counts[4] != 1 {
		t.Errorf("hi edge: over=%d counts=%v", h.Over, h.Counts)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("degenerate layout did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %v", h.Quantile(0.5))
	}
	h.Add(-1)
	if h.Quantile(0.5) != h.Lo {
		t.Errorf("underflow-only quantile = %v, want Lo", h.Quantile(0.5))
	}
	for _, v := range []float64{0.5, 3.5, 9.5} {
		h.Add(v)
	}
	// 3 in-range samples: p50 is the 2nd -> bucket [3,4) upper edge.
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("p50 = %v, want 4", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
}

// The aggregates cross process boundaries (checkpoint sidecars) as
// JSON, so serialization must be lossless down to the last float bit:
// merging a decode(encode(shard)) must equal merging the shard
// itself, statistic for statistic. Go's encoding/json guarantees this
// by emitting the shortest decimal that round-trips each float64.
func TestAccJSONRoundTripMerge(t *testing.T) {
	rng := NewRNG(17)
	fill := func(n int) Acc {
		var a Acc
		for i := 0; i < n; i++ {
			a.Add(rng.Float64()*1e6 - 3e5)
		}
		return a
	}
	for _, n := range []int{0, 1, 2, 537} { // empty and single-sample are the degenerate layouts
		shard := fill(n)
		data, err := json.Marshal(shard)
		if err != nil {
			t.Fatal(err)
		}
		var decoded Acc
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		if decoded != shard {
			t.Fatalf("n=%d: decode(encode(acc)) = %+v, want %+v", n, decoded, shard)
		}
		direct := fill(91)
		viaJSON := direct // Acc is a value: copies are independent
		direct.Merge(shard)
		viaJSON.Merge(decoded)
		if direct != viaJSON {
			t.Fatalf("n=%d: merge of decoded shard %+v differs from in-memory merge %+v", n, viaJSON, direct)
		}
	}
}

func TestHistogramJSONRoundTripMerge(t *testing.T) {
	rng := NewRNG(19)
	fill := func(n int) *Histogram {
		h := NewHistogram(0, 50, 8)
		for i := 0; i < n; i++ {
			h.Add(rng.Float64()*70 - 10) // spills both ends
		}
		return h
	}
	for _, n := range []int{0, 1, 400} {
		shard := fill(n)
		data, err := json.Marshal(shard)
		if err != nil {
			t.Fatal(err)
		}
		decoded := &Histogram{}
		if err := json.Unmarshal(data, decoded); err != nil {
			t.Fatal(err)
		}
		direct, viaJSON := fill(33), fill(0)
		if err := viaJSON.Merge(direct); err != nil { // same fill(33) content via a second pass
			t.Fatal(err)
		}
		if err := direct.Merge(shard); err != nil {
			t.Fatal(err)
		}
		if err := viaJSON.Merge(decoded); err != nil {
			t.Fatal(err)
		}
		if direct.Under != viaJSON.Under || direct.Over != viaJSON.Over || direct.Lo != viaJSON.Lo || direct.Hi != viaJSON.Hi {
			t.Fatalf("n=%d: merged edges differ: %+v vs %+v", n, viaJSON, direct)
		}
		for i := range direct.Counts {
			if direct.Counts[i] != viaJSON.Counts[i] {
				t.Fatalf("n=%d bucket %d: merged %d via JSON, %d in memory", n, i, viaJSON.Counts[i], direct.Counts[i])
			}
		}
	}
	// An empty decoded histogram (zero-bucket layout) must still fail
	// layout-checked merges loudly rather than silently dropping counts.
	var empty Histogram
	if err := fill(1).Merge(&empty); err == nil {
		t.Error("merge with a layoutless histogram accepted")
	}
}

func TestDistJSONRoundTripMerge(t *testing.T) {
	rng := NewRNG(23)
	fill := func(n int) *Dist {
		d := &Dist{}
		for i := 0; i < n; i++ {
			d.Add(rng.Float64()*1e3 - 200)
		}
		return d
	}
	for _, n := range []int{0, 1, 311} {
		shard := fill(n)
		data, err := json.Marshal(shard)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 && !bytes.Equal(data, []byte("[]")) {
			t.Fatalf("empty Dist encodes as %s, want [] (canonical bytes must not depend on Add history)", data)
		}
		decoded := &Dist{}
		if err := json.Unmarshal(data, decoded); err != nil {
			t.Fatal(err)
		}
		if decoded.N() != shard.N() {
			t.Fatalf("n=%d: decoded N = %d", n, decoded.N())
		}
		direct, viaJSON := fill(47), &Dist{}
		viaJSON.Merge(direct)
		direct.Merge(shard)
		viaJSON.Merge(decoded)
		if direct.N() != viaJSON.N() || direct.Mean() != viaJSON.Mean() || direct.Max() != viaJSON.Max() {
			t.Fatalf("n=%d: merged stats differ: N %d/%d mean %v/%v", n, viaJSON.N(), direct.N(), viaJSON.Mean(), direct.Mean())
		}
		for q := 0.0; q <= 1.0; q += 0.1 {
			if got, want := viaJSON.Quantile(q), direct.Quantile(q); got != want {
				t.Fatalf("n=%d quantile(%v): %v via JSON, %v in memory", n, q, got, want)
			}
		}
	}
}

// StreamSeed must be random access into exactly the stream Split
// walks sequentially.
func TestStreamSeedMatchesSequentialSplit(t *testing.T) {
	const seed = 12345
	seq := NewRNG(seed)
	for i := uint64(0); i < 50; i++ {
		want := seq.Uint64() // i-th draw == seed of the (i+1)-th sequential Split
		if got := StreamSeed(seed, i); got != want {
			t.Fatalf("StreamSeed(%d, %d) = %#x, want %#x", seed, i, got, want)
		}
	}
}

// Split streams must not correlate or collide: across 8 children x
// 1e5 draws every value is distinct (SplitMix64 is a bijection per
// stream; cross-stream collisions at this volume would mean the
// streams overlap), and each stream's Float64 mean sits near 1/2.
func TestRNGSplitStreamIndependence(t *testing.T) {
	const (
		streams = 8
		draws   = 100000
	)
	parent := NewRNG(2024)
	seen := make(map[uint64]struct{}, streams*draws)
	for s := 0; s < streams; s++ {
		child := parent.Split()
		var sum float64
		for i := 0; i < draws; i++ {
			v := child.Uint64()
			if _, dup := seen[v]; dup {
				t.Fatalf("stream %d draw %d: value %#x already produced by another stream", s, i, v)
			}
			seen[v] = struct{}{}
			sum += float64(v>>11) / float64(1<<53)
		}
		if mean := sum / draws; mean < 0.49 || mean > 0.51 {
			t.Errorf("stream %d mean %v outside [0.49, 0.51]", s, mean)
		}
	}
	// Pairwise lag-0 correlation proxy: identical prefixes would have
	// been caught by the collision set; additionally the XOR of first
	// draws across streams must not vanish.
	first := make([]uint64, streams)
	p2 := NewRNG(2024)
	for s := range first {
		first[s] = p2.Split().Uint64()
	}
	for i := 0; i < streams; i++ {
		for j := i + 1; j < streams; j++ {
			if first[i] == first[j] {
				t.Errorf("streams %d and %d share their first draw", i, j)
			}
		}
	}
}
