// Package metrics provides the small measurement toolkit the
// experiment harness uses: aligned-text tables (every experiment
// prints one), distributions with quantiles, and a deterministic
// seedable RNG so workloads are reproducible without math/rand's
// global state.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Rows returns the formatted rows (for tests).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render produces the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Dist collects samples and reports quantiles.
type Dist struct {
	samples []float64
}

// Add appends a sample.
func (d *Dist) Add(v float64) { d.samples = append(d.samples, v) }

// Merge folds other's samples into d, so per-shard Dists combine
// into exactly the Dist a single collector would have built: every
// statistic (Mean, Quantile, Max) of the merged Dist equals the
// statistic over the concatenated sample sets.
func (d *Dist) Merge(other *Dist) {
	if other == nil {
		return
	}
	d.samples = append(d.samples, other.samples...)
}

// MarshalJSON serializes the raw samples as a JSON array, so a
// shard's Dist can cross a process boundary (a checkpoint sidecar, a
// worker response) and merge exactly: Go emits the shortest decimal
// that round-trips each float64, making decode(encode(d)) sample-for-
// sample identical to d. An empty Dist encodes as [], not null, so
// the canonical bytes don't depend on whether Add was ever called.
func (d Dist) MarshalJSON() ([]byte, error) {
	if d.samples == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(d.samples)
}

// UnmarshalJSON restores a Dist serialized by MarshalJSON.
func (d *Dist) UnmarshalJSON(data []byte) error {
	var samples []float64
	if err := json.Unmarshal(data, &samples); err != nil {
		return err
	}
	d.samples = samples
	return nil
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.samples) }

// Mean returns the arithmetic mean (0 for empty).
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range d.samples {
		s += v
	}
	return s / float64(len(d.samples))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest-rank.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), d.samples...)
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Max returns the maximum sample (0 for empty).
func (d *Dist) Max() float64 {
	m := 0.0
	for i, v := range d.samples {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// RNG is a SplitMix64 deterministic generator: tiny, seedable, and
// free of global state, so parallel workloads stay reproducible.
type RNG struct {
	state uint64
}

// splitmixGamma is SplitMix64's golden-ratio increment; the state
// walks this arithmetic progression and every output is a bijective
// finalizer of a state point, which is what makes random-access
// stream derivation (StreamSeed) possible.
const splitmixGamma = 0x9e3779b97f4a7c15

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Reseed rewinds the generator to the given seed in place, so hot
// paths (the fleet trial loop) can reuse one RNG value per worker
// instead of allocating a fresh generator per trial. After
// r.Reseed(s), r's draw sequence is exactly NewRNG(s)'s.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// Uint64 returns the next value.
func (r *RNG) Uint64() uint64 {
	r.state += splitmixGamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Split derives an independent child generator (for per-worker
// streams).
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// StreamSeed is Split generalized to random access: StreamSeed(s, i)
// equals the seed that NewRNG(s)'s (i+1)-th sequential Split would
// use (its i-th Uint64 draw, 0-indexed) — without drawing the i
// predecessors. Sharded executors use it to key trial i's stream by
// index, so every trial's randomness is independent of worker count,
// scheduling order, and which shard ran it.
func StreamSeed(seed, i uint64) uint64 {
	r := RNG{state: seed + i*splitmixGamma}
	return r.Uint64()
}
