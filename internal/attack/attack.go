// Package attack models adversaries as first-class scenario data,
// symmetric to workload.MixSpec: a Spec is a strict-decoded JSON
// description of a multi-step attacker campaign — recon via /proc
// and squeue, /tmp name harvesting, portal-hop pivots, UBF probing,
// container-escape attempts, GPU-residue harvesting, and the
// abstract-socket/RDMA residual channels — composed from a registry
// of named steps. Each step reuses the audit.Probe machinery (the
// same attempt shape the LeakScan battery runs), but where LeakScan
// executes a fixed battery against an idle cluster, a campaign
// interleaves its steps with a live legitimate workload: the engine
// (engine.go) paces steps with gaps drawn from the campaign's own
// metrics.RNG stream and advances the shared cluster clock between
// them, so the attacker runs *concurrently* with the mix and every
// outcome is deterministic per (scenario, replication).
//
// The paper's Results section argues qualitatively which cross-user
// channels stay closed; campaigns turn that into measured
// distributions — attacker success rate, steps-to-first-leak, and
// detection latency (audit.Event/audit.Log make the denials
// first-class, tick-stamped observations) — rendered as the E17
// attacker-model × profile/ablation matrix in internal/experiments.
package attack

import (
	"fmt"
	"strings"
)

// DefaultGapTicks is the pacing bound when Spec.GapTicks is unset:
// before each step the attacker lies low for 1..DefaultGapTicks
// cluster ticks drawn from its RNG stream.
const DefaultGapTicks = 3

// StreamIndex is the StreamSeed index of the attacker's RNG stream
// under a trial's seed. The attacker draws from its own stream — not
// the mix's — so adding or removing attack steps never perturbs the
// workload's draws, and vice versa: the determinism contract
// factorizes per stream.
const StreamIndex = 0x61747461636b /* "attack" */

// Spec is the declarative JSON description of one attacker campaign:
// a named model executing an ordered list of registry steps. It is
// the `attack` field of a fleet.Scenario, strict-decoded like the
// rest of the campaign file (unknown fields and unknown step names
// are load-time errors, not mid-run surprises on worker 7).
type Spec struct {
	// Model names the attacker model (e.g. "insider-recon",
	// "kill-chain") — a label for tables and event logs, not a key
	// into any registry.
	Model string `json:"model"`
	// Steps is the campaign's ordered step-name list; every name must
	// exist in the step registry (see Steps). Order is the kill
	// chain: StepsToFirstLeak counts down this list.
	Steps []string `json:"steps"`
	// GapTicks bounds the random pacing between steps: before each
	// step the attacker advances the cluster 1..GapTicks ticks drawn
	// from the campaign's RNG stream. 0 means DefaultGapTicks.
	GapTicks int `json:"gap_ticks,omitempty"`
}

// Validate rejects specs that could not run: a missing model label,
// an empty or duplicated step list, unknown step names, or a
// negative gap. Unknown step names carry the full registry in the
// error, like core's unknown-measure errors.
func (s Spec) Validate() error {
	if s.Model == "" {
		return fmt.Errorf("attack: spec has no model name")
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("attack: model %q has no steps", s.Model)
	}
	if s.GapTicks < 0 {
		return fmt.Errorf("attack: model %q: gap_ticks must be >= 0 (got %d)", s.Model, s.GapTicks)
	}
	seen := make(map[string]bool, len(s.Steps))
	for _, name := range s.Steps {
		if _, err := StepByName(name); err != nil {
			return fmt.Errorf("attack: model %q: %w", s.Model, err)
		}
		if seen[name] {
			return fmt.Errorf("attack: model %q: duplicate step %q (steps-to-first-leak would double-count it)", s.Model, name)
		}
		seen[name] = true
	}
	return nil
}

// Compiled is a Spec resolved against the step registry once —
// trial-invariant, shared read-only across workers — so the per-trial
// hot path never re-validates names or re-walks the registry (the
// same hoisting discipline as fleet's compiledScenario).
type Compiled struct {
	Model string
	Steps []Step
	Gap   int
}

// Compile resolves the spec's step names. It validates first, so a
// Compiled value is runnable by construction.
func (s Spec) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Model: s.Model, Gap: s.GapTicks}
	if c.Gap == 0 {
		c.Gap = DefaultGapTicks
	}
	c.Steps = make([]Step, len(s.Steps))
	for i, name := range s.Steps {
		st, err := StepByName(name)
		if err != nil {
			return nil, err
		}
		c.Steps[i] = st
	}
	return c, nil
}

// Models returns the built-in attacker models, in listing order:
// four focused adversaries plus the full kill chain. These are the
// rows of the E17 matrix and the values of the CLIs' -attack flags.
func Models() []Spec {
	return []Spec{
		{Model: "insider-recon", Steps: []string{"recon-proc", "recon-squeue", "tmp-harvest"}},
		{Model: "data-thief", Steps: []string{"home-probe", "symlink-plant", "container-escape"}},
		{Model: "lateral-movement", Steps: []string{"node-roam", "ubf-probe", "portal-pivot", "rdma-pivot"}},
		{Model: "scavenger", Steps: []string{"tmp-harvest", "abstract-probe", "gpu-residue"}},
		{Model: "kill-chain", Steps: []string{
			"recon-proc", "recon-squeue", "tmp-harvest", "node-roam",
			"home-probe", "symlink-plant", "ubf-probe", "portal-pivot",
			"abstract-probe", "rdma-pivot", "gpu-residue", "container-escape",
		}},
	}
}

// ModelByName resolves a built-in attacker model.
func ModelByName(name string) (Spec, error) {
	for _, m := range Models() {
		if m.Model == name {
			return m, nil
		}
	}
	var names []string
	for _, m := range Models() {
		names = append(names, m.Model)
	}
	return Spec{}, fmt.Errorf("attack: unknown model %q (have %s)", name, strings.Join(names, ", "))
}
