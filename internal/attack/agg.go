package attack

import (
	"fmt"

	"repro/internal/metrics"
)

// Agg is the mergeable campaign aggregate — fleet's per-scenario
// attack statistics, built from fixed-size per-trial Outcomes the
// same way ScenarioResult accumulates the drain metrics. Field order
// is the canonical JSON layout; the maps marshal with sorted keys
// (encoding/json's contract), so Agg JSON is deterministic and the
// fleet byte-identity guarantees extend to attacked campaigns.
type Agg struct {
	// Trials counts successful trials aggregated here; a degraded
	// (panic-failed) trial contributes an empty Agg with Trials 0.
	Trials int `json:"trials"`
	// Successes counts trials with at least one non-residual leak;
	// Detected counts trials where some step was denied.
	Successes int `json:"successes"`
	Detected  int `json:"detected"`
	// ResidualLeaks sums residual-channel leaks over trials.
	ResidualLeaks int `json:"residual_leaks"`
	// StepsToFirstLeak accumulates, over successful trials only, the
	// 1-based index of the first non-residual leaking step.
	StepsToFirstLeak metrics.Acc `json:"steps_to_first_leak"`
	// DetectionLatency accumulates, over detected trials only, the
	// tick distance from campaign start to the first denial.
	DetectionLatency metrics.Acc `json:"detection_latency"`
	// StepLeaks counts non-residual leaks by step name;
	// ChannelLeaks counts all leaks (residual included) by channel.
	StepLeaks    map[string]int `json:"step_leaks"`
	ChannelLeaks map[string]int `json:"channel_leaks"`
}

// NewAgg returns an empty aggregate with both maps materialized, so
// an attack scenario's JSON shape is identical whether or not any
// step ever leaked (`{}`, not `null`).
func NewAgg() *Agg {
	return &Agg{StepLeaks: make(map[string]int), ChannelLeaks: make(map[string]int)}
}

// AddOutcome folds one trial in.
func (a *Agg) AddOutcome(o *Outcome) {
	a.Trials++
	if o.Success {
		a.Successes++
		a.StepsToFirstLeak.Add(float64(o.StepsToFirstLeak))
	}
	if o.Detected {
		a.Detected++
		a.DetectionLatency.Add(float64(o.DetectionTick - o.StartTick))
	}
	a.ResidualLeaks += o.ResidualLeaks
	for k, v := range o.StepLeaks {
		a.StepLeaks[k] += v
	}
	for k, v := range o.ChannelLeaks {
		a.ChannelLeaks[k] += v
	}
}

// Merge folds another aggregate of the same scenario in. Like
// ScenarioResult.Merge, call order is the caller's determinism
// contract (fleet merges in trial-index order).
func (a *Agg) Merge(o *Agg) {
	a.Trials += o.Trials
	a.Successes += o.Successes
	a.Detected += o.Detected
	a.ResidualLeaks += o.ResidualLeaks
	a.StepsToFirstLeak.Merge(o.StepsToFirstLeak)
	a.DetectionLatency.Merge(o.DetectionLatency)
	if a.StepLeaks == nil {
		a.StepLeaks = make(map[string]int)
	}
	if a.ChannelLeaks == nil {
		a.ChannelLeaks = make(map[string]int)
	}
	for k, v := range o.StepLeaks {
		a.StepLeaks[k] += v
	}
	for k, v := range o.ChannelLeaks {
		a.ChannelLeaks[k] += v
	}
}

// Clone deep-copies the aggregate (the maps are its reference
// fields) so checkpoint-restored partials never alias merge targets.
func (a *Agg) Clone() *Agg {
	c := *a
	c.StepLeaks = make(map[string]int, len(a.StepLeaks))
	for k, v := range a.StepLeaks {
		c.StepLeaks[k] = v
	}
	c.ChannelLeaks = make(map[string]int, len(a.ChannelLeaks))
	for k, v := range a.ChannelLeaks {
		c.ChannelLeaks[k] = v
	}
	return &c
}

// Summary renders the aggregate as a compact table cell:
// "2/3 leak@1.0 det@4.5".
func (a *Agg) Summary() string {
	s := fmt.Sprintf("%d/%d", a.Successes, a.Trials)
	if a.Successes > 0 {
		s += fmt.Sprintf(" leak@%.1f", a.StepsToFirstLeak.Mean)
	}
	if a.Detected > 0 {
		s += fmt.Sprintf(" det@%.1f", a.DetectionLatency.Mean)
	}
	return s
}
