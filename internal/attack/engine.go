package attack

import (
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Outcome is one executed campaign: the per-trial record fleet
// aggregates into an Agg. Success means at least one NON-residual
// leak — the paper concedes the residual channels, so an attacker
// who only harvests those has not broken the separation claim.
type Outcome struct {
	Model string
	// Steps is how many campaign steps executed.
	Steps int
	// Leaks counts leaked steps, residual included; ResidualLeaks is
	// the residual share.
	Leaks         int
	ResidualLeaks int
	// Success indicates at least one non-residual leak.
	Success bool
	// StepsToFirstLeak is the 1-based index of the first
	// non-residual leaking step in campaign order; 0 = the chain
	// never broke through.
	StepsToFirstLeak int
	// Detected indicates some step was denied by an enforcing
	// control — the earliest signal a defender could alert on.
	// DetectionTick is the cluster tick of the first denial (-1 when
	// nothing was denied), StartTick the campaign's first tick, so
	// DetectionTick-StartTick is the detection latency.
	Detected      bool
	DetectionTick int64
	StartTick     int64
	// TicksUsed is how many cluster ticks the campaign consumed
	// (pacing gaps plus in-step waiting), all shared with the
	// concurrently-draining mix.
	TicksUsed int64
	// StepLeaks counts non-residual leaks by step name — the E17
	// diagonal's evidence: an ablation reopens exactly its own
	// steps. ChannelLeaks counts ALL leaks (residual included) by
	// audit channel.
	StepLeaks    map[string]int
	ChannelLeaks map[string]int
	// Events is the campaign's tick-stamped attempt log.
	Events []audit.Event
}

// Execute runs the campaign against a live cluster. The cluster may
// (and in fleet trials does) carry a concurrently-running legitimate
// mix: steps and pacing gaps advance the shared cluster clock, so
// the attacker and the workload interleave. rng must be the
// campaign's own stream (fleet derives it via StreamIndex from the
// trial seed) — the engine draws exactly one gap per step from it,
// regardless of cluster state, so draw counts never couple the
// attacker's stream to the mix's.
//
// maxTicks bounds the pacing gaps (a campaign never idles past the
// trial horizon); step-internal waits are small constants. Execution
// is deterministic: same cluster state, spec and rng seed — same
// Outcome, same audit.Report, byte for byte.
func (cs *Compiled) Execute(c *core.Cluster, rng *metrics.RNG, maxTicks int) (*Outcome, *audit.Report, error) {
	ss, err := newSession(c)
	if err != nil {
		return nil, nil, err
	}
	defer ss.close()
	log := audit.NewLog()
	start := c.Now()
	out := &Outcome{
		Model:         cs.Model,
		DetectionTick: -1,
		StartTick:     start,
		StepLeaks:     make(map[string]int),
		ChannelLeaks:  make(map[string]int),
	}
	rep := &audit.Report{ConfigName: c.Cfg.Name + " vs " + cs.Model}
	for i, st := range cs.Steps {
		// Lie low for 1..Gap ticks while the mix keeps draining. The
		// draw happens unconditionally — one per step — so the
		// attacker stream's consumption is a function of the spec
		// alone; only the *advance* is budget-capped.
		gap := 1 + rng.Intn(cs.Gap)
		for g := 0; g < gap && c.Now()-start < int64(maxTicks); g++ {
			c.Step()
		}
		p := st.Probe(ss)
		leaked, detail := p.Attempt()
		rep.Results = append(rep.Results, audit.Result{Probe: p, Leaked: leaked, Detail: detail})
		log.Record(audit.Event{
			Tick: c.Now(), Step: st.Name, Channel: st.Channel,
			Residual: st.Residual, Leaked: leaked, Detail: detail,
		})
		out.Steps++
		if leaked {
			out.Leaks++
			out.ChannelLeaks[string(st.Channel)]++
			if st.Residual {
				out.ResidualLeaks++
			} else {
				out.StepLeaks[st.Name]++
				if !out.Success {
					out.Success = true
					out.StepsToFirstLeak = i + 1
				}
			}
		} else if !out.Detected {
			out.Detected = true
			out.DetectionTick = c.Now()
		}
	}
	out.TicksUsed = c.Now() - start
	out.Events = log.Events()
	return out, rep, nil
}
