package attack

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// attackTopo mirrors the LeakScan test geometry: room for the
// victim's eternal job, GPU jobs, and two login nodes so the attacker
// works from a different login than the victim.
func attackTopo() core.Topology {
	return core.Topology{ComputeNodes: 4, LoginNodes: 2, CoresPerNode: 8, MemPerNode: 1 << 20, GPUsPerNode: 2}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr string // "" = valid
	}{
		{name: "valid", spec: Spec{Model: "m", Steps: []string{"recon-proc"}}},
		{name: "valid with gap", spec: Spec{Model: "m", Steps: []string{"recon-proc"}, GapTicks: 7}},
		{name: "no model", spec: Spec{Steps: []string{"recon-proc"}}, wantErr: "no model name"},
		{name: "no steps", spec: Spec{Model: "m"}, wantErr: "has no steps"},
		{name: "negative gap", spec: Spec{Model: "m", Steps: []string{"recon-proc"}, GapTicks: -1}, wantErr: "gap_ticks"},
		{name: "unknown step", spec: Spec{Model: "m", Steps: []string{"warp-core-breach"}}, wantErr: `unknown step "warp-core-breach"`},
		{name: "duplicate step", spec: Spec{Model: "m", Steps: []string{"recon-proc", "recon-proc"}}, wantErr: "duplicate step"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				if _, err := tc.spec.Compile(); err != nil {
					t.Fatalf("Compile() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
			if _, err := tc.spec.Compile(); err == nil {
				t.Fatalf("Compile() accepted a spec Validate rejects")
			}
		})
	}
}

func TestCompileDefaultsGap(t *testing.T) {
	c, err := Spec{Model: "m", Steps: []string{"recon-proc"}}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Gap != DefaultGapTicks {
		t.Errorf("default gap = %d, want %d", c.Gap, DefaultGapTicks)
	}
	c, err = Spec{Model: "m", Steps: []string{"recon-proc"}, GapTicks: 9}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Gap != 9 {
		t.Errorf("explicit gap = %d, want 9", c.Gap)
	}
}

func TestStepRegistrySorted(t *testing.T) {
	steps := Steps()
	if len(steps) != 12 {
		t.Fatalf("registry has %d steps, want 12 (update DESIGN.md §10 if you add steps)", len(steps))
	}
	if !sort.SliceIsSorted(steps, func(i, j int) bool { return steps[i].Name < steps[j].Name }) {
		t.Error("Steps() is not sorted by name")
	}
	names := StepNames()
	if !sort.StringsAreSorted(names) {
		t.Error("StepNames() is not sorted")
	}
	for i, st := range steps {
		if st.Name != names[i] {
			t.Errorf("Steps()[%d] = %q, StepNames()[%d] = %q", i, st.Name, i, names[i])
		}
		if st.Summary == "" {
			t.Errorf("step %q has no summary", st.Name)
		}
	}
}

func TestModelsValidateAndKillChainCoversRegistry(t *testing.T) {
	models := Models()
	if len(models) != 5 {
		t.Fatalf("Models() has %d entries, want 5", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("built-in model %q does not validate: %v", m.Model, err)
		}
		if _, err := ModelByName(m.Model); err != nil {
			t.Errorf("ModelByName(%q): %v", m.Model, err)
		}
	}
	chain, err := ModelByName("kill-chain")
	if err != nil {
		t.Fatal(err)
	}
	got := append([]string(nil), chain.Steps...)
	sort.Strings(got)
	if want := StepNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("kill-chain steps = %v, want the full registry %v", got, want)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Error("ModelByName accepted an unknown model")
	}
}

// TestExecuteBaselineKillChain is the paper's "before" picture at
// campaign granularity: on a stock cluster every step of the kill
// chain leaks and nothing is ever denied.
func TestExecuteBaselineKillChain(t *testing.T) {
	chain := mustCompile(t, "kill-chain")
	c := core.MustNew(core.Baseline(), attackTopo())
	var rng metrics.RNG
	rng.Reseed(1)
	out, rep, err := chain.Execute(c, &rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Steps != 12 || out.Leaks != 12 {
		t.Fatalf("baseline kill-chain: %d/%d steps leaked, want 12/12\n%s",
			out.Leaks, out.Steps, rep.Table().Render())
	}
	if out.ResidualLeaks != 3 {
		t.Errorf("residual leaks = %d, want 3", out.ResidualLeaks)
	}
	if !out.Success || out.StepsToFirstLeak != 1 {
		t.Errorf("Success=%v StepsToFirstLeak=%d, want true/1", out.Success, out.StepsToFirstLeak)
	}
	if out.Detected || out.DetectionTick != -1 {
		t.Errorf("baseline detected the attacker (tick %d)? nothing should deny", out.DetectionTick)
	}
	if len(out.Events) != 12 {
		t.Errorf("event log has %d entries, want 12", len(out.Events))
	}
}

// TestExecuteEnhancedKillChain is the headline claim: under the full
// measure set the campaign breaks through on no non-residual channel,
// only the three acknowledged residuals leak, and the first denial
// provides a detection signal.
func TestExecuteEnhancedKillChain(t *testing.T) {
	chain := mustCompile(t, "kill-chain")
	c := core.MustNew(core.Enhanced(), attackTopo())
	var rng metrics.RNG
	rng.Reseed(1)
	out, rep, err := chain.Execute(c, &rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Success || out.StepsToFirstLeak != 0 {
		t.Fatalf("enhanced kill-chain broke through (first leak at step %d):\n%s",
			out.StepsToFirstLeak, rep.Table().Render())
	}
	if len(out.StepLeaks) != 0 {
		t.Errorf("non-residual step leaks under enhanced: %v", out.StepLeaks)
	}
	if out.Leaks != 3 || out.ResidualLeaks != 3 {
		t.Errorf("leaks = %d (residual %d), want exactly the 3 residual channels\n%s",
			out.Leaks, out.ResidualLeaks, rep.Table().Render())
	}
	if !out.Detected || out.DetectionTick < out.StartTick {
		t.Errorf("no detection signal (detected=%v tick=%d start=%d)", out.Detected, out.DetectionTick, out.StartTick)
	}
}

// TestExecuteDeterministic: identical cluster, spec and RNG seed give
// identical outcomes — the per-trial contract the fleet byte-identity
// guarantee is built on.
func TestExecuteDeterministic(t *testing.T) {
	run := func() *Outcome {
		chain := mustCompile(t, "kill-chain")
		c := core.MustNew(core.Enhanced(), attackTopo())
		var rng metrics.RNG
		rng.Reseed(42)
		out, _, err := chain.Execute(c, &rng, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identically-seeded campaigns diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestExecuteGapDraws: the engine draws exactly one gap per step from
// the campaign stream no matter what the cluster does, so the
// attacker's stream consumption is a function of the spec alone.
func TestExecuteGapDraws(t *testing.T) {
	spec := Spec{Model: "probe", Steps: []string{"recon-proc", "home-probe"}, GapTicks: 5}
	cs, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := core.MustNew(core.Enhanced(), attackTopo())
	var rng, ref metrics.RNG
	rng.Reseed(7)
	ref.Reseed(7)
	if _, _, err := cs.Execute(c, &rng, 4000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(spec.Steps); i++ {
		ref.Intn(cs.Gap)
	}
	if got, want := rng.Intn(1<<30), ref.Intn(1<<30); got != want {
		t.Errorf("attack stream consumed a different draw count than len(steps)")
	}
}

func TestAggMergeMatchesSequentialAdd(t *testing.T) {
	chain := mustCompile(t, "kill-chain")
	outs := make([]*Outcome, 3)
	for i := range outs {
		var c *core.Cluster
		if i == 1 {
			c = core.MustNew(core.Enhanced(), attackTopo())
		} else {
			c = core.MustNew(core.Baseline(), attackTopo())
		}
		var rng metrics.RNG
		rng.Reseed(uint64(100 + i))
		out, _, err := chain.Execute(c, &rng, 4000)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = out
	}
	all := NewAgg()
	for _, o := range outs {
		all.AddOutcome(o)
	}
	left, right := NewAgg(), NewAgg()
	left.AddOutcome(outs[0])
	right.AddOutcome(outs[1])
	right.AddOutcome(outs[2])
	left.Merge(right)
	aj, _ := json.Marshal(all)
	mj, _ := json.Marshal(left)
	if string(aj) != string(mj) {
		t.Errorf("merged aggregate differs from sequential:\n%s\nvs\n%s", mj, aj)
	}
	if all.Trials != 3 || all.Successes != 2 || all.Detected != 1 {
		t.Errorf("aggregate = %d trials / %d successes / %d detected, want 3/2/1", all.Trials, all.Successes, all.Detected)
	}
	clone := all.Clone()
	clone.StepLeaks["recon-proc"] += 100
	if all.StepLeaks["recon-proc"] == clone.StepLeaks["recon-proc"] {
		t.Error("Clone shares its StepLeaks map with the original")
	}
}

func TestAggJSONShapeStable(t *testing.T) {
	// An empty aggregate must render materialized maps ({}, not null):
	// attacked scenarios keep one JSON shape whether or not any step
	// ever leaked, and a checkpoint round-trip preserves it.
	data, err := json.Marshal(NewAgg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"step_leaks":{}`, `"channel_leaks":{}`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("empty Agg JSON %s missing %s", data, want)
		}
	}
	var back Agg
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	redata, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(redata) != string(data) {
		t.Errorf("Agg JSON does not round-trip: %s vs %s", redata, data)
	}
}

func mustCompile(t *testing.T, model string) *Compiled {
	t.Helper()
	spec, err := ModelByName(model)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestKillChainAblationDiagonal is the E17 diagonal at step
// granularity: dropping exactly one measure from the enhanced set
// reopens exactly that measure's attack steps — nothing else — and
// the ubf row shows the defense-in-depth coupling (the portal hop
// rides the user-bound firewall, so ablating ubf reopens both).
func TestKillChainAblationDiagonal(t *testing.T) {
	diagonal := map[string][]string{
		"hidepid":            {"recon-proc"},
		"privatedata":        {"recon-squeue"},
		"wholenode":          {"node-roam"},
		"smask":              {"home-probe"},
		"protected-symlinks": {"symlink-plant"},
		"ubf":                {"ubf-probe", "portal-pivot"},
		"portal":             {"portal-pivot"},
		"gpu":                {"gpu-residue"},
		"container":          {"container-escape"},
	}
	chain := mustCompile(t, "kill-chain")
	for _, m := range core.Measures() {
		t.Run("-"+m.Name, func(t *testing.T) {
			want, ok := diagonal[m.Name]
			if !ok {
				t.Fatalf("measure %q has no diagonal expectation (new measure? add its attack steps)", m.Name)
			}
			c := core.MustNewWithProfile(core.EnhancedProfile(), core.Without(m.Name))
			var rng metrics.RNG
			rng.Reseed(11)
			out, rep, err := chain.Execute(c, &rng, 4000)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for name := range out.StepLeaks {
				got = append(got, name)
			}
			sort.Strings(got)
			sort.Strings(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("-%s reopened %v, want %v\n%s", m.Name, got, want, rep.Table().Render())
			}
		})
	}
}
