package attack

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/audit"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/portal"
	"repro/internal/sched"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// Step is one registry entry: a named attack technique bound to the
// audit channel it exercises. The attempt closure runs against a
// campaign session; its (leaked, detail) shape is exactly
// audit.Probe's, and the engine wraps each step in a Probe so a
// campaign's results render through the same Report machinery as the
// LeakScan battery.
type Step struct {
	// Name is the registry key campaigns reference in Spec.Steps.
	Name string
	// Channel is the audit channel the step attacks.
	Channel audit.Channel
	// Residual marks the channels the paper concedes stay open under
	// the enhanced configuration; residual leaks never count toward
	// campaign success.
	Residual bool
	// Summary is a one-line description for CLI listings.
	Summary string

	attempt func(ss *session) (leaked bool, detail string)
}

// Probe binds the step to a session as an audit.Probe — the bridge
// between the campaign engine and the audit machinery.
func (st Step) Probe(ss *session) audit.Probe {
	return audit.Probe{
		Channel: st.Channel, Name: st.Name, Residual: st.Residual,
		Attempt: func() (bool, string) { return st.attempt(ss) },
	}
}

// secretToken is the marker every victim secret carries; a step
// leaks when the attacker can observe it (or the access control that
// should have hidden it admits the attempt).
const secretToken = "VICTIM-SECRET-E17"

// stepRegistry holds every known attack step. Listing order is
// alphabetical by name (enforced by Steps' sort and pinned by test)
// so CLI output is stable; execution order is the campaign's.
var stepRegistry = []Step{
	{
		Name: "recon-proc", Channel: audit.ChanProcess,
		Summary: "list /proc on the victim's login node and read foreign cmdlines",
		attempt: (*session).reconProc,
	},
	{
		Name: "recon-squeue", Channel: audit.ChanScheduler,
		Summary: "enumerate foreign jobs (and their command lines) via squeue",
		attempt: (*session).reconSqueue,
	},
	{
		Name: "tmp-harvest", Channel: audit.ChanTmpNames, Residual: true,
		Summary: "harvest victim file names from the world-writable /tmp listing",
		attempt: (*session).tmpHarvest,
	},
	{
		Name: "node-roam", Channel: audit.ChanScheduler,
		Summary: "ssh to the victim's compute node without holding a job there",
		attempt: (*session).nodeRoam,
	},
	{
		Name: "home-probe", Channel: audit.ChanFS,
		Summary: "read a results file out of the victim's home directory",
		attempt: (*session).homeProbe,
	},
	{
		Name: "symlink-plant", Channel: audit.ChanFS,
		Summary: "plant a /tmp symlink where the victim's job writes, clobbering their results",
		attempt: (*session).symlinkPlant,
	},
	{
		Name: "ubf-probe", Channel: audit.ChanNetwork,
		Summary: "dial the victim's network service on its compute node cross-user",
		attempt: (*session).ubfProbe,
	},
	{
		Name: "portal-pivot", Channel: audit.ChanPortal,
		Summary: "authenticate to the web portal and forward into the victim's app",
		attempt: (*session).portalPivot,
	},
	{
		Name: "abstract-probe", Channel: audit.ChanAbstract, Residual: true,
		Summary: "inject a datagram into the victim's abstract-namespace socket",
		attempt: (*session).abstractProbe,
	},
	{
		Name: "rdma-pivot", Channel: audit.ChanRDMACM, Residual: true,
		Summary: "establish an RDMA QP to the victim's node via native CM, under the firewall",
		attempt: (*session).rdmaPivot,
	},
	{
		Name: "gpu-residue", Channel: audit.ChanGPU,
		Summary: "read the previous GPU job's device memory after the victim's job ends",
		attempt: (*session).gpuResidue,
	},
	{
		Name: "container-escape", Channel: audit.ChanContainer,
		Summary: "run a container without approval and read the victim's home from inside",
		attempt: (*session).containerEscape,
	},
}

// Steps returns the registry sorted by name. The slice is a copy.
func Steps() []Step {
	steps := append([]Step(nil), stepRegistry...)
	sort.Slice(steps, func(i, j int) bool { return steps[i].Name < steps[j].Name })
	return steps
}

// StepByName resolves a registry step.
func StepByName(name string) (Step, error) {
	for _, st := range stepRegistry {
		if st.Name == name {
			return st, nil
		}
	}
	return Step{}, fmt.Errorf("unknown step %q (have %s)", name, strings.Join(StepNames(), ", "))
}

// StepNames lists the registry names, sorted, for error messages and
// CLI usage strings.
func StepNames() []string {
	names := make([]string, 0, len(stepRegistry))
	for _, st := range stepRegistry {
		names = append(names, st.Name)
	}
	sort.Strings(names)
	return names
}

// session is one campaign's execution state: the cluster under
// attack, the provisioned victim and attacker accounts, and the
// victim's lazily-materialized activity. Steps set up exactly the
// victim state they target (memoized, so a kill chain's later steps
// reuse the recon steps' scenery), which keeps each step meaningful
// standalone AND keeps the cluster work — hence the trial's
// determinism-relevant event sequence — a pure function of the
// campaign's step list.
type session struct {
	c        *core.Cluster
	victim   *core.User
	attacker *core.User
	login    *simos.Node
	vctx     vfs.Context
	actx     vfs.Context

	vproc      *simos.Process // victim login process with a secret argv
	vjobID     int            // long-running victim batch job (0 = not yet)
	vjobNode   string
	vlistening bool // victim TCP service on vjobNode:victimSvcPort
	vsock      *netsim.AbstractSocket
	vrouted    bool // victim web app + portal route registered
	homeSeeded bool
	tmpSeeded  bool
	imported   bool // container image imported
}

// Victim service ports, disjoint per subsystem like the LeakScan
// scenario's.
const (
	victimSvcPort = 5000
	victimAppPort = 8888
)

// newSession provisions the campaign's two extra accounts on the
// trial's cluster. The names are distinct from the mix's "u<N>"
// scheme, so an attack rides alongside any legitimate workload.
func newSession(c *core.Cluster) (*session, error) {
	victim, err := c.AddUser("victim", "victim-pw")
	if err != nil {
		return nil, err
	}
	attacker, err := c.AddUser("adv", "adv-pw")
	if err != nil {
		return nil, err
	}
	return &session{
		c: c, victim: victim, attacker: attacker,
		login: c.Logins[0],
		vctx:  vfs.Ctx(victim.Cred), actx: vfs.Ctx(attacker.Cred),
	}, nil
}

// close cancels the victim's open-ended job so an attacked trial's
// drain measures the mix, not a sentinel job parked at the horizon.
func (ss *session) close() {
	if ss.vjobID != 0 {
		_ = ss.c.Sched.Cancel(ss.victim.Cred, ss.vjobID)
	}
}

// victimJob lazily submits the victim's long-running batch job (its
// command line carries a secret) and waits — stepping the live
// cluster, mix and all — until it places. Returns the job's node.
func (ss *session) victimJob() (string, error) {
	if ss.vjobID != 0 {
		return ss.vjobNode, nil
	}
	vj, err := ss.c.Sched.Submit(ss.victim.Cred, sched.JobSpec{
		Name: "victim-sim", Command: "simulate --token=" + secretToken,
		Cores: 1, MemB: 1, Duration: 1 << 30,
	})
	if err != nil {
		return "", fmt.Errorf("victim job rejected: %v", err)
	}
	for i := 0; i < 64; i++ {
		j, err := ss.c.Sched.Job(vj.ID)
		if err != nil {
			return "", err
		}
		if j.State == sched.Running {
			ss.vjobID = vj.ID
			ss.vjobNode = j.Nodes[0]
			return ss.vjobNode, nil
		}
		ss.c.Step()
	}
	_ = ss.c.Sched.Cancel(ss.victim.Cred, vj.ID)
	return "", fmt.Errorf("victim job never placed (cluster saturated)")
}

// attackerHost is the host the attacker works from: the last login
// node, away from the victim's login0.
func (ss *session) attackerHost() (*netsim.Host, error) {
	return ss.c.Host(ss.c.Logins[len(ss.c.Logins)-1].Name)
}

func (ss *session) reconProc() (bool, string) {
	if ss.vproc == nil {
		ss.vproc = ss.login.Procs.Spawn(ss.victim.Cred, 1, "analyze", "--token="+secretToken)
	}
	view := ss.c.Proc[ss.login.Name]
	// The foreign pid appearing in readdir is itself the leak (under
	// hidepid=1 List returns redacted stubs, so match by PID).
	for _, p := range view.List(ss.attacker.Cred) {
		if p.PID != ss.vproc.PID {
			continue
		}
		if cl, err := view.ReadCmdline(ss.attacker.Cred, ss.vproc.PID); err == nil && strings.Contains(cl, secretToken) {
			return true, "victim pid listed and secret cmdline read"
		}
		return true, fmt.Sprintf("victim pid %d listed", ss.vproc.PID)
	}
	return false, "no foreign pids in /proc listing"
}

func (ss *session) reconSqueue() (bool, string) {
	if _, err := ss.victimJob(); err != nil {
		return false, err.Error()
	}
	for _, j := range ss.c.Sched.Squeue(ss.attacker.Cred) {
		if j.User == ss.victim.UID {
			if strings.Contains(j.Spec.Command, secretToken) {
				return true, fmt.Sprintf("job %d visible with secret command line", j.ID)
			}
			return true, fmt.Sprintf("foreign job %d visible", j.ID)
		}
	}
	return false, "no foreign jobs in squeue"
}

func (ss *session) tmpHarvest() (bool, string) {
	if !ss.tmpSeeded {
		if err := ss.c.NS[ss.login.Name].WriteFile(ss.vctx, "/tmp/victim-campaign-run1.tmp", []byte("victim-tmp-data"), 0o644); err != nil {
			return false, err.Error()
		}
		ss.tmpSeeded = true
	}
	names, err := ss.c.NS[ss.login.Name].ReadDir(ss.actx, "/tmp")
	if err != nil {
		return false, err.Error()
	}
	for _, n := range names {
		if strings.Contains(n, "victim") {
			return true, fmt.Sprintf("file name %q visible", n)
		}
	}
	return false, "no victim names in /tmp"
}

func (ss *session) nodeRoam() (bool, string) {
	node, err := ss.victimJob()
	if err != nil {
		return false, err.Error()
	}
	if _, err := ss.c.LoginShell(node, ss.attacker.Cred); err == nil {
		return true, "ssh to victim's compute node succeeded"
	}
	return false, "pam denied compute-node ssh"
}

func (ss *session) homeProbe() (bool, string) {
	if !ss.homeSeeded {
		if err := ss.c.SharedFS.WriteFile(ss.vctx, ss.victim.HomePath+"/results.csv", []byte("victim-home-data"), 0o644); err != nil {
			return false, err.Error()
		}
		ss.homeSeeded = true
	}
	if d, err := ss.c.SharedFS.ReadFile(ss.actx, ss.victim.HomePath+"/results.csv"); err == nil {
		return true, fmt.Sprintf("read %d bytes from victim home", len(d))
	}
	return false, "home traversal denied"
}

// symlinkPlant is the sticky-dir clobber fs.protected_symlinks exists
// for: the planted link points at the victim's OWN results file, so
// smask cannot help (the victim has every permission on the target) —
// if the victim's routine checkpoint write follows the link, their
// results were corrupted on the attacker's say-so.
func (ss *session) symlinkPlant() (bool, string) {
	localFS := ss.c.LocalFS[ss.login.Name]
	if err := localFS.WriteFile(ss.vctx, "/tmp/victim-results.dat", []byte("precious-"+secretToken), 0o600); err != nil {
		return false, err.Error()
	}
	if err := localFS.Symlink(ss.actx, "/tmp/victim-results.dat", "/tmp/victim-checkpoint.tmp"); err != nil {
		return false, err.Error()
	}
	// The victim's job writes its checkpoint "as usual".
	if err := localFS.WriteFileFollow(ss.vctx, "/tmp/victim-checkpoint.tmp", []byte("CLOBBERED"), 0o600); err != nil {
		return false, fmt.Sprintf("victim write refused: %v", err)
	}
	if d, err := localFS.ReadFile(ss.vctx, "/tmp/victim-results.dat"); err == nil && string(d) == "CLOBBERED" {
		return true, "victim results clobbered via planted symlink"
	}
	return false, "victim write did not follow the planted link"
}

func (ss *session) ubfProbe() (bool, string) {
	node, err := ss.victimJob()
	if err != nil {
		return false, err.Error()
	}
	if !ss.vlistening {
		vHost, err := ss.c.Host(node)
		if err != nil {
			return false, err.Error()
		}
		if _, err := vHost.Listen(ss.victim.Cred, netsim.TCP, victimSvcPort); err != nil {
			return false, err.Error()
		}
		ss.vlistening = true
	}
	aHost, err := ss.attackerHost()
	if err != nil {
		return false, err.Error()
	}
	if conn, err := aHost.Dial(ss.attacker.Cred, netsim.TCP, node, victimSvcPort); err == nil {
		conn.Close()
		return true, "connected to victim service"
	}
	return false, "UBF dropped cross-user connection"
}

func (ss *session) portalPivot() (bool, string) {
	node, err := ss.victimJob()
	if err != nil {
		return false, err.Error()
	}
	if !ss.vrouted {
		vHost, err := ss.c.Host(node)
		if err != nil {
			return false, err.Error()
		}
		if _, err := portal.Serve(vHost, ss.victim.Cred, victimAppPort); err != nil {
			return false, err.Error()
		}
		if _, err := ss.c.Portal.Register(ss.victim.Cred, "/jupyter/victim", node, victimAppPort); err != nil {
			return false, err.Error()
		}
		ss.vrouted = true
	}
	tok, err := ss.c.Portal.Login(ss.attacker.Cred, "adv-pw")
	if err != nil {
		return false, err.Error()
	}
	if _, err := ss.c.Portal.Forward(tok, "/jupyter/victim", []byte("GET /")); err == nil {
		return true, "reached victim's web app through portal"
	}
	return false, "portal forward denied end-to-end"
}

func (ss *session) abstractProbe() (bool, string) {
	loginHost, err := ss.c.Host(ss.login.Name)
	if err != nil {
		return false, err.Error()
	}
	if ss.vsock == nil {
		if ss.vsock, err = loginHost.ListenAbstract(ss.victim.Cred, "victim-coordinator"); err != nil {
			return false, err.Error()
		}
	}
	if err := loginHost.DialAbstract(ss.attacker.Cred, "victim-coordinator", []byte("injected")); err != nil {
		return false, err.Error()
	}
	if _, from, ok := ss.vsock.Recv(); ok && from == ss.attacker.UID {
		return true, "datagram delivered cross-user"
	}
	return false, "no delivery"
}

func (ss *session) rdmaPivot() (bool, string) {
	node, err := ss.victimJob()
	if err != nil {
		return false, err.Error()
	}
	aHost, err := ss.attackerHost()
	if err != nil {
		return false, err.Error()
	}
	qp, err := aHost.SetupQP(ss.attacker.Cred, netsim.QPViaNativeCM, node, 0)
	if err != nil {
		return false, err.Error()
	}
	_ = qp.Write([]byte("rdma"))
	qp.Close()
	return true, "QP established via native CM (firewall bypassed)"
}

// gpuResidue is the two-phase GPU handover: the victim's GPU job
// writes a secret to device memory and completes; the attacker then
// reads the same node's devices looking for the residue. The read is
// blocked by the prolog's device-permission binding and the residue
// itself is destroyed by the epilog clear — both halves of the gpu
// measure — so the step reopens under the gpu ablation regardless of
// scheduling policy.
func (ss *session) gpuResidue() (bool, string) {
	secret := []byte(secretToken + "-GPU-WEIGHTS")
	vj, err := ss.c.Sched.Submit(ss.victim.Cred, sched.JobSpec{
		Name: "gpu-train", Command: "train", Cores: 1, MemB: 1, GPUs: 1, Duration: 2,
	})
	if err != nil {
		return false, fmt.Sprintf("victim gpu job rejected: %v", err)
	}
	var node string
	for i := 0; i < 32 && node == ""; i++ {
		j, err := ss.c.Sched.Job(vj.ID)
		if err != nil {
			return false, err.Error()
		}
		if j.State == sched.Running {
			node = j.Nodes[0]
			break
		}
		ss.c.Step()
	}
	if node == "" {
		_ = ss.c.Sched.Cancel(ss.victim.Cred, vj.ID)
		return false, "victim gpu job never placed"
	}
	dev := ss.c.GPUs.Devices(node)[0]
	for _, d := range ss.c.GPUs.Devices(node) {
		if d.Assigned() == ss.victim.UID {
			dev = d
		}
	}
	if err := dev.Write(ss.victim.Cred, 512, secret); err != nil {
		return false, fmt.Sprintf("victim gpu write failed: %v", err)
	}
	// Let the victim's job run out (Duration 2) and its epilog fire.
	for i := 0; i < 8; i++ {
		if j, err := ss.c.Sched.Job(vj.ID); err == nil && j.State != sched.Running && j.State != sched.Pending {
			break
		}
		ss.c.Step()
	}
	for _, d := range ss.c.GPUs.Devices(node) {
		if data, err := d.Read(ss.attacker.Cred, 512, len(secret)); err == nil && bytes.Equal(data, secret) {
			return true, "previous user's data read from GPU memory"
		}
	}
	return false, "no residue readable (cleared or access denied)"
}

func (ss *session) containerEscape() (bool, string) {
	if !ss.imported {
		ss.c.Containers.ImportImage("attack-img", nil)
		ss.imported = true
	}
	// Deliberately unapproved: the attacker was never Allow()ed, so
	// the Run itself succeeding is the admission-control escape.
	node := ss.c.Compute[len(ss.c.Compute)-1]
	nHost, err := ss.c.Host(node.Name)
	if err != nil {
		return false, err.Error()
	}
	ct, err := ss.c.Containers.Run(ss.attacker.Cred, node, ss.c.NS[node.Name], nHost,
		container.RunSpec{Image: "attack-img"})
	if err != nil {
		return false, "container admission denied"
	}
	if !ss.homeSeeded {
		if err := ss.c.SharedFS.WriteFile(ss.vctx, ss.victim.HomePath+"/results.csv", []byte("victim-home-data"), 0o644); err != nil {
			return false, err.Error()
		}
		ss.homeSeeded = true
	}
	if _, err := ct.ReadFile(ss.victim.HomePath + "/results.csv"); err == nil {
		return true, "unapproved container ran and read victim home from inside"
	}
	return true, "unapproved container ran (host FS controls still bound inside)"
}
