// Package mitig models the security/performance trade-off the paper
// opens with (§I): the Spectre/Meltdown mitigations "impacted
// performance between 15-40%" (the authors' own HPEC'18 measurement,
// ref [2]), which led some operators to run with the Linux
// "mitigations=off" switch (ref [3]).
//
// The model is deliberately simple and calibrated to that citation:
// mitigations multiply the cost of kernel-entry work (syscalls,
// context switches) while leaving pure user-space compute untouched.
// Workload profiles then reproduce the observed spread: compute-bound
// codes lose almost nothing; syscall- and communication-heavy codes
// lose 15-40%. Experiment E15 prints the table; the point the paper
// makes — and the reason the package exists — is that the *user
// separation* measures of §IV live entirely on control paths and cost
// none of this.
package mitig

import "fmt"

// Config is the mitigation state of a node's kernel.
type Config struct {
	// Enabled applies the mitigation cost factors ("mitigations=auto").
	Enabled bool
	// SyscallFactor multiplies syscall cost when enabled. KPTI-era
	// measurements put kernel-entry overhead near 1.5-2.2×; the
	// default reproduces the paper's 15-40% app-level spread.
	SyscallFactor float64
	// SwitchFactor multiplies context-switch cost when enabled.
	SwitchFactor float64
}

// DefaultMitigations returns the calibrated "mitigations=auto" state.
func DefaultMitigations() Config {
	return Config{Enabled: true, SyscallFactor: 1.85, SwitchFactor: 2.0}
}

// Off returns the "mitigations=off" state.
func Off() Config { return Config{Enabled: false, SyscallFactor: 1, SwitchFactor: 1} }

// Work describes a workload's cost structure in abstract cost units.
type Work struct {
	Name string
	// ComputeUnits is pure user-space work (unaffected).
	ComputeUnits float64
	// SyscallUnits is time spent crossing into the kernel (I/O,
	// page-cache reads, network sends).
	SyscallUnits float64
	// SwitchUnits is scheduler/context-switch time (oversubscribed
	// ranks, interrupt-heavy communication).
	SwitchUnits float64
}

// Cost returns the workload's total cost under the kernel config.
func (c Config) Cost(w Work) float64 {
	sf, wf := 1.0, 1.0
	if c.Enabled {
		sf, wf = c.SyscallFactor, c.SwitchFactor
	}
	return w.ComputeUnits + w.SyscallUnits*sf + w.SwitchUnits*wf
}

// Slowdown returns the fractional slowdown of running w with
// mitigations on versus off (0.25 = 25% slower).
func Slowdown(w Work, on Config) float64 {
	base := Off().Cost(w)
	if base == 0 {
		return 0
	}
	return on.Cost(w)/base - 1
}

// Canonical workload profiles, shaped after the classes the HPEC'18
// study measured.
var (
	// ComputeBound: dense linear algebra, almost no kernel time.
	ComputeBound = Work{Name: "compute-bound (HPL-like)", ComputeUnits: 97, SyscallUnits: 2, SwitchUnits: 1}
	// IOHeavy: small-file metadata-heavy analytics.
	IOHeavy = Work{Name: "io-heavy (metadata)", ComputeUnits: 55, SyscallUnits: 40, SwitchUnits: 5}
	// CommLatency: latency-sensitive MPI with frequent small messages
	// through the kernel (no RDMA offload).
	CommLatency = Work{Name: "comm-latency (small MPI msgs)", ComputeUnits: 65, SyscallUnits: 25, SwitchUnits: 10}
	// Interactive: shell-and-script orchestration, context-switch rich.
	Interactive = Work{Name: "interactive orchestration", ComputeUnits: 70, SyscallUnits: 15, SwitchUnits: 15}
)

// Profiles lists the canonical workloads.
func Profiles() []Work {
	return []Work{ComputeBound, IOHeavy, CommLatency, Interactive}
}

func (w Work) String() string {
	return fmt.Sprintf("%s (compute=%.0f syscalls=%.0f switches=%.0f)", w.Name, w.ComputeUnits, w.SyscallUnits, w.SwitchUnits)
}
