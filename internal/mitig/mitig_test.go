package mitig

import (
	"testing"
	"testing/quick"
)

func TestOffIsIdentity(t *testing.T) {
	for _, w := range Profiles() {
		base := w.ComputeUnits + w.SyscallUnits + w.SwitchUnits
		if got := Off().Cost(w); got != base {
			t.Errorf("%s: off cost = %v, want %v", w.Name, got, base)
		}
		if s := Slowdown(w, Off()); s != 0 {
			t.Errorf("%s: off slowdown = %v", w.Name, s)
		}
	}
}

func TestPaperCalibration(t *testing.T) {
	// The paper (§I, citing the authors' HPEC'18 study) reports a
	// 15-40% impact for affected workloads and negligible impact for
	// compute-bound codes. The calibrated default must reproduce that
	// spread.
	on := DefaultMitigations()
	if s := Slowdown(ComputeBound, on); s > 0.05 {
		t.Errorf("compute-bound slowdown = %.2f, want <= 5%%", s)
	}
	for _, w := range []Work{IOHeavy, CommLatency, Interactive} {
		s := Slowdown(w, on)
		if s < 0.15 || s > 0.40 {
			t.Errorf("%s slowdown = %.2f, want within the paper's 15-40%% band", w.Name, s)
		}
	}
}

func TestCostMonotoneInFactors(t *testing.T) {
	w := IOHeavy
	weak := Config{Enabled: true, SyscallFactor: 1.2, SwitchFactor: 1.2}
	strong := Config{Enabled: true, SyscallFactor: 2.5, SwitchFactor: 2.5}
	if weak.Cost(w) >= strong.Cost(w) {
		t.Errorf("cost not monotone in factors")
	}
}

func TestZeroWork(t *testing.T) {
	if s := Slowdown(Work{}, DefaultMitigations()); s != 0 {
		t.Errorf("zero-work slowdown = %v", s)
	}
}

// Property: slowdown is non-negative when factors >= 1, and zero when
// the workload has no kernel component.
func TestQuickSlowdownBounds(t *testing.T) {
	f := func(cu, su, wu uint16, sf, wf uint8) bool {
		cfg := Config{
			Enabled:       true,
			SyscallFactor: 1 + float64(sf%30)/10,
			SwitchFactor:  1 + float64(wf%30)/10,
		}
		w := Work{ComputeUnits: float64(cu), SyscallUnits: float64(su), SwitchUnits: float64(wu)}
		s := Slowdown(w, cfg)
		if s < 0 {
			return false
		}
		pure := Work{ComputeUnits: float64(cu)}
		return Slowdown(pure, cfg) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkString(t *testing.T) {
	if ComputeBound.String() == "" {
		t.Error("empty String")
	}
}
