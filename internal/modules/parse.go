package modules

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/vfs"
)

// Modulefile parsing. The site's modulefiles live on the shared
// filesystem (maintained by support staff through smask_relax) in a
// simplified Environment-Modules syntax:
//
//	#%Module
//	module-whatis "GNU compiler collection"
//	prereq gcc
//	conflict intel-mpi
//	prepend-path PATH /opt/gcc/12.3/bin
//	append-path  MANPATH /opt/gcc/12.3/man
//	setenv       CC /opt/gcc/12.3/bin/gcc
//
// Blank lines and #-comments are ignored (except the #%Module magic
// on the first non-empty line, which is required).

// Parse errors.
var (
	ErrBadModulefile = errors.New("modules: malformed modulefile")
	ErrNoMagic       = errors.New("modules: missing #%Module magic")
)

// ParseModulefile parses one modulefile into a Module.
func ParseModulefile(name, version, text string) (*Module, error) {
	m := &Module{Name: name, Version: version}
	sawMagic := false
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if !sawMagic {
			if !strings.HasPrefix(line, "#%Module") {
				return nil, fmt.Errorf("%w: %s/%s", ErrNoMagic, name, version)
			}
			sawMagic = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		verb := fields[0]
		args := fields[1:]
		switch verb {
		case "module-whatis":
			// Documentation only; accept any argument form.
		case "prereq":
			if len(args) != 1 {
				return nil, parseErr(name, version, lineNo, "prereq wants 1 arg")
			}
			m.Requires = append(m.Requires, args[0])
		case "conflict":
			if len(args) != 1 {
				return nil, parseErr(name, version, lineNo, "conflict wants 1 arg")
			}
			m.Conflicts = append(m.Conflicts, args[0])
		case "prepend-path", "append-path", "setenv":
			if len(args) != 2 {
				return nil, parseErr(name, version, lineNo, verb+" wants 2 args")
			}
			kind := SetEnv
			switch verb {
			case "prepend-path":
				kind = PrependPath
			case "append-path":
				kind = AppendPath
			}
			m.Ops = append(m.Ops, Op{Kind: kind, Var: args[0], Value: args[1]})
		default:
			return nil, parseErr(name, version, lineNo, "unknown verb "+verb)
		}
	}
	if !sawMagic {
		return nil, fmt.Errorf("%w: %s/%s (empty file)", ErrNoMagic, name, version)
	}
	return m, nil
}

func parseErr(name, version string, line int, msg string) error {
	return fmt.Errorf("%w: %s/%s line %d: %s", ErrBadModulefile, name, version, line+1, msg)
}

// LoadTree builds a Repo from a modulefile tree on a filesystem:
// root/<name>/<version> files, plus an optional root/<name>/.default
// file naming the default version. The ctx decides what is visible —
// project-group-restricted modulefiles simply fail the read and are
// skipped, so module *visibility* follows filesystem permissions,
// exactly as the paper intends shared software areas to work (§IV-G).
func LoadTree(fs *vfs.FS, ctx vfs.Context, root string) (*Repo, error) {
	repo := NewRepo()
	names, err := fs.ReadDir(ctx, root)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		dir := root + "/" + name
		versions, err := fs.ReadDir(ctx, dir)
		if err != nil {
			continue // unreadable (e.g. group-restricted): skip
		}
		var defaultVersion string
		for _, v := range versions {
			if v == ".default" {
				if d, err := fs.ReadFile(ctx, dir+"/.default"); err == nil {
					defaultVersion = strings.TrimSpace(string(d))
				}
				continue
			}
			text, err := fs.ReadFile(ctx, dir+"/"+v)
			if err != nil {
				continue
			}
			m, err := ParseModulefile(name, v, string(text))
			if err != nil {
				return nil, err
			}
			repo.Add(m)
		}
		if defaultVersion != "" {
			if err := repo.SetDefault(name, defaultVersion); err != nil {
				return nil, err
			}
		}
	}
	return repo, nil
}
