package modules

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/vfs"
)

const gccModulefile = `#%Module
module-whatis "GNU compiler collection"
prepend-path PATH /opt/gcc/12.3/bin
append-path  MANPATH /opt/gcc/12.3/man
setenv       CC /opt/gcc/12.3/bin/gcc
`

func TestParseModulefile(t *testing.T) {
	m, err := ParseModulefile("gcc", "12.3", gccModulefile)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID() != "gcc/12.3" || len(m.Ops) != 3 {
		t.Fatalf("parsed %+v", m)
	}
	if m.Ops[0].Kind != PrependPath || m.Ops[0].Var != "PATH" {
		t.Errorf("op0 = %+v", m.Ops[0])
	}
	if m.Ops[1].Kind != AppendPath || m.Ops[2].Kind != SetEnv {
		t.Errorf("op kinds = %v %v", m.Ops[1].Kind, m.Ops[2].Kind)
	}
}

func TestParsePrereqConflictAndComments(t *testing.T) {
	text := `#%Module
# site notes here
prereq gcc
conflict intel-mpi

prepend-path PATH /opt/openmpi/bin
`
	m, err := ParseModulefile("openmpi", "4.1.6", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Requires) != 1 || m.Requires[0] != "gcc" {
		t.Errorf("requires = %v", m.Requires)
	}
	if len(m.Conflicts) != 1 || m.Conflicts[0] != "intel-mpi" {
		t.Errorf("conflicts = %v", m.Conflicts)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		text string
		want error
	}{
		{"", ErrNoMagic},
		{"prepend-path PATH /x", ErrNoMagic},
		{"#%Module\nbogus-verb x", ErrBadModulefile},
		{"#%Module\nprereq", ErrBadModulefile},
		{"#%Module\nsetenv ONLYVAR", ErrBadModulefile},
		{"#%Module\nprepend-path PATH /a /b", ErrBadModulefile},
	}
	for _, tc := range cases {
		if _, err := ParseModulefile("x", "1", tc.text); !errors.Is(err, tc.want) {
			t.Errorf("ParseModulefile(%q) err = %v, want %v", tc.text, err, tc.want)
		}
	}
}

// buildTree writes a modulefile tree onto a vfs and returns the FS.
func buildTree(t *testing.T) (*vfs.FS, *ids.Registry, vfs.Context) {
	t.Helper()
	reg := ids.NewRegistry()
	user, _ := reg.AddUser("alice")
	fs := vfs.New("shared", vfs.Policy{}, reg)
	root := vfs.Context{Cred: ids.RootCred()}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.MkdirAll(root, "/proj/modules/gcc", 0o755))
	must(fs.MkdirAll(root, "/proj/modules/openmpi", 0o755))
	must(fs.WriteFile(root, "/proj/modules/gcc/12.3", []byte(gccModulefile), 0o644))
	must(fs.WriteFile(root, "/proj/modules/gcc/13.1", []byte("#%Module\nsetenv CC gcc13\n"), 0o644))
	must(fs.WriteFile(root, "/proj/modules/gcc/.default", []byte("13.1\n"), 0o644))
	must(fs.WriteFile(root, "/proj/modules/openmpi/4.1.6", []byte("#%Module\nprereq gcc\nsetenv MPI_HOME /opt/openmpi\n"), 0o644))
	cred, _ := reg.LoginCredential(user.UID)
	return fs, reg, vfs.Ctx(cred)
}

func TestLoadTree(t *testing.T) {
	fs, _, ctx := buildTree(t)
	repo, err := LoadTree(fs, ctx, "/proj/modules")
	if err != nil {
		t.Fatal(err)
	}
	if got := repo.Avail(); len(got) != 3 {
		t.Fatalf("avail = %v", got)
	}
	// .default honored.
	m, err := repo.Resolve("gcc")
	if err != nil || m.Version != "13.1" {
		t.Errorf("default gcc = %v, %v", m, err)
	}
	// End-to-end: load from the parsed repo.
	s := NewSession(repo, map[string]string{"PATH": "/usr/bin"})
	if err := s.Load("gcc/12.3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("openmpi"); err != nil {
		t.Fatal(err)
	}
	if got := s.Getenv("MPI_HOME"); got != "/opt/openmpi" {
		t.Errorf("MPI_HOME = %q", got)
	}
}

func TestLoadTreeSkipsUnreadable(t *testing.T) {
	fs, reg, ctx := buildTree(t)
	root := vfs.Context{Cred: ids.RootCred()}
	// A project-restricted module tree alice cannot read.
	lead, _ := reg.AddUser("lead")
	g, err := reg.AddProjectGroup("secretproj", lead.UID)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateProjectDir("/proj/modules/secret-tool", g); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(root, "/proj/modules/secret-tool/1.0", []byte("#%Module\nsetenv SECRET 1\n"), 0o640); err != nil {
		t.Fatal(err)
	}
	repo, err := LoadTree(fs, ctx, "/proj/modules")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Resolve("secret-tool"); !errors.Is(err, ErrNoModule) {
		t.Errorf("restricted module visible to non-member: %v", err)
	}
	// A member of the project group sees it.
	leadCred, _ := reg.LoginCredential(lead.UID)
	repoLead, err := LoadTree(fs, vfs.Ctx(leadCred), "/proj/modules")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repoLead.Resolve("secret-tool/1.0"); err != nil {
		t.Errorf("member cannot see project module: %v", err)
	}
}

func TestLoadTreeBadFile(t *testing.T) {
	fs, _, ctx := buildTree(t)
	root := vfs.Context{Cred: ids.RootCred()}
	if err := fs.WriteFile(root, "/proj/modules/gcc/bad", []byte("no magic"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTree(fs, ctx, "/proj/modules"); !errors.Is(err, ErrNoMagic) {
		t.Errorf("bad tree err = %v", err)
	}
}

func TestLoadTreeMissingRoot(t *testing.T) {
	fs, _, ctx := buildTree(t)
	if _, err := LoadTree(fs, ctx, "/nope"); err == nil {
		t.Errorf("missing root succeeded")
	}
}
