// Package modules implements Linux environment modules (paper §IV-G,
// refs [42][43]): the mechanism the paper recommends over container
// sprawl for sharing software installations — "shared installations
// of software applications are better managed by providing installed
// applications in shared group areas and enabling users to
// dynamically configure their environment to use the applications
// with Linux environment modules."
//
// A modulefile describes prepend/append/set operations on environment
// variables plus dependencies on other modules. Loading mutates a
// per-session Env; unloading reverses exactly what loading did. The
// separation tie-in: modulefiles live on the shared filesystem under
// the same smask/project-group rules as everything else, so *who can
// use a module* is decided by the vfs layer, not by this package.
package modules

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op is one environment operation in a modulefile.
type Op struct {
	Kind  OpKind
	Var   string
	Value string
}

// OpKind enumerates modulefile operations.
type OpKind int

// Operations.
const (
	PrependPath OpKind = iota // prepend to a :-separated list var
	AppendPath                // append to a :-separated list var
	SetEnv                    // set a scalar var
)

func (k OpKind) String() string {
	switch k {
	case PrependPath:
		return "prepend-path"
	case AppendPath:
		return "append-path"
	case SetEnv:
		return "setenv"
	default:
		return "?"
	}
}

// Module is a named, versioned software environment.
type Module struct {
	Name      string   // e.g. "openmpi"
	Version   string   // e.g. "4.1.6"
	Requires  []string // module names that must be loaded first
	Conflicts []string // module names that must NOT be loaded
	Ops       []Op
}

// ID returns name/version.
func (m *Module) ID() string { return m.Name + "/" + m.Version }

// Repo is the site modulefile tree (one per cluster, maintained by
// support staff via smask_relax).
type Repo struct {
	mu       sync.RWMutex
	modules  map[string]*Module // id -> module
	defaults map[string]string  // name -> default version
}

// Repo/session errors.
var (
	ErrNoModule   = errors.New("modules: no such module")
	ErrConflict   = errors.New("modules: conflicting module loaded")
	ErrNotLoaded  = errors.New("modules: module not loaded")
	ErrDependency = errors.New("modules: unsatisfied dependency")
	ErrLoaded     = errors.New("modules: already loaded")
)

// NewRepo creates an empty repository.
func NewRepo() *Repo {
	return &Repo{modules: make(map[string]*Module), defaults: make(map[string]string)}
}

// Add registers a module; the first version added for a name becomes
// the default (override with SetDefault).
func (r *Repo) Add(m *Module) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.modules[m.ID()] = m
	if _, ok := r.defaults[m.Name]; !ok {
		r.defaults[m.Name] = m.Version
	}
}

// SetDefault picks the version `module load name` resolves to.
func (r *Repo) SetDefault(name, version string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.modules[name+"/"+version]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoModule, name, version)
	}
	r.defaults[name] = version
	return nil
}

// Resolve finds a module by "name" (default version) or
// "name/version".
func (r *Repo) Resolve(spec string) (*Module, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if strings.Contains(spec, "/") {
		m, ok := r.modules[spec]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoModule, spec)
		}
		return m, nil
	}
	v, ok := r.defaults[spec]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoModule, spec)
	}
	return r.modules[spec+"/"+v], nil
}

// Avail lists module IDs sorted.
func (r *Repo) Avail() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.modules))
	for id := range r.modules {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Session is one user shell's module state.
type Session struct {
	repo   *Repo
	mu     sync.Mutex
	env    map[string]string
	loaded []string            // load order
	undo   map[string][]undoOp // id -> reverse ops
}

type undoOp struct {
	variable string
	prev     string
	had      bool
}

// NewSession starts with a copy of base environment variables.
func NewSession(repo *Repo, base map[string]string) *Session {
	env := make(map[string]string, len(base))
	for k, v := range base {
		env[k] = v
	}
	return &Session{repo: repo, env: env, undo: make(map[string][]undoOp)}
}

// Getenv reads a variable.
func (s *Session) Getenv(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.env[key]
}

// Loaded lists loaded module IDs in load order.
func (s *Session) Loaded() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.loaded...)
}

func (s *Session) isLoadedLocked(name string) bool {
	for _, id := range s.loaded {
		if id == name || strings.HasPrefix(id, name+"/") {
			return true
		}
	}
	return false
}

// Load resolves and applies a module, checking dependencies and
// conflicts (like `module load`).
func (s *Session) Load(spec string) error {
	m, err := s.repo.Resolve(spec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.isLoadedLocked(m.Name) {
		return fmt.Errorf("%w: %s", ErrLoaded, m.ID())
	}
	for _, dep := range m.Requires {
		if !s.isLoadedLocked(dep) {
			return fmt.Errorf("%w: %s requires %s", ErrDependency, m.ID(), dep)
		}
	}
	for _, c := range m.Conflicts {
		if s.isLoadedLocked(c) {
			return fmt.Errorf("%w: %s conflicts with %s", ErrConflict, m.ID(), c)
		}
	}
	var undos []undoOp
	for _, op := range m.Ops {
		prev, had := s.env[op.Var]
		undos = append(undos, undoOp{variable: op.Var, prev: prev, had: had})
		switch op.Kind {
		case SetEnv:
			s.env[op.Var] = op.Value
		case PrependPath:
			if had && prev != "" {
				s.env[op.Var] = op.Value + ":" + prev
			} else {
				s.env[op.Var] = op.Value
			}
		case AppendPath:
			if had && prev != "" {
				s.env[op.Var] = prev + ":" + op.Value
			} else {
				s.env[op.Var] = op.Value
			}
		}
	}
	s.undo[m.ID()] = undos
	s.loaded = append(s.loaded, m.ID())
	return nil
}

// Unload reverses a loaded module (like `module unload`). Modules
// that other loaded modules depend on cannot be unloaded.
func (s *Session) Unload(spec string) error {
	m, err := s.repo.Resolve(spec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := -1
	for i, id := range s.loaded {
		if id == m.ID() {
			idx = i
		}
	}
	if idx == -1 {
		return fmt.Errorf("%w: %s", ErrNotLoaded, m.ID())
	}
	// Dependency check: nothing loaded may require this module.
	for _, id := range s.loaded {
		if id == m.ID() {
			continue
		}
		other, err := s.repo.Resolve(id)
		if err != nil {
			continue
		}
		for _, dep := range other.Requires {
			if dep == m.Name {
				return fmt.Errorf("%w: %s still requires %s", ErrDependency, other.ID(), m.Name)
			}
		}
	}
	// Reverse in LIFO order.
	undos := s.undo[m.ID()]
	for i := len(undos) - 1; i >= 0; i-- {
		u := undos[i]
		if u.had {
			s.env[u.variable] = u.prev
		} else {
			delete(s.env, u.variable)
		}
	}
	delete(s.undo, m.ID())
	s.loaded = append(s.loaded[:idx], s.loaded[idx+1:]...)
	return nil
}

// Purge unloads everything in reverse load order (like `module purge`).
func (s *Session) Purge() {
	for {
		s.mu.Lock()
		if len(s.loaded) == 0 {
			s.mu.Unlock()
			return
		}
		last := s.loaded[len(s.loaded)-1]
		s.mu.Unlock()
		if err := s.Unload(last); err != nil {
			// A dependency hold: unload the dependent first next loop.
			// Purge in strict reverse order cannot actually hit this,
			// but guard against pathological repos.
			s.mu.Lock()
			s.loaded = s.loaded[:len(s.loaded)-1]
			s.mu.Unlock()
		}
	}
}
