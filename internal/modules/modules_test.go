package modules

import (
	"errors"
	"testing"
	"testing/quick"
)

func testRepo() *Repo {
	r := NewRepo()
	r.Add(&Module{
		Name: "gcc", Version: "12.3",
		Ops: []Op{
			{PrependPath, "PATH", "/opt/gcc/12.3/bin"},
			{SetEnv, "CC", "/opt/gcc/12.3/bin/gcc"},
		},
	})
	r.Add(&Module{
		Name: "gcc", Version: "13.1",
		Ops: []Op{
			{PrependPath, "PATH", "/opt/gcc/13.1/bin"},
			{SetEnv, "CC", "/opt/gcc/13.1/bin/gcc"},
		},
	})
	r.Add(&Module{
		Name: "openmpi", Version: "4.1.6",
		Requires: []string{"gcc"},
		Ops: []Op{
			{PrependPath, "PATH", "/opt/openmpi/bin"},
			{PrependPath, "LD_LIBRARY_PATH", "/opt/openmpi/lib"},
			{SetEnv, "MPI_HOME", "/opt/openmpi"},
		},
	})
	r.Add(&Module{
		Name: "intel-mpi", Version: "2021",
		Conflicts: []string{"openmpi"},
		Ops:       []Op{{SetEnv, "MPI_HOME", "/opt/intel"}},
	})
	return r
}

func TestLoadSetsEnvironment(t *testing.T) {
	s := NewSession(testRepo(), map[string]string{"PATH": "/usr/bin"})
	if err := s.Load("gcc/12.3"); err != nil {
		t.Fatal(err)
	}
	if got := s.Getenv("PATH"); got != "/opt/gcc/12.3/bin:/usr/bin" {
		t.Errorf("PATH = %q", got)
	}
	if got := s.Getenv("CC"); got != "/opt/gcc/12.3/bin/gcc" {
		t.Errorf("CC = %q", got)
	}
}

func TestDefaultVersionResolution(t *testing.T) {
	r := testRepo()
	// First added becomes default.
	m, err := r.Resolve("gcc")
	if err != nil || m.Version != "12.3" {
		t.Fatalf("default = %v, %v", m, err)
	}
	if err := r.SetDefault("gcc", "13.1"); err != nil {
		t.Fatal(err)
	}
	m, _ = r.Resolve("gcc")
	if m.Version != "13.1" {
		t.Errorf("default after SetDefault = %s", m.Version)
	}
	if err := r.SetDefault("gcc", "99"); !errors.Is(err, ErrNoModule) {
		t.Errorf("bogus SetDefault err = %v", err)
	}
	if _, err := r.Resolve("ghost"); !errors.Is(err, ErrNoModule) {
		t.Errorf("resolve ghost err = %v", err)
	}
	if _, err := r.Resolve("ghost/1"); !errors.Is(err, ErrNoModule) {
		t.Errorf("resolve ghost/1 err = %v", err)
	}
}

func TestDependencyEnforced(t *testing.T) {
	s := NewSession(testRepo(), nil)
	if err := s.Load("openmpi"); !errors.Is(err, ErrDependency) {
		t.Errorf("load without dep err = %v", err)
	}
	if err := s.Load("gcc"); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("openmpi"); err != nil {
		t.Fatalf("load with dep: %v", err)
	}
	// gcc cannot be unloaded while openmpi needs it.
	if err := s.Unload("gcc"); !errors.Is(err, ErrDependency) {
		t.Errorf("unload held dep err = %v", err)
	}
	if err := s.Unload("openmpi"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unload("gcc"); err != nil {
		t.Errorf("unload after release: %v", err)
	}
}

func TestConflictEnforced(t *testing.T) {
	s := NewSession(testRepo(), nil)
	if err := s.Load("gcc"); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("openmpi"); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("intel-mpi"); !errors.Is(err, ErrConflict) {
		t.Errorf("conflicting load err = %v", err)
	}
}

func TestDoubleLoadRejected(t *testing.T) {
	s := NewSession(testRepo(), nil)
	if err := s.Load("gcc/12.3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("gcc/13.1"); !errors.Is(err, ErrLoaded) {
		t.Errorf("second version load err = %v", err)
	}
}

func TestUnloadRestoresEnvExactly(t *testing.T) {
	base := map[string]string{"PATH": "/usr/bin", "CC": "cc"}
	s := NewSession(testRepo(), base)
	if err := s.Load("gcc/12.3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unload("gcc/12.3"); err != nil {
		t.Fatal(err)
	}
	if got := s.Getenv("PATH"); got != "/usr/bin" {
		t.Errorf("PATH after unload = %q", got)
	}
	if got := s.Getenv("CC"); got != "cc" {
		t.Errorf("CC after unload = %q", got)
	}
	if err := s.Unload("gcc/12.3"); !errors.Is(err, ErrNotLoaded) {
		t.Errorf("double unload err = %v", err)
	}
}

func TestUnloadRemovesCreatedVars(t *testing.T) {
	s := NewSession(testRepo(), nil)
	_ = s.Load("gcc")
	_ = s.Load("openmpi")
	if s.Getenv("MPI_HOME") == "" {
		t.Fatal("MPI_HOME not set")
	}
	if err := s.Unload("openmpi"); err != nil {
		t.Fatal(err)
	}
	if got := s.Getenv("MPI_HOME"); got != "" {
		t.Errorf("MPI_HOME after unload = %q (var did not exist before)", got)
	}
}

func TestPurge(t *testing.T) {
	s := NewSession(testRepo(), map[string]string{"PATH": "/usr/bin"})
	_ = s.Load("gcc")
	_ = s.Load("openmpi")
	s.Purge()
	if len(s.Loaded()) != 0 {
		t.Errorf("loaded after purge = %v", s.Loaded())
	}
	if got := s.Getenv("PATH"); got != "/usr/bin" {
		t.Errorf("PATH after purge = %q", got)
	}
}

func TestAvailSorted(t *testing.T) {
	av := testRepo().Avail()
	if len(av) != 4 {
		t.Fatalf("avail = %v", av)
	}
	for i := 1; i < len(av); i++ {
		if av[i-1] >= av[i] {
			t.Errorf("avail not sorted: %v", av)
		}
	}
}

func TestAppendPath(t *testing.T) {
	r := NewRepo()
	r.Add(&Module{Name: "man", Version: "1", Ops: []Op{{AppendPath, "MANPATH", "/opt/man"}}})
	s := NewSession(r, map[string]string{"MANPATH": "/usr/share/man"})
	_ = s.Load("man")
	if got := s.Getenv("MANPATH"); got != "/usr/share/man:/opt/man" {
		t.Errorf("MANPATH = %q", got)
	}
	// Append to an unset var.
	s2 := NewSession(r, nil)
	_ = s2.Load("man")
	if got := s2.Getenv("MANPATH"); got != "/opt/man" {
		t.Errorf("MANPATH fresh = %q", got)
	}
}

func TestOpKindString(t *testing.T) {
	if PrependPath.String() != "prepend-path" || AppendPath.String() != "append-path" || SetEnv.String() != "setenv" || OpKind(9).String() != "?" {
		t.Error("OpKind.String broken")
	}
}

// Property: for any sequence of loads followed by unloading all of
// them in reverse order, the environment returns exactly to base.
func TestQuickLoadUnloadIdentity(t *testing.T) {
	repo := testRepo()
	f := func(pick []uint8) bool {
		base := map[string]string{"PATH": "/usr/bin", "HOME": "/home/u"}
		s := NewSession(repo, base)
		specs := []string{"gcc/12.3", "gcc/13.1", "openmpi", "intel-mpi"}
		var loadedOK []string
		for _, p := range pick {
			spec := specs[int(p)%len(specs)]
			if err := s.Load(spec); err == nil {
				m, _ := repo.Resolve(spec)
				loadedOK = append(loadedOK, m.ID())
			}
		}
		for i := len(loadedOK) - 1; i >= 0; i-- {
			if err := s.Unload(loadedOK[i]); err != nil {
				return false
			}
		}
		return s.Getenv("PATH") == "/usr/bin" && s.Getenv("HOME") == "/home/u" &&
			s.Getenv("CC") == "" && s.Getenv("MPI_HOME") == "" && len(s.Loaded()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
