package sched

import (
	"reflect"
	"testing"

	"repro/internal/ids"
)

// replayTrace submits a fixed multi-user workload (including an OOM
// job and a cancel) and drains it, returning the accounting records —
// the full observable history of the run.
func replayTrace(t *testing.T, s *Scheduler) []AccountingRecord {
	t.Helper()
	u1, u2 := cred(1000), cred(1001)
	for i := 0; i < 6; i++ {
		c := u1
		if i%2 == 1 {
			c = u2
		}
		sp := spec(1+i%3, int64(2+i%2))
		if i == 4 {
			sp.MemB = 1
			sp.ActualMemB = 64 << 30 // blows past node memory: OOM crash
		}
		if _, err := s.Submit(c, sp); err != nil {
			t.Fatal(err)
		}
	}
	j, err := s.Submit(u1, spec(1, 50))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(u1, j.ID); err != nil {
		t.Fatal(err)
	}
	s.RunAll(1000)
	return s.Sacct(ids.RootCred())
}

// The Scheduler Reset contract: a reset scheduler replays any workload
// with exactly the history a freshly-constructed one produces — same
// job IDs, same placements, same crash accounting — and its capacity
// aggregates come back consistent.
func TestSchedulerResetReplaysLikeFresh(t *testing.T) {
	build := func() *Scheduler {
		return New(Config{Policy: PolicyShared}, computeNodes(4, 8, 16<<30), 0)
	}
	s := build()
	_ = replayTrace(t, s) // dirty pass 1
	// Post-construction config that Reset must also rewind.
	s.SetUserLimit(3)
	if err := s.AddPartition(Partition{Name: "batch", NodePrefix: "c"}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	checkAggregates(t, s, "after Reset")
	if got := len(s.Partitions()); got != 0 {
		t.Errorf("%d partitions survived Reset", got)
	}
	if c, cf := s.Crashes(); c != 0 || cf != 0 {
		t.Errorf("crash counters (%d, %d) survived Reset", c, cf)
	}
	if s.Now() != 0 || s.PendingCount() != 0 || s.Utilization() != 0 {
		t.Errorf("time/queue/utilization state survived Reset: now=%d pending=%d util=%v",
			s.Now(), s.PendingCount(), s.Utilization())
	}

	gotRecords := replayTrace(t, s)
	wantRecords := replayTrace(t, build())
	if !reflect.DeepEqual(gotRecords, wantRecords) {
		t.Errorf("replay after Reset diverged from fresh scheduler:\n%v\nvs\n%v", gotRecords, wantRecords)
	}
	checkAggregates(t, s, "after replay on reset scheduler")
}

// Reset on a drained scheduler must not allocate: all maps are
// cleared in place and slices truncated.
func TestSchedulerResetAllocationFree(t *testing.T) {
	s := New(Config{Policy: PolicyShared}, computeNodes(4, 8, 16<<30), 0)
	_ = replayTrace(t, s)
	s.Reset()
	_ = replayTrace(t, s)
	allocs := testing.AllocsPerRun(10, func() { s.Reset() })
	if allocs > 0 {
		t.Errorf("Reset allocates %.1f objects per call, want 0", allocs)
	}
}

// Reset must also clear externally-injected node failures (lastDown
// bookkeeping) once the nodes themselves are reset.
func TestSchedulerResetAfterNodeCrash(t *testing.T) {
	nodes := computeNodes(2, 4, 16<<30)
	s := New(Config{Policy: PolicyShared}, nodes, 0)
	if _, err := s.Submit(cred(1000), spec(1, 100)); err != nil {
		t.Fatal(err)
	}
	s.Step()
	nodes[0].Crash()
	s.Step() // fails the job, records the down transition
	nodes[0].Restore()
	for _, n := range nodes {
		n.Reset()
	}
	s.Reset()
	checkAggregates(t, s, "after crash + reset")
	// A full-width job must place again: all capacity is back.
	j, err := s.Submit(cred(1000), spec(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	got, err := s.Job(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != Running {
		t.Errorf("full-cluster job is %v after reset, want Running", got.State)
	}
	if j.ID != 1 {
		t.Errorf("job numbering did not rewind: first post-reset ID %d", j.ID)
	}
}
