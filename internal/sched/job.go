// Package sched implements the Slurm-like batch scheduler substrate
// plus the paper's scheduler separation measures (§IV-B):
//
//   - PrivateData: restrict globally visible scheduler information so
//     users only see their own jobs and accounting records;
//   - node-sharing policies: the default shared policy, per-job
//     exclusive allocation, and the paper's user-based whole-node
//     policy where a node only ever runs jobs of a single user;
//   - pam_slurm: ssh to a compute node is permitted only while the
//     user has a job running there;
//   - prolog/epilog hooks, used by the GPU substrate to assign device
//     permissions and clear accelerator memory between users.
//
// Time is logical: the scheduler advances one tick per Step call, so
// experiments are deterministic.
package sched

import (
	"fmt"

	"repro/internal/ids"
)

// JobState is a job's lifecycle state.
type JobState int

// Job states.
const (
	Pending JobState = iota
	Running
	Completed
	Failed // killed by a node crash or OOM
	Cancelled
)

func (s JobState) String() string {
	switch s {
	case Pending:
		return "PD"
	case Running:
		return "R"
	case Completed:
		return "CD"
	case Failed:
		return "F"
	case Cancelled:
		return "CA"
	default:
		return "?"
	}
}

// SharingPolicy selects how compute nodes are shared between jobs.
type SharingPolicy int

// Node-sharing policies (paper §IV-B).
const (
	// PolicyShared is the throughput-oriented default: jobs from any
	// mix of users may share a node.
	PolicyShared SharingPolicy = iota
	// PolicyExclusive allocates whole nodes per job: only tasks of
	// one job run on a node, wasting the remainder for small jobs.
	PolicyExclusive
	// PolicyUserWholeNode is the paper's policy: whole nodes are
	// allocated per *user* — multiple jobs may pack a node as long as
	// every job on it belongs to the same user.
	PolicyUserWholeNode
)

func (p SharingPolicy) String() string {
	switch p {
	case PolicyShared:
		return "shared"
	case PolicyExclusive:
		return "exclusive"
	case PolicyUserWholeNode:
		return "user-wholenode"
	default:
		return "?"
	}
}

// ParsePolicy is String's inverse, for CLIs and declarative scenario
// files that carry policies as text.
func ParsePolicy(s string) (SharingPolicy, error) {
	switch s {
	case "shared":
		return PolicyShared, nil
	case "exclusive":
		return PolicyExclusive, nil
	case "user-wholenode":
		return PolicyUserWholeNode, nil
	}
	return 0, fmt.Errorf("sched: unknown sharing policy %q (shared, exclusive, user-wholenode)", s)
}

// JobSpec is what a user submits.
type JobSpec struct {
	Name    string
	Command string // full command line; may embed secrets (E2)
	WorkDir string
	// Partition targets a registered partition; empty means the
	// default placement over all compute nodes.
	Partition string
	Cores     int   // total cores, may span nodes
	MemB      int64 // memory per allocated node share
	GPUs      int   // GPUs per node
	// Duration is how many ticks the job runs once started.
	Duration int64
	// ActualMemB, when larger than MemB, models a job that exceeds
	// its request (OOM blast-radius experiment E4). Zero means
	// "behaves" (uses MemB).
	ActualMemB int64
}

// Job is a scheduled unit of work.
type Job struct {
	ID     int
	User   ids.UID
	Cred   ids.Credential
	Spec   JobSpec
	State  JobState
	Submit int64
	Start  int64
	End    int64
	Nodes  []string       // node names allocated
	Tasks  map[string]int // node -> cores allocated there
	// ArrayID/ArrayIndex identify sbatch-style array membership
	// (ArrayID 0 = not part of an array).
	ArrayID    int
	ArrayIndex int
}

// Clone returns a copy safe to hand to observers.
func (j *Job) Clone() *Job {
	nj := *j
	nj.Cred = j.Cred.Clone()
	nj.Nodes = append([]string(nil), j.Nodes...)
	nj.Tasks = make(map[string]int, len(j.Tasks))
	for k, v := range j.Tasks {
		nj.Tasks[k] = v
	}
	return &nj
}

// Redacted returns the privacy-preserving view of a foreign job under
// PrivateData: the slot is visible as occupied, but username, name,
// command and paths are hidden (paper §IV-B: "many job properties
// could contain private information including username, jobname,
// command, working directory path").
func (j *Job) Redacted() *Job {
	return &Job{
		ID:    j.ID,
		User:  ids.NoUID,
		State: j.State,
		Spec:  JobSpec{Name: "(private)", Cores: j.Spec.Cores},
	}
}

func (j *Job) String() string {
	return fmt.Sprintf("job %d user %d %s cores=%d state=%s", j.ID, j.User, j.Spec.Name, j.Spec.Cores, j.State)
}

// AccountingRecord is one sacct row.
type AccountingRecord struct {
	JobID     int
	User      ids.UID
	Name      string
	State     JobState
	Submit    int64
	Start     int64
	End       int64
	CoreTicks int64 // cores × runtime
	NodeList  []string
}
