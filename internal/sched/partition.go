package sched

import (
	"errors"
	"fmt"
	"strings"
)

// Partition groups nodes under a submission target with its own
// limits, the way the paper's environment distinguishes batch
// partitions from the interactive debug queue (§IV-B: "there are
// still some nodes like login nodes, data transfer nodes, and
// interactive debug queue nodes on which multiple simultaneous users
// are working").
//
// A partition may override the cluster's node-sharing policy: LLSC
// runs user-whole-node on batch partitions while the interactive
// debug partition stays shared (which is exactly why process hiding
// stays necessary there).
type Partition struct {
	Name string
	// NodePrefix selects member nodes by name prefix (e.g. "c" for
	// c00..c07, "debug" for debug nodes).
	NodePrefix string
	// MaxDuration rejects jobs longer than this many ticks (0 = no
	// limit). The debug partition is short-job-only.
	MaxDuration int64
	// MaxCoresPerJob rejects larger jobs (0 = no limit).
	MaxCoresPerJob int
	// PolicyOverride, when non-nil, replaces the cluster policy for
	// placement inside this partition.
	PolicyOverride *SharingPolicy
	// scope aggregates capacity over the member nodes, so feasibility
	// probes for partition jobs are O(1) too (set by AddPartition on
	// the stored copy; placement.go).
	scope *capScope
	// members is a bitset over node indices (nodeState.index), built by
	// AddPartition so the placement scan tests membership with one bit
	// probe instead of a string prefix match per node.
	members []uint64
}

// Partition errors.
var (
	ErrNoPartition      = errors.New("sched: no such partition")
	ErrPartitionLimit   = errors.New("sched: job exceeds partition limits")
	ErrPartitionMembers = errors.New("sched: partition matches no nodes")
)

// AddPartition registers a partition. Jobs name it via
// JobSpec.Partition; an empty spec partition uses default placement
// over all compute nodes.
func (s *Scheduler) AddPartition(p Partition) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	members := make([]uint64, (len(s.nodes)+63)/64)
	n := 0
	for i, ns := range s.nodes {
		if strings.HasPrefix(ns.node.Name, p.NodePrefix) {
			members[i/64] |= 1 << (i % 64)
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("%w: prefix %q", ErrPartitionMembers, p.NodePrefix)
	}
	if s.partitions == nil {
		s.partitions = make(map[string]*Partition)
	}
	// Re-registering a partition replaces its capacity scope too.
	if old := s.partitions[p.Name]; old != nil && old.scope != nil {
		s.dropScope(old.scope)
	}
	cp := p
	cp.members = members
	cp.scope = s.enrollScope(func(ns *nodeState) bool {
		return cp.hasMember(ns.index)
	})
	s.partitions[p.Name] = &cp
	s.gen++
	// A changed policy override or member set may make stuck pending
	// jobs placeable: re-open the scheduling gate.
	s.queueBlocked = false
	return nil
}

// Partitions lists registered partition names.
func (s *Scheduler) Partitions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.partitions))
	for name := range s.partitions {
		out = append(out, name)
	}
	return out
}

// validatePartition checks a spec against its partition's limits.
// Caller holds s.mu.
func (s *Scheduler) validatePartition(spec JobSpec) error {
	if spec.Partition == "" {
		return nil
	}
	p, ok := s.partitions[spec.Partition]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoPartition, spec.Partition)
	}
	if p.MaxDuration > 0 && spec.Duration > p.MaxDuration {
		return fmt.Errorf("%w: duration %d > %d in %s", ErrPartitionLimit, spec.Duration, p.MaxDuration, p.Name)
	}
	if p.MaxCoresPerJob > 0 && spec.Cores > p.MaxCoresPerJob {
		return fmt.Errorf("%w: cores %d > %d in %s", ErrPartitionLimit, spec.Cores, p.MaxCoresPerJob, p.Name)
	}
	return nil
}

// partitionOf returns the job's partition (nil = default).
// Caller holds s.mu.
func (s *Scheduler) partitionOf(j *Job) *Partition {
	if j.Spec.Partition == "" {
		return nil
	}
	return s.partitions[j.Spec.Partition]
}

// hasMember tests the membership bitset for a node index.
func (p *Partition) hasMember(i int) bool {
	return p.members[i/64]>>(i%64)&1 == 1
}

// inPartition reports whether the node at index i in s.nodes belongs
// to the partition (nil partition = every compute node).
func inPartition(p *Partition, i int) bool {
	return p == nil || p.hasMember(i)
}

// effectivePolicy returns the sharing policy that governs a job.
func (s *Scheduler) effectivePolicy(j *Job) SharingPolicy {
	if p := s.partitionOf(j); p != nil && p.PolicyOverride != nil {
		return *p.PolicyOverride
	}
	return s.Cfg.Policy
}
