package sched

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/ids"
)

// Job arrays and per-user QoS limits: the control-plane features the
// paper's workload story leans on. Parameter sweeps and Monte Carlo
// campaigns arrive as `sbatch --array=0-N` submissions [25], and a
// scheduler serving thousands of users needs per-user queue limits so
// one sweep cannot starve everyone else.

// ErrUserLimit is returned when a submission would exceed the
// per-user active-job limit.
var ErrUserLimit = errors.New("sched: per-user job limit reached")

// SetUserLimit caps the number of active (pending+running) jobs a
// single user may have; 0 removes the cap.
func (s *Scheduler) SetUserLimit(limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.userLimit = limit
	s.gen++
}

// activeJobsLocked counts pending+running jobs of uid from the
// incrementally maintained per-user counter — O(1), so submitting a
// 10k-task array stays linear in the array size. Caller holds s.mu.
func (s *Scheduler) activeJobsLocked(uid ids.UID) int {
	return s.activeByUser[uid]
}

// checkUserLimitLocked validates a submission of extra jobs against
// the cap. Caller holds s.mu.
func (s *Scheduler) checkUserLimitLocked(uid ids.UID, extra int) error {
	if s.userLimit <= 0 || uid == ids.Root {
		return nil
	}
	if s.activeJobsLocked(uid)+extra > s.userLimit {
		return fmt.Errorf("%w: uid %d limit %d", ErrUserLimit, uid, s.userLimit)
	}
	return nil
}

// SubmitArray submits an sbatch-style job array: count tasks sharing
// one array ID, each with "--task=<index>" appended to the command
// and "[i]" to the name. The whole array is admitted or rejected
// atomically against the user limit.
func (s *Scheduler) SubmitArray(cred ids.Credential, spec JobSpec, count int) ([]*Job, error) {
	if count <= 0 {
		return nil, fmt.Errorf("%w: array count %d", ErrBadSpec, count)
	}
	s.mu.Lock()
	if err := s.checkUserLimitLocked(cred.UID, count); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	arrayID := s.nextArray
	s.nextArray++
	s.gen++
	s.mu.Unlock()

	jobs := make([]*Job, 0, count)
	for i := 0; i < count; i++ {
		ts := spec
		ts.Name = fmt.Sprintf("%s[%d]", spec.Name, i)
		sep := " "
		if strings.TrimSpace(ts.Command) == "" {
			sep = ""
		}
		ts.Command = fmt.Sprintf("%s%s--task=%d", spec.Command, sep, i)
		j, err := s.Submit(cred, ts)
		if err != nil {
			// Roll back what we already queued to keep the array
			// all-or-nothing.
			for _, q := range jobs {
				_ = s.Cancel(cred, q.ID)
			}
			return nil, err
		}
		s.mu.Lock()
		s.jobs[j.ID].ArrayID = arrayID
		s.jobs[j.ID].ArrayIndex = i
		j.ArrayID, j.ArrayIndex = arrayID, i
		s.mu.Unlock()
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// CancelArray cancels every live task of an array owned by actor.
// Returns how many tasks were cancelled.
func (s *Scheduler) CancelArray(actor ids.Credential, arrayID int) (int, error) {
	s.mu.Lock()
	var victims []int
	for id, j := range s.jobs {
		if j.ArrayID == arrayID && (j.State == Pending || j.State == Running) {
			victims = append(victims, id)
		}
	}
	s.mu.Unlock()
	if len(victims) == 0 {
		return 0, fmt.Errorf("%w: array %d", ErrNoSuchJob, arrayID)
	}
	n := 0
	for _, id := range victims {
		if err := s.Cancel(actor, id); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ArrayState summarizes an array's tasks by state, as the observer is
// allowed to see them (PrivateData applies).
func (s *Scheduler) ArrayState(observer ids.Credential, arrayID int) map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[JobState]int)
	for _, j := range s.jobs {
		if j.ArrayID != arrayID {
			continue
		}
		if s.Cfg.PrivateData && !s.privileged(observer) && j.User != observer.UID {
			continue
		}
		out[j.State]++
	}
	return out
}
