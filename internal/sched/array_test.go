package sched

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ids"
)

func TestSubmitArrayBasics(t *testing.T) {
	s := New(Config{}, computeNodes(4, 8, 1000), 0)
	jobs, err := s.SubmitArray(cred(1000), JobSpec{Name: "sweep", Command: "sim --p=3", Cores: 1, MemB: 1, Duration: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 10 {
		t.Fatalf("array tasks = %d", len(jobs))
	}
	arrayID := jobs[0].ArrayID
	if arrayID == 0 {
		t.Fatalf("array id not assigned")
	}
	for i, j := range jobs {
		if j.ArrayID != arrayID || j.ArrayIndex != i {
			t.Errorf("task %d: array=%d index=%d", i, j.ArrayID, j.ArrayIndex)
		}
		if !strings.Contains(j.Spec.Name, "[") {
			t.Errorf("task name %q missing index", j.Spec.Name)
		}
		if !strings.Contains(j.Spec.Command, "--task=") {
			t.Errorf("task command %q missing task arg", j.Spec.Command)
		}
	}
	s.RunAll(100)
	states := s.ArrayState(cred(1000), arrayID)
	if states[Completed] != 10 {
		t.Errorf("array states = %v", states)
	}
}

func TestSubmitArrayValidation(t *testing.T) {
	s := New(Config{}, computeNodes(1, 4, 1000), 0)
	if _, err := s.SubmitArray(cred(1000), spec(1, 1), 0); !errors.Is(err, ErrBadSpec) {
		t.Errorf("count 0 err = %v", err)
	}
	// An array whose tasks can never fit rolls back atomically.
	if _, err := s.SubmitArray(cred(1000), spec(99, 1), 3); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("oversized array err = %v", err)
	}
	if got := len(s.Squeue(ids.RootCred())); got != 0 {
		t.Errorf("queue after failed array = %d", got)
	}
}

func TestCancelArray(t *testing.T) {
	s := New(Config{}, computeNodes(2, 4, 1000), 0)
	jobs, err := s.SubmitArray(cred(1000), spec(1, 50), 6)
	if err != nil {
		t.Fatal(err)
	}
	s.Step() // some start
	arrayID := jobs[0].ArrayID
	// Stranger cannot cancel.
	if _, err := s.CancelArray(cred(2000), arrayID); err == nil {
		t.Errorf("stranger cancelled array")
	}
	n, err := s.CancelArray(cred(1000), arrayID)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("cancelled %d tasks", n)
	}
	states := s.ArrayState(cred(1000), arrayID)
	if states[Pending] != 0 || states[Running] != 0 {
		t.Errorf("live tasks after CancelArray: %v", states)
	}
	if _, err := s.CancelArray(cred(1000), arrayID); !errors.Is(err, ErrNoSuchJob) {
		t.Errorf("re-cancel err = %v", err)
	}
}

func TestUserLimitEnforced(t *testing.T) {
	s := New(Config{}, computeNodes(4, 8, 1000), 0)
	s.SetUserLimit(5)
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(cred(1000), spec(1, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(cred(1000), spec(1, 10)); !errors.Is(err, ErrUserLimit) {
		t.Errorf("6th submit err = %v", err)
	}
	// Other users are unaffected; root is exempt.
	if _, err := s.Submit(cred(2000), spec(1, 10)); err != nil {
		t.Errorf("other user submit: %v", err)
	}
	if _, err := s.Submit(ids.RootCred(), spec(1, 10)); err != nil {
		t.Errorf("root submit: %v", err)
	}
	// Arrays count atomically against the limit.
	if _, err := s.SubmitArray(cred(2000), spec(1, 10), 5); !errors.Is(err, ErrUserLimit) {
		t.Errorf("array over limit err = %v", err)
	}
	// Finishing jobs frees headroom.
	s.RunAll(100)
	if _, err := s.Submit(cred(1000), spec(1, 1)); err != nil {
		t.Errorf("submit after drain: %v", err)
	}
	// Removing the cap lifts it.
	s.SetUserLimit(0)
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(cred(1000), spec(1, 1)); err != nil {
			t.Fatalf("uncapped submit: %v", err)
		}
	}
}

func TestArrayStatePrivacy(t *testing.T) {
	s := New(Config{PrivateData: true}, computeNodes(4, 8, 1000), 0)
	jobs, err := s.SubmitArray(cred(1000), spec(1, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	arrayID := jobs[0].ArrayID
	// The owner sees counts; a stranger sees an empty map.
	if got := s.ArrayState(cred(1000), arrayID); got[Pending]+got[Running] != 4 {
		t.Errorf("owner array state = %v", got)
	}
	if got := s.ArrayState(cred(2000), arrayID); len(got) != 0 {
		t.Errorf("stranger array state = %v", got)
	}
	if got := s.ArrayState(ids.RootCred(), arrayID); got[Pending]+got[Running] != 4 {
		t.Errorf("root array state = %v", got)
	}
}
