package sched

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/simos"
)

func indexCluster(t *testing.T) *Scheduler {
	t.Helper()
	nodes := []*simos.Node{
		simos.NewNode("c1", simos.Compute, 8, 1<<30, nil),
		simos.NewNode("c2", simos.Compute, 8, 1<<30, nil),
	}
	return New(Config{}, nodes, 0)
}

func idxCred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

// TestRunningIndexConsistency drives a mixed submit/cancel/run
// lifecycle and checks the pending-queue and running indexes always
// agree with the authoritative job states.
func TestRunningIndexConsistency(t *testing.T) {
	s := indexCluster(t)
	alice, bob := idxCred(1000), idxCred(2000)

	check := func(when string) {
		t.Helper()
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.queue.Len() != len(s.queueElem) {
			t.Fatalf("%s: queue len %d != index %d", when, s.queue.Len(), len(s.queueElem))
		}
		for e := s.queue.Front(); e != nil; e = e.Next() {
			j := e.Value.(*Job)
			if j.State != Pending {
				t.Fatalf("%s: job %d in queue with state %v", when, j.ID, j.State)
			}
		}
		for i, j := range s.runningSorted {
			if j.State != Running {
				t.Fatalf("%s: job %d in running index with state %v", when, j.ID, j.State)
			}
			if i > 0 && s.runningSorted[i-1].ID >= j.ID {
				t.Fatalf("%s: running index not ID-sorted", when)
			}
		}
		nRunning := 0
		active := make(map[ids.UID]int)
		for _, j := range s.jobs {
			if j.State == Running {
				nRunning++
			}
			if j.State == Pending || j.State == Running {
				active[j.User]++
			}
		}
		if nRunning != len(s.runningSorted) {
			t.Fatalf("%s: %d Running jobs but index holds %d", when, nRunning, len(s.runningSorted))
		}
		if len(active) != len(s.activeByUser) {
			t.Fatalf("%s: active users %d != counter map %d", when, len(active), len(s.activeByUser))
		}
		for uid, n := range active {
			if s.activeByUser[uid] != n {
				t.Fatalf("%s: uid %d active %d, counter says %d", when, uid, n, s.activeByUser[uid])
			}
		}
	}

	var jobs []*Job
	for i := 0; i < 6; i++ {
		cred := alice
		if i%2 == 1 {
			cred = bob
		}
		j, err := s.Submit(cred, JobSpec{Name: "j", Command: "x", Cores: 4, MemB: 1, Duration: 2})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	check("after submits")

	// Cancel a pending job from the middle of the queue: O(1) unlink
	// must leave the rest intact.
	if err := s.Cancel(bob, jobs[3].ID); err != nil {
		t.Fatal(err)
	}
	check("after pending cancel")

	s.Step()
	check("after first step")
	if err := s.Cancel(alice, jobs[0].ID); err != nil { // running cancel
		t.Fatal(err)
	}
	check("after running cancel")

	s.RunAll(100)
	check("after drain")
	if s.PendingCount() != 0 {
		t.Errorf("queue not drained: %d", s.PendingCount())
	}
	s.mu.Lock()
	if len(s.runningSorted) != 0 {
		t.Errorf("running index not empty after drain: %d", len(s.runningSorted))
	}
	s.mu.Unlock()
}

// TestSqueueMatchesJobStates: the index-backed Squeue must return
// exactly the pending+running jobs, ID-sorted, as the scan did.
func TestSqueueMatchesJobStates(t *testing.T) {
	s := indexCluster(t)
	alice := idxCred(1000)
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(alice, JobSpec{Name: "j", Command: "x", Cores: 8, MemB: 1, Duration: 3}); err != nil {
			t.Fatal(err)
		}
	}
	s.Step() // two start (2×8 cores), three stay pending
	got := s.Squeue(alice)
	if len(got) != 5 {
		t.Fatalf("Squeue len = %d, want 5", len(got))
	}
	for i, j := range got {
		if i > 0 && got[i-1].ID >= j.ID {
			t.Errorf("Squeue not ID-sorted")
		}
		if j.State != Pending && j.State != Running {
			t.Errorf("Squeue returned job %d in state %v", j.ID, j.State)
		}
	}
	s.RunAll(100)
	if n := len(s.Squeue(alice)); n != 0 {
		t.Errorf("Squeue after drain = %d, want 0", n)
	}
}
