package sched

import (
	"repro/internal/ids"
	"repro/internal/simos"
)

// This file holds the event-driven placement engine's capacity
// aggregates. The per-tick hot path of a draining campaign is
// dominated by *failed* placement attempts: every pending job used to
// walk every node every tick, allocating a placement map each time.
// The engine replaces that with
//
//   - capScope: per-partition running totals (free cores, empty-node
//     capacity, per-user whole-node capacity, GPU availability) that
//     let fit reject an unplaceable job in O(1) without touching a
//     single node — and let Step skip the whole queue scan when the
//     cluster is full;
//   - placeScratch: reusable slice-based placement (node index +
//     cores) so the scan phase allocates nothing, successful or not;
//   - applyPlace/applyRelease: the single mutation path for node
//     allocations, keeping every aggregate — including the OOM-armed
//     node count that gates the fault-injection scan — incremental.
//
// Aggregates are conservative, never optimistic: they may admit a job
// the scan then fails to place (down nodes and per-node memory are
// only checked by the scan), but a probe rejection is always final.

// capScope aggregates capacity over one set of compute nodes: the
// whole cluster (the default scope) or one partition. A node belongs
// to every scope whose member set contains it, and contributes to all
// of them on each allocation change.
type capScope struct {
	// freeCores is the total unallocated cores over member nodes —
	// the shared-policy feasibility bound, and (on the default scope)
	// the "is the cluster completely full" fast path for Step.
	freeCores int64
	// emptyNodes / emptyCores count member nodes with no allocations
	// and their total cores — the exclusive-policy bound.
	emptyNodes int
	emptyCores int64
	// userFree sums free cores on nodes whose allocations all belong
	// to one user, keyed by that user: together with emptyCores it
	// bounds what a user-wholenode job can ever get. Entries are
	// removed at zero.
	userFree map[ids.UID]int64
	// maxNodeMemB is the largest per-node memory among members
	// (static): a job asking more per node can never run here.
	maxNodeMemB int64
	// gpuAtLeast[g] counts member nodes with at least g free GPUs
	// (index 0 unused); nil when the cluster exposes no GPUs. A job
	// needs its per-node GPU request satisfiable on at least one node.
	gpuAtLeast []int32
}

func newCapScope(maxGPUs int) *capScope {
	sc := &capScope{userFree: make(map[ids.UID]int64)}
	if maxGPUs > 0 {
		sc.gpuAtLeast = make([]int32, maxGPUs+1)
	}
	return sc
}

// reset empties the scope in place (keeping its allocations) so it can
// be re-enrolled from scratch — the Scheduler.Reset path.
func (sc *capScope) reset() {
	sc.freeCores = 0
	sc.emptyNodes = 0
	sc.emptyCores = 0
	clear(sc.userFree)
	sc.maxNodeMemB = 0
	for i := range sc.gpuAtLeast {
		sc.gpuAtLeast[i] = 0
	}
}

// enroll adds a member node's static quantities and current
// contribution to the scope. Caller holds s.mu.
func (sc *capScope) enroll(ns *nodeState) {
	if ns.node.MemB > sc.maxNodeMemB {
		sc.maxNodeMemB = ns.node.MemB
	}
	sc.account(ns, +1)
}

// account adds (sign=+1) or removes (sign=-1) a node's current
// contribution. Every mutation of a node's allocations is bracketed
// by account(-1) / mutate / account(+1) on each containing scope.
func (sc *capScope) account(ns *nodeState, sign int64) {
	free := int64(ns.freeCores())
	sc.freeCores += sign * free
	if len(ns.jobs) == 0 {
		sc.emptyNodes += int(sign)
		sc.emptyCores += sign * int64(ns.node.Cores)
	} else if u, ok := ns.sole(); ok {
		if v := sc.userFree[u] + sign*free; v != 0 {
			sc.userFree[u] = v
		} else {
			delete(sc.userFree, u)
		}
	}
	if sc.gpuAtLeast != nil {
		for g := ns.freeGPUs(); g >= 1; g-- {
			sc.gpuAtLeast[g] += int32(sign)
		}
	}
}

// sole returns the single user allocated on the node, if exactly one.
func (ns *nodeState) sole() (ids.UID, bool) {
	if len(ns.users) != 1 {
		return ids.NoUID, false
	}
	return ns.users[0].uid, true
}

// oomArmed reports whether the next fault-injection pass would crash
// this node: some job exceeds physical memory outright, or the
// committed memory (max of request and actual per job) oversubscribes
// it. Both inputs are maintained incrementally in applyPlace/Release.
func (ns *nodeState) oomArmed() bool {
	return ns.overCount > 0 || ns.memCommit > ns.node.MemB
}

// effMemB is the memory a job pins on each of its nodes: its request,
// or its actual usage when it misbehaves beyond it.
func effMemB(j *Job) int64 {
	m := j.Spec.MemB
	if j.Spec.ActualMemB > m {
		m = j.Spec.ActualMemB
	}
	return m
}

// scopeFor returns the aggregate scope placement draws from. Caller
// holds s.mu.
func (s *Scheduler) scopeFor(part *Partition) *capScope {
	if part != nil && part.scope != nil {
		return part.scope
	}
	return s.defaultScope
}

// probe is the O(1) feasibility test against the scope aggregates: a
// false return proves no placement scan could succeed now, so callers
// skip the scan (and its node walk) entirely. A true return promises
// nothing — the scan still applies per-node memory, GPU, partition
// and down-node constraints.
func (s *Scheduler) probe(j *Job, sc *capScope, policy SharingPolicy) bool {
	need := int64(j.Spec.Cores)
	switch policy {
	case PolicyShared:
		if need > sc.freeCores {
			return false
		}
	case PolicyExclusive:
		if need > sc.emptyCores {
			return false
		}
	case PolicyUserWholeNode:
		if need > sc.emptyCores+sc.userFree[j.User] {
			return false
		}
	default:
		return false
	}
	if j.Spec.MemB > sc.maxNodeMemB {
		return false
	}
	if g := j.Spec.GPUs; g > 0 {
		if sc.gpuAtLeast == nil || g >= len(sc.gpuAtLeast) || sc.gpuAtLeast[g] == 0 {
			return false
		}
	}
	return true
}

// placeScratch is the reusable placement buffer fit writes into:
// parallel slices of node index (into s.nodes) and cores taken there.
// Failed attempts leave nothing behind; successful ones are
// materialized into the job by tryStart. One per scheduler, guarded
// by s.mu like everything else on the hot path.
type placeScratch struct {
	nodes []int
	cores []int
}

func (ps *placeScratch) reset() {
	ps.nodes = ps.nodes[:0]
	ps.cores = ps.cores[:0]
}

// applyPlace records a job's allocation on one node, updating the
// node, its scope aggregates, and the cluster's OOM-armed count.
// Caller holds s.mu.
func (s *Scheduler) applyPlace(ns *nodeState, j *Job, cores int) {
	for _, sc := range ns.scopes {
		sc.account(ns, -1)
	}
	wasArmed := ns.oomArmed()
	ns.usedCores += cores
	ns.usedMem += j.Spec.MemB
	ns.usedGPUs += j.Spec.GPUs
	if ns.jobs == nil {
		ns.jobs = make(map[int]*Job, 4)
	}
	ns.jobs[j.ID] = j
	ns.addUser(j.User)
	ns.memCommit += effMemB(j)
	if j.Spec.ActualMemB > ns.node.MemB {
		ns.overCount++
	}
	if ns.oomArmed() != wasArmed {
		s.armedNodes++
	}
	for _, sc := range ns.scopes {
		sc.account(ns, +1)
	}
}

// applyRelease undoes applyPlace for one node of a finishing job.
// Caller holds s.mu.
func (s *Scheduler) applyRelease(ns *nodeState, j *Job, cores int) {
	for _, sc := range ns.scopes {
		sc.account(ns, -1)
	}
	wasArmed := ns.oomArmed()
	ns.usedCores -= cores
	ns.usedMem -= j.Spec.MemB
	ns.usedGPUs -= j.Spec.GPUs
	delete(ns.jobs, j.ID)
	ns.delUser(j.User)
	ns.memCommit -= effMemB(j)
	if j.Spec.ActualMemB > ns.node.MemB {
		ns.overCount--
	}
	if ns.oomArmed() != wasArmed {
		s.armedNodes--
	}
	for _, sc := range ns.scopes {
		sc.account(ns, +1)
	}
}

// enrollScope computes a fresh scope over the member nodes selected
// by keep, wires it into each member's scope list, and returns it.
// Caller holds s.mu.
func (s *Scheduler) enrollScope(keep func(*nodeState) bool) *capScope {
	sc := newCapScope(s.maxNodeGPUs)
	for _, ns := range s.nodes {
		if ns.node.Kind != simos.Compute || !keep(ns) {
			continue
		}
		sc.enroll(ns)
		ns.scopes = append(ns.scopes, sc)
	}
	return sc
}

// dropScope detaches a scope from every node (a partition being
// replaced). Caller holds s.mu.
func (s *Scheduler) dropScope(sc *capScope) {
	for _, ns := range s.nodes {
		for i, have := range ns.scopes {
			if have == sc {
				ns.scopes = append(ns.scopes[:i], ns.scopes[i+1:]...)
				break
			}
		}
	}
}
