package sched

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/simos"
)

// Config is the scheduler's separation-relevant configuration.
type Config struct {
	// PrivateData hides other users' jobs and accounting (paper §IV-B).
	PrivateData bool
	// Policy is the node-sharing policy.
	Policy SharingPolicy
	// PamSlurm gates compute-node ssh on having a job there.
	PamSlurm bool
	// CoordinatorGIDs may view all jobs even under PrivateData
	// (Slurm's PrivateData exempts operators/coordinators).
	CoordinatorGIDs []ids.GID
}

// Hook runs at job start (prolog) or end (epilog) on each node of the
// job. The GPU substrate registers both.
type Hook func(job *Job, node *simos.Node) error

// nodeState tracks allocations on one node.
type nodeState struct {
	node      *simos.Node
	usedCores int
	usedMem   int64
	usedGPUs  int
	totalGPUs int
	jobs      map[int]*Job
	users     map[ids.UID]int // uid -> #jobs on node
}

func (ns *nodeState) freeCores() int { return ns.node.Cores - ns.usedCores }
func (ns *nodeState) freeMem() int64 { return ns.node.MemB - ns.usedMem }
func (ns *nodeState) freeGPUs() int  { return ns.totalGPUs - ns.usedGPUs }
func (ns *nodeState) empty() bool    { return len(ns.jobs) == 0 }
func (ns *nodeState) soleUser(u ids.UID) bool {
	for uid := range ns.users {
		if uid != u {
			return false
		}
	}
	return true
}

// Scheduler is the cluster batch scheduler.
//
// The hot per-tick state is indexed rather than scanned: pending jobs
// live in a linked list with a jobID→element map (O(1) dequeue, no
// per-tick queue copies), and running jobs are tracked in an
// incrementally maintained ID-sorted slice, so Step never walks the
// full historical s.jobs map.
type Scheduler struct {
	Cfg Config

	mu         sync.Mutex
	now        int64
	nextID     int
	nodes      []*nodeState
	byName     map[string]*nodeState
	partitions map[string]*Partition
	userLimit  int        // max active jobs per user; 0 = unlimited
	nextArray  int        // next array id (starts at 1)
	queue      *list.List // pending *Job, submit order
	queueElem  map[int]*list.Element
	jobs       map[int]*Job // every job ever submitted, by ID
	// runningSorted indexes jobs in state Running, kept ID-sorted
	// incrementally (inserted on start, removed on finish) so the
	// per-tick completion pass never re-sorts. It is the single
	// authority on the running set — len() is the count, range is
	// the deterministic iteration order. (Squeue still sorts its
	// small merged pending+running result: backfill interleaves the
	// two ID sequences.)
	runningSorted []*Job
	// activeByUser counts each user's pending+running jobs (the QoS
	// denominator), maintained on enqueue / cancel / finish so the
	// per-submit limit check is O(1).
	activeByUser map[ids.UID]int
	records      []AccountingRecord
	prologs      []Hook
	epilogs      []Hook
	// computeCores/maxNodeGPUs are fixed at New: total compute cores
	// (the per-tick totalCoreTicks increment and the Submit
	// satisfiability bound) and the largest per-node GPU count.
	computeCores int64
	maxNodeGPUs  int
	// busyCoreTicks accumulates cores in use each tick, for the
	// utilization metric of experiment E4.
	busyCoreTicks  int64
	totalCoreTicks int64
	// crashes counts node OOM crashes; cofailures counts jobs of
	// *other* users killed by someone else's OOM (blast radius).
	crashes    int
	cofailures int
}

// Scheduler errors.
var (
	ErrNoSuchJob     = errors.New("sched: no such job")
	ErrNotOwner      = errors.New("sched: not job owner")
	ErrUnsatisfiable = errors.New("sched: request can never be satisfied")
	ErrBadSpec       = errors.New("sched: invalid job spec")
)

// New creates a scheduler over the given nodes. gpusPerNode sets how
// many GPU slots each compute node exposes (0 for CPU-only clusters).
func New(cfg Config, nodes []*simos.Node, gpusPerNode int) *Scheduler {
	s := &Scheduler{
		Cfg:          cfg,
		nextID:       1,
		nextArray:    1,
		byName:       make(map[string]*nodeState),
		queue:        list.New(),
		queueElem:    make(map[int]*list.Element),
		jobs:         make(map[int]*Job),
		activeByUser: make(map[ids.UID]int),
	}
	for _, n := range nodes {
		st := &nodeState{
			node:      n,
			totalGPUs: gpusPerNode,
			jobs:      make(map[int]*Job),
			users:     make(map[ids.UID]int),
		}
		s.nodes = append(s.nodes, st)
		s.byName[n.Name] = st
		if n.Kind == simos.Compute {
			s.computeCores += int64(n.Cores)
			if st.totalGPUs > s.maxNodeGPUs {
				s.maxNodeGPUs = st.totalGPUs
			}
		}
		if cfg.PamSlurm && n.Kind == simos.Compute {
			n.AddPAMHook(s.pamSlurmHook())
		}
	}
	return s
}

// pamSlurmHook implements pam_slurm: allow login only with a running
// job on the node (paper §IV-B).
func (s *Scheduler) pamSlurmHook() simos.PAMHook {
	return func(node *simos.Node, uid ids.UID) error {
		if uid == ids.Root {
			return nil
		}
		if s.HasJobOn(uid, node.Name) {
			return nil
		}
		return fmt.Errorf("pam_slurm: uid %d has no running job on %s", uid, node.Name)
	}
}

// AddProlog registers a job-start hook.
func (s *Scheduler) AddProlog(h Hook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prologs = append(s.prologs, h)
}

// AddEpilog registers a job-end hook.
func (s *Scheduler) AddEpilog(h Hook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epilogs = append(s.epilogs, h)
}

// Now returns the current logical time.
func (s *Scheduler) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Submit enqueues a job for cred. It validates that the request fits
// the cluster at all.
func (s *Scheduler) Submit(cred ids.Credential, spec JobSpec) (*Job, error) {
	if spec.Cores <= 0 || spec.Duration <= 0 {
		return nil, fmt.Errorf("%w: cores=%d duration=%d", ErrBadSpec, spec.Cores, spec.Duration)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validatePartition(spec); err != nil {
		return nil, err
	}
	if err := s.checkUserLimitLocked(cred.UID, 1); err != nil {
		return nil, err
	}
	if int64(spec.Cores) > s.computeCores {
		return nil, fmt.Errorf("%w: %d cores > cluster %d", ErrUnsatisfiable, spec.Cores, s.computeCores)
	}
	// The GPU request is per node, so it must fit a single node.
	if spec.GPUs > s.maxNodeGPUs {
		return nil, fmt.Errorf("%w: %d gpus/node > node max %d", ErrUnsatisfiable, spec.GPUs, s.maxNodeGPUs)
	}
	j := &Job{
		ID:     s.nextID,
		User:   cred.UID,
		Cred:   cred.Clone(),
		Spec:   spec,
		State:  Pending,
		Submit: s.now,
		Tasks:  make(map[string]int),
	}
	s.nextID++
	s.jobs[j.ID] = j
	s.queueElem[j.ID] = s.queue.PushBack(j)
	s.activeByUser[j.User]++
	return j.Clone(), nil
}

// Cancel removes a pending job or kills a running one. Only the owner
// or root may cancel — and under PrivateData other users cannot even
// name foreign job IDs meaningfully.
func (s *Scheduler) Cancel(actor ids.Credential, jobID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchJob, jobID)
	}
	if !actor.IsRoot() && actor.UID != j.User {
		return fmt.Errorf("%w: job %d", ErrNotOwner, jobID)
	}
	switch j.State {
	case Pending:
		j.State = Cancelled
		j.End = s.now
		s.dequeue(j)
		s.decActiveLocked(j.User)
		s.account(j)
	case Running:
		s.finish(j, Cancelled)
	}
	return nil
}

// decActiveLocked drops one from a user's pending+running count,
// deleting the entry at zero so the map tracks only active users.
// Caller holds s.mu.
func (s *Scheduler) decActiveLocked(uid ids.UID) {
	if n := s.activeByUser[uid] - 1; n > 0 {
		s.activeByUser[uid] = n
	} else {
		delete(s.activeByUser, uid)
	}
}

// dequeue removes a job from the pending queue in O(1) via the
// jobID→element index. Caller holds s.mu.
func (s *Scheduler) dequeue(j *Job) {
	if e, ok := s.queueElem[j.ID]; ok {
		s.queue.Remove(e)
		delete(s.queueElem, j.ID)
	}
}

// startRunningLocked indexes a job that just entered state Running.
// Caller holds s.mu.
func (s *Scheduler) startRunningLocked(j *Job) {
	i := sort.Search(len(s.runningSorted), func(k int) bool { return s.runningSorted[k].ID >= j.ID })
	s.runningSorted = append(s.runningSorted, nil)
	copy(s.runningSorted[i+1:], s.runningSorted[i:])
	s.runningSorted[i] = j
}

// stopRunningLocked drops a job that just left state Running. Caller
// holds s.mu.
func (s *Scheduler) stopRunningLocked(j *Job) {
	i := sort.Search(len(s.runningSorted), func(k int) bool { return s.runningSorted[k].ID >= j.ID })
	if i < len(s.runningSorted) && s.runningSorted[i].ID == j.ID {
		s.runningSorted = append(s.runningSorted[:i], s.runningSorted[i+1:]...)
	}
}

// Step advances logical time by one tick: finish jobs whose time is
// up, apply memory usage and OOM faults, then schedule the queue.
// Returns the number of jobs started this tick.
func (s *Scheduler) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now++
	// Account utilization before finishing, i.e. usage during this
	// tick. Busy counts the cores jobs *requested*, not the cores a
	// placement occupies — exclusive allocations waste the node
	// remainder and that waste must show up as idle. Both sides come
	// from indexes: the fixed compute-core total and the running set.
	s.totalCoreTicks += s.computeCores
	for _, j := range s.runningSorted {
		s.busyCoreTicks += int64(j.Spec.Cores)
	}
	// 1. Completions. Collect due jobs first (in ID order, for
	// determinism) because finish mutates the running index.
	var due []*Job
	for _, j := range s.runningSorted {
		if s.now-j.Start >= j.Spec.Duration {
			due = append(due, j)
		}
	}
	for _, j := range due {
		s.finish(j, Completed)
	}
	// 2a. Externally crashed nodes (hardware failure injected by a
	// test or operator): every job on them fails.
	for _, ns := range s.nodes {
		if ns.node.Down() && len(ns.jobs) > 0 {
			for _, j := range jobsSorted(ns.jobs) {
				s.finish(j, Failed)
			}
		}
	}
	// 2b. OOM fault injection: jobs that exceed their request blow up
	// the node, killing every job on it.
	for _, ns := range s.nodes {
		over := false
		for _, j := range ns.jobs {
			if j.Spec.ActualMemB > ns.node.MemB {
				over = true
			}
		}
		var memSum int64
		for _, j := range ns.jobs {
			m := j.Spec.MemB
			if j.Spec.ActualMemB > m {
				m = j.Spec.ActualMemB
			}
			memSum += m
		}
		if over || memSum > ns.node.MemB {
			s.crashNode(ns)
		}
	}
	// 3. Scheduling pass (first-fit over submit order = FIFO with
	// backfill holes). Iterating the linked list with a next-capture
	// lets tryStart unlink the current element in place — no per-tick
	// copy of the queue.
	started := 0
	for e := s.queue.Front(); e != nil; {
		next := e.Next()
		if s.tryStart(e.Value.(*Job)) {
			started++
		}
		e = next
	}
	return started
}

// crashNode fails every job on the node and marks the crash. Jobs of
// users other than the at-fault user count as cofailures (blast
// radius, experiment E4).
func (s *Scheduler) crashNode(ns *nodeState) {
	s.crashes++
	var atFault ids.UID = ids.NoUID
	for _, j := range ns.jobs {
		if j.Spec.ActualMemB > j.Spec.MemB {
			atFault = j.User
			break
		}
	}
	for _, j := range jobsSorted(ns.jobs) {
		if j.User != atFault && atFault != ids.NoUID {
			s.cofailures++
		}
		s.finish(j, Failed)
	}
	ns.node.Crash()
	ns.node.Restore()
}

func jobsSorted(m map[int]*Job) []*Job {
	out := make([]*Job, 0, len(m))
	for _, j := range m {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// finish releases a job's resources, runs epilogs, records
// accounting. Caller holds s.mu.
func (s *Scheduler) finish(j *Job, state JobState) {
	if j.State != Running {
		return
	}
	j.State = state
	j.End = s.now
	s.stopRunningLocked(j)
	s.decActiveLocked(j.User)
	for nodeName, cores := range j.Tasks {
		ns := s.byName[nodeName]
		ns.usedCores -= cores
		ns.usedMem -= j.Spec.MemB
		ns.usedGPUs -= j.Spec.GPUs
		delete(ns.jobs, j.ID)
		ns.users[j.User]--
		if ns.users[j.User] == 0 {
			delete(ns.users, j.User)
		}
		ns.node.Procs.KillJob(j.ID)
		for _, h := range s.epilogs {
			_ = h(j, ns.node) // epilog failures are logged, not fatal, in Slurm
		}
	}
	s.account(j)
}

func (s *Scheduler) account(j *Job) {
	var ct int64
	if j.Start > 0 {
		ct = int64(j.Spec.Cores) * (j.End - j.Start)
	}
	s.records = append(s.records, AccountingRecord{
		JobID: j.ID, User: j.User, Name: j.Spec.Name, State: j.State,
		Submit: j.Submit, Start: j.Start, End: j.End,
		CoreTicks: ct, NodeList: append([]string(nil), j.Nodes...),
	})
}

// tryStart attempts to place job j now. Caller holds s.mu.
func (s *Scheduler) tryStart(j *Job) bool {
	placement := s.fit(j)
	if placement == nil {
		return false
	}
	j.State = Running
	j.Start = s.now
	j.Tasks = placement
	j.Nodes = j.Nodes[:0]
	for name, cores := range placement {
		ns := s.byName[name]
		ns.usedCores += cores
		ns.usedMem += j.Spec.MemB
		ns.usedGPUs += j.Spec.GPUs
		ns.jobs[j.ID] = j
		ns.users[j.User]++
		j.Nodes = append(j.Nodes, name)
		// Spawn one task process per node, carrying the command line
		// (the thing hidepid protects).
		p := ns.node.Procs.Spawn(j.Cred, 1, "slurmstepd", j.Spec.Command)
		_ = ns.node.Procs.SetJob(p.PID, j.ID)
		rss := j.Spec.MemB
		if j.Spec.ActualMemB > rss {
			rss = j.Spec.ActualMemB
		}
		_ = ns.node.Procs.SetRSS(p.PID, rss)
		for _, h := range s.prologs {
			_ = h(j, ns.node)
		}
	}
	sort.Strings(j.Nodes)
	s.dequeue(j)
	s.startRunningLocked(j)
	return true
}

// HasJobOn reports whether uid has a running job on the named node —
// the pam_slurm predicate.
func (s *Scheduler) HasJobOn(uid ids.UID, nodeName string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.byName[nodeName]
	if !ok {
		return false
	}
	return ns.users[uid] > 0
}

// Utilization returns busy core-ticks / total core-ticks so far.
func (s *Scheduler) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.totalCoreTicks == 0 {
		return 0
	}
	return float64(s.busyCoreTicks) / float64(s.totalCoreTicks)
}

// Crashes returns (node crashes, cross-user job cofailures).
func (s *Scheduler) Crashes() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes, s.cofailures
}

// PendingCount returns the queue length.
func (s *Scheduler) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// Job returns the job by ID as the *scheduler* sees it (no privacy
// filtering — use Squeue/JobView for user-facing access).
func (s *Scheduler) Job(id int) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	return j.Clone(), nil
}

// RunAll steps until the queue drains and all jobs finish, up to
// maxTicks. Returns the number of ticks executed.
func (s *Scheduler) RunAll(maxTicks int) int {
	for t := 0; t < maxTicks; t++ {
		s.Step()
		s.mu.Lock()
		idle := s.queue.Len() == 0 && len(s.runningSorted) == 0
		s.mu.Unlock()
		if idle {
			return t + 1
		}
	}
	return maxTicks
}
