package sched

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/simos"
)

// Config is the scheduler's separation-relevant configuration.
type Config struct {
	// PrivateData hides other users' jobs and accounting (paper §IV-B).
	PrivateData bool
	// Policy is the node-sharing policy.
	Policy SharingPolicy
	// PamSlurm gates compute-node ssh on having a job there.
	PamSlurm bool
	// CoordinatorGIDs may view all jobs even under PrivateData
	// (Slurm's PrivateData exempts operators/coordinators).
	CoordinatorGIDs []ids.GID
}

// Hook runs at job start (prolog) or end (epilog) on each node of the
// job. The GPU substrate registers both.
type Hook func(job *Job, node *simos.Node) error

// userCount is one entry of a node's per-user job tally. Nodes host a
// handful of users at most (one, under user-whole-node), so a compact
// slice beats a map at 10k-node scale: no per-node map header, no
// hashing on the hot path.
type userCount struct {
	uid ids.UID
	n   int
}

// nodeState tracks allocations on one node.
type nodeState struct {
	node      *simos.Node
	index     int // position in s.nodes; partition bitsets key on it
	usedCores int
	usedMem   int64
	usedGPUs  int
	totalGPUs int
	// jobs is allocated lazily on first placement so an untouched node
	// costs no map at construction.
	jobs  map[int]*Job
	users []userCount // per-user #jobs on node, unordered
	// scopes are the capacity aggregates this node contributes to
	// (the default scope plus any partitions containing it); nil for
	// non-compute nodes.
	scopes []*capScope
	// memCommit sums max(request, actual) memory over resident jobs;
	// overCount counts resident jobs whose actual usage exceeds the
	// node outright. Together they decide oomArmed without a scan.
	memCommit int64
	overCount int
}

func (ns *nodeState) freeCores() int { return ns.node.Cores - ns.usedCores }
func (ns *nodeState) freeMem() int64 { return ns.node.MemB - ns.usedMem }
func (ns *nodeState) freeGPUs() int  { return ns.totalGPUs - ns.usedGPUs }
func (ns *nodeState) empty() bool    { return len(ns.jobs) == 0 }
func (ns *nodeState) soleUser(u ids.UID) bool {
	for _, uc := range ns.users {
		if uc.uid != u {
			return false
		}
	}
	return true
}

// addUser counts one more job of u on the node.
func (ns *nodeState) addUser(u ids.UID) {
	for i := range ns.users {
		if ns.users[i].uid == u {
			ns.users[i].n++
			return
		}
	}
	ns.users = append(ns.users, userCount{uid: u, n: 1})
}

// delUser counts one job of u off the node, dropping the entry at zero.
func (ns *nodeState) delUser(u ids.UID) {
	for i := range ns.users {
		if ns.users[i].uid == u {
			ns.users[i].n--
			if ns.users[i].n == 0 {
				ns.users = append(ns.users[:i], ns.users[i+1:]...)
			}
			return
		}
	}
}

// userJobs returns how many jobs of u run on the node.
func (ns *nodeState) userJobs(u ids.UID) int {
	for _, uc := range ns.users {
		if uc.uid == u {
			return uc.n
		}
	}
	return 0
}

// Scheduler is the cluster batch scheduler.
//
// The per-tick hot path is event-driven rather than scan-based (see
// placement.go and calendar.go): pending jobs live in a linked list
// with a jobID→element map, running jobs are indexed both ID-sorted
// (for deterministic iteration) and in a completion calendar keyed by
// their end tick, and capacity aggregates reject unplaceable jobs —
// or skip the whole scheduling pass — without walking nodes. Step
// never scans the full historical s.jobs map.
type Scheduler struct {
	Cfg Config

	mu         sync.Mutex
	now        int64
	nextID     int
	nodes      []*nodeState
	byName     map[string]*nodeState
	partitions map[string]*Partition
	userLimit  int        // max active jobs per user; 0 = unlimited
	nextArray  int        // next array id (starts at 1)
	queue      *list.List // pending *Job, submit order
	queueElem  map[int]*list.Element
	jobs       map[int]*Job // every job ever submitted, by ID
	// runningSorted indexes jobs in state Running, kept ID-sorted
	// incrementally (inserted on start, removed on finish). It is the
	// single authority on the running set — len() is the count, range
	// is the deterministic iteration order (Squeue still sorts its
	// small merged pending+running result: backfill interleaves the
	// two ID sequences).
	runningSorted []*Job
	// calendar schedules completions by end tick, with lazy deletion;
	// due is its reusable pop buffer.
	calendar calendar
	due      []*Job
	// activeByUser counts each user's pending+running jobs (the QoS
	// denominator), maintained on enqueue / cancel / finish so the
	// per-submit limit check is O(1).
	activeByUser map[ids.UID]int
	records      []AccountingRecord
	prologs      []Hook
	epilogs      []Hook
	// defaultScope aggregates capacity over all compute nodes;
	// scratch is the allocation-free placement buffer (placement.go).
	defaultScope *capScope
	scratch      placeScratch
	// armedNodes counts nodes whose resident jobs oversubscribe
	// memory: the OOM fault-injection pass runs only when nonzero.
	armedNodes int
	// queueBlocked is the event-driven gate on the scheduling pass:
	// set after any pass (capacity only shrinks within one), cleared
	// by whatever could make a pending job startable — a submit, a
	// resource release, a node coming back up.
	queueBlocked bool
	// lastDown mirrors each node's Down() state so the per-tick walk
	// detects external crash/restore transitions and re-opens the
	// queue gate on restores.
	lastDown []bool
	// computeCores/maxNodeGPUs are fixed at New: total compute cores
	// (the per-tick totalCoreTicks increment and the Submit
	// satisfiability bound) and the largest per-node GPU count.
	computeCores int64
	maxNodeGPUs  int
	// busyCores sums Spec.Cores over running jobs (maintained on
	// start/finish); busyCoreTicks accumulates it each tick for the
	// utilization metric of experiment E4.
	busyCores      int64
	busyCoreTicks  int64
	totalCoreTicks int64
	// crashes counts node OOM crashes; cofailures counts jobs of
	// *other* users killed by someone else's OOM (blast radius).
	crashes    int
	cofailures int
	// stepCount/ffTicks feed the observability layer: real ticks
	// executed vs event-free ticks the analytic fast-forward skipped
	// (stepCount + ffTicks = total logical ticks advanced). Plain
	// int64s under s.mu — the per-tick cost is one increment — and
	// cleared by Reset like every other trial-scoped tally.
	stepCount int64
	ffTicks   int64
	// gen counts logical mutations since construction or the last
	// Reset: zero proves the scheduler is already pristine, so Reset
	// skips the O(nodes) rewind entirely.
	gen uint64
}

// Scheduler errors.
var (
	ErrNoSuchJob     = errors.New("sched: no such job")
	ErrNotOwner      = errors.New("sched: not job owner")
	ErrUnsatisfiable = errors.New("sched: request can never be satisfied")
	ErrBadSpec       = errors.New("sched: invalid job spec")
)

// New creates a scheduler over the given nodes. gpusPerNode sets how
// many GPU slots each compute node exposes (0 for CPU-only clusters).
func New(cfg Config, nodes []*simos.Node, gpusPerNode int) *Scheduler {
	s := &Scheduler{
		Cfg:          cfg,
		nextID:       1,
		nextArray:    1,
		byName:       make(map[string]*nodeState),
		queue:        list.New(),
		queueElem:    make(map[int]*list.Element),
		jobs:         make(map[int]*Job),
		activeByUser: make(map[ids.UID]int),
	}
	for _, n := range nodes {
		st := &nodeState{
			node:      n,
			index:     len(s.nodes),
			totalGPUs: gpusPerNode,
		}
		s.nodes = append(s.nodes, st)
		s.byName[n.Name] = st
		if n.Kind == simos.Compute {
			s.computeCores += int64(n.Cores)
			if st.totalGPUs > s.maxNodeGPUs {
				s.maxNodeGPUs = st.totalGPUs
			}
		}
		if cfg.PamSlurm && n.Kind == simos.Compute {
			n.AddPAMHook(s.pamSlurmHook())
		}
	}
	s.lastDown = make([]bool, len(s.nodes))
	s.defaultScope = s.enrollScope(func(*nodeState) bool { return true })
	return s
}

// Reset rewinds the scheduler to its freshly-constructed state: time
// and job/array numbering restart, the pending queue, running index,
// completion calendar, accounting records, per-user activity counts
// and crash counters empty out, every node's allocations clear, and
// the capacity aggregates are rebuilt over the (again empty) nodes.
// Post-construction configuration is part of the state being rewound:
// partitions registered via AddPartition and the SetUserLimit cap are
// dropped, exactly as if the scheduler had just come out of New.
// Cluster-assembly wiring survives: the pam_slurm node hooks New
// installs and the prolog/epilog hooks registered while the cluster
// was assembled (the GPU manager's) stay in place. The method
// reuses every existing allocation (maps are cleared, slices
// truncated), so a Reset on a drained scheduler allocates nothing
// beyond the rebuilt default scope membership.
// An untouched scheduler (no submit, cancel, step, partition or limit
// change since construction or the last Reset) returns immediately.
func (s *Scheduler) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen == 0 {
		return
	}
	s.gen = 0
	s.now = 0
	s.nextID = 1
	s.nextArray = 1
	s.userLimit = 0
	s.queue.Init()
	clear(s.queueElem)
	clear(s.jobs)
	s.runningSorted = s.runningSorted[:0]
	s.calendar = s.calendar[:0]
	s.due = s.due[:0]
	clear(s.activeByUser)
	s.records = s.records[:0]
	s.partitions = nil
	s.queueBlocked = false
	s.armedNodes = 0
	for i := range s.lastDown {
		s.lastDown[i] = false
	}
	s.busyCores, s.busyCoreTicks, s.totalCoreTicks = 0, 0, 0
	s.crashes, s.cofailures = 0, 0
	s.stepCount, s.ffTicks = 0, 0
	for _, ns := range s.nodes {
		ns.usedCores, ns.usedMem, ns.usedGPUs = 0, 0, 0
		clear(ns.jobs)
		ns.users = ns.users[:0]
		ns.memCommit, ns.overCount = 0, 0
		ns.scopes = ns.scopes[:0]
	}
	s.defaultScope.reset()
	for _, ns := range s.nodes {
		if ns.node.Kind != simos.Compute {
			continue
		}
		s.defaultScope.enroll(ns)
		ns.scopes = append(ns.scopes, s.defaultScope)
	}
}

// pamSlurmHook implements pam_slurm: allow login only with a running
// job on the node (paper §IV-B).
func (s *Scheduler) pamSlurmHook() simos.PAMHook {
	return func(node *simos.Node, uid ids.UID) error {
		if uid == ids.Root {
			return nil
		}
		if s.HasJobOn(uid, node.Name) {
			return nil
		}
		return fmt.Errorf("pam_slurm: uid %d has no running job on %s", uid, node.Name)
	}
}

// AddProlog registers a job-start hook.
func (s *Scheduler) AddProlog(h Hook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prologs = append(s.prologs, h)
}

// AddEpilog registers a job-end hook.
func (s *Scheduler) AddEpilog(h Hook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epilogs = append(s.epilogs, h)
}

// Now returns the current logical time.
func (s *Scheduler) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Submit enqueues a job for cred. It validates that the request fits
// the cluster at all.
func (s *Scheduler) Submit(cred ids.Credential, spec JobSpec) (*Job, error) {
	if spec.Cores <= 0 || spec.Duration <= 0 {
		return nil, fmt.Errorf("%w: cores=%d duration=%d", ErrBadSpec, spec.Cores, spec.Duration)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validatePartition(spec); err != nil {
		return nil, err
	}
	if err := s.checkUserLimitLocked(cred.UID, 1); err != nil {
		return nil, err
	}
	if int64(spec.Cores) > s.computeCores {
		return nil, fmt.Errorf("%w: %d cores > cluster %d", ErrUnsatisfiable, spec.Cores, s.computeCores)
	}
	// The GPU request is per node, so it must fit a single node.
	if spec.GPUs > s.maxNodeGPUs {
		return nil, fmt.Errorf("%w: %d gpus/node > node max %d", ErrUnsatisfiable, spec.GPUs, s.maxNodeGPUs)
	}
	j := &Job{
		ID:     s.nextID,
		User:   cred.UID,
		Cred:   cred.Clone(),
		Spec:   spec,
		State:  Pending,
		Submit: s.now,
		Tasks:  make(map[string]int),
	}
	s.nextID++
	s.gen++
	s.jobs[j.ID] = j
	s.queueElem[j.ID] = s.queue.PushBack(j)
	s.activeByUser[j.User]++
	s.queueBlocked = false // a new job may fit holes the rest cannot
	return j.Clone(), nil
}

// Cancel removes a pending job or kills a running one. Only the owner
// or root may cancel — and under PrivateData other users cannot even
// name foreign job IDs meaningfully.
func (s *Scheduler) Cancel(actor ids.Credential, jobID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchJob, jobID)
	}
	if !actor.IsRoot() && actor.UID != j.User {
		return fmt.Errorf("%w: job %d", ErrNotOwner, jobID)
	}
	switch j.State {
	case Pending:
		j.State = Cancelled
		j.End = s.now
		s.gen++
		s.dequeue(j)
		s.decActiveLocked(j.User)
		s.account(j)
	case Running:
		s.gen++
		s.finish(j, Cancelled)
	}
	return nil
}

// decActiveLocked drops one from a user's pending+running count,
// deleting the entry at zero so the map tracks only active users.
// Caller holds s.mu.
func (s *Scheduler) decActiveLocked(uid ids.UID) {
	if n := s.activeByUser[uid] - 1; n > 0 {
		s.activeByUser[uid] = n
	} else {
		delete(s.activeByUser, uid)
	}
}

// dequeue removes a job from the pending queue in O(1) via the
// jobID→element index. Caller holds s.mu.
func (s *Scheduler) dequeue(j *Job) {
	if e, ok := s.queueElem[j.ID]; ok {
		s.queue.Remove(e)
		delete(s.queueElem, j.ID)
	}
}

// startRunningLocked indexes a job that just entered state Running.
// Caller holds s.mu.
func (s *Scheduler) startRunningLocked(j *Job) {
	i := sort.Search(len(s.runningSorted), func(k int) bool { return s.runningSorted[k].ID >= j.ID })
	s.runningSorted = append(s.runningSorted, nil)
	copy(s.runningSorted[i+1:], s.runningSorted[i:])
	s.runningSorted[i] = j
}

// stopRunningLocked drops a job that just left state Running. Caller
// holds s.mu.
func (s *Scheduler) stopRunningLocked(j *Job) {
	i := sort.Search(len(s.runningSorted), func(k int) bool { return s.runningSorted[k].ID >= j.ID })
	if i < len(s.runningSorted) && s.runningSorted[i].ID == j.ID {
		s.runningSorted = append(s.runningSorted[:i], s.runningSorted[i+1:]...)
	}
}

// Step advances logical time by one tick: finish jobs whose time is
// up, apply memory usage and OOM faults, then schedule the queue.
// Returns the number of jobs started this tick.
func (s *Scheduler) Step() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepLocked()
}

// stepLocked is Step with s.mu held, shared with RunAll so the drain
// loop never re-locks to inspect state between ticks.
func (s *Scheduler) stepLocked() int {
	s.now++
	s.stepCount++
	s.gen++
	// Account utilization before finishing, i.e. usage during this
	// tick. Busy counts the cores jobs *requested*, not the cores a
	// placement occupies — exclusive allocations waste the node
	// remainder and that waste must show up as idle. Both sides are
	// running counters: nothing is summed per tick.
	s.totalCoreTicks += s.computeCores
	s.busyCoreTicks += s.busyCores
	// 1. Completions: pop due jobs off the calendar — (end tick, ID)
	// heap order finishes them in ID order, and nothing else in the
	// running set is touched.
	s.due = s.calendar.popDue(s.now, s.due[:0])
	for _, j := range s.due {
		s.finish(j, Completed)
	}
	// 2a. Externally crashed nodes (hardware failure injected by a
	// test or operator): every job on them fails. The same walk
	// tracks down/up transitions so an operator Restore re-opens the
	// scheduling gate.
	for i, ns := range s.nodes {
		down := ns.node.Down()
		if down != s.lastDown[i] {
			s.lastDown[i] = down
			if !down {
				s.queueBlocked = false // restored capacity
			}
		}
		if down && len(ns.jobs) > 0 {
			for _, j := range jobsSorted(ns.jobs) {
				s.finish(j, Failed)
			}
		}
	}
	// 2b. OOM fault injection: jobs that exceed their request blow up
	// the node, killing every job on it. Armed state is maintained at
	// placement time, so the node walk runs only when a crash is due.
	if s.armedNodes > 0 {
		for _, ns := range s.nodes {
			if ns.oomArmed() {
				s.crashNode(ns)
			}
		}
	}
	// 3. Scheduling pass (first-fit over submit order = FIFO with
	// backfill holes). Skipped outright when nothing changed since
	// the last failed pass (queueBlocked) or the cluster has no free
	// core anywhere — the full-cluster steady state of a drain costs
	// O(1). Iterating the linked list with a next-capture lets
	// tryStart unlink the current element in place.
	started := 0
	if s.queue.Len() > 0 && !s.queueBlocked && s.defaultScope.freeCores > 0 {
		for e := s.queue.Front(); e != nil; {
			next := e.Next()
			if s.tryStart(e.Value.(*Job)) {
				started++
			}
			e = next
		}
	}
	// Capacity only shrinks during a pass, so jobs it left pending
	// stay unplaceable until a release/submit/restore clears this.
	s.queueBlocked = true
	return started
}

// crashNode fails every job on the node and marks the crash. Jobs of
// users other than the at-fault user count as cofailures (blast
// radius, experiment E4). The at-fault user is the lowest-ID job
// exceeding its request, so repeated runs blame identically even
// when several users misbehave on one node.
func (s *Scheduler) crashNode(ns *nodeState) {
	s.crashes++
	sorted := jobsSorted(ns.jobs)
	var atFault ids.UID = ids.NoUID
	for _, j := range sorted {
		if j.Spec.ActualMemB > j.Spec.MemB {
			atFault = j.User
			break
		}
	}
	for _, j := range sorted {
		if j.User != atFault && atFault != ids.NoUID {
			s.cofailures++
		}
		s.finish(j, Failed)
	}
	ns.node.Crash()
	ns.node.Restore()
}

func jobsSorted(m map[int]*Job) []*Job {
	out := make([]*Job, 0, len(m))
	for _, j := range m {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// finish releases a job's resources, runs epilogs, records
// accounting. Nodes are walked in j.Nodes order (sorted at start), so
// epilog hooks and resource releases happen in a stable node order.
// Caller holds s.mu.
func (s *Scheduler) finish(j *Job, state JobState) {
	if j.State != Running {
		return
	}
	j.State = state
	j.End = s.now
	s.stopRunningLocked(j)
	s.decActiveLocked(j.User)
	s.busyCores -= int64(j.Spec.Cores)
	for _, nodeName := range j.Nodes {
		ns := s.byName[nodeName]
		s.applyRelease(ns, j, j.Tasks[nodeName])
		ns.node.Procs.KillJob(j.ID)
		for _, h := range s.epilogs {
			_ = h(j, ns.node) // epilog failures are logged, not fatal, in Slurm
		}
	}
	s.queueBlocked = false // released capacity may start pending jobs
	s.account(j)
}

func (s *Scheduler) account(j *Job) {
	var ct int64
	if j.Start > 0 {
		ct = int64(j.Spec.Cores) * (j.End - j.Start)
	}
	s.records = append(s.records, AccountingRecord{
		JobID: j.ID, User: j.User, Name: j.Spec.Name, State: j.State,
		Submit: j.Submit, Start: j.Start, End: j.End,
		CoreTicks: ct, NodeList: append([]string(nil), j.Nodes...),
	})
}

// tryStart attempts to place job j now. A failed attempt — the common
// case while a campaign drains — costs an O(1) probe plus at most one
// allocation-free node scan. Caller holds s.mu.
func (s *Scheduler) tryStart(j *Job) bool {
	if !s.fit(j) {
		return false
	}
	j.State = Running
	j.Start = s.now
	j.Tasks = make(map[string]int, len(s.scratch.nodes))
	j.Nodes = j.Nodes[:0]
	for k, ni := range s.scratch.nodes {
		ns := s.nodes[ni]
		cores := s.scratch.cores[k]
		name := ns.node.Name
		j.Tasks[name] = cores
		j.Nodes = append(j.Nodes, name)
		s.applyPlace(ns, j, cores)
		// Spawn one task process per node, carrying the command line
		// (the thing hidepid protects).
		p := ns.node.Procs.Spawn(j.Cred, 1, "slurmstepd", j.Spec.Command)
		_ = ns.node.Procs.SetJob(p.PID, j.ID)
		rss := j.Spec.MemB
		if j.Spec.ActualMemB > rss {
			rss = j.Spec.ActualMemB
		}
		_ = ns.node.Procs.SetRSS(p.PID, rss)
		for _, h := range s.prologs {
			_ = h(j, ns.node)
		}
	}
	sort.Strings(j.Nodes)
	s.dequeue(j)
	s.startRunningLocked(j)
	s.calendar.push(j.Start+j.Spec.Duration, j)
	s.busyCores += int64(j.Spec.Cores)
	return true
}

// HasJobOn reports whether uid has a running job on the named node —
// the pam_slurm predicate.
func (s *Scheduler) HasJobOn(uid ids.UID, nodeName string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.byName[nodeName]
	if !ok {
		return false
	}
	return ns.userJobs(uid) > 0
}

// Utilization returns busy core-ticks / total core-ticks so far.
func (s *Scheduler) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.totalCoreTicks == 0 {
		return 0
	}
	return float64(s.busyCoreTicks) / float64(s.totalCoreTicks)
}

// Crashes returns (node crashes, cross-user job cofailures).
func (s *Scheduler) Crashes() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes, s.cofailures
}

// PendingCount returns the queue length.
func (s *Scheduler) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// Job returns the job by ID as the *scheduler* sees it (no privacy
// filtering — use Squeue/JobView for user-facing access).
func (s *Scheduler) Job(id int) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchJob, id)
	}
	return j.Clone(), nil
}

// RunAll steps until the queue drains and all jobs finish, up to
// maxTicks. Returns the number of ticks executed (fast-forwarded
// ticks count: logical time advances identically either way).
//
// The drain holds the lock once and is event-driven: after each real
// tick, if the queue is provably stuck (every pass leaves it blocked
// until capacity frees) and no OOM is armed, the ticks until the next
// calendar completion contain no events — their only effect is
// utilization accounting, which is applied analytically, and the
// clock jumps straight to the tick containing the next event.
func (s *Scheduler) RunAll(maxTicks int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ticks := int64(0)
	max := int64(maxTicks)
	for ticks < max {
		s.stepLocked()
		ticks++
		if s.queue.Len() == 0 && len(s.runningSorted) == 0 {
			return int(ticks)
		}
		ticks += s.fastForwardLocked(max - ticks)
	}
	return maxTicks
}

// fastForwardLocked advances over up to budget event-free ticks,
// returning how many were skipped. It refuses to skip whenever the
// next tick could do anything a real Step would: finish a due job,
// crash an armed node, or start a pending job. Caller holds s.mu.
func (s *Scheduler) fastForwardLocked(budget int64) int64 {
	if budget <= 0 || s.armedNodes > 0 {
		return 0
	}
	if s.queue.Len() > 0 && !s.queueBlocked {
		return 0
	}
	skip := budget
	if next, ok := s.calendar.nextDue(); ok {
		// The completion fires in the tick where now reaches next;
		// run that tick for real.
		if d := next - 1 - s.now; d < skip {
			skip = d
		}
	}
	// With nothing running and the queue stuck, no event ever comes:
	// burn the whole budget (the caller's maxTicks cap).
	if skip <= 0 {
		return 0
	}
	s.now += skip
	s.ffTicks += skip
	s.totalCoreTicks += s.computeCores * skip
	s.busyCoreTicks += s.busyCores * skip
	return skip
}

// Stats reports how many real ticks the scheduler has executed
// (stepLocked runs) and how many event-free ticks the analytic
// fast-forward skipped, since construction or the last Reset. Their
// sum is the total logical time advanced; the ratio is the
// event-driven engine's payoff, which is why the observability layer
// exports both.
func (s *Scheduler) Stats() (steps, fastForwarded int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepCount, s.ffTicks
}
