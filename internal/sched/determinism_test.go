package sched

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/simos"
)

// e4Campaign builds a scheduler loaded with the E4 experiment shape:
// 8×16-core nodes, 6 users round-robin submitting 50 short jobs each,
// every 60th job exceeding its memory request (OOM injection).
func e4Campaign(t *testing.T, pol SharingPolicy, seed uint64) *Scheduler {
	t.Helper()
	var nodes []*simos.Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, simos.NewNode(fmt.Sprintf("c%02d", i), simos.Compute, 16, 1<<30, nil))
	}
	s := New(Config{Policy: pol}, nodes, 2)
	rngs := make([]*metrics.RNG, 6)
	root := metrics.NewRNG(seed)
	for u := range rngs {
		rngs[u] = root.Split()
	}
	n := 0
	for i := 0; i < 50; i++ {
		for u := 0; u < 6; u++ {
			spec := JobSpec{
				Name:     fmt.Sprintf("u%d-j%d", u, i),
				Command:  "simulate",
				Cores:    1 + rngs[u].Intn(8),
				MemB:     1 << 20,
				Duration: 1 + int64(rngs[u].Intn(4)),
			}
			n++
			if n%60 == 0 {
				spec.ActualMemB = 2 << 30
			}
			if _, err := s.Submit(cred(ids.UID(1000+u)), spec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// fingerprint renders every accounting record plus the crash counters
// into one byte string, so two drains can be compared exactly.
func fingerprint(s *Scheduler) string {
	var b strings.Builder
	for _, r := range s.Sacct(ids.RootCred()) {
		fmt.Fprintf(&b, "%d|%d|%s|%v|%d|%d|%d|%d|%s\n",
			r.JobID, r.User, r.Name, r.State, r.Submit, r.Start, r.End, r.CoreTicks,
			strings.Join(r.NodeList, ","))
	}
	crashes, cofail := s.Crashes()
	fmt.Fprintf(&b, "crashes=%d cofailures=%d util=%.12f\n", crashes, cofail, s.Utilization())
	return b.String()
}

// TestCampaignDeterminism: two full E4-style drains from the same
// seed must produce byte-identical accounting — including which user
// is blamed for each OOM crash and every cofailure count. This locks
// in the fixes for map-ordered at-fault selection and epilog order.
func TestCampaignDeterminism(t *testing.T) {
	for _, pol := range []SharingPolicy{PolicyShared, PolicyExclusive, PolicyUserWholeNode} {
		t.Run(pol.String(), func(t *testing.T) {
			a := e4Campaign(t, pol, 4)
			b := e4Campaign(t, pol, 4)
			ta := a.RunAll(100000)
			tb := b.RunAll(100000)
			if ta != tb {
				t.Fatalf("makespans diverged: %d vs %d", ta, tb)
			}
			fa, fb := fingerprint(a), fingerprint(b)
			if fa != fb {
				i := 0
				for i < len(fa) && i < len(fb) && fa[i] == fb[i] {
					i++
				}
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("accounting diverged at byte %d:\nA: …%s\nB: …%s", i, fa[lo:min(i+80, len(fa))], fb[lo:min(i+80, len(fb))])
			}
		})
	}
}

// TestEpilogNodeOrder: multi-node jobs must fire prolog and epilog
// hooks in sorted node order, not map order.
func TestEpilogNodeOrder(t *testing.T) {
	s := New(Config{}, computeNodes(4, 4, 1<<20), 0)
	var prologOrder, epilogOrder []string
	s.AddProlog(func(j *Job, n *simos.Node) error {
		prologOrder = append(prologOrder, n.Name)
		return nil
	})
	s.AddEpilog(func(j *Job, n *simos.Node) error {
		epilogOrder = append(epilogOrder, n.Name)
		return nil
	})
	if _, err := s.Submit(cred(1000), spec(16, 2)); err != nil { // spans all 4 nodes
		t.Fatal(err)
	}
	s.RunAll(10)
	want := []string{"c00", "c01", "c02", "c03"}
	if strings.Join(prologOrder, ",") != strings.Join(want, ",") {
		t.Errorf("prolog order = %v, want %v", prologOrder, want)
	}
	if strings.Join(epilogOrder, ",") != strings.Join(want, ",") {
		t.Errorf("epilog order = %v, want %v", epilogOrder, want)
	}
}

// TestCrashBlamesLowestJobID: when two users both exceed their
// request on one shared node, the at-fault user is always the owner
// of the lowest over-memory job ID — cofailure counts cannot flap
// with map iteration order.
func TestCrashBlamesLowestJobID(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		s := New(Config{Policy: PolicyShared}, computeNodes(1, 8, 100), 0)
		// Two misbehaving jobs from different users plus one innocent
		// bystander, all sharing the node.
		over := JobSpec{Name: "hog", Command: "x", Cores: 2, MemB: 10, ActualMemB: 500, Duration: 10}
		j1, err := s.Submit(cred(1000), over)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(cred(2000), over); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit(cred(3000), JobSpec{Name: "v", Command: "y", Cores: 2, MemB: 10, Duration: 10}); err != nil {
			t.Fatal(err)
		}
		s.Step() // all three start
		s.Step() // OOM fires
		crashes, cofail := s.Crashes()
		if crashes != 1 {
			t.Fatalf("trial %d: crashes = %d, want 1", trial, crashes)
		}
		// Blame belongs to j1's user (lowest job ID): the other hog
		// and the bystander are cofailures — every trial.
		if cofail != 2 {
			t.Fatalf("trial %d: cofailures = %d, want 2 (stable blame on job %d)", trial, cofail, j1.ID)
		}
	}
}
