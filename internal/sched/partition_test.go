package sched

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/simos"
)

// partitionCluster: 4 batch nodes "c..", 2 debug nodes "debug..".
func partitionCluster(t *testing.T, policy SharingPolicy) *Scheduler {
	t.Helper()
	var nodes []*simos.Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, simos.NewNode(fmt.Sprintf("c%02d", i), simos.Compute, 8, 1<<20, nil))
	}
	for i := 0; i < 2; i++ {
		nodes = append(nodes, simos.NewNode(fmt.Sprintf("debug%d", i), simos.Compute, 8, 1<<20, nil))
	}
	s := New(Config{Policy: policy}, nodes, 0)
	if err := s.AddPartition(Partition{Name: "batch", NodePrefix: "c"}); err != nil {
		t.Fatal(err)
	}
	shared := PolicyShared
	if err := s.AddPartition(Partition{
		Name: "debug", NodePrefix: "debug",
		MaxDuration: 4, MaxCoresPerJob: 4,
		PolicyOverride: &shared,
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPartitionPlacementConfined(t *testing.T) {
	s := partitionCluster(t, PolicyUserWholeNode)
	j, err := s.Submit(cred(1000), JobSpec{Name: "b", Command: "x", Partition: "batch", Cores: 8, MemB: 1, Duration: 5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Submit(cred(1000), JobSpec{Name: "d", Command: "x", Partition: "debug", Cores: 2, MemB: 1, Duration: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	gb, _ := s.Job(j.ID)
	gd, _ := s.Job(d.ID)
	if gb.State != Running || gd.State != Running {
		t.Fatalf("states %v %v", gb.State, gd.State)
	}
	for _, n := range gb.Nodes {
		if n[0] != 'c' {
			t.Errorf("batch job on %s", n)
		}
	}
	for _, n := range gd.Nodes {
		if n[0] != 'd' {
			t.Errorf("debug job on %s", n)
		}
	}
}

func TestPartitionLimits(t *testing.T) {
	s := partitionCluster(t, PolicyUserWholeNode)
	if _, err := s.Submit(cred(1000), JobSpec{Name: "too-long", Command: "x", Partition: "debug", Cores: 1, MemB: 1, Duration: 100}); !errors.Is(err, ErrPartitionLimit) {
		t.Errorf("long debug job err = %v", err)
	}
	if _, err := s.Submit(cred(1000), JobSpec{Name: "too-wide", Command: "x", Partition: "debug", Cores: 8, MemB: 1, Duration: 2}); !errors.Is(err, ErrPartitionLimit) {
		t.Errorf("wide debug job err = %v", err)
	}
	if _, err := s.Submit(cred(1000), JobSpec{Name: "ghost", Command: "x", Partition: "nope", Cores: 1, MemB: 1, Duration: 1}); !errors.Is(err, ErrNoPartition) {
		t.Errorf("ghost partition err = %v", err)
	}
}

func TestPartitionPolicyOverride(t *testing.T) {
	// Cluster policy is user-wholenode, but the debug partition is
	// shared: two users may coexist on a debug node (which is why
	// hidepid stays necessary there, paper §IV-B).
	s := partitionCluster(t, PolicyUserWholeNode)
	a, _ := s.Submit(cred(1000), JobSpec{Name: "a", Command: "x", Partition: "debug", Cores: 2, MemB: 1, Duration: 4})
	b, _ := s.Submit(cred(2000), JobSpec{Name: "b", Command: "x", Partition: "debug", Cores: 2, MemB: 1, Duration: 4})
	s.Step()
	ga, _ := s.Job(a.ID)
	gb, _ := s.Job(b.ID)
	if ga.State != Running || gb.State != Running {
		t.Fatalf("states %v %v", ga.State, gb.State)
	}
	if ga.Nodes[0] != gb.Nodes[0] {
		t.Errorf("debug jobs did not share a node: %v %v", ga.Nodes, gb.Nodes)
	}
	// Batch partition still enforces whole-node-per-user.
	ba, _ := s.Submit(cred(1000), JobSpec{Name: "ba", Command: "x", Partition: "batch", Cores: 2, MemB: 1, Duration: 4})
	bb, _ := s.Submit(cred(2000), JobSpec{Name: "bb", Command: "x", Partition: "batch", Cores: 2, MemB: 1, Duration: 4})
	s.Step()
	gba, _ := s.Job(ba.ID)
	gbb, _ := s.Job(bb.ID)
	if gba.Nodes[0] == gbb.Nodes[0] {
		t.Errorf("batch jobs of two users share node %s", gba.Nodes[0])
	}
}

func TestAddPartitionNoMembers(t *testing.T) {
	s := partitionCluster(t, PolicyShared)
	if err := s.AddPartition(Partition{Name: "empty", NodePrefix: "zz"}); !errors.Is(err, ErrPartitionMembers) {
		t.Errorf("empty partition err = %v", err)
	}
	if got := len(s.Partitions()); got != 2 {
		t.Errorf("partitions = %d", got)
	}
}

func TestDefaultPartitionUsesAllComputeNodes(t *testing.T) {
	s := partitionCluster(t, PolicyShared)
	// A job with no partition can span batch and debug nodes alike.
	j, err := s.Submit(cred(1000), JobSpec{Name: "wide", Command: "x", Cores: 48, MemB: 1, Duration: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	g, _ := s.Job(j.ID)
	if g.State != Running || len(g.Nodes) != 6 {
		t.Errorf("wide job %v on %v", g.State, g.Nodes)
	}
}
