package sched

import (
	"strings"
	"testing"

	"repro/internal/ids"
)

func TestSqueueTextPrivacy(t *testing.T) {
	s := New(Config{PrivateData: true}, computeNodes(2, 4, 1000), 0)
	if _, err := s.Submit(cred(1000), JobSpec{Name: "mine", Command: "x", Cores: 1, MemB: 1, Duration: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(cred(2000), JobSpec{Name: "theirs", Command: "x", Cores: 1, MemB: 1, Duration: 10}); err != nil {
		t.Fatal(err)
	}
	s.Step()
	resolve := func(uid ids.UID) string {
		if uid == 1000 {
			return "alice"
		}
		return "bob"
	}
	out := s.SqueueText(cred(1000), resolve)
	if !strings.Contains(out, "mine") || !strings.Contains(out, "alice") {
		t.Errorf("own job missing:\n%s", out)
	}
	if strings.Contains(out, "theirs") || strings.Contains(out, "bob") {
		t.Errorf("foreign job leaked into text:\n%s", out)
	}
	// Root view includes both; nil resolver prints numeric UIDs.
	rootOut := s.SqueueText(ids.RootCred(), nil)
	if !strings.Contains(rootOut, "theirs") || !strings.Contains(rootOut, "2000") {
		t.Errorf("root view incomplete:\n%s", rootOut)
	}
}

func TestSinfoTextHidesAttribution(t *testing.T) {
	s := New(Config{PrivateData: true}, computeNodes(2, 4, 1000), 0)
	if _, err := s.Submit(cred(2000), spec(2, 10)); err != nil {
		t.Fatal(err)
	}
	s.Step()
	out := s.SinfoText(cred(1000))
	if !strings.Contains(out, "(hidden)") {
		t.Errorf("attribution not hidden:\n%s", out)
	}
	rootOut := s.SinfoText(ids.RootCred())
	if strings.Contains(rootOut, "(hidden)") {
		t.Errorf("root view hidden:\n%s", rootOut)
	}
}

func TestSacctText(t *testing.T) {
	s := New(Config{}, computeNodes(2, 4, 1000), 0)
	if _, err := s.Submit(cred(1000), spec(1, 2)); err != nil {
		t.Fatal(err)
	}
	s.RunAll(10)
	out := s.SacctText(cred(1000), nil)
	if !strings.Contains(out, "CD") {
		t.Errorf("completed state missing:\n%s", out)
	}
}
