package sched

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// checkCalendar asserts the completion calendar and the running index
// describe the same set of jobs, and every live entry is keyed at
// Start+Duration.
func checkCalendar(t *testing.T, s *Scheduler, when string) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	live := make(map[int]int64) // jobID -> due
	for _, e := range s.calendar {
		if e.job.State != Running {
			continue // lazily deleted
		}
		if _, dup := live[e.job.ID]; dup {
			t.Fatalf("%s: job %d twice in calendar", when, e.job.ID)
		}
		live[e.job.ID] = e.due
	}
	if len(live) != len(s.runningSorted) {
		t.Fatalf("%s: calendar holds %d live jobs, running index %d", when, len(live), len(s.runningSorted))
	}
	for _, j := range s.runningSorted {
		due, ok := live[j.ID]
		if !ok {
			t.Fatalf("%s: running job %d missing from calendar", when, j.ID)
		}
		if want := j.Start + j.Spec.Duration; due != want {
			t.Fatalf("%s: job %d due %d, want Start+Duration %d", when, j.ID, due, want)
		}
	}
}

// TestCalendarHeapOrder: pops come out (due, ID)-ordered regardless
// of push order.
func TestCalendarHeapOrder(t *testing.T) {
	var c calendar
	rng := metrics.NewRNG(5)
	jobs := make([]*Job, 200)
	for i := range jobs {
		jobs[i] = &Job{ID: i + 1, State: Running}
		c.push(int64(1+rng.Intn(20)), jobs[i])
	}
	var prev calEntry
	for n := 0; len(c) > 0; n++ {
		e := c.pop()
		if n > 0 {
			if e.due < prev.due || (e.due == prev.due && e.job.ID < prev.job.ID) {
				t.Fatalf("pop %d out of order: (%d,%d) after (%d,%d)", n, e.due, e.job.ID, prev.due, prev.job.ID)
			}
		}
		prev = e
	}
}

// TestCalendarLazyDeletion: cancelled and crashed jobs linger as
// stale entries but are never popped as due, and nextDue skips them.
func TestCalendarTracksRunning(t *testing.T) {
	s := New(Config{Policy: PolicyShared}, computeNodes(2, 8, 1<<20), 0)
	rng := metrics.NewRNG(6)
	var live []int
	for round := 0; round < 100; round++ {
		switch rng.Intn(4) {
		case 0, 1:
			sp := spec(1+rng.Intn(6), 1+int64(rng.Intn(6)))
			if rng.Intn(8) == 0 {
				sp.ActualMemB = 2 << 20 // OOM: leaves a stale calendar entry
			}
			j, err := s.Submit(cred(ids.UID(1000+rng.Intn(3))), sp)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, j.ID)
		case 2:
			if len(live) > 0 {
				k := rng.Intn(len(live))
				_ = s.Cancel(ids.RootCred(), live[k])
				live = append(live[:k], live[k+1:]...)
			}
		default:
			s.Step()
		}
		checkCalendar(t, s, "mid-campaign")
	}
	s.RunAll(10000)
	checkCalendar(t, s, "after drain")
	s.mu.Lock()
	if _, ok := s.calendar.nextDue(); ok {
		t.Error("nextDue reports an event on an idle cluster")
	}
	if len(s.calendar) != 0 {
		t.Errorf("calendar holds %d stale entries after nextDue drained an idle cluster", len(s.calendar))
	}
	s.mu.Unlock()
}

// TestRunAllFastForward: RunAll must jump over event-free gaps —
// long-duration jobs with nothing pending — and still produce the
// exact tick count, utilization, and accounting a Step loop would.
func TestRunAllFastForward(t *testing.T) {
	build := func() *Scheduler {
		s := New(Config{Policy: PolicyShared}, computeNodes(2, 8, 1<<20), 0)
		for i, dur := range []int64{500, 123, 1, 997, 40} {
			if _, err := s.Submit(cred(ids.UID(1000+i%2)), spec(2+i, dur)); err != nil {
				t.Fatal(err)
			}
		}
		// One job that can never start alongside the rest but fits
		// alone at the end: exercises unblock-on-completion.
		if _, err := s.Submit(cred(1000), spec(16, 10)); err != nil {
			t.Fatal(err)
		}
		return s
	}
	fast, slow := build(), build()
	fastTicks := fast.RunAll(100000)
	slowTicks := 0
	for tick := 0; tick < 100000; tick++ {
		slow.Step()
		slowTicks = tick + 1
		slow.mu.Lock()
		idle := slow.queue.Len() == 0 && len(slow.runningSorted) == 0
		slow.mu.Unlock()
		if idle {
			break
		}
	}
	if fastTicks != slowTicks {
		t.Fatalf("RunAll ticks = %d, Step loop = %d", fastTicks, slowTicks)
	}
	if fu, su := fast.Utilization(), slow.Utilization(); fu != su {
		t.Fatalf("utilization diverged: RunAll %v, Step loop %v", fu, su)
	}
	fr, sr := fast.Sacct(ids.RootCred()), slow.Sacct(ids.RootCred())
	if len(fr) != len(sr) {
		t.Fatalf("record counts diverged: %d vs %d", len(fr), len(sr))
	}
	for i := range fr {
		fs, ss := fmt.Sprintf("%+v", fr[i]), fmt.Sprintf("%+v", sr[i])
		if fs != ss {
			t.Fatalf("record %d diverged:\nRunAll: %s\nSteps:  %s", i, fs, ss)
		}
	}
}

// TestRunAllFastForwardBudget: fast-forward must respect maxTicks
// exactly, including the deadlocked-queue case where no event ever
// comes.
func TestRunAllFastForwardBudget(t *testing.T) {
	s := New(Config{Policy: PolicyExclusive}, computeNodes(2, 8, 1<<20), 0)
	if _, err := s.Submit(cred(1000), spec(16, 100000)); err != nil {
		t.Fatal(err)
	}
	// Exclusive holds both nodes; this one waits forever.
	if _, err := s.Submit(cred(2000), spec(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := s.RunAll(500); got != 500 {
		t.Fatalf("RunAll = %d, want maxTicks 500", got)
	}
	if now := s.Now(); now != 500 {
		t.Fatalf("now = %d after capped RunAll, want 500", now)
	}
	if n := s.PendingCount(); n != 1 {
		t.Fatalf("pending = %d, want the starved job", n)
	}
}

// TestRunAllConcurrentObservers: observers may query while RunAll
// drains (exercised under -race in CI).
func TestRunAllConcurrentObservers(t *testing.T) {
	s := New(Config{Policy: PolicyUserWholeNode}, computeNodes(4, 8, 1<<20), 0)
	rng := metrics.NewRNG(8)
	for i := 0; i < 150; i++ {
		sp := spec(1+rng.Intn(8), 1+int64(rng.Intn(4)))
		if i%40 == 39 {
			sp.ActualMemB = 2 << 20
		}
		if _, err := s.Submit(cred(ids.UID(1000+i%4)), sp); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Squeue(ids.RootCred())
					_ = s.Utilization()
					_ = s.PendingCount()
				}
			}
		}()
	}
	s.RunAll(10000)
	close(stop)
	wg.Wait()
	if n := s.PendingCount(); n != 0 {
		t.Errorf("queue not drained: %d", n)
	}
	checkCalendar(t, s, "after concurrent drain")
	checkAggregates(t, s, "after concurrent drain")
}
