package sched

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/simos"
)

// recomputeScope rebuilds a scope's aggregates from raw node state.
// Caller holds s.mu (or owns the scheduler exclusively).
func recomputeScope(s *Scheduler, members func(*nodeState) bool) *capScope {
	want := newCapScope(s.maxNodeGPUs)
	for _, ns := range s.nodes {
		if ns.node.Kind != simos.Compute || !members(ns) {
			continue
		}
		want.enroll(ns)
	}
	return want
}

// checkAggregates asserts every incrementally maintained aggregate
// equals its recomputed-from-scratch value.
func checkAggregates(t *testing.T, s *Scheduler, when string) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()

	scopes := map[string]struct {
		got     *capScope
		members func(*nodeState) bool
	}{
		"default": {s.defaultScope, func(*nodeState) bool { return true }},
	}
	for name, p := range s.partitions {
		prefix := p.NodePrefix
		scopes["partition "+name] = struct {
			got     *capScope
			members func(*nodeState) bool
		}{p.scope, func(ns *nodeState) bool {
			return len(ns.node.Name) >= len(prefix) && ns.node.Name[:len(prefix)] == prefix
		}}
	}
	for label, sc := range scopes {
		want := recomputeScope(s, sc.members)
		got := sc.got
		if got.freeCores != want.freeCores {
			t.Fatalf("%s: %s freeCores = %d, recomputed %d", when, label, got.freeCores, want.freeCores)
		}
		if got.emptyNodes != want.emptyNodes || got.emptyCores != want.emptyCores {
			t.Fatalf("%s: %s empty = (%d nodes, %d cores), recomputed (%d, %d)",
				when, label, got.emptyNodes, got.emptyCores, want.emptyNodes, want.emptyCores)
		}
		if len(got.userFree) != len(want.userFree) {
			t.Fatalf("%s: %s userFree has %d entries, recomputed %d (%v vs %v)",
				when, label, len(got.userFree), len(want.userFree), got.userFree, want.userFree)
		}
		for u, v := range want.userFree {
			if got.userFree[u] != v {
				t.Fatalf("%s: %s userFree[%d] = %d, recomputed %d", when, label, u, got.userFree[u], v)
			}
		}
		if got.maxNodeMemB != want.maxNodeMemB {
			t.Fatalf("%s: %s maxNodeMemB = %d, recomputed %d", when, label, got.maxNodeMemB, want.maxNodeMemB)
		}
		for g := 1; g < len(want.gpuAtLeast); g++ {
			if got.gpuAtLeast[g] != want.gpuAtLeast[g] {
				t.Fatalf("%s: %s gpuAtLeast[%d] = %d, recomputed %d",
					when, label, g, got.gpuAtLeast[g], want.gpuAtLeast[g])
			}
		}
	}

	// Per-node OOM bookkeeping and the cluster armed count.
	armed := 0
	for _, ns := range s.nodes {
		var commit int64
		over := 0
		for _, j := range ns.jobs {
			commit += effMemB(j)
			if j.Spec.ActualMemB > ns.node.MemB {
				over++
			}
		}
		if ns.memCommit != commit || ns.overCount != over {
			t.Fatalf("%s: node %s memCommit/overCount = %d/%d, recomputed %d/%d",
				when, ns.node.Name, ns.memCommit, ns.overCount, commit, over)
		}
		if ns.oomArmed() {
			armed++
		}
	}
	if s.armedNodes != armed {
		t.Fatalf("%s: armedNodes = %d, recomputed %d", when, s.armedNodes, armed)
	}

	// busyCores mirrors the running set.
	var busy int64
	for _, j := range s.runningSorted {
		busy += int64(j.Spec.Cores)
	}
	if s.busyCores != busy {
		t.Fatalf("%s: busyCores = %d, running sum %d", when, s.busyCores, busy)
	}
}

// TestAggregateInvariants drives a randomized submit/step/cancel/OOM
// mix — including GPU jobs, a policy-override partition, and an
// external node crash+restore — asserting after every event batch
// that the aggregates match a from-scratch recomputation.
func TestAggregateInvariants(t *testing.T) {
	for _, pol := range []SharingPolicy{PolicyShared, PolicyExclusive, PolicyUserWholeNode} {
		t.Run(pol.String(), func(t *testing.T) {
			var nodes []*simos.Node
			for i := 0; i < 6; i++ {
				nodes = append(nodes, simos.NewNode(
					[]string{"c00", "c01", "c02", "c03", "debug0", "debug1"}[i],
					simos.Compute, 8, 1<<20, nil))
			}
			s := New(Config{Policy: pol}, nodes, 2)
			shared := PolicyShared
			if err := s.AddPartition(Partition{Name: "debug", NodePrefix: "debug", PolicyOverride: &shared}); err != nil {
				t.Fatal(err)
			}
			rng := metrics.NewRNG(uint64(17 + pol))
			var live []int
			for round := 0; round < 120; round++ {
				switch rng.Intn(5) {
				case 0, 1: // submit
					u := ids.UID(1000 + rng.Intn(4))
					spec := JobSpec{
						Name:     "r",
						Command:  "x",
						Cores:    1 + rng.Intn(10),
						MemB:     1 + int64(rng.Intn(1<<18)),
						Duration: 1 + int64(rng.Intn(5)),
					}
					if rng.Intn(4) == 0 {
						spec.GPUs = 1 + rng.Intn(2)
					}
					if rng.Intn(6) == 0 {
						spec.ActualMemB = 2 << 20 // exceeds node memory: OOM
					}
					if rng.Intn(5) == 0 {
						spec.Partition = "debug"
						spec.GPUs = 0
						spec.Cores = 1 + rng.Intn(4)
					}
					j, err := s.Submit(cred(u), spec)
					if err != nil {
						t.Fatalf("round %d: submit: %v", round, err)
					}
					live = append(live, j.ID)
				case 2: // cancel a random live job (pending or running)
					if len(live) > 0 {
						k := rng.Intn(len(live))
						_ = s.Cancel(ids.RootCred(), live[k])
						live = append(live[:k], live[k+1:]...)
					}
				case 3: // external hardware failure + restore
					if rng.Intn(3) == 0 {
						n := nodes[rng.Intn(len(nodes))]
						n.Crash()
						s.Step()
						n.Restore()
					}
					s.Step()
				default:
					s.Step()
				}
				checkAggregates(t, s, "mid-campaign")
			}
			s.RunAll(10000)
			checkAggregates(t, s, "after drain")
			if n := s.PendingCount(); n != 0 {
				t.Errorf("queue not drained: %d", n)
			}
		})
	}
}

// TestProbeNeverRejectsPlaceable: for every pending job each tick,
// a fit() success implies the probe said yes — i.e. the O(1) bound is
// conservative, never optimistic.
func TestProbeNeverRejectsPlaceable(t *testing.T) {
	for _, pol := range []SharingPolicy{PolicyShared, PolicyExclusive, PolicyUserWholeNode} {
		s := New(Config{Policy: pol}, computeNodes(4, 8, 1<<20), 2)
		rng := metrics.NewRNG(uint64(99 + pol))
		for i := 0; i < 80; i++ {
			spec := JobSpec{
				Name: "p", Command: "x",
				Cores:    1 + rng.Intn(12),
				MemB:     1 + int64(rng.Intn(1<<18)),
				Duration: 1 + int64(rng.Intn(4)),
			}
			if rng.Intn(3) == 0 {
				spec.GPUs = 1 + rng.Intn(2)
			}
			if _, err := s.Submit(cred(ids.UID(1000+rng.Intn(3))), spec); err != nil {
				t.Fatal(err)
			}
		}
		for tick := 0; tick < 200; tick++ {
			s.mu.Lock()
			for e := s.queue.Front(); e != nil; e = e.Next() {
				j := e.Value.(*Job)
				part := s.partitionOf(j)
				if s.fit(j) && !s.probe(j, s.scopeFor(part), s.effectivePolicy(j)) {
					s.mu.Unlock()
					t.Fatalf("%v: probe rejected job %d but fit placed it", pol, j.ID)
				}
			}
			s.mu.Unlock()
			s.Step()
			if s.PendingCount() == 0 {
				break
			}
		}
		s.RunAll(1000)
	}
}

// TestFitAllocationFree: failed placement attempts must not allocate.
func TestFitAllocationFree(t *testing.T) {
	s := New(Config{Policy: PolicyShared}, computeNodes(2, 4, 1<<20), 0)
	// Fill the cluster.
	if _, err := s.Submit(cred(1000), spec(8, 1000)); err != nil {
		t.Fatal(err)
	}
	s.Step()
	blocked, err := s.Submit(cred(2000), spec(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	j := s.jobs[blocked.ID]
	s.mu.Unlock()
	allocs := testing.AllocsPerRun(100, func() {
		s.mu.Lock()
		if s.fit(j) {
			s.mu.Unlock()
			t.Fatal("job fit on a full cluster")
		}
		s.mu.Unlock()
	})
	if allocs != 0 {
		t.Errorf("failed fit allocates %.1f objects per attempt, want 0", allocs)
	}
}

// TestStepSkipsQueueWhenFull: with the cluster saturated, a tick must
// not walk the pending queue at all — the event-driven gate keeps a
// deep backlog free.
func TestStepSkipsQueueWhenFull(t *testing.T) {
	s := New(Config{Policy: PolicyShared}, computeNodes(2, 4, 1<<20), 0)
	if _, err := s.Submit(cred(1000), spec(8, 1000)); err != nil {
		t.Fatal(err)
	}
	s.Step()
	for i := 0; i < 50; i++ {
		if _, err := s.Submit(cred(ids.UID(1000+i%3)), spec(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Step() // tries (and fails) the whole queue once, then blocks it
	s.mu.Lock()
	if !s.queueBlocked {
		s.mu.Unlock()
		t.Fatal("queue not blocked after a failed pass")
	}
	if s.defaultScope.freeCores != 0 {
		s.mu.Unlock()
		t.Fatalf("cluster should be saturated, freeCores=%d", s.defaultScope.freeCores)
	}
	s.mu.Unlock()
	// Steady-state tick on a saturated cluster: no allocations at all.
	allocs := testing.AllocsPerRun(100, func() { s.Step() })
	if allocs != 0 {
		t.Errorf("saturated tick allocates %.1f objects, want 0", allocs)
	}
	if n := s.PendingCount(); n != 50 {
		t.Fatalf("pending = %d, want 50", n)
	}
}

// TestPartitionScopeProbe: partition jobs probe against the partition
// scope, not the cluster — a debug-partition job must be rejected in
// O(1) when debug nodes are full even though the cluster has room.
func TestPartitionScopeProbe(t *testing.T) {
	nodes := []*simos.Node{
		simos.NewNode("c00", simos.Compute, 8, 1<<20, nil),
		simos.NewNode("debug0", simos.Compute, 4, 1<<20, nil),
	}
	s := New(Config{Policy: PolicyShared}, nodes, 0)
	if err := s.AddPartition(Partition{Name: "debug", NodePrefix: "debug"}); err != nil {
		t.Fatal(err)
	}
	hog, err := s.Submit(cred(1000), JobSpec{Name: "h", Command: "x", Partition: "debug", Cores: 4, MemB: 1, Duration: 100})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if got, _ := s.Job(hog.ID); got.State != Running {
		t.Fatalf("debug hog not running: %v", got.State)
	}
	blocked, err := s.Submit(cred(2000), JobSpec{Name: "b", Command: "x", Partition: "debug", Cores: 2, MemB: 1, Duration: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	j := s.jobs[blocked.ID]
	if s.probe(j, s.scopeFor(s.partitionOf(j)), s.effectivePolicy(j)) {
		s.mu.Unlock()
		t.Fatal("probe admitted a job on a full partition")
	}
	if !s.probe(j, s.defaultScope, PolicyShared) {
		s.mu.Unlock()
		t.Fatal("cluster-wide probe should still have room (sanity)")
	}
	s.mu.Unlock()
	checkAggregates(t, s, "partition probe")
}
