package sched

// The completion calendar indexes running jobs by the tick their
// duration elapses (Start + Duration), so the per-tick completion
// pass pops exactly the due jobs instead of walking the whole running
// set — and RunAll can read the next event time to fast-forward over
// ticks in which provably nothing happens.
//
// It is a binary min-heap ordered by (due, job ID): equal-due jobs
// pop in ID order, matching the old ID-sorted completion walk
// bit-for-bit. Jobs that leave Running early (cancel, OOM, node
// crash) are deleted lazily — entries whose job is no longer Running
// are discarded at pop/peek time, so finish never searches the heap.

// calEntry is one scheduled completion.
type calEntry struct {
	due int64
	job *Job
}

type calendar []calEntry

func (c calendar) less(i, j int) bool {
	if c[i].due != c[j].due {
		return c[i].due < c[j].due
	}
	return c[i].job.ID < c[j].job.ID
}

// push schedules a job that just entered Running.
func (c *calendar) push(due int64, j *Job) {
	*c = append(*c, calEntry{due: due, job: j})
	h := *c
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum entry. Callers check len first.
func (c *calendar) pop() calEntry {
	h := *c
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = calEntry{} // release the *Job for GC
	h = h[:last]
	*c = h
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h.less(l, small) {
			small = l
		}
		if r < len(h) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// nextDue discards stale entries (jobs that already left Running) and
// returns the earliest scheduled completion tick, or ok=false when
// nothing is running.
func (c *calendar) nextDue() (int64, bool) {
	for len(*c) > 0 {
		if (*c)[0].job.State != Running {
			c.pop()
			continue
		}
		return (*c)[0].due, true
	}
	return 0, false
}

// popDue appends every job due at or before now to out (in (due, ID)
// order) and returns the extended slice, discarding stale entries.
func (c *calendar) popDue(now int64, out []*Job) []*Job {
	for len(*c) > 0 {
		top := (*c)[0]
		if top.job.State != Running {
			c.pop()
			continue
		}
		if top.due > now {
			break
		}
		c.pop()
		out = append(out, top.job)
	}
	return out
}
