package sched

import (
	"fmt"
	"strings"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// Slurm-style text renderers. These exist so the CLI tools show users
// exactly what the real commands would — including what PrivateData
// *removes* from the output.

// SqueueText renders the observer's squeue view like `squeue -l`.
func (s *Scheduler) SqueueText(observer ids.Credential, resolve func(ids.UID) string) string {
	t := metrics.NewTable("squeue", "JOBID", "NAME", "USER", "ST", "NODES", "NODELIST")
	for _, j := range s.Squeue(observer) {
		t.AddRow(j.ID, j.Spec.Name, userName(resolve, j.User), j.State.String(),
			len(j.Nodes), strings.Join(j.Nodes, ","))
	}
	return t.Render()
}

// SinfoText renders node occupancy like `sinfo -N`.
func (s *Scheduler) SinfoText(observer ids.Credential) string {
	t := metrics.NewTable("sinfo", "NODELIST", "CPUS", "ALLOC", "OWN", "USERS")
	for _, info := range s.Sinfo(observer) {
		users := fmt.Sprintf("%d", info.Users)
		if info.Users == -1 {
			users = "(hidden)"
		}
		t.AddRow(info.Name, info.Cores, info.UsedCores, info.OwnCores, users)
	}
	return t.Render()
}

// SacctText renders accounting like `sacct`.
func (s *Scheduler) SacctText(observer ids.Credential, resolve func(ids.UID) string) string {
	t := metrics.NewTable("sacct", "JOBID", "NAME", "USER", "STATE", "START", "END", "CORETICKS")
	for _, r := range s.Sacct(observer) {
		t.AddRow(r.JobID, r.Name, userName(resolve, r.User), r.State.String(), r.Start, r.End, r.CoreTicks)
	}
	return t.Render()
}

func userName(resolve func(ids.UID) string, uid ids.UID) string {
	if resolve == nil {
		return fmt.Sprintf("%d", uid)
	}
	return resolve(uid)
}
