package sched

import "repro/internal/simos"

// fit decides whether job j can start now under the configured
// sharing policy, writing the placement into s.scratch (node index →
// cores) on success. Caller holds s.mu.
//
// It runs in two phases. The feasibility probe checks the job's
// request against the partition scope's capacity aggregates
// (placement.go) — an unplaceable job, the common case while a
// campaign drains, is rejected in O(1) without touching a node. Only
// probe survivors pay for the placement scan: greedy first-fit in
// node order, which matches the paper's description of node-based
// scheduling for large volumes of short jobs [25] — no reservations,
// just pack what fits subject to the policy constraint. Both phases
// allocate nothing; tryStart materializes the scratch on success.
func (s *Scheduler) fit(j *Job) bool {
	part := s.partitionOf(j)
	policy := s.effectivePolicy(j)
	if !s.probe(j, s.scopeFor(part), policy) {
		return false
	}
	remaining := j.Spec.Cores
	sc := &s.scratch
	sc.reset()
	for i, ns := range s.nodes {
		if remaining == 0 {
			break
		}
		if ns.node.Kind != simos.Compute || ns.node.Down() {
			continue
		}
		if !inPartition(part, i) {
			continue
		}
		if !s.nodeEligible(ns, j, policy) {
			continue
		}
		avail := ns.freeCores()
		if avail <= 0 || ns.freeMem() < j.Spec.MemB || ns.freeGPUs() < j.Spec.GPUs {
			continue
		}
		take := avail
		if take > remaining {
			take = remaining
		}
		sc.nodes = append(sc.nodes, i)
		sc.cores = append(sc.cores, take)
		remaining -= take
	}
	if remaining > 0 {
		return false
	}
	// Exclusive policy consumes whole nodes: inflate the core count so
	// nothing else fits on them.
	if policy == PolicyExclusive {
		for k, ni := range sc.nodes {
			sc.cores[k] = s.nodes[ni].freeCores()
		}
	}
	return true
}

// nodeEligible applies the policy's user constraint.
func (s *Scheduler) nodeEligible(ns *nodeState, j *Job, policy SharingPolicy) bool {
	switch policy {
	case PolicyShared:
		return true
	case PolicyExclusive:
		return ns.empty()
	case PolicyUserWholeNode:
		// A node is eligible if it is empty or every allocation on it
		// belongs to this same user (paper §IV-B: "only other jobs
		// from that same user can be scheduled on that node").
		return ns.empty() || ns.soleUser(j.User)
	default:
		return false
	}
}

// NodeUsers returns, for every compute node, the set of distinct users
// currently running on it — the invariant check for experiment E4:
// under PolicyUserWholeNode this must never exceed 1.
func (s *Scheduler) NodeUsers() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.nodes))
	for _, ns := range s.nodes {
		if ns.node.Kind == simos.Compute {
			out[ns.node.Name] = len(ns.users)
		}
	}
	return out
}

// MaxUsersPerNode returns the max over NodeUsers — 1 means perfect
// user separation on compute nodes.
func (s *Scheduler) MaxUsersPerNode() int {
	max := 0
	for _, n := range s.NodeUsers() {
		if n > max {
			max = n
		}
	}
	return max
}
