package sched

import (
	"testing"
)

// TestStatsAccounting: steps + fastForwarded must equal the total
// logical ticks RunAll advanced, fast-forward must actually fire on
// an event-free gap, and Reset must clear both tallies — the
// invariants the observability layer's sched_* counters rely on.
func TestStatsAccounting(t *testing.T) {
	s := New(Config{Policy: PolicyShared}, computeNodes(2, 8, 1<<20), 0)
	if _, err := s.Submit(cred(1000), spec(2, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(cred(1001), spec(2, 123)); err != nil {
		t.Fatal(err)
	}
	ticks := s.RunAll(100000)
	steps, ff := s.Stats()
	if steps+ff != int64(ticks) {
		t.Fatalf("steps %d + fastForwarded %d != RunAll ticks %d", steps, ff, ticks)
	}
	if steps == 0 {
		t.Fatal("no real steps counted")
	}
	if ff == 0 {
		t.Fatal("long-duration jobs with an empty queue must fast-forward, but no ticks were skipped")
	}
	s.Reset()
	if steps, ff := s.Stats(); steps != 0 || ff != 0 {
		t.Fatalf("Reset must clear stats, got steps %d ff %d", steps, ff)
	}
	// A Step loop counts every tick as a real step.
	if _, err := s.Submit(cred(1000), spec(2, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		s.Step()
	}
	if steps, ff := s.Stats(); steps != 7 || ff != 0 {
		t.Fatalf("Step loop stats = (%d, %d), want (7, 0)", steps, ff)
	}
}
