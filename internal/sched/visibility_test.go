package sched

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

const coordGID ids.GID = 600

func newBusyScheduler(t *testing.T, private bool) (*Scheduler, map[string]int) {
	t.Helper()
	cfg := Config{PrivateData: private, CoordinatorGIDs: []ids.GID{coordGID}}
	s := New(cfg, computeNodes(4, 8, 1000), 0)
	counts := map[string]int{}
	for i := 0; i < 6; i++ {
		uid := ids.UID(1000 + i%3) // three users
		if _, err := s.Submit(cred(uid), JobSpec{
			Name:    "work",
			Command: "analyze /secret/path",
			Cores:   2, MemB: 1, Duration: 10,
		}); err != nil {
			t.Fatal(err)
		}
		counts["all"]++
	}
	s.Step()
	return s, counts
}

func TestSqueueBaselineShowsEverything(t *testing.T) {
	s, _ := newBusyScheduler(t, false)
	jobs := s.Squeue(cred(1000))
	if len(jobs) != 6 {
		t.Fatalf("baseline squeue = %d rows, want 6", len(jobs))
	}
	// Full detail leaks, including foreign commands.
	foreign := 0
	for _, j := range jobs {
		if j.User != 1000 {
			foreign++
			if j.Spec.Command == "" || j.User == ids.NoUID {
				t.Errorf("baseline redacted a foreign job: %+v", j)
			}
		}
	}
	if foreign == 0 {
		t.Fatal("test setup: no foreign jobs")
	}
}

func TestSqueuePrivateDataHidesForeign(t *testing.T) {
	s, _ := newBusyScheduler(t, true)
	jobs := s.Squeue(cred(1000))
	if len(jobs) != 2 {
		t.Fatalf("private squeue = %d rows, want only own 2", len(jobs))
	}
	for _, j := range jobs {
		if j.User != 1000 {
			t.Errorf("private squeue leaked job of uid %d", j.User)
		}
	}
}

func TestSqueuePrivilegedObservers(t *testing.T) {
	s, _ := newBusyScheduler(t, true)
	if got := len(s.Squeue(ids.RootCred())); got != 6 {
		t.Errorf("root squeue = %d, want 6", got)
	}
	coord := cred(4000)
	coord.Groups = append(coord.Groups, coordGID)
	if got := len(s.Squeue(coord)); got != 6 {
		t.Errorf("coordinator squeue = %d, want 6", got)
	}
}

func TestJobViewPrivateDataENOENT(t *testing.T) {
	s, _ := newBusyScheduler(t, true)
	// Find a job belonging to uid 1001.
	var foreignID int
	for _, j := range s.Squeue(ids.RootCred()) {
		if j.User == 1001 {
			foreignID = j.ID
			break
		}
	}
	if foreignID == 0 {
		t.Fatal("setup: no foreign job found")
	}
	// The foreign job "does not exist" for uid 1000 — existence is
	// not even confirmed.
	if _, err := s.JobView(cred(1000), foreignID); !errors.Is(err, ErrNoSuchJob) {
		t.Errorf("foreign JobView err = %v, want ErrNoSuchJob", err)
	}
	if _, err := s.JobView(cred(1001), foreignID); err != nil {
		t.Errorf("own JobView: %v", err)
	}
}

func TestSacctPrivacy(t *testing.T) {
	s, _ := newBusyScheduler(t, true)
	s.RunAll(50)
	own := s.Sacct(cred(1000))
	if len(own) != 2 {
		t.Errorf("private sacct = %d rows, want 2", len(own))
	}
	all := s.Sacct(ids.RootCred())
	if len(all) != 6 {
		t.Errorf("root sacct = %d rows, want 6", len(all))
	}
	// Baseline: everyone gets everything.
	s2, _ := newBusyScheduler(t, false)
	s2.RunAll(50)
	if got := len(s2.Sacct(cred(1000))); got != 6 {
		t.Errorf("baseline sacct = %d rows, want 6", got)
	}
}

func TestSinfoAttributionHidden(t *testing.T) {
	s, _ := newBusyScheduler(t, true)
	for _, info := range s.Sinfo(cred(1000)) {
		if info.Users != -1 {
			t.Errorf("node %s: user attribution leaked (%d)", info.Name, info.Users)
		}
		if info.UsedCores != info.OwnCores {
			t.Errorf("node %s: foreign occupancy leaked (%d vs own %d)", info.Name, info.UsedCores, info.OwnCores)
		}
	}
	// Root sees attribution.
	sawUsers := false
	for _, info := range s.Sinfo(ids.RootCred()) {
		if info.Users > 0 {
			sawUsers = true
		}
	}
	if !sawUsers {
		t.Errorf("root sinfo shows no users")
	}
}

func TestRedactedJob(t *testing.T) {
	j := &Job{ID: 7, User: 1000, Spec: JobSpec{Name: "secret-name", Command: "cmd --pw=x", Cores: 4}}
	r := j.Redacted()
	if r.User != ids.NoUID || r.Spec.Command != "" || r.Spec.Name != "(private)" {
		t.Errorf("Redacted leaked: %+v", r)
	}
	if r.ID != 7 || r.Spec.Cores != 4 {
		t.Errorf("Redacted lost occupancy info: %+v", r)
	}
}

// Property: under PrivateData, for any observer uid, every squeue row
// belongs to that uid, and the row count equals the unfiltered count
// restricted to that uid.
func TestQuickPrivateDataExactness(t *testing.T) {
	f := func(seed uint8) bool {
		s := New(Config{PrivateData: true}, computeNodes(3, 8, 1000), 0)
		users := []ids.UID{1000, 1001, 1002}
		perUser := make(map[ids.UID]int)
		n := int(seed%12) + 1
		for i := 0; i < n; i++ {
			uid := users[(int(seed)+i)%3]
			if _, err := s.Submit(cred(uid), JobSpec{Name: "j", Command: "c", Cores: 1, MemB: 1, Duration: 5}); err != nil {
				return false
			}
			perUser[uid]++
		}
		s.Step()
		for _, uid := range users {
			rows := s.Squeue(cred(uid))
			if len(rows) != perUser[uid] {
				return false
			}
			for _, j := range rows {
				if j.User != uid {
					return false
				}
			}
		}
		return len(s.Squeue(ids.RootCred())) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: under PolicyUserWholeNode, MaxUsersPerNode never exceeds 1
// regardless of the workload mix.
func TestQuickWholeNodeInvariant(t *testing.T) {
	f := func(seed uint8, steps uint8) bool {
		s := New(Config{Policy: PolicyUserWholeNode}, computeNodes(4, 4, 1000), 0)
		users := []ids.UID{1000, 1001, 1002, 1003}
		for i := 0; i < int(seed%20)+4; i++ {
			uid := users[(int(seed)*7+i)%4]
			cores := 1 + (i % 4)
			dur := int64(1 + (i % 5))
			if _, err := s.Submit(cred(uid), JobSpec{Name: "w", Command: "c", Cores: cores, MemB: 1, Duration: dur}); err != nil {
				return false
			}
		}
		for st := 0; st < int(steps%10)+1; st++ {
			s.Step()
			if s.MaxUsersPerNode() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
