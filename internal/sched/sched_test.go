package sched

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/simos"
)

func cred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

func computeNodes(n, cores int, memB int64) []*simos.Node {
	var out []*simos.Node
	for i := 0; i < n; i++ {
		out = append(out, simos.NewNode(fmt.Sprintf("c%02d", i), simos.Compute, cores, memB, nil))
	}
	return out
}

func spec(cores int, dur int64) JobSpec {
	return JobSpec{Name: "job", Command: "a.out", Cores: cores, MemB: 1, Duration: dur}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{}, computeNodes(2, 4, 100), 0)
	if _, err := s.Submit(cred(1000), spec(0, 1)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero cores err = %v", err)
	}
	if _, err := s.Submit(cred(1000), spec(4, 0)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("zero duration err = %v", err)
	}
	if _, err := s.Submit(cred(1000), spec(9, 1)); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("oversized err = %v", err)
	}
	if _, err := s.Submit(cred(1000), spec(8, 1)); err != nil {
		t.Errorf("max-size submit: %v", err)
	}
}

func TestJobLifecycle(t *testing.T) {
	s := New(Config{}, computeNodes(1, 4, 100), 0)
	j, err := s.Submit(cred(1000), spec(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Pending {
		t.Fatalf("state after submit = %v", j.State)
	}
	s.Step() // starts
	got, _ := s.Job(j.ID)
	if got.State != Running || got.Start != 1 {
		t.Fatalf("after step: state=%v start=%d", got.State, got.Start)
	}
	if len(got.Nodes) != 1 || got.Nodes[0] != "c00" {
		t.Errorf("nodes = %v", got.Nodes)
	}
	s.Step()
	s.Step()
	s.Step() // duration 3 elapsed
	got, _ = s.Job(j.ID)
	if got.State != Completed {
		t.Errorf("state after 4 steps = %v", got.State)
	}
	if got.End-got.Start != 3 {
		t.Errorf("runtime = %d, want 3", got.End-got.Start)
	}
}

func TestJobSpawnsProcessesWithCommand(t *testing.T) {
	nodes := computeNodes(1, 4, 100)
	s := New(Config{}, nodes, 0)
	j, _ := s.Submit(cred(1000), JobSpec{Name: "n", Command: "simulate --token=SECRET", Cores: 2, MemB: 1, Duration: 2})
	s.Step()
	procs := nodes[0].Procs.ByUser(1000)
	if len(procs) != 1 {
		t.Fatalf("job spawned %d procs, want 1", len(procs))
	}
	if procs[0].JobID != j.ID {
		t.Errorf("proc job = %d, want %d", procs[0].JobID, j.ID)
	}
	if procs[0].Cmdline[1] != "simulate --token=SECRET" {
		t.Errorf("cmdline = %v", procs[0].Cmdline)
	}
	// Job end reaps the processes.
	s.Step()
	s.Step()
	if n := len(nodes[0].Procs.ByUser(1000)); n != 0 {
		t.Errorf("%d procs survive job end", n)
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	s := New(Config{}, computeNodes(1, 2, 100), 0)
	j1, _ := s.Submit(cred(1000), spec(2, 10))
	j2, _ := s.Submit(cred(1000), spec(2, 10)) // queued behind j1
	s.Step()
	// Stranger cannot cancel.
	if err := s.Cancel(cred(2000), j1.ID); !errors.Is(err, ErrNotOwner) {
		t.Errorf("stranger cancel err = %v", err)
	}
	if err := s.Cancel(cred(1000), j2.ID); err != nil {
		t.Fatalf("cancel pending: %v", err)
	}
	if err := s.Cancel(cred(1000), j1.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	g1, _ := s.Job(j1.ID)
	g2, _ := s.Job(j2.ID)
	if g1.State != Cancelled || g2.State != Cancelled {
		t.Errorf("states = %v %v", g1.State, g2.State)
	}
	if err := s.Cancel(ids.RootCred(), 999); !errors.Is(err, ErrNoSuchJob) {
		t.Errorf("missing job err = %v", err)
	}
}

func TestMultiNodeSpanning(t *testing.T) {
	s := New(Config{}, computeNodes(3, 4, 100), 0)
	j, _ := s.Submit(cred(1000), spec(10, 2))
	s.Step()
	got, _ := s.Job(j.ID)
	if got.State != Running {
		t.Fatalf("10-core job did not start: %v", got.State)
	}
	total := 0
	for _, c := range got.Tasks {
		total += c
	}
	if total != 10 || len(got.Nodes) != 3 {
		t.Errorf("placement = %v (total %d)", got.Tasks, total)
	}
}

func TestFIFOWithBackfill(t *testing.T) {
	s := New(Config{}, computeNodes(1, 4, 100), 0)
	big, _ := s.Submit(cred(1000), spec(4, 5))
	blocked, _ := s.Submit(cred(1000), spec(4, 1)) // cannot start until big ends
	small, _ := s.Submit(cred(2000), spec(1, 1))   // would fit alongside? no: node full
	s.Step()
	gb, _ := s.Job(big.ID)
	if gb.State != Running {
		t.Fatalf("big not running")
	}
	gbl, _ := s.Job(blocked.ID)
	gs, _ := s.Job(small.ID)
	if gbl.State != Pending || gs.State != Pending {
		t.Errorf("blocked=%v small=%v, both should wait (node full)", gbl.State, gs.State)
	}
	if s.PendingCount() != 2 {
		t.Errorf("pending = %d", s.PendingCount())
	}
}

func TestBackfillFillsHoles(t *testing.T) {
	s := New(Config{}, computeNodes(1, 4, 100), 0)
	a, _ := s.Submit(cred(1000), spec(3, 5))
	b, _ := s.Submit(cred(1000), spec(2, 5)) // doesn't fit (3+2>4)
	c, _ := s.Submit(cred(1000), spec(1, 5)) // backfills the hole
	s.Step()
	ga, _ := s.Job(a.ID)
	gb, _ := s.Job(b.ID)
	gc, _ := s.Job(c.ID)
	if ga.State != Running || gc.State != Running || gb.State != Pending {
		t.Errorf("a=%v b=%v c=%v, want R PD R", ga.State, gb.State, gc.State)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s := New(Config{}, computeNodes(1, 4, 100), 0)
	if _, err := s.Submit(cred(1000), spec(4, 2)); err != nil {
		t.Fatal(err)
	}
	s.Step() // tick 1: job starts this tick; usage counted from next tick
	s.Step() // tick 2: 4/4 busy
	s.Step() // tick 3: job completes at start of tick
	u := s.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestOOMCrashSharedBlastRadius(t *testing.T) {
	// Two users share a node; one exceeds memory; both fail.
	s := New(Config{Policy: PolicyShared}, computeNodes(1, 4, 100), 0)
	hog, _ := s.Submit(cred(1000), JobSpec{Name: "hog", Command: "x", Cores: 2, MemB: 10, ActualMemB: 200, Duration: 10})
	victim, _ := s.Submit(cred(2000), JobSpec{Name: "v", Command: "y", Cores: 2, MemB: 10, Duration: 10})
	s.Step() // both start
	s.Step() // OOM detected
	gh, _ := s.Job(hog.ID)
	gv, _ := s.Job(victim.ID)
	if gh.State != Failed || gv.State != Failed {
		t.Fatalf("hog=%v victim=%v, want both Failed", gh.State, gv.State)
	}
	crashes, cofail := s.Crashes()
	if crashes != 1 || cofail != 1 {
		t.Errorf("crashes=%d cofail=%d, want 1,1", crashes, cofail)
	}
}

func TestOOMCrashUserWholeNodeNoCofailure(t *testing.T) {
	// Same scenario under the paper's policy: the victim lands on a
	// different node (or waits), so no cross-user cofailure.
	s := New(Config{Policy: PolicyUserWholeNode}, computeNodes(2, 4, 100), 0)
	if _, err := s.Submit(cred(1000), JobSpec{Name: "hog", Command: "x", Cores: 2, MemB: 10, ActualMemB: 200, Duration: 10}); err != nil {
		t.Fatal(err)
	}
	victim, _ := s.Submit(cred(2000), JobSpec{Name: "v", Command: "y", Cores: 2, MemB: 10, Duration: 3})
	s.RunAll(20)
	gv, _ := s.Job(victim.ID)
	if gv.State != Completed {
		t.Fatalf("victim state = %v, want Completed", gv.State)
	}
	_, cofail := s.Crashes()
	if cofail != 0 {
		t.Errorf("cofailures = %d, want 0 under user-wholenode", cofail)
	}
}

func TestPamSlurmGatesSSH(t *testing.T) {
	nodes := computeNodes(2, 4, 100)
	s := New(Config{PamSlurm: true}, nodes, 0)
	alice, bob := cred(1000), cred(2000)
	j, _ := s.Submit(alice, spec(2, 5))
	s.Step()
	got, _ := s.Job(j.ID)
	jobNode := nodes[0]
	if got.Nodes[0] != jobNode.Name {
		t.Fatalf("unexpected placement %v", got.Nodes)
	}
	// Owner can ssh to the node with her job.
	if _, err := jobNode.Login(alice); err != nil {
		t.Errorf("owner ssh: %v", err)
	}
	// Bob cannot.
	if _, err := jobNode.Login(bob); !errors.Is(err, simos.ErrAccessDenied) {
		t.Errorf("stranger ssh err = %v, want ErrAccessDenied", err)
	}
	// Alice cannot ssh to the *other* node either.
	if _, err := nodes[1].Login(alice); !errors.Is(err, simos.ErrAccessDenied) {
		t.Errorf("jobless-node ssh err = %v, want ErrAccessDenied", err)
	}
	// Root always may.
	if _, err := jobNode.Login(ids.RootCred()); err != nil {
		t.Errorf("root ssh: %v", err)
	}
	// After the job ends, access is revoked.
	s.RunAll(20)
	if _, err := jobNode.Login(alice); !errors.Is(err, simos.ErrAccessDenied) {
		t.Errorf("post-job ssh err = %v, want ErrAccessDenied", err)
	}
}

func TestRunAllDrains(t *testing.T) {
	s := New(Config{}, computeNodes(2, 4, 100), 0)
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(cred(ids.UID(1000+i%3)), spec(1+i%4, int64(1+i%3))); err != nil {
			t.Fatal(err)
		}
	}
	ticks := s.RunAll(1000)
	if ticks >= 1000 {
		t.Fatalf("RunAll did not drain")
	}
	if s.PendingCount() != 0 {
		t.Errorf("pending = %d after RunAll", s.PendingCount())
	}
	recs := s.Sacct(ids.RootCred())
	if len(recs) != 20 {
		t.Errorf("accounting rows = %d, want 20", len(recs))
	}
	for _, r := range recs {
		if r.State != Completed {
			t.Errorf("job %d state %v", r.JobID, r.State)
		}
	}
}

func TestDownNodeSkipped(t *testing.T) {
	nodes := computeNodes(2, 4, 100)
	s := New(Config{}, nodes, 0)
	nodes[0].Crash()
	j, _ := s.Submit(cred(1000), spec(4, 1))
	s.Step()
	got, _ := s.Job(j.ID)
	if got.State != Running || got.Nodes[0] != "c01" {
		t.Errorf("job on down node: %v %v", got.State, got.Nodes)
	}
}

func TestGPUAllocationLimits(t *testing.T) {
	s := New(Config{}, computeNodes(1, 8, 100), 2)
	a, _ := s.Submit(cred(1000), JobSpec{Name: "g1", Command: "x", Cores: 1, MemB: 1, GPUs: 2, Duration: 5})
	b, _ := s.Submit(cred(1000), JobSpec{Name: "g2", Command: "x", Cores: 1, MemB: 1, GPUs: 1, Duration: 5})
	s.Step()
	ga, _ := s.Job(a.ID)
	gb, _ := s.Job(b.ID)
	if ga.State != Running {
		t.Fatalf("gpu job a not running")
	}
	if gb.State != Pending {
		t.Errorf("gpu job b should wait (0 free GPUs), state=%v", gb.State)
	}
}

func TestJobStringAndStateString(t *testing.T) {
	j := &Job{ID: 1, User: 1000, Spec: JobSpec{Name: "n", Cores: 2}, State: Running}
	if j.String() == "" {
		t.Error("empty String")
	}
	for st, want := range map[JobState]string{Pending: "PD", Running: "R", Completed: "CD", Failed: "F", Cancelled: "CA", JobState(9): "?"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
	for p, want := range map[SharingPolicy]string{PolicyShared: "shared", PolicyExclusive: "exclusive", PolicyUserWholeNode: "user-wholenode", SharingPolicy(9): "?"} {
		if p.String() != want {
			t.Errorf("policy %d = %q", p, p.String())
		}
		if want == "?" {
			continue
		}
		// ParsePolicy round-trips every valid String form.
		back, err := ParsePolicy(want)
		if err != nil || back != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus policy")
	}
}

func TestGPURequestMustFitOneNode(t *testing.T) {
	s := New(Config{}, computeNodes(2, 8, 100), 2)
	if _, err := s.Submit(cred(1000), JobSpec{Name: "g", Command: "x", Cores: 1, MemB: 1, GPUs: 3, Duration: 1}); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("3-gpu request on 2-gpu nodes err = %v, want ErrUnsatisfiable", err)
	}
	if _, err := s.Submit(cred(1000), JobSpec{Name: "g", Command: "x", Cores: 1, MemB: 1, GPUs: 2, Duration: 1}); err != nil {
		t.Errorf("2-gpu request: %v", err)
	}
	// CPU-only cluster rejects any GPU request.
	s2 := New(Config{}, computeNodes(2, 8, 100), 0)
	if _, err := s2.Submit(cred(1000), JobSpec{Name: "g", Command: "x", Cores: 1, MemB: 1, GPUs: 1, Duration: 1}); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("gpu request on cpu cluster err = %v", err)
	}
}
