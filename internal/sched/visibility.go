package sched

import (
	"fmt"
	"sort"

	"repro/internal/ids"
)

// privileged reports whether the observer bypasses PrivateData: root
// and members of a coordinator group (Slurm operators).
func (s *Scheduler) privileged(observer ids.Credential) bool {
	if observer.IsRoot() {
		return true
	}
	for _, gid := range s.Cfg.CoordinatorGIDs {
		if observer.InGroup(gid) {
			return true
		}
	}
	return false
}

// Squeue returns the queue as the observer is allowed to see it.
// Without PrivateData (baseline), every job with full detail is
// returned — username, job name, command, working directory — the
// information-leak surface the paper highlights (§IV-B). With
// PrivateData, foreign jobs are omitted entirely.
func (s *Scheduler) Squeue(observer ids.Credential) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Live jobs come from the pending queue and the running index —
	// never from the full historical jobs map.
	priv := !s.Cfg.PrivateData || s.privileged(observer)
	out := make([]*Job, 0, s.queue.Len()+len(s.runningSorted))
	for e := s.queue.Front(); e != nil; e = e.Next() {
		if j := e.Value.(*Job); priv || j.User == observer.UID {
			out = append(out, j.Clone())
		}
	}
	for _, j := range s.runningSorted {
		if priv || j.User == observer.UID {
			out = append(out, j.Clone())
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// JobView returns one job as seen by the observer. Under PrivateData,
// foreign jobs return ErrNoSuchJob — existence is not even confirmed,
// mirroring hidepid=2's ENOENT behaviour.
func (s *Scheduler) JobView(observer ids.Credential, jobID int) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchJob, jobID)
	}
	if s.Cfg.PrivateData && !s.privileged(observer) && j.User != observer.UID {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchJob, jobID)
	}
	return j.Clone(), nil
}

// Sacct returns accounting records visible to the observer. Baseline:
// "job reports of any and all other users on the system with the
// submission of a single scheduler command" (paper §IV-B). With
// PrivateData: own records only.
func (s *Scheduler) Sacct(observer ids.Credential) []AccountingRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []AccountingRecord
	for _, r := range s.records {
		if !s.Cfg.PrivateData || s.privileged(observer) || r.User == observer.UID {
			rc := r
			rc.NodeList = append([]string(nil), r.NodeList...)
			out = append(out, rc)
		}
	}
	return out
}

// Sinfo summarizes node load. Under PrivateData, per-user attribution
// is stripped for unprivileged observers; they see only their own
// occupancy.
type NodeInfo struct {
	Name      string
	Cores     int
	UsedCores int
	OwnCores  int // cores used by the observer's own jobs
	Users     int // distinct users; -1 when hidden by PrivateData
}

// Sinfo returns per-node occupancy as visible to the observer.
func (s *Scheduler) Sinfo(observer ids.Credential) []NodeInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []NodeInfo
	for _, ns := range s.nodes {
		info := NodeInfo{Name: ns.node.Name, Cores: ns.node.Cores, UsedCores: ns.usedCores}
		for _, j := range ns.jobs {
			if j.User == observer.UID {
				info.OwnCores += j.Tasks[ns.node.Name]
			}
		}
		if s.Cfg.PrivateData && !s.privileged(observer) {
			info.Users = -1
			info.UsedCores = info.OwnCores
		} else {
			info.Users = len(ns.users)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
