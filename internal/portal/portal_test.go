package portal

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/ubf"
)

// world: portal on a gateway host, two compute hosts, UBF everywhere.
func world(t *testing.T) (*Portal, *netsim.Network, map[string]*netsim.Host, map[string]ids.Credential) {
	t.Helper()
	reg := ids.NewRegistry()
	alice, _ := reg.AddUser("alice")
	bob, _ := reg.AddUser("bob")
	n := netsim.NewNetwork()
	hosts := map[string]*netsim.Host{
		"gw":  n.AddHost("gw"),
		"c00": n.AddHost("c00"),
		"c01": n.AddHost("c01"),
	}
	d := ubf.New(ubf.Config{AllowGroupPeers: true})
	for _, h := range hosts {
		d.InstallOn(h)
	}
	p := New(hosts["gw"])
	creds := map[string]ids.Credential{}
	for _, u := range []*ids.User{alice, bob} {
		c, _ := reg.LoginCredential(u.UID)
		creds[u.Name] = c
		p.Enroll(u.UID, u.Name+"-pw")
	}
	return p, n, hosts, creds
}

func TestLoginAndBadCredentials(t *testing.T) {
	p, _, _, creds := world(t)
	if _, err := p.Login(creds["alice"], "wrong"); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("bad pw err = %v", err)
	}
	tok, err := p.Login(creds["alice"], "alice-pw")
	if err != nil || tok == "" {
		t.Fatalf("login: %q %v", tok, err)
	}
	// Unknown user.
	ghost := ids.Credential{UID: 9999}
	if _, err := p.Login(ghost, "x"); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("unknown user err = %v", err)
	}
}

func TestForwardRequiresAuth(t *testing.T) {
	p, _, hosts, creds := world(t)
	if _, err := Serve(hosts["c00"], creds["alice"], 8888); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(creds["alice"], "/jupyter/alice", "c00", 8888); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Forward("no-such-token", "/jupyter/alice", []byte("GET /")); !errors.Is(err, ErrUnauthenticated) {
		t.Errorf("anon forward err = %v, want 401", err)
	}
}

func TestForwardOwnerSucceedsAnyNode(t *testing.T) {
	p, _, hosts, creds := world(t)
	// Apps on two different compute nodes — "any compute node in any
	// partition".
	appA, err := Serve(hosts["c00"], creds["alice"], 8888)
	if err != nil {
		t.Fatal(err)
	}
	appB, err := Serve(hosts["c01"], creds["alice"], 9999)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(creds["alice"], "/jupyter/a", "c00", 8888); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(creds["alice"], "/tensorboard/a", "c01", 9999); err != nil {
		t.Fatal(err)
	}
	tok, _ := p.Login(creds["alice"], "alice-pw")
	for _, path := range []string{"/jupyter/a", "/tensorboard/a"} {
		resp, err := p.Forward(tok, path, []byte("GET /api/status"))
		if err != nil {
			t.Errorf("forward %s: %v", path, err)
		}
		if len(resp) == 0 {
			t.Errorf("empty response for %s", path)
		}
	}
	if appA.Drain() != 1 || appB.Drain() != 1 {
		t.Errorf("apps did not receive exactly one request each")
	}
	if string(appA.Requests()[0]) != "GET /api/status" {
		t.Errorf("payload = %q", appA.Requests()[0])
	}
}

func TestForwardCrossUserDeniedByUBF(t *testing.T) {
	// Bob authenticates fine — but the forwarded hop runs as bob, so
	// the UBF drops it at alice's listener: the whole path is
	// authorized, not just the front door.
	p, _, hosts, creds := world(t)
	if _, err := Serve(hosts["c00"], creds["alice"], 8888); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(creds["alice"], "/jupyter/a", "c00", 8888); err != nil {
		t.Fatal(err)
	}
	tokBob, err := p.Login(creds["bob"], "bob-pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Forward(tokBob, "/jupyter/a", []byte("GET /")); !errors.Is(err, ErrForbidden) {
		t.Errorf("cross-user forward err = %v, want 403", err)
	}
}

func TestForwardNoRouteAndDeadUpstream(t *testing.T) {
	p, _, _, creds := world(t)
	tok, _ := p.Login(creds["alice"], "alice-pw")
	if _, err := p.Forward(tok, "/ghost", nil); !errors.Is(err, ErrNoRoute) {
		t.Errorf("no-route err = %v, want 404", err)
	}
	// Route registered but nothing listening: 502.
	if _, err := p.Register(creds["alice"], "/dead", "c00", 7777); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Forward(tok, "/dead", nil); !errors.Is(err, ErrBadGateway) {
		t.Errorf("dead upstream err = %v, want 502", err)
	}
}

func TestLogoutInvalidatesSession(t *testing.T) {
	p, _, hosts, creds := world(t)
	if _, err := Serve(hosts["c00"], creds["alice"], 8888); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(creds["alice"], "/j", "c00", 8888); err != nil {
		t.Fatal(err)
	}
	tok, _ := p.Login(creds["alice"], "alice-pw")
	p.Logout(tok)
	if _, err := p.Forward(tok, "/j", nil); !errors.Is(err, ErrUnauthenticated) {
		t.Errorf("post-logout forward err = %v, want 401", err)
	}
}

func TestRouteVisibilityAndUnregister(t *testing.T) {
	p, _, _, creds := world(t)
	if _, err := p.Register(creds["alice"], "/a", "c00", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(creds["bob"], "/b", "c00", 2); err != nil {
		t.Fatal(err)
	}
	// Users see only their own routes.
	if rs := p.Routes(creds["alice"]); len(rs) != 1 || rs[0].Path != "/a" {
		t.Errorf("alice routes = %v", rs)
	}
	if rs := p.Routes(ids.RootCred()); len(rs) != 2 {
		t.Errorf("root routes = %v", rs)
	}
	// Only the owner (or root) unregisters.
	if err := p.Unregister(creds["alice"], "/b"); !errors.Is(err, ErrForbidden) {
		t.Errorf("foreign unregister err = %v", err)
	}
	if err := p.Unregister(creds["bob"], "/b"); err != nil {
		t.Errorf("own unregister: %v", err)
	}
	if err := p.Unregister(creds["bob"], "/b"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("double unregister err = %v", err)
	}
}

func TestBaselineNoUBFCrossUserForwardSucceeds(t *testing.T) {
	// Ablation: with no firewall installed, bob's authenticated
	// session reaches alice's app — authentication alone does not
	// authorize the path (why the paper pairs the portal with UBF).
	reg := ids.NewRegistry()
	alice, _ := reg.AddUser("alice")
	bob, _ := reg.AddUser("bob")
	n := netsim.NewNetwork()
	gw, c00 := n.AddHost("gw"), n.AddHost("c00")
	_ = c00
	p := New(gw)
	ca, _ := reg.LoginCredential(alice.UID)
	cb, _ := reg.LoginCredential(bob.UID)
	p.Enroll(alice.UID, "a")
	p.Enroll(bob.UID, "b")
	host, _ := n.Host("c00")
	if _, err := Serve(host, ca, 8888); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(ca, "/j", "c00", 8888); err != nil {
		t.Fatal(err)
	}
	tok, _ := p.Login(cb, "b")
	if _, err := p.Forward(tok, "/j", []byte("GET /")); err != nil {
		t.Errorf("baseline cross-user forward should succeed (leak): %v", err)
	}
}

func TestTunnelModeForwardsAsRouteOwner(t *testing.T) {
	// The §IV-E ablation: in tunnel mode the hop terminates as the
	// ROUTE OWNER (pre-portal ad-hoc tunnel semantics), so the UBF
	// only ever sees alice's identity and bob's authenticated session
	// sails through to alice's app.
	p, _, hosts, creds := world(t)
	p.SetTunnelMode(true)
	if _, err := Serve(hosts["c00"], creds["alice"], 8888); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(creds["alice"], "/jupyter/a", "c00", 8888); err != nil {
		t.Fatal(err)
	}
	tokBob, err := p.Login(creds["bob"], "bob-pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Forward(tokBob, "/jupyter/a", []byte("GET /")); err != nil {
		t.Errorf("tunnel-mode cross-user forward err = %v, want reopened", err)
	}
	// Authentication is still the front door even in tunnel mode.
	if _, err := p.Forward("bogus", "/jupyter/a", nil); !errors.Is(err, ErrUnauthenticated) {
		t.Errorf("unauthenticated tunnel forward err = %v, want 401", err)
	}
}

// Reset must drop enrolments, sessions and routes and rewind the token
// counter so a reset portal issues the same tokens a fresh one would.
func TestPortalReset(t *testing.T) {
	n := netsim.NewNetwork()
	p := New(n.AddHost("portal"))
	alice := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	p.Enroll(alice.UID, "pw")
	tok1, err := p.Login(alice, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(alice, "/app", "c00", 8888); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if _, err := p.Login(alice, "pw"); err == nil {
		t.Error("enrolment survived Reset")
	}
	if routes := p.Routes(ids.RootCred()); len(routes) != 0 {
		t.Errorf("routes %v survived Reset", routes)
	}
	if _, err := p.Forward(tok1, "/app", nil); err == nil {
		t.Error("stale session token still valid after Reset")
	}
	p.Enroll(alice.UID, "pw")
	tok2, err := p.Login(alice, "pw")
	if err != nil {
		t.Fatal(err)
	}
	if tok2 != tok1 {
		t.Errorf("token counter did not rewind: %q vs %q", tok2, tok1)
	}
}
