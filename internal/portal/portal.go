// Package portal implements the web portal/gateway substrate
// (paper §IV-E): LLSC forwards web connections from applications
// running on compute nodes (Jupyter, TensorBoard, ...) to the user's
// browser through an authenticated HPC portal, instead of ad-hoc ssh
// port forwarding.
//
// The separation property reproduced here: "User authentication is
// required to connect to the HPC Portal and UBF connection rules are
// enforced, so that the entire connection path is authenticated and
// authorized" — the portal forwards with the *authenticated user's*
// identity, so the UBF verdict between the portal host and the
// compute node is the user's own, and apps can run "on any compute
// node in any partition".
package portal

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// Portal errors (HTTP-status-like).
var (
	ErrUnauthenticated = errors.New("portal: 401 authentication required")
	ErrForbidden       = errors.New("portal: 403 forbidden")
	ErrNoRoute         = errors.New("portal: 404 no such application route")
	ErrBadGateway      = errors.New("portal: 502 upstream connection failed")
	ErrBadCredentials  = errors.New("portal: invalid credentials")
)

// Route is one registered web application.
type Route struct {
	Path  string // e.g. "/jupyter/alice-1"
	Owner ids.UID
	Node  string
	Port  int
}

// Portal is the gateway daemon. It runs on a dedicated host of the
// simulated network and proxies to compute nodes over that network,
// so every forwarded hop is subject to whatever firewall the cluster
// has installed.
type Portal struct {
	host *netsim.Host

	mu       sync.Mutex
	secrets  map[ids.UID]string // password store (the site SSO)
	sessions map[string]ids.Credential
	routes   map[string]*Route
	nextTok  int
	tunnel   bool // legacy forwarding: hops run as the route owner
}

// New creates a portal bound to the given gateway host.
func New(host *netsim.Host) *Portal {
	return &Portal{
		host:     host,
		secrets:  make(map[ids.UID]string),
		sessions: make(map[string]ids.Credential),
		routes:   make(map[string]*Route),
	}
}

// SetTunnelMode switches between the paper's identity-preserving
// forwarding (off, the default: each hop is dialed as the
// AUTHENTICATED user, so the UBF on the compute node applies the end
// user's own verdict) and pre-portal ad-hoc tunnel semantics (on:
// hops are dialed as the ROUTE OWNER, the way a user-launched ssh
// tunnel terminates — any authenticated portal user then reaches any
// registered app, because the firewall only ever sees the owner's
// identity). Tunnel mode is the §IV-E ablation.
func (p *Portal) SetTunnelMode(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tunnel = on
}

// Reset rewinds the portal to its freshly-constructed state:
// enrolments, sessions and routes are dropped and the session token
// counter restarts, so a reset portal hands out the same token strings
// a fresh one would. The forwarding mode (SetTunnelMode) survives — it
// is cluster-assembly configuration, set from Config at construction,
// not per-trial state.
func (p *Portal) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	clear(p.secrets)
	clear(p.sessions)
	clear(p.routes)
	p.nextTok = 0
}

// Enroll registers a user's portal password (site SSO enrolment).
func (p *Portal) Enroll(uid ids.UID, password string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.secrets[uid] = password
}

// Login authenticates and returns a session token.
func (p *Portal) Login(cred ids.Credential, password string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	want, ok := p.secrets[cred.UID]
	if !ok || want != password {
		return "", fmt.Errorf("%w: uid %d", ErrBadCredentials, cred.UID)
	}
	p.nextTok++
	tok := fmt.Sprintf("tok-%d-%d", cred.UID, p.nextTok)
	p.sessions[tok] = cred.Clone()
	return tok, nil
}

// Logout invalidates a session.
func (p *Portal) Logout(token string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.sessions, token)
}

// Register adds an application route. The owner is whoever launched
// the web app; routes are per-user and may point at ANY compute node
// (the paper's "not restricted to a small partition").
func (p *Portal) Register(owner ids.Credential, path, node string, port int) (*Route, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := &Route{Path: path, Owner: owner.UID, Node: node, Port: port}
	p.routes[path] = r
	return r, nil
}

// Unregister removes a route (owner or root).
func (p *Portal) Unregister(actor ids.Credential, path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.routes[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRoute, path)
	}
	if !actor.IsRoot() && actor.UID != r.Owner {
		return fmt.Errorf("%w: %s", ErrForbidden, path)
	}
	delete(p.routes, path)
	return nil
}

// Routes lists routes visible to the observer: their own (plus all,
// for root) — route paths of other users are private too.
func (p *Portal) Routes(observer ids.Credential) []*Route {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Route
	for _, r := range p.routes {
		if observer.IsRoot() || r.Owner == observer.UID {
			cp := *r
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Forward handles one authenticated request: resolve the session,
// resolve the route, and proxy to the compute node *as the
// authenticated user*. The connection is made over the simulated
// network, so the UBF hook on the compute node applies its usual
// rule: if the session user does not own (or share a group with) the
// listening app, the hop is dropped and the portal returns 502/403.
func (p *Portal) Forward(token, path string, payload []byte) ([]byte, error) {
	p.mu.Lock()
	cred, authed := p.sessions[token]
	r, routed := p.routes[path]
	tunnel := p.tunnel
	p.mu.Unlock()
	if !authed {
		return nil, ErrUnauthenticated
	}
	if !routed {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, path)
	}
	if tunnel {
		// Legacy tunnel semantics: the hop terminates as the route
		// owner, whoever asked for it (see SetTunnelMode).
		cred = ids.Credential{UID: r.Owner}
	}
	conn, err := p.host.Dial(cred, netsim.TCP, r.Node, r.Port)
	if err != nil {
		if errors.Is(err, netsim.ErrConnDropped) {
			return nil, fmt.Errorf("%w: UBF denied %s for uid %d: %v", ErrForbidden, path, cred.UID, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadGateway, err)
	}
	defer conn.Close()
	if err := conn.Send(payload); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadGateway, err)
	}
	// The app echoes a response in this simulation; a real app would
	// be driven by its own handler loop (see AppServer).
	return []byte(fmt.Sprintf("200 OK %s via %s:%d", path, r.Node, r.Port)), nil
}

// AppServer is a minimal web application (a Jupyter stand-in) bound
// on a compute node. It records requests so tests can verify
// delivery.
type AppServer struct {
	Listener *netsim.Listener

	mu       sync.Mutex
	requests [][]byte
}

// Serve launches an app server for cred on host:port.
func Serve(host *netsim.Host, cred ids.Credential, port int) (*AppServer, error) {
	l, err := host.Listen(cred, netsim.TCP, port)
	if err != nil {
		return nil, err
	}
	return &AppServer{Listener: l}, nil
}

// Drain pulls all pending connections' payloads into the request log
// and returns how many requests arrived.
func (a *AppServer) Drain() int {
	n := 0
	for {
		c, ok := a.Listener.Accept()
		if !ok {
			return n
		}
		for {
			d, ok := c.Recv()
			if !ok {
				break
			}
			a.mu.Lock()
			a.requests = append(a.requests, d)
			a.mu.Unlock()
			n++
		}
	}
}

// Requests returns the received payloads.
func (a *AppServer) Requests() [][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([][]byte(nil), a.requests...)
}
