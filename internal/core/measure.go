package core

import (
	"fmt"

	"repro/internal/procfs"
	"repro/internal/sched"
	"repro/internal/vfs"
)

// Measure is one individually deployable separation measure from the
// paper's §IV catalogue. A measure knows how to apply itself to a
// Config (Apply) and how to veto incoherent configurations that
// half-apply it (Validate). Measures compose: a Profile is a base
// Config plus an ordered measure set, and ablation experiments build
// "enhanced minus one measure" configurations by dropping a single
// entry (see NewWithProfile / Without and experiments.E16).
type Measure struct {
	// Name is the registry key, e.g. "hidepid". Stable: experiment
	// tables, CLI -ablate flags and tests refer to measures by name.
	Name string
	// Section is the paper section that introduces the measure,
	// e.g. "§IV-A".
	Section string
	// Summary is a one-line human description for CLI listings.
	Summary string
	// Apply mutates cfg to deploy the measure.
	Apply func(cfg *Config)
	// Validate, when non-nil, rejects configurations that apply the
	// measure incoherently (e.g. a seepid exemption with hidepid
	// off). It is called by Config.Validate for EVERY registered
	// measure, applied or not — the hooks own the cross-field rules
	// for their slice of the Config.
	Validate func(cfg Config) error
}

// registry holds the paper's deployed measures in §IV order. Order
// matters twice: Profile application order, and E16 row order.
var registry = []Measure{
	{
		Name:    "hidepid",
		Section: "§IV-A",
		Summary: "mount /proc with hidepid=2 + the gid= exemption entered via seepid",
		Apply: func(cfg *Config) {
			cfg.HidePID = procfs.HidePIDInvis
			cfg.SeepidEnabled = true
		},
		Validate: func(cfg Config) error {
			if cfg.SeepidEnabled && cfg.HidePID == procfs.HidePIDOff {
				return fmt.Errorf("seepid exemption configured but hidepid is off (nothing to be exempt from)")
			}
			return nil
		},
	},
	{
		Name:    "privatedata",
		Section: "§IV-B",
		Summary: "Slurm PrivateData: users see only their own jobs and accounting",
		Apply:   func(cfg *Config) { cfg.PrivateData = true },
	},
	{
		Name:    "wholenode",
		Section: "§IV-B",
		Summary: "user-based whole-node scheduling + pam_slurm compute-node ssh gate",
		Apply: func(cfg *Config) {
			cfg.Policy = sched.PolicyUserWholeNode
			cfg.PamSlurm = true
		},
	},
	{
		Name:    "smask",
		Section: "§IV-C",
		Summary: "smask kernel patch + ACL restriction + root-owned hardened homes",
		Apply: func(cfg *Config) {
			cfg.SmaskEnabled = true
			cfg.Smask = vfs.DefaultSmask
			cfg.ACLRestrict = true
			cfg.HardenedHomes = true
		},
		Validate: func(cfg Config) error {
			if cfg.Smask != 0 && !cfg.SmaskEnabled {
				return fmt.Errorf("smask bits %04o set but SmaskEnabled is false (mask would never bind)", cfg.Smask)
			}
			if cfg.SmaskEnabled && cfg.Smask == 0 {
				return fmt.Errorf("SmaskEnabled with a zero mask blocks nothing (set Smask, e.g. vfs.DefaultSmask)")
			}
			return nil
		},
	},
	{
		Name:    "protected-symlinks",
		Section: "§IV-C",
		Summary: "fs.protected_symlinks semantics in world-writable sticky directories",
		Apply:   func(cfg *Config) { cfg.ProtectedSymlinks = true },
	},
	{
		Name:    "ubf",
		Section: "§IV-D",
		Summary: "user-based firewall: ident-backed NEW-connection verdicts + verdict cache",
		Apply: func(cfg *Config) {
			cfg.UBFEnabled = true
			cfg.UBFGroupPeers = true
			cfg.UBFCacheVerdicts = true
		},
	},
	{
		Name:    "portal",
		Section: "§IV-E",
		Summary: "identity-preserving portal forwarding: every hop runs as the authenticated user",
		Apply:   func(cfg *Config) { cfg.PortalUserForward = true },
	},
	{
		Name:    "gpu",
		Section: "§IV-F",
		Summary: "prolog GPU device-permission binding + epilog memory clear",
		Apply: func(cfg *Config) {
			cfg.GPUAssignPerms = true
			cfg.GPUClear = true
		},
	},
	{
		Name:    "container",
		Section: "§IV-G",
		Summary: "encapsulation containers restricted to individually approved users",
		Apply:   func(cfg *Config) { cfg.ContainerRestrict = true },
	},
}

// Measures returns the paper's separation measures in §IV order.
// The slice is a copy; the Measure values share the registry's
// function pointers.
func Measures() []Measure {
	return append([]Measure(nil), registry...)
}

// MeasureByName resolves a registry measure, e.g. "ubf".
func MeasureByName(name string) (Measure, error) {
	for _, m := range registry {
		if m.Name == name {
			return m, nil
		}
	}
	return Measure{}, fmt.Errorf("core: unknown measure %q (have %v)", name, MeasureNames())
}

// MeasureNames lists the registry names in order, for CLI usage
// strings and error messages.
func MeasureNames() []string {
	names := make([]string, len(registry))
	for i, m := range registry {
		names[i] = m.Name
	}
	return names
}
