package core

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/audit"
	"repro/internal/container"
	"repro/internal/netsim"
	"repro/internal/portal"
	"repro/internal/sched"
	"repro/internal/vfs"
)

// LeakScan runs the full attack-surface sweep of the paper's Results
// section (§V) against a FRESH cluster: it provisions a victim and an
// attacker (who share no project group), has the victim do ordinary
// work on every subsystem, then has the attacker attempt every
// cross-user channel. The returned report's shape is the paper's
// evaluation: baseline leaks everywhere; enhanced closes everything
// except the three residual channels (file names in world-writable
// directories, abstract-namespace unix sockets, direct IB-CM RDMA).
func LeakScan(c *Cluster) (*audit.Report, error) {
	victim, err := c.AddUser("victim", "victim-pw")
	if err != nil {
		return nil, err
	}
	attacker, err := c.AddUser("attacker", "attacker-pw")
	if err != nil {
		return nil, err
	}
	s := audit.NewScanner()
	if err := registerProbes(c, s, victim, attacker); err != nil {
		return nil, err
	}
	return s.Run(c.Cfg.Name), nil
}

// registerProbes wires every probe. Exported pieces of the scenario
// live here so the examples can reuse them.
func registerProbes(c *Cluster, s *audit.Scanner, victim, attacker *User) error {
	login := c.Logins[0]
	secretArg := "--token=VICTIM-SECRET-42"

	// -- Victim activity common to several probes --------------------
	vp := login.Procs.Spawn(victim.Cred, 1, "analyze", secretArg)
	vctx := vfs.Ctx(victim.Cred)
	actx := vfs.Ctx(attacker.Cred)

	if err := c.SharedFS.WriteFile(vctx, victim.HomePath+"/results.csv", []byte("victim-home-data"), 0o644); err != nil {
		return err
	}
	// Victim mistypes a chmod opening a scratch file to the world.
	if err := c.SharedFS.WriteFile(vctx, "/scratch/shared/victim-output.dat", []byte("victim-scratch-data"), 0o600); err != nil {
		return err
	}
	if err := c.SharedFS.Chmod(vctx, "/scratch/shared/victim-output.dat", 0o644); err != nil {
		return err
	}
	// Victim drops a working file into the login node's /tmp.
	loginNS := c.NS[login.Name]
	if err := loginNS.WriteFile(vctx, "/tmp/victim-projectX-run7.tmp", []byte("victim-tmp-data"), 0o644); err != nil {
		return err
	}

	// Victim submits a batch job whose command line carries a secret.
	vjob, err := c.Sched.Submit(victim.Cred, sched.JobSpec{
		Name: "victim-sim", Command: "simulate " + secretArg,
		Cores: 2, MemB: 1, Duration: 1 << 30, // effectively forever
	})
	if err != nil {
		return err
	}
	c.Step()
	runningVJob, err := c.Sched.Job(vjob.ID)
	if err != nil {
		return err
	}

	// Victim network service on its job node.
	vjobNode := runningVJob.Nodes[0]
	vHost, err := c.Host(vjobNode)
	if err != nil {
		return err
	}
	if _, err := vHost.Listen(victim.Cred, netsim.TCP, 5000); err != nil {
		return err
	}
	// Victim abstract-namespace socket on the login node.
	loginHost, err := c.Host(login.Name)
	if err != nil {
		return err
	}
	vSock, err := loginHost.ListenAbstract(victim.Cred, "victim-coordinator")
	if err != nil {
		return err
	}
	// Victim web app + portal route.
	if _, err := portal.Serve(vHost, victim.Cred, 8888); err != nil {
		return err
	}
	if _, err := c.Portal.Register(victim.Cred, "/jupyter/victim", vjobNode, 8888); err != nil {
		return err
	}

	attackerHost, err := c.Host(c.Logins[len(c.Logins)-1].Name)
	if err != nil {
		return err
	}

	// -- Probes -------------------------------------------------------
	procView := c.Proc[login.Name]
	s.Add(audit.Probe{
		Channel: audit.ChanProcess, Name: "ps-foreign-visible",
		Attempt: func() (bool, string) {
			// Match by PID, not credential: under hidepid=1 List
			// returns redacted stubs whose Cred is zeroed, but the
			// foreign pid appearing in readdir is itself the leak.
			for _, p := range procView.List(attacker.Cred) {
				if p.PID == vp.PID {
					return true, fmt.Sprintf("victim pid %d listed", p.PID)
				}
			}
			return false, "no foreign pids in /proc listing"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanProcess, Name: "cmdline-secret-read",
		Attempt: func() (bool, string) {
			cl, err := procView.ReadCmdline(attacker.Cred, vp.PID)
			if err == nil && strings.Contains(cl, "VICTIM-SECRET") {
				return true, "read secret from /proc/<pid>/cmdline"
			}
			return false, fmt.Sprintf("cmdline read: %v", err)
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanScheduler, Name: "squeue-foreign-job",
		Attempt: func() (bool, string) {
			for _, j := range c.Sched.Squeue(attacker.Cred) {
				if j.User == victim.UID && strings.Contains(j.Spec.Command, "VICTIM-SECRET") {
					return true, fmt.Sprintf("job %d command visible", j.ID)
				}
			}
			return false, "no foreign jobs in squeue"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanScheduler, Name: "ssh-roam-to-victim-node",
		Attempt: func() (bool, string) {
			node, err := c.Node(vjobNode)
			if err != nil {
				return false, err.Error()
			}
			if _, err := node.Login(attacker.Cred); err == nil {
				return true, "ssh to victim's compute node succeeded"
			}
			return false, "pam denied compute-node ssh"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanFS, Name: "home-file-read",
		Attempt: func() (bool, string) {
			d, err := c.SharedFS.ReadFile(actx, victim.HomePath+"/results.csv")
			if err == nil {
				return true, fmt.Sprintf("read %d bytes from victim home", len(d))
			}
			return false, "home traversal denied"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanFS, Name: "chmod-world-readable",
		Attempt: func() (bool, string) {
			d, err := c.SharedFS.ReadFile(actx, "/scratch/shared/victim-output.dat")
			if err == nil {
				return true, fmt.Sprintf("read %d bytes via mistyped chmod", len(d))
			}
			return false, "smask stripped world bits"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanFS, Name: "acl-grant-to-stranger",
		Attempt: func() (bool, string) {
			// The *victim* tries to (mis)grant the attacker access —
			// accidental-sharing scenario.
			if err := c.SharedFS.SetfaclUser(vctx, "/scratch/shared/victim-output.dat", attacker.UID, 0o4); err != nil {
				return false, "acl grant rejected (no shared project group)"
			}
			if _, err := c.SharedFS.ReadFile(actx, "/scratch/shared/victim-output.dat"); err == nil {
				return true, "read via stranger acl"
			}
			return false, "acl granted but read denied"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanTmpNames, Name: "tmp-filename-listing", Residual: true,
		Attempt: func() (bool, string) {
			names, err := loginNS.ReadDir(actx, "/tmp")
			if err != nil {
				return false, err.Error()
			}
			for _, n := range names {
				if strings.Contains(n, "victim") {
					return true, fmt.Sprintf("file name %q visible", n)
				}
			}
			return false, "no victim names in /tmp"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanFS, Name: "tmp-content-read",
		Attempt: func() (bool, string) {
			d, err := loginNS.ReadFile(actx, "/tmp/victim-projectX-run7.tmp")
			if err == nil {
				return true, fmt.Sprintf("read %d bytes from victim tmp file", len(d))
			}
			return false, "tmp file content protected"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanFS, Name: "tmp-symlink-planting",
		Attempt: func() (bool, string) {
			// Attacker pre-plants a symlink where the victim's job
			// will write, pointing at an attacker-readable file.
			localFS := c.LocalFS[login.Name]
			if err := localFS.WriteFile(actx, "/tmp/.harvest", nil, 0o666); err != nil {
				return false, err.Error()
			}
			if err := localFS.Chmod(actx, "/tmp/.harvest", 0o666); err != nil {
				return false, err.Error()
			}
			if err := localFS.Symlink(actx, "/tmp/.harvest", "/tmp/victim-checkpoint.tmp"); err != nil {
				return false, err.Error()
			}
			// The victim's job writes its checkpoint "as usual".
			if err := localFS.WriteFileFollow(vctx, "/tmp/victim-checkpoint.tmp", []byte("checkpoint-secret"), 0o600); err != nil {
				return false, fmt.Sprintf("victim write refused: %v", err)
			}
			if d, err := localFS.ReadFile(actx, "/tmp/.harvest"); err == nil && strings.Contains(string(d), "checkpoint-secret") {
				return true, "victim data harvested via planted symlink"
			}
			return false, "no data harvested"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanNetwork, Name: "cross-user-dial",
		Attempt: func() (bool, string) {
			conn, err := attackerHost.Dial(attacker.Cred, netsim.TCP, vjobNode, 5000)
			if err == nil {
				conn.Close()
				return true, "connected to victim service"
			}
			return false, "UBF dropped cross-user connection"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanAbstract, Name: "abstract-socket-send", Residual: true,
		Attempt: func() (bool, string) {
			if err := loginHost.DialAbstract(attacker.Cred, "victim-coordinator", []byte("injected")); err != nil {
				return false, err.Error()
			}
			if _, from, ok := vSock.Recv(); ok && from == attacker.UID {
				return true, "datagram delivered cross-user"
			}
			return false, "no delivery"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanRDMACM, Name: "rdma-native-cm-qp", Residual: true,
		Attempt: func() (bool, string) {
			qp, err := attackerHost.SetupQP(attacker.Cred, netsim.QPViaNativeCM, vjobNode, 0)
			if err != nil {
				return false, err.Error()
			}
			_ = qp.Write([]byte("rdma"))
			qp.Close()
			return true, "QP established via native CM (firewall bypassed)"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanNetwork, Name: "rdma-tcp-cm-qp",
		Attempt: func() (bool, string) {
			qp, err := attackerHost.SetupQP(attacker.Cred, netsim.QPViaTCP, vjobNode, 5000)
			if err == nil {
				qp.Close()
				return true, "QP control channel connected cross-user"
			}
			return false, "UBF dropped QP control channel"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanPortal, Name: "portal-cross-user-forward",
		Attempt: func() (bool, string) {
			tok, err := c.Portal.Login(attacker.Cred, "attacker-pw")
			if err != nil {
				return false, err.Error()
			}
			if _, err := c.Portal.Forward(tok, "/jupyter/victim", []byte("GET /")); err == nil {
				return true, "reached victim's web app through portal"
			}
			return false, "portal forward denied end-to-end"
		},
	})
	s.Add(audit.Probe{
		Channel: audit.ChanGPU, Name: "gpu-memory-residue",
		Attempt: func() (bool, string) { return gpuResidueProbe(c, victim, attacker) },
	})
	s.Add(audit.Probe{
		Channel: audit.ChanContainer, Name: "container-home-read",
		Attempt: func() (bool, string) {
			c.Containers.ImportImage("probe-img", nil)
			c.Containers.Allow(attacker.UID)
			node := c.Compute[len(c.Compute)-1]
			ct, err := c.Containers.Run(attacker.Cred, node, c.NS[node.Name], attackerHost,
				container.RunSpec{Image: "probe-img"})
			if err != nil {
				return false, err.Error()
			}
			if _, err := ct.ReadFile(victim.HomePath + "/results.csv"); err == nil {
				return true, "read victim home from inside container"
			}
			return false, "host FS controls bound inside container"
		},
	})
	return nil
}

// gpuResidueProbe runs the two-job GPU handover: the victim's GPU job
// writes a secret to device memory; after it ends, the attacker's GPU
// job reads the same region.
func gpuResidueProbe(c *Cluster, victim, attacker *User) (bool, string) {
	secret := []byte("VICTIM-GPU-WEIGHTS")
	vj, err := c.Sched.Submit(victim.Cred, sched.JobSpec{
		Name: "gpu-train", Command: "train", Cores: 1, MemB: 1, GPUs: 1, Duration: 2,
	})
	if err != nil {
		return false, err.Error()
	}
	c.Step()
	job, err := c.Sched.Job(vj.ID)
	if err != nil || job.State != sched.Running {
		return false, fmt.Sprintf("victim gpu job not running: %v", err)
	}
	gpuNode := job.Nodes[0]
	var dev = c.GPUs.Devices(gpuNode)[0]
	// In the baseline (no perms assignment) any device works; in the
	// enhanced config the prolog assigned dev0 on this node.
	for _, d := range c.GPUs.Devices(gpuNode) {
		if d.Assigned() == victim.UID {
			dev = d
		}
	}
	if err := dev.Write(victim.Cred, 512, secret); err != nil {
		return false, fmt.Sprintf("victim gpu write failed: %v", err)
	}
	// Victim job ends; device is released (and cleared, if configured).
	c.RunAll(4)
	// Attacker gets a GPU job on the same node pool.
	aj, err := c.Sched.Submit(attacker.Cred, sched.JobSpec{
		Name: "gpu-probe", Command: "probe", Cores: 1, MemB: 1, GPUs: 1, Duration: 8,
	})
	if err != nil {
		return false, err.Error()
	}
	for i := 0; i < 10; i++ {
		c.Step()
		j, _ := c.Sched.Job(aj.ID)
		if j.State == sched.Running {
			break
		}
	}
	j, _ := c.Sched.Job(aj.ID)
	if j.State != sched.Running {
		return false, "attacker gpu job never started"
	}
	// Read residue from every device on the attacker's node, then
	// tear the probe job down so it does not grant the attacker a
	// legitimate pam_slurm foothold for later probes.
	leaked := false
	for _, d := range c.GPUs.Devices(j.Nodes[0]) {
		data, err := d.Read(attacker.Cred, 512, len(secret))
		if err != nil {
			continue
		}
		if bytes.Equal(data, secret) {
			leaked = true
		}
	}
	_ = c.Sched.Cancel(attacker.Cred, aj.ID)
	if leaked {
		return true, "previous user's data read from GPU memory"
	}
	return false, "no residue readable (cleared or access denied)"
}
