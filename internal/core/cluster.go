package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/container"
	"repro/internal/gpu"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/portal"
	"repro/internal/procfs"
	"repro/internal/sched"
	"repro/internal/simos"
	"repro/internal/ubf"
	"repro/internal/vfs"
)

// Cluster is a fully wired simulated HPC system under one separation
// configuration. Use New to build one, AddUser / AddProjectGroup to
// provision identities, and the embedded subsystems directly for
// everything else.
type Cluster struct {
	Cfg  Config
	Topo Topology

	Registry *ids.Registry

	// Nodes: compute nodes first, then login nodes.
	Compute []*simos.Node
	Logins  []*simos.Node

	Net        *netsim.Network
	PortalHost *netsim.Host

	SharedFS *vfs.FS            // Lustre-like: /home, /scratch, /proj
	LocalFS  map[string]*vfs.FS // per node: /tmp, /dev/shm
	NS       map[string]*vfs.Namespace

	Sched      *sched.Scheduler
	UBF        *ubf.Daemon
	GPUs       *gpu.Manager
	Portal     *portal.Portal
	Containers *container.Runtime

	Proc map[string]*procfs.Mount // per-node /proc view

	// Escalation tools + their groups.
	Seepid     *procfs.Seepid
	SmaskRelax *vfs.SmaskRelax
	SupportGID ids.GID // support-staff membership (the seepid whitelist)
	ExemptGID  ids.GID // /proc gid= exemption; joined only via seepid
	CoordGID   ids.GID

	// nodesByName indexes Compute+Logins for O(1) Node lookup.
	nodesByName map[string]*simos.Node
	// staffDirty records that AddSupportStaff replaced the escalation
	// tools, so Reset can skip rebuilding them on untouched clusters.
	staffDirty bool

	clock atomic.Int64
}

// SupportGroupName is the registry group whose members bypass
// hidepid (via seepid) and may relax smask.
const SupportGroupName = "hpc-support"

// CoordGroupName is the scheduler-coordinator group exempt from
// PrivateData.
const CoordGroupName = "slurm-coord"

// New builds a cluster under cfg with the given topology. Both are
// validated first: a zero Topology or an incoherent Config (see
// Config.Validate) is refused with a descriptive error instead of
// producing a silently degenerate cluster.
func New(cfg Config, topo Topology) (*Cluster, error) {
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: config %q: %w", cfg.Name, err)
	}
	c := &Cluster{
		Cfg:         cfg,
		Topo:        topo,
		Registry:    ids.NewRegistry(),
		Net:         netsim.NewNetwork(),
		LocalFS:     make(map[string]*vfs.FS),
		NS:          make(map[string]*vfs.Namespace),
		Proc:        make(map[string]*procfs.Mount),
		nodesByName: make(map[string]*simos.Node),
	}
	clock := func() int64 { return c.clock.Load() }

	// Escalation groups.
	supp, err := c.Registry.AddProjectGroup(SupportGroupName, ids.Root)
	if err != nil {
		return nil, err
	}
	coord, err := c.Registry.AddProjectGroup(CoordGroupName, ids.Root)
	if err != nil {
		return nil, err
	}
	// The /proc exemption group stays member-less in the registry:
	// holding it is a *session* state granted by seepid, never part
	// of a login credential.
	exempt, err := c.Registry.AddProjectGroup("proc-exempt", ids.Root)
	if err != nil {
		return nil, err
	}
	c.SupportGID, c.CoordGID, c.ExemptGID = supp.GID, coord.GID, exempt.GID

	// Filesystems.
	fsPolicy := vfs.Policy{
		SmaskEnabled:      cfg.SmaskEnabled,
		Smask:             cfg.Smask,
		ACLRestrict:       cfg.ACLRestrict,
		ProtectedSymlinks: cfg.ProtectedSymlinks,
	}
	c.SharedFS = vfs.New("lustre", fsPolicy, c.Registry)
	rootCtx := vfs.Context{Cred: ids.RootCred()}
	for _, dir := range []string{"/home", "/scratch", "/proj"} {
		if err := c.SharedFS.MkdirAll(rootCtx, dir, 0o755); err != nil {
			return nil, err
		}
	}
	if err := c.SharedFS.CreateTmp("/scratch/shared"); err != nil {
		return nil, err
	}

	// Every node's local filesystem starts from the same pristine tree
	// (/tmp + /dev/shm), so build it once and stamp out template-backed
	// mounts: a node whose local FS is never written shares the
	// template's inodes and costs O(1) to build and to Reset.
	localProto := vfs.New("local-proto", fsPolicy, c.Registry)
	if err := localProto.CreateTmp("/tmp"); err != nil {
		return nil, err
	}
	if err := localProto.CreateTmp("/dev/shm"); err != nil {
		return nil, err
	}
	localTmpl := localProto.AsTemplate()

	// Nodes + per-node namespaces, /proc mounts and network hosts.
	addNode := func(name string, kind simos.NodeKind) (*simos.Node, error) {
		n := simos.NewNode(name, kind, topo.CoresPerNode, topo.MemPerNode, clock)
		local := vfs.NewFromTemplate("local:"+name, fsPolicy, c.Registry, localTmpl)
		ns := vfs.NewNamespace()
		if err := ns.Mount("/", c.SharedFS); err != nil {
			return nil, err
		}
		if err := ns.Mount("/tmp", local); err != nil {
			return nil, err
		}
		if err := ns.Mount("/dev/shm", local); err != nil {
			return nil, err
		}
		c.LocalFS[name] = local
		c.NS[name] = ns
		exemptGID := ids.NoGID
		if cfg.SeepidEnabled {
			exemptGID = c.ExemptGID
		}
		c.Proc[name] = procfs.NewMount(n.Procs, cfg.HidePID, exemptGID)
		c.Net.AddHost(name)
		c.nodesByName[name] = n
		return n, nil
	}
	for i := 0; i < topo.ComputeNodes; i++ {
		n, err := addNode(fmt.Sprintf("c%02d", i), simos.Compute)
		if err != nil {
			return nil, err
		}
		c.Compute = append(c.Compute, n)
	}
	for i := 0; i < topo.LoginNodes; i++ {
		n, err := addNode(fmt.Sprintf("login%d", i), simos.Login)
		if err != nil {
			return nil, err
		}
		c.Logins = append(c.Logins, n)
	}
	c.PortalHost = c.Net.AddHost("portal")

	// Scheduler over all nodes (placement uses compute only).
	all := append(append([]*simos.Node(nil), c.Compute...), c.Logins...)
	c.Sched = sched.New(sched.Config{
		PrivateData:     cfg.PrivateData,
		Policy:          cfg.Policy,
		PamSlurm:        cfg.PamSlurm,
		CoordinatorGIDs: []ids.GID{c.CoordGID},
	}, all, topo.GPUsPerNode)

	// GPUs.
	c.GPUs = gpu.NewManager(c.Compute, topo.GPUsPerNode, cfg.GPUAssignPerms, cfg.GPUClear)
	c.GPUs.Register(c.Sched)

	// User-based firewall.
	c.UBF = ubf.New(ubf.Config{
		AllowGroupPeers: cfg.UBFGroupPeers,
		CacheVerdicts:   cfg.UBFCacheVerdicts,
	})
	if cfg.UBFEnabled {
		for _, name := range c.Net.Hosts() {
			h, err := c.Net.Host(name)
			if err != nil {
				return nil, err
			}
			c.UBF.InstallOn(h)
		}
	}

	// Portal + containers.
	c.Portal = portal.New(c.PortalHost)
	if !cfg.PortalUserForward {
		c.Portal.SetTunnelMode(true)
	}
	c.Containers = container.NewRuntime(cfg.ContainerRestrict)

	// Escalation tools.
	c.Seepid = procfs.NewSeepid(c.ExemptGID)
	c.SmaskRelax = vfs.NewSmaskRelax(0o002)

	// The assembled state is the pristine mark Reset rewinds to: the
	// registry with the escalation groups, the filesystem layout, and
	// each node's base-daemon process table (marked in simos.NewNode).
	c.Registry.MarkPristine()
	c.SharedFS.MarkPristine()
	for _, fs := range c.LocalFS {
		fs.MarkPristine()
	}

	return c, nil
}

// Reset rewinds the cluster to its pristine post-construction state,
// the trial-lifecycle contract every owned component implements:
//
//   - the logical clock returns to 0;
//   - the scheduler empties (jobs, queue, calendar, accounting,
//     aggregates, crash counters) and job numbering restarts;
//   - every node comes back up with its base-daemon process table and
//     rewound PID numbering;
//   - the shared and per-node filesystems roll back to the marked
//     pristine trees (homes, files, ACLs, quotas all gone);
//   - the registry drops trial users/groups and rewinds ID numbering;
//   - the network fabric drops sockets, conntrack and ephemeral ports;
//   - GPUs are unassigned, cleared, and their /dev nodes re-hidden;
//   - UBF caches/counters, portal enrolments/sessions/routes and
//     container images/grants empty out;
//   - the seepid/smask_relax escalation tools return to their empty
//     whitelists (AddSupportStaff replaces them wholesale).
//
// Configuration and wiring fixed at construction — Cfg, Topo, PAM
// hooks, firewall hooks, portal forwarding mode, scheduler hooks —
// survive. After Reset the cluster is observationally equivalent to a
// fresh New(cfg, topo): identical IDs, PIDs, verdicts and results for
// any identical sequence of operations. That equivalence is what lets
// the fleet executor reuse one cluster across a campaign's
// replications without perturbing a single output byte.
func (c *Cluster) Reset() error {
	c.clock.Store(0)
	c.Sched.Reset()
	for _, n := range c.Compute {
		n.Reset()
	}
	for _, n := range c.Logins {
		n.Reset()
	}
	c.SharedFS.Reset()
	for _, fs := range c.LocalFS {
		fs.Reset()
	}
	c.Registry.Reset()
	c.Net.Reset()
	if err := c.GPUs.Reset(); err != nil {
		return err
	}
	c.UBF.Reset()
	c.Portal.Reset()
	c.Containers.Reset()
	// Seepid/SmaskRelax are stateless after construction; only
	// AddSupportStaff ever swaps them for staffed variants.
	if c.staffDirty {
		c.Seepid = procfs.NewSeepid(c.ExemptGID)
		c.SmaskRelax = vfs.NewSmaskRelax(0o002)
		c.staffDirty = false
	}
	return nil
}

// MustNew is New, panicking on error (for examples and benches where
// construction cannot reasonably fail).
func MustNew(cfg Config, topo Topology) *Cluster {
	c, err := New(cfg, topo)
	if err != nil {
		panic(err)
	}
	return c
}

// Step advances the cluster one logical tick (scheduler pass + clock).
func (c *Cluster) Step() { c.Sched.Step(); c.clock.Add(1) }

// RunAll drains the scheduler, advancing the cluster clock alongside.
func (c *Cluster) RunAll(maxTicks int) int {
	t := c.Sched.RunAll(maxTicks)
	c.clock.Add(int64(t))
	return t
}

// Now returns the cluster's logical clock: ticks since construction
// (or the last Reset). Attack campaigns stamp their audit events and
// measure detection latency with it.
func (c *Cluster) Now() int64 { return c.clock.Load() }

// User bundles an account with its ready-to-use login credential.
type User struct {
	*ids.User
	Cred ids.Credential
}

// AddUser provisions a user end-to-end: registry entry (+ private
// group), home directory on the shared FS, and portal enrolment with
// the given password.
func (c *Cluster) AddUser(name, portalPassword string) (*User, error) {
	u, err := c.Registry.AddUser(name)
	if err != nil {
		return nil, err
	}
	if c.Cfg.HardenedHomes {
		if err := c.SharedFS.CreateHome(u); err != nil {
			return nil, err
		}
	} else {
		// Baseline layout: user-owned, world-searchable home.
		rootCtx := vfs.Context{Cred: ids.RootCred()}
		if err := c.SharedFS.Mkdir(rootCtx, u.HomePath, 0o755); err != nil {
			return nil, err
		}
		if err := c.SharedFS.Chown(rootCtx, u.HomePath, u.UID, u.Primary); err != nil {
			return nil, err
		}
	}
	cred, err := c.Registry.LoginCredential(u.UID)
	if err != nil {
		return nil, err
	}
	c.Portal.Enroll(u.UID, portalPassword)
	return &User{User: u, Cred: cred}, nil
}

// AddSupportStaff provisions a user who is whitelisted for seepid and
// smask_relax (an HPC research facilitator).
func (c *Cluster) AddSupportStaff(name, portalPassword string) (*User, error) {
	u, err := c.AddUser(name, portalPassword)
	if err != nil {
		return nil, err
	}
	if err := c.Registry.AddToGroup(ids.Root, c.SupportGID, u.UID); err != nil {
		return nil, err
	}
	c.Seepid = procfs.NewSeepid(c.ExemptGID, c.seepidStaff()...)
	c.SmaskRelax = vfs.NewSmaskRelax(0o002, c.seepidStaff()...)
	c.staffDirty = true
	// Refresh the credential to include the support group.
	u.Cred, err = c.Registry.LoginCredential(u.UID)
	return u, err
}

// Refresh re-derives u's login credential from the registry, picking
// up group memberships granted after the account was provisioned
// (the real-world equivalent: log out and back in).
func (c *Cluster) Refresh(u *User) error {
	cred, err := c.Registry.LoginCredential(u.UID)
	if err != nil {
		return err
	}
	u.Cred = cred
	return nil
}

// seepidStaff recovers the current support-group membership.
func (c *Cluster) seepidStaff() []ids.UID {
	g, err := c.Registry.Group(c.SupportGID)
	if err != nil {
		return nil
	}
	var out []ids.UID
	for _, uid := range g.Members() {
		if uid != ids.Root {
			out = append(out, uid)
		}
	}
	return out
}

// AddProjectGroup provisions an approved project group with a shared
// directory under /proj and the given steward.
func (c *Cluster) AddProjectGroup(name string, steward ids.UID, members ...ids.UID) (*ids.Group, error) {
	g, err := c.Registry.AddProjectGroup(name, steward)
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if err := c.Registry.AddToGroup(steward, g.GID, m); err != nil {
			return nil, err
		}
	}
	if err := c.SharedFS.CreateProjectDir("/proj/"+name, g); err != nil {
		return nil, err
	}
	return g, nil
}

// Node returns any node (compute or login) by name.
func (c *Cluster) Node(name string) (*simos.Node, error) {
	if n, ok := c.nodesByName[name]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("core: no such node %q", name)
}

// Host returns the network host for a node name.
func (c *Cluster) Host(name string) (*netsim.Host, error) {
	return c.Net.Host(name)
}

// LoginShell performs an ssh-style login (PAM-gated on compute nodes)
// and returns the shell process.
func (c *Cluster) LoginShell(nodeName string, cred ids.Credential) (*simos.Process, error) {
	n, err := c.Node(nodeName)
	if err != nil {
		return nil, err
	}
	return n.Login(cred)
}
