package core

import (
	"fmt"
	"strings"
)

// Profile is a named, reproducible cluster configuration: a base
// Config plus an ordered set of separation measures applied on top.
// The two paper configurations are profiles — Baseline() is the
// stock base with no measures, Enhanced() is the same base with the
// full §IV registry — and ablations are profiles with entries
// removed (see NewWithProfile / Without).
type Profile struct {
	Name     string
	Base     Config
	Measures []Measure
}

// Config derives the profile's Config: base, then each measure in
// order, then the profile name; the result is validated.
func (p Profile) Config() (Config, error) {
	cfg := p.Base
	for _, m := range p.Measures {
		if m.Apply == nil {
			return Config{}, fmt.Errorf("core: profile %q: measure %q has no Apply", p.Name, m.Name)
		}
		m.Apply(&cfg)
	}
	cfg.Name = p.Name
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("core: profile %q: %w", p.Name, err)
	}
	return cfg, nil
}

// MustConfig is Config, panicking on error (for the static presets,
// which cannot fail unless the registry itself is broken).
func (p Profile) MustConfig() Config {
	cfg, err := p.Config()
	if err != nil {
		panic(err)
	}
	return cfg
}

// Has reports whether the profile contains a measure by name.
func (p Profile) Has(name string) bool {
	for _, m := range p.Measures {
		if m.Name == name {
			return true
		}
	}
	return false
}

// stockBase is the shared starting point of every profile: a
// conventional multi-tenant Linux HPC system with default
// (permissive) settings. Zero values everywhere; the explicit fields
// document the interesting defaults.
func stockBase() Config {
	return Config{
		HidePID: 0, // hidepid off: every /proc entry world-visible
		Policy:  0, // PolicyShared: any user mix per node
	}
}

// BaselineProfile is the "before" picture the paper argues against:
// the stock base with no separation measures.
func BaselineProfile() Profile {
	return Profile{Name: "baseline", Base: stockBase()}
}

// EnhancedProfile is the paper's deployed configuration: the stock
// base plus every measure of the §IV registry, in order.
func EnhancedProfile() Profile {
	return Profile{Name: "enhanced", Base: stockBase(), Measures: Measures()}
}

// Profiles returns the named profiles in comparison order
// (baseline first), the order every two-column experiment table uses.
func Profiles() []Profile {
	return []Profile{BaselineProfile(), EnhancedProfile()}
}

// ProfileByName resolves "baseline" or "enhanced".
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("core: unknown profile %q (have baseline, enhanced)", name)
}

// Option customizes NewWithProfile's cluster assembly.
type Option func(*clusterBuild)

type clusterBuild struct {
	topo   Topology
	name   string // explicit WithName override
	add    []Measure
	remove []string // measure names dropped from the profile
}

// WithTopology sets the cluster geometry (default: DefaultTopology).
func WithTopology(topo Topology) Option {
	return func(b *clusterBuild) { b.topo = topo }
}

// WithMeasures adds measures to the profile's set. A measure whose
// name is already present replaces that entry in place; a new name
// (including one just dropped via Without) is applied AFTER the
// profile's own measures. The registry's measures touch disjoint
// Config fields, so for them application order never matters; a
// custom measure that overlaps registry fields must account for
// running last. Custom (non-registry) measures are welcome — that is
// how experiments compose one-off variants.
func WithMeasures(ms ...Measure) Option {
	return func(b *clusterBuild) { b.add = append(b.add, ms...) }
}

// Without drops a measure (by registry name) from the profile's set
// — the ablation lever. Unknown names are an assembly error.
func Without(name string) Option {
	return func(b *clusterBuild) { b.remove = append(b.remove, name) }
}

// WithName overrides the derived Config.Name. Without it, ablated or
// extended profiles get a descriptive name such as
// "enhanced-no-hidepid" or "enhanced+audit".
func WithName(name string) Option {
	return func(b *clusterBuild) { b.name = name }
}

// ResolveProfile applies options to a profile and returns the
// resulting named profile (measure set edited, name derived) plus
// the topology to build with. NewWithProfile uses it; it is exported
// so CLIs can show the user what an option set means before
// building anything.
func ResolveProfile(p Profile, opts ...Option) (Profile, Topology, error) {
	b := clusterBuild{topo: DefaultTopology()}
	for _, opt := range opts {
		opt(&b)
	}

	measures := append([]Measure(nil), p.Measures...)
	var suffix []string
	for _, name := range b.remove {
		found := false
		for i, m := range measures {
			if m.Name == name {
				measures = append(measures[:i], measures[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			if _, err := MeasureByName(name); err != nil {
				return Profile{}, Topology{}, err
			}
			return Profile{}, Topology{}, fmt.Errorf("core: profile %q does not include measure %q", p.Name, name)
		}
		suffix = append(suffix, "-no-"+name)
	}
	for _, m := range b.add {
		replaced := false
		for i := range measures {
			if measures[i].Name == m.Name {
				measures[i] = m
				replaced = true
				break
			}
		}
		if !replaced {
			measures = append(measures, m)
			suffix = append(suffix, "+"+m.Name)
		}
	}

	name := b.name
	if name == "" {
		name = p.Name + strings.Join(suffix, "")
	}
	return Profile{Name: name, Base: p.Base, Measures: measures}, b.topo, nil
}

// NewWithProfile assembles a cluster from a profile plus options:
//
//	c, err := core.NewWithProfile(core.EnhancedProfile(),
//	        core.WithTopology(topo),
//	        core.Without("hidepid"),           // ablate one measure
//	        core.WithName("no-proc-hiding"))   // optional label
//
// The derived Config is validated before any wiring happens, so an
// incoherent combination fails with a descriptive error instead of a
// silently misconfigured cluster.
func NewWithProfile(p Profile, opts ...Option) (*Cluster, error) {
	resolved, topo, err := ResolveProfile(p, opts...)
	if err != nil {
		return nil, err
	}
	cfg, err := resolved.Config()
	if err != nil {
		return nil, err
	}
	return New(cfg, topo)
}

// MustNewWithProfile is NewWithProfile, panicking on error.
func MustNewWithProfile(p Profile, opts ...Option) *Cluster {
	c, err := NewWithProfile(p, opts...)
	if err != nil {
		panic(err)
	}
	return c
}
