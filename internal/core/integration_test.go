package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/container"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/portal"
	"repro/internal/sched"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// TestProjectCollaborationEndToEnd walks the paper's intended-sharing
// story across every subsystem at once: two project members
// collaborate via the project directory, an sg-group service, and a
// shared portal app, while an outsider is excluded everywhere.
func TestProjectCollaborationEndToEnd(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	lead, _ := c.AddUser("lead", "pw")
	member, _ := c.AddUser("member", "pw")
	outsider, _ := c.AddUser("outsider", "pw")
	g, err := c.AddProjectGroup("fusion", lead.UID, member.UID)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []*User{lead, member} {
		if err := c.Refresh(u); err != nil {
			t.Fatal(err)
		}
	}

	// Filesystem: the lead drops a dataset into the project area.
	if err := c.SharedFS.WriteFile(vfs.Ctx(lead.Cred), "/proj/fusion/mesh.dat", []byte("mesh"), 0o660); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SharedFS.ReadFile(vfs.Ctx(member.Cred), "/proj/fusion/mesh.dat"); err != nil {
		t.Errorf("member read: %v", err)
	}
	if _, err := c.SharedFS.ReadFile(vfs.Ctx(outsider.Cred), "/proj/fusion/mesh.dat"); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("outsider read err = %v", err)
	}

	// Network: the lead starts a result server under `sg fusion` so
	// the member's job can stream to it.
	leadProj, err := c.Registry.SwitchGroup(lead.Cred, g.GID)
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := c.Host(c.Compute[0].Name)
	if _, err := h0.Listen(leadProj, netsim.TCP, 7777); err != nil {
		t.Fatal(err)
	}
	h1, _ := c.Host(c.Compute[1].Name)
	if _, err := h1.Dial(member.Cred, netsim.TCP, c.Compute[0].Name, 7777); err != nil {
		t.Errorf("member dial to sg-group service: %v", err)
	}
	if _, err := h1.Dial(outsider.Cred, netsim.TCP, c.Compute[0].Name, 7777); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("outsider dial err = %v", err)
	}

	// Scheduler: both members run jobs; whole-node-per-user still
	// keeps their *nodes* separate (the policy is per user, not per
	// project).
	jl, _ := c.Sched.Submit(lead.Cred, sched.JobSpec{Name: "solve", Command: "solve", Cores: 4, MemB: 1, Duration: 5})
	jm, _ := c.Sched.Submit(member.Cred, sched.JobSpec{Name: "post", Command: "post", Cores: 4, MemB: 1, Duration: 5})
	c.Step()
	gl, _ := c.Sched.Job(jl.ID)
	gm, _ := c.Sched.Job(jm.ID)
	if gl.State != sched.Running || gm.State != sched.Running {
		t.Fatalf("jobs %v %v", gl.State, gm.State)
	}
	if gl.Nodes[0] == gm.Nodes[0] {
		t.Errorf("two users share node %s under user-wholenode", gl.Nodes[0])
	}

	// Portal: the lead's dashboard is reachable by the lead only
	// (portal forwards as the session user; the app listener is under
	// the lead's private group unless restarted with sg).
	ph, _ := c.Host(gl.Nodes[0])
	if _, err := portal.Serve(ph, lead.Cred, 8800); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Portal.Register(lead.Cred, "/dash", gl.Nodes[0], 8800); err != nil {
		t.Fatal(err)
	}
	ltok, _ := c.Portal.Login(lead.Cred, "pw")
	if _, err := c.Portal.Forward(ltok, "/dash", []byte("GET /")); err != nil {
		t.Errorf("lead forward: %v", err)
	}
	mtok, _ := c.Portal.Login(member.Cred, "pw")
	if _, err := c.Portal.Forward(mtok, "/dash", nil); !errors.Is(err, portal.ErrForbidden) {
		t.Errorf("member forward err = %v (listener not under sg)", err)
	}

	// Containers: the member's containerized tool reads the project
	// data through the passthrough mount.
	c.Containers.ImportImage("tools", nil)
	c.Containers.Allow(member.UID)
	node := c.Compute[2]
	nh, _ := c.Host(node.Name)
	ct, err := c.Containers.Run(member.Cred, node, c.NS[node.Name], nh, container.RunSpec{Image: "tools"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.ReadFile("/proj/fusion/mesh.dat"); err != nil {
		t.Errorf("container project read: %v", err)
	}
}

// TestExternalNodeCrashFailsJobs injects a hardware failure and
// verifies the scheduler notices, fails the jobs, and reschedules new
// work around the dead node until it is restored.
func TestExternalNodeCrashFailsJobs(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	u, _ := c.AddUser("alice", "pw")
	j, err := c.Sched.Submit(u.Cred, sched.JobSpec{Name: "long", Command: "x", Cores: 2, MemB: 1, Duration: 100})
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	running, _ := c.Sched.Job(j.ID)
	node, _ := c.Node(running.Nodes[0])
	node.Crash()
	c.Step()
	failed, _ := c.Sched.Job(j.ID)
	if failed.State != sched.Failed {
		t.Fatalf("job state after crash = %v, want Failed", failed.State)
	}
	// New work schedules around the dead node.
	j2, _ := c.Sched.Submit(u.Cred, sched.JobSpec{Name: "retry", Command: "x", Cores: 2, MemB: 1, Duration: 2})
	c.Step()
	r2, _ := c.Sched.Job(j2.ID)
	if r2.State != sched.Running {
		t.Fatalf("retry state %v", r2.State)
	}
	if r2.Nodes[0] == node.Name {
		t.Errorf("retry placed on dead node")
	}
	node.Restore()
	c.RunAll(20)
	done, _ := c.Sched.Job(j2.ID)
	if done.State != sched.Completed {
		t.Errorf("retry final state %v", done.State)
	}
}

// TestConcurrentMixedTraffic hammers the UBF from many goroutines —
// same-user (allowed) and cross-user (denied) flows interleaved —
// checking verdicts stay correct under contention and the race
// detector stays quiet.
func TestConcurrentMixedTraffic(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	users := make([]*User, 4)
	for i := range users {
		users[i], _ = c.AddUser(fmt.Sprintf("user%d", i), "pw")
	}
	// One service per user, all on c00.
	h0, _ := c.Host(c.Compute[0].Name)
	for i, u := range users {
		if _, err := h0.Listen(u.Cred, netsim.TCP, 9000+i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 256)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src, _ := c.Host(c.Compute[1+w%3].Name)
			me := users[w%4]
			for i := 0; i < 50; i++ {
				target := (w + i) % 4
				conn, err := src.Dial(me.Cred, netsim.TCP, c.Compute[0].Name, 9000+target)
				if target == w%4 {
					if err != nil {
						errCh <- fmt.Errorf("own dial failed: %v", err)
						continue
					}
					if err := conn.Send([]byte("d")); err != nil {
						errCh <- err
					}
					conn.Close()
				} else if err == nil {
					errCh <- fmt.Errorf("cross-user dial from %d to %d succeeded", w%4, target)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestConcurrentSubmitAndStep races job submission against the
// scheduling loop; the whole-node invariant must hold throughout.
func TestConcurrentSubmitAndStep(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	users := make([]*User, 3)
	for i := range users {
		users[i], _ = c.AddUser(fmt.Sprintf("user%d", i), "pw")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			c.Step()
			if c.Sched.MaxUsersPerNode() > 1 {
				t.Error("whole-node invariant violated mid-run")
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(1)
		go func(u *User) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				_, err := c.Sched.Submit(u.Cred, sched.JobSpec{
					Name: "w", Command: "x", Cores: 1 + i%4, MemB: 1, Duration: int64(1 + i%3),
				})
				if err != nil {
					t.Errorf("submit: %v", err)
				}
			}
		}(u)
	}
	wg.Wait()
	<-done
	c.RunAll(5000)
	if got := len(c.Sched.Sacct(ids.RootCred())); got != 90 {
		t.Errorf("accounting rows = %d, want 90", got)
	}
}

// TestMPICampaignThroughEnhancedCluster runs several multi-node MPI
// jobs from different users concurrently, each doing its rank
// exchange through the UBF-guarded fabric.
func TestMPICampaignThroughEnhancedCluster(t *testing.T) {
	c := MustNew(Enhanced(), Topology{ComputeNodes: 6, LoginNodes: 1, CoresPerNode: 4, MemPerNode: 1 << 20, GPUsPerNode: 0})
	users := make([]*User, 2)
	for i := range users {
		users[i], _ = c.AddUser(fmt.Sprintf("user%d", i), "pw")
	}
	var jobs []*sched.Job
	for i, u := range users {
		j, err := c.Sched.Submit(u.Cred, sched.JobSpec{
			Name: fmt.Sprintf("mpi%d", i), Command: "xhpl",
			Cores: 12, MemB: 1, Duration: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	c.Step()
	for i, j := range jobs {
		running, _ := c.Sched.Job(j.ID)
		if running.State != sched.Running {
			t.Fatalf("job %d state %v", j.ID, running.State)
		}
		res, err := workload.RunMPI(running, c.Net, 11000+i, []byte("halo"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Dropped != 0 || res.Connected != len(running.Nodes)-1 {
			t.Errorf("job %d: %+v", j.ID, res)
		}
	}
	// The two jobs' node sets are disjoint (user-wholenode).
	j0, _ := c.Sched.Job(jobs[0].ID)
	j1, _ := c.Sched.Job(jobs[1].ID)
	for _, a := range j0.Nodes {
		for _, b := range j1.Nodes {
			if a == b {
				t.Errorf("node %s shared between users", a)
			}
		}
	}
}
