package core

import (
	"testing"
)

// TestUntouchedResetAllocFree pins the XXL contract: Reset() on a
// cluster that has run no trial does zero allocation and no per-node
// work. Every subsystem reaches its fast path — the registry and
// scheduler via gen counters, per-node mounts via the vfs dirty flag,
// GPU/netsim via their managers' dirty flags — so trial turnaround on
// a 10k-node substrate is not O(nodes).
func TestUntouchedResetAllocFree(t *testing.T) {
	topo := Topology{
		ComputeNodes: 256,
		LoginNodes:   2,
		CoresPerNode: 16,
		MemPerNode:   1 << 30,
		GPUsPerNode:  2,
	}
	c := MustNew(Enhanced(), topo)
	// One warm-up: the first Reset may settle one-time lazy state.
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset on untouched cluster allocated %.1f times per run; want 0", allocs)
	}
}

// TestTouchedResetStillAllocFreeWhenDrained pins that a cluster which
// ran a trial and was Reset once is indistinguishable from pristine:
// the second Reset is again allocation-free.
func TestResetReturnsToFastPath(t *testing.T) {
	c := MustNew(Enhanced(), Topology{
		ComputeNodes: 16,
		LoginNodes:   1,
		CoresPerNode: 8,
		MemPerNode:   1 << 30,
		GPUsPerNode:  1,
	})
	if _, err := c.AddUser("transient", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset after rewind allocated %.1f times per run; want 0", allocs)
	}
}
