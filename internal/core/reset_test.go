package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/vfs"
)

// trialScript drives a cluster through every subsystem a campaign
// trial can touch — identity provisioning, filesystem writes, job
// submission with an OOM crash, GPU assignment, UBF-checked network
// traffic, portal sessions and forwards, containers, support-staff
// escalation — and returns a digest of everything observable. Two
// clusters are behaviourally equal iff their digests match.
func trialScript(t *testing.T, c *Cluster) map[string]interface{} {
	t.Helper()
	out := map[string]interface{}{}

	alice, err := c.AddUser("alice", "pw-a")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.AddUser("bob", "pw-b")
	if err != nil {
		t.Fatal(err)
	}
	out["uids"] = []ids.UID{alice.UID, bob.UID}
	out["egids"] = []ids.GID{alice.Cred.EGID, bob.Cred.EGID}

	// Filesystem: homes, a shared scratch file, a quota.
	actx := vfs.Ctx(alice.Cred)
	if err := c.SharedFS.WriteFile(actx, "/scratch/shared/data", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := c.SharedFS.Stat(actx, "/scratch/shared/data")
	if err != nil {
		t.Fatal(err)
	}
	out["file"] = fmt.Sprintf("%o %d %d", fi.Mode, fi.Owner, fi.Size)
	out["usage"] = c.SharedFS.Usage(alice.UID)

	// Scheduler: a mixed workload with one OOM job, drained fully.
	for i := 0; i < 4; i++ {
		u := alice
		if i%2 == 1 {
			u = bob
		}
		spec := sched.JobSpec{Name: fmt.Sprintf("j%d", i), Command: "x", Cores: 2, MemB: 1 << 20, Duration: int64(1 + i)}
		if i == 2 {
			spec.ActualMemB = 4 << 30 // beyond node memory: crash
		}
		if i == 3 {
			spec.GPUs = 1
		}
		if _, err := c.Sched.Submit(u.Cred, spec); err != nil {
			t.Fatal(err)
		}
	}
	out["ticks"] = c.RunAll(500)
	crashes, cofail := c.Sched.Crashes()
	out["crashes"] = fmt.Sprintf("%d/%d", crashes, cofail)
	out["util"] = c.Sched.Utilization()
	out["sacct"] = c.Sched.Sacct(ids.RootCred())

	// Network + UBF: same-user accept, cross-user verdict.
	h0, err := c.Host(c.Compute[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := c.Host(c.Compute[1].Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h0.Listen(alice.Cred, netsim.TCP, 9100); err != nil {
		t.Fatal(err)
	}
	_, sameErr := h1.Dial(alice.Cred, netsim.TCP, c.Compute[0].Name, 9100)
	_, crossErr := h1.Dial(bob.Cred, netsim.TCP, c.Compute[0].Name, 9100)
	out["dial"] = fmt.Sprintf("same=%v cross=%v", sameErr == nil, crossErr == nil)
	out["ubf"] = fmt.Sprintf("%d/%d", c.UBF.Allowed.Load(), c.UBF.Denied.Load())

	// Portal: login token text is part of the digest — the token
	// counter must rewind with everything else.
	tok, err := c.Portal.Login(alice.Cred, "pw-a")
	if err != nil {
		t.Fatal(err)
	}
	out["token"] = tok

	// Proc views: what bob's ps shows on the first login node.
	var procs []string
	for _, p := range c.Proc[c.Logins[0].Name].List(bob.Cred) {
		procs = append(procs, fmt.Sprintf("%d:%s", p.PID, p.Comm))
	}
	out["ps"] = procs

	// Escalation: support staff joins the whitelists.
	carol, err := c.AddSupportStaff("carol", "pw-c")
	if err != nil {
		t.Fatal(err)
	}
	_, seepidErr := c.Seepid.Elevate(carol.Cred)
	out["seepid"] = seepidErr == nil

	// Containers.
	c.Containers.ImportImage("img", map[string]string{"/bin/tool": "v1"})
	if _, err := c.Containers.Image("img"); err != nil {
		t.Fatal(err)
	}
	return out
}

// The whole-cluster Reset contract: after an aggressively dirtying
// trial, Reset returns the cluster to a state observationally
// equivalent to a freshly constructed one — the same script replays
// to the same digest, token strings, PIDs, UIDs and accounting
// included. This is the property the fleet pool stands on.
func TestClusterResetObservationalEquivalence(t *testing.T) {
	for _, prof := range Profiles() {
		t.Run(prof.Name, func(t *testing.T) {
			pooled := MustNewWithProfile(prof)
			_ = trialScript(t, pooled) // trial 1: dirty everything
			if err := pooled.Reset(); err != nil {
				t.Fatal(err)
			}
			got := trialScript(t, pooled) // trial 2 on the reset cluster

			want := trialScript(t, MustNewWithProfile(prof)) // fresh cluster
			if !reflect.DeepEqual(got, want) {
				t.Errorf("reset cluster diverged from fresh:\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// Reset must be repeatable across many rounds without drift — the
// campaign case (one cluster, many replications).
func TestClusterResetManyRounds(t *testing.T) {
	c := MustNewWithProfile(EnhancedProfile())
	var want map[string]interface{}
	for round := 0; round < 4; round++ {
		got := trialScript(t, c)
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d diverged:\n got: %v\nwant: %v", round, got, want)
		}
		if err := c.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

// A reset cluster's GPU devices must be invisible (enhanced) again
// even after a trial assigned them, and cleared of residue.
func TestClusterResetGPUState(t *testing.T) {
	c := MustNewWithProfile(EnhancedProfile())
	alice, err := c.AddUser("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Sched.Submit(alice.Cred, sched.JobSpec{Name: "g", Command: "x", Cores: 1, MemB: 1, GPUs: 1, Duration: 100})
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	jj, err := c.Sched.Job(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jj.State != sched.Running {
		t.Fatalf("gpu job did not start: %v", jj.State)
	}
	node := jj.Nodes[0]
	dev := c.GPUs.Devices(node)[0]
	if err := dev.Write(alice.Cred, 0, []byte("SECRET")); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := dev.Assigned(); got != ids.NoUID {
		t.Errorf("device still assigned to %d after Reset", got)
	}
	n, err := c.Node(node)
	if err != nil {
		t.Fatal(err)
	}
	if devs := n.VisibleDevs(alice.Cred); len(devs) != 0 {
		t.Errorf("devices %v still visible after Reset", devs)
	}
	// Root can read the memory: it must be zeroed.
	data, err := dev.Read(ids.RootCred(), 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "\x00\x00\x00\x00\x00\x00" {
		t.Errorf("device residue %q survived Reset", data)
	}
}
