package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/procfs"
	"repro/internal/sched"
	"repro/internal/vfs"
)

// legacyEnhanced is the PR-2-era Enhanced() literal, frozen here
// field for field. The registry-derived preset must reproduce it
// exactly — this is the guard against measure-registry drift.
func legacyEnhanced() Config {
	return Config{
		Name:              "enhanced",
		HidePID:           procfs.HidePIDInvis,
		SeepidEnabled:     true,
		PrivateData:       true,
		Policy:            sched.PolicyUserWholeNode,
		PamSlurm:          true,
		SmaskEnabled:      true,
		Smask:             vfs.DefaultSmask,
		ACLRestrict:       true,
		HardenedHomes:     true,
		ProtectedSymlinks: true,
		UBFEnabled:        true,
		UBFGroupPeers:     true,
		UBFCacheVerdicts:  true,
		PortalUserForward: true,
		GPUAssignPerms:    true,
		GPUClear:          true,
		ContainerRestrict: true,
	}
}

func TestEnhancedViaRegistryMatchesLegacyLiteral(t *testing.T) {
	got, want := Enhanced(), legacyEnhanced()
	if got != want {
		t.Fatalf("Enhanced() drifted from the legacy literal:\n%s",
			strings.Join(want.Diff(got), "\n"))
	}
	if diff := want.Diff(got); len(diff) != 0 {
		t.Errorf("Diff(legacy, Enhanced()) = %v, want empty", diff)
	}
}

func TestBaselineViaProfile(t *testing.T) {
	b := Baseline()
	want := Config{Name: "baseline", HidePID: procfs.HidePIDOff, Policy: sched.PolicyShared}
	if b != want {
		t.Errorf("Baseline() = %+v", b)
	}
	// Baseline → Enhanced is exactly the measures' field footprint.
	if n := len(b.Diff(Enhanced())); n == 0 {
		t.Errorf("baseline/enhanced diff empty")
	}
}

// TestWithoutThenWithMeasuresRoundTrip: for every registry measure,
// ablating it changes the config, and re-adding it restores the
// enhanced configuration exactly (modulo the derived name) — the
// registry's Apply functions cover disjoint field sets and lose no
// state.
func TestWithoutThenWithMeasuresRoundTrip(t *testing.T) {
	enhanced := Enhanced()
	for _, m := range Measures() {
		t.Run(m.Name, func(t *testing.T) {
			ablated, _, err := ResolveProfile(EnhancedProfile(), Without(m.Name))
			if err != nil {
				t.Fatal(err)
			}
			acfg, err := ablated.Config()
			if err != nil {
				t.Fatalf("ablated profile invalid: %v", err)
			}
			if wantName := "enhanced-no-" + m.Name; acfg.Name != wantName {
				t.Errorf("derived name %q, want %q", acfg.Name, wantName)
			}
			if len(enhanced.Diff(acfg)) == 0 {
				t.Errorf("ablating %s changed nothing", m.Name)
			}
			restored, _, err := ResolveProfile(EnhancedProfile(),
				Without(m.Name), WithMeasures(m), WithName("enhanced"))
			if err != nil {
				t.Fatal(err)
			}
			rcfg, err := restored.Config()
			if err != nil {
				t.Fatal(err)
			}
			if rcfg != enhanced {
				t.Errorf("round-trip lost state:\n%s", strings.Join(enhanced.Diff(rcfg), "\n"))
			}
		})
	}
}

// TestConfigDiffCoversEveryField flips each exported Config field (by
// reflection) and asserts Diff reports it — the explicit field list
// in Diff cannot silently fall behind the struct.
func TestConfigDiffCoversEveryField(t *testing.T) {
	base := Enhanced()
	tp := reflect.TypeOf(base)
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if f.Name == "Name" {
			continue // identity label, deliberately not a diff line
		}
		mutated := base
		v := reflect.ValueOf(&mutated).Elem().Field(i)
		switch v.Kind() {
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.Int:
			v.SetInt(v.Int() - 1)
		case reflect.Uint32:
			v.SetUint(v.Uint() + 1)
		default:
			t.Fatalf("field %s has kind %v — teach this test about it", f.Name, v.Kind())
		}
		diff := base.Diff(mutated)
		found := false
		for _, line := range diff {
			if strings.HasPrefix(line, f.Name+":") {
				found = true
			}
		}
		if !found {
			t.Errorf("flipping %s not reported by Diff (got %v)", f.Name, diff)
		}
	}
}

func TestDiffRendersSymbolicNames(t *testing.T) {
	d := Enhanced().Diff(Baseline())
	joined := strings.Join(d, "\n")
	for _, want := range []string{
		"HidePID: invisible -> off",
		"Policy: user-wholenode -> shared",
		"Smask: 0007 -> 0000",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("diff missing %q:\n%s", want, joined)
		}
	}
}

func TestValidateRejectsIncoherentConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		frag   string // must appear in the error
	}{
		{"seepid-without-hidepid", func(c *Config) { c.HidePID = procfs.HidePIDOff }, "seepid"},
		{"smask-bits-without-patch", func(c *Config) { c.SmaskEnabled = false }, "SmaskEnabled is false"},
		{"smask-patch-without-bits", func(c *Config) { c.Smask = 0 }, "zero mask"},
		{"hidepid-out-of-range", func(c *Config) { c.HidePID = 9 }, "out of range"},
		{"unknown-policy", func(c *Config) { c.Policy = 42 }, "policy"},
		{"unnamed", func(c *Config) { c.Name = "" }, "no Name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Enhanced()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.frag)
			}
			// New must refuse the same config.
			if _, err := New(cfg, smallTopo()); err == nil {
				t.Errorf("New accepted invalid config %s", tc.name)
			}
		})
	}
	if err := Enhanced().Validate(); err != nil {
		t.Errorf("Enhanced() invalid: %v", err)
	}
	if err := Baseline().Validate(); err != nil {
		t.Errorf("Baseline() invalid: %v", err)
	}
}

// TestNewRejectsDegenerateTopology: the latent footgun — New used to
// silently build a zero-node cluster from Topology{}.
func TestNewRejectsDegenerateTopology(t *testing.T) {
	if _, err := New(Enhanced(), Topology{}); err == nil ||
		!strings.Contains(err.Error(), "compute node") {
		t.Errorf("New(cfg, Topology{}) err = %v, want compute-node error", err)
	}
	bad := []Topology{
		{ComputeNodes: 4},                  // no cores
		{ComputeNodes: 4, CoresPerNode: 8}, // no memory
		{ComputeNodes: 4, CoresPerNode: 8, MemPerNode: 1, LoginNodes: -1},
		{ComputeNodes: 4, CoresPerNode: 8, MemPerNode: 1, GPUsPerNode: -2},
	}
	for _, topo := range bad {
		if _, err := New(Enhanced(), topo); err == nil {
			t.Errorf("New accepted degenerate topology %+v", topo)
		}
	}
	if err := smallTopo().Validate(); err != nil {
		t.Errorf("smallTopo invalid: %v", err)
	}
}

func TestNewWithProfileOptions(t *testing.T) {
	c, err := NewWithProfile(EnhancedProfile(),
		WithTopology(smallTopo()), Without("ubf"), WithName("quiet-net"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cfg.Name != "quiet-net" || c.Cfg.UBFEnabled || !c.Cfg.PrivateData {
		t.Errorf("cfg = %+v", c.Cfg)
	}
	if len(c.Compute) != smallTopo().ComputeNodes {
		t.Errorf("topology option ignored: %d compute nodes", len(c.Compute))
	}
	// Unknown measure name → descriptive error.
	if _, err := NewWithProfile(EnhancedProfile(), Without("selinux")); err == nil ||
		!strings.Contains(err.Error(), "selinux") {
		t.Errorf("Without(unknown) err = %v", err)
	}
	// Registry measure absent from the profile → error, not a no-op.
	if _, err := NewWithProfile(BaselineProfile(), Without("ubf")); err == nil ||
		!strings.Contains(err.Error(), "does not include") {
		t.Errorf("Without on baseline err = %v", err)
	}
	// Custom one-off measures compose (the E4-style policy sweep).
	shared := Measure{Name: "policy-shared", Apply: func(cfg *Config) {
		cfg.Policy = sched.PolicyShared
	}}
	c2, err := NewWithProfile(EnhancedProfile(),
		WithTopology(smallTopo()), WithMeasures(shared))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Cfg.Policy != sched.PolicyShared || !c2.Cfg.PamSlurm {
		t.Errorf("custom measure: %+v", c2.Cfg)
	}
	if c2.Cfg.Name != "enhanced+policy-shared" {
		t.Errorf("derived name %q", c2.Cfg.Name)
	}
}

func TestMeasureAndProfileLookups(t *testing.T) {
	if len(Measures()) != 9 {
		t.Errorf("registry has %d measures, want 9 (update DESIGN.md + E16 if deliberate)", len(Measures()))
	}
	m, err := MeasureByName("ubf")
	if err != nil || m.Section != "§IV-D" {
		t.Errorf("MeasureByName(ubf) = %+v, %v", m, err)
	}
	if _, err := MeasureByName("nope"); err == nil {
		t.Errorf("unknown measure resolved")
	}
	p, err := ProfileByName("enhanced")
	if err != nil || !p.Has("hidepid") || p.Has("nope") {
		t.Errorf("ProfileByName(enhanced) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("hardened"); err == nil {
		t.Errorf("unknown profile resolved")
	}
	// Every registry measure applied to the stock base must validate
	// on its own atop the base (measures are individually deployable).
	for _, m := range Measures() {
		cfg := stockBase()
		cfg.Name = "solo-" + m.Name
		m.Apply(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Errorf("measure %s alone is invalid: %v", m.Name, err)
		}
	}
}
