package core

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/simos"
	"repro/internal/vfs"
)

func smallTopo() Topology {
	return Topology{ComputeNodes: 4, LoginNodes: 2, CoresPerNode: 8, MemPerNode: 1 << 20, GPUsPerNode: 2}
}

func TestNewClusterWiring(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	if len(c.Compute) != 4 || len(c.Logins) != 2 {
		t.Fatalf("nodes: %d compute, %d login", len(c.Compute), len(c.Logins))
	}
	// Every node has a namespace, a /proc mount, a local FS and a
	// network host.
	for _, n := range append(append([]*simos.Node(nil), c.Compute...), c.Logins...) {
		if c.NS[n.Name] == nil || c.Proc[n.Name] == nil || c.LocalFS[n.Name] == nil {
			t.Errorf("node %s missing wiring", n.Name)
		}
		if _, err := c.Host(n.Name); err != nil {
			t.Errorf("node %s has no network host: %v", n.Name, err)
		}
	}
	// The portal host exists.
	if _, err := c.Host("portal"); err != nil {
		t.Errorf("portal host: %v", err)
	}
	if _, err := c.Node("ghost"); err == nil {
		t.Errorf("ghost node resolved")
	}
}

func TestAddUserProvisioning(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	u, err := c.AddUser("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	// Home exists, root-owned, private-group-owned (hardened).
	fi, err := c.SharedFS.Stat(vfs.Ctx(u.Cred), u.HomePath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Owner != ids.Root || fi.Group != u.Primary || fi.Mode != 0o770 {
		t.Errorf("hardened home: owner=%d group=%d mode=%o", fi.Owner, fi.Group, fi.Mode)
	}
	// Portal login works.
	if _, err := c.Portal.Login(u.Cred, "pw"); err != nil {
		t.Errorf("portal login: %v", err)
	}
	// Duplicate user rejected.
	if _, err := c.AddUser("alice", "pw"); !errors.Is(err, ids.ErrExists) {
		t.Errorf("dup user err = %v", err)
	}
}

func TestBaselineHomeIsWorldSearchable(t *testing.T) {
	c := MustNew(Baseline(), smallTopo())
	u, err := c.AddUser("alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := c.SharedFS.Stat(vfs.Ctx(u.Cred), u.HomePath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Owner != u.UID || fi.Mode != 0o755 {
		t.Errorf("baseline home: owner=%d mode=%o, want user-owned 755", fi.Owner, fi.Mode)
	}
	// The baseline user CAN chmod their own home (that is the hazard).
	if err := c.SharedFS.Chmod(vfs.Ctx(u.Cred), u.HomePath, 0o777); err != nil {
		t.Errorf("baseline self-chmod: %v", err)
	}
}

func TestAddProjectGroupProvisioning(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	lead, _ := c.AddUser("lead", "pw")
	member, _ := c.AddUser("member", "pw")
	g, err := c.AddProjectGroup("fusion", lead.UID, member.UID)
	if err != nil {
		t.Fatal(err)
	}
	// Group membership takes effect at next login.
	if err := c.Refresh(lead); err != nil {
		t.Fatal(err)
	}
	if err := c.Refresh(member); err != nil {
		t.Fatal(err)
	}
	// Shared dir exists with setgid + group ownership.
	fi, err := c.SharedFS.Stat(vfs.Ctx(lead.Cred), "/proj/fusion")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Group != g.GID || fi.Mode&vfs.ModeSetgid == 0 {
		t.Errorf("project dir group=%d mode=%o", fi.Group, fi.Mode)
	}
	// Members can collaborate there.
	if err := c.SharedFS.WriteFile(vfs.Ctx(lead.Cred), "/proj/fusion/plan.md", []byte("x"), 0o660); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SharedFS.ReadFile(vfs.Ctx(member.Cred), "/proj/fusion/plan.md"); err != nil {
		t.Errorf("member read: %v", err)
	}
	// Strangers cannot.
	stranger, _ := c.AddUser("stranger", "pw")
	if _, err := c.SharedFS.ReadFile(vfs.Ctx(stranger.Cred), "/proj/fusion/plan.md"); !errors.Is(err, vfs.ErrPermission) {
		t.Errorf("stranger read err = %v", err)
	}
}

func TestSupportStaffTooling(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	user, _ := c.AddUser("alice", "pw")
	staff, err := c.AddSupportStaff("facilitator", "pw")
	if err != nil {
		t.Fatal(err)
	}
	// Victim process on a login node.
	login := c.Logins[0]
	login.Procs.Spawn(user.Cred, 1, "job.sh", "--data=/secret")
	view := c.Proc[login.Name]
	// Before seepid, staff are bound by hidepid like everyone else —
	// support-group membership alone grants nothing.
	for _, p := range view.List(staff.Cred) {
		if p.Cred.UID == user.UID {
			t.Errorf("staff saw foreign pid %d before seepid", p.PID)
		}
	}
	elevated, err := c.Seepid.Elevate(staff.Cred)
	if err != nil {
		t.Fatalf("seepid elevate: %v", err)
	}
	found := false
	for _, p := range view.List(elevated) {
		if p.Cred.UID == user.UID {
			found = true
		}
	}
	if !found {
		t.Errorf("elevated staff cannot see user processes")
	}
	// Ordinary users cannot elevate.
	if _, err := c.Seepid.Elevate(user.Cred); err == nil {
		t.Errorf("ordinary user elevated via seepid")
	}
	// smask_relax: staff publishes a dataset world-readable.
	relaxed, err := c.SmaskRelax.Enter(vfs.Ctx(staff.Cred))
	if err != nil {
		t.Fatalf("smask_relax enter: %v", err)
	}
	rootCtx := vfs.Context{Cred: ids.RootCred()}
	if err := c.SharedFS.MkdirAll(rootCtx, "/proj/datasets", 0o755); err != nil {
		t.Fatal(err)
	}
	// The dataset area is maintained by support staff.
	if err := c.SharedFS.Chown(rootCtx, "/proj/datasets", staff.UID, ids.NoGID); err != nil {
		t.Fatal(err)
	}
	if err := c.SharedFS.WriteFile(relaxed, "/proj/datasets/imagenet.idx", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SharedFS.ReadFile(vfs.Ctx(user.Cred), "/proj/datasets/imagenet.idx"); err != nil {
		t.Errorf("published dataset unreadable: %v", err)
	}
}

func TestClusterStepAdvancesClock(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	u, _ := c.AddUser("alice", "pw")
	j, err := c.Sched.Submit(u.Cred, sched.JobSpec{Name: "j", Command: "x", Cores: 1, MemB: 1, Duration: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := c.clock.Load()
	c.Step()
	if c.clock.Load() != before+1 {
		t.Errorf("clock did not advance")
	}
	c.RunAll(10)
	got, _ := c.Sched.Job(j.ID)
	if got.State != sched.Completed {
		t.Errorf("job state %v", got.State)
	}
}

func TestEnhancedEndToEndJobWithNetwork(t *testing.T) {
	// An MPI-ish flow through the fully wired enhanced cluster: same
	// user traffic between job nodes is admitted by the UBF.
	c := MustNew(Enhanced(), smallTopo())
	u, _ := c.AddUser("alice", "pw")
	j, err := c.Sched.Submit(u.Cred, sched.JobSpec{Name: "mpi", Command: "xhpl", Cores: 16, MemB: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	job, _ := c.Sched.Job(j.ID)
	if job.State != sched.Running || len(job.Nodes) < 2 {
		t.Fatalf("job %v on %v", job.State, job.Nodes)
	}
	h0, _ := c.Host(job.Nodes[0])
	h1, _ := c.Host(job.Nodes[1])
	if _, err := h0.Listen(u.Cred, netsim.TCP, 11000); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(u.Cred, netsim.TCP, job.Nodes[0], 11000); err != nil {
		t.Errorf("same-user rank dial through UBF: %v", err)
	}
}

func TestConfigPresets(t *testing.T) {
	b, e := Baseline(), Enhanced()
	if b.Name != "baseline" || e.Name != "enhanced" {
		t.Errorf("names %q %q", b.Name, e.Name)
	}
	if b.UBFEnabled || b.PrivateData || b.SmaskEnabled || b.PamSlurm || b.HardenedHomes {
		t.Errorf("baseline has hardening on: %+v", b)
	}
	if !e.UBFEnabled || !e.PrivateData || !e.SmaskEnabled || !e.PamSlurm || !e.GPUClear {
		t.Errorf("enhanced missing hardening: %+v", e)
	}
	topo := DefaultTopology()
	if topo.ComputeNodes == 0 || topo.CoresPerNode == 0 {
		t.Errorf("bad default topo: %+v", topo)
	}
}

func TestLoginShellAndErrors(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	u, _ := c.AddUser("alice", "pw")
	// Login nodes admit anyone (no pam_slurm there).
	sh, err := c.LoginShell(c.Logins[0].Name, u.Cred)
	if err != nil || sh.Comm != "bash" {
		t.Fatalf("login-node shell: %v %v", sh, err)
	}
	// Compute nodes deny without a job.
	if _, err := c.LoginShell(c.Compute[0].Name, u.Cred); err == nil {
		t.Errorf("jobless compute login succeeded")
	}
	// Unknown node.
	if _, err := c.LoginShell("ghost", u.Cred); err == nil {
		t.Errorf("ghost node login succeeded")
	}
}

func TestAddProjectGroupErrors(t *testing.T) {
	c := MustNew(Enhanced(), smallTopo())
	lead, _ := c.AddUser("lead", "pw")
	if _, err := c.AddProjectGroup("p1", lead.UID, 99999); err == nil {
		t.Errorf("bogus member accepted")
	}
	if _, err := c.AddProjectGroup("p2", lead.UID); err != nil {
		t.Fatal(err)
	}
	// Duplicate group name fails.
	if _, err := c.AddProjectGroup("p2", lead.UID); err == nil {
		t.Errorf("duplicate project group accepted")
	}
}
