package core

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/sched"
)

// scanTopo gives the scan room for the victim's eternal job plus GPU
// jobs on both sides.
func scanTopo() Topology {
	return Topology{ComputeNodes: 4, LoginNodes: 2, CoresPerNode: 8, MemPerNode: 1 << 20, GPUsPerNode: 2}
}

func resultsByName(rep *audit.Report) map[string]audit.Result {
	out := make(map[string]audit.Result, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Probe.Name] = r
	}
	return out
}

func TestLeakScanBaselineLeaksEverywhere(t *testing.T) {
	// The paper's "before" picture: every channel in §IV is open on a
	// stock system.
	c := MustNew(Baseline(), scanTopo())
	rep, err := LeakScan(c)
	if err != nil {
		t.Fatal(err)
	}
	unexpected, residual := rep.Leaks()
	if residual != 3 {
		t.Errorf("baseline residual leaks = %d, want 3", residual)
	}
	if unexpected == 0 {
		t.Fatalf("baseline shows no leaks at all?\n%s", rep.Table().Render())
	}
	byName := resultsByName(rep)
	for _, name := range []string{
		"ps-foreign-visible", "cmdline-secret-read",
		"squeue-foreign-job", "ssh-roam-to-victim-node",
		"home-file-read", "chmod-world-readable", "acl-grant-to-stranger",
		"tmp-content-read", "tmp-symlink-planting", "cross-user-dial", "rdma-tcp-cm-qp",
		"portal-cross-user-forward", "gpu-memory-residue",
		"container-home-read",
	} {
		r, ok := byName[name]
		if !ok {
			t.Errorf("probe %q missing", name)
			continue
		}
		if !r.Leaked {
			t.Errorf("baseline: probe %q unexpectedly closed (%s)", name, r.Detail)
		}
	}
}

func TestLeakScanEnhancedClosesAllButResidual(t *testing.T) {
	// The paper's headline result (§V): under the enhanced
	// configuration every cross-user channel is closed except the
	// three acknowledged residuals.
	c := MustNew(Enhanced(), scanTopo())
	rep, err := LeakScan(c)
	if err != nil {
		t.Fatal(err)
	}
	unexpected, residual := rep.Leaks()
	if unexpected != 0 {
		t.Fatalf("enhanced: %d unexpected leaks:\n%s", unexpected, rep.Table().Render())
	}
	if residual != 3 {
		t.Errorf("enhanced residual channels = %d, want exactly 3 (tmp names, abstract sockets, native-CM RDMA)", residual)
	}
	byName := resultsByName(rep)
	for _, name := range []string{"tmp-filename-listing", "abstract-socket-send", "rdma-native-cm-qp"} {
		r := byName[name]
		if !r.Leaked || !r.Probe.Residual {
			t.Errorf("residual probe %q: leaked=%v residual=%v (%s)", name, r.Leaked, r.Probe.Residual, r.Detail)
		}
	}
}

func TestLeakScanProbeCountStable(t *testing.T) {
	c := MustNew(Enhanced(), scanTopo())
	rep, err := LeakScan(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 17 {
		t.Errorf("probe count = %d, want 17 (update DESIGN.md if you add probes)", len(rep.Results))
	}
}

func TestLeakScanAblations(t *testing.T) {
	// Dropping exactly one measure (or one field of one) must re-open
	// exactly the channels it guards — the per-measure attribution of
	// §IV. Measure-granular ablations go through the registry
	// (Without); finer-than-a-measure variants mutate a single field
	// and must still pass Validate.
	cases := []struct {
		name     string
		ablate   []string      // measures dropped via Without
		mutate   func(*Config) // finer-grained coherent field flips
		reopened []string
	}{
		{name: "no-hidepid", ablate: []string{"hidepid"},
			reopened: []string{"ps-foreign-visible", "cmdline-secret-read"}},
		{name: "no-privatedata", ablate: []string{"privatedata"},
			reopened: []string{"squeue-foreign-job"}},
		{name: "no-pam", mutate: func(cfg *Config) { cfg.PamSlurm = false },
			reopened: []string{"ssh-roam-to-victim-node"}},
		// Dropping the smask patch alone (ACLs + hardened homes stay)
		// reopens only the world-bit paths...
		{name: "no-smask-patch", mutate: func(cfg *Config) {
			cfg.SmaskEnabled = false
			cfg.Smask = 0
		}, reopened: []string{"chmod-world-readable", "tmp-content-read"}},
		// ...while ablating the whole §IV-C measure also reopens the
		// home and stranger-ACL paths its other halves guard — and,
		// because containers pass the host filesystem through (§IV-G),
		// the same home read succeeds from inside a container.
		{name: "no-smask-measure", ablate: []string{"smask"},
			reopened: []string{"chmod-world-readable", "tmp-content-read",
				"home-file-read", "acl-grant-to-stranger", "container-home-read"}},
		{name: "no-ubf", ablate: []string{"ubf"},
			reopened: []string{"cross-user-dial", "rdma-tcp-cm-qp", "portal-cross-user-forward"}},
		// Without the identity-preserving portal measure the gateway
		// forwards as the route owner, so the UBF waves the hop
		// through for ANY authenticated portal user.
		{name: "no-portal", ablate: []string{"portal"},
			reopened: []string{"portal-cross-user-forward"}},
		// The GPU ablation also drops to the shared policy: under
		// user-wholenode the attacker never colocates with the
		// victim's GPU, so whole-node scheduling masks the missing
		// epilog clear — defense in depth working as the paper says.
		{name: "no-gpu-clear", mutate: func(cfg *Config) {
			cfg.GPUClear = false
			cfg.GPUAssignPerms = false
			cfg.Policy = sched.PolicyShared
		}, reopened: []string{"gpu-memory-residue"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := []Option{WithName(tc.name)}
			for _, m := range tc.ablate {
				opts = append(opts, Without(m))
			}
			resolved, _, err := ResolveProfile(EnhancedProfile(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := resolved.Config()
			if err != nil {
				t.Fatal(err)
			}
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			c, err := New(cfg, scanTopo())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := LeakScan(c)
			if err != nil {
				t.Fatal(err)
			}
			byName := resultsByName(rep)
			for _, probe := range tc.reopened {
				if !byName[probe].Leaked {
					t.Errorf("%s: probe %q should have re-opened (%s)", tc.name, probe, byName[probe].Detail)
				}
			}
			// And nothing else beyond the expected set + residuals.
			expected := map[string]bool{}
			for _, p := range tc.reopened {
				expected[p] = true
			}
			for _, r := range rep.Results {
				if r.Leaked && !r.Probe.Residual && !expected[r.Probe.Name] {
					t.Errorf("%s: unexpected extra leak %q (%s)", tc.name, r.Probe.Name, r.Detail)
				}
			}
		})
	}
}
