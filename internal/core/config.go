// Package core assembles the complete simulated HPC system and
// implements the paper's primary contribution: the *enhanced user
// separation* configuration — the coordinated set of measures across
// processes, scheduler, filesystems, network, web portal,
// accelerators and containers that makes "every user feel like they
// are running on a personal HPC" (paper abstract).
//
// The package exposes two presets:
//
//   - Baseline():  a stock multi-tenant Linux HPC system with default
//     (permissive) settings — the "before" the paper argues against;
//   - Enhanced():  the paper's deployed configuration — hidepid=2 with
//     a support exemption, Slurm PrivateData + user-based whole-node
//     scheduling + pam_slurm, user-private groups + root-owned homes +
//     the smask kernel patch + ACL restriction, the User-Based
//     Firewall, authenticated portal forwarding, GPU device
//     assignment + epilog clearing, and restricted encapsulation
//     containers.
//
// Every measure is individually toggleable so experiments can ablate
// them (see bench_test.go and cmd/benchharness).
package core

import (
	"repro/internal/procfs"
	"repro/internal/sched"
	"repro/internal/vfs"
)

// Config is the full separation configuration of a cluster.
type Config struct {
	Name string

	// Processes (§IV-A).
	HidePID       procfs.HidePID
	SeepidEnabled bool // support staff may elevate into the exempt gid

	// Scheduler (§IV-B).
	PrivateData bool
	Policy      sched.SharingPolicy
	PamSlurm    bool

	// Filesystems (§IV-C).
	SmaskEnabled bool
	Smask        uint32
	ACLRestrict  bool
	// HardenedHomes creates home directories root-owned and
	// group-owned by the user-private group (mode 0770), so users
	// cannot open their own top-level home to the world. Baseline
	// systems create user-owned, world-searchable 0755 homes.
	HardenedHomes bool
	// ProtectedSymlinks enables the fs.protected_symlinks sysctl
	// semantics in world-writable sticky directories.
	ProtectedSymlinks bool

	// Network (§IV-D).
	UBFEnabled       bool
	UBFGroupPeers    bool
	UBFCacheVerdicts bool

	// Accelerators (§IV-F).
	GPUAssignPerms bool
	GPUClear       bool

	// Containers (§IV-G).
	ContainerRestrict bool
}

// Baseline returns the stock configuration of a conventional
// multi-tenant HPC system: everything visible, everything shared.
func Baseline() Config {
	return Config{
		Name:    "baseline",
		HidePID: procfs.HidePIDOff,
		Policy:  sched.PolicyShared,
	}
}

// Enhanced returns the paper's deployed configuration.
func Enhanced() Config {
	return Config{
		Name:              "enhanced",
		HidePID:           procfs.HidePIDInvis,
		SeepidEnabled:     true,
		PrivateData:       true,
		Policy:            sched.PolicyUserWholeNode,
		PamSlurm:          true,
		SmaskEnabled:      true,
		Smask:             vfs.DefaultSmask,
		ACLRestrict:       true,
		HardenedHomes:     true,
		ProtectedSymlinks: true,
		UBFEnabled:        true,
		UBFGroupPeers:     true,
		UBFCacheVerdicts:  true,
		GPUAssignPerms:    true,
		GPUClear:          true,
		ContainerRestrict: true,
	}
}

// Topology describes cluster geometry.
type Topology struct {
	ComputeNodes int
	LoginNodes   int
	CoresPerNode int
	MemPerNode   int64
	GPUsPerNode  int
}

// DefaultTopology is a small but representative cluster: 8 compute
// nodes with 16 cores and 2 GPUs each, plus 2 login nodes.
func DefaultTopology() Topology {
	return Topology{
		ComputeNodes: 8,
		LoginNodes:   2,
		CoresPerNode: 16,
		MemPerNode:   64 << 30,
		GPUsPerNode:  2,
	}
}
