// Package core assembles the complete simulated HPC system and
// implements the paper's primary contribution: the *enhanced user
// separation* configuration — the coordinated set of measures across
// processes, scheduler, filesystems, network, web portal,
// accelerators and containers that makes "every user feel like they
// are running on a personal HPC" (paper abstract).
//
// The measures are first-class values. Each §IV measure is a
// core.Measure in a package registry (Measures, MeasureByName): a
// name, the paper section it comes from, the Config mutation it
// applies, and a validation hook that rejects configurations which
// half-apply it. A Profile is a base Config plus an ordered measure
// set; the two presets are profiles of the same stock base:
//
//   - Baseline()  = BaselineProfile(): no measures — the stock
//     multi-tenant Linux HPC system the paper argues against;
//   - Enhanced()  = EnhancedProfile(): the full registry — hidepid=2
//     with the seepid exemption, Slurm PrivateData + user-based
//     whole-node scheduling + pam_slurm, smask + ACL restriction +
//     hardened homes, protected symlinks, the User-Based Firewall,
//     identity-preserving portal forwarding, GPU device binding +
//     epilog clearing, and restricted encapsulation containers.
//
// Clusters are built with New(cfg, topo) or, for composed and
// ablated variants, NewWithProfile(profile, opts...) with the
// functional options WithTopology, WithMeasures, Without and
// WithName. Every construction path runs Config.Validate, so
// incoherent states (a seepid exemption with hidepid off, smask bits
// without the smask patch) fail loudly. Config.Diff labels what
// changed between two configurations — the ablation sweep in
// internal/experiments (E16) is built on exactly these pieces.
package core

import (
	"fmt"

	"repro/internal/procfs"
	"repro/internal/sched"
)

// Config is the full separation configuration of a cluster. Prefer
// deriving one from a Profile (which validates) over hand-editing
// fields; direct field mutation remains supported for experiment
// sweeps, and New validates the result either way.
type Config struct {
	Name string

	// Processes (§IV-A).
	HidePID       procfs.HidePID
	SeepidEnabled bool // support staff may elevate into the exempt gid

	// Scheduler (§IV-B).
	PrivateData bool
	Policy      sched.SharingPolicy
	PamSlurm    bool

	// Filesystems (§IV-C).
	SmaskEnabled bool
	Smask        uint32
	ACLRestrict  bool
	// HardenedHomes creates home directories root-owned and
	// group-owned by the user-private group (mode 0770), so users
	// cannot open their own top-level home to the world. Baseline
	// systems create user-owned, world-searchable 0755 homes.
	HardenedHomes bool
	// ProtectedSymlinks enables the fs.protected_symlinks sysctl
	// semantics in world-writable sticky directories.
	ProtectedSymlinks bool

	// Network (§IV-D).
	UBFEnabled       bool
	UBFGroupPeers    bool
	UBFCacheVerdicts bool

	// Portal (§IV-E). PortalUserForward makes the gateway dial each
	// forwarded hop as the AUTHENTICATED user, so the UBF verdict on
	// the compute node is the end user's own. Off, the portal behaves
	// like a pre-portal ad-hoc tunnel: hops run as the route owner,
	// and any portal user reaches any registered app.
	PortalUserForward bool

	// Accelerators (§IV-F).
	GPUAssignPerms bool
	GPUClear       bool

	// Containers (§IV-G).
	ContainerRestrict bool
}

// Validate rejects incoherent configurations: intrinsic range checks
// first, then every registered measure's validation hook (each hook
// owns the cross-field rules for its slice of the Config, e.g. the
// hidepid measure vetoes a seepid exemption with hidepid off).
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("config has no Name (profiles name their configs; literals must too)")
	}
	if c.HidePID < procfs.HidePIDOff || c.HidePID > procfs.HidePIDInvis {
		return fmt.Errorf("HidePID %d out of range [0,2]", int(c.HidePID))
	}
	switch c.Policy {
	case sched.PolicyShared, sched.PolicyExclusive, sched.PolicyUserWholeNode:
	default:
		return fmt.Errorf("unknown scheduling policy %d", int(c.Policy))
	}
	for _, m := range Measures() {
		if m.Validate == nil {
			continue
		}
		if err := m.Validate(c); err != nil {
			return fmt.Errorf("measure %s (%s): %w", m.Name, m.Section, err)
		}
	}
	return nil
}

// Diff returns one human-readable line per field (Name excluded)
// where c and other disagree, in struct order: "Policy: shared ->
// user-wholenode". The labels are what the ablation tables and
// -ablate CLI output print; TestConfigDiffCoversEveryField guards
// the field list against drift.
func (c Config) Diff(other Config) []string {
	var d []string
	add := func(field string, a, b any) {
		if a != b {
			d = append(d, fmt.Sprintf("%s: %v -> %v", field, a, b))
		}
	}
	add("HidePID", c.HidePID, other.HidePID)
	add("SeepidEnabled", c.SeepidEnabled, other.SeepidEnabled)
	add("PrivateData", c.PrivateData, other.PrivateData)
	add("Policy", c.Policy, other.Policy)
	add("PamSlurm", c.PamSlurm, other.PamSlurm)
	add("SmaskEnabled", c.SmaskEnabled, other.SmaskEnabled)
	if c.Smask != other.Smask {
		d = append(d, fmt.Sprintf("Smask: %04o -> %04o", c.Smask, other.Smask))
	}
	add("ACLRestrict", c.ACLRestrict, other.ACLRestrict)
	add("HardenedHomes", c.HardenedHomes, other.HardenedHomes)
	add("ProtectedSymlinks", c.ProtectedSymlinks, other.ProtectedSymlinks)
	add("UBFEnabled", c.UBFEnabled, other.UBFEnabled)
	add("UBFGroupPeers", c.UBFGroupPeers, other.UBFGroupPeers)
	add("UBFCacheVerdicts", c.UBFCacheVerdicts, other.UBFCacheVerdicts)
	add("PortalUserForward", c.PortalUserForward, other.PortalUserForward)
	add("GPUAssignPerms", c.GPUAssignPerms, other.GPUAssignPerms)
	add("GPUClear", c.GPUClear, other.GPUClear)
	add("ContainerRestrict", c.ContainerRestrict, other.ContainerRestrict)
	return d
}

// Baseline returns the stock configuration of a conventional
// multi-tenant HPC system: everything visible, everything shared.
// It is BaselineProfile() derived — the preset and the profile
// cannot drift apart.
func Baseline() Config {
	return BaselineProfile().MustConfig()
}

// Enhanced returns the paper's deployed configuration: the stock
// base plus every measure in the §IV registry (EnhancedProfile()).
func Enhanced() Config {
	return EnhancedProfile().MustConfig()
}

// Topology describes cluster geometry. The JSON tags are the wire
// form fleet scenario files use.
type Topology struct {
	ComputeNodes int   `json:"compute_nodes"`
	LoginNodes   int   `json:"login_nodes"`
	CoresPerNode int   `json:"cores_per_node"`
	MemPerNode   int64 `json:"mem_per_node"`
	GPUsPerNode  int   `json:"gpus_per_node"`
}

// Validate rejects degenerate geometries; New refuses to build a
// cluster from them.
func (t Topology) Validate() error {
	if t.ComputeNodes < 1 {
		return fmt.Errorf("topology needs at least 1 compute node (got %d)", t.ComputeNodes)
	}
	if t.CoresPerNode < 1 {
		return fmt.Errorf("topology needs at least 1 core per node (got %d)", t.CoresPerNode)
	}
	if t.MemPerNode < 1 {
		return fmt.Errorf("topology needs positive memory per node (got %d)", t.MemPerNode)
	}
	if t.LoginNodes < 0 {
		return fmt.Errorf("negative login node count %d", t.LoginNodes)
	}
	if t.GPUsPerNode < 0 {
		return fmt.Errorf("negative GPU count %d", t.GPUsPerNode)
	}
	return nil
}

// DefaultTopology is a small but representative cluster: 8 compute
// nodes with 16 cores and 2 GPUs each, plus 2 login nodes.
func DefaultTopology() Topology {
	return Topology{
		ComputeNodes: 8,
		LoginNodes:   2,
		CoresPerNode: 16,
		MemPerNode:   64 << 30,
		GPUsPerNode:  2,
	}
}
