package simos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func testCred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

func TestSpawnAssignsSequentialPIDs(t *testing.T) {
	tb := NewTable(nil)
	p1 := tb.Spawn(testCred(1000), 0, "a.out")
	p2 := tb.Spawn(testCred(1000), p1.PID, "b.out", "--flag")
	if p2.PID <= p1.PID {
		t.Errorf("PIDs not increasing: %d then %d", p1.PID, p2.PID)
	}
	if p2.PPID != p1.PID {
		t.Errorf("PPID = %d, want %d", p2.PPID, p1.PID)
	}
	if got := p2.Cmdline; len(got) != 2 || got[1] != "--flag" {
		t.Errorf("Cmdline = %v", got)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	tb := NewTable(nil)
	p := tb.Spawn(testCred(1000), 0, "a.out", "secret-token")
	got, err := tb.Get(p.PID)
	if err != nil {
		t.Fatal(err)
	}
	got.Cmdline[1] = "tampered"
	again, _ := tb.Get(p.PID)
	if again.Cmdline[1] != "secret-token" {
		t.Errorf("Get leaked internal state: %v", again.Cmdline)
	}
}

func TestKillPermissions(t *testing.T) {
	tb := NewTable(nil)
	victim := tb.Spawn(testCred(1000), 0, "target")
	if err := tb.Kill(testCred(2000), victim.PID); !errors.Is(err, ErrPermission) {
		t.Errorf("cross-user kill err = %v, want ErrPermission", err)
	}
	if err := tb.Kill(testCred(1000), victim.PID); err != nil {
		t.Errorf("self kill: %v", err)
	}
	victim2 := tb.Spawn(testCred(1000), 0, "target2")
	if err := tb.Kill(ids.RootCred(), victim2.PID); err != nil {
		t.Errorf("root kill: %v", err)
	}
}

func TestKillJobAndKillUser(t *testing.T) {
	tb := NewTable(nil)
	for i := 0; i < 5; i++ {
		p := tb.Spawn(testCred(1000), 0, "rank")
		if err := tb.SetJob(p.PID, 42); err != nil {
			t.Fatal(err)
		}
	}
	other := tb.Spawn(testCred(1000), 0, "shell") // no job
	if n := tb.KillJob(42); n != 5 {
		t.Errorf("KillJob killed %d, want 5", n)
	}
	if _, err := tb.Get(other.PID); err != nil {
		t.Errorf("KillJob killed a non-member: %v", err)
	}
	if n := tb.KillUser(1000); n != 1 {
		t.Errorf("KillUser killed %d, want 1", n)
	}
}

func TestKillJobZeroIsNoop(t *testing.T) {
	tb := NewTable(nil)
	tb.Spawn(testCred(1000), 0, "shell")
	if n := tb.KillJob(0); n != 0 {
		t.Errorf("KillJob(0) killed %d daemon-less procs, want 0", n)
	}
}

func TestByUserFiltersAndSorts(t *testing.T) {
	tb := NewTable(nil)
	tb.Spawn(testCred(1000), 0, "a")
	tb.Spawn(testCred(2000), 0, "b")
	tb.Spawn(testCred(1000), 0, "c")
	got := tb.ByUser(1000)
	if len(got) != 2 {
		t.Fatalf("ByUser len = %d, want 2", len(got))
	}
	if got[0].PID >= got[1].PID {
		t.Errorf("ByUser not sorted")
	}
}

func TestTotalRSSAndOOM(t *testing.T) {
	n := NewNode("c1", Compute, 8, 1000, nil)
	p := n.Procs.Spawn(testCred(1000), 0, "hog")
	if err := n.Procs.SetRSS(p.PID, 900); err != nil {
		t.Fatal(err)
	}
	if crashed, _ := n.CheckOOM(); crashed {
		t.Fatalf("node crashed below capacity")
	}
	if err := n.Procs.SetRSS(p.PID, 1100); err != nil {
		t.Fatal(err)
	}
	crashed, killed := n.CheckOOM()
	if !crashed {
		t.Fatalf("node did not crash above capacity")
	}
	if killed == 0 {
		t.Errorf("crash killed nothing")
	}
	if !n.Down() {
		t.Errorf("node not marked down")
	}
	if _, err := n.Login(testCred(1000)); !errors.Is(err, ErrNodeDown) {
		t.Errorf("login to down node err = %v", err)
	}
	n.Restore()
	if n.Down() {
		t.Errorf("Restore left node down")
	}
	if _, err := n.Login(testCred(1000)); err != nil {
		t.Errorf("login after restore: %v", err)
	}
}

func TestNodeStartsWithDaemons(t *testing.T) {
	n := NewNode("login1", Login, 16, 1<<30, nil)
	all := n.Procs.All()
	if len(all) != 3 {
		t.Fatalf("fresh node has %d procs, want 3 daemons", len(all))
	}
	for _, p := range all {
		if !p.Daemon || !p.Cred.IsRoot() {
			t.Errorf("daemon %s not root-owned daemon", p.Comm)
		}
	}
}

func TestPAMStackDeniesAndAllows(t *testing.T) {
	n := NewNode("c1", Compute, 8, 1<<30, nil)
	denyAll := func(_ *Node, uid ids.UID) error {
		if uid != 1000 {
			return fmt.Errorf("uid %d has no job here", uid)
		}
		return nil
	}
	n.AddPAMHook(denyAll)
	if _, err := n.Login(testCred(2000)); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("denied login err = %v, want ErrAccessDenied", err)
	}
	sh, err := n.Login(testCred(1000))
	if err != nil {
		t.Fatalf("allowed login: %v", err)
	}
	if sh.Comm != "bash" {
		t.Errorf("login spawned %q", sh.Comm)
	}
	n.ClearPAMHooks()
	if _, err := n.Login(testCred(2000)); err != nil {
		t.Errorf("login after ClearPAMHooks: %v", err)
	}
}

func TestDevPermissions(t *testing.T) {
	n := NewNode("g1", Compute, 8, 1<<30, nil)
	n.AddDev("/dev/nvidia0", ids.Root, ids.RootGroup, 0o000)
	alice := testCred(1000)
	// Unassigned GPU: invisible to users.
	if got := n.VisibleDevs(alice); len(got) != 0 {
		t.Errorf("unassigned GPU visible: %v", got)
	}
	// Root always opens.
	if _, err := n.OpenDev(ids.RootCred(), "/dev/nvidia0"); err != nil {
		t.Errorf("root open: %v", err)
	}
	// Assign to alice's private group.
	if err := n.ChownDev(ids.RootCred(), "/dev/nvidia0", ids.Root, alice.EGID, 0o660); err != nil {
		t.Fatal(err)
	}
	if _, err := n.OpenDev(alice, "/dev/nvidia0"); err != nil {
		t.Errorf("assigned user open: %v", err)
	}
	bob := testCred(2000)
	if _, err := n.OpenDev(bob, "/dev/nvidia0"); !errors.Is(err, ErrPermission) {
		t.Errorf("stranger open err = %v, want ErrPermission", err)
	}
	// Non-root cannot chown.
	if err := n.ChownDev(bob, "/dev/nvidia0", bob.UID, bob.EGID, 0o666); !errors.Is(err, ErrPermission) {
		t.Errorf("non-root chown err = %v, want ErrPermission", err)
	}
	// Owner permission beats group: owner with 0600.
	n.AddDev("/dev/nvidia1", 2000, 999, 0o600)
	if _, err := n.OpenDev(bob, "/dev/nvidia1"); err != nil {
		t.Errorf("owner open: %v", err)
	}
}

func TestOpenDevMissing(t *testing.T) {
	n := NewNode("c1", Compute, 1, 1, nil)
	if _, err := n.OpenDev(ids.RootCred(), "/dev/none"); !errors.Is(err, ErrNoSuchDev) {
		t.Errorf("err = %v, want ErrNoSuchDev", err)
	}
	if err := n.ChownDev(ids.RootCred(), "/dev/none", 0, 0, 0); !errors.Is(err, ErrNoSuchDev) {
		t.Errorf("chown err = %v, want ErrNoSuchDev", err)
	}
}

func TestConcurrentSpawnUniquePIDs(t *testing.T) {
	tb := NewTable(nil)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	pids := make(chan ids.PID, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(uid ids.UID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				pids <- tb.Spawn(testCred(uid), 0, "w").PID
			}
		}(ids.UID(1000 + w))
	}
	wg.Wait()
	close(pids)
	seen := make(map[ids.PID]bool)
	for pid := range pids {
		if seen[pid] {
			t.Fatalf("duplicate PID %d", pid)
		}
		seen[pid] = true
	}
	if tb.Len() != workers*per {
		t.Errorf("table len = %d, want %d", tb.Len(), workers*per)
	}
}

// Property: after any sequence of spawns and kills, All() is sorted by
// PID and contains no dead processes.
func TestQuickTableConsistency(t *testing.T) {
	f := func(ops []bool) bool {
		tb := NewTable(nil)
		var live []ids.PID
		for _, spawn := range ops {
			if spawn || len(live) == 0 {
				p := tb.Spawn(testCred(1000), 0, "p")
				live = append(live, p.PID)
			} else {
				victim := live[len(live)-1]
				live = live[:len(live)-1]
				if err := tb.Exit(victim); err != nil {
					return false
				}
			}
		}
		all := tb.All()
		if len(all) != len(live) {
			return false
		}
		for i := 1; i < len(all); i++ {
			if all[i-1].PID >= all[i].PID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProcStateString(t *testing.T) {
	cases := map[ProcState]string{StateRunning: "R", StateSleeping: "S", StateZombie: "Z", StateDead: "X"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	cases := map[NodeKind]string{Compute: "compute", Login: "login", DataTransfer: "dtn", InteractiveDebug: "debug", NodeKind(99): "unknown"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}
