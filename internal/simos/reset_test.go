package simos

import (
	"testing"

	"repro/internal/ids"
)

// The Table Reset contract: after Reset, the table is observationally
// equivalent to the state at MarkPristine — same entries, same next
// PID, same generation.

func TestTableResetRewindsToMark(t *testing.T) {
	tab := NewTable(nil)
	d1 := tab.SpawnDaemon("systemd")
	d2 := tab.SpawnDaemon("sshd")
	tab.MarkPristine()
	genAtMark := tab.Generation()

	u := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	p := tab.Spawn(u, 1, "work", "--secret")
	if err := tab.SetRSS(p.PID, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := tab.Exit(d2.PID); err != nil {
		t.Fatal(err)
	}
	tab.Reset()

	if got := tab.Generation(); got != genAtMark {
		t.Errorf("generation %d after Reset, want the mark's %d", got, genAtMark)
	}
	all := tab.All()
	if len(all) != 2 || all[0].PID != d1.PID || all[1].PID != d2.PID {
		t.Fatalf("reset table = %v, want the two pristine daemons", all)
	}
	// PID numbering rewinds: the next spawn gets the PID a fresh
	// post-mark table would hand out.
	np := tab.Spawn(u, 1, "work")
	if np.PID != p.PID {
		t.Errorf("post-reset spawn got PID %d, want %d (numbering rewound)", np.PID, p.PID)
	}
}

func TestTableResetFastPathKeepsEntries(t *testing.T) {
	tab := NewTable(nil)
	tab.SpawnDaemon("systemd")
	tab.MarkPristine()
	before := tab.All()
	tab.Reset() // nothing changed since the mark
	after := tab.All()
	if len(after) != 1 || after[0] != before[0] {
		t.Error("untouched table should keep its shared entries across Reset")
	}
	// The fast path must still rewind the PID counter after spawns
	// that net out to the pristine set... which they cannot without
	// touching entries; but spawn+exit of the same PID changes the
	// pointer set, so the slow path catches it:
	u := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	p := tab.Spawn(u, 1, "x")
	_ = tab.Exit(p.PID)
	tab.Reset()
	if np := tab.Spawn(u, 1, "x"); np.PID != p.PID {
		t.Errorf("PID %d after spawn/exit/reset, want %d", np.PID, p.PID)
	}
}

func TestTableResetWithoutMarkEmpties(t *testing.T) {
	tab := NewTable(nil)
	u := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	tab.Spawn(u, 1, "x")
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("unmarked table has %d entries after Reset, want 0", tab.Len())
	}
	if p := tab.Spawn(u, 1, "x"); p.PID != 1 {
		t.Errorf("first PID after unmarked Reset = %d, want 1", p.PID)
	}
}

// Node.Reset must recover the construction state even after the
// harshest trial history: a crash (which kills the daemons) plus a
// restore (which respawns them under new PIDs).
func TestNodeResetAfterCrashRestore(t *testing.T) {
	fresh := NewNode("c0", Compute, 4, 1<<30, nil)
	n := NewNode("c0", Compute, 4, 1<<30, nil)

	u := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	if _, err := n.Login(u); err != nil {
		t.Fatal(err)
	}
	n.Crash()
	n.Restore()
	if got := n.Procs.All(); len(got) == 0 || got[0].PID == 1 {
		t.Fatalf("restore should have respawned daemons under new PIDs, got %v", got)
	}
	n.Reset()

	if n.Down() {
		t.Error("node still down after Reset")
	}
	want := fresh.Procs.All()
	got := n.Procs.All()
	if len(got) != len(want) {
		t.Fatalf("reset node has %d processes, fresh has %d", len(got), len(want))
	}
	for i := range want {
		if got[i].PID != want[i].PID || got[i].Comm != want[i].Comm {
			t.Errorf("proc %d: got (pid %d, %s), fresh (pid %d, %s)",
				i, got[i].PID, got[i].Comm, want[i].PID, want[i].Comm)
		}
	}
	// And the next spawn matches a fresh node's next spawn.
	gp, fp := n.Procs.Spawn(u, 1, "x"), fresh.Procs.Spawn(u, 1, "x")
	if gp.PID != fp.PID {
		t.Errorf("post-reset PID %d, fresh %d", gp.PID, fp.PID)
	}
}

// Regression: Reset's fast path must invalidate the snapshot cache.
// A snapshot cached at a post-mark generation must never be served
// again when the rewound counter climbs back to the same value.
func TestTableResetFastPathInvalidatesSnapshotCache(t *testing.T) {
	tab := NewTable(nil)
	tab.SpawnDaemon("systemd")
	tab.MarkPristine()
	u := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}

	// Trial 1: spawn (gen+1), cache a snapshot holding the job, exit
	// (gen+2) — the map is now pointer-identical to pristine, so Reset
	// takes the fast path.
	p := tab.Spawn(u, 1, "trial1-job")
	if got := tab.All(); len(got) != 2 {
		t.Fatalf("trial 1 snapshot has %d procs, want 2", len(got))
	}
	if err := tab.Exit(p.PID); err != nil {
		t.Fatal(err)
	}
	tab.Reset()

	// Trial 2: the first spawn lands on the same generation the stale
	// snapshot was cached at; All must show trial 2's process, not
	// trial 1's.
	p2 := tab.Spawn(u, 1, "trial2-job")
	got := tab.All()
	if len(got) != 2 || got[1].PID != p2.PID || got[1].Comm != "trial2-job" {
		names := make([]string, len(got))
		for i, pp := range got {
			names[i] = pp.Comm
		}
		t.Fatalf("post-reset snapshot shows %v — stale trial-1 snapshot served", names)
	}
}
