package simos

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
)

// NodeKind distinguishes the node roles the paper discusses: login
// nodes, data-transfer nodes and interactive/debug nodes remain
// multi-user even under whole-node scheduling (paper §IV-B), while
// compute nodes are allocated via the scheduler.
type NodeKind int

// Node kinds.
const (
	Compute NodeKind = iota
	Login
	DataTransfer
	InteractiveDebug
)

func (k NodeKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Login:
		return "login"
	case DataTransfer:
		return "dtn"
	case InteractiveDebug:
		return "debug"
	default:
		return "unknown"
	}
}

// DevNode is a character-special file under /dev. The GPU separation
// measure works by narrowing Group/Mode on these (paper §IV-F).
type DevNode struct {
	Path  string
	Owner ids.UID
	Group ids.GID
	Mode  uint32 // permission bits only, e.g. 0660
}

// Node is one machine in the cluster: its process table, its /dev
// namespace, its memory capacity, and its PAM access hooks.
type Node struct {
	Name   string
	Kind   NodeKind
	Cores  int
	MemB   int64 // physical memory, bytes
	Procs  *Table
	mu     sync.RWMutex
	dev    map[string]*DevNode
	pam    []PAMHook
	downAt int64 // nonzero once the node has crashed
	clock  func() int64
}

// Node errors.
var (
	ErrAccessDenied = errors.New("simos: access denied by PAM")
	ErrNodeDown     = errors.New("simos: node is down")
	ErrNoSuchDev    = errors.New("simos: no such device")
)

// PAMHook is one module in a node's login stack. pam_slurm is
// implemented by the scheduler registering a hook that checks for a
// running job (paper §IV-B).
type PAMHook func(node *Node, uid ids.UID) error

// NewNode creates a node with the given geometry. clock supplies
// logical time (may be nil).
func NewNode(name string, kind NodeKind, cores int, memB int64, clock func() int64) *Node {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	n := &Node{
		Name:  name,
		Kind:  kind,
		Cores: cores,
		MemB:  memB,
		Procs: NewTable(clock),
		dev:   make(map[string]*DevNode),
		clock: clock,
	}
	n.spawnBaseDaemons()
	// The pristine mark is the three base daemons (PIDs 1..3): Reset
	// rewinds the process table to exactly this state.
	n.Procs.MarkPristine()
	return n
}

// spawnBaseDaemons starts the baseline daemons every Linux node runs;
// these are what users see in `ps` when hidepid is off.
func (n *Node) spawnBaseDaemons() {
	n.Procs.SpawnDaemon("systemd")
	n.Procs.SpawnDaemon("sshd")
	n.Procs.SpawnDaemon("slurmd", "-D")
}

// Reset rewinds the node to its freshly-constructed state: up (not
// crashed), process table back to the pristine base-daemon set with
// PID numbering rewound. Construction-time wiring survives: PAM hooks
// stay registered (the scheduler installs them once, at its own
// construction) and /dev nodes stay present — their ownership is
// restored by the GPU manager's Reset, which knows the pristine modes.
func (n *Node) Reset() {
	n.mu.Lock()
	n.downAt = 0
	n.mu.Unlock()
	n.Procs.Reset()
}

// AddPAMHook appends a module to the login stack.
func (n *Node) AddPAMHook(h PAMHook) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pam = append(n.pam, h)
}

// ClearPAMHooks removes all modules (used to reconfigure).
func (n *Node) ClearPAMHooks() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pam = nil
}

// Login attempts an ssh-style login for uid with the given credential,
// running the PAM stack; on success it spawns a shell process and
// returns it. This is the path pam_slurm gates on compute nodes.
func (n *Node) Login(cred ids.Credential) (*Process, error) {
	if n.Down() {
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, n.Name)
	}
	n.mu.RLock()
	hooks := append([]PAMHook(nil), n.pam...)
	n.mu.RUnlock()
	for _, h := range hooks {
		if err := h(n, cred.UID); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrAccessDenied, err)
		}
	}
	return n.Procs.Spawn(cred, 1, "bash", "-l"), nil
}

// AddDev registers a /dev character file.
func (n *Node) AddDev(path string, owner ids.UID, group ids.GID, mode uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dev[path] = &DevNode{Path: path, Owner: owner, Group: group, Mode: mode}
}

// ChownDev changes ownership/permissions of a device node; root only.
func (n *Node) ChownDev(actor ids.Credential, path string, owner ids.UID, group ids.GID, mode uint32) error {
	if !actor.IsRoot() {
		return fmt.Errorf("%w: chown %s", ErrPermission, path)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	d, ok := n.dev[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchDev, path)
	}
	d.Owner, d.Group, d.Mode = owner, group, mode
	return nil
}

// OpenDev checks whether cred may open the device for read/write
// using standard owner/group/other permission evaluation.
func (n *Node) OpenDev(cred ids.Credential, path string) (*DevNode, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	d, ok := n.dev[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchDev, path)
	}
	if cred.IsRoot() {
		return d, nil
	}
	var bits uint32
	switch {
	case cred.UID == d.Owner:
		bits = (d.Mode >> 6) & 7
	case cred.InGroup(d.Group):
		bits = (d.Mode >> 3) & 7
	default:
		bits = d.Mode & 7
	}
	if bits&6 != 6 { // need read+write to use an accelerator
		return nil, fmt.Errorf("%w: %s mode %o uid %d", ErrPermission, path, d.Mode, cred.UID)
	}
	return d, nil
}

// VisibleDevs lists device paths cred can open — "GPUs that have not
// been assigned to a user are not visible at all" (paper §IV-F).
func (n *Node) VisibleDevs(cred ids.Credential) []string {
	n.mu.RLock()
	paths := make([]string, 0, len(n.dev))
	for p := range n.dev {
		paths = append(paths, p)
	}
	n.mu.RUnlock()
	sort.Strings(paths)
	var out []string
	for _, p := range paths {
		if _, err := n.OpenDev(cred, p); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// Crash marks the node down (e.g. after an OOM cascade) and kills all
// processes. Returns the number of processes that died.
func (n *Node) Crash() int {
	n.mu.Lock()
	n.downAt = n.clock() + 1
	n.mu.Unlock()
	killed := 0
	for _, p := range n.Procs.All() {
		if err := n.Procs.Exit(p.PID); err == nil {
			killed++
		}
	}
	return killed
}

// Restore brings a crashed node back (fresh daemons).
func (n *Node) Restore() {
	n.mu.Lock()
	n.downAt = 0
	n.mu.Unlock()
	n.spawnBaseDaemons()
}

// Down reports whether the node has crashed.
func (n *Node) Down() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.downAt != 0
}

// CheckOOM inspects total RSS against physical memory. If usage
// exceeds capacity the node crashes, killing everything on it — the
// shared-node failure mode the whole-node policy avoids (paper §IV-B).
// It returns true and the number of killed processes if a crash
// happened.
func (n *Node) CheckOOM() (bool, int) {
	if n.Procs.TotalRSS() > n.MemB {
		return true, n.Crash()
	}
	return false, 0
}
