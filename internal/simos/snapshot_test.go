package simos

import (
	"sync"
	"testing"

	"repro/internal/ids"
)

// TestSnapshotGenerationInvalidation proves the copy-on-write
// snapshot contract: unchanged tables serve the identical cached
// slice, every mutation invalidates it, and a stale snapshot is never
// served after a mutation.
func TestSnapshotGenerationInvalidation(t *testing.T) {
	tb := NewTable(nil)
	p1 := tb.Spawn(testCred(1000), 0, "a")
	p2 := tb.Spawn(testCred(2000), 0, "b")

	s1 := tb.All()
	s2 := tb.All()
	if len(s1) != 2 || len(s2) != 2 {
		t.Fatalf("All lens = %d, %d, want 2", len(s1), len(s2))
	}
	// No mutation between the two calls: the cached snapshot is
	// shared, not rebuilt.
	if &s1[0] != &s2[0] {
		t.Errorf("idle table rebuilt its snapshot")
	}
	gen := tb.Generation()
	if tb.Generation() != gen {
		t.Errorf("Generation changed without a mutation")
	}

	// Every mutating operation must bump the generation and serve a
	// fresh snapshot reflecting the change.
	if err := tb.SetJob(p1.PID, 7); err != nil {
		t.Fatal(err)
	}
	if tb.Generation() == gen {
		t.Fatalf("SetJob did not bump generation")
	}
	s3 := tb.All()
	if s3[0].JobID != 7 {
		t.Errorf("stale snapshot served after SetJob: JobID = %d", s3[0].JobID)
	}
	// The earlier snapshot is immutable: it must still show the old
	// JobID (copy-on-write replaced the entry, not mutated it).
	if s1[0].JobID != 0 {
		t.Errorf("published snapshot entry mutated in place: JobID = %d", s1[0].JobID)
	}

	if err := tb.SetRSS(p2.PID, 1234); err != nil {
		t.Fatal(err)
	}
	if got := tb.All()[1].RSS; got != 1234 {
		t.Errorf("stale snapshot after SetRSS: RSS = %d", got)
	}

	if err := tb.Exit(p1.PID); err != nil {
		t.Fatal(err)
	}
	if got := tb.All(); len(got) != 1 || got[0].PID != p2.PID {
		t.Errorf("stale snapshot after Exit: %v", got)
	}
	// And the pre-exit snapshot still lists both processes.
	if len(s3) != 2 {
		t.Errorf("old snapshot shrank after Exit: len = %d", len(s3))
	}

	tb.Spawn(testCred(1000), 0, "c")
	if got := tb.All(); len(got) != 2 {
		t.Errorf("stale snapshot after Spawn: len = %d", len(got))
	}
}

// TestVisitOrderAndEarlyStop checks Visit sees the PID-sorted
// snapshot and honours an early false return.
func TestVisitOrderAndEarlyStop(t *testing.T) {
	tb := NewTable(nil)
	for i := 0; i < 5; i++ {
		tb.Spawn(testCred(1000), 0, "p")
	}
	var pids []ids.PID
	tb.Visit(func(p *Process) bool {
		pids = append(pids, p.PID)
		return len(pids) < 3
	})
	if len(pids) != 3 {
		t.Fatalf("Visit visited %d, want early stop at 3", len(pids))
	}
	for i := 1; i < len(pids); i++ {
		if pids[i-1] >= pids[i] {
			t.Errorf("Visit order not PID-sorted: %v", pids)
		}
	}
}

// TestVisitReentrancy: Visit holds no lock while the callback runs,
// so the callback may call back into the table.
func TestVisitReentrancy(t *testing.T) {
	tb := NewTable(nil)
	tb.Spawn(testCred(1000), 0, "a")
	tb.Spawn(testCred(2000), 0, "b")
	n := 0
	tb.Visit(func(p *Process) bool {
		if _, err := tb.Get(p.PID); err != nil {
			t.Errorf("Get(%d) inside Visit: %v", p.PID, err)
		}
		n++
		return true
	})
	if n != 2 {
		t.Errorf("visited %d, want 2", n)
	}
}

// TestSnapshotRaceStress hammers the table with concurrent writers
// (Spawn/Exit/KillJob/SetRSS) and snapshot readers (All/Visit/ByUser/
// Get). Run under -race this proves readers share immutable snapshots
// without torn reads; without -race it still asserts snapshots are
// internally consistent (PID-sorted, no duplicates).
func TestSnapshotRaceStress(t *testing.T) {
	tb := NewTable(nil)
	const writers, readers, iters = 4, 4, 300

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(uid ids.UID) {
			defer wg.Done()
			var mine []ids.PID
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0, 1:
					p := tb.Spawn(testCred(uid), 0, "w")
					_ = tb.SetJob(p.PID, int(uid))
					mine = append(mine, p.PID)
				case 2:
					if len(mine) > 0 {
						_ = tb.SetRSS(mine[len(mine)-1], int64(i))
						_ = tb.Exit(mine[len(mine)-1])
						mine = mine[:len(mine)-1]
					}
				case 3:
					tb.KillJob(int(uid))
					mine = mine[:0]
				}
			}
		}(ids.UID(1000 + w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(uid ids.UID) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				snap := tb.All()
				for k := 1; k < len(snap); k++ {
					if snap[k-1].PID >= snap[k].PID {
						t.Errorf("snapshot not sorted/unique at %d", k)
						return
					}
				}
				tb.Visit(func(p *Process) bool {
					_ = p.Cmdline // immutable read
					return true
				})
				for _, p := range tb.ByUser(uid) {
					if p.Cred.UID != uid {
						t.Errorf("ByUser(%d) returned uid %d", uid, p.Cred.UID)
						return
					}
					_, _ = tb.Get(p.PID) // may have exited; both outcomes fine
				}
			}
		}(ids.UID(1000 + r%writers))
	}
	wg.Wait()
}
