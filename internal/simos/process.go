// Package simos implements the per-node operating-system substrate of
// the simulated HPC system: process tables, credentials, login
// sessions with a PAM-like hook stack, and /dev device nodes.
//
// It deliberately models only what the paper's separation mechanisms
// need: who is running what (for /proc visibility and the user-based
// firewall's ident queries), how logins are gated (pam_slurm), and how
// device permissions bind GPUs to users.
package simos

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ids"
)

// ProcState is the lifecycle state of a simulated process.
type ProcState int

// Process states. StateDead exists for rendering and external
// bookkeeping only: the table deletes dead processes outright
// (presence in the table means live), so no published entry ever
// carries it.
const (
	StateRunning ProcState = iota
	StateSleeping
	StateZombie
	StateDead
)

func (s ProcState) String() string {
	switch s {
	case StateRunning:
		return "R"
	case StateSleeping:
		return "S"
	case StateZombie:
		return "Z"
	default:
		return "X"
	}
}

// Process is one entry in a node's process table. Cmdline may contain
// secrets (paths, tokens) — exactly the information leak hidepid=2
// exists to stop (paper §IV-A, CVE-2020-27746).
type Process struct {
	PID     ids.PID
	PPID    ids.PID
	Cred    ids.Credential
	Comm    string   // executable name, like /proc/<pid>/comm
	Cmdline []string // full argv, like /proc/<pid>/cmdline
	State   ProcState
	Start   int64 // logical start time
	RSS     int64 // resident memory, bytes (for OOM modelling)
	JobID   int   // owning scheduler job, 0 = none (daemon/login shell)
	Daemon  bool  // system daemon (owned by root or service users)
}

// Clone returns a deep copy safe to hand to observers.
func (p *Process) Clone() *Process {
	np := *p
	np.Cred = p.Cred.Clone()
	np.Cmdline = append([]string(nil), p.Cmdline...)
	return &np
}

// Table is a node's process table. All methods are safe for
// concurrent use.
//
// Entries stored in the table are immutable once published: mutating
// operations (SetJob, SetRSS) replace the entry with a fresh copy
// rather than writing through the shared pointer. That lets the table
// publish one generation-counted, copy-on-write snapshot — a cached
// sorted []*Process — that every reader of All/Visit shares with zero
// per-call cloning. Values returned by All and Visit are therefore
// shared and MUST be treated as read-only; use Clone (or Get, which
// clones) before modifying one.
type Table struct {
	mu      sync.RWMutex
	nextPID ids.PID
	procs   map[ids.PID]*Process
	clock   func() int64
	gen     uint64     // bumped on every mutation
	snap    []*Process // cached PID-sorted snapshot, shared with readers
	snapGen uint64     // generation snap was built at; valid iff == gen
	// arena is the current allocation chunk for the long-lived daemon
	// population: daemon *Process entries point into such a chunk
	// instead of being individual heap objects. Entries are handed out
	// append-only and a full chunk is replaced (never grown), so
	// published pointers stay stable; a chunk is reclaimed when nothing
	// references it anymore. At 10k-node scale the construction daemons
	// alone are 30k entries, so this is a residency win — but ONLY the
	// daemon path uses it: trial-time Spawn/SetJob/SetRSS allocate
	// individually, because initializing a slot inside an existing heap
	// chunk pays bulk pointer write barriers on every spawn and keeps
	// dead transient entries alive until their whole chunk dies, both
	// measurable losses on the E4 drain benchmarks.
	arena []Process
	// Pristine mark for the trial-lifecycle Reset contract: the entry
	// set, PID counter and generation recorded by MarkPristine. Because
	// published entries are immutable (mutations are copy-on-write),
	// the mark can share *Process pointers with the live map — pointer
	// equality at Reset time proves an entry is untouched.
	pristine    map[ids.PID]*Process
	pristinePID ids.PID
	pristineGen uint64
}

// Process-table errors.
var (
	ErrNoSuchProcess = errors.New("simos: no such process")
	ErrPermission    = errors.New("simos: operation not permitted")
)

// NewTable returns an empty process table. clock supplies logical
// time; pass nil for a zero clock.
func NewTable(clock func() int64) *Table {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Table{nextPID: 1, procs: make(map[ids.PID]*Process), clock: clock}
}

// dirtyLocked marks the published snapshot stale. Caller holds t.mu
// for writing.
func (t *Table) dirtyLocked() { t.gen++ }

// allocLocked hands out a stable slot from the daemon arena, growing
// chunk sizes 4→256 so an idle node (three base daemons) pays one tiny
// chunk while construction-heavy tables amortize to one allocation per
// 256 daemons. Caller holds t.mu for writing.
func (t *Table) allocLocked() *Process {
	if len(t.arena) == cap(t.arena) {
		size := cap(t.arena) * 2
		if size == 0 {
			size = 4
		}
		if size > 256 {
			size = 256
		}
		t.arena = make([]Process, 0, size)
	}
	t.arena = t.arena[:len(t.arena)+1]
	return &t.arena[len(t.arena)-1]
}

// daemonCred is the shared root credential every SpawnDaemon entry
// carries. Published entries are read-only by the table contract (and
// Get/Spawn clone before handing out mutable copies), so one shared
// Groups slice serves every daemon on every node.
var daemonCred = ids.Credential{UID: ids.Root, EGID: ids.RootGroup, Groups: []ids.GID{ids.RootGroup}}

// daemonCmdlines interns the argv slices of base daemons: the same
// few cmdlines repeat identically across every node of the cluster,
// and published entries are read-only, so they can share one slice.
var daemonCmdlines sync.Map // string key → []string

// MarkPristine records the table's current state as the target of
// Reset. Entries are shared by pointer with the live map: the table's
// copy-on-write contract (published entries are immutable) makes the
// shared mark exact without cloning anything.
func (t *Table) MarkPristine() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pristine = make(map[ids.PID]*Process, len(t.procs))
	for pid, p := range t.procs {
		t.pristine[pid] = p
	}
	t.pristinePID = t.nextPID
	t.pristineGen = t.gen
}

// Reset rewinds the table to the state MarkPristine recorded (or to
// empty, if no mark was taken): the pristine entry set is reinstalled,
// the PID counter restarts so respawned processes get the same PIDs a
// fresh table would hand out, and the generation drops back to the
// mark so the table is indistinguishable from a newly constructed one.
// The fast path — nothing spawned, exited or mutated since the mark —
// is a pointer-equality sweep that allocates nothing. Snapshots handed
// out before the Reset stay valid (immutably stale), like snapshots
// taken before any other mutation.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.gen == t.pristineGen {
		// Generation equality proves no mutation happened since the
		// mark (every mutation bumps gen, nothing rewinds it mid-trial),
		// so the entry set, PID counter and snapshot cache are all
		// already pristine. This is the O(1) path a pooled XXL trial
		// takes for every node it never touched.
		return
	}
	if len(t.procs) == len(t.pristine) {
		same := true
		for pid, p := range t.pristine {
			if t.procs[pid] != p {
				same = false
				break
			}
		}
		if same {
			t.nextPID = t.pristinePID
			if t.nextPID == 0 {
				t.nextPID = 1
			}
			// Rewinding gen invalidates the snapshot cache explicitly:
			// a snapshot cached at a post-mark generation would otherwise
			// be served again when the counter climbs back to that value.
			t.gen = t.pristineGen
			t.snap = nil
			t.snapGen = 0
			return
		}
	}
	clear(t.procs)
	for pid, p := range t.pristine {
		t.procs[pid] = p
	}
	t.nextPID = t.pristinePID
	if t.nextPID == 0 {
		t.nextPID = 1 // no mark taken: empty table, PIDs restart at 1
	}
	t.gen = t.pristineGen
	t.snap = nil
	t.snapGen = 0
}

// Generation returns the table's mutation counter. Two equal
// Generation readings bracket a window in which no mutation happened
// and every snapshot handed out was identical.
func (t *Table) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

// snapshot returns the shared PID-sorted slice of live processes,
// rebuilding it only when a mutation invalidated the cached one. The
// returned slice and its entries are immutable.
func (t *Table) snapshot() []*Process {
	t.mu.RLock()
	if t.snap != nil && t.snapGen == t.gen {
		s := t.snap
		t.mu.RUnlock()
		return s
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rebuildLocked()
}

// rebuildLocked (re)builds the snapshot cache if stale. Caller holds
// t.mu for writing.
func (t *Table) rebuildLocked() []*Process {
	if t.snap != nil && t.snapGen == t.gen {
		return t.snap
	}
	out := make([]*Process, 0, len(t.procs))
	for _, p := range t.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	t.snap = out
	t.snapGen = t.gen
	return out
}

// Spawn creates a process owned by cred. ppid 0 means "init".
func (t *Table) Spawn(cred ids.Credential, ppid ids.PID, comm string, argv ...string) *Process {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &Process{
		PID:     t.nextPID,
		PPID:    ppid,
		Cred:    cred.Clone(),
		Comm:    comm,
		Cmdline: append([]string{comm}, argv...),
		State:   StateRunning,
		Start:   t.clock(),
	}
	t.nextPID++
	t.procs[p.PID] = p
	t.dirtyLocked()
	return p.Clone()
}

// SpawnDaemon creates a system daemon process (root-owned unless a
// different cred is given); daemons are what hidepid=2 hides alongside
// other users' processes.
func (t *Table) SpawnDaemon(comm string, argv ...string) *Process {
	key := comm
	for _, a := range argv {
		key += "\x00" + a
	}
	var cmdline []string
	if v, ok := daemonCmdlines.Load(key); ok {
		cmdline = v.([]string)
	} else {
		cmdline = append([]string{comm}, argv...)
		daemonCmdlines.Store(key, cmdline)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.allocLocked()
	*p = Process{
		PID:     t.nextPID,
		PPID:    1,
		Cred:    daemonCred,
		Comm:    comm,
		Cmdline: cmdline,
		State:   StateSleeping,
		Start:   t.clock(),
		Daemon:  true,
	}
	t.nextPID++
	t.procs[p.PID] = p
	t.dirtyLocked()
	return p.Clone()
}

// Get returns a copy of the process with the given pid. Visibility
// filtering is the job of package procfs; Get is the raw kernel view.
func (t *Table) Get(pid ids.PID) (*Process, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Dead processes are removed from the map outright (Exit/Kill*),
	// so presence alone means live.
	p, ok := t.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: pid %d", ErrNoSuchProcess, pid)
	}
	return p.Clone(), nil
}

// Lookup returns the shared immutable entry for pid, or false if no
// such live process exists. The result is read-only (see the Table
// contract); use Get for a private deep copy. Lookup exists so
// permission checks can run before any clone is paid for.
func (t *Table) Lookup(pid ids.PID) (*Process, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p, ok := t.procs[pid]
	return p, ok
}

// Exit removes a process from the table. Snapshots published before
// the exit keep showing the process (immutably) until refreshed.
func (t *Table) Exit(pid ids.PID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.procs[pid]; !ok {
		return fmt.Errorf("%w: pid %d", ErrNoSuchProcess, pid)
	}
	delete(t.procs, pid)
	t.dirtyLocked()
	return nil
}

// Kill terminates a process on behalf of actor. Classic Unix rule:
// only the owner or root may signal a process.
func (t *Table) Kill(actor ids.Credential, pid ids.PID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return fmt.Errorf("%w: pid %d", ErrNoSuchProcess, pid)
	}
	if !actor.IsRoot() && actor.UID != p.Cred.UID {
		return fmt.Errorf("%w: uid %d cannot kill pid %d (uid %d)", ErrPermission, actor.UID, pid, p.Cred.UID)
	}
	delete(t.procs, pid)
	t.dirtyLocked()
	return nil
}

// KillJob terminates every process belonging to the given scheduler
// job. Used by the scheduler's job-teardown and the OOM blast-radius
// experiment (E4).
func (t *Table) KillJob(jobID int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for pid, p := range t.procs {
		if p.JobID == jobID && jobID != 0 {
			delete(t.procs, pid)
			n++
		}
	}
	if n > 0 {
		t.dirtyLocked()
	}
	return n
}

// KillUser terminates every non-daemon process of uid (node failure /
// cleanup modelling). Returns the number killed.
func (t *Table) KillUser(uid ids.UID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for pid, p := range t.procs {
		if p.Cred.UID == uid && !p.Daemon {
			delete(t.procs, pid)
			n++
		}
	}
	if n > 0 {
		t.dirtyLocked()
	}
	return n
}

// All returns every live process sorted by PID — the unfiltered
// kernel view (what root sees). The slice is the table's shared
// snapshot: entries are immutable and must be treated as read-only
// (Clone one before modifying it).
func (t *Table) All() []*Process {
	return t.snapshot()
}

// Visit calls f on every live process in PID order, stopping early if
// f returns false. It iterates the shared snapshot, so it allocates
// nothing and holds no lock while f runs — f may call back into the
// table. The *Process passed to f is shared and read-only.
func (t *Table) Visit(f func(p *Process) bool) {
	for _, p := range t.snapshot() {
		if !f(p) {
			return
		}
	}
}

// ByUser returns live processes owned by uid, sorted by PID. Like
// All, the entries are shared immutable snapshot entries.
func (t *Table) ByUser(uid ids.UID) []*Process {
	var out []*Process
	for _, p := range t.snapshot() {
		if p.Cred.UID == uid {
			out = append(out, p)
		}
	}
	return out
}

// SetJob associates a process with a scheduler job id. The published
// entry is replaced copy-on-write; snapshots taken earlier keep the
// old association.
func (t *Table) SetJob(pid ids.PID, jobID int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return fmt.Errorf("%w: pid %d", ErrNoSuchProcess, pid)
	}
	np := new(Process)
	*np = *p
	np.JobID = jobID
	t.procs[pid] = np
	t.dirtyLocked()
	return nil
}

// SetRSS records memory usage for OOM modelling (copy-on-write, like
// SetJob).
func (t *Table) SetRSS(pid ids.PID, rss int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return fmt.Errorf("%w: pid %d", ErrNoSuchProcess, pid)
	}
	np := new(Process)
	*np = *p
	np.RSS = rss
	t.procs[pid] = np
	t.dirtyLocked()
	return nil
}

// TotalRSS sums resident memory across all live processes.
func (t *Table) TotalRSS() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var sum int64
	for _, p := range t.procs {
		sum += p.RSS
	}
	return sum
}

// Len returns the number of live processes.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.procs)
}
