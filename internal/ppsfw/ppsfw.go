// Package ppsfw implements the comparator the paper argues against in
// §IV-D: a traditional ports/protocols/services (PPS) firewall that
// decides by destination port and protocol, with no notion of user.
//
// The paper's criticism, reproduced as experiment E13:
//
//	"A traditional PPS firewall would have no way to make an
//	intelligent decision about a traffic flow consisting of a novel
//	application still in its 'version 0' phase of development, but
//	this is no impediment to making user-based decisions."
//
// A PPS firewall faces a dilemma on an HPC system: either the novel
// app's port is not in the approved service list (the user's own
// legitimate traffic is blocked), or the admin opens a wide port
// range (cross-user traffic flows freely, because the rule cannot see
// users). The UBF suffers neither failure.
package ppsfw

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/netsim"
)

// Rule approves a destination port range for a protocol.
type Rule struct {
	Name     string
	Proto    netsim.Proto
	PortLow  int
	PortHigh int
}

// Matches reports whether the rule admits the flow.
func (r Rule) Matches(f netsim.FlowTuple) bool {
	return f.Proto == r.Proto && f.DstPort >= r.PortLow && f.DstPort <= r.PortHigh
}

func (r Rule) String() string {
	return fmt.Sprintf("%s %s %d-%d", r.Name, r.Proto, r.PortLow, r.PortHigh)
}

// Firewall is a default-deny PPS firewall.
type Firewall struct {
	mu    sync.RWMutex
	rules []Rule

	// Decisions/Allowed/Denied are running counters.
	Decisions int64
	Allowed   int64
	Denied    int64
}

// New creates an empty (default-deny) firewall.
func New() *Firewall { return &Firewall{} }

// Approve adds a service rule, the admin change-request workflow of a
// traditional enterprise firewall.
func (fw *Firewall) Approve(name string, proto netsim.Proto, low, high int) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.rules = append(fw.rules, Rule{Name: name, Proto: proto, PortLow: low, PortHigh: high})
}

// Revoke removes every rule with the given name.
func (fw *Firewall) Revoke(name string) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	out := fw.rules[:0]
	for _, r := range fw.rules {
		if r.Name != name {
			out = append(out, r)
		}
	}
	fw.rules = out
}

// Rules lists rules sorted by name (copies).
func (fw *Firewall) Rules() []Rule {
	fw.mu.RLock()
	defer fw.mu.RUnlock()
	out := append([]Rule(nil), fw.rules...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Hook returns the nfqueue decision function. Note what it does NOT
// look at: who owns either socket.
func (fw *Firewall) Hook() netsim.HookFunc {
	return func(_ *netsim.Network, flow netsim.FlowTuple) netsim.Verdict {
		fw.mu.Lock()
		fw.Decisions++
		var verdict netsim.Verdict = netsim.Drop
		for _, r := range fw.rules {
			if r.Matches(flow) {
				verdict = netsim.Accept
				break
			}
		}
		if verdict == netsim.Accept {
			fw.Allowed++
		} else {
			fw.Denied++
		}
		fw.mu.Unlock()
		return verdict
	}
}

// InstallOn wires the firewall onto a host, inspecting all ports.
func (fw *Firewall) InstallOn(h *netsim.Host) {
	h.SetFirewall(fw.Hook(), nil)
}
