package ppsfw

import (
	"errors"
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/ubf"
)

func cred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

func TestDefaultDeny(t *testing.T) {
	n := netsim.NewNetwork()
	h1, h2 := n.AddHost("a"), n.AddHost("b")
	fw := New()
	fw.InstallOn(h2)
	if _, err := h2.Listen(cred(1000), netsim.TCP, 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(cred(1000), netsim.TCP, "b", 5000); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("default-deny dial err = %v", err)
	}
	if fw.Denied != 1 {
		t.Errorf("denied = %d", fw.Denied)
	}
}

func TestApprovedServiceFlows(t *testing.T) {
	n := netsim.NewNetwork()
	h1, h2 := n.AddHost("a"), n.AddHost("b")
	fw := New()
	fw.Approve("web", netsim.TCP, 8080, 8080)
	fw.InstallOn(h2)
	if _, err := h2.Listen(cred(1000), netsim.TCP, 8080); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(cred(1000), netsim.TCP, "b", 8080); err != nil {
		t.Errorf("approved dial: %v", err)
	}
	// Same service, wrong proto: denied.
	if _, err := h2.Listen(cred(1000), netsim.UDP, 8080); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(cred(1000), netsim.UDP, "b", 8080); !errors.Is(err, netsim.ErrConnDropped) {
		t.Errorf("wrong-proto dial err = %v", err)
	}
}

func TestRevoke(t *testing.T) {
	fw := New()
	fw.Approve("x", netsim.TCP, 1, 10)
	fw.Approve("y", netsim.TCP, 20, 30)
	fw.Revoke("x")
	rules := fw.Rules()
	if len(rules) != 1 || rules[0].Name != "y" {
		t.Errorf("rules after revoke = %v", rules)
	}
}

// TestVersionZeroDilemma reproduces the paper's argument (§IV-D):
// a PPS firewall either blocks the user's own novel app, or — once a
// broad port range is opened — admits cross-user traffic too. The UBF
// does the right thing in both cases on the same scenario.
func TestVersionZeroDilemma(t *testing.T) {
	newWorld := func() (*netsim.Network, *netsim.Host, *netsim.Host) {
		n := netsim.NewNetwork()
		return n, n.AddHost("a"), n.AddHost("b")
	}
	owner, stranger := cred(1000), cred(2000)
	const novelPort = 47113 // "version 0" app picked a random port

	// PPS, strict policy: the owner's own app is blocked.
	{
		_, h1, h2 := newWorld()
		fw := New()
		fw.Approve("ssh", netsim.TCP, 22, 22)
		fw.InstallOn(h2)
		if _, err := h2.Listen(owner, netsim.TCP, novelPort); err != nil {
			t.Fatal(err)
		}
		if _, err := h1.Dial(owner, netsim.TCP, "b", novelPort); err == nil {
			t.Errorf("strict PPS admitted the unapproved novel app")
		}
	}
	// PPS, permissive policy: the app works — and so does the attacker.
	{
		_, h1, h2 := newWorld()
		fw := New()
		fw.Approve("user-ports", netsim.TCP, 1024, 65535)
		fw.InstallOn(h2)
		if _, err := h2.Listen(owner, netsim.TCP, novelPort); err != nil {
			t.Fatal(err)
		}
		if _, err := h1.Dial(owner, netsim.TCP, "b", novelPort); err != nil {
			t.Errorf("permissive PPS blocked the owner: %v", err)
		}
		if _, err := h1.Dial(stranger, netsim.TCP, "b", novelPort); err != nil {
			t.Errorf("permissive PPS should admit the stranger (that is the failure): %v", err)
		}
	}
	// UBF on the identical scenario: owner works, stranger blocked,
	// zero pre-approval needed.
	{
		_, h1, h2 := newWorld()
		d := ubf.New(ubf.Config{AllowGroupPeers: true})
		d.InstallOn(h2)
		if _, err := h2.Listen(owner, netsim.TCP, novelPort); err != nil {
			t.Fatal(err)
		}
		if _, err := h1.Dial(owner, netsim.TCP, "b", novelPort); err != nil {
			t.Errorf("UBF blocked the owner's novel app: %v", err)
		}
		if _, err := h1.Dial(stranger, netsim.TCP, "b", novelPort); !errors.Is(err, netsim.ErrConnDropped) {
			t.Errorf("UBF admitted the stranger: %v", err)
		}
	}
}

func TestRuleStringAndMatches(t *testing.T) {
	r := Rule{Name: "web", Proto: netsim.TCP, PortLow: 80, PortHigh: 90}
	if r.String() == "" {
		t.Error("empty String")
	}
	if !r.Matches(netsim.FlowTuple{Proto: netsim.TCP, DstPort: 85}) {
		t.Error("in-range no match")
	}
	if r.Matches(netsim.FlowTuple{Proto: netsim.UDP, DstPort: 85}) {
		t.Error("wrong proto matched")
	}
	if r.Matches(netsim.FlowTuple{Proto: netsim.TCP, DstPort: 91}) {
		t.Error("out-of-range matched")
	}
}
