package audit

import (
	"sync"

	"repro/internal/metrics"
)

// Event is one attack attempt made first-class: a tick-stamped
// record of what was tried, over which channel, and whether the
// defense let it through. Where a Result is a battery row, an Event
// is a point on the campaign timeline — detection latency is
// measured as the tick distance from campaign start to the first
// event with Leaked == false (a denial is the earliest observable a
// defender could alert on).
type Event struct {
	Tick     int64   `json:"tick"`
	Step     string  `json:"step"`
	Channel  Channel `json:"channel"`
	Residual bool    `json:"residual,omitempty"`
	Leaked   bool    `json:"leaked"`
	Detail   string  `json:"detail"`
}

// Log is an append-only, concurrency-safe event stream. Events keep
// their append order (the campaign timeline), unlike Scanner.Run's
// sorted battery — ordering by tick would lose the intra-tick
// sequence of a multi-step campaign.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty event log.
func NewLog() *Log { return &Log{} }

// Record appends an event.
func (l *Log) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the stream in append order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Reset empties the log for reuse across pooled trials.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = l.events[:0]
}

// FirstDetection returns the earliest denied attempt, if any.
func (l *Log) FirstDetection() (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.events {
		if !e.Leaked {
			return e, true
		}
	}
	return Event{}, false
}

// Table renders the event stream as an experiment table, one row per
// attempt in timeline order.
func (l *Log) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "tick", "step", "channel", "result", "detail")
	leaks := 0
	for _, e := range l.Events() {
		outcome := "denied"
		if e.Leaked {
			leaks++
			outcome = "LEAK"
			if e.Residual {
				outcome = "leak (residual)"
			}
		}
		t.AddRow(e.Tick, e.Step, string(e.Channel), outcome, e.Detail)
	}
	if ev, ok := l.FirstDetection(); ok {
		t.AddNote("%d/%d attempts leaked; first denial at tick %d (%s)", leaks, l.Len(), ev.Tick, ev.Step)
	} else {
		t.AddNote("%d/%d attempts leaked; no attempt was ever denied", leaks, l.Len())
	}
	return t
}
