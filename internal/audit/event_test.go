package audit

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestScannerRunOrderPinned: the report's row order is (channel,
// name) regardless of registration order — the rendering-determinism
// half of the Scanner contract. Every permutation of the same probe
// set must render byte-identical tables.
func TestScannerRunOrderPinned(t *testing.T) {
	probes := []Probe{
		fixedProbe(ChanNetwork, "dial", false, false),
		fixedProbe(ChanFS, "home", false, true),
		fixedProbe(ChanFS, "chmod", false, false),
		fixedProbe(ChanAbstract, "dgram", true, true),
		fixedProbe(ChanProcess, "ps", false, false),
		fixedProbe(ChanGPU, "residue", false, true),
	}
	var want string
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Probe(nil), probes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		s := NewScanner()
		for _, p := range shuffled {
			s.Add(p)
		}
		got := s.Run("pin").Table().Render()
		if trial == 0 {
			want = got
			for i, name := range []string{"dgram", "chmod", "home", "residue", "dial", "ps"} {
				rep := s.Run("pin")
				if rep.Results[i].Probe.Name != name {
					t.Fatalf("result[%d] = %q, want %q", i, rep.Results[i].Probe.Name, name)
				}
			}
			continue
		}
		if got != want {
			t.Fatalf("registration order %d changed the rendered report:\n%s\nvs\n%s", trial, got, want)
		}
	}
}

// TestScannerPooledReuseRace is the pooled-trial lifecycle under
// -race: each goroutine is a worker running Reset → Add battery → Run
// over a shared Scanner-per-worker is the real topology, but the
// Scanner must ALSO survive being shared (Add/Run/Len/Reset are
// mutex-guarded), so the stress deliberately shares one.
func TestScannerPooledReuseRace(t *testing.T) {
	s := NewScanner()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for trial := 0; trial < 50; trial++ {
				s.Reset()
				for i := 0; i < 4; i++ {
					s.Add(fixedProbe(ChanFS, fmt.Sprintf("w%d-p%d", worker, i), false, i%2 == 0))
				}
				rep := s.Run("race")
				_ = rep.Table().Render()
				_, _ = rep.Leaks()
				_ = s.Len()
			}
		}(w)
	}
	wg.Wait()
}

func TestScannerReset(t *testing.T) {
	s := NewScanner()
	s.Add(fixedProbe(ChanFS, "a", false, true))
	s.Add(fixedProbe(ChanFS, "b", false, true))
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("len after Reset = %d", s.Len())
	}
	if rep := s.Run("empty"); len(rep.Results) != 0 {
		t.Fatalf("reset scanner still ran %d probes", len(rep.Results))
	}
}

func TestLogTimelineOrder(t *testing.T) {
	l := NewLog()
	// Deliberately unsorted ticks and channels: the log is a
	// timeline, append order must survive.
	l.Record(Event{Tick: 9, Step: "late", Channel: ChanGPU, Leaked: true})
	l.Record(Event{Tick: 2, Step: "early", Channel: ChanFS, Leaked: true})
	l.Record(Event{Tick: 5, Step: "denied", Channel: ChanNetwork, Leaked: false})
	ev := l.Events()
	if len(ev) != 3 || l.Len() != 3 {
		t.Fatalf("events = %d / len = %d", len(ev), l.Len())
	}
	for i, want := range []string{"late", "early", "denied"} {
		if ev[i].Step != want {
			t.Errorf("event[%d] = %q, want %q (append order lost)", i, ev[i].Step, want)
		}
	}
	first, ok := l.FirstDetection()
	if !ok || first.Step != "denied" || first.Tick != 5 {
		t.Errorf("FirstDetection = %+v/%v, want the tick-5 denial", first, ok)
	}
	// Events returns a copy: mutating it must not corrupt the log.
	ev[0].Step = "mutated"
	if l.Events()[0].Step != "late" {
		t.Error("Events() aliases the log's backing array")
	}
	l.Reset()
	if l.Len() != 0 {
		t.Errorf("len after Reset = %d", l.Len())
	}
	if _, ok := l.FirstDetection(); ok {
		t.Error("FirstDetection on a reset log")
	}
}

func TestLogTableRendering(t *testing.T) {
	l := NewLog()
	l.Record(Event{Tick: 1, Step: "recon", Channel: ChanProcess, Leaked: true})
	l.Record(Event{Tick: 3, Step: "tmp", Channel: ChanTmpNames, Residual: true, Leaked: true})
	l.Record(Event{Tick: 4, Step: "dial", Channel: ChanNetwork, Leaked: false, Detail: "dropped"})
	out := l.Table("campaign").Render()
	for _, want := range []string{"LEAK", "leak (residual)", "denied", "first denial at tick 4 (dial)", "2/3 attempts leaked"} {
		if !strings.Contains(out, want) {
			t.Errorf("event table missing %q:\n%s", want, out)
		}
	}
	l2 := NewLog()
	l2.Record(Event{Tick: 1, Step: "recon", Channel: ChanProcess, Leaked: true})
	if out := l2.Table("all-leak").Render(); !strings.Contains(out, "no attempt was ever denied") {
		t.Errorf("undetected campaign table missing the no-denial note:\n%s", out)
	}
}

func TestLogConcurrentRecord(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(Event{Tick: int64(i), Step: fmt.Sprintf("w%d", worker), Leaked: i%3 == 0})
				_ = l.Len()
				_, _ = l.FirstDetection()
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("len = %d, want 800", l.Len())
	}
}
