// Package audit implements the leak scanner: an attacker harness that
// *attempts* every cross-user channel the paper discusses and records
// which attempts succeed. The paper's Results section (§V) is, in
// effect, a claim about which rows of this report read "closed" under
// the enhanced configuration — and which three stay "open" (file
// names in world-writable directories, abstract-namespace unix
// sockets, direct IB-CM RDMA).
package audit

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Channel labels the attack surface a probe exercises.
type Channel string

// Channels, one per area of paper §IV plus the residual paths of §V.
const (
	ChanProcess   Channel = "process"
	ChanScheduler Channel = "scheduler"
	ChanFS        Channel = "filesystem"
	ChanNetwork   Channel = "network"
	ChanPortal    Channel = "portal"
	ChanGPU       Channel = "gpu"
	ChanContainer Channel = "container"
	ChanTmpNames  Channel = "tmp-names"
	ChanAbstract  Channel = "abstract-socket"
	ChanRDMACM    Channel = "rdma-cm"
)

// Probe is one attack attempt.
type Probe struct {
	Channel Channel
	Name    string
	// Residual marks channels the paper concedes stay open even under
	// the enhanced configuration.
	Residual bool
	// Attempt performs the attack and reports whether information
	// leaked (or access succeeded) across users.
	Attempt func() (leaked bool, detail string)
}

// Result is one executed probe.
type Result struct {
	Probe  Probe
	Leaked bool
	Detail string
}

// Report aggregates a scan.
type Report struct {
	ConfigName string
	Results    []Result
}

// Scanner runs probes.
type Scanner struct {
	mu     sync.Mutex
	probes []Probe
}

// NewScanner creates an empty scanner.
func NewScanner() *Scanner { return &Scanner{} }

// Add registers a probe.
func (s *Scanner) Add(p Probe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = append(s.probes, p)
}

// Len returns the number of registered probes.
func (s *Scanner) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.probes)
}

// Reset empties the scanner for reuse across pooled trials: the
// probe closures bind cluster state that a core.Cluster.Reset just
// rewound, so a pooled trial re-registers its battery instead of
// re-running stale captures.
func (s *Scanner) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = s.probes[:0]
}

// Run executes every probe and returns the report, ordered by
// (channel, name) for stable output.
func (s *Scanner) Run(configName string) *Report {
	s.mu.Lock()
	probes := append([]Probe(nil), s.probes...)
	s.mu.Unlock()
	sort.Slice(probes, func(i, j int) bool {
		if probes[i].Channel != probes[j].Channel {
			return probes[i].Channel < probes[j].Channel
		}
		return probes[i].Name < probes[j].Name
	})
	rep := &Report{ConfigName: configName}
	for _, p := range probes {
		leaked, detail := p.Attempt()
		rep.Results = append(rep.Results, Result{Probe: p, Leaked: leaked, Detail: detail})
	}
	return rep
}

// Leaks returns how many probes leaked, split into unexpected leaks
// and residual (paper-acknowledged) leaks.
func (r *Report) Leaks() (unexpected, residual int) {
	for _, res := range r.Results {
		if !res.Leaked {
			continue
		}
		if res.Probe.Residual {
			residual++
		} else {
			unexpected++
		}
	}
	return
}

// Closed returns how many probes were blocked.
func (r *Report) Closed() int {
	n := 0
	for _, res := range r.Results {
		if !res.Leaked {
			n++
		}
	}
	return n
}

// Table renders the report as an experiment table.
func (r *Report) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("leak scan — %s", r.ConfigName),
		"channel", "probe", "result", "detail",
	)
	for _, res := range r.Results {
		outcome := "closed"
		if res.Leaked {
			outcome = "LEAK"
			if res.Probe.Residual {
				outcome = "open (residual)"
			}
		}
		t.AddRow(string(res.Probe.Channel), res.Probe.Name, outcome, res.Detail)
	}
	u, resd := r.Leaks()
	t.AddNote("%d closed, %d unexpected leaks, %d residual channels open", r.Closed(), u, resd)
	return t
}
