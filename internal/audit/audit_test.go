package audit

import (
	"strings"
	"testing"
)

func fixedProbe(ch Channel, name string, residual, leak bool) Probe {
	return Probe{
		Channel:  ch,
		Name:     name,
		Residual: residual,
		Attempt:  func() (bool, string) { return leak, "detail-" + name },
	}
}

func TestScannerRunOrdering(t *testing.T) {
	s := NewScanner()
	s.Add(fixedProbe(ChanNetwork, "b", false, false))
	s.Add(fixedProbe(ChanFS, "z", false, true))
	s.Add(fixedProbe(ChanFS, "a", false, false))
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	rep := s.Run("test")
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	// Sorted by channel then name: fs/a, fs/z, network/b.
	order := []string{"a", "z", "b"}
	for i, want := range order {
		if rep.Results[i].Probe.Name != want {
			t.Errorf("result[%d] = %s, want %s", i, rep.Results[i].Probe.Name, want)
		}
	}
}

func TestReportCounts(t *testing.T) {
	s := NewScanner()
	s.Add(fixedProbe(ChanFS, "blocked", false, false))
	s.Add(fixedProbe(ChanFS, "leak", false, true))
	s.Add(fixedProbe(ChanTmpNames, "residual", true, true))
	rep := s.Run("enhanced")
	u, r := rep.Leaks()
	if u != 1 || r != 1 {
		t.Errorf("leaks = %d,%d want 1,1", u, r)
	}
	if rep.Closed() != 1 {
		t.Errorf("closed = %d", rep.Closed())
	}
}

func TestReportTableRendering(t *testing.T) {
	s := NewScanner()
	s.Add(fixedProbe(ChanFS, "chmod-world", false, true))
	s.Add(fixedProbe(ChanAbstract, "abstract-dgram", true, true))
	s.Add(fixedProbe(ChanNetwork, "cross-dial", false, false))
	out := s.Run("baseline").Table().Render()
	for _, want := range []string{"LEAK", "open (residual)", "closed", "leak scan — baseline", "1 unexpected leaks"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestProbeDetailPropagates(t *testing.T) {
	s := NewScanner()
	s.Add(fixedProbe(ChanGPU, "residue", false, true))
	rep := s.Run("x")
	if rep.Results[0].Detail != "detail-residue" {
		t.Errorf("detail = %q", rep.Results[0].Detail)
	}
}
