// Package workload generates the job mixes the paper's environment
// runs: large volumes of short bulk-synchronous jobs (parameter
// sweeps, Monte Carlo simulations, §IV-B) and MPI-style jobs whose
// ranks talk TCP across their allocated nodes (§IV-D). These drive
// the scheduling-policy experiment (E4) and the UBF experiments
// (E7/E8).
package workload

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sched"
)

// Submission pairs a credential with a job spec.
type Submission struct {
	Cred ids.Credential
	Spec sched.JobSpec
}

// SweepConfig describes a parameter-sweep batch: many small,
// short, independent jobs from one user.
type SweepConfig struct {
	User     ids.Credential
	Jobs     int
	MinCores int
	MaxCores int
	MinDur   int64
	MaxDur   int64
	MemB     int64
}

// Sweep generates the batch deterministically from rng.
func Sweep(rng *metrics.RNG, c SweepConfig) []Submission {
	out := make([]Submission, 0, c.Jobs)
	for i := 0; i < c.Jobs; i++ {
		cores := c.MinCores
		if c.MaxCores > c.MinCores {
			cores += rng.Intn(c.MaxCores - c.MinCores + 1)
		}
		dur := c.MinDur
		if c.MaxDur > c.MinDur {
			dur += int64(rng.Intn(int(c.MaxDur - c.MinDur + 1)))
		}
		out = append(out, Submission{
			Cred: c.User,
			Spec: sched.JobSpec{
				Name:     fmt.Sprintf("sweep-%d", i),
				Command:  fmt.Sprintf("simulate --param=%d", i),
				Cores:    cores,
				MemB:     c.MemB,
				Duration: dur,
			},
		})
	}
	return out
}

// MonteCarlo is a sweep whose jobs carry a seed parameter — identical
// scheduling shape, different command lines (more cmdline surface for
// the hidepid experiments).
func MonteCarlo(rng *metrics.RNG, c SweepConfig) []Submission {
	subs := Sweep(rng, c)
	for i := range subs {
		subs[i].Spec.Name = fmt.Sprintf("mc-%d", i)
		subs[i].Spec.Command = fmt.Sprintf("montecarlo --seed=%d --trials=1000000", rng.Uint64())
	}
	return subs
}

// MixSpec declaratively describes a multi-user campaign mix — the
// contended-scheduler scenario of E4 as data instead of code, so
// campaign files (internal/fleet) can carry workloads. Build turns
// it into a submission stream given one credential per user.
type MixSpec struct {
	Users       int    `json:"users"`
	JobsPerUser int    `json:"jobs_per_user"`
	Kind        string `json:"kind,omitempty"` // "sweep" (default) or "montecarlo"
	MinCores    int    `json:"min_cores"`
	MaxCores    int    `json:"max_cores"`
	MinDur      int64  `json:"min_dur"`
	MaxDur      int64  `json:"max_dur"`
	MemB        int64  `json:"mem_b"`
	// OOMEvery > 0 marks every OOMEvery-th job of the interleaved
	// stream as exceeding its request by OOMMemB (see WithOOM).
	OOMEvery int   `json:"oom_every,omitempty"`
	OOMMemB  int64 `json:"oom_mem_b,omitempty"`
}

// Validate rejects degenerate specs with descriptive errors.
func (m MixSpec) Validate() error {
	if m.Users < 1 {
		return fmt.Errorf("workload: mix needs at least 1 user (got %d)", m.Users)
	}
	if m.JobsPerUser < 1 {
		return fmt.Errorf("workload: mix needs at least 1 job per user (got %d)", m.JobsPerUser)
	}
	switch m.Kind {
	case "", "sweep", "montecarlo":
	default:
		return fmt.Errorf("workload: unknown mix kind %q (sweep, montecarlo)", m.Kind)
	}
	if m.MinCores < 1 || m.MaxCores < m.MinCores {
		return fmt.Errorf("workload: bad core range [%d, %d]", m.MinCores, m.MaxCores)
	}
	if m.MinDur < 1 || m.MaxDur < m.MinDur {
		return fmt.Errorf("workload: bad duration range [%d, %d]", m.MinDur, m.MaxDur)
	}
	if m.MemB < 1 {
		return fmt.Errorf("workload: non-positive job memory %d", m.MemB)
	}
	if m.OOMEvery < 0 {
		return fmt.Errorf("workload: negative OOMEvery %d", m.OOMEvery)
	}
	if m.OOMEvery > 0 && m.OOMMemB < 1 {
		return fmt.Errorf("workload: OOMEvery set but OOMMemB is %d", m.OOMMemB)
	}
	return nil
}

// Build generates the interleaved stream deterministically from rng:
// one Split child per user in credential order (the idiom every
// experiment uses), round-robin Mix, then OOM injection. len(users)
// must equal m.Users so the spec stays the single source of truth
// for the mix's shape.
//
// Build is BuildInto over a throwaway scratch; the two are draw-for-
// draw identical (pinned by TestBuildIntoMatchesBuild).
func (m MixSpec) Build(rng *metrics.RNG, users []ids.Credential) ([]Submission, error) {
	var sc BuildScratch
	return m.BuildInto(rng, users, &sc)
}

// BuildScratch reuses allocations across repeated BuildInto calls:
// the submission slice, and the per-index job name / command strings
// (which depend only on the stream index, never on the RNG). One
// scratch serves one spec shape at a time; BuildInto rebuilds the
// caches when the spec changes.
type BuildScratch struct {
	subs  []Submission
	names []string // per-index Spec.Name ("sweep-0", "mc-3", ...)
	cmds  []string // per-index sweep command; unused for montecarlo
	kind  string   // spec shape the caches were built for
	jobs  int
}

// BuildInto is Build writing into sc's reusable buffers: on a warm
// scratch the sweep kind allocates nothing at all, and montecarlo
// allocates only its per-trial command strings (they embed RNG
// draws). The returned slice aliases sc and is valid until the next
// BuildInto on the same scratch.
func (m MixSpec) BuildInto(rng *metrics.RNG, users []ids.Credential, sc *BuildScratch) ([]Submission, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(users) != m.Users {
		return nil, fmt.Errorf("workload: spec wants %d users, got %d credentials", m.Users, len(users))
	}
	kind := m.Kind
	if kind == "" {
		kind = "sweep"
	}
	if sc.kind != kind || sc.jobs != m.JobsPerUser {
		sc.names = make([]string, m.JobsPerUser)
		sc.cmds = make([]string, m.JobsPerUser)
		for i := range sc.names {
			if kind == "montecarlo" {
				sc.names[i] = fmt.Sprintf("mc-%d", i)
			} else {
				sc.names[i] = fmt.Sprintf("sweep-%d", i)
				sc.cmds[i] = fmt.Sprintf("simulate --param=%d", i)
			}
		}
		sc.kind, sc.jobs = kind, m.JobsPerUser
	}
	total := m.Users * m.JobsPerUser
	if cap(sc.subs) < total {
		sc.subs = make([]Submission, total)
	}
	out := sc.subs[:total]

	// Exactly Build's draw order: one Split per user in credential
	// order, then that child drives the user's whole batch — cores and
	// duration per job, then (montecarlo) one seed per job. The batch
	// interleaving is Mix's round-robin, which for the equal-length
	// batches a MixSpec produces puts user u's i-th job at i*Users+u.
	var child metrics.RNG
	for u, cred := range users {
		child.Reseed(rng.Uint64())
		for i := 0; i < m.JobsPerUser; i++ {
			cores := m.MinCores
			if m.MaxCores > m.MinCores {
				cores += child.Intn(m.MaxCores - m.MinCores + 1)
			}
			dur := m.MinDur
			if m.MaxDur > m.MinDur {
				dur += int64(child.Intn(int(m.MaxDur - m.MinDur + 1)))
			}
			out[i*m.Users+u] = Submission{
				Cred: cred,
				Spec: sched.JobSpec{
					Name:     sc.names[i],
					Command:  sc.cmds[i],
					Cores:    cores,
					MemB:     m.MemB,
					Duration: dur,
				},
			}
		}
		if kind == "montecarlo" {
			for i := 0; i < m.JobsPerUser; i++ {
				out[i*m.Users+u].Spec.Command = fmt.Sprintf("montecarlo --seed=%d --trials=1000000", child.Uint64())
			}
		}
	}
	if m.OOMEvery > 0 {
		for i := range out {
			if i%m.OOMEvery == m.OOMEvery-1 {
				out[i].Spec.ActualMemB = m.OOMMemB
			}
		}
	}
	return out, nil
}

// Mix interleaves batches from several users into one submit-order
// stream, round-robin, which is the contended-scheduler scenario of
// experiment E4.
func Mix(batches ...[]Submission) []Submission {
	var out []Submission
	for i := 0; ; i++ {
		advanced := false
		for _, b := range batches {
			if i < len(b) {
				out = append(out, b[i])
				advanced = true
			}
		}
		if !advanced {
			return out
		}
	}
}

// WithOOM marks every k-th job in the stream as exceeding its memory
// request by factor (ActualMemB = factor × node-memory stand-in),
// injecting the failure mode whole-node scheduling contains.
func WithOOM(subs []Submission, every int, actualMemB int64) []Submission {
	out := append([]Submission(nil), subs...)
	for i := range out {
		if every > 0 && i%every == every-1 {
			out[i].Spec.ActualMemB = actualMemB
		}
	}
	return out
}

// SubmitAll submits a stream, returning job IDs in submit order.
func SubmitAll(s *sched.Scheduler, subs []Submission) ([]int, error) {
	idsOut := make([]int, 0, len(subs))
	for _, sub := range subs {
		j, err := s.Submit(sub.Cred, sub.Spec)
		if err != nil {
			return idsOut, err
		}
		idsOut = append(idsOut, j.ID)
	}
	return idsOut, nil
}

// MPIResult summarizes the communication phase of an MPI-style job.
type MPIResult struct {
	Ranks      int
	Connected  int
	Dropped    int
	BytesMoved int64
}

// RunMPI models the communication pattern of an MPI job: rank 0 (on
// the job's first node) binds a coordinator port, every other rank
// dials it over TCP and exchanges a payload. All ranks share one
// user, so under the UBF this traffic is always admitted — the "MPI
// frameworks do not authenticate peer ranks" gap is closed by the
// system, not the framework (§II, §IV-D).
//
// hosts maps node names to network hosts; port must be unused on the
// first node.
func RunMPI(job *sched.Job, net *netsim.Network, port int, payload []byte) (*MPIResult, error) {
	if len(job.Nodes) == 0 {
		return nil, fmt.Errorf("workload: job %d has no nodes", job.ID)
	}
	res := &MPIResult{Ranks: len(job.Nodes)}
	head, err := net.Host(job.Nodes[0])
	if err != nil {
		return nil, err
	}
	l, err := head.Listen(job.Cred, netsim.TCP, port)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	for _, nodeName := range job.Nodes[1:] {
		h, err := net.Host(nodeName)
		if err != nil {
			return nil, err
		}
		c, err := h.Dial(job.Cred, netsim.TCP, job.Nodes[0], port)
		if err != nil {
			res.Dropped++
			continue
		}
		res.Connected++
		if err := c.Send(payload); err == nil {
			res.BytesMoved += int64(len(payload))
		}
	}
	// Drain at rank 0 to complete the exchange.
	for {
		c, ok := l.Accept()
		if !ok {
			break
		}
		for {
			d, ok := c.Recv()
			if !ok {
				break
			}
			res.BytesMoved += int64(len(d))
		}
	}
	return res, nil
}
