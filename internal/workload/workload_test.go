package workload

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/simos"
	"repro/internal/ubf"
)

func cred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

func nodes(n, cores int) []*simos.Node {
	var out []*simos.Node
	for i := 0; i < n; i++ {
		out = append(out, simos.NewNode(fmt.Sprintf("c%02d", i), simos.Compute, cores, 1<<20, nil))
	}
	return out
}

func TestSweepDeterministic(t *testing.T) {
	cfg := SweepConfig{User: cred(1000), Jobs: 50, MinCores: 1, MaxCores: 4, MinDur: 1, MaxDur: 5, MemB: 10}
	a := Sweep(metrics.NewRNG(1), cfg)
	b := Sweep(metrics.NewRNG(1), cfg)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Spec.Cores != b[i].Spec.Cores || a[i].Spec.Duration != b[i].Spec.Duration {
			t.Fatalf("sweep not deterministic at %d", i)
		}
		if a[i].Spec.Cores < 1 || a[i].Spec.Cores > 4 {
			t.Errorf("cores out of range: %d", a[i].Spec.Cores)
		}
		if a[i].Spec.Duration < 1 || a[i].Spec.Duration > 5 {
			t.Errorf("duration out of range: %d", a[i].Spec.Duration)
		}
	}
}

func TestMonteCarloCommandsDiffer(t *testing.T) {
	cfg := SweepConfig{User: cred(1000), Jobs: 5, MinCores: 1, MaxCores: 1, MinDur: 1, MaxDur: 1, MemB: 1}
	subs := MonteCarlo(metrics.NewRNG(2), cfg)
	seen := map[string]bool{}
	for _, s := range subs {
		if seen[s.Spec.Command] {
			t.Errorf("duplicate command %q", s.Spec.Command)
		}
		seen[s.Spec.Command] = true
	}
}

func TestMixSpecBuild(t *testing.T) {
	spec := MixSpec{
		Users: 3, JobsPerUser: 10, Kind: "montecarlo",
		MinCores: 1, MaxCores: 4, MinDur: 1, MaxDur: 3, MemB: 5,
		OOMEvery: 10, OOMMemB: 999,
	}
	users := []ids.Credential{cred(1000), cred(2000), cred(3000)}
	a, err := spec.Build(metrics.NewRNG(9), users)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build(metrics.NewRNG(9), users)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 30 {
		t.Fatalf("stream len = %d, want 30", len(a))
	}
	oom := 0
	for i := range a {
		if a[i].Cred.UID != b[i].Cred.UID || a[i].Spec.Cores != b[i].Spec.Cores ||
			a[i].Spec.Duration != b[i].Spec.Duration || a[i].Spec.Command != b[i].Spec.Command {
			t.Fatalf("Build not deterministic at %d", i)
		}
		// Round-robin interleave: position i belongs to user i%3.
		if want := users[i%3].UID; a[i].Cred.UID != want {
			t.Errorf("stream[%d].UID = %d, want %d", i, a[i].Cred.UID, want)
		}
		if a[i].Spec.ActualMemB == 999 {
			oom++
		}
	}
	if oom != 3 {
		t.Errorf("OOM-marked jobs = %d, want 3", oom)
	}
}

func TestMixSpecValidate(t *testing.T) {
	good := MixSpec{Users: 2, JobsPerUser: 5, MinCores: 1, MaxCores: 2, MinDur: 1, MaxDur: 2, MemB: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	for name, mutate := range map[string]func(*MixSpec){
		"no users":         func(m *MixSpec) { m.Users = 0 },
		"no jobs":          func(m *MixSpec) { m.JobsPerUser = 0 },
		"bad kind":         func(m *MixSpec) { m.Kind = "random" },
		"inverted cores":   func(m *MixSpec) { m.MinCores, m.MaxCores = 3, 1 },
		"zero duration":    func(m *MixSpec) { m.MinDur = 0 },
		"zero memory":      func(m *MixSpec) { m.MemB = 0 },
		"oom without size": func(m *MixSpec) { m.OOMEvery = 5; m.OOMMemB = 0 },
	} {
		m := good
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Credential count must match the spec.
	if _, err := good.Build(metrics.NewRNG(1), []ids.Credential{cred(1)}); err == nil {
		t.Errorf("credential-count mismatch accepted")
	}
}

func TestMixRoundRobin(t *testing.T) {
	a := Sweep(metrics.NewRNG(1), SweepConfig{User: cred(1000), Jobs: 3, MinCores: 1, MaxCores: 1, MinDur: 1, MaxDur: 1, MemB: 1})
	b := Sweep(metrics.NewRNG(2), SweepConfig{User: cred(2000), Jobs: 2, MinCores: 1, MaxCores: 1, MinDur: 1, MaxDur: 1, MemB: 1})
	m := Mix(a, b)
	if len(m) != 5 {
		t.Fatalf("mix len = %d", len(m))
	}
	wantUsers := []ids.UID{1000, 2000, 1000, 2000, 1000}
	for i, s := range m {
		if s.Cred.UID != wantUsers[i] {
			t.Errorf("mix[%d].UID = %d, want %d", i, s.Cred.UID, wantUsers[i])
		}
	}
}

func TestWithOOM(t *testing.T) {
	subs := Sweep(metrics.NewRNG(1), SweepConfig{User: cred(1000), Jobs: 6, MinCores: 1, MaxCores: 1, MinDur: 1, MaxDur: 1, MemB: 1})
	marked := WithOOM(subs, 3, 999)
	// Original untouched.
	for _, s := range subs {
		if s.Spec.ActualMemB != 0 {
			t.Fatalf("WithOOM mutated input")
		}
	}
	count := 0
	for _, s := range marked {
		if s.Spec.ActualMemB == 999 {
			count++
		}
	}
	if count != 2 {
		t.Errorf("marked %d jobs, want 2", count)
	}
}

func TestSubmitAllAndDrain(t *testing.T) {
	s := sched.New(sched.Config{Policy: sched.PolicyUserWholeNode}, nodes(4, 8), 0)
	mix := Mix(
		Sweep(metrics.NewRNG(1), SweepConfig{User: cred(1000), Jobs: 20, MinCores: 1, MaxCores: 4, MinDur: 1, MaxDur: 3, MemB: 1}),
		Sweep(metrics.NewRNG(2), SweepConfig{User: cred(2000), Jobs: 20, MinCores: 1, MaxCores: 4, MinDur: 1, MaxDur: 3, MemB: 1}),
	)
	jids, err := SubmitAll(s, mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(jids) != 40 {
		t.Fatalf("submitted %d", len(jids))
	}
	s.RunAll(5000)
	for _, id := range jids {
		j, err := s.Job(id)
		if err != nil || j.State != sched.Completed {
			t.Errorf("job %d: %v %v", id, j.State, err)
		}
	}
	if s.MaxUsersPerNode() > 1 {
		t.Errorf("user-wholenode violated")
	}
}

func TestRunMPISameUserAllowedThroughUBF(t *testing.T) {
	ns := nodes(3, 2)
	s := sched.New(sched.Config{Policy: sched.PolicyUserWholeNode}, ns, 0)
	net := netsim.NewNetwork()
	d := ubf.New(ubf.Config{AllowGroupPeers: true})
	for _, n := range ns {
		d.InstallOn(net.AddHost(n.Name))
	}
	alice := cred(1000)
	j, err := s.Submit(alice, sched.JobSpec{Name: "mpi", Command: "xhpl", Cores: 6, MemB: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	job, _ := s.Job(j.ID)
	if job.State != sched.Running || len(job.Nodes) != 3 {
		t.Fatalf("job %v nodes %v", job.State, job.Nodes)
	}
	res, err := RunMPI(job, net, 11000, []byte("halo-exchange"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 3 || res.Connected != 2 || res.Dropped != 0 {
		t.Errorf("mpi result = %+v", res)
	}
	if res.BytesMoved == 0 {
		t.Errorf("no bytes moved")
	}
}

func TestRunMPIErrors(t *testing.T) {
	net := netsim.NewNetwork()
	j := &sched.Job{ID: 1, Cred: cred(1000)}
	if _, err := RunMPI(j, net, 11000, nil); err == nil {
		t.Errorf("no-nodes job should error")
	}
	j.Nodes = []string{"ghost"}
	if _, err := RunMPI(j, net, 11000, nil); err == nil {
		t.Errorf("ghost host should error")
	}
}

// BuildInto must be draw-for-draw identical to the legacy batch-based
// construction (Split per user → Sweep/MonteCarlo → Mix → WithOOM),
// for every kind and with/without OOM injection — the property the
// fleet executor's scratch reuse stands on.
func TestBuildIntoMatchesLegacyConstruction(t *testing.T) {
	users := []ids.Credential{cred(1000), cred(2000), cred(3000)}
	for _, spec := range []MixSpec{
		{Users: 3, JobsPerUser: 5, MinCores: 1, MaxCores: 4, MinDur: 1, MaxDur: 6, MemB: 1 << 20},
		{Users: 3, JobsPerUser: 5, Kind: "montecarlo", MinCores: 2, MaxCores: 2, MinDur: 3, MaxDur: 3, MemB: 1},
		{Users: 3, JobsPerUser: 7, MinCores: 1, MaxCores: 8, MinDur: 1, MaxDur: 4, MemB: 1 << 20, OOMEvery: 4, OOMMemB: 2 << 30},
	} {
		// The legacy pipeline, inlined (Build now delegates to
		// BuildInto, so the reference must be constructed by hand).
		rng := metrics.NewRNG(77)
		gen := Sweep
		if spec.Kind == "montecarlo" {
			gen = MonteCarlo
		}
		var batches [][]Submission
		for _, u := range users {
			batches = append(batches, gen(rng.Split(), SweepConfig{
				User: u, Jobs: spec.JobsPerUser,
				MinCores: spec.MinCores, MaxCores: spec.MaxCores,
				MinDur: spec.MinDur, MaxDur: spec.MaxDur, MemB: spec.MemB,
			}))
		}
		want := Mix(batches...)
		if spec.OOMEvery > 0 {
			want = WithOOM(want, spec.OOMEvery, spec.OOMMemB)
		}

		var sc BuildScratch
		for round := 0; round < 2; round++ { // round 2 runs on a warm scratch
			got, err := spec.BuildInto(metrics.NewRNG(77), users, &sc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("kind=%q oom=%d round %d: BuildInto diverged from legacy construction\n got: %v\nwant: %v",
					spec.Kind, spec.OOMEvery, round, got, want)
			}
		}
	}
}

// A warm scratch makes the sweep kind allocation-free.
func TestBuildIntoWarmScratchAllocFree(t *testing.T) {
	spec := MixSpec{Users: 2, JobsPerUser: 10, MinCores: 1, MaxCores: 4, MinDur: 1, MaxDur: 3, MemB: 1, OOMEvery: 5, OOMMemB: 2}
	users := []ids.Credential{cred(1000), cred(2000)}
	var sc BuildScratch
	rng := metrics.NewRNG(1)
	if _, err := spec.BuildInto(rng, users, &sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := spec.BuildInto(rng, users, &sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm-scratch BuildInto allocates %.1f objects per call, want 0", allocs)
	}
}
