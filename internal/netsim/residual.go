package netsim

import (
	"errors"
	"fmt"

	"repro/internal/ids"
)

// This file implements the two network-adjacent residual channels the
// paper's Results section concedes remain open (§V):
//
//  1. abstract-namespace unix domain sockets: node-local, no
//     filesystem permission bits, not covered by the UBF because they
//     never traverse the IP stack;
//  2. RDMA traffic whose queue pairs are set up with the native IB
//     connection manager instead of a TCP control channel.

// AbstractSocket is an abstract-namespace unix domain socket. Unlike
// pathname sockets there is no inode, hence no permission check: any
// local process can connect to any name. That is the leak.
type AbstractSocket struct {
	Name  string
	Owner ids.Credential
	host  *Host

	msgs [][]byte
	from []ids.UID
}

// ErrNoAbstract is returned when dialing an unbound abstract name.
var ErrNoAbstract = errors.New("netsim: no such abstract socket")

// ListenAbstract binds an abstract-namespace socket on the host.
func (h *Host) ListenAbstract(cred ids.Credential, name string) (*AbstractSocket, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.abstract[name]; dup {
		return nil, fmt.Errorf("%w: @%s", ErrAddrInUse, name)
	}
	s := &AbstractSocket{Name: name, Owner: cred.Clone(), host: h}
	h.abstract[name] = s
	h.touch()
	return s, nil
}

// DialAbstract sends a datagram to a local abstract socket. There is
// deliberately no credential check: the kernel performs none for the
// abstract namespace, which is why it remains a residual channel.
func (h *Host) DialAbstract(cred ids.Credential, name string, data []byte) error {
	h.mu.Lock()
	s, ok := h.abstract[name]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: @%s", ErrNoAbstract, name)
	}
	s.msgs = append(s.msgs, append([]byte(nil), data...))
	s.from = append(s.from, cred.UID)
	return nil
}

// AbstractNames lists bound abstract names — visible to every local
// user (another facet of the leak: the names themselves).
func (h *Host) AbstractNames() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.abstract))
	for n := range h.abstract {
		out = append(out, n)
	}
	return out
}

// Recv pops the next datagram and its sender UID.
func (s *AbstractSocket) Recv() ([]byte, ids.UID, bool) {
	s.host.mu.Lock()
	defer s.host.mu.Unlock()
	if len(s.msgs) == 0 {
		return nil, ids.NoUID, false
	}
	d, u := s.msgs[0], s.from[0]
	s.msgs, s.from = s.msgs[1:], s.from[1:]
	return d, u, true
}

// CloseAbstract unbinds the name.
func (h *Host) CloseAbstract(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.abstract, name)
}

// --- RDMA ---

// QPSetupMode is how an RDMA queue pair is established.
type QPSetupMode int

// QP setup modes (paper §IV-D and appendix).
const (
	// QPViaTCP sets up the queue pair over a TCP control channel —
	// the common case for MPI/verbs frameworks, and therefore
	// *implicitly controlled* by the UBF.
	QPViaTCP QPSetupMode = iota
	// QPViaNativeCM uses the InfiniBand connection manager directly —
	// not covered by the UBF; the paper's acknowledged residual.
	QPViaNativeCM
)

func (m QPSetupMode) String() string {
	if m == QPViaTCP {
		return "tcp-cm"
	}
	return "native-cm"
}

// QueuePair is an established RDMA connection.
type QueuePair struct {
	Mode    QPSetupMode
	Local   string
	Remote  string
	SrcCred ids.Credential
	ctrl    *Conn // non-nil for QPViaTCP
}

// SetupQP establishes an RDMA queue pair from this host to a peer.
// With QPViaTCP, the setup dials ctrlPort over TCP first — so the UBF
// verdict applies and a drop prevents the QP entirely. With
// QPViaNativeCM, the CM exchange bypasses the IP firewall: setup
// always succeeds if the peer exists.
func (h *Host) SetupQP(cred ids.Credential, mode QPSetupMode, remote string, ctrlPort int) (*QueuePair, error) {
	if mode == QPViaNativeCM {
		if _, err := h.net.Host(remote); err != nil {
			return nil, err
		}
		return &QueuePair{Mode: mode, Local: h.name, Remote: remote, SrcCred: cred.Clone()}, nil
	}
	c, err := h.Dial(cred, TCP, remote, ctrlPort)
	if err != nil {
		return nil, fmt.Errorf("rdma qp setup via tcp: %w", err)
	}
	return &QueuePair{Mode: mode, Local: h.name, Remote: remote, SrcCred: cred.Clone(), ctrl: c}, nil
}

// Write performs an RDMA write over the established QP. Once a QP
// exists, data moves regardless of firewall state — exactly why
// controlling setup is the only lever.
func (qp *QueuePair) Write(data []byte) error {
	if qp.ctrl != nil {
		// Keep the control channel in conntrack; a closed control
		// conn in real frameworks usually tears the QP down too.
		return qp.ctrl.Send(data)
	}
	return nil
}

// Close tears down the QP and its control channel.
func (qp *QueuePair) Close() {
	if qp.ctrl != nil {
		qp.ctrl.Close()
	}
}
