// Package netsim implements the simulated cluster network: TCP/UDP
// sockets bound to node-local processes, a NetFilter-style firewall
// hook invoked for NEW connections only (nfqueue + conntrack,
// paper §IV-D), an RFC1413-style ident responder per host, abstract-
// namespace unix domain sockets (a residual channel, §V), and RDMA
// queue-pair setup via either a TCP control channel (UBF-controlled)
// or the native IB connection manager (not controlled, §V).
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
)

// Proto is a transport protocol.
type Proto int

// Protocols.
const (
	TCP Proto = iota
	UDP
)

func (p Proto) String() string {
	if p == TCP {
		return "tcp"
	}
	return "udp"
}

// Verdict is a firewall decision.
type Verdict int

// Verdicts.
const (
	Accept Verdict = iota
	Drop
)

func (v Verdict) String() string {
	if v == Accept {
		return "ACCEPT"
	}
	return "DROP"
}

// FlowTuple identifies a connection attempt.
type FlowTuple struct {
	Proto   Proto
	SrcHost string
	SrcPort int
	DstHost string
	DstPort int
}

func (f FlowTuple) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d", f.Proto, f.SrcHost, f.SrcPort, f.DstHost, f.DstPort)
}

// reverse returns the tuple of the reply direction.
func (f FlowTuple) reverse() FlowTuple {
	return FlowTuple{Proto: f.Proto, SrcHost: f.DstHost, SrcPort: f.DstPort, DstHost: f.SrcHost, DstPort: f.SrcPort}
}

// HookFunc is the nfqueue userspace decision function. It runs on the
// receiving host for NEW connections; established traffic bypasses it
// via conntrack. net gives the hook access to ident queries.
type HookFunc func(net *Network, flow FlowTuple) Verdict

// Network errors.
var (
	ErrNoHost           = errors.New("netsim: no such host")
	ErrConnRefused      = errors.New("netsim: connection refused")
	ErrConnDropped      = errors.New("netsim: connection dropped by firewall")
	ErrAddrInUse        = errors.New("netsim: address already in use")
	ErrConnClosed       = errors.New("netsim: connection closed")
	ErrNoEphemeral      = errors.New("netsim: ephemeral ports exhausted")
	ErrNotListening     = errors.New("netsim: not listening")
	ErrIdentUnavailable = errors.New("netsim: ident query failed")
)

// Network is the cluster fabric.
type Network struct {
	mu    sync.RWMutex
	hosts map[string]*Host

	// dirtyHosts counts hosts carrying dynamic socket state, so Reset
	// on an untouched fabric skips the whole-host walk (O(nodes) at
	// XXL scale).
	dirtyHosts atomic.Int64

	// Stats counts hook invocations, ident queries and packets for
	// the overhead experiment (E8).
	HookInvocations  atomic.Int64
	IdentQueries     atomic.Int64
	PacketsDelivered atomic.Int64
	NewConnAccepted  atomic.Int64
	NewConnDropped   atomic.Int64
}

// NewNetwork creates an empty fabric.
func NewNetwork() *Network {
	return &Network{hosts: make(map[string]*Host)}
}

// AddHost registers a host by name. The returned Host carries the
// per-host socket tables and firewall configuration.
func (n *Network) AddHost(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := &Host{
		name:      name,
		net:       n,
		listeners: make(map[portKey]*Listener),
		conntrack: newConntrack(),
		nextEphem: 32768,
		abstract:  make(map[string]*AbstractSocket),
	}
	n.hosts[name] = h
	return h
}

// Host returns a host by name.
func (n *Network) Host(name string) (*Host, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoHost, name)
	}
	return h, nil
}

// Hosts lists host names sorted.
func (n *Network) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.hosts))
	for name := range n.hosts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Ident performs the UBF's ident-style query: who owns the socket at
// host:port/proto? For listener-side queries the port is the bound
// port; for connector-side queries it is the ephemeral source port.
// This models the RFC1413-like exchange of §IV-D: "an ident-like
// query is sent from the receiving system to the initiating system to
// get user information, and the same query run locally."
func (n *Network) Ident(host string, proto Proto, port int) (ids.Credential, error) {
	n.IdentQueries.Add(1)
	h, err := n.Host(host)
	if err != nil {
		return ids.Credential{}, err
	}
	return h.identLocal(proto, port)
}

// ResetStats zeroes the counters (between bench phases).
func (n *Network) ResetStats() {
	n.HookInvocations.Store(0)
	n.IdentQueries.Store(0)
	n.PacketsDelivered.Store(0)
	n.NewConnAccepted.Store(0)
	n.NewConnDropped.Store(0)
}

// Reset rewinds the fabric to its freshly-wired state: every host's
// sockets, conntrack entries, ephemeral ports and abstract sockets are
// dropped and the stats counters zeroed. Host membership and firewall
// hooks survive — they are cluster-assembly wiring, not traffic state.
func (n *Network) Reset() {
	n.ResetStats()
	if n.dirtyHosts.Load() == 0 {
		return
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, h := range n.hosts {
		h.Reset()
	}
}

type portKey struct {
	proto Proto
	port  int
}

// Host is one machine's network stack.
type Host struct {
	name string
	net  *Network

	mu        sync.Mutex
	listeners map[portKey]*Listener
	conntrack *conntrack
	hook      HookFunc // nil = no firewall (baseline)
	hookPorts func(port int) bool
	nextEphem int
	ephemeral map[int]ids.Credential // src ports of active outbound conns
	abstract  map[string]*AbstractSocket

	// dirty marks that the host has accumulated socket state since the
	// last Reset. Atomic so conntrack inserts on the remote host can
	// touch it without taking h.mu.
	dirty atomic.Bool
}

// touch marks the host dirty, maintaining the network-wide count of
// hosts that need a Reset sweep. Deletions never un-touch: a host that
// bound and closed a socket still counts until the next Reset, which
// keeps the flag monotone between resets.
func (h *Host) touch() {
	if h.dirty.CompareAndSwap(false, true) {
		h.net.dirtyHosts.Add(1)
	}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// SetFirewall installs the nfqueue hook. portFilter selects which
// destination ports are inspected — the paper configures "ports
// numbered 1024 and above" (reproducibility appendix); nil inspects
// all ports.
func (h *Host) SetFirewall(hook HookFunc, portFilter func(port int) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hook = hook
	h.hookPorts = portFilter
}

// Reset drops the host's dynamic socket state — listeners, conntrack
// entries, ephemeral port bindings, abstract sockets — and rewinds the
// ephemeral port counter, keeping the installed firewall hook. All
// existing allocations (the maps) are reused.
// Untouched hosts (no sockets bound since the last Reset) return
// immediately without taking the lock.
func (h *Host) Reset() {
	if !h.dirty.CompareAndSwap(true, false) {
		return
	}
	h.net.dirtyHosts.Add(-1)
	h.mu.Lock()
	defer h.mu.Unlock()
	clear(h.listeners)
	h.conntrack.reset()
	h.nextEphem = 32768
	clear(h.ephemeral)
	clear(h.abstract)
}

// ClearFirewall removes the hook (baseline configuration).
func (h *Host) ClearFirewall() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.hook = nil
	h.hookPorts = nil
}

// identLocal resolves the credential owning a local socket.
func (h *Host) identLocal(proto Proto, port int) (ids.Credential, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if l, ok := h.listeners[portKey{proto, port}]; ok {
		return l.cred.Clone(), nil
	}
	if h.ephemeral != nil {
		if c, ok := h.ephemeral[port]; ok {
			return c.Clone(), nil
		}
	}
	return ids.Credential{}, fmt.Errorf("%w: %s %s:%d", ErrIdentUnavailable, proto, h.name, port)
}

// allocEphemeral reserves an ephemeral source port bound to cred.
func (h *Host) allocEphemeral(cred ids.Credential) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ephemeral == nil {
		h.ephemeral = make(map[int]ids.Credential)
	}
	for i := 0; i < 28000; i++ {
		p := h.nextEphem
		h.nextEphem++
		if h.nextEphem > 60999 {
			h.nextEphem = 32768
		}
		if _, used := h.ephemeral[p]; !used {
			if _, bound := h.listeners[portKey{TCP, p}]; !bound {
				h.ephemeral[p] = cred.Clone()
				h.touch()
				return p, nil
			}
		}
	}
	return 0, ErrNoEphemeral
}

func (h *Host) releaseEphemeral(port int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.ephemeral, port)
}
