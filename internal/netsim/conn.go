package netsim

import (
	"fmt"
	"sync"

	"repro/internal/ids"
)

// Listener is a bound server socket. The owning credential is what
// the UBF's listener-side ident query returns; its effective GID is
// the "primary group of the listener process" the group rule keys on
// (switchable via newgrp/sg before binding).
type Listener struct {
	host  *Host
	proto Proto
	port  int
	cred  ids.Credential

	mu      sync.Mutex
	backlog []*Conn
	closed  bool
}

// Listen binds a socket on the host. Binding below 1024 requires
// root, like Linux.
func (h *Host) Listen(cred ids.Credential, proto Proto, port int) (*Listener, error) {
	if port < 1024 && !cred.IsRoot() {
		return nil, fmt.Errorf("%w: privileged port %d", ErrConnRefused, port)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	key := portKey{proto, port}
	if _, dup := h.listeners[key]; dup {
		return nil, fmt.Errorf("%w: %s:%d/%s", ErrAddrInUse, h.name, port, proto)
	}
	l := &Listener{host: h, proto: proto, port: port, cred: cred.Clone()}
	h.listeners[key] = l
	h.touch()
	return l, nil
}

// Close unbinds the listener.
func (l *Listener) Close() {
	l.host.mu.Lock()
	delete(l.host.listeners, portKey{l.proto, l.port})
	l.host.mu.Unlock()
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
}

// Port returns the bound port.
func (l *Listener) Port() int { return l.port }

// Cred returns the owning credential (a copy).
func (l *Listener) Cred() ids.Credential { return l.cred.Clone() }

// Accept returns the next established inbound connection, if any.
func (l *Listener) Accept() (*Conn, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.backlog) == 0 {
		return nil, false
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, true
}

func (l *Listener) enqueue(c *Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.backlog = append(l.backlog, c)
}

// Conn is an established flow. Both directions share the struct; the
// dialer holds the same *Conn the acceptor sees.
type Conn struct {
	Tuple   FlowTuple
	SrcCred ids.Credential
	DstCred ids.Credential

	mu      sync.Mutex
	toDst   [][]byte // data sent by the dialer
	toSrc   [][]byte // data sent by the acceptor
	closed  bool
	net     *Network
	srcHost *Host
}

// Dial establishes a connection from a process with cred on this host
// to dstHost:dstPort. The receiving host's firewall hook is consulted
// for the NEW connection; once established, traffic flows via
// conntrack without re-inspection (§IV-D).
func (h *Host) Dial(cred ids.Credential, proto Proto, dstHost string, dstPort int) (*Conn, error) {
	dst, err := h.net.Host(dstHost)
	if err != nil {
		return nil, err
	}
	srcPort, err := h.allocEphemeral(cred)
	if err != nil {
		return nil, err
	}
	flow := FlowTuple{Proto: proto, SrcHost: h.name, SrcPort: srcPort, DstHost: dstHost, DstPort: dstPort}

	dst.mu.Lock()
	l, listening := dst.listeners[portKey{proto, dstPort}]
	hook := dst.hook
	portFilter := dst.hookPorts
	dst.mu.Unlock()

	if !listening {
		h.releaseEphemeral(srcPort)
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, flow)
	}

	// NEW connection: consult the firewall hook (nfqueue) unless the
	// port is outside the inspected range.
	if hook != nil && (portFilter == nil || portFilter(dstPort)) {
		h.net.HookInvocations.Add(1)
		if v := hook(h.net, flow); v != Accept {
			h.net.NewConnDropped.Add(1)
			h.releaseEphemeral(srcPort)
			return nil, fmt.Errorf("%w: %s", ErrConnDropped, flow)
		}
	}
	h.net.NewConnAccepted.Add(1)

	c := &Conn{
		Tuple:   flow,
		SrcCred: cred.Clone(),
		DstCred: l.cred.Clone(),
		net:     h.net,
		srcHost: h,
	}
	// conntrack entries on both hosts cover both directions.
	dst.touch()
	dst.conntrack.add(flow)
	dst.conntrack.add(flow.reverse())
	h.conntrack.add(flow)
	h.conntrack.add(flow.reverse())
	l.enqueue(c)
	return c, nil
}

// Send transmits a payload from the dialer side. Established flows
// are validated against conntrack only — the per-packet fast path.
func (c *Conn) Send(data []byte) error {
	return c.send(data, true)
}

// SendReply transmits a payload from the acceptor side.
func (c *Conn) SendReply(data []byte) error {
	return c.send(data, false)
}

func (c *Conn) send(data []byte, fromSrc bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("%w: %s", ErrConnClosed, c.Tuple)
	}
	// conntrack lookup (cheap map hit) — no firewall hook.
	dst, err := c.net.Host(c.Tuple.DstHost)
	if err != nil {
		return err
	}
	if !dst.conntrack.established(c.Tuple) {
		return fmt.Errorf("%w: %s not in conntrack", ErrConnClosed, c.Tuple)
	}
	c.net.PacketsDelivered.Add(1)
	buf := append([]byte(nil), data...)
	if fromSrc {
		c.toDst = append(c.toDst, buf)
	} else {
		c.toSrc = append(c.toSrc, buf)
	}
	return nil
}

// Recv pops the next payload on the acceptor side.
func (c *Conn) Recv() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.toDst) == 0 {
		return nil, false
	}
	d := c.toDst[0]
	c.toDst = c.toDst[1:]
	return d, true
}

// RecvReply pops the next payload on the dialer side.
func (c *Conn) RecvReply() ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.toSrc) == 0 {
		return nil, false
	}
	d := c.toSrc[0]
	c.toSrc = c.toSrc[1:]
	return d, true
}

// Close tears the flow down and removes conntrack state.
func (c *Conn) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if dst, err := c.net.Host(c.Tuple.DstHost); err == nil {
		dst.conntrack.remove(c.Tuple)
		dst.conntrack.remove(c.Tuple.reverse())
	}
	c.srcHost.conntrack.remove(c.Tuple)
	c.srcHost.conntrack.remove(c.Tuple.reverse())
	c.srcHost.releaseEphemeral(c.Tuple.SrcPort)
}

// conntrack is the established-flow table.
type conntrack struct {
	mu    sync.RWMutex
	flows map[FlowTuple]bool
}

func newConntrack() *conntrack {
	return &conntrack{flows: make(map[FlowTuple]bool)}
}

func (ct *conntrack) add(f FlowTuple) {
	ct.mu.Lock()
	ct.flows[f] = true
	ct.mu.Unlock()
}

func (ct *conntrack) remove(f FlowTuple) {
	ct.mu.Lock()
	delete(ct.flows, f)
	ct.mu.Unlock()
}

func (ct *conntrack) reset() {
	ct.mu.Lock()
	clear(ct.flows)
	ct.mu.Unlock()
}

func (ct *conntrack) established(f FlowTuple) bool {
	ct.mu.RLock()
	defer ct.mu.RUnlock()
	return ct.flows[f]
}

// Established reports whether the flow is in this host's conntrack.
func (h *Host) Established(f FlowTuple) bool {
	return h.conntrack.established(f)
}
