package netsim

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/ids"
)

func cred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

func twoHosts(t *testing.T) (*Network, *Host, *Host) {
	t.Helper()
	n := NewNetwork()
	return n, n.AddHost("node1"), n.AddHost("node2")
}

func TestDialAndDataRoundtrip(t *testing.T) {
	_, h1, h2 := twoHosts(t)
	l, err := h2.Listen(cred(1000), TCP, 5000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := h1.Dial(cred(1000), TCP, "node2", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	sc, ok := l.Accept()
	if !ok {
		t.Fatal("no connection in backlog")
	}
	if d, ok := sc.Recv(); !ok || string(d) != "ping" {
		t.Errorf("recv %q %v", d, ok)
	}
	if err := sc.SendReply([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if d, ok := c.RecvReply(); !ok || string(d) != "pong" {
		t.Errorf("reply %q %v", d, ok)
	}
}

func TestDialRefusedNoListener(t *testing.T) {
	_, h1, _ := twoHosts(t)
	if _, err := h1.Dial(cred(1000), TCP, "node2", 9999); !errors.Is(err, ErrConnRefused) {
		t.Errorf("err = %v, want ErrConnRefused", err)
	}
	if _, err := h1.Dial(cred(1000), TCP, "ghost", 80); !errors.Is(err, ErrNoHost) {
		t.Errorf("err = %v, want ErrNoHost", err)
	}
}

func TestListenConflictsAndPrivilegedPorts(t *testing.T) {
	_, h1, _ := twoHosts(t)
	if _, err := h1.Listen(cred(1000), TCP, 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Listen(cred(2000), TCP, 5000); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("dup bind err = %v, want ErrAddrInUse", err)
	}
	// Same port, different proto is fine.
	if _, err := h1.Listen(cred(2000), UDP, 5000); err != nil {
		t.Errorf("udp bind: %v", err)
	}
	if _, err := h1.Listen(cred(1000), TCP, 80); err == nil {
		t.Errorf("non-root bound privileged port")
	}
	if _, err := h1.Listen(ids.RootCred(), TCP, 80); err != nil {
		t.Errorf("root privileged bind: %v", err)
	}
}

func TestListenerCloseReleasesPort(t *testing.T) {
	_, h1, _ := twoHosts(t)
	l, err := h1.Listen(cred(1000), TCP, 5000)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := h1.Listen(cred(2000), TCP, 5000); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestFirewallHookDropsAndStats(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	if _, err := h2.Listen(cred(1000), TCP, 5000); err != nil {
		t.Fatal(err)
	}
	dropAll := func(_ *Network, _ FlowTuple) Verdict { return Drop }
	h2.SetFirewall(dropAll, nil)
	if _, err := h1.Dial(cred(1000), TCP, "node2", 5000); !errors.Is(err, ErrConnDropped) {
		t.Errorf("err = %v, want ErrConnDropped", err)
	}
	if n.HookInvocations.Load() != 1 || n.NewConnDropped.Load() != 1 {
		t.Errorf("stats: hooks=%d dropped=%d", n.HookInvocations.Load(), n.NewConnDropped.Load())
	}
	h2.ClearFirewall()
	if _, err := h1.Dial(cred(1000), TCP, "node2", 5000); err != nil {
		t.Errorf("dial after ClearFirewall: %v", err)
	}
}

func TestPortFilterSkipsHook(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	if _, err := h2.Listen(ids.RootCred(), TCP, 22); err != nil {
		t.Fatal(err)
	}
	dropAll := func(_ *Network, _ FlowTuple) Verdict { return Drop }
	h2.SetFirewall(dropAll, func(p int) bool { return p >= 1024 })
	// Port 22 is below the inspected range: hook not consulted.
	if _, err := h1.Dial(cred(1000), TCP, "node2", 22); err != nil {
		t.Errorf("dial to uninspected port: %v", err)
	}
	if n.HookInvocations.Load() != 0 {
		t.Errorf("hook invoked for filtered port")
	}
}

func TestEstablishedTrafficBypassesHook(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	if _, err := h2.Listen(cred(1000), TCP, 5000); err != nil {
		t.Fatal(err)
	}
	acceptOnce := func(_ *Network, _ FlowTuple) Verdict { return Accept }
	h2.SetFirewall(acceptOnce, nil)
	c, err := h1.Dial(cred(1000), TCP, "node2", 5000)
	if err != nil {
		t.Fatal(err)
	}
	before := n.HookInvocations.Load()
	for i := 0; i < 100; i++ {
		if err := c.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n.HookInvocations.Load() != before {
		t.Errorf("established packets hit the hook")
	}
	if n.PacketsDelivered.Load() != 100 {
		t.Errorf("packets = %d", n.PacketsDelivered.Load())
	}
}

func TestCloseRemovesConntrack(t *testing.T) {
	_, h1, h2 := twoHosts(t)
	if _, err := h2.Listen(cred(1000), TCP, 5000); err != nil {
		t.Fatal(err)
	}
	c, err := h1.Dial(cred(1000), TCP, "node2", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Established(c.Tuple) {
		t.Fatal("flow not in conntrack")
	}
	c.Close()
	if h2.Established(c.Tuple) {
		t.Errorf("flow in conntrack after close")
	}
	if err := c.Send([]byte("x")); !errors.Is(err, ErrConnClosed) {
		t.Errorf("send after close err = %v", err)
	}
	// Idempotent close.
	c.Close()
}

func TestIdentQueries(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	alice := cred(1000)
	if _, err := h2.Listen(alice, TCP, 5000); err != nil {
		t.Fatal(err)
	}
	got, err := n.Ident("node2", TCP, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != 1000 {
		t.Errorf("ident uid = %d", got.UID)
	}
	// Connector-side ident: dial, then query the ephemeral port.
	c, err := h1.Dial(cred(2000), TCP, "node2", 5000)
	if err != nil {
		t.Fatal(err)
	}
	src, err := n.Ident("node1", TCP, c.Tuple.SrcPort)
	if err != nil {
		t.Fatal(err)
	}
	if src.UID != 2000 {
		t.Errorf("connector ident uid = %d", src.UID)
	}
	// Unknown port fails.
	if _, err := n.Ident("node1", TCP, 1); !errors.Is(err, ErrIdentUnavailable) {
		t.Errorf("unknown port ident err = %v", err)
	}
}

func TestEphemeralPortsUniqueUnderConcurrency(t *testing.T) {
	_, h1, h2 := twoHosts(t)
	if _, err := h2.Listen(cred(1000), TCP, 5000); err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	ports := make(chan int, workers*20)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c, err := h1.Dial(cred(1000), TCP, "node2", 5000)
				if err != nil {
					t.Error(err)
					return
				}
				ports <- c.Tuple.SrcPort
			}
		}()
	}
	wg.Wait()
	close(ports)
	seen := make(map[int]bool)
	for p := range ports {
		if seen[p] {
			t.Fatalf("duplicate ephemeral port %d", p)
		}
		seen[p] = true
	}
}

func TestAbstractSocketResidualChannel(t *testing.T) {
	_, h1, _ := twoHosts(t)
	alice, bob := cred(1000), cred(2000)
	s, err := h1.ListenAbstract(alice, "mpi-coordinator")
	if err != nil {
		t.Fatal(err)
	}
	// A different user CAN send — no permission check exists; this is
	// the paper's acknowledged residual channel.
	if err := h1.DialAbstract(bob, "mpi-coordinator", []byte("crosstalk")); err != nil {
		t.Fatalf("abstract dial should succeed (residual channel): %v", err)
	}
	d, from, ok := s.Recv()
	if !ok || string(d) != "crosstalk" || from != 2000 {
		t.Errorf("recv = %q from %d ok=%v", d, from, ok)
	}
	// Names leak to everyone.
	if names := h1.AbstractNames(); len(names) != 1 || names[0] != "mpi-coordinator" {
		t.Errorf("names = %v", names)
	}
	if err := h1.DialAbstract(bob, "ghost", nil); !errors.Is(err, ErrNoAbstract) {
		t.Errorf("dial ghost err = %v", err)
	}
	if _, err := h1.ListenAbstract(bob, "mpi-coordinator"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("dup abstract err = %v", err)
	}
	h1.CloseAbstract("mpi-coordinator")
	if len(h1.AbstractNames()) != 0 {
		t.Errorf("names after close")
	}
}

func TestRDMAQPViaTCPControlled(t *testing.T) {
	_, h1, h2 := twoHosts(t)
	if _, err := h2.Listen(cred(1000), TCP, 18515); err != nil {
		t.Fatal(err)
	}
	dropAll := func(_ *Network, _ FlowTuple) Verdict { return Drop }
	h2.SetFirewall(dropAll, nil)
	// QP setup over TCP is blocked by the firewall...
	if _, err := h1.SetupQP(cred(2000), QPViaTCP, "node2", 18515); !errors.Is(err, ErrConnDropped) {
		t.Errorf("tcp-cm setup err = %v, want ErrConnDropped", err)
	}
	// ...but the native CM bypasses it: the residual channel.
	qp, err := h1.SetupQP(cred(2000), QPViaNativeCM, "node2", 0)
	if err != nil {
		t.Fatalf("native-cm setup: %v", err)
	}
	if err := qp.Write([]byte("rdma-data")); err != nil {
		t.Errorf("qp write: %v", err)
	}
	qp.Close()
	if _, err := h1.SetupQP(cred(2000), QPViaNativeCM, "ghost", 0); !errors.Is(err, ErrNoHost) {
		t.Errorf("native-cm to ghost err = %v", err)
	}
}

func TestRDMAQPViaTCPAllowedWorks(t *testing.T) {
	_, h1, h2 := twoHosts(t)
	if _, err := h2.Listen(cred(1000), TCP, 18515); err != nil {
		t.Fatal(err)
	}
	qp, err := h1.SetupQP(cred(1000), QPViaTCP, "node2", 18515)
	if err != nil {
		t.Fatal(err)
	}
	if err := qp.Write([]byte("bulk")); err != nil {
		t.Errorf("write: %v", err)
	}
	qp.Close()
	if err := qp.Write([]byte("after-close")); err == nil {
		t.Errorf("write after close succeeded")
	}
}

func TestStringers(t *testing.T) {
	if TCP.String() != "tcp" || UDP.String() != "udp" {
		t.Error("Proto.String")
	}
	if Accept.String() != "ACCEPT" || Drop.String() != "DROP" {
		t.Error("Verdict.String")
	}
	if QPViaTCP.String() != "tcp-cm" || QPViaNativeCM.String() != "native-cm" {
		t.Error("QPSetupMode.String")
	}
	f := FlowTuple{Proto: TCP, SrcHost: "a", SrcPort: 1, DstHost: "b", DstPort: 2}
	if f.String() == "" || f.reverse().SrcHost != "b" {
		t.Error("FlowTuple")
	}
	n := NewNetwork()
	n.AddHost("b")
	n.AddHost("a")
	if hosts := n.Hosts(); len(hosts) != 2 || hosts[0] != "a" {
		t.Errorf("Hosts = %v", hosts)
	}
}

func TestResetStats(t *testing.T) {
	n, h1, h2 := twoHosts(t)
	if _, err := h2.Listen(cred(1000), TCP, 5000); err != nil {
		t.Fatal(err)
	}
	c, _ := h1.Dial(cred(1000), TCP, "node2", 5000)
	_ = c.Send([]byte("x"))
	n.ResetStats()
	if n.PacketsDelivered.Load() != 0 || n.NewConnAccepted.Load() != 0 {
		t.Errorf("stats not reset")
	}
}

// Network.Reset must drop sockets, conntrack, ephemeral ports and
// abstract sockets while preserving installed firewalls.
func TestNetworkReset(t *testing.T) {
	n := NewNetwork()
	h1, h2 := n.AddHost("a"), n.AddHost("b")
	alice := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	denyAll := func(net *Network, f FlowTuple) Verdict { return Drop }
	h2.SetFirewall(denyAll, func(port int) bool { return port >= 20000 })
	l, err := h2.Listen(alice, TCP, 9000)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := h1.Dial(alice, TCP, "b", 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.ListenAbstract(alice, "coord"); err != nil {
		t.Fatal(err)
	}
	n.Reset()
	if n.NewConnAccepted.Load() != 0 || n.PacketsDelivered.Load() != 0 {
		t.Error("stats survived Reset")
	}
	if err := conn.Send([]byte("x")); err == nil {
		t.Error("pre-reset connection still in conntrack")
	}
	if _, err := h1.Dial(alice, TCP, "b", 9000); err == nil {
		t.Error("pre-reset listener survived Reset")
	}
	if err := h2.DialAbstract(alice, "coord", []byte("x")); err == nil {
		t.Error("abstract socket survived Reset")
	}
	// The firewall hook survives (assembly wiring): a fresh listener on
	// an inspected port is still filtered.
	if _, err := h2.Listen(alice, TCP, 20001); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Dial(alice, TCP, "b", 20001); err == nil {
		t.Error("firewall hook lost across Reset")
	}
	_ = l
}
