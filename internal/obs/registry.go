// Package obs is the stack's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) whose
// state snapshots and merges like the streaming statistics in
// internal/metrics, plus a deterministic trace layer (trace.go) that
// emits NDJSON phase spans whose identity and ordering derive from
// trial coordinates and simulation ticks — never from wall-clock or
// goroutine scheduling.
//
// Two contracts shape everything here:
//
//   - Hot-path neutrality. Every handle (Counter, Gauge, Histogram,
//     Recorder) is nil-safe: a nil handle no-ops, so instrumented code
//     runs unconditionally and pays one predictable branch when
//     observability is off. Enabled handles are single atomic
//     operations and never allocate — pinned by the allocation audit
//     in registry_test.go — so campaign instrumentation cannot perturb
//     the trial hot path the lifecycle benchmark gates.
//
//   - Determinism neutrality. Nothing in this package draws from an
//     RNG, reorders work, or feeds back into simulation state; metrics
//     and traces observe a campaign without changing a byte of its
//     canonical output (gated by fleet's byte-identity tests and CI).
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric handle. The zero value
// is ready to use; a nil Counter silently discards updates, which is
// how instrumented code stays branch-cheap when no registry is wired.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add folds n in. Negative deltas are a programming error but are not
// checked on the hot path; the Prometheus contract (counters only go
// up) is the caller's to keep.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 for a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-or-adjust metric handle (queue depths, in-flight
// counts). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts by delta (negative allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge (0 for a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets defined by
// ascending upper bounds (a final +Inf bucket is implicit). The
// layout is fixed at registration so shard snapshots merge exactly,
// mirroring metrics.Histogram's layout-is-part-of-the-state rule.
// Observe is lock-free: one binary search plus two atomic adds.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe counts one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Branchless-enough bucket pick: first bound >= v, else +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Label is one name="value" pair on a metric instance.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// metric is one registered instance: a (name, labels) identity plus
// its typed handle.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// key is the registry identity: name plus the sorted label pairs.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// Registry holds registered metrics. Registration is idempotent —
// asking for the same (name, labels) returns the existing handle, so
// long-lived services re-enter instrumented code paths without
// double-registering — and kind/layout conflicts panic loudly at
// registration time, never silently at render time. A nil *Registry
// returns nil handles from every constructor, which is the "obs off"
// mode: instrumented code runs unchanged and every update no-ops.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	metrics []*metric
	// helpByName pins one help string and kind per family name:
	// Prometheus emits HELP/TYPE once per family, so two instances of
	// a name must agree.
	kindByName map[string]metricKind
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric), kindByName: make(map[string]metricKind)}
}

// labelPairs converts a variadic k,v list, sorted by name for a
// canonical identity.
func labelPairs(name string, kv []string) []Label {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: labels must be name,value pairs (got %d strings)", name, len(kv)))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Name: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(a, b int) bool { return labels[a].Name < labels[b].Name })
	return labels
}

// register resolves or creates the (name, labels) instance. init runs
// under the registry lock so concurrent registrations of the same
// instance resolve to one handle — handle creation outside the lock
// would let two racing registrars each install (and then update) a
// different instrument.
func (r *Registry) register(name, help string, kind metricKind, kv []string, init func(*metric)) *metric {
	labels := labelPairs(name, kv)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.byKey[key]; m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		init(m)
		return m
	}
	if k, ok := r.kindByName[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric family %q re-registered as %s (was %s)", name, kind, k))
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels}
	init(m)
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	r.kindByName[name] = kind
	return m
}

// Counter registers (or fetches) a counter. kv is an optional flat
// list of label name,value pairs. Nil registries return nil handles.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindCounter, kv, func(m *metric) {
		if m.counter == nil {
			m.counter = &Counter{}
		}
	})
	return m.counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindGauge, kv, func(m *metric) {
		if m.gauge == nil {
			m.gauge = &Gauge{}
		}
	})
	return m.gauge
}

// HistogramMetric registers (or fetches) a histogram over the given
// ascending upper bounds (+Inf implicit). Re-registration must repeat
// the identical layout — the same rule metrics.Histogram.Merge
// enforces, moved to registration time.
func (r *Registry) HistogramMetric(name, help string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds must ascend (bound %d: %v after %v)", name, i, bounds[i], bounds[i-1]))
		}
	}
	m := r.register(name, help, kindHistogram, kv, func(m *metric) {
		if m.hist == nil {
			m.hist = &Histogram{
				bounds: append([]float64(nil), bounds...),
				counts: make([]atomic.Int64, len(bounds)+1),
			}
		} else if !equalBounds(m.hist.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with a different bucket layout", name))
		}
	})
	return m.hist
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterSnap is one counter or gauge instance's snapshot value.
type CounterSnap struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeSnap shares CounterSnap's shape; only merge semantics differ
// (gauges sum on merge: a per-shard depth merges to the fleet total).
type GaugeSnap = CounterSnap

// HistogramSnap is one histogram instance's snapshot: the fixed
// layout plus non-cumulative per-bucket counts (the last count is the
// +Inf bucket). Prometheus rendering cumulates at write time.
type HistogramSnap struct {
	Name   string    `json:"name"`
	Help   string    `json:"help,omitempty"`
	Labels []Label   `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a registry's point-in-time state: plain data that
// marshals to JSON, merges with other snapshots (shard registries
// combine to exactly what one registry would have accumulated —
// pinned by TestSnapshotMergeEquivalence), and renders to Prometheus
// text. Entries are sorted by (name, labels) so identical state
// always produces identical bytes.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current values. Individual reads
// are atomic; the snapshot as a whole is not a consistent cut across
// metrics, which is the standard scrape contract.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterSnap{Name: m.name, Help: m.help, Labels: m.labels, Value: m.counter.Value()})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeSnap{Name: m.name, Help: m.help, Labels: m.labels, Value: m.gauge.Value()})
		case kindHistogram:
			h := HistogramSnap{
				Name:   m.name,
				Help:   m.help,
				Labels: m.labels,
				Bounds: append([]float64(nil), m.hist.bounds...),
				Counts: make([]int64, len(m.hist.counts)),
				Sum:    math.Float64frombits(m.hist.sum.Load()),
				Count:  m.hist.count.Load(),
			}
			for i := range m.hist.counts {
				h.Counts[i] = m.hist.counts[i].Load()
			}
			s.Histograms = append(s.Histograms, h)
		}
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(a, b int) bool { return snapLess(s.Counters[a], s.Counters[b]) })
	sort.Slice(s.Gauges, func(a, b int) bool { return snapLess(s.Gauges[a], s.Gauges[b]) })
	sort.Slice(s.Histograms, func(a, b int) bool {
		return metricKey(s.Histograms[a].Name, s.Histograms[a].Labels) < metricKey(s.Histograms[b].Name, s.Histograms[b].Labels)
	})
}

func snapLess(a, b CounterSnap) bool {
	return metricKey(a.Name, a.Labels) < metricKey(b.Name, b.Labels)
}

// Merge folds another snapshot in: counters and histograms add,
// gauges sum (a split gauge recombines to the whole), and instances
// present on only one side carry over. Histogram layouts must match —
// the same rule as metrics.Histogram.Merge.
func (s *Snapshot) Merge(o *Snapshot) error {
	if o == nil {
		return nil
	}
	s.Counters = mergeSnaps(s.Counters, o.Counters)
	s.Gauges = mergeSnaps(s.Gauges, o.Gauges)
	byKey := make(map[string]int, len(s.Histograms))
	for i := range s.Histograms {
		byKey[metricKey(s.Histograms[i].Name, s.Histograms[i].Labels)] = i
	}
	for _, oh := range o.Histograms {
		key := metricKey(oh.Name, oh.Labels)
		i, ok := byKey[key]
		if !ok {
			c := oh
			c.Bounds = append([]float64(nil), oh.Bounds...)
			c.Counts = append([]int64(nil), oh.Counts...)
			s.Histograms = append(s.Histograms, c)
			byKey[key] = len(s.Histograms) - 1
			continue
		}
		h := &s.Histograms[i]
		if !equalBounds(h.Bounds, oh.Bounds) || len(h.Counts) != len(oh.Counts) {
			return fmt.Errorf("obs: histogram %q bucket layout mismatch on merge", oh.Name)
		}
		for j, c := range oh.Counts {
			h.Counts[j] += c
		}
		h.Sum += oh.Sum
		h.Count += oh.Count
	}
	s.sort()
	return nil
}

func mergeSnaps(dst, src []CounterSnap) []CounterSnap {
	byKey := make(map[string]int, len(dst))
	for i := range dst {
		byKey[metricKey(dst[i].Name, dst[i].Labels)] = i
	}
	for _, o := range src {
		key := metricKey(o.Name, o.Labels)
		if i, ok := byKey[key]; ok {
			dst[i].Value += o.Value
			continue
		}
		dst = append(dst, o)
		byKey[key] = len(dst) - 1
	}
	return dst
}

// JSON renders the snapshot in the repo's artifact form: indented,
// trailing newline.
func (s *Snapshot) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeSnapshot parses a snapshot previously rendered by JSON, so
// dumped registries can cross process boundaries and still merge.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	return &s, nil
}
