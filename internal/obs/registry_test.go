package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// feed applies a deterministic op stream to a registry; partition i
// of n applies only its share. Used to prove parallel shard
// registries merge to exactly what one registry would accumulate.
func feed(r *Registry, part, parts int) {
	trials := r.Counter("fleet_trials_completed_total", "trials completed")
	retries := r.Counter("fleet_trial_panics_total", "panicking attempts")
	depth := r.Gauge("fleetd_queue_depth", "queued campaigns")
	ticks := r.HistogramMetric("fleet_trial_ticks", "trial makespan", []float64{10, 100, 1000})
	perShard := r.Counter("shard_attempts_total", "attempts", "shard", "0")
	for i := 0; i < 1000; i++ {
		if i%parts != part {
			continue
		}
		trials.Inc()
		if i%7 == 0 {
			retries.Add(2)
		}
		depth.Add(1)
		ticks.Observe(float64(i % 1500))
		if i%3 == 0 {
			perShard.Inc()
		}
	}
}

func TestSnapshotMergeEquivalence(t *testing.T) {
	single := NewRegistry()
	feed(single, 0, 1)
	want := single.Snapshot()

	const shards = 4
	regs := make([]*Registry, shards)
	var wg sync.WaitGroup
	for i := range regs {
		regs[i] = NewRegistry()
		wg.Add(1)
		go func(i int) { defer wg.Done(); feed(regs[i], i, shards) }(i)
	}
	wg.Wait()

	merged := regs[0].Snapshot()
	for _, r := range regs[1:] {
		if err := merged.Merge(r.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}

	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := merged.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("merged shard snapshots differ from the single-registry snapshot:\nwant:\n%s\ngot:\n%s", wantJSON, gotJSON)
	}
}

func TestSnapshotMergeDisjointInstances(t *testing.T) {
	a := NewRegistry()
	a.Counter("shard_attempts_total", "attempts", "shard", "0").Add(3)
	b := NewRegistry()
	b.Counter("shard_attempts_total", "attempts", "shard", "1").Add(5)
	s := a.Snapshot()
	if err := s.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if len(s.Counters) != 2 {
		t.Fatalf("want 2 labeled instances after merge, got %d", len(s.Counters))
	}
	if s.Counters[0].Value+s.Counters[1].Value != 8 {
		t.Fatalf("merged values wrong: %+v", s.Counters)
	}
}

func TestSnapshotMergeLayoutMismatch(t *testing.T) {
	a := NewRegistry()
	a.HistogramMetric("h", "", []float64{1, 2}).Observe(1)
	b := NewRegistry()
	b.HistogramMetric("h", "", []float64{1, 3}).Observe(1)
	if err := a.Snapshot().Merge(b.Snapshot()); err == nil {
		t.Fatal("merging histograms with different layouts must error")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	feed(r, 0, 1)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("snapshot JSON does not round-trip")
	}
	// A round-tripped snapshot still merges: dump-and-recombine is the
	// cross-process path fleetrun -metrics artifacts take.
	if err := back.Merge(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x")
	c2 := r.Counter("x_total", "x")
	if c1 != c2 {
		t.Fatal("re-registering the same counter must return the same handle")
	}
	h1 := r.HistogramMetric("h", "", []float64{1, 2, 3})
	h2 := r.HistogramMetric("h", "", []float64{1, 2, 3})
	if h1 != h2 {
		t.Fatal("re-registering the same histogram must return the same handle")
	}
	l1 := r.Counter("labeled_total", "", "shard", "1")
	l2 := r.Counter("labeled_total", "", "shard", "2")
	if l1 == l2 {
		t.Fatal("different label values must be distinct instances")
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("a_total", "")
	mustPanic("kind conflict", func() { r.Gauge("a_total", "") })
	r.HistogramMetric("h", "", []float64{1, 2})
	mustPanic("layout conflict", func() { r.HistogramMetric("h", "", []float64{1, 2, 3}) })
	mustPanic("odd labels", func() { r.Counter("b_total", "", "only-a-name") })
	mustPanic("descending bounds", func() { r.HistogramMetric("h2", "", []float64{2, 1}) })
	mustPanic("family kind conflict across labels", func() { r.Gauge("h", "", "x", "y") })
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("y", "")
	h := r.HistogramMetric("z", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestHotPathAllocs is the allocation audit behind the trial-hot-path
// contract: an enabled counter/gauge/histogram update never
// allocates, and neither does the disabled (nil-handle) path — so
// wiring obs through the fleet executor cannot move the lifecycle
// benchmark's allocs/trial.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.HistogramMetric("h", "", []float64{1, 10, 100, 1000})
	cases := []struct {
		name string
		op   func()
	}{
		{"counter.Add", func() { c.Add(3) }},
		{"gauge.Set", func() { g.Set(7) }},
		{"histogram.Observe", func() { h.Observe(42) }},
		{"nil counter.Add", func() { (*Counter)(nil).Add(3) }},
		{"nil histogram.Observe", func() { (*Histogram)(nil).Observe(3) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramMetric("h", "", []float64{10, 20, 30})
	for _, v := range []float64{5, 10, 10.5, 25, 30, 31, 1e9} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms[0]
	want := []int64{2, 1, 2, 2} // ≤10: {5,10}; ≤20: {10.5}; ≤30: {25,30}; +Inf: {31,1e9}
	if len(snap.Counts) != len(want) {
		t.Fatalf("counts length %d, want %d", len(snap.Counts), len(want))
	}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Fatalf("bucket %d: got %d want %d (all: %v)", i, snap.Counts[i], want[i], snap.Counts)
		}
	}
	if snap.Count != 7 {
		t.Fatalf("count %d, want 7", snap.Count)
	}
	if snap.Sum != 5+10+10.5+25+30+31+1e9 {
		t.Fatalf("sum %v wrong", snap.Sum)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	// Two registries registering the same metrics in different orders
	// must snapshot to identical bytes.
	a := NewRegistry()
	a.Counter("b_total", "").Add(1)
	a.Counter("a_total", "").Add(2)
	a.Gauge("z", "").Set(3)
	b := NewRegistry()
	b.Gauge("z", "").Set(3)
	b.Counter("a_total", "").Add(2)
	b.Counter("b_total", "").Add(1)
	aj, _ := a.Snapshot().JSON()
	bj, _ := b.Snapshot().JSON()
	if string(aj) != string(bj) {
		t.Fatalf("registration order leaked into snapshot bytes:\n%s\nvs\n%s", aj, bj)
	}
	var decoded Snapshot
	if err := json.Unmarshal(aj, &decoded); err != nil {
		t.Fatal(err)
	}
}

// Concurrent registration of the same instance must resolve to one
// handle — fleetd shares one registry across concurrently-launched
// in-process shard attempts, each of which re-registers the fleet
// bundle. (Run with -race; before handle init moved under the
// registry lock, racing registrars could each install their own
// instrument and lose the other's counts.)
func TestConcurrentRegistrationSharesHandles(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "shared counter")
			h := r.HistogramMetric("shared_hist", "shared histogram", []float64{1, 2})
			g := r.Gauge("shared_gauge", "shared gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(1)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters[0].Value; got != workers*perWorker {
		t.Errorf("shared_total = %d, want %d (a racing registration dropped a handle)", got, workers*perWorker)
	}
	if got := s.Histograms[0].Count; got != workers*perWorker {
		t.Errorf("shared_hist count = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauges[0].Value; got != workers*perWorker {
		t.Errorf("shared_gauge = %d, want %d", got, workers*perWorker)
	}
}
