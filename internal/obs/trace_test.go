package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderSpans(t *testing.T) {
	r := &Recorder{}
	r.StartAttempt("s1", 3, 1)
	r.Begin(0)
	r.End(PhaseReset, 0)
	r.Begin(0)
	r.End(PhaseMix, 0)
	r.Begin(0)
	r.End(PhaseDrain, 120)
	spans := r.Take()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	for i, sp := range spans {
		if sp.Seq != i {
			t.Errorf("span %d: seq %d", i, sp.Seq)
		}
		if sp.Scenario != "s1" || sp.Rep != 3 || sp.Attempt != 1 {
			t.Errorf("span %d: wrong identity %+v", i, sp)
		}
		if sp.WallNS < 0 {
			t.Errorf("span %d: negative wall %d", i, sp.WallNS)
		}
	}
	if spans[2].Phase != PhaseDrain || spans[2].StartTick != 0 || spans[2].EndTick != 120 {
		t.Errorf("drain span wrong: %+v", spans[2])
	}
	if got := r.Take(); got != nil {
		t.Fatalf("Take must reset the buffer, got %d spans", len(got))
	}
}

func TestRecorderRetriedAttemptOrdering(t *testing.T) {
	r := &Recorder{}
	r.StartAttempt("s", 0, 1)
	r.Begin(0)
	r.End(PhaseReset, 0)
	r.Begin(0) // attempt 1 panics mid-mix: half-open phase dropped
	r.Abandon()
	r.StartAttempt("s", 0, 2)
	r.Begin(0)
	r.End(PhaseReset, 0)
	r.Begin(0)
	r.End(PhaseMix, 0)
	spans := r.Take()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans (1 from attempt 1, 2 from attempt 2), got %d", len(spans))
	}
	if spans[0].Attempt != 1 || spans[1].Attempt != 2 || spans[2].Attempt != 2 {
		t.Fatalf("attempt ordering wrong: %+v", spans)
	}
	if spans[1].Seq != 0 {
		t.Fatalf("a new attempt must restart the sequence, got seq %d", spans[1].Seq)
	}
}

func TestRecorderEndWithoutBegin(t *testing.T) {
	r := &Recorder{}
	r.StartAttempt("s", 0, 1)
	r.End(PhaseReset, 0) // no Begin: ignored
	if spans := r.Take(); spans != nil {
		t.Fatalf("End without Begin must record nothing, got %+v", spans)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.StartAttempt("s", 0, 1)
	r.Begin(0)
	r.End(PhaseReset, 0)
	r.Abandon()
	if r.Take() != nil {
		t.Fatal("nil recorder must return nil spans")
	}
}

func TestTracerNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	spans := []Span{
		{Scenario: "a", Rep: 0, Attempt: 1, Seq: 0, Phase: PhaseReset, StartTick: 0, EndTick: 0, WallNS: 10},
		{Scenario: "a", Rep: 0, Attempt: 1, Seq: 1, Phase: PhaseDrain, StartTick: 0, EndTick: 64, WallNS: 20},
	}
	if err := tr.Write(spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var back Span
		if err := json.Unmarshal([]byte(line), &back); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if back != spans[i] {
			t.Fatalf("line %d round-trip mismatch: %+v vs %+v", i, back, spans[i])
		}
	}
	if (*Tracer)(nil).Write(spans) != nil {
		t.Fatal("nil tracer must no-op")
	}
}

func TestAggregatePhases(t *testing.T) {
	spans := []Span{
		{Scenario: "a", Phase: PhaseDrain, StartTick: 0, EndTick: 100, WallNS: 50},
		{Scenario: "a", Phase: PhaseReset, StartTick: 0, EndTick: 0, WallNS: 10},
		{Scenario: "a", Phase: PhaseDrain, StartTick: 0, EndTick: 300, WallNS: 150},
		{Scenario: "b", Phase: PhaseReset, StartTick: 0, EndTick: 0, WallNS: 30},
		{Scenario: "", Phase: PhaseCheckpoint, Seq: 1, WallNS: 5},
	}
	costs := AggregatePhases(spans)
	if len(costs) != 4 {
		t.Fatalf("want 4 cells, got %d: %+v", len(costs), costs)
	}
	// Scenario order: first appearance (a, b), checkpoint group last;
	// phase order within a scenario is canonical (reset before drain).
	if costs[0].Scenario != "a" || costs[0].Phase != PhaseReset {
		t.Fatalf("cell 0 wrong: %+v", costs[0])
	}
	if costs[1].Scenario != "a" || costs[1].Phase != PhaseDrain {
		t.Fatalf("cell 1 wrong: %+v", costs[1])
	}
	if costs[1].Count != 2 || costs[1].Ticks != 400 || costs[1].WallNS != 200 {
		t.Fatalf("drain aggregation wrong: %+v", costs[1])
	}
	if costs[1].MeanWallNS() != 100 || costs[1].MeanTicks() != 200 {
		t.Fatalf("means wrong: %+v", costs[1])
	}
	if costs[3].Scenario != "" || costs[3].Phase != PhaseCheckpoint {
		t.Fatalf("checkpoint cell must sort last: %+v", costs[3])
	}
}
