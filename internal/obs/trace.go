package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// The deterministic trace layer. A Span records one trial phase; its
// identity — (scenario, rep, attempt, seq, phase) — and its tick
// bounds come from trial coordinates and the simulation clock, both
// of which are fixed by the campaign's determinism contract. The ONLY
// nondeterministic field is WallNS, the wall-clock duration, which is
// excluded from determinism comparison by construction: strip (or
// zero) wall_ns and two traces of the same (campaign, seed) are
// byte-identical across worker counts, pooling modes and resumes of
// the re-executed trials. CI enforces exactly that with sed + cmp.

// Trial phase names, in canonical per-trial order. Attack appears
// only in attacked scenarios; checkpoint spans are run-level (emitted
// after every trial group, in write order) rather than per-trial.
const (
	PhaseReset      = "reset"      // cluster acquisition: pooled Reset or fresh build
	PhaseMix        = "mix"        // user provisioning + mix build + submission
	PhaseAttack     = "attack"     // adversary campaign execution (attacked scenarios)
	PhaseDrain      = "drain"      // scheduler drain to the horizon
	PhaseAggregate  = "aggregate"  // one-trial aggregate construction
	PhaseCheckpoint = "checkpoint" // one sidecar write (periodic or final)
)

// Phases lists the phase names in canonical order, for renderers that
// want a stable column/row order.
var Phases = []string{PhaseReset, PhaseMix, PhaseAttack, PhaseDrain, PhaseAggregate, PhaseCheckpoint}

// Span is one traced phase of one trial attempt (or one checkpoint
// write, with Scenario "" and Seq = the write's 1-based ordinal).
type Span struct {
	Scenario  string `json:"scenario"`
	Rep       int    `json:"rep"`
	Attempt   int    `json:"attempt"`
	Seq       int    `json:"seq"`
	Phase     string `json:"phase"`
	StartTick int64  `json:"start_tick"`
	EndTick   int64  `json:"end_tick"`
	// WallNS is the phase's wall-clock duration. It is the one field
	// excluded from determinism comparison — zero it and identical
	// campaigns yield identical traces.
	WallNS int64 `json:"wall_ns"`
}

// Recorder accumulates one trial's spans on a single worker
// goroutine. A nil Recorder no-ops every method, so the fleet hot
// path records phases unconditionally and pays only nil checks when
// tracing is off. The span buffer is reused across trials via Take.
type Recorder struct {
	spans    []Span
	scenario string
	rep      int
	attempt  int
	seq      int
	started  bool
	wallFrom time.Time
	tickFrom int64
}

// StartAttempt keys subsequent spans to (scenario, rep, attempt) and
// restarts the phase sequence. Spans from earlier attempts of the
// same trial stay buffered: a trial's trace shows every attempt,
// retries included, in attempt order.
func (r *Recorder) StartAttempt(scenario string, rep, attempt int) {
	if r == nil {
		return
	}
	r.scenario, r.rep, r.attempt = scenario, rep, attempt
	r.seq = 0
	r.started = false
}

// Begin opens a phase at the given simulation tick.
func (r *Recorder) Begin(tick int64) {
	if r == nil {
		return
	}
	r.started = true
	r.tickFrom = tick
	r.wallFrom = time.Now()
}

// End closes the open phase, appending its span. An End without a
// Begin is ignored (a panicked attempt may unwind mid-phase; its
// half-open phase is deliberately dropped, keeping span identity
// deterministic under chaos-injected panics).
func (r *Recorder) End(phase string, tick int64) {
	if r == nil || !r.started {
		return
	}
	r.started = false
	r.spans = append(r.spans, Span{
		Scenario:  r.scenario,
		Rep:       r.rep,
		Attempt:   r.attempt,
		Seq:       r.seq,
		Phase:     phase,
		StartTick: r.tickFrom,
		EndTick:   tick,
		WallNS:    time.Since(r.wallFrom).Nanoseconds(),
	})
	r.seq++
}

// Abandon drops any half-open phase (after a recovered panic).
func (r *Recorder) Abandon() {
	if r == nil {
		return
	}
	r.started = false
}

// Take returns the buffered spans as a fresh copy and resets the
// buffer for the next trial. Nil recorders return nil.
func (r *Recorder) Take() []Span {
	if r == nil || len(r.spans) == 0 {
		return nil
	}
	out := append([]Span(nil), r.spans...)
	r.spans = r.spans[:0]
	return out
}

// Tracer serializes spans as NDJSON: one JSON object per line, in
// exactly the order Write receives them. The fleet executor hands it
// spans in trial-index order (then checkpoint writes in write order),
// which is what makes the file deterministic modulo wall_ns.
type Tracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTracer wraps w.
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// Write emits the spans, one NDJSON line each.
func (t *Tracer) Write(spans []Span) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bw := bufio.NewWriter(t.w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return fmt.Errorf("obs: encoding span: %w", err)
		}
	}
	return bw.Flush()
}

// PhaseCost aggregates every span of one (scenario, phase) cell:
// trial-phase totals for the per-scenario cost table fleetrun renders
// after a traced run.
type PhaseCost struct {
	Scenario string
	Phase    string
	Count    int64 // spans (≈ trials, retries included)
	Ticks    int64 // total simulation ticks spanned
	WallNS   int64 // total wall time
}

// MeanWallNS is the average wall cost per span.
func (p PhaseCost) MeanWallNS() int64 {
	if p.Count == 0 {
		return 0
	}
	return p.WallNS / p.Count
}

// MeanTicks is the average simulated ticks per span.
func (p PhaseCost) MeanTicks() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Ticks) / float64(p.Count)
}

// AggregatePhases folds spans into per-(scenario, phase) costs.
// Scenarios appear in first-appearance order (campaign order, since
// spans arrive in trial-index order); phases follow the canonical
// Phases order within each scenario. Checkpoint spans (scenario "")
// group under the empty scenario name, last.
func AggregatePhases(spans []Span) []PhaseCost {
	type cell struct{ scenario, phase string }
	agg := make(map[cell]*PhaseCost)
	scenarioOrder := []string{}
	seen := make(map[string]bool)
	for i := range spans {
		sp := &spans[i]
		if !seen[sp.Scenario] {
			seen[sp.Scenario] = true
			scenarioOrder = append(scenarioOrder, sp.Scenario)
		}
		key := cell{sp.Scenario, sp.Phase}
		pc := agg[key]
		if pc == nil {
			pc = &PhaseCost{Scenario: sp.Scenario, Phase: sp.Phase}
			agg[key] = pc
		}
		pc.Count++
		pc.Ticks += sp.EndTick - sp.StartTick
		pc.WallNS += sp.WallNS
	}
	// Checkpoint spans (scenario "") always sort last.
	sort.SliceStable(scenarioOrder, func(a, b int) bool {
		return (scenarioOrder[a] != "") && (scenarioOrder[b] == "")
	})
	var out []PhaseCost
	for _, sc := range scenarioOrder {
		for _, ph := range Phases {
			if pc := agg[cell{sc, ph}]; pc != nil {
				out = append(out, *pc)
				delete(agg, cell{sc, ph})
			}
		}
		// Unknown phase names (future additions) follow, sorted.
		var rest []PhaseCost
		for key, pc := range agg {
			if key.scenario == sc {
				rest = append(rest, *pc)
				delete(agg, key)
			}
		}
		sort.Slice(rest, func(a, b int) bool { return rest[a].Phase < rest[b].Phase })
		out = append(out, rest...)
	}
	return out
}
