package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-format rendering (version 0.0.4), hand-rolled: the
// container bakes no client library, and the subset the registry
// needs — HELP/TYPE headers, escaped help and label values,
// cumulative histogram buckets with the synthetic le label — is small
// and fully testable (prometheus_test.go pins escaping and bucket
// cumulativity).

// PrometheusContentType is the Content-Type a /metrics response
// should carry for this rendering.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry's current state; see
// Snapshot.WritePrometheus.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot in Prometheus text format.
// Families are sorted by name (the snapshot is already sorted), each
// family gets one HELP/TYPE header, and histogram buckets are emitted
// cumulatively with le labels plus the _sum and _count series.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	b := &strings.Builder{}
	lastFamily := ""
	writeHeader := func(name, help string, kind metricKind) {
		if name == lastFamily {
			return
		}
		lastFamily = name
		if help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", name, kind)
	}
	for _, c := range s.Counters {
		writeHeader(c.Name, c.Help, kindCounter)
		fmt.Fprintf(b, "%s%s %d\n", c.Name, renderLabels(c.Labels, "", ""), c.Value)
	}
	for _, g := range s.Gauges {
		writeHeader(g.Name, g.Help, kindGauge)
		fmt.Fprintf(b, "%s%s %d\n", g.Name, renderLabels(g.Labels, "", ""), g.Value)
	}
	for _, h := range s.Histograms {
		writeHeader(h.Name, h.Help, kindHistogram)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(b, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, "le", formatFloat(bound)), cum)
		}
		// The +Inf bucket equals _count by construction; rendering it
		// from the same cumulative walk keeps that invariant visible.
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(b, "%s_bucket%s %d\n", h.Name, renderLabels(h.Labels, "le", "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", h.Name, renderLabels(h.Labels, "", ""), formatFloat(h.Sum))
		fmt.Fprintf(b, "%s_count%s %d\n", h.Name, renderLabels(h.Labels, "", ""), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderLabels renders {k="v",…}, appending the extra pair (the
// histogram le) when set. Empty label sets render as nothing.
func renderLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes backslash and newline — the two characters the
// text format's HELP line cannot carry raw.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote and newline per
// the label-value rules.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the shortest way that round-trips,
// matching the expositions Prometheus itself emits.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
