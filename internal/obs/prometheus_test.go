package obs

import (
	"strconv"
	"strings"
	"testing"
)

func renderString(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("fleet_trials_completed_total", "trials completed").Add(42)
	r.Gauge("fleetd_queue_depth", "queued campaigns").Set(3)
	out := renderString(t, r)

	for _, want := range []string{
		"# HELP fleet_trials_completed_total trials completed\n",
		"# TYPE fleet_trials_completed_total counter\n",
		"fleet_trials_completed_total 42\n",
		"# TYPE fleetd_queue_depth gauge\n",
		"fleetd_queue_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "help with \\ backslash\nand newline",
		"path", `C:\tmp`+"\n", "quote", `say "hi"`).Inc()
	out := renderString(t, r)
	if !strings.Contains(out, `# HELP weird_total help with \\ backslash\nand newline`) {
		t.Errorf("HELP escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `path="C:\\tmp\n"`) {
		t.Errorf("label backslash/newline escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `quote="say \"hi\""`) {
		t.Errorf("label quote escaping wrong:\n%s", out)
	}
}

func TestPrometheusLabelsSortedAndFamilyHeaderOnce(t *testing.T) {
	r := NewRegistry()
	// Registered with unsorted label pairs and out-of-order instances.
	r.Counter("shard_attempts_total", "attempts", "shard", "1").Add(2)
	r.Counter("shard_attempts_total", "attempts", "shard", "0").Add(1)
	out := renderString(t, r)
	if strings.Count(out, "# TYPE shard_attempts_total counter") != 1 {
		t.Errorf("family TYPE header must appear exactly once:\n%s", out)
	}
	i0 := strings.Index(out, `shard_attempts_total{shard="0"} 1`)
	i1 := strings.Index(out, `shard_attempts_total{shard="1"} 2`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("labeled instances missing or unsorted:\n%s", out)
	}
}

func TestPrometheusHistogramCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramMetric("lat", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 9, 10} {
		h.Observe(v)
	}
	out := renderString(t, r)
	wantLines := []string{
		"# TYPE lat histogram\n",
		`lat_bucket{le="1"} 1` + "\n",
		`lat_bucket{le="2"} 3` + "\n",
		`lat_bucket{le="4"} 4` + "\n",
		`lat_bucket{le="+Inf"} 6` + "\n",
		"lat_sum 25.7\n",
		"lat_count 6\n",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("histogram rendering missing %q in:\n%s", want, out)
		}
	}
	// Cumulativity invariants: buckets never decrease, +Inf == count.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts must be cumulative (non-decreasing): %q after %d", line, prev)
		}
		prev = v
	}
	if prev != 6 {
		t.Fatalf("+Inf bucket %d must equal count 6", prev)
	}
}

func TestPrometheusHistogramWithLabels(t *testing.T) {
	r := NewRegistry()
	r.HistogramMetric("d", "", []float64{1}, "shard", "2").Observe(0.5)
	out := renderString(t, r)
	for _, want := range []string{
		`d_bucket{shard="2",le="1"} 1`,
		`d_bucket{shard="2",le="+Inf"} 1`,
		`d_sum{shard="2"} 0.5`,
		`d_count{shard="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled histogram missing %q in:\n%s", want, out)
		}
	}
}
