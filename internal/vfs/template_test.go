package vfs

import (
	"testing"

	"repro/internal/ids"
)

// TestTemplateMountSharing pins the structural property the XXL
// substrate relies on: a template-backed mount aliases the template's
// tree until first write, detaches with a private copy on write, and
// Reset re-aliases the template instead of deep-copying it.
func TestTemplateMountSharing(t *testing.T) {
	reg := ids.NewRegistry()
	proto := New("proto", Policy{}, reg)
	if err := proto.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	tmpl := proto.AsTemplate()

	a := NewFromTemplate("a", Policy{}, reg, tmpl)
	b := NewFromTemplate("b", Policy{}, reg, tmpl)
	if a.root != tmpl.root || b.root != tmpl.root {
		t.Fatal("fresh template mounts must alias the template root")
	}

	// An untouched mount's Reset must keep the alias — no deep copy.
	b.Reset()
	if b.root != tmpl.root {
		t.Fatal("Reset on untouched template mount detached from template")
	}

	// First write detaches the writer only.
	cred, err := reg.LoginCredential(ids.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFile(Ctx(cred), "/tmp/scratch", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if a.root == tmpl.root {
		t.Fatal("write did not detach mount from template")
	}
	if b.root != tmpl.root {
		t.Fatal("write to one mount detached a sibling")
	}

	// Reset on the touched mount re-aliases the template (pristine was
	// recorded as the template root), rather than keeping the copy.
	a.Reset()
	if a.root != tmpl.root {
		t.Fatal("Reset did not re-alias the template root")
	}
	if _, err := a.Stat(Ctx(cred), "/tmp/scratch"); err == nil {
		t.Fatal("post-Reset mount still shows pre-Reset write")
	}
}
