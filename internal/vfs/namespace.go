package vfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Namespace is a node's mount table: it routes absolute paths to the
// FS mounted at the longest matching prefix, the way a compute node
// sees the shared Lustre filesystem at /home and /scratch and its own
// local disk at /tmp. All paths handed to the mounted FS are kept
// absolute and mount-relative.
type Namespace struct {
	mu     sync.RWMutex
	mounts map[string]*FS // mount point -> fs
}

// NewNamespace returns an empty mount table.
func NewNamespace() *Namespace {
	return &Namespace{mounts: make(map[string]*FS)}
}

// Mount attaches fs at the given absolute mount point. Mounting at
// "/" provides the root filesystem.
func (ns *Namespace) Mount(point string, fs *FS) error {
	if !strings.HasPrefix(point, "/") {
		return fmt.Errorf("%w: mount point %q", ErrInvalid, point)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.mounts[strings.TrimRight(point, "/")] = fs
	return nil
}

// Resolve returns the FS responsible for path. The path is forwarded
// unchanged (mounted filesystems carry their full tree, e.g. the
// node-local FS contains /tmp and /dev/shm as directories), which
// keeps one local FS usable behind several mount points without the
// two aliasing each other.
func (ns *Namespace) Resolve(path string) (*FS, string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, "", fmt.Errorf("%w: path %q not absolute", ErrInvalid, path)
	}
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	best := ""
	found := false
	for point := range ns.mounts {
		p := point
		if p == "" {
			p = "/"
		}
		if p == "/" || path == point || strings.HasPrefix(path, point+"/") {
			if len(point) >= len(best) && (p == "/" || path == point || strings.HasPrefix(path, point+"/")) {
				if !found || len(point) > len(best) {
					best = point
					found = true
				}
			}
		}
	}
	if !found {
		return nil, "", fmt.Errorf("%w: no filesystem mounted for %s", ErrNotExist, path)
	}
	return ns.mounts[best], path, nil
}

// Mounts lists mount points sorted ascending, with the FS names.
func (ns *Namespace) Mounts() []string {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	out := make([]string, 0, len(ns.mounts))
	for point, fs := range ns.mounts {
		p := point
		if p == "" {
			p = "/"
		}
		out = append(out, p+" ("+fs.Name+")")
	}
	sort.Strings(out)
	return out
}

// Convenience pass-throughs so callers can operate on namespace paths
// without resolving by hand. Each resolves the mount, rewrites the
// path, and forwards.

// WriteFile forwards to the responsible mount.
func (ns *Namespace) WriteFile(ctx Context, path string, data []byte, mode uint32) error {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return err
	}
	return fs.WriteFile(ctx, rel, data, mode)
}

// ReadFile forwards to the responsible mount.
func (ns *Namespace) ReadFile(ctx Context, path string) ([]byte, error) {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.ReadFile(ctx, rel)
}

// Mkdir forwards to the responsible mount.
func (ns *Namespace) Mkdir(ctx Context, path string, mode uint32) error {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return err
	}
	return fs.Mkdir(ctx, rel, mode)
}

// ReadDir forwards to the responsible mount.
func (ns *Namespace) ReadDir(ctx Context, path string) ([]string, error) {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.ReadDir(ctx, rel)
}

// Stat forwards to the responsible mount.
func (ns *Namespace) Stat(ctx Context, path string) (*FileInfo, error) {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return nil, err
	}
	return fs.Stat(ctx, rel)
}

// Chmod forwards to the responsible mount.
func (ns *Namespace) Chmod(ctx Context, path string, mode uint32) error {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return err
	}
	return fs.Chmod(ctx, rel, mode)
}

// Unlink forwards to the responsible mount.
func (ns *Namespace) Unlink(ctx Context, path string) error {
	fs, rel, err := ns.Resolve(path)
	if err != nil {
		return err
	}
	return fs.Unlink(ctx, rel)
}
