package vfs

import (
	"errors"
	"testing"

	"repro/internal/ids"
)

func TestSymlinkReadThrough(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice := Ctx(creds["alice"])
	if err := fs.WriteFile(alice, "/home/alice/real.txt", []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(alice, "/home/alice/real.txt", "/home/alice/link"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFileFollow(alice, "/home/alice/link")
	if err != nil || string(got) != "payload" {
		t.Errorf("follow read = %q, %v", got, err)
	}
	// Readlink and Lstat see the link itself.
	target, err := fs.Readlink(alice, "/home/alice/link")
	if err != nil || target != "/home/alice/real.txt" {
		t.Errorf("readlink = %q, %v", target, err)
	}
	fi, err := fs.Lstat(alice, "/home/alice/link")
	if err != nil || fi.Type != TypeSymlink {
		t.Errorf("lstat = %+v, %v", fi, err)
	}
	if TypeSymlink.String() != "symlink" {
		t.Error("TypeSymlink.String")
	}
	// Readlink on a non-link is EINVAL.
	if _, err := fs.Readlink(alice, "/home/alice/real.txt"); !errors.Is(err, ErrInvalid) {
		t.Errorf("readlink on file err = %v", err)
	}
}

func TestSymlinkDanglingAndLoops(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice := Ctx(creds["alice"])
	if err := fs.Symlink(alice, "/home/alice/missing", "/home/alice/dangle"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFileFollow(alice, "/home/alice/dangle"); !errors.Is(err, ErrNotExist) {
		t.Errorf("dangling read err = %v", err)
	}
	// Loop: a -> b -> a.
	if err := fs.Symlink(alice, "/home/alice/b", "/home/alice/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(alice, "/home/alice/a", "/home/alice/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFileFollow(alice, "/home/alice/a"); !errors.Is(err, ErrSymlinkLoop) {
		t.Errorf("loop read err = %v", err)
	}
	// Duplicate link path.
	if err := fs.Symlink(alice, "/x", "/home/alice/a"); !errors.Is(err, ErrExist) {
		t.Errorf("dup symlink err = %v", err)
	}
}

func TestProtectedSymlinksBlockTmpPlanting(t *testing.T) {
	// The /tmp symlink-planting attack: bob plants a link named like
	// alice's expected scratch file, pointing at a path bob controls.
	// With protected_symlinks, alice's follow is refused.
	fs, _, creds, _ := newWorld(t, Policy{ProtectedSymlinks: true})
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(bob, "/home/bob/trap.txt", []byte("trap"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(bob, "/home/bob/trap.txt", "/tmp/alice-output.tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ResolveLinks(alice, "/tmp/alice-output.tmp"); !errors.Is(err, ErrProtectedSymlink) {
		t.Errorf("planted-link follow err = %v, want ErrProtectedSymlink", err)
	}
	// Write-through is equally refused.
	if err := fs.WriteFileFollow(alice, "/tmp/alice-output.tmp", []byte("secret"), 0o600); !errors.Is(err, ErrProtectedSymlink) {
		t.Errorf("planted-link write err = %v", err)
	}
	// Bob can follow his own link; root can follow anything.
	if _, err := fs.ResolveLinks(bob, "/tmp/alice-output.tmp"); err != nil {
		t.Errorf("own-link follow: %v", err)
	}
	if _, err := fs.ResolveLinks(Ctx(ids.RootCred()), "/tmp/alice-output.tmp"); err != nil {
		t.Errorf("root follow: %v", err)
	}
}

func TestProtectedSymlinksOffBaselineAttackWorks(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	// Bob's trap target must be writable by alice for the harvest to
	// work; chmod it world-writable (no smask in the baseline).
	if err := fs.WriteFile(bob, "/tmp/trap-target", []byte(""), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(bob, "/tmp/trap-target", 0o666); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(bob, "/tmp/trap-target", "/tmp/alice-output.tmp"); err != nil {
		t.Fatal(err)
	}
	// Baseline: alice follows bob's planted link and writes into a
	// bob-readable file.
	if err := fs.WriteFileFollow(alice, "/tmp/alice-output.tmp", []byte("secret"), 0o600); err != nil {
		t.Fatalf("baseline planted write: %v", err)
	}
	got, err := fs.ReadFile(bob, "/tmp/trap-target")
	if err != nil || string(got) != "secret" {
		t.Errorf("bob harvest = %q, %v (attack should work in baseline)", got, err)
	}
}

func TestRenameBasicAndSticky(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(alice, "/home/alice/a.txt", []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(alice, "/home/alice/a.txt", "/home/alice/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(alice, "/home/alice/a.txt"); !errors.Is(err, ErrNotExist) {
		t.Errorf("old path survives rename")
	}
	if got, err := fs.ReadFile(alice, "/home/alice/b.txt"); err != nil || string(got) != "v" {
		t.Errorf("renamed read = %q, %v", got, err)
	}
	// Sticky: bob cannot rename alice's /tmp file away.
	if err := fs.WriteFile(alice, "/tmp/a.lock", nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(bob, "/tmp/a.lock", "/tmp/stolen"); !errors.Is(err, ErrPermission) {
		t.Errorf("sticky rename err = %v", err)
	}
	// Missing source.
	if err := fs.Rename(alice, "/home/alice/ghost", "/home/alice/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing rename err = %v", err)
	}
	// Cannot clobber a non-empty dir.
	if err := fs.Mkdir(alice, "/home/alice/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(alice, "/home/alice/dir/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(alice, "/home/alice/b.txt", "/home/alice/dir"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("clobber dir err = %v", err)
	}
}

func TestQuotaEnforcement(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice := Ctx(creds["alice"])
	uid := creds["alice"].UID
	fs.SetQuota(uid, 100)
	if err := fs.WriteFile(alice, "/home/alice/f1", make([]byte, 60), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := fs.Usage(uid); got != 60 {
		t.Errorf("usage = %d", got)
	}
	// Second write would exceed.
	if err := fs.WriteFile(alice, "/home/alice/f2", make([]byte, 50), 0o644); !errors.Is(err, ErrQuota) {
		t.Errorf("over-quota write err = %v", err)
	}
	// Append hits quota too.
	if err := fs.AppendFile(alice, "/home/alice/f1", make([]byte, 50)); !errors.Is(err, ErrQuota) {
		t.Errorf("over-quota append err = %v", err)
	}
	// Shrink-in-place frees.
	if err := fs.WriteFile(alice, "/home/alice/f1", make([]byte, 10), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := fs.Usage(uid); got != 10 {
		t.Errorf("usage after shrink = %d", got)
	}
	// Unlink frees.
	if err := fs.Unlink(alice, "/home/alice/f1"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Usage(uid); got != 0 {
		t.Errorf("usage after unlink = %d", got)
	}
	// Removing the quota lifts the limit.
	fs.SetQuota(uid, 0)
	if err := fs.WriteFile(alice, "/home/alice/big", make([]byte, 1000), 0o644); err != nil {
		t.Errorf("unlimited write: %v", err)
	}
}

func TestQuotaFollowsChown(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	root := Ctx(ids.RootCred())
	alice, bob := creds["alice"].UID, creds["bob"].UID
	if err := fs.WriteFile(Ctx(creds["alice"]), "/home/alice/f", make([]byte, 40), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/home/alice/f", bob, ids.NoGID); err != nil {
		t.Fatal(err)
	}
	if fs.Usage(alice) != 0 || fs.Usage(bob) != 40 {
		t.Errorf("usage after chown: alice=%d bob=%d", fs.Usage(alice), fs.Usage(bob))
	}
	// Chown to an over-quota user is refused.
	fs.SetQuota(alice, 10)
	if err := fs.Chown(root, "/home/alice/f", alice, ids.NoGID); !errors.Is(err, ErrQuota) {
		t.Errorf("chown into full quota err = %v", err)
	}
}

func TestRootExemptFromQuota(t *testing.T) {
	fs, _, _, _ := newWorld(t, Policy{})
	fs.SetQuota(ids.Root, 1)
	if err := fs.WriteFile(Ctx(ids.RootCred()), "/bigfile", make([]byte, 1000), 0o644); err != nil {
		t.Errorf("root quota applied: %v", err)
	}
	if fs.Usage(ids.Root) != 0 {
		t.Errorf("root charged: %d", fs.Usage(ids.Root))
	}
}
