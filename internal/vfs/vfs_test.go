package vfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ids"
)

func cred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

// newWorld builds a registry with alice, bob, carol, a project group
// {alice,bob}, and a plain FS with the given policy.
func newWorld(t *testing.T, policy Policy) (*FS, *ids.Registry, map[string]ids.Credential, ids.GID) {
	t.Helper()
	reg := ids.NewRegistry()
	alice, _ := reg.AddUser("alice")
	bob, _ := reg.AddUser("bob")
	carol, _ := reg.AddUser("carol")
	proj, err := reg.AddProjectGroup("proj", alice.UID)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.AddToGroup(alice.UID, proj.GID, bob.UID); err != nil {
		t.Fatal(err)
	}
	fs := New("shared", policy, reg)
	creds := make(map[string]ids.Credential)
	for _, u := range []*ids.User{alice, bob, carol} {
		c, err := reg.LoginCredential(u.UID)
		if err != nil {
			t.Fatal(err)
		}
		creds[u.Name] = c
		if err := fs.CreateHome(u); err != nil {
			t.Fatalf("CreateHome(%s): %v", u.Name, err)
		}
	}
	return fs, reg, creds, proj.GID
}

func TestWriteReadRoundtrip(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	ctx := Ctx(creds["alice"])
	if err := fs.WriteFile(ctx, "/home/alice/data.txt", []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ctx, "/home/alice/data.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Errorf("read %q", got)
	}
}

func TestHomeDirectoryIsolation(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(alice, "/home/alice/secret", []byte("s3cret"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Even with 0644 on the file, bob cannot traverse alice's home:
	// it is root-owned, group = alice's private group, mode 0770.
	if _, err := fs.ReadFile(bob, "/home/alice/secret"); !errors.Is(err, ErrPermission) {
		t.Errorf("cross-home read err = %v, want ErrPermission", err)
	}
	if _, err := fs.ReadDir(bob, "/home/alice"); !errors.Is(err, ErrPermission) {
		t.Errorf("cross-home readdir err = %v, want ErrPermission", err)
	}
}

func TestUserCannotChmodTopLevelHome(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice := Ctx(creds["alice"])
	// Home is owned by root; alice is not the owner, so chmod fails —
	// the exact mechanism the paper uses to stop users opening their
	// home to the world (§IV-C).
	if err := fs.Chmod(alice, "/home/alice", 0o777); !errors.Is(err, ErrPermission) {
		t.Errorf("chmod own home err = %v, want ErrPermission", err)
	}
}

func TestUmaskAppliesAtCreate(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	ctx := Context{Cred: creds["alice"], Umask: 0o077}
	if err := fs.WriteFile(ctx, "/home/alice/f", nil, 0o666); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat(ctx, "/home/alice/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode != 0o600 {
		t.Errorf("mode = %o, want 600", fi.Mode)
	}
}

func TestStickyTmpDeletion(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(alice, "/tmp/alice.lock", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	// Bob can create his own file in /tmp (world-writable).
	if err := fs.WriteFile(bob, "/tmp/bob.lock", nil, 0o600); err != nil {
		t.Fatalf("bob create in /tmp: %v", err)
	}
	// Bob cannot delete alice's file (sticky).
	if err := fs.Unlink(bob, "/tmp/alice.lock"); !errors.Is(err, ErrPermission) {
		t.Errorf("sticky delete err = %v, want ErrPermission", err)
	}
	// Alice can delete her own.
	if err := fs.Unlink(alice, "/tmp/alice.lock"); err != nil {
		t.Errorf("own delete: %v", err)
	}
	// Root can delete anything.
	if err := fs.Unlink(Ctx(ids.RootCred()), "/tmp/bob.lock"); err != nil {
		t.Errorf("root delete: %v", err)
	}
}

func TestTmpFilenameLeakResidualChannel(t *testing.T) {
	// Paper §V: file *names* in world-writable dirs remain a leak
	// path even under the enhanced config.
	fs, _, creds, _ := newWorld(t, Policy{SmaskEnabled: true, Smask: DefaultSmask, ACLRestrict: true})
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(alice, "/tmp/projectX-run42.tmp", []byte("data"), 0o600); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(bob, "/tmp")
	if err != nil {
		t.Fatalf("bob readdir /tmp: %v", err)
	}
	found := false
	for _, n := range names {
		if n == "projectX-run42.tmp" {
			found = true
		}
	}
	if !found {
		t.Errorf("residual channel closed unexpectedly: names=%v", names)
	}
	// Contents remain protected.
	if _, err := fs.ReadFile(bob, "/tmp/projectX-run42.tmp"); !errors.Is(err, ErrPermission) {
		t.Errorf("content read err = %v, want ErrPermission", err)
	}
}

func TestProjectDirSetgidInheritance(t *testing.T) {
	fs, reg, creds, projGID := newWorld(t, Policy{})
	g, _ := reg.Group(projGID)
	if err := fs.CreateProjectDir("/proj/demo", g); err != nil {
		t.Fatal(err)
	}
	alice := Ctx(creds["alice"])
	// Alice (member) can write; file inherits the project group.
	if err := fs.WriteFile(alice, "/proj/demo/shared.dat", []byte("d"), 0o660); err != nil {
		t.Fatalf("member write: %v", err)
	}
	fi, err := fs.Stat(alice, "/proj/demo/shared.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Group != projGID {
		t.Errorf("setgid inheritance: file group = %d, want %d", fi.Group, projGID)
	}
	// Bob (member) can read it through the group bits.
	if _, err := fs.ReadFile(Ctx(creds["bob"]), "/proj/demo/shared.dat"); err != nil {
		t.Errorf("fellow member read: %v", err)
	}
	// Carol (non-member) cannot even enter.
	if _, err := fs.ReadFile(Ctx(creds["carol"]), "/proj/demo/shared.dat"); !errors.Is(err, ErrPermission) {
		t.Errorf("non-member read err = %v, want ErrPermission", err)
	}
	// Subdirectories keep the setgid bit.
	if err := fs.Mkdir(alice, "/proj/demo/sub", 0o770); err != nil {
		t.Fatal(err)
	}
	sub, _ := fs.Stat(alice, "/proj/demo/sub")
	if sub.Mode&ModeSetgid == 0 || sub.Group != projGID {
		t.Errorf("subdir mode=%o group=%d, want setgid + project group", sub.Mode, sub.Group)
	}
}

func TestChgrpOnlyToMemberGroups(t *testing.T) {
	fs, _, creds, projGID := newWorld(t, Policy{})
	alice, carol := Ctx(creds["alice"]), Ctx(creds["carol"])
	if err := fs.WriteFile(alice, "/home/alice/f", nil, 0o660); err != nil {
		t.Fatal(err)
	}
	// Alice is in proj: chgrp to proj succeeds.
	if err := fs.Chown(alice, "/home/alice/f", ids.NoUID, projGID); err != nil {
		t.Errorf("chgrp to member group: %v", err)
	}
	// Carol writes a file and tries to chgrp to proj (not a member).
	if err := fs.WriteFile(carol, "/home/carol/f", nil, 0o660); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(carol, "/home/carol/f", ids.NoUID, projGID); !errors.Is(err, ErrPermission) {
		t.Errorf("chgrp to non-member group err = %v, want ErrPermission", err)
	}
	// chown (owner change) is root-only.
	if err := fs.Chown(alice, "/home/alice/f", creds["bob"].UID, ids.NoGID); !errors.Is(err, ErrPermission) {
		t.Errorf("non-root chown err = %v, want ErrPermission", err)
	}
	if err := fs.Chown(Ctx(ids.RootCred()), "/home/alice/f", creds["bob"].UID, ids.NoGID); err != nil {
		t.Errorf("root chown: %v", err)
	}
}

func TestMkdirAllAndNotDirErrors(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice := Ctx(creds["alice"])
	if err := fs.MkdirAll(alice, "/home/alice/a/b/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(alice, "/home/alice/a/b/c"); err != nil {
		t.Errorf("MkdirAll did not create: %v", err)
	}
	if err := fs.WriteFile(alice, "/home/alice/file", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(alice, "/home/alice/file/sub", 0o755); !errors.Is(err, ErrNotDir) {
		t.Errorf("mkdir under file err = %v, want ErrNotDir", err)
	}
	if _, err := fs.ReadFile(alice, "/home/alice/a"); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir err = %v, want ErrIsDir", err)
	}
	if err := fs.Unlink(alice, "/home/alice/a"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("unlink nonempty err = %v, want ErrNotEmpty", err)
	}
}

func TestAppendFile(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice := Ctx(creds["alice"])
	if err := fs.WriteFile(alice, "/home/alice/log", []byte("a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile(alice, "/home/alice/log", []byte("b")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile(alice, "/home/alice/log")
	if string(got) != "ab" {
		t.Errorf("append result %q", got)
	}
	if err := fs.AppendFile(Ctx(creds["bob"]), "/home/alice/log", []byte("x")); !errors.Is(err, ErrPermission) {
		t.Errorf("foreign append err = %v", err)
	}
}

func TestRelativePathRejected(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	if err := fs.WriteFile(Ctx(creds["alice"]), "relative/path", nil, 0o644); !errors.Is(err, ErrInvalid) {
		t.Errorf("relative path err = %v, want ErrInvalid", err)
	}
}

func TestDotDotCannotEscapeRoot(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice := Ctx(creds["alice"])
	if err := fs.WriteFile(alice, "/home/alice/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// /../home/alice/f normalizes inside the tree.
	if _, err := fs.ReadFile(alice, "/../home/alice/../alice/f"); err != nil {
		t.Errorf("normalized read: %v", err)
	}
}

func TestWriteFileOverwriteNeedsW(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	alice := Ctx(creds["alice"])
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(alice, "/tmp/f", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	bob := Ctx(creds["bob"])
	// 0644: bob can read but not overwrite.
	if _, err := fs.ReadFile(bob, "/tmp/f"); err != nil {
		t.Errorf("world-readable read: %v", err)
	}
	if err := fs.WriteFile(bob, "/tmp/f", []byte("v2"), 0o644); !errors.Is(err, ErrPermission) {
		t.Errorf("overwrite err = %v, want ErrPermission", err)
	}
}

func TestUnlinkMissing(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	if err := fs.Unlink(Ctx(creds["alice"]), "/home/alice/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestNamespaceRouting(t *testing.T) {
	reg := ids.NewRegistry()
	alice, _ := reg.AddUser("alice")
	shared := New("lustre", Policy{}, reg)
	local := New("local", Policy{}, reg)
	if err := shared.CreateHome(alice); err != nil {
		t.Fatal(err)
	}
	// The local FS carries its own /tmp tree; the namespace routes
	// the /tmp prefix to it with the path unchanged.
	if err := local.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	ns := NewNamespace()
	if err := ns.Mount("/", shared); err != nil {
		t.Fatal(err)
	}
	if err := ns.Mount("/tmp", local); err != nil {
		t.Fatal(err)
	}
	ac, _ := reg.LoginCredential(alice.UID)
	ctx := Ctx(ac)
	if err := ns.WriteFile(ctx, "/home/alice/f", []byte("shared-data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ns.WriteFile(ctx, "/tmp/t", []byte("local-data"), 0o600); err != nil {
		t.Fatal(err)
	}
	// The file written under /tmp must live in the local FS.
	if _, err := local.ReadFile(ctx, "/tmp/t"); err != nil {
		t.Errorf("local fs missing /tmp/t: %v", err)
	}
	if _, err := shared.Stat(ctx, "/tmp/t"); !errors.Is(err, ErrNotExist) {
		t.Errorf("shared fs unexpectedly has /tmp/t: %v", err)
	}
	// Longest-prefix: /tmp wins over /.
	if got, err := ns.ReadFile(ctx, "/tmp/t"); err != nil || string(got) != "local-data" {
		t.Errorf("ns read /tmp/t = %q, %v", got, err)
	}
	if len(ns.Mounts()) != 2 {
		t.Errorf("Mounts() = %v", ns.Mounts())
	}
	if _, _, err := ns.Resolve("rel"); !errors.Is(err, ErrInvalid) {
		t.Errorf("Resolve(rel) err = %v", err)
	}
}

func TestNamespaceNoMount(t *testing.T) {
	ns := NewNamespace()
	local := New("local", Policy{}, nil)
	if err := ns.Mount("/tmp", local); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ns.Resolve("/home/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("unmounted path err = %v, want ErrNotExist", err)
	}
}

func TestStatRequiresOnlySearch(t *testing.T) {
	fs, _, creds, _ := newWorld(t, Policy{})
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(alice, "/tmp/f", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	// Bob can stat (names + metadata leak in /tmp) but not read.
	fi, err := fs.Stat(bob, "/tmp/f")
	if err != nil {
		t.Fatalf("stat in /tmp: %v", err)
	}
	if fi.Owner != creds["alice"].UID {
		t.Errorf("stat owner = %d", fi.Owner)
	}
}

func TestNamespacePassthroughs(t *testing.T) {
	reg := ids.NewRegistry()
	alice, _ := reg.AddUser("alice")
	shared := New("root", Policy{}, reg)
	if err := shared.CreateHome(alice); err != nil {
		t.Fatal(err)
	}
	ns := NewNamespace()
	if err := ns.Mount("/", shared); err != nil {
		t.Fatal(err)
	}
	ac, _ := reg.LoginCredential(alice.UID)
	ctx := Ctx(ac)
	if err := ns.Mkdir(ctx, "/home/alice/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := ns.WriteFile(ctx, "/home/alice/dir/f", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := ns.ReadDir(ctx, "/home/alice/dir")
	if err != nil || len(names) != 1 || names[0] != "f" {
		t.Errorf("ReadDir = %v, %v", names, err)
	}
	fi, err := ns.Stat(ctx, "/home/alice/dir/f")
	if err != nil || fi.Size != 1 {
		t.Errorf("Stat = %+v, %v", fi, err)
	}
	if err := ns.Chmod(ctx, "/home/alice/dir/f", 0o600); err != nil {
		t.Fatal(err)
	}
	fi, _ = ns.Stat(ctx, "/home/alice/dir/f")
	if fi.Mode != 0o600 {
		t.Errorf("mode after ns.Chmod = %o", fi.Mode)
	}
	if err := ns.Unlink(ctx, "/home/alice/dir/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Stat(ctx, "/home/alice/dir/f"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat after ns.Unlink err = %v", err)
	}
	// Unmounted-path errors propagate through every helper.
	empty := NewNamespace()
	if err := empty.Mkdir(ctx, "/x", 0o755); !errors.Is(err, ErrNotExist) {
		t.Errorf("empty ns Mkdir err = %v", err)
	}
	if _, err := empty.ReadDir(ctx, "/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("empty ns ReadDir err = %v", err)
	}
	if _, err := empty.Stat(ctx, "/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("empty ns Stat err = %v", err)
	}
	if err := empty.Chmod(ctx, "/x", 0); !errors.Is(err, ErrNotExist) {
		t.Errorf("empty ns Chmod err = %v", err)
	}
	if err := empty.Unlink(ctx, "/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("empty ns Unlink err = %v", err)
	}
	if err := empty.Mount("relative", shared); !errors.Is(err, ErrInvalid) {
		t.Errorf("relative mount err = %v", err)
	}
}
