// Package vfs implements the filesystem substrate of the simulated
// HPC system: an in-memory POSIX-style filesystem with full
// owner/group/other permission evaluation, umask, POSIX-style ACLs,
// setgid/sticky directories — plus the paper's additions (§IV-C):
//
//   - the smask ("security mask") kernel patch: an immutable, enforced
//     umask that blocks world permission bits for unprivileged users,
//     applied at create time AND at chmod time;
//   - ACL restriction: a user may only grant a group ACL to a group
//     they are a member of, and user ACLs only to users they share a
//     supplemental group with;
//   - root-owned, private-group-owned home directories;
//   - the smask_relax tool for whitelisted support staff.
//
// One FS value is one mount: the cluster wires a shared (Lustre-like)
// FS at /home and /scratch on every node, and per-node FSes at /tmp
// and /dev/shm (see Namespace).
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ids"
)

// Mode bits beyond rwxrwxrwx.
const (
	ModeSetuid uint32 = 0o4000
	ModeSetgid uint32 = 0o2000
	ModeSticky uint32 = 0o1000
	permMask   uint32 = 0o7777
)

// FileType distinguishes inode kinds.
type FileType int

// Inode kinds.
const (
	TypeFile FileType = iota
	TypeDir
	TypeSocket // unix domain socket endpoints (abstract ns handled by netsim)
)

func (t FileType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSocket:
		return "socket"
	case TypeSymlink:
		return "symlink"
	default:
		return "?"
	}
}

// VFS errors (errno-like).
var (
	ErrNotExist   = errors.New("vfs: no such file or directory")
	ErrExist      = errors.New("vfs: file exists")
	ErrPermission = errors.New("vfs: permission denied")
	ErrNotDir     = errors.New("vfs: not a directory")
	ErrIsDir      = errors.New("vfs: is a directory")
	ErrNotEmpty   = errors.New("vfs: directory not empty")
	ErrInvalid    = errors.New("vfs: invalid argument")
	ErrACLDenied  = errors.New("vfs: acl grant rejected by group-membership restriction")
)

// inode is the internal tree node. Access only while holding FS.mu.
type inode struct {
	name     string
	typ      FileType
	owner    ids.UID
	group    ids.GID
	mode     uint32 // low 12 bits
	data     []byte
	children map[string]*inode
	acl      *ACL
}

// FileInfo is the external, copy-safe view of an inode.
type FileInfo struct {
	Name  string
	Path  string
	Type  FileType
	Owner ids.UID
	Group ids.GID
	Mode  uint32
	Size  int64
	ACL   *ACL // nil if none; deep copy
}

// Policy configures per-mount enforcement.
type Policy struct {
	// SmaskEnabled turns on the smask kernel patch for this mount.
	SmaskEnabled bool
	// Smask is the enforced mask (paper deploys 007: no world bits).
	Smask uint32
	// ACLRestrict enables the paper's member-group ACL restriction.
	ACLRestrict bool
	// ProtectedSymlinks enables the fs.protected_symlinks hardening:
	// in sticky world-writable directories, symlinks are followed
	// only when owned by the follower or the directory owner.
	ProtectedSymlinks bool
}

// DefaultSmask is the paper's production setting: block all world
// bits, like an immutable umask 007.
const DefaultSmask uint32 = 0o007

// Context carries the identity state of the calling process: its
// credential, its umask, and its session smask override (set by
// smask_relax). A zero SmaskOverride means "use the mount policy".
type Context struct {
	Cred          ids.Credential
	Umask         uint32
	SmaskOverride uint32 // e.g. 0o002 inside an smask_relax session
	HasOverride   bool
}

// Ctx is a convenience constructor with the conventional umask 022.
func Ctx(cred ids.Credential) Context {
	return Context{Cred: cred, Umask: 0o022}
}

// FS is one mount. Safe for concurrent use.
type FS struct {
	Name   string
	Policy Policy
	reg    *ids.Registry
	mu     sync.RWMutex
	root   *inode
	quota  map[ids.UID]int64 // per-user byte limits (0 entries = unlimited)
	usage  map[ids.UID]int64 // per-user bytes charged
	// Pristine snapshot for the trial-lifecycle Reset contract: a deep
	// copy of the tree (plus quota/usage) taken by MarkPristine, plus a
	// dirty flag every mutating entry point sets so Reset on an
	// untouched mount is a no-op.
	pristine *fsSnapshot
	dirty    bool
	// Template-backed mounts (NewFromTemplate) alias an immutable
	// shared tree until first mutation: while shared is true, root
	// points into tmpl and the mount has cost O(1) regardless of the
	// tree's size. dirtyLocked performs the copy-on-first-write, and
	// Reset re-aliases the template instead of deep-copying.
	tmpl   *Template
	shared bool
}

// Template is an immutable pristine tree many mounts can share: every
// untouched per-node mount of an XXL cluster is one pointer to it
// instead of a full deep copy. Build one with (*FS).AsTemplate.
type Template struct {
	root *inode
}

// fsSnapshot is the state MarkPristine captures.
type fsSnapshot struct {
	root  *inode
	quota map[ids.UID]int64
	usage map[ids.UID]int64
}

// deepCopy clones the inode subtree. ACLs and file data are copied;
// the result shares nothing with the original.
func (n *inode) deepCopy() *inode {
	c := &inode{name: n.name, typ: n.typ, owner: n.owner, group: n.group, mode: n.mode}
	if n.data != nil {
		c.data = append([]byte(nil), n.data...)
	}
	if n.children != nil {
		c.children = make(map[string]*inode, len(n.children))
		for name, child := range n.children {
			c.children[name] = child.deepCopy()
		}
	}
	c.acl = n.acl.Clone()
	return c
}

// MarkPristine records the mount's current tree, quotas and usage as
// the target of Reset. The cluster assembly calls it once its layout
// (/home, /scratch, /proj, the per-node tmp dirs) is in place.
func (fs *FS) MarkPristine() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.shared {
		// The tree is still the immutable template — record it as the
		// pristine state without copying; Reset re-aliases it.
		fs.pristine = &fsSnapshot{root: fs.tmpl.root, quota: cloneQuota(fs.quota), usage: cloneQuota(fs.usage)}
		fs.dirty = false
		return
	}
	fs.pristine = &fsSnapshot{root: fs.root.deepCopy(), quota: cloneQuota(fs.quota), usage: cloneQuota(fs.usage)}
	fs.dirty = false
}

// Reset restores the mount to the MarkPristine state (or to the empty
// post-New tree if no mark was taken), rolling back every mutation
// since: files, directories, symlinks, mode/owner changes, ACLs,
// quotas and usage. A mount with no mutations since the mark is left
// untouched — the common case for the per-node /tmp mounts between
// pooled trials.
func (fs *FS) Reset() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.dirty {
		return
	}
	switch {
	case fs.pristine == nil && fs.tmpl != nil:
		// No mark taken: the post-New state of a template-backed
		// mount is the template itself.
		fs.root, fs.shared = fs.tmpl.root, true
		fs.quota, fs.usage = nil, nil
	case fs.pristine == nil:
		fs.root = newRoot()
		fs.quota, fs.usage = nil, nil
	case fs.tmpl != nil && fs.pristine.root == fs.tmpl.root:
		// The pristine state is the shared template: re-alias it
		// instead of deep-copying — O(1) however large the tree.
		fs.root, fs.shared = fs.tmpl.root, true
		fs.quota = cloneQuota(fs.pristine.quota)
		fs.usage = cloneQuota(fs.pristine.usage)
	default:
		fs.root = fs.pristine.root.deepCopy()
		fs.quota = cloneQuota(fs.pristine.quota)
		fs.usage = cloneQuota(fs.pristine.usage)
	}
	fs.dirty = false
}

func cloneQuota(m map[ids.UID]int64) map[ids.UID]int64 {
	if m == nil {
		return nil
	}
	c := make(map[ids.UID]int64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// dirtyLocked flags the mount as mutated since the pristine mark.
// Caller holds fs.mu for writing; every mutating entry point calls it
// before touching the tree (flagging on a failed attempt is fine —
// the flag is a may-have-changed bound, and Reset stays exact). For a
// template-backed mount this is the copy-on-first-write point: the
// shared tree is replaced by a private deep copy before any mutator
// can reach an inode, so the template stays immutable forever.
func (fs *FS) dirtyLocked() {
	if fs.shared {
		fs.root = fs.tmpl.root.deepCopy()
		fs.shared = false
	}
	fs.dirty = true
}

// New creates an empty filesystem whose root is owned by root with
// mode 0755. reg is consulted for ACL membership checks; it may be
// nil if Policy.ACLRestrict is false.
func New(name string, policy Policy, reg *ids.Registry) *FS {
	return &FS{Name: name, Policy: policy, reg: reg, root: newRoot()}
}

// AsTemplate freezes a deep copy of the mount's current tree as an
// immutable template for NewFromTemplate. The cluster assembly builds
// one prototype local mount, freezes it, and stamps out every node's
// mount from the template in O(1) each.
func (fs *FS) AsTemplate() *Template {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return &Template{root: fs.root.deepCopy()}
}

// NewFromTemplate creates a mount whose tree is the shared template —
// no per-mount copy is made until the first mutation (or ever, for a
// mount nothing writes to). Reset re-aliases the template, so an
// untouched templated mount costs O(1) to build, hold and reset.
func NewFromTemplate(name string, policy Policy, reg *ids.Registry, t *Template) *FS {
	return &FS{Name: name, Policy: policy, reg: reg, root: t.root, tmpl: t, shared: true}
}

func newRoot() *inode {
	return &inode{
		name: "/", typ: TypeDir,
		owner: ids.Root, group: ids.RootGroup, mode: 0o755,
		children: make(map[string]*inode),
	}
}

// splitPath normalizes and splits an absolute path.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: path %q not absolute", ErrInvalid, path)
	}
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
		default:
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// walk resolves path to an inode, enforcing execute (search)
// permission on every directory along the way. Caller holds fs.mu.
func (fs *FS) walk(ctx Context, path string) (*inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur := fs.root
	for i, part := range parts {
		if cur.typ != TypeDir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, strings.Join(parts[:i], "/"))
		}
		if !fs.can(ctx.Cred, cur, 1) { // x on the directory
			return nil, fmt.Errorf("%w: search %q", ErrPermission, "/"+strings.Join(parts[:i], "/"))
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		cur = next
	}
	return cur, nil
}

// walkParent resolves the parent directory of path and returns it
// plus the final component name.
func (fs *FS) walkParent(ctx Context, path string) (*inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("%w: cannot operate on /", ErrInvalid)
	}
	dir, err := fs.walk(ctx, "/"+strings.Join(parts[:len(parts)-1], "/"))
	if err != nil {
		return nil, "", err
	}
	if dir.typ != TypeDir {
		return nil, "", fmt.Errorf("%w: parent of %s", ErrNotDir, path)
	}
	return dir, parts[len(parts)-1], nil
}

// effectiveCreateMode applies umask and (if enabled) smask to a
// requested creation mode.
func (fs *FS) effectiveCreateMode(ctx Context, req uint32) uint32 {
	m := req & permMask &^ ctx.Umask
	return fs.applySmask(ctx, m)
}

// applySmask enforces the security mask for unprivileged users: world
// bits named in the smask are stripped, immutably (paper §IV-C). An
// smask_relax session substitutes its relaxed mask.
func (fs *FS) applySmask(ctx Context, m uint32) uint32 {
	if !fs.Policy.SmaskEnabled || ctx.Cred.IsRoot() {
		return m
	}
	mask := fs.Policy.Smask
	if ctx.HasOverride {
		mask = ctx.SmaskOverride
	}
	return m &^ mask
}

// Mkdir creates a directory. New directories inherit the parent's
// group when the parent has setgid (the project-directory idiom).
func (fs *FS) Mkdir(ctx Context, path string, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mkdirLocked(ctx, path, mode)
}

func (fs *FS) mkdirLocked(ctx Context, path string, mode uint32) error {
	fs.dirtyLocked()
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return err
	}
	if _, dup := dir.children[name]; dup {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	if !fs.can(ctx.Cred, dir, 3) { // w+x on parent
		return fmt.Errorf("%w: mkdir %s", ErrPermission, path)
	}
	group := ctx.Cred.EGID
	eff := fs.effectiveCreateMode(ctx, mode)
	if dir.mode&ModeSetgid != 0 {
		group = dir.group
		eff |= ModeSetgid // setgid propagates down project trees
	}
	dir.children[name] = &inode{
		name: name, typ: TypeDir,
		owner: ctx.Cred.UID, group: group, mode: eff,
		children: make(map[string]*inode),
	}
	return nil
}

// MkdirAll creates path and any missing parents with the given mode.
func (fs *FS) MkdirAll(ctx Context, path string, mode uint32) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := range parts {
		p := "/" + strings.Join(parts[:i+1], "/")
		err := fs.mkdirLocked(ctx, p, mode)
		if err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// WriteFile creates or truncates a file with the given data. Creation
// applies umask+smask; overwrite requires write permission on the
// existing file.
func (fs *FS) WriteFile(ctx Context, path string, data []byte, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return err
	}
	if existing, ok := dir.children[name]; ok {
		if existing.typ == TypeDir {
			return fmt.Errorf("%w: %s", ErrIsDir, path)
		}
		if !fs.can(ctx.Cred, existing, 2) {
			return fmt.Errorf("%w: write %s", ErrPermission, path)
		}
		if err := fs.chargeQuota(existing.owner, int64(len(data))-int64(len(existing.data))); err != nil {
			return err
		}
		existing.data = append([]byte(nil), data...)
		return nil
	}
	if !fs.can(ctx.Cred, dir, 3) {
		return fmt.Errorf("%w: create %s", ErrPermission, path)
	}
	if err := fs.chargeQuota(ctx.Cred.UID, int64(len(data))); err != nil {
		return err
	}
	group := ctx.Cred.EGID
	if dir.mode&ModeSetgid != 0 {
		group = dir.group
	}
	dir.children[name] = &inode{
		name: name, typ: TypeFile,
		owner: ctx.Cred.UID, group: group,
		mode: fs.effectiveCreateMode(ctx, mode),
		data: append([]byte(nil), data...),
	}
	return nil
}

// ReadFile returns the file's contents if ctx can read it.
func (fs *FS) ReadFile(ctx Context, path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return nil, err
	}
	if n.typ == TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	if !fs.can(ctx.Cred, n, 4) {
		return nil, fmt.Errorf("%w: read %s", ErrPermission, path)
	}
	return append([]byte(nil), n.data...), nil
}

// AppendFile appends data to an existing file (write permission).
func (fs *FS) AppendFile(ctx Context, path string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	if n.typ == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	if !fs.can(ctx.Cred, n, 2) {
		return fmt.Errorf("%w: append %s", ErrPermission, path)
	}
	if err := fs.chargeQuota(n.owner, int64(len(data))); err != nil {
		return err
	}
	n.data = append(n.data, data...)
	return nil
}

// ReadDir lists entry names (requires read on the directory). The
// crucial residual channel: in a world-writable /tmp a stranger can
// still *list names* even when contents are protected (paper §V).
func (fs *FS) ReadDir(ctx Context, path string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return nil, err
	}
	if n.typ != TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	if !fs.can(ctx.Cred, n, 4) {
		return nil, fmt.Errorf("%w: readdir %s", ErrPermission, path)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Stat returns metadata (requires search permission on parents only,
// like POSIX stat).
func (fs *FS) Stat(ctx Context, path string) (*FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return nil, err
	}
	return fs.infoOf(n, path), nil
}

func (fs *FS) infoOf(n *inode, path string) *FileInfo {
	fi := &FileInfo{
		Name: n.name, Path: path, Type: n.typ,
		Owner: n.owner, Group: n.group, Mode: n.mode,
		Size: int64(len(n.data)),
	}
	if n.acl != nil {
		fi.ACL = n.acl.Clone()
	}
	return fi
}

// Unlink removes a file or empty directory. In sticky directories
// (/tmp) only the file owner, directory owner, or root may delete.
func (fs *FS) Unlink(ctx Context, path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return err
	}
	n, ok := dir.children[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if n.typ == TypeDir && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	if !fs.can(ctx.Cred, dir, 3) {
		return fmt.Errorf("%w: unlink in %s", ErrPermission, path)
	}
	if dir.mode&ModeSticky != 0 && !ctx.Cred.IsRoot() &&
		ctx.Cred.UID != n.owner && ctx.Cred.UID != dir.owner {
		return fmt.Errorf("%w: sticky %s", ErrPermission, path)
	}
	if n.typ == TypeFile {
		_ = fs.chargeQuota(n.owner, -int64(len(n.data))) // frees always succeed
	}
	delete(dir.children, name)
	return nil
}
