package vfs

import (
	"errors"
	"testing"

	"repro/internal/ids"
)

// The FS Reset contract: every mutation since MarkPristine — files,
// directories, symlinks, renames, mode/owner changes, ACLs, quotas,
// usage — rolls back, and an untouched mount is left alone.

func TestFSResetRollsBackEverything(t *testing.T) {
	fs := New("t", Policy{}, nil)
	root := Context{Cred: ids.RootCred()}
	alice := Ctx(ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}})
	if err := fs.MkdirAll(root, "/scratch/shared", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(root, "/scratch/keep", []byte("pristine"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.SetQuota(1000, 1<<20)
	fs.MarkPristine()

	// Dirty it every way the API allows.
	if err := fs.WriteFile(alice, "/scratch/shared/f", []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(alice, "/scratch/shared/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(alice, "/scratch/keep", "/scratch/shared/lnk"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(alice, "/scratch/shared/f", "/scratch/shared/g"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(root, "/scratch/keep", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/scratch/keep", 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetfaclUser(root, "/scratch/keep", 1000, 0o6); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile(root, "/scratch/keep", []byte("!")); err != nil {
		t.Fatal(err)
	}
	fs.SetQuota(1000, 42)
	if fs.Usage(1000) == 0 {
		t.Fatal("expected nonzero usage before reset")
	}

	fs.Reset()

	if _, err := fs.Stat(root, "/scratch/shared/g"); !errors.Is(err, ErrNotExist) {
		t.Errorf("renamed file survived Reset: %v", err)
	}
	if _, err := fs.Stat(root, "/scratch/shared/d"); !errors.Is(err, ErrNotExist) {
		t.Errorf("directory survived Reset: %v", err)
	}
	fi, err := fs.Stat(root, "/scratch/keep")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode != 0o644 || fi.Owner != ids.Root || fi.ACL != nil || fi.Size != int64(len("pristine")) {
		t.Errorf("pristine file not restored: mode %o owner %d acl %v size %d", fi.Mode, fi.Owner, fi.ACL, fi.Size)
	}
	if got := fs.Usage(1000); got != 0 {
		t.Errorf("usage %d survived Reset", got)
	}
	// Pristine quota (1<<20) is back: a 42-byte-limit write must pass.
	if err := fs.WriteFile(alice, "/scratch/shared/big", make([]byte, 100), 0o644); err != nil {
		t.Errorf("pristine quota not restored: %v", err)
	}
}

// Reset must survive multiple rounds: the pristine mark may not be
// consumed or aliased by the restore.
func TestFSResetRepeatable(t *testing.T) {
	fs := New("t", Policy{}, nil)
	root := Context{Cred: ids.RootCred()}
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	fs.MarkPristine()
	for round := 0; round < 3; round++ {
		if err := fs.WriteFile(root, "/tmp/f", []byte("x"), 0o644); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		fs.Reset()
		names, err := fs.ReadDir(root, "/tmp")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(names) != 0 {
			t.Fatalf("round %d: /tmp has %v after Reset", round, names)
		}
	}
}

// An untouched mount must not pay for Reset (the per-node /tmp mounts
// of a pooled cluster): no allocation, no tree rebuild.
func TestFSResetUntouchedIsFree(t *testing.T) {
	fs := New("t", Policy{}, nil)
	if err := fs.CreateTmp("/tmp"); err != nil {
		t.Fatal(err)
	}
	fs.MarkPristine()
	if allocs := testing.AllocsPerRun(10, fs.Reset); allocs > 0 {
		t.Errorf("Reset on untouched mount allocates %.1f objects", allocs)
	}
}
