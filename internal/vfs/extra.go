package vfs

import (
	"errors"
	"fmt"

	"repro/internal/ids"
)

// This file adds the remaining filesystem semantics the paper's
// environment depends on: symlinks (with the fs.protected_symlinks
// hardening that pairs with sticky /tmp), rename, and per-user block
// quotas (every shared HPC filesystem runs them).

// Symlink-specific errors.
var (
	ErrSymlinkLoop      = errors.New("vfs: too many levels of symbolic links")
	ErrProtectedSymlink = errors.New("vfs: symlink following denied by protected_symlinks")
	ErrQuota            = errors.New("vfs: disk quota exceeded")
	ErrNotFile          = errors.New("vfs: not a regular file")
)

// TypeSymlink extends FileType for symbolic links.
const TypeSymlink FileType = 3

const maxSymlinkHops = 40

// Symlink creates a symbolic link at linkPath pointing to target
// (target need not exist — dangling links are legal).
func (fs *FS) Symlink(ctx Context, target, linkPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	dir, name, err := fs.walkParent(ctx, linkPath)
	if err != nil {
		return err
	}
	if _, dup := dir.children[name]; dup {
		return fmt.Errorf("%w: %s", ErrExist, linkPath)
	}
	if !fs.can(ctx.Cred, dir, 3) {
		return fmt.Errorf("%w: symlink %s", ErrPermission, linkPath)
	}
	dir.children[name] = &inode{
		name: name, typ: TypeSymlink,
		owner: ctx.Cred.UID, group: ctx.Cred.EGID,
		mode: 0o777, // symlink modes are ignored, like Linux
		data: []byte(target),
	}
	return nil
}

// Readlink returns the link target.
func (fs *FS) Readlink(ctx Context, path string) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walkNoFollow(ctx, path)
	if err != nil {
		return "", err
	}
	if n.typ != TypeSymlink {
		return "", fmt.Errorf("%w: %s", ErrInvalid, path)
	}
	return string(n.data), nil
}

// walkNoFollow resolves the path like walk but does not follow a
// symlink in the final component (lstat semantics). Caller holds
// fs.mu.
func (fs *FS) walkNoFollow(ctx Context, path string) (*inode, error) {
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return nil, err
	}
	n, ok := dir.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return n, nil
}

// Lstat is Stat without following a final symlink.
func (fs *FS) Lstat(ctx Context, path string) (*FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walkNoFollow(ctx, path)
	if err != nil {
		return nil, err
	}
	return fs.infoOf(n, path), nil
}

// ResolveLinks follows symlinks at the final component until a
// non-link inode (or error). It enforces the protected_symlinks rule
// when the mount policy enables it: inside a sticky world-writable
// directory, a symlink is followed only when its owner matches either
// the follower or the directory owner — the kernel hardening that
// kills /tmp symlink-planting attacks.
func (fs *FS) ResolveLinks(ctx Context, path string) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.resolveLinksLocked(ctx, path, 0)
}

func (fs *FS) resolveLinksLocked(ctx Context, path string, hops int) (string, error) {
	if hops > maxSymlinkHops {
		return "", fmt.Errorf("%w: %s", ErrSymlinkLoop, path)
	}
	dir, name, err := fs.walkParent(ctx, path)
	if err != nil {
		return "", err
	}
	n, ok := dir.children[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if n.typ != TypeSymlink {
		return path, nil
	}
	if fs.Policy.ProtectedSymlinks && !ctx.Cred.IsRoot() {
		sticky := dir.mode&ModeSticky != 0
		worldWritable := dir.mode&0o002 != 0
		if sticky && worldWritable && n.owner != ctx.Cred.UID && n.owner != dir.owner {
			return "", fmt.Errorf("%w: %s (link owner %d)", ErrProtectedSymlink, path, n.owner)
		}
	}
	return fs.resolveLinksLocked(ctx, string(n.data), hops+1)
}

// ReadFileFollow reads through symlinks (ReadFile itself is
// strict-inode; most callers in this codebase address real files).
func (fs *FS) ReadFileFollow(ctx Context, path string) ([]byte, error) {
	real, err := fs.ResolveLinks(ctx, path)
	if err != nil {
		return nil, err
	}
	return fs.ReadFile(ctx, real)
}

// WriteFileFollow writes through symlinks — the call a symlink-
// planting attack needs to subvert.
func (fs *FS) WriteFileFollow(ctx Context, path string, data []byte, mode uint32) error {
	real, err := fs.ResolveLinks(ctx, path)
	if err != nil {
		return err
	}
	return fs.WriteFile(ctx, real, data, mode)
}

// Rename moves oldPath to newPath (within this mount). POSIX rules:
// w+x on both parent directories, sticky-directory deletion rules on
// the source, destination must not be an existing non-empty dir.
func (fs *FS) Rename(ctx Context, oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	oldDir, oldName, err := fs.walkParent(ctx, oldPath)
	if err != nil {
		return err
	}
	n, ok := oldDir.children[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	newDir, newName, err := fs.walkParent(ctx, newPath)
	if err != nil {
		return err
	}
	if !fs.can(ctx.Cred, oldDir, 3) || !fs.can(ctx.Cred, newDir, 3) {
		return fmt.Errorf("%w: rename %s -> %s", ErrPermission, oldPath, newPath)
	}
	if oldDir.mode&ModeSticky != 0 && !ctx.Cred.IsRoot() &&
		ctx.Cred.UID != n.owner && ctx.Cred.UID != oldDir.owner {
		return fmt.Errorf("%w: sticky rename %s", ErrPermission, oldPath)
	}
	if existing, dup := newDir.children[newName]; dup {
		if existing.typ == TypeDir && len(existing.children) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, newPath)
		}
		if newDir.mode&ModeSticky != 0 && !ctx.Cred.IsRoot() &&
			ctx.Cred.UID != existing.owner && ctx.Cred.UID != newDir.owner {
			return fmt.Errorf("%w: sticky overwrite %s", ErrPermission, newPath)
		}
	}
	delete(oldDir.children, oldName)
	n.name = newName
	newDir.children[newName] = n
	return nil
}

// --- Quotas ---

// SetQuota sets a per-user byte limit on this mount (0 removes the
// limit). Root is never charged.
func (fs *FS) SetQuota(uid ids.UID, limit int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	if fs.quota == nil {
		fs.quota = make(map[ids.UID]int64)
	}
	if limit == 0 {
		delete(fs.quota, uid)
		return
	}
	fs.quota[uid] = limit
}

// Usage returns the bytes currently charged to uid.
func (fs *FS) Usage(uid ids.UID) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.usage[uid]
}

// chargeQuota validates and applies a usage delta for uid. Caller
// holds fs.mu. delta may be negative (frees space, always allowed).
func (fs *FS) chargeQuota(uid ids.UID, delta int64) error {
	if uid == ids.Root {
		return nil
	}
	if fs.usage == nil {
		fs.usage = make(map[ids.UID]int64)
	}
	next := fs.usage[uid] + delta
	if delta > 0 {
		if limit, ok := fs.quota[uid]; ok && next > limit {
			return fmt.Errorf("%w: uid %d usage %d + %d > %d", ErrQuota, uid, fs.usage[uid], delta, limit)
		}
	}
	if next < 0 {
		next = 0
	}
	fs.usage[uid] = next
	return nil
}
