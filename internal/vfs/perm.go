package vfs

import (
	"fmt"

	"repro/internal/ids"
)

// can evaluates whether cred holds the wanted rwx bits (want is an
// octal digit: r=4 w=2 x=1, combinable) on inode n. Evaluation order
// follows POSIX + POSIX.1e ACLs: owner class, then named-user ACL
// entries, then owning group / named-group ACL entries, then other.
// Root bypasses everything.
//
// Caller holds fs.mu (read or write).
func (fs *FS) can(cred ids.Credential, n *inode, want uint32) bool {
	if cred.IsRoot() {
		return true
	}
	// Owner class.
	if cred.UID == n.owner {
		return (n.mode>>6)&want == want
	}
	// Named user ACL entries.
	if n.acl != nil {
		if bits, ok := n.acl.userEntry(cred.UID); ok {
			return bits&want == want
		}
	}
	// Group class: owning group or any named-group entry the caller
	// belongs to. POSIX.1e grants access if any matching group entry
	// allows it.
	groupMatched := false
	if cred.InGroup(n.group) {
		groupMatched = true
		if (n.mode>>3)&want == want {
			return true
		}
	}
	if n.acl != nil {
		for _, e := range n.acl.Groups {
			if cred.InGroup(e.GID) {
				groupMatched = true
				if e.Bits&want == want {
					return true
				}
			}
		}
	}
	if groupMatched {
		return false
	}
	// Other class.
	return n.mode&want == want
}

// Access is the externally visible permission probe (like access(2)).
func (fs *FS) Access(ctx Context, path string, want uint32) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	if !fs.can(ctx.Cred, n, want) {
		return fmt.Errorf("%w: access %s want %o", ErrPermission, path, want)
	}
	return nil
}

// Chmod changes permission bits. POSIX rule: only the owner or root.
// The paper's smask patch makes the mask *enforced even on chmod*
// (§IV-C): an unprivileged chmod that tries to set world bits has
// those bits silently stripped, exactly like the kernel patch.
func (fs *FS) Chmod(ctx Context, path string, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	if !ctx.Cred.IsRoot() && ctx.Cred.UID != n.owner {
		return fmt.Errorf("%w: chmod %s", ErrPermission, path)
	}
	eff := mode & permMask
	// setgid preservation rule: non-root callers not in the file's
	// group lose setgid on chmod (standard POSIX hardening).
	if !ctx.Cred.IsRoot() && !ctx.Cred.InGroup(n.group) {
		eff &^= ModeSetgid
	}
	n.mode = fs.applySmask(ctx, eff)
	return nil
}

// Chown changes owner and/or group. Owner changes are root-only
// (POSIX). Group changes ("chgrp") are allowed to the file owner but
// only to a group they are a member of — the rule the paper leans on
// to keep sharing inside approved project groups. Pass ids.NoUID /
// ids.NoGID to leave a field unchanged.
func (fs *FS) Chown(ctx Context, path string, owner ids.UID, group ids.GID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	if owner != ids.NoUID && owner != n.owner {
		if !ctx.Cred.IsRoot() {
			return fmt.Errorf("%w: chown %s", ErrPermission, path)
		}
		// Quota follows ownership.
		if n.typ == TypeFile {
			if err := fs.chargeQuota(owner, int64(len(n.data))); err != nil {
				return err
			}
			_ = fs.chargeQuota(n.owner, -int64(len(n.data)))
		}
		n.owner = owner
	}
	if group != ids.NoGID && group != n.group {
		if !ctx.Cred.IsRoot() {
			if ctx.Cred.UID != n.owner {
				return fmt.Errorf("%w: chgrp %s: not owner", ErrPermission, path)
			}
			if !ctx.Cred.InGroup(group) {
				return fmt.Errorf("%w: chgrp %s: uid %d not in gid %d", ErrPermission, path, ctx.Cred.UID, group)
			}
		}
		n.group = group
	}
	return nil
}

// CreateHome builds a user's home directory the way the paper
// mandates (§IV-C): owned by root, group-owned by the user-private
// group, no world bits, and — because root owns it — the user cannot
// chmod their own top-level home open.
func (fs *FS) CreateHome(u *ids.User) error {
	rootCtx := Context{Cred: ids.RootCred()}
	if err := fs.MkdirAll(rootCtx, parentOf(u.HomePath), 0o755); err != nil {
		return err
	}
	if err := fs.Mkdir(rootCtx, u.HomePath, 0o770); err != nil {
		return err
	}
	return fs.Chown(rootCtx, u.HomePath, ids.Root, u.Primary)
}

// CreateProjectDir builds an approved project group's shared area:
// root-owned, group-owned by the project group, setgid so new files
// inherit the group, and no world bits.
func (fs *FS) CreateProjectDir(path string, g *ids.Group) error {
	rootCtx := Context{Cred: ids.RootCred()}
	if err := fs.MkdirAll(rootCtx, parentOf(path), 0o755); err != nil {
		return err
	}
	if err := fs.Mkdir(rootCtx, path, 0o2770); err != nil {
		return err
	}
	return fs.Chown(rootCtx, path, ids.Root, g.GID)
}

// CreateTmp builds a world-writable sticky directory (mode 1777),
// the /tmp and /dev/shm layout whose *name* leakage remains a
// residual channel in the paper's results (§V).
func (fs *FS) CreateTmp(path string) error {
	rootCtx := Context{Cred: ids.RootCred()}
	if err := fs.MkdirAll(rootCtx, parentOf(path), 0o755); err != nil {
		return err
	}
	err := fs.Mkdir(rootCtx, path, 0o1777)
	if err != nil {
		return err
	}
	return nil
}

func parentOf(path string) string {
	parts, err := splitPath(path)
	if err != nil || len(parts) <= 1 {
		return "/"
	}
	out := ""
	for _, p := range parts[:len(parts)-1] {
		out += "/" + p
	}
	return out
}
