package vfs

import (
	"fmt"
	"sort"

	"repro/internal/ids"
)

// ACLEntryUser grants bits to a specific user.
type ACLEntryUser struct {
	UID  ids.UID
	Bits uint32 // rwx as octal digit
}

// ACLEntryGroup grants bits to a specific group.
type ACLEntryGroup struct {
	GID  ids.GID
	Bits uint32
}

// ACL is a POSIX.1e-style access control list attached to an inode.
type ACL struct {
	Users  []ACLEntryUser
	Groups []ACLEntryGroup
}

// Clone deep-copies the ACL.
func (a *ACL) Clone() *ACL {
	if a == nil {
		return nil
	}
	return &ACL{
		Users:  append([]ACLEntryUser(nil), a.Users...),
		Groups: append([]ACLEntryGroup(nil), a.Groups...),
	}
}

// userEntry returns the named-user bits for uid, if present.
func (a *ACL) userEntry(uid ids.UID) (uint32, bool) {
	for _, e := range a.Users {
		if e.UID == uid {
			return e.Bits, true
		}
	}
	return 0, false
}

// groupEntry returns the named-group bits for gid, if present.
func (a *ACL) groupEntry(gid ids.GID) (uint32, bool) {
	for _, e := range a.Groups {
		if e.GID == gid {
			return e.Bits, true
		}
	}
	return 0, false
}

// SetfaclGroup adds or replaces a named-group entry on path. Under
// the paper's restriction (Policy.ACLRestrict), the caller must be a
// member of the group being granted — "a user cannot grant permission
// to a group unless they are a member of said group" (§IV-C). Only
// the file owner or root may modify the ACL (POSIX).
func (fs *FS) SetfaclGroup(ctx Context, path string, gid ids.GID, bits uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	if !ctx.Cred.IsRoot() && ctx.Cred.UID != n.owner {
		return fmt.Errorf("%w: setfacl %s", ErrPermission, path)
	}
	if fs.Policy.ACLRestrict && !ctx.Cred.IsRoot() {
		if !ctx.Cred.InGroup(gid) {
			return fmt.Errorf("%w: gid %d (caller uid %d not a member)", ErrACLDenied, gid, ctx.Cred.UID)
		}
		if fs.reg != nil {
			if g, err := fs.reg.Group(gid); err == nil && g.Private && !g.Has(ctx.Cred.UID) {
				return fmt.Errorf("%w: private group %d", ErrACLDenied, gid)
			}
		}
	}
	// smask applies to ACL grants too: an unprivileged grant cannot
	// exceed what the mask allows for the group class... the paper's
	// patch masks world bits; named entries are group-class so they
	// survive, but we still clamp to rwx.
	bits &= 0o7
	if n.acl == nil {
		n.acl = &ACL{}
	}
	for i := range n.acl.Groups {
		if n.acl.Groups[i].GID == gid {
			n.acl.Groups[i].Bits = bits
			return nil
		}
	}
	n.acl.Groups = append(n.acl.Groups, ACLEntryGroup{GID: gid, Bits: bits})
	sort.Slice(n.acl.Groups, func(i, j int) bool { return n.acl.Groups[i].GID < n.acl.Groups[j].GID })
	return nil
}

// SetfaclUser adds or replaces a named-user entry. Under the paper's
// restriction, the caller may only grant to users they share a
// non-private (project) group with — keeping all sharing inside
// approved groups. Requires the identity registry.
func (fs *FS) SetfaclUser(ctx Context, path string, uid ids.UID, bits uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	if !ctx.Cred.IsRoot() && ctx.Cred.UID != n.owner {
		return fmt.Errorf("%w: setfacl %s", ErrPermission, path)
	}
	if fs.Policy.ACLRestrict && !ctx.Cred.IsRoot() && uid != ctx.Cred.UID {
		if fs.reg == nil || !fs.reg.SharedGroup(ctx.Cred.UID, uid) {
			return fmt.Errorf("%w: uid %d and uid %d share no project group", ErrACLDenied, ctx.Cred.UID, uid)
		}
	}
	bits &= 0o7
	if n.acl == nil {
		n.acl = &ACL{}
	}
	for i := range n.acl.Users {
		if n.acl.Users[i].UID == uid {
			n.acl.Users[i].Bits = bits
			return nil
		}
	}
	n.acl.Users = append(n.acl.Users, ACLEntryUser{UID: uid, Bits: bits})
	sort.Slice(n.acl.Users, func(i, j int) bool { return n.acl.Users[i].UID < n.acl.Users[j].UID })
	return nil
}

// Getfacl returns a copy of the ACL on path (nil if none). Requires
// only path resolution, like getfacl(1).
func (fs *FS) Getfacl(ctx Context, path string) (*ACL, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return nil, err
	}
	return n.acl.Clone(), nil
}

// RemoveACL strips the ACL from path (owner or root).
func (fs *FS) RemoveACL(ctx Context, path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirtyLocked()
	n, err := fs.walk(ctx, path)
	if err != nil {
		return err
	}
	if !ctx.Cred.IsRoot() && ctx.Cred.UID != n.owner {
		return fmt.Errorf("%w: setfacl -b %s", ErrPermission, path)
	}
	n.acl = nil
	return nil
}
