package vfs

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func enhancedPolicy() Policy {
	return Policy{SmaskEnabled: true, Smask: DefaultSmask, ACLRestrict: true}
}

func TestSmaskBlocksWorldBitsAtCreate(t *testing.T) {
	fs, _, creds, _ := newWorld(t, enhancedPolicy())
	ctx := Context{Cred: creds["alice"], Umask: 0} // no umask: isolate smask
	if err := fs.WriteFile(ctx, "/home/alice/f", nil, 0o666); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat(ctx, "/home/alice/f")
	if fi.Mode != 0o660 {
		t.Errorf("create mode = %o, want 660 (world bits masked)", fi.Mode)
	}
}

func TestSmaskEnforcedOnChmod(t *testing.T) {
	// The distinguishing property of the kernel patch: unlike umask,
	// smask is immutable and enforced *even on chmod* (§IV-C).
	fs, _, creds, _ := newWorld(t, enhancedPolicy())
	ctx := Ctx(creds["alice"])
	if err := fs.WriteFile(ctx, "/home/alice/f", nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(ctx, "/home/alice/f", 0o666); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat(ctx, "/home/alice/f")
	if fi.Mode&0o007 != 0 {
		t.Errorf("chmod set world bits despite smask: mode = %o", fi.Mode)
	}
	if fi.Mode&0o660 != 0o660 {
		t.Errorf("chmod lost non-world bits: mode = %o", fi.Mode)
	}
}

func TestSmaskDoesNotBindRoot(t *testing.T) {
	fs, _, _, _ := newWorld(t, enhancedPolicy())
	root := Context{Cred: ids.RootCred()}
	if err := fs.WriteFile(root, "/motd", []byte("welcome"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat(root, "/motd")
	if fi.Mode != 0o644 {
		t.Errorf("root create mode = %o, want 644", fi.Mode)
	}
	if err := fs.Chmod(root, "/motd", 0o666); err != nil {
		t.Fatal(err)
	}
	fi, _ = fs.Stat(root, "/motd")
	if fi.Mode != 0o666 {
		t.Errorf("root chmod mode = %o, want 666", fi.Mode)
	}
}

func TestBaselineChmodWorldReadableLeaks(t *testing.T) {
	// Baseline (paper's "before"): without smask, chmod o+r on a file
	// in a world-searchable area lets any stranger read it.
	fs, _, creds, _ := newWorld(t, Policy{})
	if err := fs.CreateTmp("/scratch"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(alice, "/scratch/f", []byte("oops"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(alice, "/scratch/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.ReadFile(bob, "/scratch/f"); err != nil || string(got) != "oops" {
		t.Errorf("baseline world-read failed: %q %v (should leak)", got, err)
	}
}

func TestEnhancedChmodWorldReadableBlocked(t *testing.T) {
	// Enhanced: the identical mistyped chmod leaks nothing.
	fs, _, creds, _ := newWorld(t, enhancedPolicy())
	if err := fs.CreateTmp("/scratch"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(alice, "/scratch/f", []byte("safe"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(alice, "/scratch/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(bob, "/scratch/f"); !errors.Is(err, ErrPermission) {
		t.Errorf("enhanced world-read err = %v, want ErrPermission", err)
	}
}

func TestACLGroupGrantRequiresMembership(t *testing.T) {
	fs, _, creds, projGID := newWorld(t, enhancedPolicy())
	if err := fs.CreateTmp("/scratch"); err != nil {
		t.Fatal(err)
	}
	alice, carol := Ctx(creds["alice"]), Ctx(creds["carol"])
	// Alice ∈ proj: group ACL grant allowed; bob (member) then reads.
	if err := fs.WriteFile(alice, "/scratch/a", []byte("team"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetfaclGroup(alice, "/scratch/a", projGID, 0o4); err != nil {
		t.Fatalf("member group grant: %v", err)
	}
	if _, err := fs.ReadFile(Ctx(creds["bob"]), "/scratch/a"); err != nil {
		t.Errorf("acl-granted member read: %v", err)
	}
	// Carol ∉ proj: her grant to proj is rejected.
	if err := fs.WriteFile(carol, "/scratch/c", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetfaclGroup(carol, "/scratch/c", projGID, 0o4); !errors.Is(err, ErrACLDenied) {
		t.Errorf("non-member group grant err = %v, want ErrACLDenied", err)
	}
}

func TestACLUserGrantRequiresSharedProjectGroup(t *testing.T) {
	fs, _, creds, _ := newWorld(t, enhancedPolicy())
	if err := fs.CreateTmp("/scratch"); err != nil {
		t.Fatal(err)
	}
	alice := Ctx(creds["alice"])
	if err := fs.WriteFile(alice, "/scratch/f", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	// alice and bob share proj: user grant allowed.
	if err := fs.SetfaclUser(alice, "/scratch/f", creds["bob"].UID, 0o4); err != nil {
		t.Errorf("shared-group user grant: %v", err)
	}
	if _, err := fs.ReadFile(Ctx(creds["bob"]), "/scratch/f"); err != nil {
		t.Errorf("user-acl read: %v", err)
	}
	// alice and carol share nothing: grant rejected.
	if err := fs.SetfaclUser(alice, "/scratch/f", creds["carol"].UID, 0o4); !errors.Is(err, ErrACLDenied) {
		t.Errorf("stranger user grant err = %v, want ErrACLDenied", err)
	}
}

func TestACLWithoutRestrictBaseline(t *testing.T) {
	// Baseline: ACLRestrict off lets users grant to anyone — the leak
	// the restriction exists to stop.
	fs, _, creds, _ := newWorld(t, Policy{})
	if err := fs.CreateTmp("/scratch"); err != nil {
		t.Fatal(err)
	}
	alice := Ctx(creds["alice"])
	if err := fs.WriteFile(alice, "/scratch/f", []byte("leak"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetfaclUser(alice, "/scratch/f", creds["carol"].UID, 0o4); err != nil {
		t.Fatalf("baseline user grant: %v", err)
	}
	if got, err := fs.ReadFile(Ctx(creds["carol"]), "/scratch/f"); err != nil || string(got) != "leak" {
		t.Errorf("baseline acl read = %q, %v", got, err)
	}
}

func TestACLOnlyOwnerModifies(t *testing.T) {
	fs, _, creds, projGID := newWorld(t, enhancedPolicy())
	if err := fs.CreateTmp("/scratch"); err != nil {
		t.Fatal(err)
	}
	alice, bob := Ctx(creds["alice"]), Ctx(creds["bob"])
	if err := fs.WriteFile(alice, "/scratch/f", nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetfaclGroup(bob, "/scratch/f", projGID, 0o7); !errors.Is(err, ErrPermission) {
		t.Errorf("non-owner setfacl err = %v, want ErrPermission", err)
	}
	if err := fs.SetfaclUser(bob, "/scratch/f", bob.Cred.UID, 0o7); !errors.Is(err, ErrPermission) {
		t.Errorf("non-owner user setfacl err = %v, want ErrPermission", err)
	}
}

func TestACLReplaceGetfaclRemove(t *testing.T) {
	fs, _, creds, projGID := newWorld(t, enhancedPolicy())
	alice := Ctx(creds["alice"])
	if err := fs.WriteFile(alice, "/home/alice/f", nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetfaclGroup(alice, "/home/alice/f", projGID, 0o4); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetfaclGroup(alice, "/home/alice/f", projGID, 0o6); err != nil {
		t.Fatal(err)
	}
	acl, err := fs.Getfacl(alice, "/home/alice/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(acl.Groups) != 1 || acl.Groups[0].Bits != 0o6 {
		t.Errorf("acl after replace = %+v", acl)
	}
	// Getfacl returns a copy.
	acl.Groups[0].Bits = 0
	again, _ := fs.Getfacl(alice, "/home/alice/f")
	if again.Groups[0].Bits != 0o6 {
		t.Errorf("Getfacl leaked internal state")
	}
	if err := fs.RemoveACL(alice, "/home/alice/f"); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Getfacl(alice, "/home/alice/f"); got != nil {
		t.Errorf("acl after remove = %+v", got)
	}
}

func TestACLEntryLookupHelpers(t *testing.T) {
	a := &ACL{
		Users:  []ACLEntryUser{{UID: 5, Bits: 0o4}},
		Groups: []ACLEntryGroup{{GID: 9, Bits: 0o6}},
	}
	if b, ok := a.userEntry(5); !ok || b != 0o4 {
		t.Errorf("userEntry = %o %v", b, ok)
	}
	if _, ok := a.userEntry(6); ok {
		t.Errorf("userEntry(6) found")
	}
	if b, ok := a.groupEntry(9); !ok || b != 0o6 {
		t.Errorf("groupEntry = %o %v", b, ok)
	}
	if _, ok := a.groupEntry(10); ok {
		t.Errorf("groupEntry(10) found")
	}
	if (*ACL)(nil).Clone() != nil {
		t.Errorf("nil Clone != nil")
	}
}

func TestSmaskRelaxLifecycle(t *testing.T) {
	fs, _, creds, _ := newWorld(t, enhancedPolicy())
	if err := fs.CreateTmp("/datasets"); err != nil {
		t.Fatal(err)
	}
	support := creds["carol"] // carol is support staff today
	tool := NewSmaskRelax(0o002, support.UID)
	base := Context{Cred: support, Umask: 0}

	// Without relax, world-read cannot be set.
	if err := fs.WriteFile(base, "/datasets/model.bin", []byte("w"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat(base, "/datasets/model.bin")
	if fi.Mode&0o004 != 0 {
		t.Fatalf("smask failed to mask: %o", fi.Mode)
	}

	// Inside an smask_relax session, o+r sticks (002 only masks o+w).
	relaxed, err := tool.Enter(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(relaxed, "/datasets/model.bin", 0o644); err != nil {
		t.Fatal(err)
	}
	fi, _ = fs.Stat(base, "/datasets/model.bin")
	if fi.Mode != 0o644 {
		t.Errorf("relaxed chmod mode = %o, want 644", fi.Mode)
	}
	// Any user can now read the dataset.
	if _, err := fs.ReadFile(Ctx(creds["bob"]), "/datasets/model.bin"); err != nil {
		t.Errorf("published dataset read: %v", err)
	}

	// After Leave, the strict mask is back.
	left := tool.Leave(relaxed)
	if err := fs.Chmod(left, "/datasets/model.bin", 0o646); err != nil {
		t.Fatal(err)
	}
	fi, _ = fs.Stat(base, "/datasets/model.bin")
	if fi.Mode&0o007 != 0 {
		t.Errorf("post-leave chmod kept world bits: %o", fi.Mode)
	}

	// Non-whitelisted users are refused.
	if _, err := tool.Enter(Ctx(creds["alice"])); !errors.Is(err, ErrNotWhitelisted) {
		t.Errorf("non-whitelisted Enter err = %v, want ErrNotWhitelisted", err)
	}
}

func TestSetgidStrippedOnForeignGroupChmod(t *testing.T) {
	fs, _, creds, projGID := newWorld(t, Policy{})
	root := Context{Cred: ids.RootCred()}
	if err := fs.WriteFile(root, "/f", nil, 0o2755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/f", creds["carol"].UID, projGID); err != nil {
		t.Fatal(err)
	}
	// Carol owns the file but is not in proj: her chmod drops setgid.
	if err := fs.Chmod(Ctx(creds["carol"]), "/f", 0o2755); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat(root, "/f")
	if fi.Mode&ModeSetgid != 0 {
		t.Errorf("setgid survived foreign-group chmod: %o", fi.Mode)
	}
}

// Property: under the enhanced policy, no sequence of a single user's
// create/chmod calls can ever produce a file with world bits set.
func TestQuickSmaskNoWorldBitsEver(t *testing.T) {
	fs, _, creds, _ := newWorld(t, enhancedPolicy())
	if err := fs.CreateTmp("/scratch"); err != nil {
		t.Fatal(err)
	}
	alice := Context{Cred: creds["alice"], Umask: 0}
	i := 0
	f := func(createMode, chmodMode uint16) bool {
		i++
		path := "/scratch/q" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if err := fs.WriteFile(alice, path, nil, uint32(createMode)&permMask); err != nil {
			return false
		}
		if err := fs.Chmod(alice, path, uint32(chmodMode)&permMask); err != nil {
			return false
		}
		fi, err := fs.Stat(alice, path)
		if err != nil {
			return false
		}
		return fi.Mode&0o007 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: permission evaluation is monotone in the request — if a
// cred can rw, it can r and can w.
func TestQuickAccessMonotone(t *testing.T) {
	fs, _, creds, projGID := newWorld(t, Policy{})
	if err := fs.CreateTmp("/scratch"); err != nil {
		t.Fatal(err)
	}
	alice := Ctx(creds["alice"])
	f := func(mode uint16, who uint8) bool {
		path := "/scratch/m"
		_ = fs.Unlink(Ctx(ids.RootCred()), path)
		if err := fs.WriteFile(Ctx(ids.RootCred()), path, nil, 0o644); err != nil {
			return false
		}
		if err := fs.Chmod(Ctx(ids.RootCred()), path, uint32(mode)&0o777); err != nil {
			return false
		}
		observers := []Context{alice, Ctx(creds["bob"]), Ctx(creds["carol"])}
		obs := observers[int(who)%len(observers)]
		for _, pair := range [][2]uint32{{6, 4}, {6, 2}, {7, 1}, {5, 4}} {
			if fs.Access(obs, path, pair[0]) == nil && fs.Access(obs, path, pair[1]) != nil {
				return false
			}
		}
		_ = projGID
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFileTypeString(t *testing.T) {
	if TypeFile.String() != "file" || TypeDir.String() != "dir" || TypeSocket.String() != "socket" || FileType(9).String() != "?" {
		t.Errorf("FileType.String broken")
	}
}
