package vfs

import (
	"errors"
	"fmt"

	"repro/internal/ids"
)

// SmaskRelax implements the paper's smask_relax tool (§IV-C):
// whitelisted HPC support personnel — research facilitators who need
// to publish shared datasets, AI models, or software trees to all
// users — may enter a shell session whose effective smask is relaxed
// (production uses 002), set global read/execute bits on those areas,
// and then leave the session.
type SmaskRelax struct {
	// RelaxedMask is the session smask, e.g. 0o002.
	RelaxedMask uint32
	whitelist   map[ids.UID]bool
}

// ErrNotWhitelisted is returned when a non-support user invokes
// smask_relax.
var ErrNotWhitelisted = errors.New("vfs: user not whitelisted for smask_relax")

// NewSmaskRelax builds the tool with the given relaxed mask and
// support-staff whitelist.
func NewSmaskRelax(relaxed uint32, staff ...ids.UID) *SmaskRelax {
	wl := make(map[ids.UID]bool, len(staff))
	for _, u := range staff {
		wl[u] = true
	}
	return &SmaskRelax{RelaxedMask: relaxed, whitelist: wl}
}

// Enter returns a Context whose smask is relaxed for the session.
func (s *SmaskRelax) Enter(ctx Context) (Context, error) {
	if !s.whitelist[ctx.Cred.UID] {
		return ctx, fmt.Errorf("%w: uid %d", ErrNotWhitelisted, ctx.Cred.UID)
	}
	nc := ctx
	nc.SmaskOverride = s.RelaxedMask
	nc.HasOverride = true
	return nc, nil
}

// Leave returns a Context with the mount policy's smask back in
// force.
func (s *SmaskRelax) Leave(ctx Context) Context {
	nc := ctx
	nc.SmaskOverride = 0
	nc.HasOverride = false
	return nc
}
