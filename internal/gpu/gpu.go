// Package gpu implements the accelerator substrate and the paper's
// GPU separation measures (§IV-F). GPUs "do not use a traditional
// security model for data resident in memory": device memory has no
// ownership concept and is NOT cleared between jobs. The paper's two
// measures are reproduced here:
//
//  1. assignment: the scheduler prolog chowns the GPU's /dev character
//     file to the allocated user's private group, so unassigned GPUs
//     are not visible at all;
//  2. clearing: the scheduler epilog runs the vendor memory-clear so
//     the next user cannot read the previous user's residue.
//
// Both are toggles so the baseline (leaky) behaviour is measurable.
package gpu

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/sched"
	"repro/internal/simos"
)

// Device is one GPU: a slab of device memory that persists across
// jobs unless explicitly cleared.
type Device struct {
	Index   int
	DevPath string
	node    *simos.Node

	mu       sync.Mutex
	mem      []byte  // allocated on first Write; nil reads as all-zeros
	written  bool    // any byte ever stored; lets Reset skip the memset
	assigned ids.UID // NoUID when free
	jobID    int
}

// GPU errors.
var (
	ErrNotAssigned = errors.New("gpu: device not assigned to caller")
	ErrBusy        = errors.New("gpu: device already assigned")
	ErrOOB         = errors.New("gpu: address out of range")
)

// MemSize is the simulated device memory per GPU.
const MemSize = 1 << 16

// newDevice registers a GPU on a node with unassigned (invisible)
// permissions.
func newDevice(node *simos.Node, index int) *Device {
	// The memory slab is allocated on first Write: device memory that
	// no job ever touches costs nothing, which is what lets a 10k-node
	// GPU fleet exist at all.
	d := &Device{
		Index:   index,
		DevPath: fmt.Sprintf("/dev/nvidia%d", index),
		node:    node,
	}
	d.assigned = ids.NoUID
	// Unassigned: mode 000 — "GPUs that have not been assigned to a
	// user are not visible at all."
	node.AddDev(d.DevPath, ids.Root, ids.RootGroup, 0o000)
	return d
}

// open validates device access: the caller must pass the /dev
// permission check, which after assignment admits only the assigned
// user's private group.
func (d *Device) open(cred ids.Credential) error {
	_, err := d.node.OpenDev(cred, d.DevPath)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNotAssigned, err)
	}
	return nil
}

// Write stores data at offset in device memory.
func (d *Device) Write(cred ids.Credential, offset int, data []byte) error {
	if err := d.open(cred); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if offset < 0 || offset+len(data) > MemSize {
		return fmt.Errorf("%w: [%d,%d)", ErrOOB, offset, offset+len(data))
	}
	if d.mem == nil {
		d.mem = make([]byte, MemSize)
	}
	copy(d.mem[offset:], data)
	d.written = true
	return nil
}

// Read returns length bytes at offset. If the device was handed over
// without clearing, this is where the previous user's residue leaks.
func (d *Device) Read(cred ids.Credential, offset, length int) ([]byte, error) {
	if err := d.open(cred); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if offset < 0 || offset+length > MemSize {
		return nil, fmt.Errorf("%w: [%d,%d)", ErrOOB, offset, offset+length)
	}
	if d.mem == nil {
		// Never written: all zeros, without materializing the slab.
		return make([]byte, length), nil
	}
	return append([]byte(nil), d.mem[offset:offset+length]...), nil
}

// clear zeroes device memory — the vendor-provided epilog step. A
// device nothing ever wrote to is already zero, so the memset is
// skipped (the epilog's cost stays proportional to actual use).
func (d *Device) clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.written {
		return
	}
	for i := range d.mem {
		d.mem[i] = 0
	}
	d.written = false
}

// Assigned returns the currently assigned user (NoUID if free).
func (d *Device) Assigned() ids.UID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.assigned
}

// Manager owns every GPU in the cluster and provides the scheduler
// prolog/epilog hooks.
type Manager struct {
	// ClearOnRelease runs the vendor memory-clear in the epilog
	// (paper's deployment: on; baseline: off).
	ClearOnRelease bool
	// AssignDevPerms narrows /dev permissions to the allocated user
	// (paper's deployment: on; baseline: world-accessible devices).
	AssignDevPerms bool

	mu     sync.Mutex
	byNode map[string][]*Device
	// dirty is set whenever device state may have changed — an
	// assignment through the prolog/epilog or a caller obtaining raw
	// device handles via Devices — so Reset on an untouched manager
	// skips the full device walk (O(nodes×gpus) at XXL scale).
	dirty bool
}

// NewManager equips each node with gpusPerNode devices.
func NewManager(nodes []*simos.Node, gpusPerNode int, assignPerms, clearOnRelease bool) *Manager {
	m := &Manager{
		ClearOnRelease: clearOnRelease,
		AssignDevPerms: assignPerms,
		byNode:         make(map[string][]*Device),
	}
	for _, n := range nodes {
		for i := 0; i < gpusPerNode; i++ {
			d := newDevice(n, i)
			if !assignPerms {
				// Baseline: devices world-accessible like stock
				// drivers (crw-rw-rw-).
				n.AddDev(d.DevPath, ids.Root, ids.RootGroup, 0o666)
			}
			m.byNode[n.Name] = append(m.byNode[n.Name], d)
		}
	}
	return m
}

// Reset rewinds every device to its freshly-constructed state: memory
// zeroed (skipped for devices never written to), assignment dropped,
// and the /dev node restored to the pristine ownership — invisible
// (root:root 000) under AssignDevPerms, world-accessible (0666)
// otherwise. The node's /dev entries themselves persist from
// construction; only their ownership is rewound here.
func (m *Manager) Reset() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirty {
		return nil
	}
	m.dirty = false
	mode := uint32(0o000)
	if !m.AssignDevPerms {
		mode = 0o666
	}
	for _, devs := range m.byNode {
		for _, d := range devs {
			d.mu.Lock()
			d.assigned = ids.NoUID
			d.jobID = 0
			d.mu.Unlock()
			d.clear()
			if err := d.node.ChownDev(ids.RootCred(), d.DevPath, ids.Root, ids.RootGroup, mode); err != nil {
				return err
			}
		}
	}
	return nil
}

// Devices returns the devices on a node.
func (m *Manager) Devices(node string) []*Device {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Raw handles escape the manager's bookkeeping: assume the caller
	// mutates device state so the next Reset does a full sweep.
	m.dirty = true
	return append([]*Device(nil), m.byNode[node]...)
}

// Prolog is the scheduler job-start hook: assign free GPUs on the
// node to the job's user by narrowing /dev permissions to their
// user-private group.
func (m *Manager) Prolog(job *sched.Job, node *simos.Node) error {
	if job.Spec.GPUs == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Assignment mutates device + /dev state; Epilog only ever rewinds
	// what a Prolog assigned, so flagging here covers both hooks.
	m.dirty = true
	need := job.Spec.GPUs
	for _, d := range m.byNode[node.Name] {
		if need == 0 {
			break
		}
		d.mu.Lock()
		free := d.assigned == ids.NoUID
		if free {
			d.assigned = job.User
			d.jobID = job.ID
		}
		d.mu.Unlock()
		if !free {
			continue
		}
		if m.AssignDevPerms {
			if err := node.ChownDev(ids.RootCred(), d.DevPath, ids.Root, job.Cred.EGID, 0o660); err != nil {
				return err
			}
		}
		need--
	}
	if need > 0 {
		return fmt.Errorf("%w: node %s short %d gpus for job %d", ErrBusy, node.Name, need, job.ID)
	}
	return nil
}

// Epilog is the scheduler job-end hook: optionally clear memory, then
// return devices to the unassigned (invisible) state.
func (m *Manager) Epilog(job *sched.Job, node *simos.Node) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.byNode[node.Name] {
		d.mu.Lock()
		owned := d.jobID == job.ID
		if owned {
			d.assigned = ids.NoUID
			d.jobID = 0
		}
		d.mu.Unlock()
		if !owned {
			continue
		}
		if m.ClearOnRelease {
			d.clear()
		}
		if m.AssignDevPerms {
			if err := node.ChownDev(ids.RootCred(), d.DevPath, ids.Root, ids.RootGroup, 0o000); err != nil {
				return err
			}
		}
	}
	return nil
}

// Register wires the manager into a scheduler.
func (m *Manager) Register(s *sched.Scheduler) {
	s.AddProlog(m.Prolog)
	s.AddEpilog(m.Epilog)
}
