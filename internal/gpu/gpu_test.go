package gpu

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/ids"
	"repro/internal/sched"
	"repro/internal/simos"
)

func cred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

func gpuCluster(t *testing.T, assignPerms, clear bool) (*sched.Scheduler, *Manager, []*simos.Node) {
	t.Helper()
	var nodes []*simos.Node
	for i := 0; i < 2; i++ {
		nodes = append(nodes, simos.NewNode(fmt.Sprintf("g%02d", i), simos.Compute, 8, 1000, nil))
	}
	s := sched.New(sched.Config{Policy: sched.PolicyUserWholeNode}, nodes, 2)
	m := NewManager(nodes, 2, assignPerms, clear)
	m.Register(s)
	return s, m, nodes
}

func gpuJob(uid ids.UID, dur int64) sched.JobSpec {
	return sched.JobSpec{Name: "train", Command: "train.py", Cores: 1, MemB: 1, GPUs: 1, Duration: dur}
}

func TestUnassignedGPUInvisible(t *testing.T) {
	_, _, nodes := gpuCluster(t, true, true)
	if devs := nodes[0].VisibleDevs(cred(1000)); len(devs) != 0 {
		t.Errorf("unassigned devices visible: %v", devs)
	}
}

func TestPrologAssignsEpilogRevokes(t *testing.T) {
	s, m, nodes := gpuCluster(t, true, true)
	alice := cred(1000)
	j, err := s.Submit(alice, gpuJob(alice.UID, 3))
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	got, _ := s.Job(j.ID)
	if got.State != sched.Running {
		t.Fatalf("job state %v", got.State)
	}
	node := nodes[0]
	if got.Nodes[0] != node.Name {
		node = nodes[1]
	}
	devs := m.Devices(node.Name)
	if devs[0].Assigned() != alice.UID {
		t.Fatalf("device not assigned to alice")
	}
	// Alice can use the device; bob cannot.
	if err := devs[0].Write(alice, 0, []byte("weights")); err != nil {
		t.Errorf("assigned write: %v", err)
	}
	if _, err := devs[0].Read(cred(2000), 0, 7); !errors.Is(err, ErrNotAssigned) {
		t.Errorf("stranger read err = %v, want ErrNotAssigned", err)
	}
	// Visible to alice only.
	if len(node.VisibleDevs(alice)) == 0 {
		t.Errorf("assigned device not visible to owner")
	}
	if len(node.VisibleDevs(cred(2000))) != 0 {
		t.Errorf("assigned device visible to stranger")
	}
	// After the job, the device is unassigned and invisible again.
	s.RunAll(20)
	if devs[0].Assigned() != ids.NoUID {
		t.Errorf("device still assigned after job end")
	}
	if err := devs[0].Write(alice, 0, []byte("x")); !errors.Is(err, ErrNotAssigned) {
		t.Errorf("post-job write err = %v, want ErrNotAssigned", err)
	}
}

func TestResidueWithoutClear(t *testing.T) {
	// Baseline: no epilog clear, world-accessible devices — the next
	// user reads the previous user's data (paper §IV-F).
	s, m, _ := gpuCluster(t, false, false)
	alice, bob := cred(1000), cred(2000)
	secret := []byte("alice-model-weights")
	ja, _ := s.Submit(alice, gpuJob(alice.UID, 2))
	s.Step()
	got, _ := s.Job(ja.ID)
	node := got.Nodes[0]
	dev := m.Devices(node)[0]
	if err := dev.Write(alice, 100, secret); err != nil {
		t.Fatal(err)
	}
	s.RunAll(20) // alice's job ends; no clear happens

	jb, _ := s.Submit(bob, gpuJob(bob.UID, 2))
	s.Step()
	gb, _ := s.Job(jb.ID)
	if gb.State != sched.Running {
		t.Fatalf("bob's job not running")
	}
	// Bob reads residue.
	residue, err := dev.Read(bob, 100, len(secret))
	if err != nil {
		t.Fatalf("bob read: %v", err)
	}
	if !bytes.Equal(residue, secret) {
		t.Errorf("expected residue leak in baseline, got %q", residue)
	}
}

func TestNoResidueWithClear(t *testing.T) {
	// Enhanced: epilog clears, so bob reads zeros.
	s, m, nodes := gpuCluster(t, true, true)
	_ = nodes
	alice, bob := cred(1000), cred(2000)
	secret := []byte("alice-model-weights")
	ja, _ := s.Submit(alice, gpuJob(alice.UID, 2))
	s.Step()
	got, _ := s.Job(ja.ID)
	dev := m.Devices(got.Nodes[0])[0]
	if err := dev.Write(alice, 100, secret); err != nil {
		t.Fatal(err)
	}
	s.RunAll(20)

	jb, _ := s.Submit(bob, gpuJob(bob.UID, 2))
	s.RunAll(3)
	gb, _ := s.Job(jb.ID)
	if gb.State == sched.Pending {
		t.Fatalf("bob's job pending")
	}
	dev2 := m.Devices(gb.Nodes[0])[0]
	var readable *Device
	if dev2.Assigned() == bob.UID {
		readable = dev2
	} else {
		for _, d := range m.Devices(gb.Nodes[0]) {
			if d.Assigned() == bob.UID {
				readable = d
			}
		}
	}
	if readable == nil {
		// Job may have completed already; re-run with longer duration.
		t.Skip("bob job finished before read; covered by lifecycle test")
	}
	residue, err := readable.Read(bob, 100, len(secret))
	if err != nil {
		t.Fatalf("bob read: %v", err)
	}
	if bytes.Contains(residue, []byte("alice")) {
		t.Errorf("residue leaked despite epilog clear: %q", residue)
	}
}

func TestDeviceBounds(t *testing.T) {
	node := simos.NewNode("g", simos.Compute, 1, 1, nil)
	d := newDevice(node, 0)
	node.AddDev(d.DevPath, ids.Root, ids.RootGroup, 0o666)
	c := cred(1000)
	if err := d.Write(c, MemSize-1, []byte("ab")); !errors.Is(err, ErrOOB) {
		t.Errorf("oob write err = %v", err)
	}
	if _, err := d.Read(c, -1, 4); !errors.Is(err, ErrOOB) {
		t.Errorf("negative read err = %v", err)
	}
	if err := d.Write(c, MemSize-2, []byte("ab")); err != nil {
		t.Errorf("edge write: %v", err)
	}
}

func TestTwoGPUsSameNodeTwoJobsSameUser(t *testing.T) {
	s, m, _ := gpuCluster(t, true, true)
	alice := cred(1000)
	j1, _ := s.Submit(alice, gpuJob(alice.UID, 5))
	j2, _ := s.Submit(alice, gpuJob(alice.UID, 5))
	s.Step()
	g1, _ := s.Job(j1.ID)
	g2, _ := s.Job(j2.ID)
	if g1.State != sched.Running || g2.State != sched.Running {
		t.Fatalf("states %v %v (user-wholenode allows same-user packing)", g1.State, g2.State)
	}
	if g1.Nodes[0] == g2.Nodes[0] {
		devs := m.Devices(g1.Nodes[0])
		assigned := 0
		for _, d := range devs {
			if d.Assigned() == alice.UID {
				assigned++
			}
		}
		if assigned != 2 {
			t.Errorf("assigned GPUs = %d, want 2", assigned)
		}
	}
}
