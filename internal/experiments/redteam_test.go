package experiments

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/fleet"
)

// TestE17MatrixQualitativeStory pins the matrix's paper reading on
// the preset's own seed: baseline falls to every attacker model,
// enhanced falls to none (and detects every campaign), and each
// kill-chain ablation reopens exactly its own measure's steps.
func TestE17MatrixQualitativeStory(t *testing.T) {
	res, err := fleet.Run(fleet.MustPreset(fleet.PresetE17RedTeam), fleet.Options{Seed: fleetSeed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	diagonal := map[string][]string{
		"hidepid":            {"recon-proc"},
		"privatedata":        {"recon-squeue"},
		"wholenode":          {"node-roam"},
		"smask":              {"home-probe"},
		"protected-symlinks": {"symlink-plant"},
		"ubf":                {"ubf-probe", "portal-pivot"},
		"portal":             {"portal-pivot"},
		"gpu":                {"gpu-residue"},
		"container":          {"container-escape"},
	}
	seenAblations := 0
	for _, s := range res.Scenarios {
		a := s.Attack
		if a == nil {
			t.Fatalf("%s: no attack aggregate", s.Name)
		}
		if a.Trials != s.Replications {
			t.Errorf("%s: attack trials %d != replications %d", s.Name, a.Trials, s.Replications)
		}
		switch {
		case strings.HasSuffix(s.Name, "/baseline"):
			if a.Successes != a.Trials {
				t.Errorf("%s: %d/%d campaigns broke through, want all (stock system)", s.Name, a.Successes, a.Trials)
			}
			if a.Detected != 0 {
				t.Errorf("%s: %d campaigns detected — baseline denies nothing", s.Name, a.Detected)
			}
		case strings.HasSuffix(s.Name, "/enhanced"):
			if a.Successes != 0 || len(a.StepLeaks) != 0 {
				t.Errorf("%s: %d/%d campaigns broke through (steps %v), want none",
					s.Name, a.Successes, a.Trials, sortedKeys(a.StepLeaks))
			}
			if a.Detected != a.Trials {
				t.Errorf("%s: only %d/%d campaigns detected — every enhanced campaign hits a denial", s.Name, a.Detected, a.Trials)
			}
		default: // kill-chain ablation rows: e17/kill-chain/-<measure>
			seenAblations++
			measure := s.Name[strings.LastIndex(s.Name, "/-")+2:]
			want, ok := diagonal[measure]
			if !ok {
				t.Fatalf("%s: no diagonal expectation for measure %q", s.Name, measure)
			}
			if a.Successes != a.Trials {
				t.Errorf("%s: %d/%d campaigns broke through, want all (its channel is open)", s.Name, a.Successes, a.Trials)
			}
			got := sortedKeys(a.StepLeaks)
			sort.Strings(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s reopened %v, want exactly %v", s.Name, got, want)
			}
			if a.Detected != a.Trials {
				t.Errorf("%s: only %d/%d campaigns detected — the other 8 measures still deny steps", s.Name, a.Detected, a.Trials)
			}
		}
		// Residual channels leak everywhere their steps run: the
		// kill-chain and scavenger models carry all/some of the three.
		if strings.Contains(s.Name, "kill-chain") && a.ResidualLeaks != 3*a.Trials {
			t.Errorf("%s: %d residual leaks over %d trials, want 3 each", s.Name, a.ResidualLeaks, a.Trials)
		}
	}
	if seenAblations != len(core.Measures()) {
		t.Errorf("matrix has %d ablation rows, want one per registry measure (%d)", seenAblations, len(core.Measures()))
	}
}

// TestE17TableRendering: the rendered matrix carries both axes and
// the story columns.
func TestE17TableRendering(t *testing.T) {
	out := E17RedTeamMatrix().Render()
	for _, want := range []string{
		"E17", "model", "config", "first-leak", "reopened steps",
		"kill-chain", "-gpu", "gpu-residue", "enhanced", "baseline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
	for _, m := range attack.Models() {
		if !strings.Contains(out, m.Model) {
			t.Errorf("matrix missing model row %q", m.Model)
		}
	}
}
