package experiments

import (
	"testing"

	"repro/internal/fleet"
)

// The fleet re-expression of E4 must reproduce the paper's policy
// trade-off in distribution, not just in the table's single draw:
// across all replications user-wholenode has zero cross-user
// cofailures, shared has some, and wholenode's utilization beats
// exclusive's.
func TestE4FleetReproducesPolicyTradeoff(t *testing.T) {
	res, err := fleet.Run(fleet.MustPreset(fleet.PresetE4PolicyGrid), fleet.Options{Seed: fleetSeed, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, s := range res.Scenarios {
		byName[s.Name] = i
	}
	shared := res.Scenarios[byName["e4/shared"]]
	exclusive := res.Scenarios[byName["e4/exclusive"]]
	wholenode := res.Scenarios[byName["e4/user-wholenode"]]

	if wholenode.Cofailures != 0 {
		t.Errorf("user-wholenode cofailures = %d over %d reps, want 0", wholenode.Cofailures, wholenode.Replications)
	}
	if shared.Cofailures == 0 {
		t.Errorf("shared saw no cross-user cofailures over %d reps — OOM injection broken?", shared.Replications)
	}
	if wholenode.Util.Mean <= exclusive.Util.Mean {
		t.Errorf("wholenode util %.3f <= exclusive %.3f: the paper's packing claim failed",
			wholenode.Util.Mean, exclusive.Util.Mean)
	}
	// Even the worst wholenode replication must beat exclusive's best.
	if wholenode.Util.Min <= exclusive.Util.Max {
		t.Errorf("wholenode min util %.3f <= exclusive max %.3f: trade-off does not hold in distribution",
			wholenode.Util.Min, exclusive.Util.Max)
	}
	for _, s := range res.Scenarios {
		if s.Unfinished != 0 {
			t.Errorf("%s: %d jobs unfinished at horizon", s.Name, s.Unfinished)
		}
	}
}

// The E16 drain campaign's structure: only the wholenode ablation may
// produce cross-user cofailures; the control never does.
func TestE16FleetDrainShape(t *testing.T) {
	res, err := fleet.Run(fleet.MustPreset(fleet.PresetE16AblationDrain), fleet.Options{Seed: fleetSeed, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Scenarios {
		switch s.Name {
		case "e16/-wholenode":
			if s.Cofailures == 0 {
				t.Errorf("%s: expected cross-user cofailures when wholenode is ablated", s.Name)
			}
		default:
			if s.Cofailures != 0 {
				t.Errorf("%s: %d cross-user cofailures under user-wholenode scheduling", s.Name, s.Cofailures)
			}
		}
	}
}
