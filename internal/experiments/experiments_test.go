package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// row helpers

func findRows(rows [][]string, match func([]string) bool) [][]string {
	var out [][]string
	for _, r := range rows {
		if match(r) {
			out = append(out, r)
		}
	}
	return out
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return n
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return f
}

func TestE1Shape(t *testing.T) {
	rows := E1ProcessVisibility().Rows()
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 3 hidepid × 3 observers", len(rows))
	}
	for _, r := range rows {
		hide, obs := r[0], r[1]
		listed, readable := atoi(t, r[2]), atoi(t, r[3])
		switch {
		case obs == "root" || obs == "support+seepid":
			if listed < 60 {
				t.Errorf("hidepid=%s %s lists %d, want >= 60", hide, obs, listed)
			}
		case hide == "2":
			if listed != 20 {
				t.Errorf("hidepid=2 user lists %d, want exactly own 20", listed)
			}
		case hide == "1":
			if listed < 60 || readable != 20 {
				t.Errorf("hidepid=1 user: listed=%d readable=%d, want >=60 and 20", listed, readable)
			}
		case hide == "0":
			if listed != readable || listed < 60 {
				t.Errorf("hidepid=0 user: listed=%d readable=%d", listed, readable)
			}
		}
		if readable > listed {
			t.Errorf("readable %d > listed %d", readable, listed)
		}
	}
}

func TestE2Shape(t *testing.T) {
	rows := E2CVEMitigation().Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch r[0] {
		case "baseline":
			if r[2] != "yes" {
				t.Errorf("baseline should expose the secret")
			}
		case "enhanced":
			if r[2] != "no" {
				t.Errorf("enhanced should pre-mitigate the CVE")
			}
		}
	}
}

func TestE3Shape(t *testing.T) {
	rows := E3SchedulerPrivacy().Rows()
	for _, r := range rows {
		cfg, obs := r[0], r[1]
		squeue := atoi(t, r[2])
		switch {
		case cfg == "enhanced" && obs == "user0":
			if squeue != 25 {
				t.Errorf("enhanced user0 squeue = %d, want 25 (own only)", squeue)
			}
		case cfg == "baseline" && obs == "user0":
			if squeue != 100 {
				t.Errorf("baseline user0 squeue = %d, want all 100", squeue)
			}
		case obs == "root":
			if squeue != 100 {
				t.Errorf("%s root squeue = %d, want 100", cfg, squeue)
			}
		case obs == "user0 (after drain)":
			want := 25
			if cfg == "baseline" {
				want = 100
			}
			if sacct := atoi(t, r[3]); sacct != want {
				t.Errorf("%s drained sacct = %d, want %d", cfg, sacct, want)
			}
		}
	}
}

func TestE4Shape(t *testing.T) {
	rows := E4SchedulingPolicies().Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := map[string][]string{}
	for _, r := range rows {
		byPolicy[r[0]] = r
	}
	shared, excl, whole := byPolicy["shared"], byPolicy["exclusive"], byPolicy["user-wholenode"]
	if shared == nil || excl == nil || whole == nil {
		t.Fatalf("missing policies: %v", byPolicy)
	}
	// Blast radius: shared policy kills other users' jobs; the
	// paper's policy never does.
	if atoi(t, shared[4]) == 0 {
		t.Errorf("shared policy shows no cross-user cofailures; fault injection broken")
	}
	if atoi(t, whole[4]) != 0 {
		t.Errorf("user-wholenode cofailures = %s, want 0", whole[4])
	}
	if atoi(t, excl[4]) != 0 {
		t.Errorf("exclusive cofailures = %s, want 0", excl[4])
	}
	// Separation invariant.
	if atoi(t, whole[5]) > 1 {
		t.Errorf("user-wholenode max users/node = %s", whole[5])
	}
	if atoi(t, shared[5]) <= 1 {
		t.Errorf("shared policy never mixed users — workload too small?")
	}
	// Utilization/makespan ordering: user-wholenode beats exclusive
	// for many small jobs (the paper's motivation for the policy).
	if atof(t, whole[1]) <= atof(t, excl[1]) {
		t.Errorf("utilization: user-wholenode %s <= exclusive %s", whole[1], excl[1])
	}
	if atoi(t, whole[2]) >= atoi(t, excl[2]) {
		t.Errorf("makespan: user-wholenode %s >= exclusive %s", whole[2], excl[2])
	}
}

func TestE5Shape(t *testing.T) {
	rows := E5SSHGate().Rows()
	want := map[[2]string]string{
		{"baseline", "owner -> job node"}:    "ALLOW",
		{"baseline", "owner -> other node"}:  "ALLOW", // no pam: roam anywhere
		{"baseline", "stranger -> job node"}: "ALLOW",
		{"baseline", "root -> job node"}:     "ALLOW",
		{"enhanced", "owner -> job node"}:    "ALLOW",
		{"enhanced", "owner -> other node"}:  "deny",
		{"enhanced", "stranger -> job node"}: "deny",
		{"enhanced", "root -> job node"}:     "ALLOW",
	}
	seen := 0
	for _, r := range rows {
		k := [2]string{r[0], r[1]}
		if w, ok := want[k]; ok {
			seen++
			if r[2] != w {
				t.Errorf("%v = %s, want %s", k, r[2], w)
			}
		}
	}
	if seen != len(want) {
		t.Errorf("saw %d/%d expected rows", seen, len(want))
	}
}

func TestE6Shape(t *testing.T) {
	rows := E6FilesystemMatrix().Rows()
	want := map[string][2]string{
		"stranger reads home file":         {"SHARED", "blocked"},
		"chmod o+r then stranger read":     {"SHARED", "blocked"},
		"ACL grant to stranger":            {"SHARED", "blocked"},
		"ACL grant to project member":      {"SHARED", "SHARED"}, // intended sharing preserved
		"stranger reads /tmp file content": {"SHARED", "blocked"},
		"stranger lists /tmp file names":   {"SHARED", "SHARED"}, // residual
		"project member reads /proj file":  {"SHARED", "SHARED"}, // intended sharing preserved
	}
	for _, r := range rows {
		w, ok := want[r[0]]
		if !ok {
			t.Errorf("unexpected attempt %q", r[0])
			continue
		}
		if r[1] != w[0] || r[2] != w[1] {
			t.Errorf("%q = (%s, %s), want (%s, %s)", r[0], r[1], r[2], w[0], w[1])
		}
	}
	if len(rows) != len(want) {
		t.Errorf("rows = %d, want %d", len(rows), len(want))
	}
}

func TestE7Shape(t *testing.T) {
	rows := E7UBFMatrix().Rows()
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 4 scenarios × 2 protos", len(rows))
	}
	for _, r := range rows {
		scenario, baseline, enhanced := r[0], r[2], r[3]
		if baseline != "ALLOW" {
			t.Errorf("baseline %q = %s, want ALLOW (no firewall)", scenario, baseline)
		}
		wantEnhanced := "deny"
		if scenario == "same user" || scenario == "project peer, listener under sg team" {
			wantEnhanced = "ALLOW"
		}
		if enhanced != wantEnhanced {
			t.Errorf("enhanced %q = %s, want %s", scenario, enhanced, wantEnhanced)
		}
	}
}

func TestE8Shape(t *testing.T) {
	rows := E8UBFOverhead().Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		hooks, idents, hits := atoi(t, r[1]), atoi(t, r[2]), atoi(t, r[3])
		switch r[0] {
		case "no firewall (baseline)":
			if hooks != 0 || idents != 0 {
				t.Errorf("baseline did work: hooks=%d idents=%d", hooks, idents)
			}
		case "UBF, no verdict cache":
			if hooks != 1000 || idents != 2000 || hits != 0 {
				t.Errorf("no-cache: hooks=%d idents=%d hits=%d, want 1000/2000/0", hooks, idents, hits)
			}
		case "UBF + verdict cache":
			if hooks != 1000 || hits != 999 || idents != 2000 {
				t.Errorf("cache: hooks=%d idents=%d hits=%d, want 1000/2000/999", hooks, idents, hits)
			}
		}
	}
}

func TestE9Shape(t *testing.T) {
	rows := E9GPUResidue().Rows()
	for _, r := range rows {
		switch r[0] {
		case "baseline":
			if r[1] != "yes" || r[2] != "yes" {
				t.Errorf("baseline = %v, want open device + residue", r)
			}
		case "enhanced":
			if r[1] != "no" || r[2] != "no" {
				t.Errorf("enhanced = %v, want closed device + no residue", r)
			}
		}
	}
}

func TestE10Shape(t *testing.T) {
	rows := E10ResidualChannels().Rows()
	if len(rows) != 3 {
		t.Fatalf("residual channels = %d, want 3", len(rows))
	}
	channels := map[string]bool{}
	for _, r := range rows {
		channels[r[0]] = true
		if r[1] != "yes" {
			t.Errorf("residual channel %s closed — does not match the paper", r[0])
		}
	}
	for _, want := range []string{"tmp-names", "abstract-socket", "rdma-cm"} {
		if !channels[want] {
			t.Errorf("missing residual channel %s", want)
		}
	}
}

func TestE11Shape(t *testing.T) {
	rows := E11Portal().Rows()
	want := map[[2]string]string{
		{"baseline", "owner -> own app (node A)"}:      "ALLOW",
		{"baseline", "other user -> owner's app"}:      "ALLOW", // auth only, path unguarded
		{"baseline", "unauthenticated -> owner's app"}: "deny",  // portal auth still applies
		{"enhanced", "owner -> own app (node A)"}:      "ALLOW",
		{"enhanced", "owner -> own app (node B)"}:      "ALLOW", // any node, any partition
		{"enhanced", "other user -> owner's app"}:      "deny",
		{"enhanced", "unauthenticated -> owner's app"}: "deny",
	}
	for _, r := range rows {
		if w, ok := want[[2]string{r[0], r[1]}]; ok && r[2] != w {
			t.Errorf("%s %q = %s, want %s", r[0], r[1], r[2], w)
		}
	}
}

func TestE12Shape(t *testing.T) {
	rows := E12Container().Rows()
	for _, r := range rows {
		cfg, probe, res := r[0], r[1], r[2]
		switch probe {
		case "request privileged container":
			if res != "deny" {
				t.Errorf("%s: privileged container allowed", cfg)
			}
		case "read another user's home file", "dial another user's service":
			want := "ALLOW"
			if cfg == "enhanced" {
				want = "deny"
			}
			if res != want {
				t.Errorf("%s %q = %s, want %s", cfg, probe, res, want)
			}
		}
	}
}

func TestAllRuns(t *testing.T) {
	tables := All()
	// E1..E17 plus the two fleet-replicated campaign tables.
	if len(tables) != 19 {
		t.Fatalf("tables = %d, want 19", len(tables))
	}
	for _, tb := range tables {
		out := tb.Render()
		if !strings.HasPrefix(out, "== E") {
			t.Errorf("table title malformed: %q", strings.SplitN(out, "\n", 2)[0])
		}
		if len(tb.Rows()) == 0 {
			t.Errorf("table %q has no rows", tb.Title)
		}
	}
}
