package experiments

// E17: the attacker-model matrix. Where E1..E12 probe channels one at
// a time and E16 ablates defenses against a fixed battery, E17 runs
// *campaigns*: composed multi-step adversaries (internal/attack)
// executing concurrently with a legitimate workload, replicated under
// independent seeds by the fleet executor. Each cell reports the
// attacker's success rate, how deep into the kill chain the first
// non-residual leak happened, and the detection signal — the tick
// latency from campaign start to the first denied step (a denial is
// the earliest observable a defender could alert on).
//
// The matrix reads as the paper's Results section, adversarially
// re-derived: baseline rows fall to every model at step 1; enhanced
// rows never fall (only the three conceded residual channels leak)
// and detect the campaign within a few ticks; and each single-measure
// ablation row reopens exactly its own measure's steps — the E16
// diagonal, now measured as steps-to-first-leak depth instead of a
// boolean battery.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/fleet"
	"repro/internal/metrics"
)

// E17RedTeamMatrix runs the e17-redteam preset and renders the
// attacker-model × configuration matrix.
func E17RedTeamMatrix() *metrics.Table {
	res, err := fleet.Run(fleet.MustPreset(fleet.PresetE17RedTeam), fleet.Options{Seed: fleetSeed})
	if err != nil {
		panic(err)
	}
	t := metrics.NewTable(
		"E17: red-team campaigns — attacker model × configuration",
		"model", "config", "success", "first-leak", "detected", "latency", "reopened steps", "residual")
	for _, s := range res.Scenarios {
		model, config := splitE17Name(s.Name)
		a := s.Attack
		firstLeak, latency := "—", "—"
		if a.Successes > 0 {
			firstLeak = fmt.Sprintf("%.1f", a.StepsToFirstLeak.Mean)
		}
		if a.Detected > 0 {
			latency = fmt.Sprintf("%.1f", a.DetectionLatency.Mean)
		}
		t.AddRow(model, config,
			fmt.Sprintf("%d/%d", a.Successes, a.Trials),
			firstLeak,
			fmt.Sprintf("%d/%d", a.Detected, a.Trials),
			latency,
			reopenedSteps(a),
			a.ResidualLeaks)
	}
	t.AddNote("success = trials with ≥1 non-residual leak; first-leak = mean 1-based kill-chain index of the breakthrough step")
	t.AddNote("detected = trials with ≥1 denied step; latency = mean ticks from campaign start to the first denial")
	t.AddNote("enhanced closes every model (residual channels only); each ablation reopens exactly its own measure's steps")
	t.AddNote("campaigns run concurrently with a legitimate mix; seed %d, %d replications per cell", fleetSeed, res.Scenarios[0].Replications)
	return t
}

// splitE17Name splits "e17/<model>/<config>" into its matrix axes.
func splitE17Name(name string) (model, config string) {
	parts := strings.SplitN(name, "/", 3)
	if len(parts) != 3 {
		return name, "?"
	}
	return parts[1], parts[2]
}

// reopenedSteps renders the non-residual leaking steps, sorted — the
// diagonal's evidence column.
func reopenedSteps(a *attack.Agg) string {
	names := sortedKeys(a.StepLeaks)
	if len(names) == 0 {
		return "—"
	}
	return strings.Join(names, ", ")
}

// sortedKeys is the shared map-to-sorted-slice helper for leak maps.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
