package experiments

// E13..E15 cover the paper's comparators and framing arguments:
// the traditional PPS firewall it replaces (§IV-D), the
// application-layer "Option #1" of encrypting MPI traffic (§III,
// §IV-D), and the Spectre/Meltdown security-tax framing of the
// introduction (§I).

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/mitig"
	"repro/internal/mpicrypt"
	"repro/internal/netsim"
	"repro/internal/ppsfw"
	"repro/internal/ubf"
)

// E13PPSComparison: the "version 0 app" dilemma. A traditional
// ports/protocols/services firewall either blocks the user's own
// novel application or, once a broad range is opened, admits
// cross-user traffic. The UBF handles both correctly with no
// pre-approval workflow.
func E13PPSComparison() *metrics.Table {
	t := metrics.NewTable("E13: traditional PPS firewall vs user-based firewall",
		"firewall policy", "owner reaches own novel app", "stranger blocked", "admin pre-approval needed")
	owner := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	stranger := ids.Credential{UID: 2000, EGID: 2000, Groups: []ids.GID{2000}}
	const novelPort = 47113

	run := func(install func(h *netsim.Host)) (ownerOK, strangerBlocked bool) {
		n := netsim.NewNetwork()
		h1, h2 := n.AddHost("a"), n.AddHost("b")
		install(h2)
		if _, err := h2.Listen(owner, netsim.TCP, novelPort); err != nil {
			panic(err)
		}
		_, err := h1.Dial(owner, netsim.TCP, "b", novelPort)
		ownerOK = err == nil
		_, err = h1.Dial(stranger, netsim.TCP, "b", novelPort)
		strangerBlocked = err != nil
		return
	}

	ok, blocked := run(func(h *netsim.Host) {
		fw := ppsfw.New()
		fw.Approve("ssh", netsim.TCP, 22, 22)
		fw.InstallOn(h)
	})
	t.AddRow("PPS, strict service list", yesNo(ok), yesNo(blocked), "yes (per app)")

	ok, blocked = run(func(h *netsim.Host) {
		fw := ppsfw.New()
		fw.Approve("user-ports", netsim.TCP, 1024, 65535)
		fw.InstallOn(h)
	})
	t.AddRow("PPS, open user-port range", yesNo(ok), yesNo(blocked), "yes (once)")

	ok, blocked = run(func(h *netsim.Host) {
		d := ubf.New(ubf.Config{AllowGroupPeers: true})
		d.InstallOn(h)
	})
	t.AddRow("user-based firewall", yesNo(ok), yesNo(blocked), "no")

	t.AddNote("the paper: a PPS firewall 'would have no way to make an intelligent decision' about version-0 apps")
	return t
}

// E14CryptoMPIComparison: where the cost lives for "Option #1"
// (encrypt MPI traffic in the library) versus "Option #2" (the UBF in
// the system). The UBF pays two ident queries per NEW connection and
// nothing per packet; AES-GCM pays a transform on every byte forever,
// and protects confidentiality but not who-may-connect.
func E14CryptoMPIComparison() *metrics.Table {
	t := metrics.NewTable("E14: Option 1 (encrypted MPI) vs Option 2 (UBF) — 100 conns × 50 packets",
		"approach", "ident queries", "crypto ops", "cross-user conn blocked", "payload confidential on wire")
	const conns, packets = 100, 50
	payload := []byte("halo-exchange-block-0123456789abcdef")

	// Option 2: UBF.
	{
		n := netsim.NewNetwork()
		h1, h2 := n.AddHost("a"), n.AddHost("b")
		d := ubf.New(ubf.Config{AllowGroupPeers: true})
		d.InstallOn(h1)
		d.InstallOn(h2)
		alice := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
		mallory := ids.Credential{UID: 2000, EGID: 2000, Groups: []ids.GID{2000}}
		l, err := h2.Listen(alice, netsim.TCP, 9000)
		if err != nil {
			panic(err)
		}
		for i := 0; i < conns; i++ {
			c, err := h1.Dial(alice, netsim.TCP, "b", 9000)
			if err != nil {
				panic(err)
			}
			for p := 0; p < packets; p++ {
				if err := c.Send(payload); err != nil {
					panic(err)
				}
			}
			c.Close()
		}
		_, crossErr := h1.Dial(mallory, netsim.TCP, "b", 9000)
		// Wire sniff: data is plaintext (UBF does not encrypt).
		c, _ := h1.Dial(alice, netsim.TCP, "b", 9000)
		_ = c.Send(payload)
		var sniffed []byte
		for {
			sc, ok := l.Accept()
			if !ok {
				break
			}
			if d, ok := sc.Recv(); ok {
				sniffed = d
			}
		}
		confidential := string(sniffed) != string(payload)
		t.AddRow("UBF (system-level)", n.IdentQueries.Load(), 0, yesNo(crossErr != nil), yesNo(confidential))
	}

	// Option 1: encrypted MPI, no firewall.
	{
		n := netsim.NewNetwork()
		h1, h2 := n.AddHost("a"), n.AddHost("b")
		alice := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
		mallory := ids.Credential{UID: 2000, EGID: 2000, Groups: []ids.GID{2000}}
		l, err := h2.Listen(alice, netsim.TCP, 9000)
		if err != nil {
			panic(err)
		}
		cryptoOps := 0
		var lastWire []byte
		for i := 0; i < conns; i++ {
			raw, err := h1.Dial(alice, netsim.TCP, "b", 9000)
			if err != nil {
				panic(err)
			}
			sc, err := mpicrypt.Secure(raw, []byte("job-token"))
			if err != nil {
				panic(err)
			}
			for p := 0; p < packets; p++ {
				if err := sc.Send(payload); err != nil {
					panic(err)
				}
				cryptoOps++
			}
			raw.Close()
		}
		// Cross-user connection: nothing stops it at the transport.
		_, crossErr := h1.Dial(mallory, netsim.TCP, "b", 9000)
		// Wire sniff of one message.
		raw, _ := h1.Dial(alice, netsim.TCP, "b", 9000)
		sc, _ := mpicrypt.Secure(raw, []byte("job-token"))
		_ = sc.Send(payload)
		for {
			acc, ok := l.Accept()
			if !ok {
				break
			}
			if d, ok := acc.Recv(); ok {
				lastWire = d
			}
		}
		confidential := string(lastWire) != string(payload)
		t.AddRow("encrypted MPI (library-level)", n.IdentQueries.Load(), cryptoOps, yesNo(crossErr != nil), yesNo(confidential))
	}
	t.AddNote("UBF: fixed per-connection cost, no data-path work, blocks strangers, leaves payload in clear")
	t.AddNote("crypto MPI: per-packet cost forever, hides payload, but any user may still connect (Option-1 gap)")
	return t
}

// E15MitigationTax: the introduction's framing — kernel-level
// Spectre/Meltdown mitigations cost 15-40% on affected workloads,
// while the paper's separation measures add no data-path cost at all.
func E15MitigationTax() *metrics.Table {
	t := metrics.NewTable("E15: Spectre/Meltdown mitigation tax by workload class (§I, ref [2])",
		"workload", "slowdown (mitigations=auto)", "in paper's 15-40% band")
	on := mitig.DefaultMitigations()
	for _, w := range mitig.Profiles() {
		s := mitig.Slowdown(w, on)
		band := "n/a (compute-bound)"
		if w.SyscallUnits+w.SwitchUnits > 5 {
			band = yesNo(s >= 0.15 && s <= 0.40)
		}
		t.AddRow(w.Name, fmt.Sprintf("%.1f%%", s*100), band)
	}
	t.AddNote("contrast: E8 shows the UBF adds zero per-packet work; separation is not a mitigation-style tax")
	return t
}
