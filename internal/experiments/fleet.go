package experiments

// The fleet re-expression of the two campaign-shaped experiments:
// E4's policy comparison and E16's drain column were single RNG
// draws in their tables; as fleet campaigns each cell becomes a
// replicated distribution (mean ± sd over independently-seeded
// trials), which is the replication-then-summarize methodology the
// exemplar analysis pipelines apply to per-run result files. The
// campaign specs themselves are fleet presets, shared with
// cmd/fleetrun; these wrappers run them and annotate the tables with
// the paper-claim reading.

import (
	"repro/internal/fleet"
	"repro/internal/metrics"
)

// fleetSeed pins the campaign master seed the tables are generated
// with, so the rendered numbers are reproducible like every other
// experiment.
const fleetSeed = 2024

// E4FleetReplicated runs the E4 policy grid as a fleet campaign:
// 3 policies × 8 replications of the OOM-faulted 300-job mix.
func E4FleetReplicated() *metrics.Table {
	res, err := fleet.Run(fleet.MustPreset(fleet.PresetE4PolicyGrid), fleet.Options{Seed: fleetSeed})
	if err != nil {
		panic(err)
	}
	t := res.Table()
	t.Title = "E4 (fleet-replicated): policy grid, 8 independent seeds per policy"
	t.AddNote("E4 replicated: the policy trade-off must hold in distribution, not in one draw —")
	t.AddNote("user-wholenode keeps cofailures at 0 across every replication while matching shared's utilization")
	return t
}

// E16FleetDrainReplicated runs the E16 drain column as a fleet
// campaign: enhanced-minus-one-measure × 5 replications of the
// OOM-faulted drain. (The probe half of E16 is boolean and stays in
// AblationSweep.)
func E16FleetDrainReplicated() *metrics.Table {
	res, err := fleet.Run(fleet.MustPreset(fleet.PresetE16AblationDrain), fleet.Options{Seed: fleetSeed})
	if err != nil {
		panic(err)
	}
	t := res.Table()
	t.Title = "E16 (fleet-replicated): ablation drain, 5 independent seeds per ablation"
	t.AddNote("E16 drain replicated: only the wholenode ablation moves utilization or cofailures; every other row matches the control in distribution")
	return t
}
