package experiments

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestAblationSweepDiagonal pins the E16 matrix: every ablated
// measure reopens exactly the channels its paper section claims to
// close — no more (a measure silently covering for another), no less
// (a measure that stopped mattering).
func TestAblationSweepDiagonal(t *testing.T) {
	want := map[string][]string{
		"(none)":             nil,
		"hidepid":            {chanE1Pids},
		"privatedata":        {chanE3Jobs},
		"wholenode":          {chanE5SSH},
		"smask":              {chanE6Files},
		"protected-symlinks": {chanE6Symlink},
		// Without the UBF the portal's forwarded hop is unguarded
		// too, so the network ablation reopens both network channels.
		"ubf":       {chanE7Flow, chanE11Portal},
		"portal":    {chanE11Portal},
		"gpu":       {chanE9GPU},
		"container": {chanE12Runtime},
	}
	rows, err := AblationSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(core.Measures())+1 {
		t.Fatalf("sweep has %d rows, want control + %d measures", len(rows), len(core.Measures()))
	}
	var control AblationRow
	for _, r := range rows {
		expect, known := want[r.Measure]
		if !known {
			t.Errorf("unexpected sweep row %q — extend this test with its expected channels", r.Measure)
			continue
		}
		got := append([]string(nil), r.Reopened...)
		sort.Strings(got)
		sort.Strings(expect)
		if !reflect.DeepEqual(got, expect) {
			t.Errorf("ablating %s reopened %v, want %v", r.Measure, r.Reopened, expect)
		}
		if r.Measure == "(none)" {
			control = r
		}
	}
	// The E4 half: only the scheduling ablation moves the drain —
	// shared packing buys utilization but reopens the cross-user OOM
	// blast radius the paper's policy exists to confine.
	for _, r := range rows {
		switch r.Measure {
		case "wholenode":
			if r.Cofailures == 0 {
				t.Errorf("wholenode ablation: no cross-user cofailures (blast radius should reopen)")
			}
			if r.Util <= control.Util {
				t.Errorf("wholenode ablation: util %.3f not above control %.3f (shared should pack tighter)", r.Util, control.Util)
			}
		case "(none)":
			if r.Cofailures != 0 {
				t.Errorf("control drain has %d cross-user cofailures", r.Cofailures)
			}
		default:
			if r.Cofailures != 0 {
				t.Errorf("ablating %s changed OOM blast radius (%d cofailures)", r.Measure, r.Cofailures)
			}
			if r.UtilDelta != 0 {
				t.Errorf("ablating %s moved utilization by %+.3f (non-scheduler measures are control-plane only)", r.Measure, r.UtilDelta)
			}
		}
	}
}

// TestE16TableShape: the rendered matrix stays consumable by the
// harness (header + one row per registry measure + control).
func TestE16TableShape(t *testing.T) {
	tab := E16AblationMatrix()
	render := tab.Render()
	for _, frag := range []string{"E16", "hidepid", "§IV-G", "E7 stranger-flow"} {
		if !strings.Contains(render, frag) {
			t.Errorf("E16 render missing %q:\n%s", frag, render)
		}
	}
}
