package experiments

import (
	"strings"
	"testing"
)

func TestE13Shape(t *testing.T) {
	rows := E13PPSComparison().Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := map[string][]string{}
	for _, r := range rows {
		byPolicy[r[0]] = r
	}
	strict := byPolicy["PPS, strict service list"]
	open := byPolicy["PPS, open user-port range"]
	u := byPolicy["user-based firewall"]
	// Strict PPS blocks the owner's own app.
	if strict[1] != "no" {
		t.Errorf("strict PPS admitted the novel app")
	}
	// Open PPS admits everyone, including the stranger.
	if open[1] != "yes" || open[2] != "no" {
		t.Errorf("open PPS = %v, want owner yes / stranger NOT blocked", open)
	}
	// UBF: both correct, no pre-approval.
	if u[1] != "yes" || u[2] != "yes" || u[3] != "no" {
		t.Errorf("UBF row = %v", u)
	}
}

func TestE14Shape(t *testing.T) {
	rows := E14CryptoMPIComparison().Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r[0], "UBF"):
			// Fixed setup cost: >= 2 ident queries per connection,
			// zero crypto ops, stranger blocked, payload in clear.
			if atoi(t, r[1]) < 200 || atoi(t, r[2]) != 0 {
				t.Errorf("UBF row costs = %v", r)
			}
			if r[3] != "yes" {
				t.Errorf("UBF did not block the stranger")
			}
			if r[4] != "no" {
				t.Errorf("UBF claims wire confidentiality")
			}
		case strings.HasPrefix(r[0], "encrypted MPI"):
			// Per-packet cost (100×50 ops), no ident, stranger NOT
			// blocked, payload confidential.
			if atoi(t, r[1]) != 0 || atoi(t, r[2]) != 5000 {
				t.Errorf("crypto row costs = %v", r)
			}
			if r[3] != "no" {
				t.Errorf("crypto MPI blocked the stranger (it cannot)")
			}
			if r[4] != "yes" {
				t.Errorf("crypto MPI leaked plaintext on the wire")
			}
		default:
			t.Errorf("unexpected row %v", r)
		}
	}
}

func TestE15Shape(t *testing.T) {
	rows := E15MitigationTax().Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	inBand := 0
	for _, r := range rows {
		if strings.HasPrefix(r[0], "compute-bound") {
			// Compute-bound must be near zero.
			if !strings.HasPrefix(r[1], "0.") && !strings.HasPrefix(r[1], "1.") && !strings.HasPrefix(r[1], "2.") && !strings.HasPrefix(r[1], "3.") && !strings.HasPrefix(r[1], "4.") {
				t.Errorf("compute-bound slowdown = %s, want < 5%%", r[1])
			}
			continue
		}
		if r[2] == "yes" {
			inBand++
		}
	}
	if inBand != 3 {
		t.Errorf("%d/3 kernel-heavy workloads in the 15-40%% band", inBand)
	}
}
