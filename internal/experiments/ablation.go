package experiments

// E16: the ablation matrix the paper argues qualitatively but never
// prints. §IV presents enhanced user separation as a COORDINATED set
// of individually deployable measures; E16 makes the coordination
// visible by building "enhanced minus one measure" for every entry
// of the core registry and probing which cross-user channels reopen
// (the E1/E3/E5/E6/E7/E9/E11/E12 separation probes) plus what the
// ablation does to utilization and OOM blast radius (the E4 drain).
// The expected shape is a diagonal: each measure reopens exactly the
// channels its paper section claims to close.

import (
	"fmt"
	"strings"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// AblationRow is one Enhanced-minus-one measurement.
type AblationRow struct {
	Measure  string // ablated measure name; "(none)" for the control
	Section  string
	Reopened []string // channel labels that leaked (empty = all held)
	// Util / Cofailures come from the E4-style drain under the
	// ablated config; UtilDelta is Util minus the control's.
	Util       float64
	UtilDelta  float64
	Cofailures int
}

// Channel labels, keyed to the experiment that owns each probe.
const (
	chanE1Pids     = "E1 foreign-pids"
	chanE3Jobs     = "E3 foreign-jobs"
	chanE5SSH      = "E5 ssh-roam"
	chanE6Files    = "E6 file-content"
	chanE6Symlink  = "E6 symlink-clobber"
	chanE7Flow     = "E7 stranger-flow"
	chanE9GPU      = "E9 gpu-device"
	chanE11Portal  = "E11 portal-forward"
	chanE12Runtime = "E12 container-unapproved"
)

// separationProbes builds a victim/attacker scenario on a fresh
// cluster under cfg and returns the labels of every channel that
// reopened. The battery is deliberately one probe per experiment
// family so the E16 rows read as "which paper section failed".
func separationProbes(cfg core.Config) ([]string, error) {
	c, err := core.New(cfg, topo())
	if err != nil {
		return nil, err
	}
	victim, err := c.AddUser("victim", "victim-pw")
	if err != nil {
		return nil, err
	}
	attacker, err := c.AddUser("attacker", "attacker-pw")
	if err != nil {
		return nil, err
	}
	login := c.Logins[0]
	var reopened []string
	leak := func(label string, open bool) {
		if open {
			reopened = append(reopened, label)
		}
	}

	// E1: a victim process with a secret-bearing command line; does
	// the attacker's `ps` show the foreign pid?
	vp := login.Procs.Spawn(victim.Cred, 1, "analyze", "--token=VICTIM-SECRET")
	seen := false
	for _, p := range c.Proc[login.Name].List(attacker.Cred) {
		if p.PID == vp.PID {
			seen = true
		}
	}
	leak(chanE1Pids, seen)

	// E3: a long-running victim job; does the attacker's squeue list it?
	vjob, err := c.Sched.Submit(victim.Cred, sched.JobSpec{
		Name: "victim-sim", Command: "simulate", Cores: 2, MemB: 1, Duration: 1 << 30,
	})
	if err != nil {
		return nil, err
	}
	c.Step()
	foreignRows := 0
	for _, j := range c.Sched.Squeue(attacker.Cred) {
		if j.User == victim.UID {
			foreignRows++
		}
	}
	leak(chanE3Jobs, foreignRows > 0)

	// E5: ssh to the victim's compute node without a job there.
	running, err := c.Sched.Job(vjob.ID)
	if err != nil || len(running.Nodes) == 0 {
		return nil, fmt.Errorf("victim job not running: %v", err)
	}
	vnode := running.Nodes[0]
	_, sshErr := c.LoginShell(vnode, attacker.Cred)
	leak(chanE5SSH, sshErr == nil)

	// E6 content: the victim's home file, a mistyped chmod o+r in
	// shared scratch, and a /tmp working file — can the attacker read
	// ANY of the contents?
	vctx, actx := vfs.Ctx(victim.Cred), vfs.Ctx(attacker.Cred)
	if err := c.SharedFS.WriteFile(vctx, victim.HomePath+"/results.csv", []byte("home"), 0o644); err != nil {
		return nil, err
	}
	if err := c.SharedFS.WriteFile(vctx, "/scratch/shared/victim.dat", []byte("scratch"), 0o600); err != nil {
		return nil, err
	}
	if err := c.SharedFS.Chmod(vctx, "/scratch/shared/victim.dat", 0o644); err != nil {
		return nil, err
	}
	ns := c.NS[login.Name]
	if err := ns.WriteFile(vctx, "/tmp/victim-run7.tmp", []byte("tmp"), 0o644); err != nil {
		return nil, err
	}
	_, errHome := c.SharedFS.ReadFile(actx, victim.HomePath+"/results.csv")
	_, errChmod := c.SharedFS.ReadFile(actx, "/scratch/shared/victim.dat")
	_, errTmp := ns.ReadFile(actx, "/tmp/victim-run7.tmp")
	leak(chanE6Files, errHome == nil || errChmod == nil || errTmp == nil)

	// E6 symlinks: the attacker plants a symlink in /tmp where the
	// victim's job will write its checkpoint, pointing at the
	// victim's OWN results file — the classic sticky-dir clobber that
	// fs.protected_symlinks exists for (smask cannot help: the victim
	// has every permission on the target). If the victim's write
	// lands, their results were corrupted on the attacker's say-so.
	localFS := c.LocalFS[login.Name]
	if err := localFS.WriteFile(vctx, "/tmp/victim-results.dat", []byte("precious"), 0o600); err != nil {
		return nil, err
	}
	if err := localFS.Symlink(actx, "/tmp/victim-results.dat", "/tmp/victim-ckpt.tmp"); err == nil {
		_ = localFS.WriteFileFollow(vctx, "/tmp/victim-ckpt.tmp", []byte("CLOBBERED"), 0o600)
		d, err := localFS.ReadFile(vctx, "/tmp/victim-results.dat")
		leak(chanE6Symlink, err == nil && string(d) == "CLOBBERED")
	}

	// E7: a victim listener on its job node; can a stranger connect?
	vHost, err := c.Host(vnode)
	if err != nil {
		return nil, err
	}
	if _, err := vHost.Listen(victim.Cred, netsim.TCP, 5000); err != nil {
		return nil, err
	}
	aHost, err := c.Host(c.Logins[len(c.Logins)-1].Name)
	if err != nil {
		return nil, err
	}
	_, dialErr := aHost.Dial(attacker.Cred, netsim.TCP, vnode, 5000)
	leak(chanE7Flow, dialErr == nil)

	// E9: a victim GPU job; can the attacker open the victim's
	// device from the outside? (No colocation needed — this is the
	// /dev permission half of §IV-F, which whole-node scheduling
	// cannot mask.)
	gjob, err := c.Sched.Submit(victim.Cred, sched.JobSpec{
		Name: "train", Command: "train", Cores: 1, MemB: 1, GPUs: 1, Duration: 1 << 30,
	})
	if err != nil {
		return nil, err
	}
	c.Step()
	gj, err := c.Sched.Job(gjob.ID)
	if err != nil || gj.State != sched.Running {
		return nil, fmt.Errorf("victim gpu job not running: %v", err)
	}
	opened := false
	for _, d := range c.GPUs.Devices(gj.Nodes[0]) {
		if _, err := d.Read(attacker.Cred, 0, 1); err == nil {
			opened = true
		}
	}
	leak(chanE9GPU, opened)

	// E11: the victim's registered web app; does an authenticated
	// stranger's forward get through?
	if _, err := vHost.Listen(victim.Cred, netsim.TCP, 8888); err != nil {
		return nil, err
	}
	if _, err := c.Portal.Register(victim.Cred, "/jupyter/victim", vnode, 8888); err != nil {
		return nil, err
	}
	tok, err := c.Portal.Login(attacker.Cred, "attacker-pw")
	if err != nil {
		return nil, err
	}
	_, fwdErr := c.Portal.Forward(tok, "/jupyter/victim", []byte("GET /"))
	leak(chanE11Portal, fwdErr == nil)

	// E12: a user who was never granted container privileges runs a
	// container.
	c.Containers.ImportImage("probe-img", nil)
	node := c.Compute[len(c.Compute)-1]
	nHost, err := c.Host(node.Name)
	if err != nil {
		return nil, err
	}
	_, runErr := c.Containers.Run(attacker.Cred, node, c.NS[node.Name], nHost,
		container.RunSpec{Image: "probe-img"})
	leak(chanE12Runtime, runErr == nil)

	return reopened, nil
}

// utilizationDrain runs a deterministic E4-style short-job campaign
// with OOM faults under cfg and reports utilization and cross-user
// cofailures.
func utilizationDrain(cfg core.Config) (util float64, cofail int, err error) {
	c, err := core.New(cfg, topo())
	if err != nil {
		return 0, 0, err
	}
	// The mix is the shared fleet.E16DrainMix definition (also the
	// e16-ablation-drain campaign preset), built with the sweep's
	// pinned seed.
	mix, err := fleet.ProvisionMix(c, fleet.E16DrainMix(), metrics.NewRNG(16))
	if err != nil {
		return 0, 0, err
	}
	if _, err := workload.SubmitAll(c.Sched, mix); err != nil {
		return 0, 0, err
	}
	c.RunAll(100000)
	_, cofail = c.Sched.Crashes()
	return c.Sched.Utilization(), cofail, nil
}

// AblationSweep builds the full Enhanced-minus-one sweep: the
// control row (nothing ablated) followed by one row per registry
// measure, in §IV order.
func AblationSweep() ([]AblationRow, error) {
	control := AblationRow{Measure: "(none)", Section: "—"}
	enhanced := core.Enhanced()
	var err error
	if control.Reopened, err = separationProbes(enhanced); err != nil {
		return nil, fmt.Errorf("control probes: %w", err)
	}
	if control.Util, control.Cofailures, err = utilizationDrain(enhanced); err != nil {
		return nil, fmt.Errorf("control drain: %w", err)
	}
	rows := []AblationRow{control}

	for _, m := range core.Measures() {
		p, _, err := core.ResolveProfile(core.EnhancedProfile(), core.Without(m.Name))
		if err != nil {
			return nil, err
		}
		cfg, err := p.Config()
		if err != nil {
			return nil, err
		}
		row := AblationRow{Measure: m.Name, Section: m.Section}
		if row.Reopened, err = separationProbes(cfg); err != nil {
			return nil, fmt.Errorf("ablate %s: %w", m.Name, err)
		}
		if row.Util, row.Cofailures, err = utilizationDrain(cfg); err != nil {
			return nil, fmt.Errorf("ablate %s drain: %w", m.Name, err)
		}
		row.UtilDelta = row.Util - control.Util
		rows = append(rows, row)
	}
	return rows, nil
}

// E16AblationMatrix renders the sweep as the paper-style matrix:
// rows = ablated measure, columns = reopened channels + the E4 drain
// numbers.
func E16AblationMatrix() *metrics.Table {
	t := metrics.NewTable("E16: enhanced-minus-one-measure ablation matrix",
		"ablated measure", "paper", "channels reopened", "util", "util Δ", "cofail")
	rows, err := AblationSweep()
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		reopened := "—"
		if len(r.Reopened) > 0 {
			reopened = strings.Join(r.Reopened, ", ")
		}
		delta := "—"
		if r.Measure != "(none)" {
			delta = fmt.Sprintf("%+.3f", r.UtilDelta)
		}
		t.AddRow(r.Measure, r.Section, reopened, fmt.Sprintf("%.3f", r.Util), delta, r.Cofailures)
	}
	t.AddNote("each row rebuilds the cluster from EnhancedProfile() minus one registry measure")
	t.AddNote("diagonal shape = the paper's claim: every measure closes its own channel, none is redundant cover for another")
	t.AddNote("gpu row: the epilog-clear residue stays masked by wholenode colocation denial (defense in depth); the device-permission channel reopens regardless")
	return t
}
