// Package experiments regenerates the paper's evaluation. The paper
// (an experience/systems paper) publishes no numeric tables; its
// Results section (§V) makes claims. DESIGN.md maps each claim to an
// experiment E1..E15; each function here produces the corresponding
// table, and ablation.go adds E16 — the enhanced-minus-one-measure
// matrix the paper argues qualitatively but never prints.
// cmd/benchharness prints them all; bench_test.go at the repository
// root times the hot paths.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/portal"
	"repro/internal/procfs"
	"repro/internal/sched"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// topo is the standard experiment geometry — the same definition the
// fleet campaign presets build on, so the E tables and their fleet
// re-expressions cannot drift.
func topo() core.Topology {
	return fleet.ExperimentTopology()
}

// bothConfigs returns the two comparison points, derived from the
// named profiles (baseline first).
func bothConfigs() []core.Config {
	var cfgs []core.Config
	for _, p := range core.Profiles() {
		cfgs = append(cfgs, p.MustConfig())
	}
	return cfgs
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func allowDeny(err error) string {
	if err == nil {
		return "ALLOW"
	}
	return "deny"
}

// E1ProcessVisibility: hidepid sweep × observer role. Claim (§IV-A):
// hidepid=2 hides other users' processes and command lines; support
// staff with the exempt gid (seepid) still see everything.
func E1ProcessVisibility() *metrics.Table {
	t := metrics.NewTable("E1: /proc visibility (hidepid sweep)",
		"hidepid", "observer", "pids listed", "cmdlines readable")
	for _, hide := range []procfs.HidePID{procfs.HidePIDOff, procfs.HidePIDNoRead, procfs.HidePIDInvis} {
		cfg := core.Enhanced()
		cfg.HidePID = hide
		// A seepid exemption with hidepid off is incoherent (nothing
		// to be exempt from) and Validate rejects it; at hidepid=0 the
		// exemption changes no outcome, so drop it for that point.
		cfg.SeepidEnabled = hide != procfs.HidePIDOff
		c := core.MustNew(cfg, topo())
		users := make([]*core.User, 3)
		for i := range users {
			users[i], _ = c.AddUser(fmt.Sprintf("user%d", i), "pw")
		}
		staff, _ := c.AddSupportStaff("support", "pw")
		login := c.Logins[0]
		for _, u := range users {
			for p := 0; p < 20; p++ {
				login.Procs.Spawn(u.Cred, 1, "work", fmt.Sprintf("--run=%d", p))
			}
		}
		view := c.Proc[login.Name]
		elevated, _ := c.Seepid.Elevate(staff.Cred)
		observers := []struct {
			name string
			cred ids.Credential
		}{
			{"user0", users[0].Cred},
			{"support+seepid", elevated},
			{"root", ids.RootCred()},
		}
		for _, o := range observers {
			t.AddRow(int(hide), o.name, len(view.List(o.cred)), len(view.Readable(o.cred)))
		}
	}
	t.AddNote("60 user processes + 3 daemons per login node; hidepid=2 leaves each user only their own 20")
	return t
}

// E2CVEMitigation: CVE-2020-27746-style disclosure — a secret on a
// foreign job's command line — probed through /proc on both configs.
func E2CVEMitigation() *metrics.Table {
	t := metrics.NewTable("E2: CVE-2020-27746-style cmdline disclosure",
		"config", "attacker reads foreign cmdline", "secret exposed")
	for _, cfg := range bothConfigs() {
		c := core.MustNew(cfg, topo())
		victim, _ := c.AddUser("victim", "pw")
		attacker, _ := c.AddUser("attacker", "pw")
		login := c.Logins[0]
		vp := login.Procs.Spawn(victim.Cred, 1, "srun", "--export=MUNGE_KEY=abc123")
		cl, err := c.Proc[login.Name].ReadCmdline(attacker.Cred, vp.PID)
		leaked := err == nil && strings.Contains(cl, "MUNGE_KEY")
		t.AddRow(cfg.Name, yesNo(err == nil), yesNo(leaked))
	}
	t.AddNote("the paper reports hidepid=2 pre-mitigated this class before the CVE was announced")
	return t
}

// E3SchedulerPrivacy: squeue/sacct rows visible per observer. Claim
// (§IV-B): PrivateData hides other users' jobs and accounting.
func E3SchedulerPrivacy() *metrics.Table {
	t := metrics.NewTable("E3: scheduler information visibility",
		"config", "observer", "squeue rows", "sacct rows")
	for _, cfg := range bothConfigs() {
		c := core.MustNew(cfg, topo())
		users := make([]*core.User, 4)
		for i := range users {
			users[i], _ = c.AddUser(fmt.Sprintf("user%d", i), "pw")
			for j := 0; j < 25; j++ {
				if _, err := c.Sched.Submit(users[i].Cred, sched.JobSpec{
					Name: fmt.Sprintf("u%d-j%d", i, j), Command: "run",
					Cores: 1, MemB: 1, Duration: 2,
				}); err != nil {
					panic(err)
				}
			}
		}
		c.Step() // some run, some queue
		for _, o := range []struct {
			name string
			cred ids.Credential
		}{{"user0", users[0].Cred}, {"root", ids.RootCred()}} {
			t.AddRow(cfg.Name, o.name, len(c.Sched.Squeue(o.cred)), len(c.Sched.Sacct(o.cred)))
		}
		c.RunAll(500)
		t.AddRow(cfg.Name, "user0 (after drain)", len(c.Sched.Squeue(users[0].Cred)), len(c.Sched.Sacct(users[0].Cred)))
	}
	t.AddNote("100 jobs from 4 users; PrivateData restricts each user to their own 25")
	return t
}

// E4SchedulingPolicies: utilization / makespan / blast radius across
// the three node-sharing policies under an identical many-short-jobs
// mix with OOM faults injected. Claims (§IV-B): user-wholenode keeps
// one user per node, beats exclusive utilization for small jobs, and
// confines memory blast radius.
func E4SchedulingPolicies() *metrics.Table {
	t := metrics.NewTable("E4: node-sharing policy comparison",
		"policy", "utilization", "makespan(ticks)", "node crashes", "cross-user cofailures", "max users/node")
	for _, pol := range []sched.SharingPolicy{sched.PolicyShared, sched.PolicyExclusive, sched.PolicyUserWholeNode} {
		cfg := core.Enhanced()
		cfg.Policy = pol
		c := core.MustNew(cfg, topo())
		// The mix is the shared fleet.E4Mix definition, built with the
		// table's pinned seed (ProvisionMix splits per user in
		// credential order, the same draws as the historical inline
		// loop).
		mix, err := fleet.ProvisionMix(c, fleet.E4Mix(), metrics.NewRNG(4))
		if err != nil {
			panic(err)
		}
		if _, err := workload.SubmitAll(c.Sched, mix); err != nil {
			panic(err)
		}
		maxUsers := 0
		ticks := 0
		for ; ticks < 5000; ticks++ {
			c.Step()
			if n := c.Sched.MaxUsersPerNode(); n > maxUsers {
				maxUsers = n
			}
			if c.Sched.PendingCount() == 0 && len(c.Sched.Squeue(ids.RootCred())) == 0 {
				break
			}
		}
		crashes, cofail := c.Sched.Crashes()
		t.AddRow(pol.String(), c.Sched.Utilization(), ticks, crashes, cofail, maxUsers)
	}
	t.AddNote("300 short jobs (1-8 cores) from 6 users; every 60th job exceeds its memory request")
	t.AddNote("expected shape: user-wholenode utilization > exclusive, cofailures 0, max 1 user/node")
	return t
}

// E5SSHGate: pam_slurm ssh matrix. Claim (§IV-B): users can only ssh
// into compute nodes where they have a running job.
func E5SSHGate() *metrics.Table {
	t := metrics.NewTable("E5: pam_slurm compute-node ssh gate",
		"config", "ssh attempt", "result")
	for _, cfg := range bothConfigs() {
		c := core.MustNew(cfg, topo())
		alice, _ := c.AddUser("alice", "pw")
		bob, _ := c.AddUser("bob", "pw")
		j, err := c.Sched.Submit(alice.Cred, sched.JobSpec{Name: "j", Command: "x", Cores: 2, MemB: 1, Duration: 100})
		if err != nil {
			panic(err)
		}
		c.Step()
		job, _ := c.Sched.Job(j.ID)
		jobNode := job.Nodes[0]
		other := ""
		for _, n := range c.Compute {
			if n.Name != jobNode {
				other = n.Name
				break
			}
		}
		attempts := []struct {
			desc string
			cred ids.Credential
			node string
		}{
			{"owner -> job node", alice.Cred, jobNode},
			{"owner -> other node", alice.Cred, other},
			{"stranger -> job node", bob.Cred, jobNode},
			{"root -> job node", ids.RootCred(), jobNode},
		}
		for _, a := range attempts {
			_, err := c.LoginShell(a.node, a.cred)
			t.AddRow(cfg.Name, a.desc, allowDeny(err))
		}
	}
	return t
}

// E6FilesystemMatrix: every sharing attempt of §IV-C on both configs.
func E6FilesystemMatrix() *metrics.Table {
	t := metrics.NewTable("E6: filesystem sharing-attempt matrix",
		"attempt", "baseline", "enhanced")
	type outcome struct{ baseline, enhanced string }
	results := map[string]*outcome{}
	order := []string{
		"stranger reads home file",
		"chmod o+r then stranger read",
		"ACL grant to stranger",
		"ACL grant to project member",
		"stranger reads /tmp file content",
		"stranger lists /tmp file names",
		"project member reads /proj file",
	}
	for _, name := range order {
		results[name] = &outcome{}
	}
	for _, cfg := range bothConfigs() {
		c := core.MustNew(cfg, topo())
		owner, _ := c.AddUser("owner", "pw")
		peer, _ := c.AddUser("peer", "pw")
		stranger, _ := c.AddUser("stranger", "pw")
		if _, err := c.AddProjectGroup("team", owner.UID, peer.UID); err != nil {
			panic(err)
		}
		_ = c.Refresh(owner)
		_ = c.Refresh(peer)
		octx, sctx := vfs.Ctx(owner.Cred), vfs.Ctx(stranger.Cred)
		set := func(name string, leaked bool) {
			v := "blocked"
			if leaked {
				v = "SHARED"
			}
			if cfg.Name == "baseline" {
				results[name].baseline = v
			} else {
				results[name].enhanced = v
			}
		}
		// home
		must(c.SharedFS.WriteFile(octx, owner.HomePath+"/data", []byte("d"), 0o644))
		_, err := c.SharedFS.ReadFile(sctx, owner.HomePath+"/data")
		set(order[0], err == nil)
		// chmod o+r in shared scratch
		must(c.SharedFS.WriteFile(octx, "/scratch/shared/out.dat", []byte("d"), 0o600))
		must(c.SharedFS.Chmod(octx, "/scratch/shared/out.dat", 0o644))
		_, err = c.SharedFS.ReadFile(sctx, "/scratch/shared/out.dat")
		set(order[1], err == nil)
		// ACL to stranger
		errGrant := c.SharedFS.SetfaclUser(octx, "/scratch/shared/out.dat", stranger.UID, 0o4)
		leaked := false
		if errGrant == nil {
			_, err = c.SharedFS.ReadFile(sctx, "/scratch/shared/out.dat")
			leaked = err == nil
		}
		set(order[2], leaked)
		// ACL to project member (intended sharing — should work in both)
		errGrant = c.SharedFS.SetfaclUser(octx, "/scratch/shared/out.dat", peer.UID, 0o4)
		leaked = false
		if errGrant == nil {
			_, err = c.SharedFS.ReadFile(vfs.Ctx(peer.Cred), "/scratch/shared/out.dat")
			leaked = err == nil
		}
		set(order[3], leaked)
		// /tmp content + names on a login node
		ns := c.NS[c.Logins[0].Name]
		must(ns.WriteFile(octx, "/tmp/owner-run42.tmp", []byte("d"), 0o644))
		_, err = ns.ReadFile(sctx, "/tmp/owner-run42.tmp")
		set(order[4], err == nil)
		names, err := ns.ReadDir(sctx, "/tmp")
		sawName := false
		if err == nil {
			for _, n := range names {
				if strings.Contains(n, "owner") {
					sawName = true
				}
			}
		}
		set(order[5], sawName)
		// project dir (intended sharing)
		must(c.SharedFS.WriteFile(octx, "/proj/team/shared.dat", []byte("d"), 0o660))
		_, err = c.SharedFS.ReadFile(vfs.Ctx(peer.Cred), "/proj/team/shared.dat")
		set(order[6], err == nil)
	}
	for _, name := range order {
		t.AddRow(name, results[name].baseline, results[name].enhanced)
	}
	t.AddNote("intended sharing (project group rows) must stay SHARED in both configs")
	t.AddNote("'/tmp file names' is the paper's acknowledged residual channel")
	return t
}

// E7UBFMatrix: the connection matrix of §IV-D on both configs.
func E7UBFMatrix() *metrics.Table {
	t := metrics.NewTable("E7: user-based firewall connection matrix",
		"scenario", "proto", "baseline", "enhanced")
	type key struct{ scenario, proto string }
	results := map[key]map[string]string{}
	var order []key
	record := func(cfg string, scenario, proto string, err error) {
		k := key{scenario, proto}
		if results[k] == nil {
			results[k] = map[string]string{}
			order = append(order, k)
		}
		results[k][cfg] = allowDeny(err)
	}
	for _, cfg := range bothConfigs() {
		c := core.MustNew(cfg, topo())
		owner, _ := c.AddUser("owner", "pw")
		peer, _ := c.AddUser("peer", "pw")
		stranger, _ := c.AddUser("stranger", "pw")
		if _, err := c.AddProjectGroup("team", owner.UID, peer.UID); err != nil {
			panic(err)
		}
		_ = c.Refresh(owner)
		_ = c.Refresh(peer)
		h0, _ := c.Host(c.Compute[0].Name)
		h1, _ := c.Host(c.Compute[1].Name)
		for _, proto := range []netsim.Proto{netsim.TCP, netsim.UDP} {
			base := 20000
			if proto == netsim.UDP {
				base = 21000
			}
			// Plain listener (egid = owner's private group).
			if _, err := h0.Listen(owner.Cred, proto, base); err != nil {
				panic(err)
			}
			// Group listener via `sg team` (egid = team).
			ownerTeam, err := c.Registry.SwitchGroup(owner.Cred, owner.Cred.Groups[len(owner.Cred.Groups)-1])
			if err != nil {
				panic(err)
			}
			if _, err := h0.Listen(ownerTeam, proto, base+1); err != nil {
				panic(err)
			}
			_, err = h1.Dial(owner.Cred, proto, c.Compute[0].Name, base)
			record(cfg.Name, "same user", proto.String(), err)
			_, err = h1.Dial(peer.Cred, proto, c.Compute[0].Name, base)
			record(cfg.Name, "project peer, no newgrp", proto.String(), err)
			_, err = h1.Dial(peer.Cred, proto, c.Compute[0].Name, base+1)
			record(cfg.Name, "project peer, listener under sg team", proto.String(), err)
			_, err = h1.Dial(stranger.Cred, proto, c.Compute[0].Name, base+1)
			record(cfg.Name, "stranger", proto.String(), err)
		}
	}
	for _, k := range order {
		if results[k]["enhanced"] == "" {
			continue
		}
		t.AddRow(k.scenario, k.proto, results[k]["baseline"], results[k]["enhanced"])
	}
	t.AddNote("rule: allow iff same user, or connector in listener's effective (primary) group")
	return t
}

// E8UBFOverhead: where the UBF spends work — NEW connections pay two
// ident queries (unless cached); established packets ride conntrack.
func E8UBFOverhead() *metrics.Table {
	t := metrics.NewTable("E8: UBF overhead accounting (1000 conns × 100 packets)",
		"config", "hook invocations", "ident queries", "cache hits", "packets inspected")
	for _, variant := range []struct {
		name    string
		enabled bool
		cache   bool
	}{
		{"no firewall (baseline)", false, false},
		{"UBF, no verdict cache", true, false},
		{"UBF + verdict cache", true, true},
	} {
		cfg := core.Enhanced()
		cfg.UBFEnabled = variant.enabled
		cfg.UBFCacheVerdicts = variant.cache
		c := core.MustNew(cfg, topo())
		u, _ := c.AddUser("alice", "pw")
		h0, _ := c.Host(c.Compute[0].Name)
		h1, _ := c.Host(c.Compute[1].Name)
		if _, err := h0.Listen(u.Cred, netsim.TCP, 9000); err != nil {
			panic(err)
		}
		c.Net.ResetStats()
		for i := 0; i < 1000; i++ {
			conn, err := h1.Dial(u.Cred, netsim.TCP, c.Compute[0].Name, 9000)
			if err != nil {
				panic(err)
			}
			for p := 0; p < 100; p++ {
				if err := conn.Send([]byte("payload")); err != nil {
					panic(err)
				}
			}
			conn.Close()
		}
		t.AddRow(variant.name,
			c.Net.HookInvocations.Load(),
			c.Net.IdentQueries.Load(),
			c.UBF.CacheHits.Load(),
			0, // established packets never traverse the hook
		)
	}
	t.AddNote("100000 data packets flowed in every variant; none were re-inspected (conntrack bypass)")
	return t
}

// E9GPUResidue: device-memory handover between two users. Claim
// (§IV-F): without the epilog clear, the next user reads the previous
// user's data.
func E9GPUResidue() *metrics.Table {
	t := metrics.NewTable("E9: GPU memory residue across users",
		"config", "stranger opens unassigned GPU", "residue readable by next user")
	for _, cfg := range bothConfigs() {
		c := core.MustNew(cfg, topo())
		victim, _ := c.AddUser("victim", "pw")
		attacker, _ := c.AddUser("attacker", "pw")
		// Victim trains, writing weights to GPU memory.
		j, err := c.Sched.Submit(victim.Cred, sched.JobSpec{Name: "train", Command: "train", Cores: 1, MemB: 1, GPUs: 1, Duration: 2})
		if err != nil {
			panic(err)
		}
		c.Step()
		job, _ := c.Sched.Job(j.ID)
		dev := c.GPUs.Devices(job.Nodes[0])[0]
		secret := []byte("victim-weights")
		_ = dev.Write(victim.Cred, 0, secret)
		// Can a third party open the device while it is assigned /
		// after release (baseline: yes, 0666)?
		_, openErr := dev.Read(attacker.Cred, 0, 1)
		c.RunAll(5)
		// Attacker's own GPU job on the same node pool.
		aj, err := c.Sched.Submit(attacker.Cred, sched.JobSpec{Name: "probe", Command: "probe", Cores: 1, MemB: 1, GPUs: 1, Duration: 5})
		if err != nil {
			panic(err)
		}
		c.Step()
		ajob, _ := c.Sched.Job(aj.ID)
		leak := false
		for _, d := range c.GPUs.Devices(ajob.Nodes[0]) {
			if data, err := d.Read(attacker.Cred, 0, len(secret)); err == nil && string(data) == string(secret) {
				leak = true
			}
		}
		t.AddRow(cfg.Name, yesNo(openErr == nil), yesNo(leak))
	}
	t.AddNote("enhanced = /dev perms narrowed to the allocated user's private group + epilog memory clear")
	return t
}

// E10ResidualChannels: the three channels §V concedes remain open,
// probed under the ENHANCED configuration.
func E10ResidualChannels() *metrics.Table {
	t := metrics.NewTable("E10: residual channels under the enhanced config",
		"channel", "open", "detail")
	c := core.MustNew(core.Enhanced(), topo())
	rep, err := core.LeakScan(c)
	if err != nil {
		panic(err)
	}
	for _, r := range rep.Results {
		if r.Probe.Residual {
			t.AddRow(string(r.Probe.Channel), yesNo(r.Leaked), r.Detail)
		}
	}
	unexpected, residual := rep.Leaks()
	t.AddNote("full scan: %d probes, %d unexpected leaks, %d residual open", len(rep.Results), unexpected, residual)
	return t
}

// E11Portal: authenticated forwarding matrix. Claim (§IV-E): the
// entire connection path is authenticated and authorized; apps run on
// any compute node.
func E11Portal() *metrics.Table {
	t := metrics.NewTable("E11: web portal/gateway access matrix",
		"config", "request", "result")
	for _, cfg := range bothConfigs() {
		c := core.MustNew(cfg, topo())
		owner, _ := c.AddUser("owner", "pw")
		other, _ := c.AddUser("other", "pw")
		// Jupyter-like apps on two different compute nodes.
		for i, node := range []string{c.Compute[0].Name, c.Compute[len(c.Compute)-1].Name} {
			h, _ := c.Host(node)
			if _, err := portal.Serve(h, owner.Cred, 8888); err != nil {
				panic(err)
			}
			if _, err := c.Portal.Register(owner.Cred, fmt.Sprintf("/app/%d", i), node, 8888); err != nil {
				panic(err)
			}
		}
		ownTok, _ := c.Portal.Login(owner.Cred, "pw")
		otherTok, _ := c.Portal.Login(other.Cred, "pw")
		cases := []struct {
			desc  string
			token string
			path  string
		}{
			{"owner -> own app (node A)", ownTok, "/app/0"},
			{"owner -> own app (node B)", ownTok, "/app/1"},
			{"other user -> owner's app", otherTok, "/app/0"},
			{"unauthenticated -> owner's app", "bogus", "/app/0"},
		}
		for _, tc := range cases {
			_, err := c.Portal.Forward(tc.token, tc.path, []byte("GET /"))
			t.AddRow(cfg.Name, tc.desc, allowDeny(err))
		}
	}
	t.AddNote("cross-user denial comes from the UBF on the forwarded hop, not just portal auth")
	return t
}

// E12Container: §IV-G — host controls pass through; no privilege.
func E12Container() *metrics.Table {
	t := metrics.NewTable("E12: containers pass through host separation",
		"config", "probe from inside container", "result")
	for _, cfg := range bothConfigs() {
		c := core.MustNew(cfg, topo())
		owner, _ := c.AddUser("owner", "pw")
		runner, _ := c.AddUser("runner", "pw")
		c.Containers.ImportImage("science", map[string]string{"/opt/tool": "bin"})
		c.Containers.Allow(runner.UID)
		must(c.SharedFS.WriteFile(vfs.Ctx(owner.Cred), owner.HomePath+"/private.dat", []byte("d"), 0o644))
		node := c.Compute[0]
		h, _ := c.Host(node.Name)
		ct, err := c.Containers.Run(runner.Cred, node, c.NS[node.Name], h, container.RunSpec{Image: "science"})
		if err != nil {
			panic(err)
		}
		_, err = ct.ReadFile(owner.HomePath + "/private.dat")
		t.AddRow(cfg.Name, "read another user's home file", allowDeny(err))
		// Network through the container = host stack + UBF.
		oh, _ := c.Host(c.Compute[1].Name)
		if _, err := oh.Listen(owner.Cred, netsim.TCP, 9100); err != nil {
			panic(err)
		}
		_, err = ct.Dial(netsim.TCP, c.Compute[1].Name, 9100)
		t.AddRow(cfg.Name, "dial another user's service", allowDeny(err))
		// Privilege escalation request.
		_, err = c.Containers.Run(runner.Cred, node, c.NS[node.Name], h, container.RunSpec{Image: "science", RequestPrivileged: true})
		t.AddRow(cfg.Name, "request privileged container", allowDeny(err))
	}
	t.AddNote("privileged containers are refused in BOTH configs: HPC users never get root")
	return t
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// All runs every experiment in order.
func All() []*metrics.Table {
	return []*metrics.Table{
		E1ProcessVisibility(),
		E2CVEMitigation(),
		E3SchedulerPrivacy(),
		E4SchedulingPolicies(),
		E5SSHGate(),
		E6FilesystemMatrix(),
		E7UBFMatrix(),
		E8UBFOverhead(),
		E9GPUResidue(),
		E10ResidualChannels(),
		E11Portal(),
		E12Container(),
		E13PPSComparison(),
		E14CryptoMPIComparison(),
		E15MitigationTax(),
		E16AblationMatrix(),
		E17RedTeamMatrix(),
		E4FleetReplicated(),
		E16FleetDrainReplicated(),
	}
}
