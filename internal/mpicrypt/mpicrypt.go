// Package mpicrypt implements the paper's "Option #1" comparator for
// the network area (§III, §IV-D): securing HPC traffic by modifying
// the application/library layer — encrypting MPI messages — instead of
// securing the system. The paper cites MPISec I/O [33] and the
// cryptographic-MPI study [23], and notes such efforts "have seen
// little adoption".
//
// This package makes the trade-off measurable (experiment E14): an
// AES-256-GCM channel pays per *byte* on every data packet forever,
// while the UBF pays a fixed cost per *connection* and rides
// conntrack afterwards. It also demonstrates the deployment weakness:
// both endpoints must share a key out of band, and unencrypted peers
// are silently interoperable-with-nothing.
package mpicrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/netsim"
)

// Sealer is one direction of an encrypted MPI channel: AES-256-GCM
// with a counter nonce (unique per message within the channel).
type Sealer struct {
	mu    sync.Mutex
	aead  cipher.AEAD
	nonce uint64
}

// Crypt errors.
var (
	ErrTampered = errors.New("mpicrypt: message authentication failed")
	ErrShort    = errors.New("mpicrypt: message too short")
)

// NewSealer derives an AES-256-GCM sealer from an arbitrary-length
// shared secret (hashed to 32 bytes, the way MPI ranks would derive a
// session key from a job token).
func NewSealer(sharedSecret []byte) (*Sealer, error) {
	key := sha256.Sum256(sharedSecret)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// Seal encrypts a message: 8-byte nonce counter || ciphertext+tag.
func (s *Sealer) Seal(plain []byte) []byte {
	s.mu.Lock()
	n := s.nonce
	s.nonce++
	s.mu.Unlock()
	nonce := make([]byte, s.aead.NonceSize())
	binary.BigEndian.PutUint64(nonce[len(nonce)-8:], n)
	out := make([]byte, 8, 8+len(plain)+s.aead.Overhead())
	binary.BigEndian.PutUint64(out, n)
	return s.aead.Seal(out, nonce, plain, out[:8])
}

// Open authenticates and decrypts a sealed message.
func (s *Sealer) Open(box []byte) ([]byte, error) {
	if len(box) < 8+s.aead.Overhead() {
		return nil, fmt.Errorf("%w: %d bytes", ErrShort, len(box))
	}
	nonce := make([]byte, s.aead.NonceSize())
	copy(nonce[len(nonce)-8:], box[:8])
	plain, err := s.aead.Open(nil, nonce, box[8:], box[:8])
	if err != nil {
		return nil, ErrTampered
	}
	return plain, nil
}

// SecureConn wraps a simulated connection with encryption on the
// dialer->acceptor direction (the bulk-data direction in the E14
// benchmark). Both sides must construct it from the same secret.
type SecureConn struct {
	conn   *netsim.Conn
	sealer *Sealer
	opener *Sealer
}

// Secure wraps conn with sealers derived from sharedSecret.
func Secure(conn *netsim.Conn, sharedSecret []byte) (*SecureConn, error) {
	s, err := NewSealer(sharedSecret)
	if err != nil {
		return nil, err
	}
	o, err := NewSealer(sharedSecret)
	if err != nil {
		return nil, err
	}
	return &SecureConn{conn: conn, sealer: s, opener: o}, nil
}

// Send encrypts and transmits.
func (c *SecureConn) Send(plain []byte) error {
	return c.conn.Send(c.sealer.Seal(plain))
}

// Recv receives and decrypts on the acceptor side.
func (c *SecureConn) Recv() ([]byte, error) {
	box, ok := c.conn.Recv()
	if !ok {
		return nil, nil
	}
	return c.opener.Open(box)
}

// Conn exposes the underlying connection (for Close etc.).
func (c *SecureConn) Conn() *netsim.Conn { return c.conn }
