package mpicrypt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/netsim"
)

func TestSealOpenRoundtrip(t *testing.T) {
	s, err := NewSealer([]byte("job-42-token"))
	if err != nil {
		t.Fatal(err)
	}
	o, _ := NewSealer([]byte("job-42-token"))
	for _, msg := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte("halo"), 1000)} {
		box := s.Seal(msg)
		got, err := o.Open(box)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("roundtrip mismatch: %d vs %d bytes", len(got), len(msg))
		}
	}
}

func TestTamperDetection(t *testing.T) {
	s, _ := NewSealer([]byte("k"))
	o, _ := NewSealer([]byte("k"))
	box := s.Seal([]byte("rank data"))
	box[len(box)-1] ^= 1
	if _, err := o.Open(box); !errors.Is(err, ErrTampered) {
		t.Errorf("tampered open err = %v", err)
	}
	// Nonce tamper too.
	box2 := s.Seal([]byte("rank data"))
	box2[0] ^= 1
	if _, err := o.Open(box2); !errors.Is(err, ErrTampered) {
		t.Errorf("nonce-tampered open err = %v", err)
	}
}

func TestWrongKeyFails(t *testing.T) {
	s, _ := NewSealer([]byte("key-a"))
	o, _ := NewSealer([]byte("key-b"))
	if _, err := o.Open(s.Seal([]byte("secret"))); !errors.Is(err, ErrTampered) {
		t.Errorf("wrong-key open err = %v", err)
	}
}

func TestShortMessage(t *testing.T) {
	o, _ := NewSealer([]byte("k"))
	if _, err := o.Open([]byte{1, 2, 3}); !errors.Is(err, ErrShort) {
		t.Errorf("short open err = %v", err)
	}
}

func TestNoncesUnique(t *testing.T) {
	s, _ := NewSealer([]byte("k"))
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		box := s.Seal([]byte("m"))
		n := string(box[:8])
		if seen[n] {
			t.Fatalf("nonce reuse at %d", i)
		}
		seen[n] = true
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	s, _ := NewSealer([]byte("k"))
	plain := []byte("VICTIM-SECRET-PAYLOAD")
	box := s.Seal(plain)
	if bytes.Contains(box, plain[2:12]) {
		t.Errorf("ciphertext contains plaintext")
	}
}

func TestSecureConnOverNetwork(t *testing.T) {
	n := netsim.NewNetwork()
	h1, h2 := n.AddHost("a"), n.AddHost("b")
	alice := ids.Credential{UID: 1000, EGID: 1000, Groups: []ids.GID{1000}}
	l, err := h2.Listen(alice, netsim.TCP, 5000)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := h1.Dial(alice, netsim.TCP, "b", 5000)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("mpi-job-777")
	sc, err := Secure(raw, secret)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Send([]byte("halo exchange")); err != nil {
		t.Fatal(err)
	}
	// Acceptor side: same conn object, own sealer pair.
	acc, ok := l.Accept()
	if !ok {
		t.Fatal("no conn accepted")
	}
	scAcc, _ := Secure(acc, secret)
	got, err := scAcc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "halo exchange" {
		t.Errorf("recv %q", got)
	}
	// A wire sniffer sees only ciphertext.
	if err := sc.Send([]byte("CONFIDENTIAL")); err != nil {
		t.Fatal(err)
	}
	wire, _ := acc.Recv()
	if bytes.Contains(wire, []byte("CONFIDENTIAL")) {
		t.Errorf("plaintext on the wire")
	}
	if sc.Conn() != raw {
		t.Errorf("Conn() accessor broken")
	}
}

// Property: roundtrip holds for arbitrary payloads and secrets.
func TestQuickRoundtrip(t *testing.T) {
	f := func(secret, msg []byte) bool {
		s, err := NewSealer(secret)
		if err != nil {
			return false
		}
		o, _ := NewSealer(secret)
		got, err := o.Open(s.Seal(msg))
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
