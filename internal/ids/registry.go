package ids

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Registry is the cluster-wide identity database: the equivalent of
// LDAP/passwd/group on the real system. It enforces the
// user-private-group scheme: creating a user always creates a private
// group for them, and private groups can never gain a second member.
type Registry struct {
	mu      sync.RWMutex
	nextUID UID
	nextGID GID
	users   map[UID]*User
	byName  map[string]UID
	groups  map[GID]*Group
	gByName map[string]GID
	// Pristine mark for the trial-lifecycle Reset contract (see
	// MarkPristine): a deep copy of the tables, so Reset can rewind
	// users, groups, memberships and ID numbering to the mark.
	pristine *Registry
}

// Registry errors.
var (
	ErrExists        = errors.New("ids: name already exists")
	ErrNoSuchUser    = errors.New("ids: no such user")
	ErrNoSuchGroup   = errors.New("ids: no such group")
	ErrPrivateGroup  = errors.New("ids: user-private groups cannot change membership")
	ErrNotSteward    = errors.New("ids: caller is not a data steward of the group")
	ErrNotMember     = errors.New("ids: user is not a member of the group")
	ErrAlreadyMember = errors.New("ids: user is already a member of the group")
)

// NewRegistry returns a registry pre-populated with root (uid 0) and
// root's group (gid 0).
func NewRegistry() *Registry {
	r := &Registry{
		nextUID: 1000,
		nextGID: 1000,
		users:   make(map[UID]*User),
		byName:  make(map[string]UID),
		groups:  make(map[GID]*Group),
		gByName: make(map[string]GID),
	}
	r.groups[RootGroup] = &Group{
		GID: RootGroup, Name: "root", Private: true,
		members: map[UID]bool{Root: true},
	}
	r.gByName["root"] = RootGroup
	r.users[Root] = &User{UID: Root, Name: "root", Primary: RootGroup, HomePath: "/root"}
	r.byName["root"] = Root
	return r
}

// cloneGroup deep-copies a group — the single copy site both the
// pristine snapshot and Reset's reinstall use, so a future Group
// field cannot be deep-copied in one and aliased in the other.
func cloneGroup(g *Group) *Group {
	members := make(map[UID]bool, len(g.members))
	for uid := range g.members {
		members[uid] = true
	}
	return &Group{
		GID: g.GID, Name: g.Name, Private: g.Private,
		Stewards: append([]UID(nil), g.Stewards...),
		members:  members,
	}
}

// snapshotLocked deep-copies the registry tables into a bare Registry
// value (no lock use, no nested pristine). Group membership maps and
// steward slices are copied; *User entries are shared, since users are
// immutable once created. Caller holds r.mu.
func (r *Registry) snapshotLocked() *Registry {
	s := &Registry{
		nextUID: r.nextUID,
		nextGID: r.nextGID,
		users:   make(map[UID]*User, len(r.users)),
		byName:  make(map[string]UID, len(r.byName)),
		groups:  make(map[GID]*Group, len(r.groups)),
		gByName: make(map[string]GID, len(r.gByName)),
	}
	for uid, u := range r.users {
		s.users[uid] = u
	}
	for name, uid := range r.byName {
		s.byName[name] = uid
	}
	for gid, g := range r.groups {
		s.groups[gid] = cloneGroup(g)
	}
	for name, gid := range r.gByName {
		s.gByName[name] = gid
	}
	return s
}

// MarkPristine records the registry's current state as the target of
// Reset. The cluster assembly calls it after creating the escalation
// groups, so Reset rewinds to "root plus the standard groups" — and
// the first AddUser after a Reset hands out the same UID/GID a fresh
// cluster would.
func (r *Registry) MarkPristine() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pristine = r.snapshotLocked()
}

// Reset rewinds the registry to the MarkPristine state (or to the
// NewRegistry state if no mark was taken): users and groups created
// since are dropped, membership changes to pristine groups are rolled
// back, and ID numbering restarts at the marked counters.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	src := r.pristine
	if src == nil {
		fresh := NewRegistry()
		fresh.mu.Lock()
		src = fresh.snapshotLocked()
		fresh.mu.Unlock()
	}
	r.nextUID, r.nextGID = src.nextUID, src.nextGID
	clear(r.users)
	clear(r.byName)
	clear(r.groups)
	clear(r.gByName)
	for uid, u := range src.users {
		r.users[uid] = u
	}
	for name, uid := range src.byName {
		r.byName[name] = uid
	}
	// Groups are reinstalled as fresh copies: the pristine mark must
	// survive membership mutations of the *next* trial too.
	for gid, g := range src.groups {
		r.groups[gid] = cloneGroup(g)
	}
	for name, gid := range src.gByName {
		r.gByName[name] = gid
	}
}

// AddUser creates a user plus their user-private group (same name).
// The home path follows the paper's layout: /home/<name>.
func (r *Registry) AddUser(name string) (*User, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("%w: user %q", ErrExists, name)
	}
	if _, dup := r.gByName[name]; dup {
		return nil, fmt.Errorf("%w: group %q", ErrExists, name)
	}
	uid := r.nextUID
	gid := r.nextGID
	r.nextUID++
	r.nextGID++
	g := &Group{GID: gid, Name: name, Private: true, members: map[UID]bool{uid: true}}
	u := &User{UID: uid, Name: name, Primary: gid, HomePath: "/home/" + name}
	r.groups[gid] = g
	r.gByName[name] = gid
	r.users[uid] = u
	r.byName[name] = uid
	return u, nil
}

// AddProjectGroup creates an approved project group with the given
// data stewards. Stewards are implicitly members.
func (r *Registry) AddProjectGroup(name string, stewards ...UID) (*Group, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.gByName[name]; dup {
		return nil, fmt.Errorf("%w: group %q", ErrExists, name)
	}
	for _, s := range stewards {
		if _, ok := r.users[s]; !ok {
			return nil, fmt.Errorf("%w: steward uid %d", ErrNoSuchUser, s)
		}
	}
	gid := r.nextGID
	r.nextGID++
	g := &Group{GID: gid, Name: name, Stewards: append([]UID(nil), stewards...), members: make(map[UID]bool)}
	for _, s := range stewards {
		g.members[s] = true
	}
	r.groups[gid] = g
	r.gByName[name] = gid
	return g, nil
}

// AddToGroup adds uid to a project group. Only a data steward of the
// group (or root) may do so; user-private groups are immutable
// (paper §IV-C: stewards approve adding and deleting users).
func (r *Registry) AddToGroup(actor UID, gid GID, uid UID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[gid]
	if !ok {
		return fmt.Errorf("%w: gid %d", ErrNoSuchGroup, gid)
	}
	if g.Private {
		return ErrPrivateGroup
	}
	if actor != Root && !g.IsSteward(actor) {
		return ErrNotSteward
	}
	if _, ok := r.users[uid]; !ok {
		return fmt.Errorf("%w: uid %d", ErrNoSuchUser, uid)
	}
	if g.members[uid] {
		return ErrAlreadyMember
	}
	g.members[uid] = true
	return nil
}

// RemoveFromGroup removes uid from a project group; steward-gated
// like AddToGroup. Stewards cannot be removed except by root.
func (r *Registry) RemoveFromGroup(actor UID, gid GID, uid UID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[gid]
	if !ok {
		return fmt.Errorf("%w: gid %d", ErrNoSuchGroup, gid)
	}
	if g.Private {
		return ErrPrivateGroup
	}
	if actor != Root && !g.IsSteward(actor) {
		return ErrNotSteward
	}
	if !g.members[uid] {
		return ErrNotMember
	}
	if g.IsSteward(uid) && actor != Root {
		return fmt.Errorf("%w: cannot remove steward uid %d", ErrNotSteward, uid)
	}
	delete(g.members, uid)
	return nil
}

// User returns the user with the given UID.
func (r *Registry) User(uid UID) (*User, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.users[uid]
	if !ok {
		return nil, fmt.Errorf("%w: uid %d", ErrNoSuchUser, uid)
	}
	return u, nil
}

// UserByName resolves a login name.
func (r *Registry) UserByName(name string) (*User, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	uid, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchUser, name)
	}
	return r.users[uid], nil
}

// Group returns the group with the given GID.
func (r *Registry) Group(gid GID) (*Group, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.groups[gid]
	if !ok {
		return nil, fmt.Errorf("%w: gid %d", ErrNoSuchGroup, gid)
	}
	return g, nil
}

// GroupByName resolves a group name.
func (r *Registry) GroupByName(name string) (*Group, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	gid, ok := r.gByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchGroup, name)
	}
	return r.groups[gid], nil
}

// GroupsOf returns the GIDs the user belongs to (primary first, the
// rest sorted), i.e. the supplemental group set a login session gets.
func (r *Registry) GroupsOf(uid UID) ([]GID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.users[uid]
	if !ok {
		return nil, fmt.Errorf("%w: uid %d", ErrNoSuchUser, uid)
	}
	var rest []GID
	for gid, g := range r.groups {
		if gid != u.Primary && g.members[uid] {
			rest = append(rest, gid)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append([]GID{u.Primary}, rest...), nil
}

// LoginCredential builds the credential a fresh login session gets:
// uid, egid = user-private group, supplemental groups = all groups the
// user is a member of.
func (r *Registry) LoginCredential(uid UID) (Credential, error) {
	groups, err := r.GroupsOf(uid)
	if err != nil {
		return Credential{}, err
	}
	r.mu.RLock()
	primary := r.users[uid].Primary
	r.mu.RUnlock()
	return Credential{UID: uid, EGID: primary, Groups: groups}, nil
}

// SwitchGroup implements newgrp/sg: returns a credential with the
// effective GID switched to gid, but only if the user is a member.
// This is the opt-in step that lets a listener accept project-group
// peers through the UBF (paper §IV-D).
func (r *Registry) SwitchGroup(c Credential, gid GID) (Credential, error) {
	r.mu.RLock()
	g, ok := r.groups[gid]
	r.mu.RUnlock()
	if !ok {
		return c, fmt.Errorf("%w: gid %d", ErrNoSuchGroup, gid)
	}
	if !g.Has(c.UID) && !c.IsRoot() {
		return c, fmt.Errorf("%w: uid %d not in gid %d", ErrNotMember, c.UID, gid)
	}
	return c.WithEGID(gid), nil
}

// SharedGroup reports whether two users share at least one
// non-private group — the paper's definition of "allowed to share".
func (r *Registry) SharedGroup(a, b UID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, g := range r.groups {
		if !g.Private && g.members[a] && g.members[b] {
			return true
		}
	}
	return false
}

// Users returns all UIDs sorted ascending.
func (r *Registry) Users() []UID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]UID, 0, len(r.users))
	for u := range r.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Groups returns all GIDs sorted ascending.
func (r *Registry) Groups() []GID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GID, 0, len(r.groups))
	for g := range r.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
