package ids

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Registry is the cluster-wide identity database: the equivalent of
// LDAP/passwd/group on the real system. It enforces the
// user-private-group scheme: creating a user always creates a private
// group for them, and private groups can never gain a second member.
//
// At fleet scale the registry is lazy: AddUser (and the bulk Register
// path) record only a compact descriptor — the login name and the
// UID/private-GID pair — and the *User value, the user-private *Group
// and the home-path string materialize on first access through the
// ordinary accessors. The user-private-group scheme is what makes
// this sound: a private group's name, membership and immutability are
// fully determined by its owner's descriptor, so nothing about it
// needs to exist until somebody looks at it.
type Registry struct {
	mu      sync.RWMutex
	nextUID UID
	nextGID GID
	// descs[i] describes the user with UID uidBase+i. Registrations
	// only append; the heavyweight *User / private *Group views are
	// built on demand and cached in users/groups. Private GIDs are
	// handed out in the same monotonic order as UIDs, so descriptor
	// primaries are strictly increasing and a GID→owner lookup is a
	// binary search.
	descs   []userDesc
	users   map[UID]*User  // root + materialized users (cache over descs)
	byName  map[string]UID // every user, eager: the duplicate-name check needs it
	groups  map[GID]*Group // root + project groups + materialized private groups
	gByName map[string]GID // root + project groups (private names resolve via byName)
	// gen counts logical mutations — registrations and group changes,
	// not cache materialization — so Reset on a registry whose state
	// matches the pristine mark is O(1).
	gen uint64
	// Pristine mark for the trial-lifecycle Reset contract (see
	// MarkPristine).
	mark *pristineMark
}

// userDesc is the compact per-user record: everything else (*User,
// private *Group, home path) is derived from it on demand.
type userDesc struct {
	name    string
	primary GID
}

// pristineMark captures what Reset rewinds to: the ID counters, the
// descriptor count, and deep copies of the mutable (non-private)
// groups. Users and private groups need no copies — descriptors are
// append-only and private groups immutable, so truncation suffices.
type pristineMark struct {
	nextUID UID
	nextGID GID
	descs   int
	gen     uint64
	groups  map[GID]*Group
}

// uidBase/gidBase are where non-system ID numbering starts; the
// descriptor table is indexed by uid-uidBase.
const (
	uidBase UID = 1000
	gidBase GID = 1000
)

// Registry errors.
var (
	ErrExists        = errors.New("ids: name already exists")
	ErrNoSuchUser    = errors.New("ids: no such user")
	ErrNoSuchGroup   = errors.New("ids: no such group")
	ErrPrivateGroup  = errors.New("ids: user-private groups cannot change membership")
	ErrNotSteward    = errors.New("ids: caller is not a data steward of the group")
	ErrNotMember     = errors.New("ids: user is not a member of the group")
	ErrAlreadyMember = errors.New("ids: user is already a member of the group")
)

// NewRegistry returns a registry pre-populated with root (uid 0) and
// root's group (gid 0).
func NewRegistry() *Registry {
	r := &Registry{
		users:   make(map[UID]*User),
		byName:  make(map[string]UID),
		groups:  make(map[GID]*Group),
		gByName: make(map[string]GID),
	}
	r.resetToFreshLocked()
	return r
}

// resetToFreshLocked rewinds the tables to the NewRegistry state.
// Caller holds r.mu (or owns the registry exclusively).
func (r *Registry) resetToFreshLocked() {
	r.nextUID, r.nextGID = uidBase, gidBase
	r.descs = nil
	clear(r.users)
	clear(r.byName)
	clear(r.groups)
	clear(r.gByName)
	r.groups[RootGroup] = &Group{
		GID: RootGroup, Name: "root", Private: true,
		members: map[UID]bool{Root: true},
	}
	r.gByName["root"] = RootGroup
	r.users[Root] = &User{UID: Root, Name: "root", Primary: RootGroup, HomePath: "/root"}
	r.byName["root"] = Root
	r.gen = 0
}

// cloneGroup deep-copies a group — the single copy site both the
// pristine snapshot and Reset's reinstall use, so a future Group
// field cannot be deep-copied in one and aliased in the other.
func cloneGroup(g *Group) *Group {
	members := make(map[UID]bool, len(g.members))
	for uid := range g.members {
		members[uid] = true
	}
	return &Group{
		GID: g.GID, Name: g.Name, Private: g.Private,
		Stewards: append([]UID(nil), g.Stewards...),
		members:  members,
	}
}

// MarkPristine records the registry's current state as the target of
// Reset. The cluster assembly calls it after creating the escalation
// groups, so Reset rewinds to "root plus the standard groups" — and
// the first AddUser after a Reset hands out the same UID/GID a fresh
// cluster would. Only the mutable groups are deep-copied: descriptors
// are append-only and private groups immutable, so the mark is O(
// project groups), not O(users).
func (r *Registry) MarkPristine() {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &pristineMark{
		nextUID: r.nextUID,
		nextGID: r.nextGID,
		descs:   len(r.descs),
		gen:     r.gen,
		groups:  make(map[GID]*Group),
	}
	for gid, g := range r.groups {
		if !g.Private {
			m.groups[gid] = cloneGroup(g)
		}
	}
	r.mark = m
}

// Reset rewinds the registry to the MarkPristine state (or to the
// NewRegistry state if no mark was taken): users and groups created
// since are dropped, membership changes to pristine groups are rolled
// back, and ID numbering restarts at the marked counters. The cost is
// O(state touched since the mark); when nothing was logically mutated
// (materializing cached views does not count) it returns immediately,
// so pooled XXL trials pay nothing for untouched registries.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.mark
	if m == nil {
		if r.gen != 0 {
			r.resetToFreshLocked()
		}
		return
	}
	if r.gen == m.gen {
		// Nothing logically changed since the mark. Views cached in
		// the meantime all describe pristine users, so they stay.
		return
	}
	for _, d := range r.descs[m.descs:] {
		delete(r.byName, d.name)
	}
	r.descs = r.descs[:m.descs]
	for uid := range r.users {
		if uid >= m.nextUID {
			delete(r.users, uid)
		}
	}
	for gid := range r.groups {
		if gid >= m.nextGID {
			delete(r.groups, gid)
		}
	}
	for name, gid := range r.gByName {
		if gid >= m.nextGID {
			delete(r.gByName, name)
		}
	}
	// Mutable groups are reinstalled as fresh copies: the pristine
	// mark must survive membership mutations of the *next* trial too.
	for gid, g := range m.groups {
		r.groups[gid] = cloneGroup(g)
	}
	r.nextUID, r.nextGID = m.nextUID, m.nextGID
	r.gen = m.gen
}

// Register records a user plus their user-private group (same name)
// without materializing any per-user state: one descriptor append and
// one name-index insert. This is the bulk-provisioning path XXL
// campaigns use to stand up millions of users; AddUser layers the
// eager *User view on top for callers that want it right away.
func (r *Registry) Register(name string) (UID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.registerLocked(name)
}

func (r *Registry) registerLocked(name string) (UID, error) {
	if _, dup := r.byName[name]; dup {
		return NoUID, fmt.Errorf("%w: user %q", ErrExists, name)
	}
	if _, dup := r.gByName[name]; dup {
		return NoUID, fmt.Errorf("%w: group %q", ErrExists, name)
	}
	uid := r.nextUID
	gid := r.nextGID
	r.nextUID++
	r.nextGID++
	r.descs = append(r.descs, userDesc{name: name, primary: gid})
	r.byName[name] = uid
	r.gen++
	return uid, nil
}

// AddUser creates a user plus their user-private group (same name).
// The home path follows the paper's layout: /home/<name>.
func (r *Registry) AddUser(name string) (*User, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	uid, err := r.registerLocked(name)
	if err != nil {
		return nil, err
	}
	return r.userLocked(uid)
}

// descOf returns the descriptor backing uid, if uid is a registered
// (non-root) user. Caller holds r.mu in either mode.
func (r *Registry) descOf(uid UID) (*userDesc, bool) {
	if uid < uidBase || int(uid-uidBase) >= len(r.descs) {
		return nil, false
	}
	return &r.descs[uid-uidBase], true
}

// ownerOf finds the user whose private group is gid. Private GIDs are
// handed out in ascending UID order, so this is a binary search over
// the descriptor primaries. Caller holds r.mu in either mode.
func (r *Registry) ownerOf(gid GID) (UID, *userDesc, bool) {
	i := sort.Search(len(r.descs), func(k int) bool { return r.descs[k].primary >= gid })
	if i == len(r.descs) || r.descs[i].primary != gid {
		return NoUID, nil, false
	}
	return uidBase + UID(i), &r.descs[i], true
}

// hasUser reports whether uid names an existing user, materialized or
// not. Caller holds r.mu in either mode.
func (r *Registry) hasUser(uid UID) bool {
	if _, ok := r.users[uid]; ok {
		return true
	}
	_, ok := r.descOf(uid)
	return ok
}

// primaryOf returns uid's primary GID without materializing the user.
// Caller holds r.mu in either mode.
func (r *Registry) primaryOf(uid UID) (GID, bool) {
	if u, ok := r.users[uid]; ok {
		return u.Primary, true
	}
	if d, ok := r.descOf(uid); ok {
		return d.primary, true
	}
	return NoGID, false
}

// userLocked materializes (or returns the cached) *User view of uid.
// Caller holds r.mu for writing.
func (r *Registry) userLocked(uid UID) (*User, error) {
	if u, ok := r.users[uid]; ok {
		return u, nil
	}
	d, ok := r.descOf(uid)
	if !ok {
		return nil, fmt.Errorf("%w: uid %d", ErrNoSuchUser, uid)
	}
	u := &User{UID: uid, Name: d.name, Primary: d.primary, HomePath: "/home/" + d.name}
	r.users[uid] = u
	return u, nil
}

// groupLocked materializes (or returns the cached) *Group view of
// gid. Caller holds r.mu for writing.
func (r *Registry) groupLocked(gid GID) (*Group, error) {
	if g, ok := r.groups[gid]; ok {
		return g, nil
	}
	uid, d, ok := r.ownerOf(gid)
	if !ok {
		return nil, fmt.Errorf("%w: gid %d", ErrNoSuchGroup, gid)
	}
	g := &Group{GID: gid, Name: d.name, Private: true, members: map[UID]bool{uid: true}}
	r.groups[gid] = g
	return g, nil
}

// AddProjectGroup creates an approved project group with the given
// data stewards. Stewards are implicitly members.
func (r *Registry) AddProjectGroup(name string, stewards ...UID) (*Group, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.gByName[name]; dup {
		return nil, fmt.Errorf("%w: group %q", ErrExists, name)
	}
	// User-private groups share their owner's name, so a user name
	// also blocks the group namespace.
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("%w: group %q", ErrExists, name)
	}
	for _, s := range stewards {
		if !r.hasUser(s) {
			return nil, fmt.Errorf("%w: steward uid %d", ErrNoSuchUser, s)
		}
	}
	gid := r.nextGID
	r.nextGID++
	g := &Group{GID: gid, Name: name, Stewards: append([]UID(nil), stewards...), members: make(map[UID]bool)}
	for _, s := range stewards {
		g.members[s] = true
	}
	r.groups[gid] = g
	r.gByName[name] = gid
	r.gen++
	return g, nil
}

// AddToGroup adds uid to a project group. Only a data steward of the
// group (or root) may do so; user-private groups are immutable
// (paper §IV-C: stewards approve adding and deleting users).
func (r *Registry) AddToGroup(actor UID, gid GID, uid UID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[gid]
	if !ok {
		if _, _, private := r.ownerOf(gid); private {
			return ErrPrivateGroup
		}
		return fmt.Errorf("%w: gid %d", ErrNoSuchGroup, gid)
	}
	if g.Private {
		return ErrPrivateGroup
	}
	if actor != Root && !g.IsSteward(actor) {
		return ErrNotSteward
	}
	if !r.hasUser(uid) {
		return fmt.Errorf("%w: uid %d", ErrNoSuchUser, uid)
	}
	if g.members[uid] {
		return ErrAlreadyMember
	}
	g.members[uid] = true
	r.gen++
	return nil
}

// RemoveFromGroup removes uid from a project group; steward-gated
// like AddToGroup. Stewards cannot be removed except by root.
func (r *Registry) RemoveFromGroup(actor UID, gid GID, uid UID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[gid]
	if !ok {
		if _, _, private := r.ownerOf(gid); private {
			return ErrPrivateGroup
		}
		return fmt.Errorf("%w: gid %d", ErrNoSuchGroup, gid)
	}
	if g.Private {
		return ErrPrivateGroup
	}
	if actor != Root && !g.IsSteward(actor) {
		return ErrNotSteward
	}
	if !g.members[uid] {
		return ErrNotMember
	}
	if g.IsSteward(uid) && actor != Root {
		return fmt.Errorf("%w: cannot remove steward uid %d", ErrNotSteward, uid)
	}
	delete(g.members, uid)
	r.gen++
	return nil
}

// User returns the user with the given UID.
func (r *Registry) User(uid UID) (*User, error) {
	r.mu.RLock()
	u, ok := r.users[uid]
	r.mu.RUnlock()
	if ok {
		return u, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.userLocked(uid)
}

// UserByName resolves a login name.
func (r *Registry) UserByName(name string) (*User, error) {
	r.mu.RLock()
	uid, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchUser, name)
	}
	return r.User(uid)
}

// Group returns the group with the given GID.
func (r *Registry) Group(gid GID) (*Group, error) {
	r.mu.RLock()
	g, ok := r.groups[gid]
	r.mu.RUnlock()
	if ok {
		return g, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.groupLocked(gid)
}

// GroupByName resolves a group name.
func (r *Registry) GroupByName(name string) (*Group, error) {
	r.mu.RLock()
	gid, ok := r.gByName[name]
	if !ok {
		// A user-private group carries its owner's name.
		if uid, isUser := r.byName[name]; isUser {
			if d, dok := r.descOf(uid); dok {
				gid, ok = d.primary, true
			}
		}
	}
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchGroup, name)
	}
	return r.Group(gid)
}

// GroupsOf returns the GIDs the user belongs to (primary first, the
// rest sorted), i.e. the supplemental group set a login session gets.
// Only the materialized/project tables are scanned: an unmaterialized
// private group has exactly its owner as member, so it can never
// contribute to another user's supplemental set.
func (r *Registry) GroupsOf(uid UID) ([]GID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	primary, ok := r.primaryOf(uid)
	if !ok {
		return nil, fmt.Errorf("%w: uid %d", ErrNoSuchUser, uid)
	}
	var rest []GID
	for gid, g := range r.groups {
		if gid != primary && g.members[uid] {
			rest = append(rest, gid)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append([]GID{primary}, rest...), nil
}

// LoginCredential builds the credential a fresh login session gets:
// uid, egid = user-private group, supplemental groups = all groups the
// user is a member of.
func (r *Registry) LoginCredential(uid UID) (Credential, error) {
	groups, err := r.GroupsOf(uid)
	if err != nil {
		return Credential{}, err
	}
	return Credential{UID: uid, EGID: groups[0], Groups: groups}, nil
}

// SwitchGroup implements newgrp/sg: returns a credential with the
// effective GID switched to gid, but only if the user is a member.
// This is the opt-in step that lets a listener accept project-group
// peers through the UBF (paper §IV-D).
func (r *Registry) SwitchGroup(c Credential, gid GID) (Credential, error) {
	r.mu.RLock()
	g, ok := r.groups[gid]
	owner := NoUID
	if !ok {
		if uid, _, found := r.ownerOf(gid); found {
			owner, ok = uid, true
		}
	}
	r.mu.RUnlock()
	if !ok {
		return c, fmt.Errorf("%w: gid %d", ErrNoSuchGroup, gid)
	}
	member := owner == c.UID
	if g != nil {
		member = g.Has(c.UID)
	}
	if !member && !c.IsRoot() {
		return c, fmt.Errorf("%w: uid %d not in gid %d", ErrNotMember, c.UID, gid)
	}
	return c.WithEGID(gid), nil
}

// SharedGroup reports whether two users share at least one
// non-private group — the paper's definition of "allowed to share".
// Private groups (materialized or not) never qualify, so scanning the
// materialized/project tables is exhaustive.
func (r *Registry) SharedGroup(a, b UID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, g := range r.groups {
		if !g.Private && g.members[a] && g.members[b] {
			return true
		}
	}
	return false
}

// Users returns all UIDs sorted ascending.
func (r *Registry) Users() []UID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]UID, 0, len(r.descs)+1)
	out = append(out, Root)
	for i := range r.descs {
		out = append(out, uidBase+UID(i))
	}
	return out
}

// Groups returns all GIDs sorted ascending.
func (r *Registry) Groups() []GID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GID, 0, len(r.groups)+len(r.descs))
	for gid := range r.groups {
		// Materialized private groups are already counted via their
		// owner's descriptor below.
		if _, _, private := r.ownerOf(gid); !private {
			out = append(out, gid)
		}
	}
	for i := range r.descs {
		out = append(out, r.descs[i].primary)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
