package ids

import "testing"

// The Registry Reset contract: users/groups created after the mark
// vanish, memberships of pristine groups roll back, and ID numbering
// rewinds so the next AddUser matches a fresh registry's.
func TestRegistryResetRewindsToMark(t *testing.T) {
	r := NewRegistry()
	supp, err := r.AddProjectGroup("support", Root)
	if err != nil {
		t.Fatal(err)
	}
	r.MarkPristine()

	u1, err := r.AddUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddToGroup(Root, supp.GID, u1.UID); err != nil {
		t.Fatal(err)
	}
	r.Reset()

	if _, err := r.UserByName("alice"); err == nil {
		t.Error("trial user survived Reset")
	}
	g, err := r.Group(supp.GID)
	if err != nil {
		t.Fatal(err)
	}
	if g.Has(u1.UID) {
		t.Error("trial group membership survived Reset")
	}
	u2, err := r.AddUser("bob")
	if err != nil {
		t.Fatal(err)
	}
	if u2.UID != u1.UID || u2.Primary != u1.Primary {
		t.Errorf("ID numbering did not rewind: got uid %d gid %d, want %d %d",
			u2.UID, u2.Primary, u1.UID, u1.Primary)
	}
	// The mark survives membership mutations of later trials.
	if err := r.AddToGroup(Root, supp.GID, u2.UID); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	g, _ = r.Group(supp.GID)
	if g.Has(u2.UID) {
		t.Error("second-trial membership leaked into the pristine mark")
	}
}

func TestRegistryResetWithoutMark(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	if _, err := r.UserByName("alice"); err == nil {
		t.Error("user survived unmarked Reset")
	}
	if _, err := r.User(Root); err != nil {
		t.Error("root must survive any Reset")
	}
	u, err := r.AddUser("bob")
	if err != nil {
		t.Fatal(err)
	}
	if u.UID != 1000 {
		t.Errorf("first UID after unmarked Reset = %d, want 1000", u.UID)
	}
}
