package ids

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// The lazy registry materializes *User and private *Group views on
// first access; these tests pin that the observable behavior is
// byte-identical regardless of when (or whether) materialization
// happens — the equivalence the eager implementation provided for
// free. "Eager" below means every accessor is touched immediately
// after each mutation; "lazy" means nothing is touched until the
// final observation pass.

// regObservation is the full externally visible state of a registry.
type regObservation struct {
	Users  []UID
	Groups []GID
	// Per user: everything the accessor API exposes.
	UserViews   map[UID]User
	Creds       map[UID]Credential
	GroupsOf    map[UID][]GID
	ByName      map[string]UID
	GroupViews  map[GID]Group
	GroupMember map[GID][]UID
	GByName     map[string]GID
	Shared      map[string]bool // "a-b" -> SharedGroup(a, b)
	Errors      map[string]string
}

// observe exercises every accessor and records the results. It names
// users/groups by scanning Users()/Groups(), so the observation is
// self-contained and order-sensitive.
func observe(t *testing.T, r *Registry) regObservation {
	t.Helper()
	obs := regObservation{
		UserViews:   map[UID]User{},
		Creds:       map[UID]Credential{},
		GroupsOf:    map[UID][]GID{},
		ByName:      map[string]UID{},
		GroupViews:  map[GID]Group{},
		GroupMember: map[GID][]UID{},
		GByName:     map[string]GID{},
		Shared:      map[string]bool{},
		Errors:      map[string]string{},
	}
	obs.Users = r.Users()
	obs.Groups = r.Groups()
	for _, uid := range obs.Users {
		u, err := r.User(uid)
		if err != nil {
			t.Fatalf("User(%d): %v", uid, err)
		}
		obs.UserViews[uid] = *u
		byName, err := r.UserByName(u.Name)
		if err != nil || byName.UID != uid {
			t.Fatalf("UserByName(%q) = %v, %v; want uid %d", u.Name, byName, err, uid)
		}
		obs.ByName[u.Name] = byName.UID
		cred, err := r.LoginCredential(uid)
		if err != nil {
			t.Fatalf("LoginCredential(%d): %v", uid, err)
		}
		obs.Creds[uid] = cred
		gids, err := r.GroupsOf(uid)
		if err != nil {
			t.Fatalf("GroupsOf(%d): %v", uid, err)
		}
		obs.GroupsOf[uid] = gids
	}
	for _, gid := range obs.Groups {
		g, err := r.Group(gid)
		if err != nil {
			t.Fatalf("Group(%d): %v", gid, err)
		}
		gv := *g
		gv.members = nil // compare membership via the sorted slice below
		obs.GroupViews[gid] = gv
		members := g.Members()
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		obs.GroupMember[gid] = members
		byName, err := r.GroupByName(g.Name)
		if err != nil || byName.GID != gid {
			t.Fatalf("GroupByName(%q) = %v, %v; want gid %d", g.Name, byName, err, gid)
		}
		obs.GByName[g.Name] = byName.GID
	}
	for _, a := range obs.Users {
		for _, b := range obs.Users {
			obs.Shared[fmt.Sprintf("%d-%d", a, b)] = r.SharedGroup(a, b)
		}
	}
	// Error-path equivalence: these must fail identically whether or
	// not the entities involved were ever materialized.
	record := func(key string, err error) {
		if err == nil {
			obs.Errors[key] = ""
			return
		}
		obs.Errors[key] = err.Error()
	}
	_, dupErr := r.Register(obs.UserViews[obs.Users[len(obs.Users)-1]].Name)
	record("dup-register", dupErr)
	if len(obs.Users) > 1 {
		uid := obs.Users[1]
		record("join-private", r.AddToGroup(Root, obs.UserViews[uid].Primary, Root))
		record("leave-private", r.RemoveFromGroup(Root, obs.UserViews[uid].Primary, uid))
	}
	record("no-such-group", r.AddToGroup(Root, GID(99999), Root))
	return obs
}

// touchAll forces materialization of every view — the eager schedule.
func touchAll(t *testing.T, r *Registry) {
	t.Helper()
	for _, uid := range r.Users() {
		if _, err := r.User(uid); err != nil {
			t.Fatal(err)
		}
		if _, err := r.LoginCredential(uid); err != nil {
			t.Fatal(err)
		}
		if _, err := r.GroupsOf(uid); err != nil {
			t.Fatal(err)
		}
	}
	for _, gid := range r.Groups() {
		if _, err := r.Group(gid); err != nil {
			t.Fatal(err)
		}
	}
}

// script applies the same mutation sequence to r; when eager is set,
// every view is materialized after each mutation.
func script(t *testing.T, r *Registry, eager bool) {
	t.Helper()
	step := func() {
		if eager {
			touchAll(t, r)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := r.AddUser(fmt.Sprintf("user%d", i)); err != nil {
			t.Fatal(err)
		}
		step()
	}
	// Bulk registrations interleaved with full adds.
	for i := 0; i < 20; i++ {
		if _, err := r.Register(fmt.Sprintf("bulk%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	step()
	alice, err := r.UserByName("user0")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := r.UserByName("user1")
	if err != nil {
		t.Fatal(err)
	}
	proj, err := r.AddProjectGroup("proj-a", alice.UID)
	if err != nil {
		t.Fatal(err)
	}
	step()
	if err := r.AddToGroup(alice.UID, proj.GID, bob.UID); err != nil {
		t.Fatal(err)
	}
	step()
	// A membership granted to a user that was only bulk-registered,
	// never materialized (on the lazy side).
	carol, err := r.UserByName("bulk7")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddToGroup(alice.UID, proj.GID, carol.UID); err != nil {
		t.Fatal(err)
	}
	step()
	if err := r.RemoveFromGroup(alice.UID, proj.GID, bob.UID); err != nil {
		t.Fatal(err)
	}
	step()
	if _, err := r.AddProjectGroup("proj-b", carol.UID); err != nil {
		t.Fatal(err)
	}
	step()
}

func TestLazyEagerEquivalence(t *testing.T) {
	eager, lazy := NewRegistry(), NewRegistry()
	script(t, eager, true)
	script(t, lazy, false)
	a, b := observe(t, eager), observe(t, lazy)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("eager/lazy observations diverge:\neager: %+v\nlazy:  %+v", a, b)
	}
	// Observation itself materializes everything; a second pass must
	// be a fixed point.
	if c := observe(t, lazy); !reflect.DeepEqual(b, c) {
		t.Fatalf("second observation diverges from first:\n1st: %+v\n2nd: %+v", b, c)
	}
}

func TestLazyEagerResetEquivalence(t *testing.T) {
	eager, lazy := NewRegistry(), NewRegistry()
	script(t, eager, true)
	script(t, lazy, false)
	eager.MarkPristine()
	lazy.MarkPristine()

	// A third registry records the expected post-Reset state: the
	// script with nothing after the mark.
	want := NewRegistry()
	script(t, want, false)
	want.MarkPristine()

	// Post-mark churn on both, with different materialization
	// schedules.
	churn := func(r *Registry, eagerly bool) {
		for i := 0; i < 10; i++ {
			if _, err := r.Register(fmt.Sprintf("trial%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.AddUser("trial-active"); err != nil {
			t.Fatal(err)
		}
		steward, err := r.UserByName("user2")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.AddProjectGroup("trial-proj", steward.UID); err != nil {
			t.Fatal(err)
		}
		if eagerly {
			touchAll(t, r)
		}
	}
	churn(eager, true)
	churn(lazy, false)
	eager.Reset()
	lazy.Reset()

	a, b, w := observe(t, eager), observe(t, lazy), observe(t, want)
	if !reflect.DeepEqual(a, w) {
		t.Fatalf("eager post-Reset diverges from pristine:\ngot:  %+v\nwant: %+v", a, w)
	}
	if !reflect.DeepEqual(b, w) {
		t.Fatalf("lazy post-Reset diverges from pristine:\ngot:  %+v\nwant: %+v", b, w)
	}
}

// TestLazyErrorIdentity pins the error classes the lazy fallbacks must
// preserve: operations on a never-materialized private group behave
// exactly like on a materialized one.
func TestLazyErrorIdentity(t *testing.T) {
	r := NewRegistry()
	uid, err := r.Register("ghost")
	if err != nil {
		t.Fatal(err)
	}
	gid, ok := func() (GID, bool) {
		c, err := r.LoginCredential(uid)
		if err != nil {
			return NoGID, false
		}
		return c.EGID, true
	}()
	if !ok {
		t.Fatal("no login credential for bulk-registered user")
	}
	if err := r.AddToGroup(Root, gid, Root); !errors.Is(err, ErrPrivateGroup) {
		t.Fatalf("AddToGroup on lazy private group: got %v, want ErrPrivateGroup", err)
	}
	if err := r.RemoveFromGroup(Root, gid, uid); !errors.Is(err, ErrPrivateGroup) {
		t.Fatalf("RemoveFromGroup on lazy private group: got %v, want ErrPrivateGroup", err)
	}
	if err := r.AddToGroup(Root, GID(424242), Root); !errors.Is(err, ErrNoSuchGroup) {
		t.Fatalf("AddToGroup on missing group: got %v, want ErrNoSuchGroup", err)
	}
	if _, err := r.AddProjectGroup("ghost", Root); !errors.Is(err, ErrExists) {
		t.Fatalf("AddProjectGroup colliding with a lazy private name: got %v, want ErrExists", err)
	}
}
