// Package ids implements the identity substrate of the simulated HPC
// system: users, groups, and the user-private-group (UPG) scheme the
// paper's filesystem and network separation measures depend on.
//
// In the user-private-group scheme every user's default (primary)
// group is a private group containing only that user. Data sharing is
// then only possible through explicitly approved supplemental
// ("project") groups managed by data stewards (paper §IV-C).
package ids

import "fmt"

// UID identifies a user. UID 0 is root.
type UID int

// GID identifies a group. GID 0 is root's group.
type GID int

// PID identifies a process within a node's process table.
type PID int

// Root is the superuser UID.
const Root UID = 0

// RootGroup is the superuser's group.
const RootGroup GID = 0

// NoUID is returned by lookups that fail to resolve a user.
const NoUID UID = -1

// NoGID is returned by lookups that fail to resolve a group.
const NoGID GID = -1

// User describes an account on the system.
type User struct {
	UID      UID
	Name     string
	Primary  GID // the user-private group under the UPG scheme
	HomePath string
}

// Group describes a group. Under the UPG scheme a group is either a
// user-private group (Private == true, exactly one member) or an
// approved project group with one or more data stewards.
type Group struct {
	GID      GID
	Name     string
	Private  bool
	Stewards []UID // project leaders allowed to add/remove members
	members  map[UID]bool
}

// Members returns the group's member UIDs in unspecified order.
func (g *Group) Members() []UID {
	out := make([]UID, 0, len(g.members))
	for u := range g.members {
		out = append(out, u)
	}
	return out
}

// Has reports whether uid is a member of the group.
func (g *Group) Has(uid UID) bool { return g.members[uid] }

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// IsSteward reports whether uid is a data steward of the group.
func (g *Group) IsSteward(uid UID) bool {
	for _, s := range g.Stewards {
		if s == uid {
			return true
		}
	}
	return false
}

// Credential is the identity a process runs with: a user, an
// effective group, and the supplemental group set. The effective GID
// can be switched to any group the user belongs to via newgrp/sg
// (paper §IV-D) and is what the UBF consults on the listener side.
type Credential struct {
	UID    UID
	EGID   GID
	Groups []GID // supplemental groups, including the primary
}

// RootCred returns the superuser credential.
func RootCred() Credential {
	return Credential{UID: Root, EGID: RootGroup, Groups: []GID{RootGroup}}
}

// InGroup reports whether the credential includes gid either as the
// effective group or in the supplemental set.
func (c Credential) InGroup(gid GID) bool {
	if c.EGID == gid {
		return true
	}
	for _, g := range c.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// IsRoot reports whether the credential is the superuser.
func (c Credential) IsRoot() bool { return c.UID == Root }

// WithEGID returns a copy of the credential with the effective group
// switched to gid. It is the caller's responsibility to verify
// membership (see Registry.SwitchGroup for the checked variant).
func (c Credential) WithEGID(gid GID) Credential {
	nc := c
	nc.EGID = gid
	return nc
}

// Clone returns a deep copy of the credential.
func (c Credential) Clone() Credential {
	nc := c
	nc.Groups = append([]GID(nil), c.Groups...)
	return nc
}

func (c Credential) String() string {
	return fmt.Sprintf("uid=%d egid=%d groups=%v", c.UID, c.EGID, c.Groups)
}
