package ids

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAddUserCreatesPrivateGroup(t *testing.T) {
	r := NewRegistry()
	u, err := r.AddUser("alice")
	if err != nil {
		t.Fatalf("AddUser: %v", err)
	}
	g, err := r.Group(u.Primary)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	if !g.Private {
		t.Errorf("primary group is not private")
	}
	if g.Name != "alice" {
		t.Errorf("private group name = %q, want alice", g.Name)
	}
	if g.Size() != 1 || !g.Has(u.UID) {
		t.Errorf("private group members = %v, want exactly [%d]", g.Members(), u.UID)
	}
	if u.HomePath != "/home/alice" {
		t.Errorf("home = %q", u.HomePath)
	}
}

func TestAddUserDuplicateName(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddUser("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddUser("bob"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate AddUser err = %v, want ErrExists", err)
	}
}

func TestPrivateGroupImmutable(t *testing.T) {
	r := NewRegistry()
	a, _ := r.AddUser("alice")
	b, _ := r.AddUser("bob")
	if err := r.AddToGroup(Root, a.Primary, b.UID); !errors.Is(err, ErrPrivateGroup) {
		t.Errorf("adding to private group err = %v, want ErrPrivateGroup", err)
	}
	if err := r.RemoveFromGroup(Root, a.Primary, a.UID); !errors.Is(err, ErrPrivateGroup) {
		t.Errorf("removing from private group err = %v, want ErrPrivateGroup", err)
	}
}

func TestProjectGroupStewardGating(t *testing.T) {
	r := NewRegistry()
	lead, _ := r.AddUser("lead")
	member, _ := r.AddUser("member")
	outsider, _ := r.AddUser("outsider")
	g, err := r.AddProjectGroup("proj", lead.UID)
	if err != nil {
		t.Fatalf("AddProjectGroup: %v", err)
	}
	if !g.Has(lead.UID) {
		t.Errorf("steward not implicitly a member")
	}
	// Non-steward cannot add.
	if err := r.AddToGroup(outsider.UID, g.GID, member.UID); !errors.Is(err, ErrNotSteward) {
		t.Errorf("non-steward add err = %v, want ErrNotSteward", err)
	}
	// Steward can add.
	if err := r.AddToGroup(lead.UID, g.GID, member.UID); err != nil {
		t.Fatalf("steward add: %v", err)
	}
	if err := r.AddToGroup(lead.UID, g.GID, member.UID); !errors.Is(err, ErrAlreadyMember) {
		t.Errorf("re-add err = %v, want ErrAlreadyMember", err)
	}
	// Steward can remove members but not fellow stewards.
	if err := r.RemoveFromGroup(lead.UID, g.GID, member.UID); err != nil {
		t.Fatalf("steward remove: %v", err)
	}
	if err := r.RemoveFromGroup(lead.UID, g.GID, lead.UID); err == nil {
		t.Errorf("steward removed a steward without root")
	}
	// Root can remove stewards.
	if err := r.RemoveFromGroup(Root, g.GID, lead.UID); err != nil {
		t.Errorf("root remove steward: %v", err)
	}
}

func TestLoginCredential(t *testing.T) {
	r := NewRegistry()
	a, _ := r.AddUser("alice")
	lead, _ := r.AddUser("lead")
	g, _ := r.AddProjectGroup("proj", lead.UID)
	if err := r.AddToGroup(lead.UID, g.GID, a.UID); err != nil {
		t.Fatal(err)
	}
	c, err := r.LoginCredential(a.UID)
	if err != nil {
		t.Fatal(err)
	}
	if c.EGID != a.Primary {
		t.Errorf("login egid = %d, want private group %d", c.EGID, a.Primary)
	}
	if !c.InGroup(g.GID) {
		t.Errorf("login groups %v missing project group %d", c.Groups, g.GID)
	}
	if len(c.Groups) != 2 {
		t.Errorf("groups = %v, want exactly primary+project", c.Groups)
	}
}

func TestSwitchGroup(t *testing.T) {
	r := NewRegistry()
	a, _ := r.AddUser("alice")
	lead, _ := r.AddUser("lead")
	g, _ := r.AddProjectGroup("proj", lead.UID)
	if err := r.AddToGroup(lead.UID, g.GID, a.UID); err != nil {
		t.Fatal(err)
	}
	c, _ := r.LoginCredential(a.UID)
	switched, err := r.SwitchGroup(c, g.GID)
	if err != nil {
		t.Fatalf("SwitchGroup: %v", err)
	}
	if switched.EGID != g.GID {
		t.Errorf("egid = %d, want %d", switched.EGID, g.GID)
	}
	// A non-member cannot switch.
	b, _ := r.AddUser("bob")
	cb, _ := r.LoginCredential(b.UID)
	if _, err := r.SwitchGroup(cb, g.GID); !errors.Is(err, ErrNotMember) {
		t.Errorf("non-member switch err = %v, want ErrNotMember", err)
	}
	// Root can switch to anything.
	if _, err := r.SwitchGroup(RootCred(), g.GID); err != nil {
		t.Errorf("root switch: %v", err)
	}
}

func TestSharedGroup(t *testing.T) {
	r := NewRegistry()
	a, _ := r.AddUser("alice")
	b, _ := r.AddUser("bob")
	c, _ := r.AddUser("carol")
	lead, _ := r.AddUser("lead")
	g, _ := r.AddProjectGroup("proj", lead.UID)
	_ = r.AddToGroup(lead.UID, g.GID, a.UID)
	_ = r.AddToGroup(lead.UID, g.GID, b.UID)
	if !r.SharedGroup(a.UID, b.UID) {
		t.Errorf("alice and bob share proj, SharedGroup = false")
	}
	if r.SharedGroup(a.UID, c.UID) {
		t.Errorf("alice and carol share nothing, SharedGroup = true")
	}
	// Private groups never count as shared, even self-vs-self.
	if r.SharedGroup(c.UID, c.UID) {
		t.Errorf("SharedGroup(self,self) via private group = true")
	}
}

func TestCredentialInGroupAndClone(t *testing.T) {
	c := Credential{UID: 5, EGID: 7, Groups: []GID{7, 9}}
	if !c.InGroup(7) || !c.InGroup(9) || c.InGroup(11) {
		t.Errorf("InGroup wrong: %v", c)
	}
	cl := c.Clone()
	cl.Groups[0] = 99
	if c.Groups[0] == 99 {
		t.Errorf("Clone shares backing array")
	}
	w := c.WithEGID(9)
	if w.EGID != 9 || c.EGID != 7 {
		t.Errorf("WithEGID mutated receiver or failed: %v %v", w, c)
	}
}

func TestRootIsAlwaysPresent(t *testing.T) {
	r := NewRegistry()
	u, err := r.User(Root)
	if err != nil || u.Name != "root" {
		t.Fatalf("root lookup: %v %v", u, err)
	}
	if !RootCred().IsRoot() {
		t.Errorf("RootCred not root")
	}
	g, err := r.GroupByName("root")
	if err != nil || g.GID != RootGroup {
		t.Fatalf("root group lookup: %v %v", g, err)
	}
}

func TestUsersAndGroupsSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"u1", "u2", "u3"} {
		if _, err := r.AddUser(n); err != nil {
			t.Fatal(err)
		}
	}
	us := r.Users()
	for i := 1; i < len(us); i++ {
		if us[i-1] >= us[i] {
			t.Fatalf("Users not sorted: %v", us)
		}
	}
	gs := r.Groups()
	for i := 1; i < len(gs); i++ {
		if gs[i-1] >= gs[i] {
			t.Fatalf("Groups not sorted: %v", gs)
		}
	}
}

// Property: for any set of distinct user names, every created user has
// a singleton private group containing exactly themselves, and no two
// users ever share a private group.
func TestQuickUPGInvariant(t *testing.T) {
	f := func(n uint8) bool {
		r := NewRegistry()
		count := int(n%16) + 1
		uids := make([]UID, 0, count)
		for i := 0; i < count; i++ {
			u, err := r.AddUser(string(rune('a'+i)) + "user")
			if err != nil {
				return false
			}
			uids = append(uids, u.UID)
		}
		for _, uid := range uids {
			u, _ := r.User(uid)
			g, err := r.Group(u.Primary)
			if err != nil || !g.Private || g.Size() != 1 || !g.Has(uid) {
				return false
			}
		}
		// No pair shares anything.
		for i := range uids {
			for j := range uids {
				if i != j && r.SharedGroup(uids[i], uids[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SwitchGroup never changes UID or the supplemental set,
// only the effective GID, and only to a group the user belongs to.
func TestQuickSwitchGroupInvariant(t *testing.T) {
	r := NewRegistry()
	lead, _ := r.AddUser("lead")
	a, _ := r.AddUser("alice")
	g1, _ := r.AddProjectGroup("p1", lead.UID)
	g2, _ := r.AddProjectGroup("p2", lead.UID)
	_ = r.AddToGroup(lead.UID, g1.GID, a.UID)
	c, _ := r.LoginCredential(a.UID)

	f := func(pick uint8) bool {
		targets := []GID{a.Primary, g1.GID, g2.GID, 9999}
		gid := targets[int(pick)%len(targets)]
		nc, err := r.SwitchGroup(c, gid)
		if err != nil {
			// Failure must leave the credential unchanged and must be
			// because the user is not a member (or group missing).
			return nc.EGID == c.EGID && (gid == g2.GID || gid == 9999)
		}
		return nc.UID == c.UID && nc.EGID == gid && len(nc.Groups) == len(c.Groups)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserByNameAndMembers(t *testing.T) {
	r := NewRegistry()
	a, _ := r.AddUser("alice")
	u, err := r.UserByName("alice")
	if err != nil || u.UID != a.UID {
		t.Fatalf("UserByName = %v, %v", u, err)
	}
	if _, err := r.UserByName("ghost"); !errors.Is(err, ErrNoSuchUser) {
		t.Errorf("ghost lookup err = %v", err)
	}
	g, _ := r.Group(a.Primary)
	members := g.Members()
	if len(members) != 1 || members[0] != a.UID {
		t.Errorf("Members = %v", members)
	}
	if s := RootCred().String(); s == "" {
		t.Error("empty Credential.String")
	}
}
