package procfs

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/simos"
)

const supportGID ids.GID = 500

func cred(uid ids.UID) ids.Credential {
	return ids.Credential{UID: uid, EGID: ids.GID(uid), Groups: []ids.GID{ids.GID(uid)}}
}

// newTable builds a table with 3 daemons? No — raw table, we control contents.
func newPopulatedTable(t *testing.T) (*simos.Table, map[ids.UID][]ids.PID) {
	t.Helper()
	tb := simos.NewTable(nil)
	owned := make(map[ids.UID][]ids.PID)
	tb.SpawnDaemon("systemd")
	for _, uid := range []ids.UID{1000, 2000} {
		for i := 0; i < 3; i++ {
			p := tb.Spawn(cred(uid), 0, "work", "--secret", "token-of-"+string(rune('a'+int(uid/1000))))
			owned[uid] = append(owned[uid], p.PID)
		}
	}
	return tb, owned
}

func TestHidepid0EverybodySeesEverything(t *testing.T) {
	tb, _ := newPopulatedTable(t)
	m := NewMount(tb, HidePIDOff, ids.NoGID)
	got := m.List(cred(1000))
	if len(got) != tb.Len() {
		t.Errorf("hidepid=0 list len = %d, want %d", len(got), tb.Len())
	}
	if len(m.Readable(cred(1000))) != tb.Len() {
		t.Errorf("hidepid=0 readable should include all")
	}
}

func TestHidepid1DirsVisibleContentsHidden(t *testing.T) {
	tb, owned := newPopulatedTable(t)
	m := NewMount(tb, HidePIDNoRead, ids.NoGID)
	alice := cred(1000)
	// Listing still shows everything.
	if len(m.List(alice)) != tb.Len() {
		t.Errorf("hidepid=1 hid dirs from listing")
	}
	// But foreign cmdline is EPERM, not ENOENT.
	foreign := owned[2000][0]
	if _, err := m.ReadCmdline(alice, foreign); !errors.Is(err, ErrHidden) {
		t.Errorf("foreign cmdline err = %v, want ErrHidden", err)
	}
	// Own cmdline still reads.
	if s, err := m.ReadCmdline(alice, owned[1000][0]); err != nil || s == "" {
		t.Errorf("own cmdline: %q %v", s, err)
	}
	// Stat returns a redacted stub for foreign pids.
	p, err := m.Stat(alice, foreign)
	if err != nil {
		t.Fatalf("hidepid=1 stat foreign: %v", err)
	}
	if len(p.Cmdline) != 0 || p.Cred.UID != 0 {
		t.Errorf("hidepid=1 stat leaked details: %+v", p)
	}
	if p.Comm == "" {
		t.Errorf("hidepid=1 stat stub dropped Comm")
	}
	// List obeys the same redaction contract: foreign entries appear
	// (the dirs are listed) but carry no cmdline or credential.
	for _, lp := range m.List(alice) {
		if lp.Cred.UID == 1000 {
			continue // own entries are full
		}
		if len(lp.Cmdline) != 0 || lp.Cred.UID != 0 {
			t.Errorf("hidepid=1 List leaked details of pid %d: %+v", lp.PID, lp)
		}
	}
}

func TestHidepid2ForeignInvisible(t *testing.T) {
	tb, owned := newPopulatedTable(t)
	m := NewMount(tb, HidePIDInvis, ids.NoGID)
	alice := cred(1000)
	got := m.List(alice)
	if len(got) != 3 {
		t.Fatalf("hidepid=2 list len = %d, want only own 3", len(got))
	}
	for _, p := range got {
		if p.Cred.UID != 1000 {
			t.Errorf("hidepid=2 leaked pid %d of uid %d", p.PID, p.Cred.UID)
		}
	}
	// Foreign pid looks nonexistent (ENOENT, not EPERM) — that
	// distinction is what kills pid-probing side channels.
	foreign := owned[2000][0]
	if _, err := m.Stat(alice, foreign); !errors.Is(err, ErrNotFound) {
		t.Errorf("stat foreign err = %v, want ErrNotFound", err)
	}
	if _, err := m.ReadCmdline(alice, foreign); !errors.Is(err, ErrNotFound) {
		t.Errorf("cmdline foreign err = %v, want ErrNotFound", err)
	}
}

func TestRootSeesAllAtEveryLevel(t *testing.T) {
	tb, _ := newPopulatedTable(t)
	for _, h := range []HidePID{HidePIDOff, HidePIDNoRead, HidePIDInvis} {
		m := NewMount(tb, h, ids.NoGID)
		if len(m.Readable(ids.RootCred())) != tb.Len() {
			t.Errorf("%v: root readable < all", h)
		}
	}
}

func TestExemptGIDBypasses(t *testing.T) {
	tb, owned := newPopulatedTable(t)
	m := NewMount(tb, HidePIDInvis, supportGID)
	support := cred(3000)
	support.Groups = append(support.Groups, supportGID)
	if len(m.List(support)) != tb.Len() {
		t.Errorf("exempt gid holder cannot list all")
	}
	if _, err := m.ReadCmdline(support, owned[2000][0]); err != nil {
		t.Errorf("exempt gid holder cmdline: %v", err)
	}
	// Without the gid, same user sees nothing foreign.
	plain := cred(3000)
	if len(m.List(plain)) != 0 {
		t.Errorf("non-exempt observer with no processes saw %d", len(m.List(plain)))
	}
}

func TestSeepidElevateAndDrop(t *testing.T) {
	s := NewSeepid(supportGID, 3000)
	facilitator := cred(3000)
	elevated, err := s.Elevate(facilitator)
	if err != nil {
		t.Fatalf("Elevate: %v", err)
	}
	if !elevated.InGroup(supportGID) {
		t.Errorf("Elevate did not add exempt gid")
	}
	if facilitator.InGroup(supportGID) {
		t.Errorf("Elevate mutated the original credential")
	}
	dropped := s.Drop(elevated)
	if dropped.InGroup(supportGID) {
		t.Errorf("Drop left exempt gid")
	}
	// Non-whitelisted user is refused.
	if _, err := s.Elevate(cred(1000)); !errors.Is(err, ErrNotExempt) {
		t.Errorf("non-whitelisted Elevate err = %v, want ErrNotExempt", err)
	}
}

func TestSeepidEndToEnd(t *testing.T) {
	tb, _ := newPopulatedTable(t)
	m := NewMount(tb, HidePIDInvis, supportGID)
	s := NewSeepid(supportGID, 3000)
	facilitator := cred(3000)
	before := len(m.List(facilitator))
	elevated, err := s.Elevate(facilitator)
	if err != nil {
		t.Fatal(err)
	}
	after := len(m.List(elevated))
	if before != 0 || after != tb.Len() {
		t.Errorf("seepid session: before=%d after=%d want 0 and %d", before, after, tb.Len())
	}
}

func TestStatMissingPID(t *testing.T) {
	tb := simos.NewTable(nil)
	m := NewMount(tb, HidePIDOff, ids.NoGID)
	if _, err := m.Stat(ids.RootCred(), 12345); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing pid err = %v, want ErrNotFound", err)
	}
}

// Property: at hidepid=2, for any observer uid, List returns exactly
// the observer's own processes, and List(hidepid=2) ⊆ List(hidepid=1)
// = List(hidepid=0).
func TestQuickHidepidMonotonic(t *testing.T) {
	f := func(nA, nB uint8, observerIsA bool) bool {
		tb := simos.NewTable(nil)
		tb.SpawnDaemon("systemd")
		a, b := cred(1000), cred(2000)
		for i := 0; i < int(nA%8); i++ {
			tb.Spawn(a, 0, "pa")
		}
		for i := 0; i < int(nB%8); i++ {
			tb.Spawn(b, 0, "pb")
		}
		obs := a
		own := int(nA % 8)
		if !observerIsA {
			obs = b
			own = int(nB % 8)
		}
		l0 := len(NewMount(tb, HidePIDOff, ids.NoGID).List(obs))
		l1 := len(NewMount(tb, HidePIDNoRead, ids.NoGID).List(obs))
		l2 := len(NewMount(tb, HidePIDInvis, ids.NoGID).List(obs))
		return l0 == tb.Len() && l1 == l0 && l2 == own
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Readable is always a subset of List for any mode.
func TestQuickReadableSubsetOfList(t *testing.T) {
	f := func(mode uint8) bool {
		tb := simos.NewTable(nil)
		tb.SpawnDaemon("d")
		tb.Spawn(cred(1000), 0, "a")
		tb.Spawn(cred(2000), 0, "b")
		m := NewMount(tb, HidePID(mode%3), ids.NoGID)
		obs := cred(1000)
		listed := make(map[ids.PID]bool)
		for _, p := range m.List(obs) {
			listed[p.PID] = true
		}
		for _, p := range m.Readable(obs) {
			if !listed[p.PID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHidePIDString(t *testing.T) {
	// Symbolic names: profile diffs and the E16 ablation table print
	// these instead of raw mount-option ints.
	for h, want := range map[HidePID]string{
		HidePIDOff:    "off",
		HidePIDNoRead: "noread",
		HidePIDInvis:  "invisible",
		HidePID(7):    "hidepid=7",
	} {
		if got := h.String(); got != want {
			t.Errorf("HidePID(%d).String() = %q, want %q", int(h), got, want)
		}
	}
}
